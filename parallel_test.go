package mce

import (
	"fmt"
	"testing"
)

// assertSameSequence requires got to equal want clique for clique, in order
// — the public determinism contract of WithIntraBlockParallelism.
func assertSameSequence(t *testing.T, what string, got, want [][]int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d cliques, want %d", what, len(got), len(want))
	}
	for i := range want {
		if key(got[i]) != key(want[i]) {
			t.Fatalf("%s: clique %d = {%s}, want {%s}", what, i, key(got[i]), key(want[i]))
		}
	}
}

func TestIntraBlockParallelismEndToEnd(t *testing.T) {
	graphs := []struct {
		name string
		g    *Graph
	}{
		{"social", GenerateSocialNetwork(240, 5, 0.5, 51)},
		{"dense", GenerateErdosRenyi(150, 0.5, 52)},
	}
	for _, tc := range graphs {
		base, err := Enumerate(tc.g)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4} {
			res, err := Enumerate(tc.g, WithIntraBlockParallelism(w))
			if err != nil {
				t.Fatal(err)
			}
			assertSameSequence(t, fmt.Sprintf("%s/w%d", tc.name, w), res.Cliques, base.Cliques)
		}
	}
}

func TestIntraBlockParallelismValidation(t *testing.T) {
	g := FromEdges(2, []Edge{{U: 0, V: 1}})
	if _, err := Enumerate(g, WithIntraBlockParallelism(0)); err == nil {
		t.Fatal("WithIntraBlockParallelism(0) accepted")
	}
	if _, err := Enumerate(g, WithIntraBlockParallelism(-3)); err == nil {
		t.Fatal("WithIntraBlockParallelism(-3) accepted")
	}
}

// TestIntraBlockParallelismDistributed: BitSetsParallel combos travel the
// wire as ordinary combos; remote workers spin up their own pools and the
// result must still be the exact local sequential sequence.
func TestIntraBlockParallelismDistributed(t *testing.T) {
	addrs, stop, err := StartLocalWorkers(2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	g := GenerateErdosRenyi(150, 0.5, 53)
	local, err := Enumerate(g, WithBlockRatio(0.5))
	if err != nil {
		t.Fatal(err)
	}
	dist, err := Enumerate(g, WithBlockRatio(0.5), WithWorkers(addrs...), WithIntraBlockParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSequence(t, "distributed", dist.Cliques, local.Cliques)
}
