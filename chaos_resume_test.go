package mce

// Crash-recovery chaos harness: the coordinator process is SIGKILLed at
// randomized points mid-run and must resume from the journal without losing
// or duplicating a single clique. The test binary re-execs itself as the
// coordinator (TestMain intercepts MCE_CHAOS_CHILD) so the kill is a real
// process death — no deferred cleanup, no flushed buffers — and the parent
// asserts the resumed run reproduces the uninterrupted clique set digest and
// skips every journaled-done block (telemetry counters).
//
// The kill-based tests are gated behind MCE_CHAOS=1 (`make chaos`) because
// they fork, poll and kill processes in a loop; tier-1 runs keep the
// in-process crash tests in internal/core instead. On failure, the journal
// and segment directory are copied to $MCE_CHAOS_ARTIFACTS for CI upload.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"mce/internal/cluster"
	"mce/internal/core"
	"mce/internal/decomp"
	"mce/internal/gen"
	"mce/internal/mcealg"
	"mce/internal/runlog"
)

func TestMain(m *testing.M) {
	if os.Getenv("MCE_CHAOS_CHILD") == "1" {
		os.Exit(chaosChild())
	}
	os.Exit(m.Run())
}

// chaosDelay throttles the child's per-block progress so the parent's kill
// reliably lands mid-run; the graph has enough blocks that a full session
// takes a second or two while each individual block stays trivial.
const chaosDelay = 15 * time.Millisecond

func chaosGraph() *Graph { return gen.HolmeKim(400, 6, 0.65, 31) }

// chaosOptions are the plan-affecting options every session — child,
// control and resume — must share, or the journal identity check refuses.
func chaosOptions(dir string) []Option {
	return []Option{WithBlockSize(16), WithParallelism(2), WithCheckpoint(dir)}
}

// throttledExecutor runs blocks one at a time through a single-threaded
// LocalExecutor with a sleep in front of each, preserving the per-block
// checkpoint observer so done records land as they would in production.
type throttledExecutor struct {
	inner core.LocalExecutor
	delay time.Duration
}

func (e *throttledExecutor) AnalyzeBlocks(blocks []decomp.Block, combos []mcealg.Combo) ([][][]int32, error) {
	return e.AnalyzeBlocksCheckpoint(context.Background(), blocks, combos, nil, nil)
}

func (e *throttledExecutor) AnalyzeBlocksContext(ctx context.Context, blocks []decomp.Block, combos []mcealg.Combo) ([][][]int32, error) {
	return e.AnalyzeBlocksCheckpoint(ctx, blocks, combos, nil, nil)
}

func (e *throttledExecutor) AnalyzeBlocksCheckpoint(ctx context.Context, blocks []decomp.Block, combos []mcealg.Combo, ids []runlog.BlockID, obs runlog.BatchObserver) ([][][]int32, error) {
	out := make([][][]int32, len(blocks))
	for i := range blocks {
		time.Sleep(e.delay)
		var (
			res [][][]int32
			err error
		)
		if ids != nil {
			res, err = e.inner.AnalyzeBlocksCheckpoint(ctx, blocks[i:i+1], combos[i:i+1], ids[i:i+1], obs)
		} else {
			res, err = e.inner.AnalyzeBlocksContext(ctx, blocks[i:i+1], combos[i:i+1])
		}
		if err != nil {
			return nil, err
		}
		out[i] = res[0]
	}
	return out, nil
}

// withChaosExecutor and withChaosLatency are test-only options: the public
// surface never exposes an executor hook, but chaos needs to slow the run
// down without changing its plan identity.
func withChaosExecutor(delay time.Duration) Option {
	return func(c *config) error {
		c.core.Executor = &throttledExecutor{delay: delay}
		return nil
	}
}

func withChaosLatency(d time.Duration) Option {
	return func(c *config) error {
		c.cliOpts.Latency = d
		return nil
	}
}

// chaosChild is the coordinator the parent kills: one checkpointed run over
// the chaos graph, local or distributed per MCE_CHAOS_WORKERS.
func chaosChild() int {
	dir := os.Getenv("MCE_CHAOS_DIR")
	if dir == "" {
		fmt.Fprintln(os.Stderr, "chaos child: MCE_CHAOS_DIR not set")
		return 1
	}
	opts := chaosOptions(dir)
	if w := os.Getenv("MCE_CHAOS_WORKERS"); w != "" {
		opts = append(opts, WithWorkers(strings.Split(w, ",")...), withChaosLatency(chaosDelay))
	} else {
		opts = append(opts, withChaosExecutor(chaosDelay))
	}
	res, err := Enumerate(chaosGraph(), opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos child:", err)
		return 1
	}
	fmt.Println(len(res.Cliques))
	return 0
}

// cliqueDigest is the sorted-output digest the chaos acceptance criterion
// compares: order-independent, duplicate-sensitive.
func cliqueDigest(cliques [][]int32) [sha256.Size]byte {
	keys := make([]string, len(cliques))
	for i, c := range cliques {
		keys[i] = fmt.Sprint(c)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		io.WriteString(h, k)
		h.Write([]byte{'\n'})
	}
	var d [sha256.Size]byte
	copy(d[:], h.Sum(nil))
	return d
}

func countSegments(segDir string) int {
	entries, err := os.ReadDir(segDir)
	if err != nil {
		return 0 // not created yet
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".cliq") {
			n++
		}
	}
	return n
}

// runChaosChild forks a coordinator session and SIGKILLs it once it has
// produced killAfterSegments new result segments (plus a randomized extra
// delay, so the kill lands at arbitrary points in the write/journal
// sequence). Returns true if the session finished before the kill landed.
func runChaosChild(t *testing.T, dir string, workers []string, killAfterSegments int, extraDelay time.Duration) bool {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		"MCE_CHAOS_CHILD=1",
		"MCE_CHAOS_DIR="+dir,
		"MCE_CHAOS_WORKERS="+strings.Join(workers, ","),
	)
	var errBuf bytes.Buffer
	cmd.Stderr = &errBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	segDir := filepath.Join(dir, "segments")
	base := countSegments(segDir) // segments left by previous sessions
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	deadline := time.After(60 * time.Second)
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("chaos child failed on its own: %v\n%s", err, errBuf.String())
			}
			return true
		case <-deadline:
			_ = cmd.Process.Kill()
			<-done
			t.Fatalf("chaos child ran past the 60s deadline\n%s", errBuf.String())
		case <-ticker.C:
			if countSegments(segDir)-base < killAfterSegments {
				continue
			}
			time.Sleep(extraDelay)
			_ = cmd.Process.Kill()
			if err := <-done; err == nil {
				return true // finished in the window before the kill landed
			}
			return false
		}
	}
}

// saveChaosArtifacts copies the journal and segments to
// $MCE_CHAOS_ARTIFACTS/<test>/ when the test failed, so CI can upload the
// exact on-disk state that broke recovery.
func saveChaosArtifacts(t *testing.T, dir string) {
	dest := os.Getenv("MCE_CHAOS_ARTIFACTS")
	if dest == "" || !t.Failed() {
		return
	}
	root := filepath.Join(dest, strings.ReplaceAll(t.Name(), "/", "_"))
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out := filepath.Join(root, rel)
		if d.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Logf("chaos artifacts: %v", err)
	} else {
		t.Logf("chaos artifacts saved to %s", root)
	}
}

// runChaosScenario kills coordinator sessions at randomized points until one
// finishes (or the kill budget is spent), then resumes in-process and holds
// the result to the uninterrupted digest. Satisfies the chaos acceptance
// criteria for one executor flavour.
func runChaosScenario(t *testing.T, workers []string) {
	if os.Getenv("MCE_CHAOS") == "" {
		t.Skip("kill-based chaos harness; run via `make chaos` (MCE_CHAOS=1)")
	}
	g := chaosGraph()
	control, err := Enumerate(g, WithBlockSize(16))
	if err != nil {
		t.Fatal(err)
	}
	wantDigest := cliqueDigest(control.Cliques)

	dir := t.TempDir()
	t.Cleanup(func() { saveChaosArtifacts(t, dir) })

	seed := int64(1)
	if s := os.Getenv("MCE_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			seed = v
		}
	}
	rnd := rand.New(rand.NewSource(seed))

	kills := 0
	for attempt := 0; attempt < 8; attempt++ {
		target := 2 + rnd.Intn(4)
		extra := time.Duration(rnd.Intn(20)) * time.Millisecond
		if runChaosChild(t, dir, workers, target, extra) {
			break
		}
		kills++
	}
	if kills == 0 {
		t.Fatal("every child session finished before a kill landed; the chaos run exercised nothing")
	}
	t.Logf("killed %d coordinator sessions (seed %d)", kills, seed)

	met := NewTelemetryEngine()
	resumeOpts := append(chaosOptions(dir), WithTelemetryEngine(met))
	if len(workers) > 0 {
		resumeOpts = append(resumeOpts, WithWorkers(workers...))
	}
	res, err := Enumerate(g, resumeOpts...)
	if err != nil {
		t.Fatalf("resume after %d kills: %v", kills, err)
	}
	if cliqueDigest(res.Cliques) != wantDigest {
		t.Fatalf("resume after %d kills produced %d cliques with a different digest (control: %d cliques)",
			kills, len(res.Cliques), len(control.Cliques))
	}
	snap := met.Snapshot()
	if snap.CheckpointBlocksSkipped == 0 {
		t.Fatal("resume re-executed every block; nothing was served from the journal")
	}
	if res.Stats.ResumedBlocks != int(snap.CheckpointBlocksSkipped) {
		t.Fatalf("Stats.ResumedBlocks = %d, telemetry CheckpointBlocksSkipped = %d",
			res.Stats.ResumedBlocks, snap.CheckpointBlocksSkipped)
	}
}

// TestChaosKillResumeLocal: coordinator SIGKILLed mid-run with the local
// executor; resume must reproduce the uninterrupted clique digest.
func TestChaosKillResumeLocal(t *testing.T) {
	runChaosScenario(t, nil)
}

// TestChaosKillResumeDistributed: same scenario with the work on out-of-
// process cluster workers. The workers live in the parent and survive the
// coordinator's death, so exactly-once depends entirely on the journal —
// a done-but-unjournaled block must be re-dispatched, a journaled one must
// never be.
func TestChaosKillResumeDistributed(t *testing.T) {
	addrs, stop, err := cluster.StartLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	runChaosScenario(t, addrs)
}
