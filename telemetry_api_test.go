package mce

import (
	"sync"
	"testing"
	"time"
)

func TestWithTelemetryFinalSnapshot(t *testing.T) {
	g := GenerateSocialNetwork(300, 4, 0.6, 7)
	res, err := Enumerate(g, WithTelemetry(), WithBlockRatio(0.3))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats.Telemetry
	if s == nil {
		t.Fatal("Stats.Telemetry nil with WithTelemetry")
	}
	if s.BlocksBuilt == 0 || s.RecursionNodes == 0 {
		t.Fatalf("telemetry empty: %+v", s)
	}
	if s.CliquesFound-s.HubCliquesFiltered != int64(res.Stats.TotalCliques) {
		t.Fatalf("found %d − filtered %d ≠ total %d",
			s.CliquesFound, s.HubCliquesFiltered, res.Stats.TotalCliques)
	}

	// Without the option, no snapshot is attached.
	plain, err := Enumerate(g, WithBlockRatio(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats.Telemetry != nil {
		t.Fatal("Stats.Telemetry set without a telemetry option")
	}
}

func TestWithTelemetryEngineSharedMidRun(t *testing.T) {
	eng := NewTelemetryEngine()
	g := GenerateSocialNetwork(200, 4, 0.5, 3)
	res, err := Enumerate(g, WithTelemetryEngine(eng), WithBlockRatio(0.3))
	if err != nil {
		t.Fatal(err)
	}
	// The caller-owned engine holds the same counts as the final snapshot.
	if got, want := eng.Snapshot().BlocksBuilt, res.Stats.Telemetry.BlocksBuilt; got != want {
		t.Fatalf("engine blocks %d ≠ snapshot blocks %d", got, want)
	}
}

func TestWithProgressDeliversSnapshots(t *testing.T) {
	// A multi-block run with a tiny interval must deliver at least the
	// guaranteed final snapshot; the last one observed must be complete.
	g := GenerateSocialNetwork(500, 5, 0.6, 11)
	var mu sync.Mutex
	var snaps []TelemetrySnapshot
	res, err := Enumerate(g,
		WithBlockRatio(0.3),
		WithProgress(func(s TelemetrySnapshot) {
			mu.Lock()
			snaps = append(snaps, s)
			mu.Unlock()
		}, time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(snaps) == 0 {
		t.Fatal("WithProgress delivered no snapshots")
	}
	last := snaps[len(snaps)-1]
	if last.BlocksBuilt == 0 {
		t.Fatalf("final progress snapshot empty: %+v", last)
	}
	if last.BlocksBuilt != res.Stats.Telemetry.BlocksBuilt {
		t.Fatalf("final snapshot blocks %d ≠ Stats.Telemetry blocks %d",
			last.BlocksBuilt, res.Stats.Telemetry.BlocksBuilt)
	}
	// Monotone counters never go backwards across snapshots.
	for i := 1; i < len(snaps); i++ {
		if snaps[i].BlocksBuilt < snaps[i-1].BlocksBuilt ||
			snaps[i].CliquesFound < snaps[i-1].CliquesFound {
			t.Fatalf("snapshot %d regressed: %+v then %+v", i, snaps[i-1], snaps[i])
		}
	}
}

func TestWithProgressOnStream(t *testing.T) {
	g := GenerateSocialNetwork(200, 4, 0.5, 3)
	got := 0
	n := 0
	stats, err := EnumerateStream(g, func([]int32, int) { n++ },
		WithBlockRatio(0.3),
		WithProgress(func(TelemetrySnapshot) { got++ }, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if got == 0 {
		t.Fatal("no final snapshot on stream run")
	}
	if stats.Telemetry == nil {
		t.Fatal("stream Stats.Telemetry nil under WithProgress")
	}
	if n == 0 {
		t.Fatal("stream emitted nothing")
	}
}

func TestTelemetryOptionValidation(t *testing.T) {
	g := FromEdges(2, []Edge{{U: 0, V: 1}})
	bad := []Option{
		WithTelemetryEngine(nil),
		WithProgress(nil, time.Second),
		WithProgress(func(TelemetrySnapshot) {}, 0),
		WithProgress(func(TelemetrySnapshot) {}, -time.Second),
	}
	for i, opt := range bad {
		if _, err := Enumerate(g, opt); err == nil {
			t.Errorf("bad telemetry option %d accepted", i)
		}
	}
}

func TestDistributedTelemetry(t *testing.T) {
	addrs, stop, err := StartLocalWorkers(2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	g := GenerateSocialNetwork(300, 4, 0.6, 7)
	res, err := Enumerate(g, WithWorkers(addrs...), WithTelemetry(), WithBlockRatio(0.3))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats.Telemetry
	if s == nil {
		t.Fatal("no telemetry on distributed run")
	}
	if s.RoundTripNs.Count == 0 || s.BytesSent == 0 || s.BytesReceived == 0 {
		t.Fatalf("coordinator wire metrics empty: %+v", s)
	}
	if s.QueueDepth != 0 || s.TasksInFlight != 0 {
		t.Fatalf("gauges leaked: queue=%d inflight=%d", s.QueueDepth, s.TasksInFlight)
	}
}
