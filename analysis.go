package mce

import (
	"fmt"
	"mce/internal/community"
	"mce/internal/gio"
	"mce/internal/incremental"
	"mce/internal/kcore"
	"mce/internal/kplex"
	"mce/internal/maxclique"
	"mce/internal/relax"
)

// Community is one overlapping k-clique community; see Communities.
type Community = community.Community

// Communities groups the maximal cliques of a Result into overlapping
// k-clique communities by clique percolation: cliques of size ≥ k that
// share at least k−1 nodes (directly or through a chain of such cliques)
// merge into one community. k must be ≥ 2. Communities come back
// largest-first.
func Communities(res *Result, k int) ([]Community, error) {
	return community.Detect(res.Cliques, k)
}

// CommunityMembership inverts a community list into node → community
// indices, exposing which nodes bridge several communities.
func CommunityMembership(communities []Community) map[int32][]int {
	return community.Membership(communities)
}

// KPlexes enumerates the maximal k-plexes of g with at least minSize nodes
// — the relaxed community model of the paper's future work (§8). A k-plex
// lets every member miss up to k members (k = 1 is exactly a clique);
// minSize ≤ 0 defaults to 2k−1, which guarantees connected results.
func KPlexes(g *Graph, k, minSize int) ([][]int32, error) {
	return kplex.Collect(g, kplex.Options{K: k, MinSize: minSize})
}

// KCliques enumerates the maximal k-cliques of g (Luce's distance
// relaxation, §8): maximal sets whose members are pairwise within distance
// k in g. k = 1 is plain maximal clique enumeration.
func KCliques(g *Graph, k int) ([][]int32, error) { return relax.KCliques(g, k) }

// KClans enumerates the k-clans of g (Mokken): maximal k-cliques whose
// induced subgraph also has diameter ≤ k.
func KClans(g *Graph, k int) ([][]int32, error) { return relax.KClans(g, k) }

// KClubs reports k-clubs of g — node sets of induced diameter ≤ k that no
// single node extends — grown from the k-clans; exact for k = 1.
func KClubs(g *Graph, k int) ([][]int32, error) { return relax.KClubs(g, k) }

// IsKClub reports whether the subgraph induced by set is connected with
// diameter at most k.
func IsKClub(g *Graph, set []int32, k int) bool { return relax.IsKClub(g, set, k) }

// MaximumClique returns one largest clique of g via branch-and-bound with a
// colouring bound — far faster than enumerating every maximal clique when
// only the biggest community matters.
func MaximumClique(g *Graph) []int32 { return maxclique.Find(g) }

// CliqueNumber returns ω(g), the size of g's largest clique.
func CliqueNumber(g *Graph) int { return maxclique.Size(g) }

// Tracker maintains the maximal cliques of an evolving graph under edge
// insertions and deletions; see NewTracker.
type Tracker = incremental.Tracker

// NewTracker bootstraps incremental clique maintenance from g: AddEdge and
// RemoveEdge then update the clique set locally instead of re-enumerating,
// the paper's future-work scenario of evolving social networks (§8).
func NewTracker(g *Graph) (*Tracker, error) { return incremental.New(g) }

// NewEmptyTracker starts incremental maintenance from an edgeless graph on
// n nodes.
func NewEmptyTracker(n int) *Tracker { return incremental.NewEmpty(n) }

// GraphStats bundles the sparsity metrics of a network: the degeneracy d
// (the paper's termination measure, Theorem 1), the d* densest-portion
// estimate, density and degree extremes.
type GraphStats struct {
	Nodes, Edges int
	MaxDegree    int
	Density      float64
	Degeneracy   int
	DStar        int
}

// Stats computes the sparsity metrics of g in linear time.
func GraphMetrics(g *Graph) GraphStats {
	f := kcore.Measure(g)
	return GraphStats{
		Nodes: f.Nodes, Edges: f.Edges,
		MaxDegree:  g.MaxDegree(),
		Density:    f.Density,
		Degeneracy: f.Degeneracy,
		DStar:      f.DStar,
	}
}

// Coreness returns each node's core number (the largest k such that the
// node survives in the k-core), a per-node sparsity profile.
func Coreness(g *Graph) []int32 {
	return kcore.Decompose(g).Coreness
}

// SavePartitioned writes g as part-<i>.triples files under dir, the
// distributed input layout of the paper's loading phase (§6.2).
func SavePartitioned(dir string, g *Graph, parts int) error {
	return gio.WritePartitioned(dir, g, parts)
}

// LoadPartitioned merges every part-*.triples file under dir into one
// graph.
func LoadPartitioned(dir string) (*Graph, *LabelMap, error) {
	return gio.ReadPartitioned(dir)
}

// VerifyResult independently checks an enumeration result against its
// graph: every reported set must be a clique, maximal (no vertex extends
// it), and reported exactly once. It returns nil when the result is a valid
// family of distinct maximal cliques — note it does not prove completeness
// (that no clique is missing), which would require a second enumeration.
// Intended for downstream pipelines that want a cheap trust-but-verify step
// after distributed runs.
func VerifyResult(g *Graph, res *Result) error {
	if len(res.Level) != len(res.Cliques) {
		return fmt.Errorf("mce: %d level entries for %d cliques", len(res.Level), len(res.Cliques))
	}
	seen := make(map[string]bool, len(res.Cliques))
	var keyBuf []byte
	for idx, c := range res.Cliques {
		if len(c) == 0 {
			return fmt.Errorf("mce: clique %d is empty", idx)
		}
		keyBuf = keyBuf[:0]
		for i, v := range c {
			if v < 0 || int(v) >= g.N() {
				return fmt.Errorf("mce: clique %d: node %d out of range", idx, v)
			}
			if i > 0 && c[i-1] >= v {
				return fmt.Errorf("mce: clique %d is not strictly ascending", idx)
			}
			keyBuf = append(keyBuf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		k := string(keyBuf)
		if seen[k] {
			return fmt.Errorf("mce: clique %d reported twice", idx)
		}
		seen[k] = true
		for i, u := range c {
			for _, v := range c[i+1:] {
				if !g.HasEdge(u, v) {
					return fmt.Errorf("mce: clique %d: %d and %d are not adjacent", idx, u, v)
				}
			}
		}
		// Maximality: scan the lowest-degree member's neighbourhood.
		pivot := c[0]
		for _, v := range c[1:] {
			if g.Degree(v) < g.Degree(pivot) {
				pivot = v
			}
		}
	scan:
		for _, w := range g.Neighbors(pivot) {
			for _, v := range c {
				if v == w || !g.HasEdge(v, w) {
					continue scan
				}
			}
			return fmt.Errorf("mce: clique %d extensible by node %d", idx, w)
		}
	}
	return nil
}

// Degrees returns the degree sequence of g.
func Degrees(g *Graph) []int {
	out := make([]int, g.N())
	for v := int32(0); v < int32(g.N()); v++ {
		out[v] = g.Degree(v)
	}
	return out
}
