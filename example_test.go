package mce_test

import (
	"fmt"

	"mce"
)

// The paper's Figure 1 scenario in miniature: a triangle of high-degree
// nodes whose clique is only found by the hub recursion.
func ExampleEnumerate() {
	b := mce.NewBuilder(7)
	// Triangle 0-1-2 plus a pendant per node keeps it simple.
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 4)
	b.AddEdge(2, 5)
	b.AddEdge(5, 6)
	g := b.Build()

	res, err := mce.Enumerate(g)
	if err != nil {
		panic(err)
	}
	fmt.Println("cliques:", len(res.Cliques))
	for _, c := range res.Cliques {
		if len(c) == 3 {
			fmt.Println("triangle:", c)
		}
	}
	// Output:
	// cliques: 5
	// triangle: [0 1 2]
}

func ExampleEnumerate_blockSize() {
	g := mce.FromEdges(4, []mce.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}})
	res, err := mce.Enumerate(g, mce.WithBlockSize(3), mce.WithAlgorithm("Tomita", "BitSets"))
	if err != nil {
		panic(err)
	}
	for _, c := range res.Cliques {
		fmt.Println(c)
	}
	// Output:
	// [2 3]
	// [0 1 2]
}

func ExampleCommunities() {
	// Two triangles sharing an edge percolate into one k=3 community.
	g := mce.FromEdges(4, []mce.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 1, V: 3}, {U: 2, V: 3},
	})
	res, err := mce.Enumerate(g)
	if err != nil {
		panic(err)
	}
	comms, err := mce.Communities(res, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println(comms[0].Nodes)
	// Output:
	// [0 1 2 3]
}

func ExampleNewTracker() {
	tr := mce.NewEmptyTracker(3)
	tr.AddEdge(0, 1)
	tr.AddEdge(1, 2)
	added, removed, err := tr.AddEdge(0, 2) // closes the triangle
	if err != nil {
		panic(err)
	}
	fmt.Println("added:", added)
	fmt.Println("removed:", removed)
	// Output:
	// added: [[0 1 2]]
	// removed: [[0 1] [1 2]]
}

func ExampleMaximumClique() {
	g := mce.FromEdges(5, []mce.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}, {U: 3, V: 4},
	})
	fmt.Println(mce.MaximumClique(g))
	fmt.Println(mce.CliqueNumber(g))
	// Output:
	// [0 1 2]
	// 3
}

func ExampleKCliques() {
	// Path 0-1-2: all three nodes are pairwise within distance 2.
	g := mce.FromEdges(3, []mce.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	kc, err := mce.KCliques(g, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(kc)
	// Output:
	// [[0 1 2]]
}

func ExampleEnumerateStream() {
	// With the default m = maxdegree/2 = 2, node 2 (degree 3) is a hub, so
	// the triangle through it is found by the hub recursion (level 1).
	g := mce.FromEdges(4, []mce.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}})
	stats, err := mce.EnumerateStream(g, func(clique []int32, hubLevel int) {
		fmt.Println(clique, "level", hubLevel)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("total:", stats.TotalCliques)
	// Output:
	// [2 3] level 0
	// [0 1 2] level 1
	// total: 2
}

func ExampleKPlexes() {
	// C4 is a maximal 2-plex: every member misses exactly one other.
	g := mce.FromEdges(4, []mce.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}})
	plexes, err := mce.KPlexes(g, 2, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(plexes)
	// Output:
	// [[0 1 2 3]]
}

func ExampleGraphMetrics() {
	g := mce.FromEdges(5, []mce.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}, {U: 3, V: 4},
	})
	s := mce.GraphMetrics(g)
	fmt.Printf("n=%d m=%d degeneracy=%d d*=%d\n", s.Nodes, s.Edges, s.Degeneracy, s.DStar)
	// Output:
	// n=5 m=5 degeneracy=2 d*=2
}
