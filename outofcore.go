package mce

import (
	"os"

	"mce/internal/cliqstore"
	"mce/internal/core"
	"mce/internal/diskgraph"
	"mce/internal/extmce"
)

// SaveDiskGraph writes g in the on-disk adjacency format consumed by
// EnumerateOutOfCore: an O(N)-memory offset table plus the neighbour lists,
// fetched lazily.
func SaveDiskGraph(path string, g *Graph) error { return diskgraph.Write(path, g) }

// OutOfCoreStats summarises an out-of-core enumeration; see the field docs
// in internal/extmce.
type OutOfCoreStats = extmce.Stats

// EnumerateOutOfCore enumerates every maximal clique of a graph stored with
// SaveDiskGraph without ever loading the whole network: blocks are
// materialised from disk one at a time (the ExtMCE/EmMCE regime the paper
// builds on), the hub recursion runs on the small hub-induced subgraph, and
// hub cliques are filtered with targeted disk reads. emit receives each
// clique (ascending IDs, slice reused) and its hub recursion level.
//
// Supported options: WithBlockSize, WithBlockRatio, WithAlgorithm. Peak
// memory is one block plus the hub subgraph.
func EnumerateOutOfCore(path string, emit func(clique []int32, hubLevel int), opts ...Option) (*OutOfCoreStats, error) {
	var cfg config
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	dg, err := diskgraph.Open(path)
	if err != nil {
		return nil, err
	}
	defer dg.Close()
	eopts := extmce.Options{
		BlockSize:  cfg.core.BlockSize,
		BlockRatio: cfg.core.BlockRatio,
		Inner:      core.Options{Parallelism: cfg.core.Parallelism},
		// WithParallelism doubles as the prefetch depth out of core:
		// blocks are loaded that far ahead of the analysis.
		Prefetch: cfg.core.Parallelism,
	}
	if cfg.core.FixedCombo != nil {
		eopts.Combo = *cfg.core.FixedCombo
	}
	return extmce.Enumerate(dg, eopts, emit)
}

// SaveCliques streams an enumeration result into the compact binary clique
// store at path (delta-encoded; typically well under half the size of a
// naive dump). Pair it with LoadCliques.
func SaveCliques(path string, cliques [][]int32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := cliqstore.NewWriter(f)
	if err != nil {
		return err
	}
	for _, c := range cliques {
		if err := w.Write(c); err != nil {
			return err
		}
	}
	if err := w.Finish(); err != nil {
		return err
	}
	return f.Close()
}

// LoadCliques reads a clique store written by SaveCliques.
func LoadCliques(path string) ([][]int32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := cliqstore.NewReader(f)
	if err != nil {
		return nil, err
	}
	var out [][]int32
	err = r.ForEach(func(c []int32) error {
		cp := make([]int32, len(c))
		copy(cp, c)
		out = append(out, cp)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
