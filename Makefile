GO ?= go

.PHONY: all build test vet lint fmt race vulncheck fuzz-smoke bench-smoke bench-baseline bench-record allocbudget-check check bench chaos chaos-straggler

# The checked-in per-PR benchmark record (bench-record writes BENCH_$(PR).json).
PR ?= 10

all: check

build:
	$(GO) build ./...

# Fails when any file needs gofmt; CI runs the same gate.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needs to run on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Repo-specific invariants (context plumbing, lock balance and ordering,
# sorted adjacency, goroutine lifecycle, channel discipline, CAS loops, gob
# wire safety, map-order determinism, telemetry nil guards, hot-path
# allocation/boxing/defer/preallocation discipline, suppression hygiene).
# Test files are part of the unit (-tests defaults to on). See DESIGN.md
# §9, §11, §14 + §16 and `go run ./cmd/mcevet -list`.
lint: vet
	$(GO) run ./cmd/mcevet ./...

# The committed hot-path allocation budget must match the tree:
# regenerating .mcevet/allocbudget.json has to be a no-op, or a hot
# allocation changed without review (DESIGN.md §16).
allocbudget-check:
	$(GO) run ./cmd/mcevet -update-allocbudget
	git diff --exit-code .mcevet/allocbudget.json

# The whole tree runs under the race detector: the cluster runtime and the
# engine are the hot spots, but satellite packages spawn goroutines too.
race:
	$(GO) test -race -count=1 ./...

# Known-vulnerability scan, best effort: the tool or the vuln DB may be
# unavailable in offline/sandboxed builds, which must not fail the gate.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "vulncheck: govulncheck failed (offline vuln DB or findings above); not failing the build"; \
	else \
		echo "vulncheck: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Short pass over each fuzz target (go test -fuzz accepts one target at a
# time, so they are spelled out).
fuzz-smoke:
	$(GO) test -run=Fuzz -fuzz=FuzzReader -fuzztime=10s ./internal/cliqstore
	$(GO) test -run=Fuzz -fuzz=FuzzReadEdgeList -fuzztime=10s ./internal/gio
	$(GO) test -run=Fuzz -fuzz=FuzzReadTriples -fuzztime=10s ./internal/gio
	$(GO) test -run=Fuzz -fuzz=FuzzLoadBoundedAgreesWithLoad -fuzztime=10s ./internal/gio
	$(GO) test -run=Fuzz -fuzz=FuzzJournalReplay -fuzztime=10s ./internal/runlog
	$(GO) test -run=Fuzz -fuzz=FuzzIndexOpen -fuzztime=10s ./internal/cliqdb

# Crash-recovery chaos: the coordinator is SIGKILLed at randomized points and
# must resume to the exact clique set (chaos_resume_test.go), and the index
# compiler is SIGKILLed mid-compile and must leave the live index absent or
# byte-identical, then self-heal to the control bytes
# (internal/cliqdb/chaos_compile_test.go) — alongside the fault-injection
# cluster chaos tests. Runs under -race; MCE_CHAOS=1 arms the kill-based
# tests, MCE_CHAOS_ARTIFACTS collects journal+segments on failure.
chaos:
	MCE_CHAOS=1 $(GO) test -race -count=1 -run 'Chaos|Resume' . ./internal/cluster ./internal/core ./internal/cliqdb ./cmd/mcefind

# Straggler chaos in isolation (also part of `chaos`): a worker delayed
# ~100× the healthy round trip must be masked by hedged dispatch — equal
# sorted-output digest, bounded wall time, hedge counters asserted
# (straggler_test.go). Runs under -race.
chaos-straggler:
	$(GO) test -race -count=1 -run 'ChaosStraggler' -v ./internal/cluster

# The CI benchmark gate: deterministic workload, machine-normalized timing,
# ±30% tolerance against the checked-in baseline (cmd/mcebench/smoke.go).
bench-smoke: build
	$(GO) run ./cmd/mcebench -smoke -out BENCH_$(PR).json -baseline .github/bench-baseline.json

# Refresh the baseline after an intentional performance change.
bench-baseline: build
	$(GO) run ./cmd/mcebench -smoke -smoke-runs 5 -out .github/bench-baseline.json

# Check in the per-PR benchmark record at the repo root (BENCH_<PR>.json),
# the running history of what each stacked PR did to the smoke workload.
bench-record: build
	$(GO) run ./cmd/mcebench -smoke -out BENCH_$(PR).json

check: build fmt lint allocbudget-check test race vulncheck bench-smoke

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
