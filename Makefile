GO ?= go

.PHONY: all build test vet race check bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The cluster runtime is the concurrency hot spot: run it (and the engine
# that drives it) under the race detector on every check.
race:
	$(GO) test -race -count=1 ./internal/cluster/... ./internal/core/...

check: build vet test race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
