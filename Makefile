GO ?= go

.PHONY: all build test vet lint race vulncheck fuzz-smoke check bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Repo-specific invariants (context plumbing, lock balance, sorted adjacency,
# goroutine leaks, gob wire safety). See DESIGN.md §9 and `go run ./cmd/mcevet -list`.
lint: vet
	$(GO) run ./cmd/mcevet ./...

# The whole tree runs under the race detector: the cluster runtime and the
# engine are the hot spots, but satellite packages spawn goroutines too.
race:
	$(GO) test -race -count=1 ./...

# Known-vulnerability scan, best effort: the tool or the vuln DB may be
# unavailable in offline/sandboxed builds, which must not fail the gate.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "vulncheck: govulncheck failed (offline vuln DB or findings above); not failing the build"; \
	else \
		echo "vulncheck: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Short pass over each fuzz target (go test -fuzz accepts one target at a
# time, so they are spelled out).
fuzz-smoke:
	$(GO) test -run=Fuzz -fuzz=FuzzReader -fuzztime=10s ./internal/cliqstore
	$(GO) test -run=Fuzz -fuzz=FuzzReadEdgeList -fuzztime=10s ./internal/gio
	$(GO) test -run=Fuzz -fuzz=FuzzReadTriples -fuzztime=10s ./internal/gio
	$(GO) test -run=Fuzz -fuzz=FuzzLoadBoundedAgreesWithLoad -fuzztime=10s ./internal/gio

check: build lint test race vulncheck

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
