package mce_test

import (
	"testing"

	"mce"
	"mce/internal/gen"
	"mce/internal/mcealg"
)

// TestSurrogatesEndToEnd runs the full pipeline on every evaluation
// surrogate at the saddle-point ratio and cross-validates the clique count
// against a flat single-machine enumeration, the streaming engine, and the
// maximum-clique solver. This is the closest thing to re-running §6 as a
// test.
func TestSurrogatesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full surrogate sweep is slow")
	}
	for _, spec := range gen.Datasets() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			g := spec.Build()

			flat, err := mcealg.Count(g, mcealg.Combo{Alg: mcealg.Eppstein, Struct: mcealg.Lists})
			if err != nil {
				t.Fatal(err)
			}

			res, err := mce.Enumerate(g, mce.WithBlockRatio(0.5))
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.TotalCliques != flat {
				t.Fatalf("two-level engine found %d cliques, flat MCE %d", res.Stats.TotalCliques, flat)
			}

			streamed := 0
			maxSize := 0
			_, err = mce.EnumerateStream(g, func(c []int32, _ int) {
				streamed++
				if len(c) > maxSize {
					maxSize = len(c)
				}
			}, mce.WithBlockRatio(0.5))
			if err != nil {
				t.Fatal(err)
			}
			if streamed != flat {
				t.Fatalf("streaming engine emitted %d cliques, want %d", streamed, flat)
			}

			if omega := mce.CliqueNumber(g); omega != maxSize {
				t.Fatalf("branch-and-bound ω = %d, enumeration max = %d", omega, maxSize)
			}

			// The surrogate is scale-free enough to have hub-only cliques
			// at an aggressive ratio.
			tight, err := mce.Enumerate(g, mce.WithBlockRatio(0.1))
			if err != nil {
				t.Fatal(err)
			}
			if tight.Stats.TotalCliques != flat {
				t.Fatalf("ratio 0.1 lost cliques: %d vs %d", tight.Stats.TotalCliques, flat)
			}
			if tight.Stats.HubCliques == 0 {
				t.Errorf("no hub-only cliques at ratio 0.1 — surrogate not hubby enough")
			}
		})
	}
}

// TestDistributedSurrogateEndToEnd reruns one surrogate over TCP workers.
func TestDistributedSurrogateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed surrogate run is slow")
	}
	spec, err := gen.Dataset("twitter1")
	if err != nil {
		t.Fatal(err)
	}
	g := spec.Build()
	addrs, stop, err := mce.StartLocalWorkers(3)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	local, err := mce.Enumerate(g, mce.WithBlockRatio(0.3))
	if err != nil {
		t.Fatal(err)
	}
	dist, err := mce.Enumerate(g, mce.WithBlockRatio(0.3), mce.WithWorkers(addrs...))
	if err != nil {
		t.Fatal(err)
	}
	if local.Stats.TotalCliques != dist.Stats.TotalCliques {
		t.Fatalf("distributed %d cliques, local %d", dist.Stats.TotalCliques, local.Stats.TotalCliques)
	}
	if local.Stats.HubCliques != dist.Stats.HubCliques {
		t.Fatalf("hub split differs: %d vs %d", dist.Stats.HubCliques, local.Stats.HubCliques)
	}
}

// TestRatioSweepInvariant checks the core completeness claim over the whole
// m/d grid on a mid-size surrogate-like graph: the clique set never depends
// on m.
func TestRatioSweepInvariant(t *testing.T) {
	g := mce.GenerateSocialNetwork(1200, 5, 0.7, 51)
	var baseline int
	for i, ratio := range []float64{0.9, 0.7, 0.5, 0.3, 0.1, 0.05} {
		res, err := mce.Enumerate(g, mce.WithBlockRatio(ratio))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			baseline = res.Stats.TotalCliques
			continue
		}
		if res.Stats.TotalCliques != baseline {
			t.Fatalf("ratio %v: %d cliques, want %d", ratio, res.Stats.TotalCliques, baseline)
		}
	}
}
