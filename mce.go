// Package mce enumerates all maximal cliques of very large scale-free
// networks with the two-level distributed decomposition of Conte, De
// Virgilio, Maccioni, Patrignani and Torlone, "Finding All Maximal Cliques
// in Very Large Social Networks" (EDBT 2016).
//
// The engine splits the network into feasible nodes (whose neighbourhood
// fits a block of m nodes) and hub nodes (whose neighbourhood does not),
// partitions the feasible side into small dense blocks that are processed
// independently — locally in parallel or on remote TCP workers — and
// recurses on the hub-induced subgraph, so that no clique is lost no matter
// how small the blocks are. Per block, a decision tree picks the fastest of
// twelve Bron–Kerbosch-family algorithm/data-structure combinations.
//
// Quick start:
//
//	g, _, err := mce.Load("network.txt") // SNAP-style edge list
//	if err != nil { ... }
//	res, err := mce.Enumerate(g)
//	if err != nil { ... }
//	for _, clique := range res.Cliques { ... }
//
// Block size defaults to half the maximum degree (the m/d = 0.5 saddle
// point of the paper's Figure 8) and can be tuned with WithBlockSize or
// WithBlockRatio. WithWorkers distributes block analysis over mceworker
// processes.
package mce

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mce/internal/cluster"
	"mce/internal/core"
	"mce/internal/gen"
	"mce/internal/gio"
	"mce/internal/graph"
	"mce/internal/mcealg"
	"mce/internal/runlog"
	"mce/internal/telemetry"
)

// Graph is a simple undirected graph with dense int32 node IDs.
// Build one with NewBuilder, FromEdges or Load.
type Graph = graph.Graph

// Builder accumulates edges for a Graph.
type Builder = graph.Builder

// Edge is an undirected edge.
type Edge = graph.Edge

// LabelMap translates between external node labels and dense IDs.
type LabelMap = gio.LabelMap

// Stats describes a completed enumeration; see the field docs in
// internal/core.
type Stats = core.Stats

// Result is the outcome of Enumerate: every maximal clique (sorted node IDs,
// deterministic order), the recursion level each was found at (level ≥ 1
// means a clique made of hub nodes only), and run statistics.
type Result = core.Result

// NewBuilder returns a Builder for a graph with n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a normalised graph (undirected, deduplicated, no self
// loops) with n nodes from an edge list.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// Load reads a graph from disk: whitespace-separated edge lists (SNAP
// style) by default, the paper's ⟨n1, e, n2⟩ triple format for ".triples"
// files. The LabelMap records how external labels map to dense IDs.
func Load(path string) (*Graph, *LabelMap, error) { return gio.LoadFile(path) }

// LoadBounded reads the same formats as Load but in two passes, never
// materialising an intermediate edge buffer — roughly halving peak memory
// on inputs that push against RAM.
func LoadBounded(path string) (*Graph, *LabelMap, error) { return gio.LoadFileBounded(path) }

// Save writes a graph to disk in the format selected by the extension,
// mirroring Load.
func Save(path string, g *Graph) error { return gio.SaveFile(path, g) }

// TelemetrySnapshot is a point-in-time view of the engine's metrics; see
// the field docs in internal/telemetry.
type TelemetrySnapshot = telemetry.Snapshot

// TelemetryEngine accumulates live metrics for a run. Obtain one with
// NewTelemetryEngine, pass it via WithTelemetryEngine, and snapshot it at
// any time — including from another goroutine while the run is in flight
// (e.g. an HTTP debug handler).
type TelemetryEngine = telemetry.Engine

// NewTelemetryEngine returns an empty telemetry engine.
func NewTelemetryEngine() *TelemetryEngine { return telemetry.NewEngine() }

// config collects the functional options.
type config struct {
	core             core.Options
	workers          []string
	cliOpts          cluster.ClientOptions
	report           func(DialReport)
	healthReport     func(HealthReport)
	progress         func(TelemetrySnapshot)
	progressInterval time.Duration
	checkpointDir    string
	checkpointWarn   func(error)
	poisonReport     func([]PoisonVerdict)
}

// Option customises Enumerate.
type Option func(*config) error

// WithBlockSize fixes m, the maximum number of nodes per block.
func WithBlockSize(m int) Option {
	return func(c *config) error {
		if m < 2 {
			return fmt.Errorf("mce: block size %d is too small (need ≥ 2)", m)
		}
		c.core.BlockSize = m
		return nil
	}
}

// WithBlockRatio sets m as a fraction of the maximum degree, the m/d
// parameter of the paper's experiments (0 < ratio ≤ 1).
func WithBlockRatio(ratio float64) Option {
	return func(c *config) error {
		if ratio <= 0 || ratio > 1 {
			return fmt.Errorf("mce: block ratio %v out of (0, 1]", ratio)
		}
		c.core.BlockRatio = ratio
		return nil
	}
}

// WithParallelism bounds the local block-analysis workers (default:
// GOMAXPROCS).
func WithParallelism(workers int) Option {
	return func(c *config) error {
		if workers < 1 {
			return fmt.Errorf("mce: parallelism %d is not positive", workers)
		}
		c.core.Parallelism = workers
		return nil
	}
}

// WithIntraBlockParallelism sets the work-stealing worker count inside a
// single block's Bron–Kerbosch enumeration (and the terminal core's). With
// n > 1 the combo selector upgrades BitSets picks on large blocks to the
// BitSetsParallel execution mode, so one dense block — typically the
// terminal hub core — no longer serializes the run on a single goroutine.
// It composes multiplicatively with WithParallelism (each block worker
// spawns its own pool of n), so keep workers × n around GOMAXPROCS. The
// result — every clique and its position in the output — is bit-identical
// at every n; n = 1 keeps the sequential recursion.
func WithIntraBlockParallelism(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("mce: intra-block parallelism %d is not positive", n)
		}
		c.core.IntraBlockParallelism = n
		return nil
	}
}

// WithAlgorithm bypasses the decision tree and uses one algorithm/structure
// combination for every block. Valid names are "BKPivot", "Tomita",
// "Eppstein", "XPivot" and "Matrix", "Lists", "BitSets".
func WithAlgorithm(algorithm, structure string) Option {
	return func(c *config) error {
		combo, err := ParseCombo(algorithm, structure)
		if err != nil {
			return err
		}
		c.core.FixedCombo = &combo
		return nil
	}
}

// WithMinBlockAdjacency sets the density threshold of the greedy block
// growth: a candidate joins a block only when it has at least k edges into
// the block's kernels.
func WithMinBlockAdjacency(k int) Option {
	return func(c *config) error {
		if k < 1 {
			return fmt.Errorf("mce: min block adjacency %d is not positive", k)
		}
		c.core.Block.MinAdjacency = k
		return nil
	}
}

// WithMaxLevels caps the hub recursion depth; deeper levels are enumerated
// directly (completeness is preserved). Mostly useful against adversarial
// inputs like the Theorem 1 chain.
func WithMaxLevels(levels int) Option {
	return func(c *config) error {
		if levels < 1 {
			return fmt.Errorf("mce: max levels %d is not positive", levels)
		}
		c.core.MaxLevels = levels
		return nil
	}
}

// WithHeaviestFirst dispatches the estimated-heaviest blocks first
// (longest-processing-time scheduling), which tightens the parallel
// makespan when block costs are skewed. Results are unchanged.
func WithHeaviestFirst() Option {
	return func(c *config) error {
		c.core.Schedule = core.ScheduleLPT
		return nil
	}
}

// WithExtensionFilter switches the Lemma 1 filter to the extension test
// against the graph; output is identical, speed differs with workload.
func WithExtensionFilter() Option {
	return func(c *config) error {
		c.core.UseExtensionFilter = true
		return nil
	}
}

// WithWorkers distributes block analysis over mceworker processes at the
// given TCP addresses.
func WithWorkers(addrs ...string) Option {
	return func(c *config) error {
		if len(addrs) == 0 {
			return fmt.Errorf("mce: WithWorkers needs at least one address")
		}
		c.workers = append([]string(nil), addrs...)
		return nil
	}
}

// WithWorkerCompression negotiates DEFLATE on the worker links opened by
// WithWorkers, trading CPU for bandwidth on slow interconnects.
func WithWorkerCompression() Option {
	return func(c *config) error {
		c.cliOpts.Compress = true
		return nil
	}
}

// WithWorkerStreams opens n parallel streams per worker address so a
// multi-core worker can process several blocks at once.
func WithWorkerStreams(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("mce: worker streams %d is not positive", n)
		}
		c.cliOpts.ConnectionsPerWorker = n
		return nil
	}
}

// WithTaskTimeout bounds each distributed task round trip: a worker that
// does not answer within d is retired and its block requeued elsewhere, so
// a hung worker cannot stall the run. The default (without this option)
// derives a generous envelope from the block size; a negative d disables
// deadlines entirely.
func WithTaskTimeout(d time.Duration) Option {
	return func(c *config) error {
		if d == 0 {
			return fmt.Errorf("mce: task timeout 0 is ambiguous (omit the option for the derived default, pass negative to disable)")
		}
		c.cliOpts.TaskTimeout = d
		return nil
	}
}

// WithTaskRetries sets the per-block transport-failure budget: a block
// whose round trip fails on k distinct worker connections is declared a
// poison task and the run fails deterministically with diagnostics
// (cluster.PoisonTaskError) instead of cascading through the cluster.
// The default is 3; negative means unlimited retries.
func WithTaskRetries(k int) Option {
	return func(c *config) error {
		if k == 0 {
			return fmt.Errorf("mce: task retries 0 is ambiguous (omit the option for the default of 3, pass negative for unlimited)")
		}
		c.cliOpts.TaskRetries = k
		return nil
	}
}

// WithAutoReconnect re-dials dead workers in the background with
// exponential backoff and jitter, so capacity lost to a worker restart
// returns on its own — even to a batch already in flight.
func WithAutoReconnect() Option {
	return func(c *config) error {
		c.cliOpts.AutoReconnect = true
		return nil
	}
}

// WithHedgedDispatch enables speculative re-dispatch of straggling blocks
// on distributed runs: a block in flight for longer than twice the 90th
// percentile of its level's observed round trips is duplicated onto
// another worker and the first result wins. Lemma 1 determinism makes the
// duplicate's answer identical, so the output is exactly the same — only
// the tail latency of a slow or degraded worker stops dominating the run.
func WithHedgedDispatch() Option {
	return func(c *config) error {
		c.cliOpts.Hedge = true
		return nil
	}
}

// WithMemoryBudget bounds the coordinator's appetite: while the process
// heap is above budget bytes, block dispatch pauses (local and
// distributed) instead of buffering more results toward an OOM kill. One
// block always stays in flight, so the run degrades to serial execution,
// never deadlocks.
func WithMemoryBudget(budget int64) Option {
	return func(c *config) error {
		if budget <= 0 {
			return fmt.Errorf("mce: memory budget %d is not positive", budget)
		}
		c.core.MemoryBudget = budget
		c.cliOpts.MemoryBudget = budget
		return nil
	}
}

// HealthReport summarises per-worker health scoring; see
// cluster.HealthReport.
type HealthReport = cluster.HealthReport

// WithWorkerHealthReport invokes fn with the per-worker health summary —
// EWMA latency and error scores, corrupt verdicts, quarantine records —
// when a distributed run finishes, successfully or not. Use it to surface
// which workers the run leaned on and which it had to bench.
func WithWorkerHealthReport(fn func(HealthReport)) Option {
	return func(c *config) error {
		if fn == nil {
			return fmt.Errorf("mce: WithWorkerHealthReport needs a callback")
		}
		c.healthReport = fn
		return nil
	}
}

// WithTelemetry records metrics during the run and attaches the final
// snapshot to Stats.Telemetry. Without it (or one of the other telemetry
// options) the instrumentation is disabled entirely and the hot paths pay
// nothing for it.
func WithTelemetry() Option {
	return func(c *config) error {
		if c.core.Metrics == nil {
			c.core.Metrics = telemetry.NewEngine()
		}
		return nil
	}
}

// WithTelemetryEngine records metrics into a caller-owned engine, so the
// same counters can be shared with a debug HTTP server or snapshotted
// mid-run. Implies WithTelemetry.
func WithTelemetryEngine(e *TelemetryEngine) Option {
	return func(c *config) error {
		if e == nil {
			return fmt.Errorf("mce: WithTelemetryEngine needs an engine")
		}
		c.core.Metrics = e
		return nil
	}
}

// WithProgress delivers a live telemetry snapshot to fn every interval
// while the run is in flight, plus one final snapshot when it completes —
// so fn always observes the run at least once, however short it was. fn is
// called from a dedicated goroutine and must not block for long. Implies
// WithTelemetry.
func WithProgress(fn func(TelemetrySnapshot), interval time.Duration) Option {
	return func(c *config) error {
		if fn == nil {
			return fmt.Errorf("mce: WithProgress needs a callback")
		}
		if interval <= 0 {
			return fmt.Errorf("mce: progress interval %v is not positive", interval)
		}
		c.progress = fn
		c.progressInterval = interval
		return nil
	}
}

// WithCheckpoint makes the run crash-safe: a durable journal in dir records
// the run's identity and every block's lifecycle, each completed block's
// cliques are persisted in an idempotent per-block segment, and a run
// started against a directory holding prior state resumes — completed
// blocks load from disk (Stats.ResumedBlocks counts them) and only the
// remainder is re-analysed. The directory is created when absent; resuming
// with a different graph or different plan-affecting options is refused
// with a clear error. Journal appends are fsync'd, so checkpointing trades
// a little write latency for surviving SIGKILL.
//
// Checkpointing requires the accumulating Enumerate path;
// EnumerateStream rejects it (a resume would re-emit cliques the consumer
// already saw).
func WithCheckpoint(dir string) Option {
	return func(c *config) error {
		if dir == "" {
			return fmt.Errorf("mce: WithCheckpoint needs a directory")
		}
		c.checkpointDir = dir
		return nil
	}
}

// HasCheckpoint reports whether dir holds prior run state a WithCheckpoint
// run would resume.
func HasCheckpoint(dir string) bool { return runlog.HasJournal(dir) }

// ErrCheckpointMismatch is wrapped by the error Enumerate returns when the
// -checkpoint directory belongs to a different run: another graph, other
// plan-affecting options, or an unreadable journal that cannot be trusted
// to resume. Match with errors.Is to distinguish "refuse to resume" from
// ordinary failures — mcefind exits with a dedicated code for it.
var ErrCheckpointMismatch = runlog.ErrIdentityMismatch

// WithCheckpointWarning invokes fn (once) if a write failure — a full
// disk, a permissions change — disables checkpointing mid-run. The run
// itself continues and completes with correct results; only crash safety
// is lost from that point on, and Stats.CheckpointDegraded reports it.
// Without this option a checkpoint failure is still non-fatal, just
// unannounced until the final Stats. fn must not call back into the
// enumeration. Implies nothing about WithCheckpoint — it is ignored when
// checkpointing is off.
func WithCheckpointWarning(fn func(error)) Option {
	return func(c *config) error {
		if fn == nil {
			return fmt.Errorf("mce: WithCheckpointWarning needs a callback")
		}
		c.checkpointWarn = fn
		return nil
	}
}

// PoisonVerdict describes one block skipped as a poison task; see
// cluster.PoisonTaskError.
type PoisonVerdict = cluster.PoisonTaskError

// WithSkipPoisonTasks downgrades poison-task verdicts (a block that failed
// its round trip on the full retry budget of distinct workers) from
// run-fatal errors to recorded skips: the run completes without the
// affected blocks' cliques and Stats.SkippedBlocks counts them. The result
// is then explicitly incomplete — check the count, and use
// WithPoisonReport to receive the per-block diagnostics.
func WithSkipPoisonTasks() Option {
	return func(c *config) error {
		c.cliOpts.SkipPoisonTasks = true
		return nil
	}
}

// WithPoisonReport invokes fn once at the end of a run that skipped poison
// tasks, with one verdict per skipped block (oldest first). Only fires
// under WithSkipPoisonTasks with at least one skip.
func WithPoisonReport(fn func([]PoisonVerdict)) Option {
	return func(c *config) error {
		if fn == nil {
			return fmt.Errorf("mce: WithPoisonReport needs a callback")
		}
		c.poisonReport = fn
		return nil
	}
}

// DialReport describes how the worker dial went; see cluster.DialReport.
type DialReport = cluster.DialReport

// WithWorkerReport invokes fn with the dial report once the worker
// connections are up, letting callers surface a degraded start (some
// workers unreachable) instead of discovering the missing capacity from a
// slow run.
func WithWorkerReport(fn func(DialReport)) Option {
	return func(c *config) error {
		if fn == nil {
			return fmt.Errorf("mce: WithWorkerReport needs a callback")
		}
		c.report = fn
		return nil
	}
}

// ParseCombo resolves algorithm and structure names to an internal combo.
func ParseCombo(algorithm, structure string) (mcealg.Combo, error) {
	var combo mcealg.Combo
	switch algorithm {
	case "BKPivot", "bkpivot":
		combo.Alg = mcealg.BKPivot
	case "Tomita", "tomita":
		combo.Alg = mcealg.Tomita
	case "Eppstein", "eppstein":
		combo.Alg = mcealg.Eppstein
	case "XPivot", "xpivot":
		combo.Alg = mcealg.XPivot
	default:
		return combo, fmt.Errorf("mce: unknown algorithm %q (want BKPivot, Tomita, Eppstein or XPivot)", algorithm)
	}
	switch structure {
	case "Matrix", "matrix":
		combo.Struct = mcealg.Matrix
	case "Lists", "lists":
		combo.Struct = mcealg.Lists
	case "BitSets", "bitsets":
		combo.Struct = mcealg.BitSets
	default:
		return combo, fmt.Errorf("mce: unknown structure %q (want Matrix, Lists or BitSets)", structure)
	}
	return combo, nil
}

// Enumerate returns every maximal clique of g.
func Enumerate(g *Graph, opts ...Option) (*Result, error) {
	return EnumerateContext(context.Background(), g, opts...)
}

// EnumerateContext is Enumerate with cancellation: cancelling ctx stops
// the run between recursion levels and cancels block batches already in
// flight, locally and on remote workers.
func EnumerateContext(ctx context.Context, g *Graph, opts ...Option) (*Result, error) {
	cfg, client, err := setup(ctx, opts)
	if err != nil {
		return nil, err
	}
	if client != nil {
		defer client.Close()
		if cfg.healthReport != nil {
			// The health summary fires however the run ends — a cancelled
			// or failed run is exactly when the benched-worker record
			// matters most.
			defer func() { cfg.healthReport(client.HealthReport()) }()
		}
	}
	if cfg.checkpointDir != "" {
		// The checkpoint opens here, not in setup: its identity needs the
		// graph, which options never see.
		cp, err := runlog.Open(cfg.checkpointDir, core.CheckpointIdentity(g, cfg.core), runlog.Options{Metrics: cfg.core.Metrics, OnDegrade: cfg.checkpointWarn})
		if err != nil {
			return nil, err
		}
		defer cp.Close()
		cfg.core.Checkpoint = cp
	}
	defer cfg.startProgress()()
	res, err := core.FindMaxCliquesContext(ctx, g, cfg.core)
	if err != nil {
		return nil, err
	}
	if client != nil {
		if vs := client.PoisonVerdicts(); len(vs) > 0 {
			res.Stats.SkippedBlocks = len(vs)
			if cfg.poisonReport != nil {
				cfg.poisonReport(vs)
			}
		}
	}
	return res, nil
}

// startProgress launches the WithProgress ticker goroutine and returns its
// stop function, which delivers the guaranteed final snapshot. A no-op when
// WithProgress was not given.
func (c *config) startProgress() (stop func()) {
	if c.progress == nil {
		return func() {}
	}
	eng := c.core.Metrics // setup resolves it before dialling
	if eng == nil {
		return func() {} // progress without telemetry has nothing to snapshot
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(c.progressInterval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				c.progress(eng.Snapshot())
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
		c.progress(eng.Snapshot())
	}
}

// setup resolves the options and dials workers when requested; ctx bounds
// the dialling, so a caller's cancellation is honoured before the first
// block ships.
func setup(ctx context.Context, opts []Option) (*config, *cluster.Client, error) {
	var cfg config
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, nil, err
		}
	}
	if cfg.progress != nil && cfg.core.Metrics == nil {
		cfg.core.Metrics = telemetry.NewEngine()
	}
	// The cluster client shares the run's engine, so coordinator-side wire
	// metrics land in the same snapshot.
	cfg.cliOpts.Metrics = cfg.core.Metrics
	if len(cfg.workers) == 0 {
		return &cfg, nil, nil
	}
	client, err := cluster.DialContext(ctx, cfg.workers, cfg.cliOpts)
	if err != nil {
		return nil, nil, err
	}
	if cfg.report != nil {
		cfg.report(client.DialReport())
	}
	cfg.core.Executor = client
	return &cfg, client, nil
}

// CountMaxCliques returns only the number of maximal cliques, streaming
// internally so no result set is accumulated.
func CountMaxCliques(g *Graph, opts ...Option) (int, error) {
	n := 0
	_, err := EnumerateStream(g, func([]int32, int) { n++ }, opts...)
	return n, err
}

// EnumerateStream is Enumerate without result accumulation: emit receives
// each maximal clique as soon as its block batch completes (ascending node
// IDs, slice reused — copy to retain) together with the hub recursion level
// it was found at. Use it when the clique family may not fit in memory.
// Order and content match Enumerate exactly.
func EnumerateStream(g *Graph, emit func(clique []int32, hubLevel int), opts ...Option) (*Stats, error) {
	return EnumerateStreamContext(context.Background(), g, emit, opts...)
}

// EnumerateStreamContext is EnumerateStream with cancellation, mirroring
// EnumerateContext.
func EnumerateStreamContext(ctx context.Context, g *Graph, emit func(clique []int32, hubLevel int), opts ...Option) (*Stats, error) {
	cfg, client, err := setup(ctx, opts)
	if err != nil {
		return nil, err
	}
	if cfg.checkpointDir != "" {
		if client != nil {
			client.Close()
		}
		return nil, fmt.Errorf("mce: WithCheckpoint is not supported with streaming enumeration (a resume would re-emit cliques already delivered); use Enumerate")
	}
	if client != nil {
		defer client.Close()
	}
	defer cfg.startProgress()()
	return core.StreamContext(ctx, g, cfg.core, emit)
}

// StartLocalWorkers launches n block-analysis workers on ephemeral
// localhost ports, for tests and single-machine distributed runs. Call stop
// to shut them down.
func StartLocalWorkers(n int) (addrs []string, stop func(), err error) {
	return cluster.StartLocal(n)
}

// GenerateBarabasiAlbert returns a scale-free preferential-attachment graph
// with n nodes, k edges per new node.
func GenerateBarabasiAlbert(n, k int, seed int64) *Graph {
	return gen.BarabasiAlbert(n, k, seed)
}

// GenerateErdosRenyi returns a G(n, p) random graph.
func GenerateErdosRenyi(n int, p float64, seed int64) *Graph {
	return gen.ErdosRenyi(n, p, seed)
}

// GenerateSocialNetwork returns a clique-rich scale-free graph (Holme–Kim
// preferential attachment with triad probability pt), the closest synthetic
// stand-in for friendship networks.
func GenerateSocialNetwork(n, k int, pt float64, seed int64) *Graph {
	return gen.HolmeKim(n, k, pt, seed)
}
