package mce

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func key(c []int32) string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

func TestEnumerateTriangleTail(t *testing.T) {
	g := FromEdges(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}})
	res, err := Enumerate(g)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"0,1,2": true, "2,3": true}
	if len(res.Cliques) != 2 {
		t.Fatalf("Cliques = %v", res.Cliques)
	}
	for _, c := range res.Cliques {
		if !want[key(c)] {
			t.Fatalf("unexpected clique %v", c)
		}
	}
}

func TestOptionValidation(t *testing.T) {
	g := FromEdges(2, []Edge{{U: 0, V: 1}})
	bad := []Option{
		WithBlockSize(1),
		WithBlockRatio(0),
		WithBlockRatio(1.5),
		WithParallelism(0),
		WithAlgorithm("NoSuch", "Lists"),
		WithAlgorithm("Tomita", "NoSuch"),
		WithMinBlockAdjacency(0),
		WithMaxLevels(0),
		WithWorkers(),
	}
	for i, opt := range bad {
		if _, err := Enumerate(g, opt); err == nil {
			t.Errorf("bad option %d accepted", i)
		}
	}
}

func TestEnumerateWithNamedCombos(t *testing.T) {
	g := GenerateSocialNetwork(150, 4, 0.6, 5)
	base, err := Enumerate(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"BKPivot", "Tomita", "Eppstein", "XPivot"} {
		for _, st := range []string{"Matrix", "Lists", "BitSets"} {
			res, err := Enumerate(g, WithAlgorithm(alg, st), WithBlockRatio(0.6))
			if err != nil {
				t.Fatalf("%s/%s: %v", alg, st, err)
			}
			if len(res.Cliques) != len(base.Cliques) {
				t.Fatalf("%s/%s: %d cliques, want %d", alg, st, len(res.Cliques), len(base.Cliques))
			}
		}
	}
}

func TestEnumerateDistributed(t *testing.T) {
	addrs, stop, err := StartLocalWorkers(2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	g := GenerateBarabasiAlbert(250, 4, 11)
	local, err := Enumerate(g, WithBlockRatio(0.5))
	if err != nil {
		t.Fatal(err)
	}
	dist, err := Enumerate(g, WithBlockRatio(0.5), WithWorkers(addrs...))
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Cliques) != len(local.Cliques) {
		t.Fatalf("distributed %d cliques vs local %d", len(dist.Cliques), len(local.Cliques))
	}
	lm := map[string]bool{}
	for _, c := range local.Cliques {
		lm[key(c)] = true
	}
	for _, c := range dist.Cliques {
		if !lm[key(c)] {
			t.Fatalf("distributed found unknown clique {%s}", key(c))
		}
	}
}

func TestEnumerateDistributedUnreachableWorkers(t *testing.T) {
	g := FromEdges(2, []Edge{{U: 0, V: 1}})
	if _, err := Enumerate(g, WithWorkers("127.0.0.1:1")); err == nil {
		t.Fatal("unreachable worker accepted")
	}
}

func TestLoadSaveRoundTrip(t *testing.T) {
	g := GenerateErdosRenyi(60, 0.1, 3)
	p := filepath.Join(t.TempDir(), "g.txt")
	if err := Save(p, g); err != nil {
		t.Fatal(err)
	}
	g2, labels, err := Load(p)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() {
		t.Fatalf("M = %d after round trip, want %d", g2.M(), g.M())
	}
	if labels.Len() == 0 && g.M() > 0 {
		t.Fatal("label map empty")
	}
	r1, err := Enumerate(g)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Enumerate(g2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Cliques) != len(r2.Cliques) {
		t.Fatalf("clique count changed after round trip: %d vs %d", len(r1.Cliques), len(r2.Cliques))
	}
}

func TestBuilderExported(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	res, err := Enumerate(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cliques) != 2 {
		t.Fatalf("Cliques = %v", res.Cliques)
	}
}

func TestStatsExposed(t *testing.T) {
	g := GenerateBarabasiAlbert(300, 4, 13)
	res, err := Enumerate(g, WithBlockRatio(0.3))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.BlockSize <= 0 || s.MaxDegree <= 0 || len(s.Levels) == 0 {
		t.Fatalf("stats incomplete: %+v", s)
	}
	if s.TotalCliques != len(res.Cliques) {
		t.Fatalf("TotalCliques = %d, want %d", s.TotalCliques, len(res.Cliques))
	}
}

func TestParseCombo(t *testing.T) {
	if _, err := ParseCombo("tomita", "bitsets"); err != nil {
		t.Fatalf("lowercase names rejected: %v", err)
	}
	if _, err := ParseCombo("", ""); err == nil {
		t.Fatal("empty names accepted")
	}
}

func TestSchedulingAndFilterOptions(t *testing.T) {
	g := GenerateSocialNetwork(400, 5, 0.7, 21)
	base, err := Enumerate(g, WithBlockRatio(0.3))
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := Enumerate(g, WithBlockRatio(0.3), WithHeaviestFirst(), WithExtensionFilter())
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Cliques) != len(tuned.Cliques) {
		t.Fatalf("options changed results: %d vs %d", len(base.Cliques), len(tuned.Cliques))
	}
	for i := range base.Cliques {
		if key(base.Cliques[i]) != key(tuned.Cliques[i]) {
			t.Fatalf("options permuted output at %d", i)
		}
	}
}

func TestEnumerateStreamPublicAPI(t *testing.T) {
	g := GenerateSocialNetwork(300, 4, 0.6, 33)
	batch, err := Enumerate(g, WithBlockRatio(0.3), WithExtensionFilter())
	if err != nil {
		t.Fatal(err)
	}
	var got [][]int32
	stats, err := EnumerateStream(g, func(c []int32, _ int) {
		cp := make([]int32, len(c))
		copy(cp, c)
		got = append(got, cp)
	}, WithBlockRatio(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batch.Cliques) || stats.TotalCliques != len(got) {
		t.Fatalf("stream %d cliques (stats %d), batch %d", len(got), stats.TotalCliques, len(batch.Cliques))
	}
	for i := range got {
		if key(got[i]) != key(batch.Cliques[i]) {
			t.Fatalf("stream order diverges at %d", i)
		}
	}
	if _, err := EnumerateStream(g, func([]int32, int) {}, WithBlockRatio(9)); err == nil {
		t.Fatal("bad option accepted")
	}
}

func TestLoadBounded(t *testing.T) {
	g := GenerateSocialNetwork(300, 4, 0.6, 77)
	p := filepath.Join(t.TempDir(), "g.txt")
	if err := Save(p, g); err != nil {
		t.Fatal(err)
	}
	a, _, err := Load(p)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := LoadBounded(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("bounded loader diverged: n=%d/%d m=%d/%d", a.N(), b.N(), a.M(), b.M())
	}
	ra, err := Enumerate(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Enumerate(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.Cliques) != len(rb.Cliques) {
		t.Fatalf("clique counts differ: %d vs %d", len(ra.Cliques), len(rb.Cliques))
	}
}

func TestCountMaxCliques(t *testing.T) {
	g := GenerateSocialNetwork(200, 4, 0.6, 71)
	res, err := Enumerate(g)
	if err != nil {
		t.Fatal(err)
	}
	n, err := CountMaxCliques(g)
	if err != nil || n != len(res.Cliques) {
		t.Fatalf("CountMaxCliques = %d, %v; want %d", n, err, len(res.Cliques))
	}
	if _, err := CountMaxCliques(g, WithBlockRatio(5)); err == nil {
		t.Fatal("bad option accepted")
	}
}

func TestFaultToleranceOptionValidation(t *testing.T) {
	g := FromEdges(2, []Edge{{U: 0, V: 1}})
	bad := []Option{
		WithTaskTimeout(0), // ambiguous: derived default vs disabled
		WithTaskRetries(0), // ambiguous: default budget vs unlimited
		WithWorkerReport(nil),
	}
	for i, opt := range bad {
		if _, err := Enumerate(g, opt); err == nil {
			t.Errorf("bad fault-tolerance option %d accepted", i)
		}
	}
}

func TestEnumerateDistributedWithFaultOptions(t *testing.T) {
	addrs, stop, err := StartLocalWorkers(2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	g := GenerateSocialNetwork(250, 4, 0.6, 51)
	local, err := Enumerate(g, WithBlockRatio(0.5))
	if err != nil {
		t.Fatal(err)
	}
	var report *DialReport
	dist, err := Enumerate(g,
		WithBlockRatio(0.5),
		WithWorkers(addrs...),
		WithTaskTimeout(30*time.Second),
		WithTaskRetries(5),
		WithAutoReconnect(),
		WithWorkerReport(func(r DialReport) { report = &r }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Cliques) != len(local.Cliques) {
		t.Fatalf("fault-tolerant run found %d cliques, want %d", len(dist.Cliques), len(local.Cliques))
	}
	if report == nil {
		t.Fatal("WithWorkerReport callback never invoked")
	}
	if report.Degraded() || report.Connected != 2 || len(report.Addrs) != 2 {
		t.Fatalf("report = %+v, want clean 2-worker start", *report)
	}
}

func TestEnumerateContextCancelled(t *testing.T) {
	g := GenerateSocialNetwork(200, 4, 0.6, 53)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EnumerateContext(ctx, g); !errors.Is(err, context.Canceled) {
		t.Fatalf("EnumerateContext err = %v, want context.Canceled", err)
	}
	_, err := EnumerateStreamContext(ctx, g, func([]int32, int) {})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("EnumerateStreamContext err = %v, want context.Canceled", err)
	}
}
