package mce

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// The non-context entry points are thin delegates to their Context variants
// (the contract mcevet's ctxplumb analyzer enforces statically). These tests
// pin the dynamic half of that contract: a background context changes
// nothing, and a cancelled context aborts before work ships.

func cliqueSet(cliques [][]int32) map[string]bool {
	set := make(map[string]bool, len(cliques))
	for _, c := range cliques {
		set[fmt.Sprint(c)] = true
	}
	return set
}

func TestEnumerateContextBackgroundMatchesEnumerate(t *testing.T) {
	g := GenerateSocialNetwork(300, 4, 0.6, 61)
	plain, err := Enumerate(g)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := EnumerateContext(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Cliques, ctxed.Cliques) {
		t.Fatalf("EnumerateContext(Background) found %d cliques, Enumerate found %d; sets equal=%v",
			len(ctxed.Cliques), len(plain.Cliques),
			reflect.DeepEqual(cliqueSet(plain.Cliques), cliqueSet(ctxed.Cliques)))
	}
}

func TestEnumerateStreamContextBackgroundMatchesStream(t *testing.T) {
	g := GenerateSocialNetwork(300, 4, 0.6, 67)
	collect := func(stream func(func([]int32, int)) error) ([][]int32, error) {
		var out [][]int32
		err := stream(func(c []int32, _ int) {
			out = append(out, append([]int32(nil), c...))
		})
		return out, err
	}
	plain, err := collect(func(emit func([]int32, int)) error {
		_, err := EnumerateStream(g, emit)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := collect(func(emit func([]int32, int)) error {
		_, err := EnumerateStreamContext(context.Background(), g, emit)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, ctxed) {
		t.Fatalf("stream with background context emitted %d cliques, plain emitted %d",
			len(ctxed), len(plain))
	}
}

// TestEnumerateContextCancelledBeforeDial pins the PR's fix: the dial phase
// now runs under the caller's context, so a cancelled context aborts before
// any worker connection is attempted — even when the address list points at
// live workers.
func TestEnumerateContextCancelledBeforeDial(t *testing.T) {
	addrs, stop, err := StartLocalWorkers(1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	g := GenerateSocialNetwork(150, 4, 0.6, 71)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = EnumerateContext(ctx, g, WithWorkers(addrs...))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("EnumerateContext with workers err = %v, want context.Canceled", err)
	}
}

// TestEnumerateDistributedContextMatchesLocal runs the full public pipeline
// through live TCP workers under a background context and checks the clique
// family against the purely local run.
func TestEnumerateDistributedContextMatchesLocal(t *testing.T) {
	addrs, stop, err := StartLocalWorkers(2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	g := GenerateSocialNetwork(400, 5, 0.5, 73)
	local, err := Enumerate(g)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := EnumerateContext(context.Background(), g, WithBlockRatio(0.5), WithWorkers(addrs...))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cliqueSet(local.Cliques), cliqueSet(dist.Cliques)) {
		t.Fatalf("distributed context run found %d cliques, local found %d",
			len(dist.Cliques), len(local.Cliques))
	}
}
