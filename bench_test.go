package mce

// This file is the reproduction harness: one testing.B benchmark per table
// and figure of the paper's evaluation (see DESIGN.md §4 for the index),
// plus the ablations called out in DESIGN.md §5. Each benchmark regenerates
// the corresponding rows/series and prints them once, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. EXPERIMENTS.md records the paper-reported
// versus measured values.

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"mce/internal/cluster"
	"mce/internal/community"
	"mce/internal/core"
	"mce/internal/decomp"
	"mce/internal/diskgraph"
	"mce/internal/experiments"
	"mce/internal/extmce"
	"mce/internal/filter"
	"mce/internal/gen"
	"mce/internal/graph"
	"mce/internal/incremental"
	"mce/internal/kplex"
	"mce/internal/maxclique"
	"mce/internal/mcealg"
)

// printOnce gates table printing so repeated b.N iterations stay quiet.
var printOnce sync.Map

func once(name string, fn func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fn()
	}
}

// --- Table 1 -------------------------------------------------------------

func BenchmarkTable1ComboWins(b *testing.B) {
	corpus := gen.Corpus(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, err := experiments.MeasureCorpus(corpus)
		if err != nil {
			b.Fatal(err)
		}
		rows := experiments.Table1(ms)
		once("t1", func() {
			b.StopTimer()
			fmt.Printf("\n[Table 1] #times each combo was fastest over %d graphs\n", len(ms))
			fmt.Printf("%-12s %8s %8s %8s\n", "Algorithm", "Matrix", "Lists", "BitSets")
			for _, alg := range []mcealg.Algorithm{mcealg.BKPivot, mcealg.Tomita, mcealg.Eppstein, mcealg.XPivot} {
				wins := map[mcealg.Structure]int{}
				for _, r := range rows {
					if r.Combo.Alg == alg {
						wins[r.Combo.Struct] = r.Wins
					}
				}
				fmt.Printf("%-12s %8d %8d %8d\n", alg,
					wins[mcealg.Matrix], wins[mcealg.Lists], wins[mcealg.BitSets])
			}
			b.StartTimer()
		})
	}
}

// --- Table 2 -------------------------------------------------------------

func BenchmarkTable2ParameterRanges(b *testing.B) {
	corpus := gen.Corpus(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, err := experiments.MeasureCorpus(corpus)
		if err != nil {
			b.Fatal(err)
		}
		rows := experiments.Table2(ms)
		once("t2", func() {
			b.StopTimer()
			fmt.Printf("\n[Table 2] parameter ranges of the %d-graph corpus\n", len(ms))
			fmt.Printf("%-12s %14s %14s\n", "Metric", "Min", "Max")
			for _, r := range rows {
				fmt.Printf("%-12s %14.5g %14.5g\n", r.Metric, r.Min, r.Max)
			}
			b.StartTimer()
		})
	}
}

// --- Table 3 -------------------------------------------------------------

func BenchmarkTable3Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Table3()
		once("t3", func() {
			b.StopTimer()
			fmt.Printf("\n[Table 3] dataset surrogates (paper original in parentheses)\n")
			fmt.Printf("%-10s %22s %24s %22s\n", "Network", "#nodes", "#edges", "max degree")
			for _, r := range rows {
				fmt.Printf("%-10s %10d (%9d) %12d (%9d) %10d (%7d)\n",
					r.Name, r.Nodes, r.PaperNodes, r.Edges, r.PaperEdges,
					r.MaxDegree, r.PaperMaxDegree)
			}
			b.StartTimer()
		})
	}
}

// --- Figures 3 and 4 -----------------------------------------------------

func BenchmarkFigure3DecisionTree(b *testing.B) {
	corpus := gen.Corpus(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, err := experiments.MeasureCorpus(corpus)
		if err != nil {
			b.Fatal(err)
		}
		eval := experiments.Figures3And4(ms)
		once("f3", func() {
			b.StopTimer()
			fmt.Printf("\n[Figure 3] decision tree trained on %d graphs (tested on %d, accuracy %.0f%%):\n%s",
				eval.TrainGraphs, eval.TestGraphs, 100*eval.TestAccuracy, eval.Tree)
			b.StartTimer()
		})
	}
}

func BenchmarkFigure4TreeVsFixed(b *testing.B) {
	corpus := gen.Corpus(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, err := experiments.MeasureCorpus(corpus)
		if err != nil {
			b.Fatal(err)
		}
		eval := experiments.Figures3And4(ms)
		once("f4", func() {
			b.StopTimer()
			fmt.Printf("\n[Figure 4] total time on the test set (decision tree vs 5 best fixed combos)\n")
			fmt.Printf("%-20s %12v\n", "Decision Tree", eval.TreeTime)
			for _, ft := range eval.FixedTimes[:5] {
				fmt.Printf("%-20s %12v\n", ft.Combo, ft.Total)
			}
			b.StartTimer()
		})
	}
}

// --- Figure 6 ------------------------------------------------------------

func BenchmarkFigure6DegreeDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, graphs := experiments.Table3()
		rows := experiments.Figure6(graphs)
		once("f6", func() {
			b.StopTimer()
			fmt.Printf("\n[Figure 6] truncated degree distribution (#nodes per degree 0..20, last bin = >20)\n")
			for _, r := range rows {
				fmt.Printf("%-10s low-degree share %.0f%%  alpha=%.2f  counts=%v\n",
					r.Name, 100*r.LowDegreeShare, r.Alpha, r.Counts)
			}
			b.StartTimer()
		})
	}
}

// --- Figures 7 and 8 -----------------------------------------------------

func sweepDatasets(b *testing.B, names []string) map[string][]experiments.RatioResult {
	b.Helper()
	out := map[string][]experiments.RatioResult{}
	for _, name := range names {
		spec, err := gen.Dataset(name)
		if err != nil {
			b.Fatal(err)
		}
		results, err := experiments.RunRatioSweep(spec.Build(), experiments.PaperRatios())
		if err != nil {
			b.Fatal(err)
		}
		out[name] = results
	}
	return out
}

func allDatasetNames() []string {
	var names []string
	for _, s := range gen.Datasets() {
		names = append(names, s.Name)
	}
	return names
}

func BenchmarkFigure7DecompositionTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweeps := sweepDatasets(b, allDatasetNames())
		once("f7", func() {
			b.StopTimer()
			fmt.Printf("\n[Figure 7] decomposition time vs m/d (plus first-level iterations)\n")
			fmt.Printf("%-10s", "dataset")
			for _, r := range experiments.PaperRatios() {
				fmt.Printf(" %14s", fmt.Sprintf("m/d=%.1f", r))
			}
			fmt.Println()
			for _, name := range sortedKeys(sweeps) {
				fmt.Printf("%-10s", name)
				for _, rr := range sweeps[name] {
					fmt.Printf(" %10v(%d)", rr.Decomp.Round(time.Microsecond), rr.Iterations)
				}
				fmt.Println()
			}
			b.StartTimer()
		})
	}
}

func BenchmarkFigure8CliqueTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweeps := sweepDatasets(b, allDatasetNames())
		once("f8", func() {
			b.StopTimer()
			fmt.Printf("\n[Figure 8] clique computation time vs m/d (serial block analysis)\n")
			fmt.Printf("%-10s", "dataset")
			for _, r := range experiments.PaperRatios() {
				fmt.Printf(" %12s", fmt.Sprintf("m/d=%.1f", r))
			}
			fmt.Println()
			for _, name := range sortedKeys(sweeps) {
				fmt.Printf("%-10s", name)
				for _, rr := range sweeps[name] {
					fmt.Printf(" %12v", (rr.Analysis + rr.Filter).Round(time.Microsecond))
				}
				fmt.Println()
			}
			b.StartTimer()
		})
	}
}

// --- Figures 9 and 10 ----------------------------------------------------

func printCliqueSplit(header string, sweeps map[string][]experiments.RatioResult) {
	fmt.Printf("\n%s\n", header)
	for _, name := range sortedKeys(sweeps) {
		fmt.Printf("%-10s (max clique size %d)\n", name, sweeps[name][0].MaxCliqueSize)
		fmt.Printf("  %-8s %12s %12s %10s %10s\n", "m/d", "#feasible", "#hub-only", "avg|feas|", "avg|hub|")
		for _, rr := range sweeps[name] {
			fmt.Printf("  %-8.1f %12d %12d %10.2f %10.2f\n",
				rr.Ratio, rr.FeasibleCliques, rr.HubCliques, rr.AvgSizeFeasible, rr.AvgSizeHub)
		}
	}
}

func BenchmarkFigure9TwitterCliques(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweeps := sweepDatasets(b, []string{"twitter1", "twitter2", "twitter3"})
		once("f9", func() {
			b.StopTimer()
			printCliqueSplit("[Figure 9] clique counts and sizes, feasible (white) vs hub-only (gray)", sweeps)
			b.StartTimer()
		})
	}
}

func BenchmarkFigure10FacebookGoogleCliques(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweeps := sweepDatasets(b, []string{"facebook", "google+"})
		once("f10", func() {
			b.StopTimer()
			printCliqueSplit("[Figure 10] clique counts and sizes, feasible (white) vs hub-only (gray)", sweeps)
			b.StartTimer()
		})
	}
}

// --- Figure 11 -----------------------------------------------------------

func BenchmarkFigure11Top200(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweeps := sweepDatasets(b, allDatasetNames())
		once("f11", func() {
			b.StopTimer()
			fmt.Printf("\n[Figure 11] hub-only share of the 200 largest maximal cliques\n")
			fmt.Printf("%-10s", "dataset")
			for _, r := range experiments.PaperRatios() {
				fmt.Printf(" %9s", fmt.Sprintf("m/d=%.1f", r))
			}
			fmt.Println()
			for _, name := range sortedKeys(sweeps) {
				fmt.Printf("%-10s", name)
				for _, rr := range sweeps[name] {
					fmt.Printf(" %8.0f%%", 100*rr.Top200HubShare)
				}
				fmt.Println()
			}
			b.StartTimer()
		})
	}
}

// --- X1: hub-neglecting baseline ------------------------------------------

func BenchmarkHubNeglectBaseline(b *testing.B) {
	spec, err := gen.Dataset("twitter1")
	if err != nil {
		b.Fatal(err)
	}
	g := spec.Build()
	ratios := []float64{0.9, 0.5, 0.3, 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := experiments.HubNeglectBaseline(g, ratios)
		if err != nil {
			b.Fatal(err)
		}
		once("x1", func() {
			b.StopTimer()
			fmt.Printf("\n[X1] hub-neglecting (EmMCE-style) baseline on the twitter1 surrogate (%d nodes)\n", g.N())
			fmt.Printf("%-8s %6s %10s %10s %10s %10s %14s\n",
				"m/d", "m", "truth", "found", "missed", "spurious", "maxMissedSize")
			for _, r := range results {
				fmt.Printf("%-8.1f %6d %10d %10d %10d %10d %14d\n",
					r.Ratio, r.M, r.Truth, r.Found, r.Missed, r.Spurious, r.MaxMissedSize)
			}
			b.StartTimer()
		})
	}
}

// --- X3: communication overhead ---------------------------------------------

func BenchmarkCommunicationOverhead(b *testing.B) {
	spec, err := gen.Dataset("twitter1")
	if err != nil {
		b.Fatal(err)
	}
	g := spec.Build()
	addrs, stop, err := StartLocalWorkers(4)
	if err != nil {
		b.Fatal(err)
	}
	defer stop()
	client, err := cluster.Dial(addrs, cluster.ClientOptions{Latency: 500 * time.Microsecond})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := experiments.CommunicationOverhead(g, experiments.PaperRatios(), client)
		if err != nil {
			b.Fatal(err)
		}
		once("x3", func() {
			b.StopTimer()
			fmt.Printf("\n[X3] communication overhead: local vs 4 TCP workers with 0.5ms link latency\n")
			fmt.Printf("%-8s %8s %12s %14s\n", "m/d", "blocks", "local", "distributed")
			for _, p := range points {
				fmt.Printf("%-8.1f %8d %12v %14v\n", p.Ratio, p.Blocks,
					p.Local.Round(time.Millisecond), p.Distributed.Round(time.Millisecond))
			}
			b.StartTimer()
		})
	}
}

// --- X2: Theorem 1 hard chain ----------------------------------------------

func BenchmarkTheorem1HardChain(b *testing.B) {
	ns := []int{50, 100, 200, 400}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := experiments.HardChainRounds(ns, 4)
		if err != nil {
			b.Fatal(err)
		}
		once("x2", func() {
			b.StopTimer()
			fmt.Printf("\n[X2] Theorem 1(2): first-level iterations on the H_n chain (m=4)\n")
			for _, p := range points {
				fmt.Printf("n=%-5d iterations=%d\n", p.N, p.Iterations)
			}
			b.StartTimer()
		})
	}
}

// --- Ablations (DESIGN.md §5) ----------------------------------------------

func BenchmarkAblationBlockGrowth(b *testing.B) {
	g := gen.HolmeKim(4000, 6, 0.7, 55)
	m := g.MaxDegree() / 2
	feasible, _ := decomp.Cut(g, m)
	for _, minAdj := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("minadj-%d", minAdj), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				blocks := decomp.Blocks(g, feasible, m, decomp.Options{MinAdjacency: minAdj})
				if len(blocks) == 0 {
					b.Fatal("no blocks")
				}
			}
		})
	}
}

func BenchmarkAblationFilter(b *testing.B) {
	// Hub-heavy graph: compare the paper-faithful containment filter with
	// the extension-based fast path in the Lemma 1 setting.
	g := gen.BarabasiAlbert(3000, 6, 66)
	m := g.MaxDegree() / 4
	feasSet := make([]bool, g.N())
	var hubs []int32
	for v := int32(0); v < int32(g.N()); v++ {
		if g.Degree(v) < m {
			feasSet[v] = true
		} else {
			hubs = append(hubs, v)
		}
	}
	var cf [][]int32
	res, err := core.FindMaxCliques(g, core.Options{BlockSize: m})
	if err != nil {
		b.Fatal(err)
	}
	for i, c := range res.Cliques {
		if res.Level[i] == 0 {
			cf = append(cf, c)
		}
	}
	sub, orig := graph.Induced(g, hubs)
	var ch [][]int32
	mcealg.ReferenceEnumerate(sub, func(c []int32) {
		t := make([]int32, len(c))
		for i, v := range c {
			t[i] = orig[v]
		}
		ch = append(ch, t)
	})
	b.Run("containment", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = filter.Filter(ch, cf)
		}
	})
	b.Run("extension", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = filter.ByExtension(g, ch, func(v int32) bool { return feasSet[v] })
		}
	})
}

func BenchmarkAblationDecisionTreeVsFixed(b *testing.B) {
	// End-to-end: the engine with the decision tree vs pinned combos on a
	// social surrogate (complements Figure 4's per-block measurement).
	g := gen.HolmeKim(5000, 6, 0.7, 88)
	b.Run("decision-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.FindMaxCliques(g, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, combo := range []mcealg.Combo{
		{Alg: mcealg.Tomita, Struct: mcealg.BitSets},
		{Alg: mcealg.Eppstein, Struct: mcealg.Lists},
	} {
		combo := combo
		b.Run(combo.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.FindMaxCliques(g, core.Options{FixedCombo: &combo}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Scalability -----------------------------------------------------------

func BenchmarkScalability(b *testing.B) {
	for _, n := range []int{2000, 4000, 8000, 16000} {
		g := gen.HolmeKim(n, 6, 0.7, int64(n))
		b.Run(fmt.Sprintf("n-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.FindMaxCliques(g, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDistributedWorkers(b *testing.B) {
	g := gen.HolmeKim(4000, 6, 0.7, 77)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			addrs, stop, err := StartLocalWorkers(workers)
			if err != nil {
				b.Fatal(err)
			}
			defer stop()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Enumerate(g, WithWorkers(addrs...)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sortedKeys(m map[string][]experiments.RatioResult) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// --- Extension benches (future-work features, DESIGN.md §5) ----------------

func BenchmarkExtensionCommunities(b *testing.B) {
	g := gen.HolmeKim(4000, 6, 0.7, 61)
	res, err := core.FindMaxCliques(g, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs, err := community.Detect(res.Cliques, 4)
		if err != nil {
			b.Fatal(err)
		}
		once("ext-comm", func() {
			b.StopTimer()
			fmt.Printf("\n[EXT] k-clique percolation (k=4) on a %d-node surrogate: %d communities, largest %d nodes\n",
				g.N(), len(cs), len(cs[0].Nodes))
			b.StartTimer()
		})
	}
}

func BenchmarkExtensionKPlex(b *testing.B) {
	g := gen.HolmeKim(200, 4, 0.6, 62)
	for _, k := range []int{1, 2} {
		b.Run(fmt.Sprintf("k-%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := kplex.Collect(g, kplex.Options{K: k}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExtensionMaxClique(b *testing.B) {
	g := gen.HolmeKim(5000, 6, 0.7, 63)
	b.Run("branch-and-bound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = maxclique.Find(g)
		}
	})
	b.Run("via-enumeration", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			max := 0
			err := mcealg.Enumerate(g, mcealg.Combo{Alg: mcealg.Eppstein, Struct: mcealg.Lists},
				func(c []int32) {
					if len(c) > max {
						max = len(c)
					}
				})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkExtensionIncremental(b *testing.B) {
	g := gen.HolmeKim(4000, 6, 0.7, 64)
	tr, err := incremental.New(g)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("toggle-one-edge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := tr.RemoveEdge(100, 101); err != nil {
				b.Fatal(err)
			}
			if _, _, err := tr.AddEdge(100, 101); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.FindMaxCliques(g, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkExtensionOutOfCore(b *testing.B) {
	g := gen.HolmeKim(8000, 6, 0.7, 68)
	dir := b.TempDir()
	path := dir + "/g.mceg"
	if err := diskgraph.Write(path, g); err != nil {
		b.Fatal(err)
	}
	b.Run("out-of-core", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dg, err := diskgraph.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			stats, err := extmce.Enumerate(dg, extmce.Options{BlockRatio: 0.3},
				func([]int32, int) { n++ })
			dg.Close()
			if err != nil {
				b.Fatal(err)
			}
			once("ext-ooc", func() {
				b.StopTimer()
				fmt.Printf("\n[EXT] out-of-core on %d nodes: %d cliques, %d blocks, %d disk reads\n",
					g.N(), stats.TotalCliques, stats.Blocks, stats.DiskReads)
				b.StartTimer()
			})
		}
	})
	b.Run("in-memory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.FindMaxCliques(g, core.Options{BlockRatio: 0.3}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblationSchedule(b *testing.B) {
	g := gen.HolmeKim(6000, 6, 0.7, 65)
	for _, sched := range []core.Schedule{core.ScheduleFIFO, core.ScheduleLPT} {
		name := "fifo"
		if sched == core.ScheduleLPT {
			name = "lpt"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.FindMaxCliques(g, core.Options{Schedule: sched, Parallelism: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationSeedOrder(b *testing.B) {
	g := gen.HolmeKim(5000, 6, 0.7, 67)
	for _, order := range []decomp.Order{decomp.OrderDegreeAsc, decomp.OrderRandom} {
		name := "degree-asc"
		if order == decomp.OrderRandom {
			name = "random"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.Options{Block: decomp.Options{Order: order, Seed: 1}}
				if _, err := core.FindMaxCliques(g, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
