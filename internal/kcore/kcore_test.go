package kcore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mce/internal/graph"
)

func path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(int32(v), int32(v+1))
	}
	return b.Build()
}

func cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(int32(v), int32((v+1)%n))
	}
	return b.Build()
}

func TestDegeneracyKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"empty", graph.Empty(7), 0},
		{"single-node", graph.Empty(1), 0},
		{"zero-node", graph.Empty(0), 0},
		{"path10", path(10), 1},
		{"cycle8", cycle(8), 2},
		{"K5", graph.Complete(5), 4},
		{"K2", graph.Complete(2), 1},
	}
	for _, c := range cases {
		if got := Degeneracy(c.g); got != c.want {
			t.Errorf("%s: degeneracy = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestDegeneracyStar(t *testing.T) {
	// Star: one hub connected to 9 leaves. 1-degenerate despite max degree 9.
	b := graph.NewBuilder(10)
	for v := int32(1); v < 10; v++ {
		b.AddEdge(0, v)
	}
	g := b.Build()
	if got := Degeneracy(g); got != 1 {
		t.Fatalf("star degeneracy = %d, want 1", got)
	}
}

func TestDecomposeOrderProperty(t *testing.T) {
	// In a degeneracy order, every node has ≤ degeneracy neighbours later
	// in the order. Check on a clique plus pendant path.
	b := graph.NewBuilder(10)
	for u := int32(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			b.AddEdge(u, v)
		}
	}
	for v := int32(4); v < 9; v++ {
		b.AddEdge(v, v+1)
	}
	g := b.Build()
	d := Decompose(g)
	if d.Degeneracy != 4 {
		t.Fatalf("degeneracy = %d, want 4", d.Degeneracy)
	}
	assertDegeneracyOrder(t, g, d)
}

func assertDegeneracyOrder(t *testing.T, g *graph.Graph, d *Decomposition) {
	t.Helper()
	if len(d.Order) != g.N() {
		t.Fatalf("order covers %d of %d nodes", len(d.Order), g.N())
	}
	seen := make([]bool, g.N())
	for _, v := range d.Order {
		if seen[v] {
			t.Fatalf("node %d repeated in order", v)
		}
		seen[v] = true
	}
	for _, v := range d.Order {
		later := 0
		for _, u := range g.Neighbors(v) {
			if d.Position[u] > d.Position[v] {
				later++
			}
		}
		if later > d.Degeneracy {
			t.Fatalf("node %d has %d later neighbours > degeneracy %d",
				v, later, d.Degeneracy)
		}
	}
}

func TestCorenessMonotone(t *testing.T) {
	// Coreness recorded along the removal order never decreases, and the
	// final value equals the degeneracy.
	g := graph.Complete(6)
	d := Decompose(g)
	for _, v := range d.Order {
		if int(d.Coreness[v]) > d.Degeneracy {
			t.Fatalf("coreness %d exceeds degeneracy %d", d.Coreness[v], d.Degeneracy)
		}
	}
	last := d.Order[len(d.Order)-1]
	if int(d.Coreness[last]) != d.Degeneracy {
		t.Fatalf("last removed node coreness = %d, want %d", d.Coreness[last], d.Degeneracy)
	}
}

func TestCorenessTwoCommunities(t *testing.T) {
	// K4 on {0..3} plus path {4,5}: K4 members have coreness 3, path 1.
	b := graph.NewBuilder(6)
	for u := int32(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.AddEdge(u, v)
		}
	}
	b.AddEdge(4, 5)
	d := Decompose(b.Build())
	for v := int32(0); v < 4; v++ {
		if d.Coreness[v] != 3 {
			t.Errorf("coreness[%d] = %d, want 3", v, d.Coreness[v])
		}
	}
	for v := int32(4); v < 6; v++ {
		if d.Coreness[v] != 1 {
			t.Errorf("coreness[%d] = %d, want 1", v, d.Coreness[v])
		}
	}
}

func TestDStar(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"empty", graph.Empty(4), 0},
		{"K5", graph.Complete(5), 4},   // 5 nodes of degree 4 ≥ 4
		{"path4", path(4), 2},          // 2 inner nodes of degree 2
		{"edge", graph.Complete(2), 1}, // 2 nodes of degree 1
		{"zero-node", graph.Empty(0), 0},
	}
	for _, c := range cases {
		if got := DStar(c.g); got != c.want {
			t.Errorf("%s: d* = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestDStarStar(t *testing.T) {
	// Star with 9 leaves: only one node has degree ≥ 2, so d* = 1.
	b := graph.NewBuilder(10)
	for v := int32(1); v < 10; v++ {
		b.AddEdge(0, v)
	}
	if got := DStar(b.Build()); got != 1 {
		t.Fatalf("star d* = %d, want 1", got)
	}
}

func TestMeasure(t *testing.T) {
	g := graph.Complete(5)
	f := Measure(g)
	if f.Nodes != 5 || f.Edges != 10 || f.Degeneracy != 4 || f.DStar != 4 {
		t.Fatalf("Measure(K5) = %+v", f)
	}
	if f.Density != 1 {
		t.Fatalf("Density = %f, want 1", f.Density)
	}
}

// Property: degeneracy matches a naive O(n^2) peeling reference, and the
// degeneracy order invariant holds on random graphs.
func TestQuickDegeneracyMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 1
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		d := Decompose(g)
		if d.Degeneracy != naiveDegeneracy(g) {
			return false
		}
		for _, v := range d.Order {
			later := 0
			for _, u := range g.Neighbors(v) {
				if d.Position[u] > d.Position[v] {
					later++
				}
			}
			if later > d.Degeneracy {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// naiveDegeneracy peels minimum-degree nodes with a quadratic scan.
func naiveDegeneracy(g *graph.Graph) int {
	n := g.N()
	deg := make([]int, n)
	alive := make([]bool, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(int32(v))
		alive[v] = true
	}
	degeneracy := 0
	for left := n; left > 0; left-- {
		min, minV := 1<<30, -1
		for v := 0; v < n; v++ {
			if alive[v] && deg[v] < min {
				min, minV = deg[v], v
			}
		}
		if min > degeneracy {
			degeneracy = min
		}
		alive[minV] = false
		for _, u := range g.Neighbors(int32(minV)) {
			if alive[u] {
				deg[u]--
			}
		}
	}
	return degeneracy
}

// Property: d* equals the brute-force h-index of the degree sequence.
func TestQuickDStarMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 1
		b := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		want := 0
		for d := 0; d <= n; d++ {
			cnt := 0
			for v := int32(0); v < int32(n); v++ {
				if g.Degree(v) >= d {
					cnt++
				}
			}
			if cnt >= d {
				want = d
			}
		}
		return DStar(g) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecompose(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const n = 20000
	gb := graph.NewBuilder(n)
	for i := 0; i < 8*n; i++ {
		gb.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	g := gb.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Decompose(g)
	}
}
