// Package kcore computes the sparsity metrics the paper builds on: the
// degeneracy (coreness) of a network, the degeneracy ordering used by the
// Eppstein–Strash algorithm, and the d* statistic used as a decision-tree
// feature (paper §4: the largest d* such that at least d* nodes have degree
// ≥ d*, i.e. the h-index of the degree sequence).
//
// The decomposition algorithm is the classic linear-time bucket peeling of
// Matula–Beck / Batagelj–Zaveršnik [4]: repeatedly remove a minimum-degree
// node; the degeneracy is the largest degree seen at removal time.
package kcore

import "mce/internal/graph"

// Decomposition is the result of peeling a graph by minimum degree.
type Decomposition struct {
	// Order lists the nodes in degeneracy order (the order of removal).
	// In this order, every node has at most Degeneracy neighbours after it.
	Order []int32
	// Coreness[v] is the largest k such that v belongs to the k-core.
	Coreness []int32
	// Degeneracy is the maximum coreness, the paper's sparsity measure d.
	Degeneracy int
	// Position[v] is the index of v in Order.
	Position []int32
}

// Decompose computes the k-core decomposition of g in O(N + M) time.
func Decompose(g *graph.Graph) *Decomposition {
	n := g.N()
	d := &Decomposition{
		Order:    make([]int32, 0, n),
		Coreness: make([]int32, n),
		Position: make([]int32, n),
	}
	if n == 0 {
		return d
	}

	deg := make([]int32, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(int32(v)))
		if int(deg[v]) > maxDeg {
			maxDeg = int(deg[v])
		}
	}

	// Bucket sort nodes by degree: bin[d] is the start index of degree-d
	// nodes inside vert, pos[v] is v's index in vert.
	bin := make([]int32, maxDeg+2)
	for v := 0; v < n; v++ {
		bin[deg[v]+1]++
	}
	for i := 1; i < len(bin); i++ {
		bin[i] += bin[i-1]
	}
	vert := make([]int32, n)
	pos := make([]int32, n)
	fill := make([]int32, maxDeg+1)
	copy(fill, bin[:maxDeg+1])
	for v := 0; v < n; v++ {
		pos[v] = fill[deg[v]]
		vert[pos[v]] = int32(v)
		fill[deg[v]]++
	}

	degeneracy := int32(0)
	removed := make([]bool, n)
	for i := 0; i < n; i++ {
		v := vert[i]
		if deg[v] > degeneracy {
			degeneracy = deg[v]
		}
		d.Coreness[v] = degeneracy
		d.Position[v] = int32(len(d.Order))
		d.Order = append(d.Order, v)
		removed[v] = true
		for _, u := range g.Neighbors(v) {
			if removed[u] || deg[u] <= deg[v] {
				continue
			}
			// Move u one degree bucket down: swap it with the first
			// element of its current bucket, then advance that bucket.
			du := deg[u]
			pu := pos[u]
			pw := bin[du]
			w := vert[pw]
			if u != w {
				vert[pu], vert[pw] = w, u
				pos[u], pos[w] = pw, pu
			}
			bin[du]++
			deg[u]--
		}
	}
	d.Degeneracy = int(degeneracy)
	return d
}

// Degeneracy returns only the degeneracy of g.
func Degeneracy(g *graph.Graph) int {
	return Decompose(g).Degeneracy
}

// DStar returns the h-index of the degree sequence: the maximum value d*
// such that the graph has at least d* nodes with degree ≥ d*. The paper uses
// it as a linear-time estimate of the size of the densest portion of a block.
func DStar(g *graph.Graph) int {
	n := g.N()
	// counts[d] = number of nodes with degree exactly min(d, n).
	counts := make([]int, n+1)
	for v := int32(0); v < int32(n); v++ {
		d := g.Degree(v)
		if d > n {
			d = n
		}
		counts[d]++
	}
	atLeast := 0
	for d := n; d >= 0; d-- {
		atLeast += counts[d]
		if atLeast >= d {
			return d
		}
	}
	return 0
}

// Features bundles the five block parameters the paper's decision tree
// consumes (§4: nodes, edges, density, degeneracy, d*).
type Features struct {
	Nodes      int
	Edges      int
	Density    float64
	Degeneracy int
	DStar      int
}

// Measure extracts the decision-tree features of g.
func Measure(g *graph.Graph) Features {
	return Features{
		Nodes:      g.N(),
		Edges:      g.M(),
		Density:    g.Density(),
		Degeneracy: Degeneracy(g),
		DStar:      DStar(g),
	}
}
