// Package resguard enforces a coordinator-side memory budget with
// backpressure instead of OOM death. A Guard watches the Go heap against a
// configured byte budget and pauses workers that are about to take on more
// buffered work while the heap is over the watermark — dispatch slows down,
// results drain, the heap recedes, work resumes.
//
// The guard is deliberately conservative about liveness: the sole active
// holder always proceeds, so progress is guaranteed even when a single
// block's result is larger than the whole budget — the run degrades to
// serial execution rather than deadlocking. Heap readings come from
// runtime.ReadMemStats, cached for a short interval so the hot dispatch
// path almost never pays for a stats collection.
package resguard

import (
	"runtime"
	"sync/atomic"
	"time"

	"mce/internal/telemetry"
)

// pollInterval is how long one heap reading stays fresh; it bounds both the
// ReadMemStats rate and the wake-up latency of paused workers.
const pollInterval = 25 * time.Millisecond

// releaseFraction is the hysteresis watermark: paused workers resume once
// the heap drops below budget×releaseFraction, so the guard does not
// flap around the exact budget line.
const releaseFraction = 0.9

// Guard is a memory-budget admission gate shared by the workers of one
// executor (cluster dispatch runners or the local pool). A nil *Guard
// disables all checks at zero cost.
type Guard struct {
	budget  int64
	release int64
	met     *telemetry.Engine

	running atomic.Int64 // admitted holders between Enter and Exit

	lastRead atomic.Int64 // unix nanos of the cached heap reading
	lastHeap atomic.Int64 // cached HeapAlloc bytes
}

// New builds a guard for the given budget in bytes. A budget ≤ 0 means
// "unlimited" and returns nil, which every method accepts.
//
//mce:coldpath allocating constructor, once per batch
func New(budget int64, met *telemetry.Engine) *Guard {
	if budget <= 0 {
		return nil
	}
	return &Guard{
		budget:  budget,
		release: int64(float64(budget) * releaseFraction),
		met:     met,
	}
}

// heap returns the current HeapAlloc estimate, refreshing the cached
// reading when it is older than pollInterval.
func (g *Guard) heap() int64 {
	now := time.Now().UnixNano()
	last := g.lastRead.Load()
	if last != 0 && now-last < int64(pollInterval) {
		return g.lastHeap.Load()
	}
	// One winner refreshes; racing losers use the (still fresh enough)
	// previous reading rather than piling onto ReadMemStats.
	if !g.lastRead.CompareAndSwap(last, now) {
		return g.lastHeap.Load()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	g.lastHeap.Store(int64(ms.HeapAlloc))
	return int64(ms.HeapAlloc)
}

// Enter admits one unit of work, blocking while the heap is over budget.
// Admission when no other holder is running never blocks — a CAS from zero
// running holders always wins — so the run can degrade to serial execution
// but never deadlock on its own budget, even when a single block outweighs
// the whole budget. done aborts the wait early (batch failure or
// cancellation); Enter still counts as admitted then, so every Enter must
// be paired with exactly one Exit.
func (g *Guard) Enter(done <-chan struct{}) {
	if g == nil {
		return
	}
	if g.running.CompareAndSwap(0, 1) {
		return // sole runner: guaranteed progress
	}
	if g.heap() < g.budget {
		g.running.Add(1)
		return
	}
	// Over budget with other work in flight: pause until the heap drains
	// below the release watermark, the other holders finish, or the batch
	// is done with us.
	if g.met != nil {
		g.met.BackpressurePauses.Inc()
	}
	t0 := time.Now()
	defer func() {
		if g.met != nil {
			g.met.BackpressureNs.Add(int64(time.Since(t0)))
		}
	}()
	ticker := time.NewTicker(pollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			g.running.Add(1)
			return
		case <-ticker.C:
		}
		if g.running.CompareAndSwap(0, 1) {
			return // everyone else finished; we are the liveness holder now
		}
		if g.heap() < g.release {
			g.running.Add(1)
			return
		}
	}
}

// OverBudget reports whether the heap currently exceeds the budget. It is
// advisory — a cheap cached read with no admission side effects — and is
// wired as the intra-block enumerator's split gate: while the heap is over
// budget, workers stop materialising new stealable subproblems and recurse
// in place instead, so deque growth counts against the same budget that
// paces block dispatch. A nil guard is never over budget.
func (g *Guard) OverBudget() bool {
	if g == nil {
		return false
	}
	return g.heap() >= g.budget
}

// Exit releases one unit of work admitted by Enter.
func (g *Guard) Exit() {
	if g == nil {
		return
	}
	g.running.Add(-1)
}
