package resguard

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mce/internal/telemetry"
)

func TestNilGuardIsFree(t *testing.T) {
	var g *Guard
	done := make(chan struct{})
	g.Enter(done) // must not panic or block
	g.Exit()
	if New(0, nil) != nil || New(-1, nil) != nil {
		t.Fatal("non-positive budget must return a nil guard")
	}
}

func TestUnderBudgetNeverBlocks(t *testing.T) {
	g := New(1<<62, nil) // effectively unlimited
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				g.Enter(done)
				g.Exit()
			}
		}()
	}
	ok := make(chan struct{})
	go func() { wg.Wait(); close(ok) }()
	select {
	case <-ok:
	case <-time.After(10 * time.Second):
		t.Fatal("guard blocked under budget")
	}
}

// TestSoleRunnerProceedsOverBudget pins the liveness guarantee: with a
// budget far below the live heap, a lone worker is admitted immediately and
// a second worker is admitted as soon as the first exits.
func TestSoleRunnerProceedsOverBudget(t *testing.T) {
	g := New(1, nil) // 1 byte: always over budget
	done := make(chan struct{})

	g.Enter(done) // sole runner: must not block
	var second atomic.Bool
	released := make(chan struct{})
	go func() {
		g.Enter(done)
		second.Store(true)
		g.Exit()
		close(released)
	}()
	// The second worker must stay paused while the first runs.
	time.Sleep(4 * pollInterval)
	if second.Load() {
		t.Fatal("second worker admitted while over budget with one running")
	}
	g.Exit() // first finishes; the waiter becomes the sole runner
	select {
	case <-released:
	case <-time.After(10 * time.Second):
		t.Fatal("waiter not admitted after the sole runner exited")
	}
}

func TestDoneAbortsWait(t *testing.T) {
	g := New(1, nil)
	done := make(chan struct{})
	g.Enter(done) // occupy the sole-runner slot
	aborted := make(chan struct{})
	go func() {
		g.Enter(done)
		g.Exit()
		close(aborted)
	}()
	time.Sleep(2 * pollInterval)
	close(done)
	select {
	case <-aborted:
	case <-time.After(10 * time.Second):
		t.Fatal("done did not abort the backpressure wait")
	}
	g.Exit()
}

func TestBackpressureTelemetry(t *testing.T) {
	met := telemetry.NewEngine()
	g := New(1, met)
	done := make(chan struct{})
	g.Enter(done)
	release := make(chan struct{})
	go func() {
		g.Enter(done)
		g.Exit()
		close(release)
	}()
	time.Sleep(3 * pollInterval)
	g.Exit()
	<-release
	if met.BackpressurePauses.Load() == 0 {
		t.Fatal("BackpressurePauses not counted")
	}
	if met.BackpressureNs.Load() == 0 {
		t.Fatal("BackpressureNs not counted")
	}
}
