// Package bitset implements fixed-capacity bit sets backed by []uint64 words.
//
// Bit sets are the workhorse of the BitSets adjacency structure used by the
// maximal clique enumeration algorithms: candidate sets P and exclusion sets X
// are intersected with neighbourhood rows millions of times per run, so every
// operation here is word-parallel and allocation-conscious. A Set of capacity
// n occupies ceil(n/64) words; all sets participating in binary operations
// must have been created with the same capacity.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit set. The zero value is an empty set of
// capacity 0; use New to create a set able to hold values in [0, n).
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty Set with capacity for values in [0, n).
//
//mce:coldpath allocating constructor; hot callers amortise via scratch free lists
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromSlice returns a Set of capacity n containing every value in vs.
// Values outside [0, n) are ignored.
//
//mce:coldpath allocating constructor
func FromSlice(n int, vs []int32) *Set {
	s := New(n)
	for _, v := range vs {
		if v >= 0 && int(v) < n {
			s.Add(v)
		}
	}
	return s
}

// Cap reports the capacity of the set (the exclusive upper bound on values).
func (s *Set) Cap() int { return s.n }

// Add inserts v into the set. Adding a value outside [0, Cap()) panics,
// matching the behaviour of an out-of-range slice index.
//
//mce:hotpath per-node bitset kernel
func (s *Set) Add(v int32) {
	s.words[v>>6] |= 1 << (uint(v) & 63)
}

// Remove deletes v from the set if present.
//
//mce:hotpath per-node bitset kernel
func (s *Set) Remove(v int32) {
	s.words[v>>6] &^= 1 << (uint(v) & 63)
}

// Has reports whether v is in the set.
//
//mce:hotpath per-node bitset kernel
func (s *Set) Has(v int32) bool {
	return s.words[v>>6]&(1<<(uint(v)&63)) != 0
}

// Empty reports whether the set contains no values.
//
//mce:hotpath per-node bitset kernel
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of values in the set.
//
//mce:hotpath per-node bitset kernel
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clear removes every value, keeping the capacity.
//
//mce:hotpath per-node bitset kernel
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of the set.
//
//mce:coldpath allocating copy, used at subproblem setup
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites the set with the contents of o. The capacities of the
// two sets must match.
//
//mce:hotpath per-node bitset kernel
func (s *Set) CopyFrom(o *Set) {
	copy(s.words, o.words)
}

// And replaces the set with the intersection of itself and o.
//
//mce:hotpath per-node bitset kernel
func (s *Set) And(o *Set) {
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// AndInto stores the intersection of a and b into s without allocating.
// All three sets must share the same capacity.
//
//mce:hotpath per-node bitset kernel
func (s *Set) AndInto(a, b *Set) {
	for i := range s.words {
		s.words[i] = a.words[i] & b.words[i]
	}
}

// AndCount returns |s ∩ o| without materialising the intersection.
//
//mce:hotpath per-node bitset kernel
func (s *Set) AndCount(o *Set) int {
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & o.words[i])
	}
	return c
}

// AndNotInto stores a \ b into s without allocating.
//
//mce:hotpath per-node bitset kernel
func (s *Set) AndNotInto(a, b *Set) {
	for i := range s.words {
		s.words[i] = a.words[i] &^ b.words[i]
	}
}

// Or replaces the set with the union of itself and o.
//
//mce:hotpath per-node bitset kernel
func (s *Set) Or(o *Set) {
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// AndNot removes from the set every value present in o.
//
//mce:hotpath per-node bitset kernel
func (s *Set) AndNot(o *Set) {
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
}

// Intersects reports whether s and o share at least one value.
//
//mce:hotpath per-node bitset kernel
func (s *Set) Intersects(o *Set) bool {
	for i, w := range s.words {
		if w&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every value of s is also in o.
//
//mce:hotpath per-node bitset kernel
func (s *Set) SubsetOf(o *Set) bool {
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o contain exactly the same values.
//
//mce:hotpath per-node bitset kernel
func (s *Set) Equal(o *Set) bool {
	if len(s.words) != len(o.words) {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Next returns the smallest value >= from contained in the set, or -1 if
// there is none. It enables allocation-free iteration:
//
//	for v := s.Next(0); v >= 0; v = s.Next(v + 1) { ... }
//
//mce:hotpath per-node bitset kernel
func (s *Set) Next(from int32) int32 {
	if from < 0 {
		from = 0
	}
	i := int(from >> 6)
	if i >= len(s.words) {
		return -1
	}
	w := s.words[i] >> (uint(from) & 63)
	if w != 0 {
		return from + int32(bits.TrailingZeros64(w))
	}
	for i++; i < len(s.words); i++ {
		if s.words[i] != 0 {
			return int32(i<<6) + int32(bits.TrailingZeros64(s.words[i]))
		}
	}
	return -1
}

// ForEach calls fn for every value in the set in ascending order.
//
//mce:hotpath per-node bitset kernel
func (s *Set) ForEach(fn func(v int32)) {
	for i, w := range s.words {
		base := int32(i << 6)
		for w != 0 {
			fn(base + int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// AppendTo appends the set's values in ascending order to dst and returns
// the extended slice.
func (s *Set) AppendTo(dst []int32) []int32 {
	s.ForEach(func(v int32) { dst = append(dst, v) })
	return dst
}

// Slice returns the set's values in ascending order as a fresh slice.
func (s *Set) Slice() []int32 {
	return s.AppendTo(make([]int32, 0, s.Count()))
}

// String renders the set as "{a, b, c}" for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(v int32) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(strconv.Itoa(int(v)))
	})
	b.WriteByte('}')
	return b.String()
}
