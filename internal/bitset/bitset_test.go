package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if !s.Empty() {
		t.Fatalf("new set not empty")
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
	if s.Cap() != 100 {
		t.Fatalf("Cap = %d, want 100", s.Cap())
	}
}

func TestNewNegativeCapacity(t *testing.T) {
	s := New(-5)
	if s.Cap() != 0 {
		t.Fatalf("Cap = %d, want 0", s.Cap())
	}
	if !s.Empty() {
		t.Fatalf("negative-capacity set should be empty")
	}
}

func TestAddHasRemove(t *testing.T) {
	s := New(200)
	vals := []int32{0, 1, 63, 64, 65, 127, 128, 199}
	for _, v := range vals {
		s.Add(v)
	}
	for _, v := range vals {
		if !s.Has(v) {
			t.Errorf("Has(%d) = false after Add", v)
		}
	}
	if s.Has(2) || s.Has(66) || s.Has(198) {
		t.Errorf("Has reports values never added")
	}
	if s.Count() != len(vals) {
		t.Errorf("Count = %d, want %d", s.Count(), len(vals))
	}
	s.Remove(63)
	s.Remove(64)
	if s.Has(63) || s.Has(64) {
		t.Errorf("values still present after Remove")
	}
	if s.Count() != len(vals)-2 {
		t.Errorf("Count = %d after removals, want %d", s.Count(), len(vals)-2)
	}
	// Removing an absent value is a no-op.
	s.Remove(63)
	if s.Count() != len(vals)-2 {
		t.Errorf("Remove of absent value changed Count")
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(5)
	s.Add(5)
	if s.Count() != 1 {
		t.Fatalf("Count = %d after double Add, want 1", s.Count())
	}
}

func TestFromSliceIgnoresOutOfRange(t *testing.T) {
	s := FromSlice(8, []int32{-3, 0, 3, 7, 8, 100})
	want := []int32{0, 3, 7}
	got := s.Slice()
	if len(got) != len(want) {
		t.Fatalf("Slice = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

func TestClear(t *testing.T) {
	s := FromSlice(128, []int32{1, 64, 127})
	s.Clear()
	if !s.Empty() {
		t.Fatalf("set not empty after Clear")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := FromSlice(70, []int32{1, 2, 69})
	c := s.Clone()
	c.Add(10)
	s.Remove(1)
	if s.Has(10) {
		t.Errorf("mutating clone affected original")
	}
	if !c.Has(1) {
		t.Errorf("mutating original affected clone")
	}
}

func TestCopyFrom(t *testing.T) {
	a := FromSlice(70, []int32{3, 65})
	b := New(70)
	b.Add(7)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Fatalf("CopyFrom: b = %v, want %v", b, a)
	}
}

func TestSetOperations(t *testing.T) {
	n := 130
	a := FromSlice(n, []int32{1, 2, 3, 64, 65, 129})
	b := FromSlice(n, []int32{2, 3, 4, 65, 128})

	and := a.Clone()
	and.And(b)
	assertElems(t, "And", and, []int32{2, 3, 65})

	or := a.Clone()
	or.Or(b)
	assertElems(t, "Or", or, []int32{1, 2, 3, 4, 64, 65, 128, 129})

	diff := a.Clone()
	diff.AndNot(b)
	assertElems(t, "AndNot", diff, []int32{1, 64, 129})

	into := New(n)
	into.AndInto(a, b)
	assertElems(t, "AndInto", into, []int32{2, 3, 65})

	into.AndNotInto(a, b)
	assertElems(t, "AndNotInto", into, []int32{1, 64, 129})

	if got := a.AndCount(b); got != 3 {
		t.Errorf("AndCount = %d, want 3", got)
	}
	if !a.Intersects(b) {
		t.Errorf("Intersects = false, want true")
	}
	c := FromSlice(n, []int32{100})
	if a.Intersects(c) {
		t.Errorf("Intersects with disjoint set = true")
	}
}

func TestSubsetOf(t *testing.T) {
	n := 100
	a := FromSlice(n, []int32{1, 64})
	b := FromSlice(n, []int32{1, 2, 64, 65})
	if !a.SubsetOf(b) {
		t.Errorf("a ⊆ b should hold")
	}
	if b.SubsetOf(a) {
		t.Errorf("b ⊆ a should not hold")
	}
	if !a.SubsetOf(a) {
		t.Errorf("a ⊆ a should hold")
	}
	empty := New(n)
	if !empty.SubsetOf(a) {
		t.Errorf("∅ ⊆ a should hold")
	}
}

func TestEqual(t *testing.T) {
	a := FromSlice(80, []int32{5, 70})
	b := FromSlice(80, []int32{5, 70})
	c := FromSlice(80, []int32{5})
	d := FromSlice(160, []int32{5, 70})
	if !a.Equal(b) {
		t.Errorf("identical sets not Equal")
	}
	if a.Equal(c) {
		t.Errorf("different sets Equal")
	}
	if a.Equal(d) {
		t.Errorf("different-capacity sets Equal")
	}
}

func TestNextIteration(t *testing.T) {
	vals := []int32{0, 5, 63, 64, 100, 191}
	s := FromSlice(192, vals)
	var got []int32
	for v := s.Next(0); v >= 0; v = s.Next(v + 1) {
		got = append(got, v)
	}
	assertSlices(t, "Next iteration", got, vals)

	if v := s.Next(192); v != -1 {
		t.Errorf("Next past capacity = %d, want -1", v)
	}
	if v := s.Next(-10); v != 0 {
		t.Errorf("Next(-10) = %d, want 0", v)
	}
	if v := s.Next(101); v != 191 {
		t.Errorf("Next(101) = %d, want 191", v)
	}
	empty := New(64)
	if v := empty.Next(0); v != -1 {
		t.Errorf("Next on empty = %d, want -1", v)
	}
}

func TestForEachAscending(t *testing.T) {
	s := FromSlice(300, []int32{299, 0, 128, 64})
	var got []int32
	s.ForEach(func(v int32) { got = append(got, v) })
	assertSlices(t, "ForEach", got, []int32{0, 64, 128, 299})
}

func TestAppendTo(t *testing.T) {
	s := FromSlice(10, []int32{2, 4})
	got := s.AppendTo([]int32{9})
	assertSlices(t, "AppendTo", got, []int32{9, 2, 4})
}

func TestString(t *testing.T) {
	if got := FromSlice(10, []int32{1, 3}).String(); got != "{1, 3}" {
		t.Errorf("String = %q, want {1, 3}", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Errorf("String of empty = %q, want {}", got)
	}
}

// Property: a Set behaves exactly like a map[int32]bool under a random
// sequence of Add/Remove operations.
func TestQuickSetMatchesMap(t *testing.T) {
	f := func(ops []int16) bool {
		const n = 256
		s := New(n)
		ref := map[int32]bool{}
		for _, op := range ops {
			v := int32(op) & (n - 1)
			if op < 0 {
				s.Remove(v)
				delete(ref, v)
			} else {
				s.Add(v)
				ref[v] = true
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for v := range ref {
			if !s.Has(v) {
				return false
			}
		}
		got := s.Slice()
		if len(got) != len(ref) {
			return false
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: And/Or/AndNot agree with the corresponding map-set operations.
func TestQuickBooleanAlgebra(t *testing.T) {
	f := func(av, bv []uint8) bool {
		const n = 256
		a := New(n)
		b := New(n)
		am := map[int32]bool{}
		bm := map[int32]bool{}
		for _, v := range av {
			a.Add(int32(v))
			am[int32(v)] = true
		}
		for _, v := range bv {
			b.Add(int32(v))
			bm[int32(v)] = true
		}
		and := a.Clone()
		and.And(b)
		or := a.Clone()
		or.Or(b)
		diff := a.Clone()
		diff.AndNot(b)
		for v := int32(0); v < n; v++ {
			if and.Has(v) != (am[v] && bm[v]) {
				return false
			}
			if or.Has(v) != (am[v] || bm[v]) {
				return false
			}
			if diff.Has(v) != (am[v] && !bm[v]) {
				return false
			}
		}
		return a.AndCount(b) == and.Count() &&
			a.Intersects(b) == !and.Empty() &&
			and.SubsetOf(a) && and.SubsetOf(b) && a.SubsetOf(or)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Next-based iteration visits exactly the members, ascending.
func TestQuickNextCoversAll(t *testing.T) {
	f := func(vals []uint8) bool {
		const n = 256
		s := New(n)
		ref := map[int32]bool{}
		for _, v := range vals {
			s.Add(int32(v))
			ref[int32(v)] = true
		}
		seen := 0
		prev := int32(-1)
		for v := s.Next(0); v >= 0; v = s.Next(v + 1) {
			if v <= prev || !ref[v] {
				return false
			}
			prev = v
			seen++
		}
		return seen == len(ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAndCount(b *testing.B) {
	const n = 4096
	rng := rand.New(rand.NewSource(1))
	x := New(n)
	y := New(n)
	for i := 0; i < n/4; i++ {
		x.Add(int32(rng.Intn(n)))
		y.Add(int32(rng.Intn(n)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.AndCount(y)
	}
}

func assertElems(t *testing.T, what string, s *Set, want []int32) {
	t.Helper()
	assertSlices(t, what, s.Slice(), want)
}

func assertSlices(t *testing.T, what string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s = %v, want %v", what, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s = %v, want %v", what, got, want)
		}
	}
}

// TestKernelZeroAllocs is the dynamic half of the hotalloc gate for this
// package: the //mce:hotpath-annotated kernels have no entry in
// .mcevet/allocbudget.json (mce/internal/bitset carries only the explicitly
// cold (*Set).Slice site), so a run must observe zero allocations too — the
// static and dynamic gates name the same sites.
func TestKernelZeroAllocs(t *testing.T) {
	const n = 1 << 10
	a, b, dst := New(n), New(n), New(n)
	for i := int32(0); i < n; i += 3 {
		a.Add(i)
	}
	for i := int32(0); i < n; i += 5 {
		b.Add(i)
	}
	sink := 0
	allocs := testing.AllocsPerRun(100, func() {
		sink += a.AndCount(b)
		dst.AndInto(a, b)
		dst.AndNotInto(a, b)
		dst.CopyFrom(a)
		dst.And(b)
		dst.Or(a)
		dst.AndNot(b)
		for v := dst.Next(0); v >= 0; v = dst.Next(v + 1) {
			sink++
		}
	})
	if allocs != 0 {
		t.Fatalf("bitset kernels allocate %v/run, want 0 (sink %d)", allocs, sink)
	}
}
