package incremental

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mce/internal/gen"
	"mce/internal/graph"
	"mce/internal/mcealg"
)

func key(c []int32) string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

// assertMatchesStatic checks the tracker's clique set against a fresh
// enumeration of an equivalent static graph.
func assertMatchesStatic(t *testing.T, tr *Tracker) {
	t.Helper()
	b := graph.NewBuilder(tr.N())
	for v := int32(0); v < int32(tr.N()); v++ {
		for u := range tr.adj[v] {
			b.AddEdge(v, u)
		}
	}
	g := b.Build()
	want := map[string]bool{}
	mcealg.ReferenceEnumerate(g, func(c []int32) { want[key(c)] = true })
	got := tr.Cliques()
	if len(got) != len(want) {
		t.Fatalf("tracker has %d cliques, want %d", len(got), len(want))
	}
	for _, c := range got {
		if !want[key(c)] {
			t.Fatalf("tracker holds non-maximal or phantom clique {%s}", key(c))
		}
	}
}

func TestNewEmptySingletons(t *testing.T) {
	tr := NewEmpty(4)
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4 singletons", tr.Len())
	}
	assertMatchesStatic(t, tr)
}

func TestNewFromGraph(t *testing.T) {
	g := gen.HolmeKim(120, 4, 0.6, 5)
	tr, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != g.N() || tr.M() != g.M() {
		t.Fatalf("tracker shape n=%d m=%d, want n=%d m=%d", tr.N(), tr.M(), g.N(), g.M())
	}
	assertMatchesStatic(t, tr)
}

func TestAddEdgeTriangle(t *testing.T) {
	tr := NewEmpty(3)
	added, removed, err := tr.AddEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 1 || key(added[0]) != "0,1" {
		t.Fatalf("added = %v", added)
	}
	// Singletons {0} and {1} are subsumed.
	if len(removed) != 2 {
		t.Fatalf("removed = %v", removed)
	}
	if _, _, err := tr.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	added, removed, err = tr.AddEdge(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Closing the triangle: {0,1,2} appears; {0,1} and {1,2} die.
	if len(added) != 1 || key(added[0]) != "0,1,2" {
		t.Fatalf("added = %v", added)
	}
	if len(removed) != 2 {
		t.Fatalf("removed = %v", removed)
	}
	assertMatchesStatic(t, tr)
}

func TestAddEdgeIdempotent(t *testing.T) {
	tr := NewEmpty(3)
	if _, _, err := tr.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	added, removed, err := tr.AddEdge(0, 1)
	if err != nil || added != nil || removed != nil {
		t.Fatalf("re-adding changed state: %v %v %v", added, removed, err)
	}
	if _, _, err := tr.AddEdge(1, 1); err != nil {
		t.Fatalf("self loop errored instead of no-op: %v", err)
	}
	if tr.M() != 1 {
		t.Fatalf("M = %d, want 1", tr.M())
	}
}

func TestAddEdgeOutOfRange(t *testing.T) {
	tr := NewEmpty(2)
	if _, _, err := tr.AddEdge(0, 5); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, _, err := tr.RemoveEdge(-1, 0); err == nil {
		t.Fatal("out-of-range removal accepted")
	}
}

func TestRemoveEdgeTriangle(t *testing.T) {
	tr := NewEmpty(3)
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {0, 2}} {
		if _, _, err := tr.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	added, removed, err := tr.RemoveEdge(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || key(removed[0]) != "0,1,2" {
		t.Fatalf("removed = %v", removed)
	}
	// Both {0,1} and {1,2} become maximal.
	if len(added) != 2 || key(added[0]) != "0,1" || key(added[1]) != "1,2" {
		t.Fatalf("added = %v", added)
	}
	assertMatchesStatic(t, tr)
}

func TestRemoveEdgeToIsolation(t *testing.T) {
	tr := NewEmpty(2)
	if _, _, err := tr.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	added, removed, err := tr.RemoveEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || key(removed[0]) != "0,1" {
		t.Fatalf("removed = %v", removed)
	}
	if len(added) != 2 {
		t.Fatalf("added = %v, want the two singletons", added)
	}
	assertMatchesStatic(t, tr)
}

func TestRemoveAbsentEdge(t *testing.T) {
	tr := NewEmpty(3)
	added, removed, err := tr.RemoveEdge(0, 1)
	if err != nil || added != nil || removed != nil {
		t.Fatalf("removing absent edge changed state")
	}
}

func TestAddEdgeSharedNeighborhood(t *testing.T) {
	// 0 and 1 share neighbours {2,3} with 2-3 adjacent: adding 0-1 creates
	// {0,1,2,3} and subsumes {0,2,3} and {1,2,3}.
	tr := NewEmpty(4)
	for _, e := range [][2]int32{{0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}} {
		if _, _, err := tr.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	added, removed, err := tr.AddEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 1 || key(added[0]) != "0,1,2,3" {
		t.Fatalf("added = %v", added)
	}
	if len(removed) != 2 {
		t.Fatalf("removed = %v", removed)
	}
	assertMatchesStatic(t, tr)
}

func TestAddEdgeDisjointCommonCliques(t *testing.T) {
	// Common neighbourhood {2,3} with 2-3 NOT adjacent: two new cliques
	// {0,1,2} and {0,1,3}.
	tr := NewEmpty(4)
	for _, e := range [][2]int32{{0, 2}, {0, 3}, {1, 2}, {1, 3}} {
		if _, _, err := tr.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	added, _, err := tr.AddEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 2 || key(added[0]) != "0,1,2" || key(added[1]) != "0,1,3" {
		t.Fatalf("added = %v", added)
	}
	assertMatchesStatic(t, tr)
}

func TestCliquesOf(t *testing.T) {
	tr := NewEmpty(4)
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {2, 3}} {
		if _, _, err := tr.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	cs := tr.CliquesOf(1)
	if len(cs) != 2 || key(cs[0]) != "0,1" || key(cs[1]) != "1,2" {
		t.Fatalf("CliquesOf(1) = %v", cs)
	}
	if tr.CliquesOf(99) != nil {
		t.Fatalf("CliquesOf out of range should be nil")
	}
}

func TestReturnedDeltasAreConsistent(t *testing.T) {
	// The (added, removed) deltas, applied to the previous clique set,
	// must yield the new clique set.
	rng := rand.New(rand.NewSource(8))
	tr := NewEmpty(25)
	prev := map[string]bool{}
	for _, c := range tr.Cliques() {
		prev[key(c)] = true
	}
	for step := 0; step < 300; step++ {
		u := int32(rng.Intn(25))
		v := int32(rng.Intn(25))
		var added, removed [][]int32
		var err error
		if rng.Intn(3) == 0 {
			added, removed, err = tr.RemoveEdge(u, v)
		} else {
			added, removed, err = tr.AddEdge(u, v)
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range removed {
			if !prev[key(c)] {
				t.Fatalf("step %d: removed clique {%s} was not present", step, key(c))
			}
			delete(prev, key(c))
		}
		for _, c := range added {
			if prev[key(c)] {
				t.Fatalf("step %d: added clique {%s} already present", step, key(c))
			}
			prev[key(c)] = true
		}
		now := tr.Cliques()
		if len(now) != len(prev) {
			t.Fatalf("step %d: delta bookkeeping diverged: %d vs %d", step, len(now), len(prev))
		}
		for _, c := range now {
			if !prev[key(c)] {
				t.Fatalf("step %d: clique {%s} missing from delta-tracked set", step, key(c))
			}
		}
	}
	assertMatchesStatic(t, tr)
}

// Property: after any random sequence of insertions and deletions the
// tracker matches a from-scratch enumeration.
func TestQuickRandomEvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(18) + 4
		tr := NewEmpty(n)
		for step := 0; step < 60; step++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			var err error
			if rng.Intn(4) == 0 {
				_, _, err = tr.RemoveEdge(u, v)
			} else {
				_, _, err = tr.AddEdge(u, v)
			}
			if err != nil {
				return false
			}
		}
		b := graph.NewBuilder(n)
		for v := int32(0); v < int32(n); v++ {
			for u := range tr.adj[v] {
				b.AddEdge(v, u)
			}
		}
		want := map[string]bool{}
		mcealg.ReferenceEnumerate(b.Build(), func(c []int32) { want[key(c)] = true })
		got := tr.Cliques()
		if len(got) != len(want) {
			return false
		}
		for _, c := range got {
			if !want[key(c)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: bootstrapping from a graph then deleting every edge one by one
// ends with exactly the singleton cliques.
func TestQuickTeardownToSingletons(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(int(seed%20)+5, 0.3, seed)
		tr, err := New(g)
		if err != nil {
			return false
		}
		for _, e := range g.Edges() {
			if _, _, err := tr.RemoveEdge(e.U, e.V); err != nil {
				return false
			}
		}
		if tr.Len() != g.N() || tr.M() != 0 {
			return false
		}
		for _, c := range tr.Cliques() {
			if len(c) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddEdgeStream(b *testing.B) {
	g := gen.HolmeKim(3000, 5, 0.7, 12)
	edges := g.Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr := NewEmpty(g.N())
		b.StartTimer()
		for _, e := range edges {
			if _, _, err := tr.AddEdge(e.U, e.V); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSingleUpdateVsRecompute(b *testing.B) {
	g := gen.HolmeKim(3000, 5, 0.7, 12)
	tr, err := New(g)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("incremental-toggle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := tr.RemoveEdge(10, 11); err != nil {
				b.Fatal(err)
			}
			if _, _, err := tr.AddEdge(10, 11); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mcealg.Count(g, mcealg.Combo{Alg: mcealg.Eppstein, Struct: mcealg.Lists}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestAddNode(t *testing.T) {
	tr := NewEmpty(2)
	if _, _, err := tr.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	v := tr.AddNode()
	if v != 2 || tr.N() != 3 {
		t.Fatalf("AddNode = %d, N = %d", v, tr.N())
	}
	if tr.Len() != 2 { // {0,1} and the new singleton
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	added, removed, err := tr.AddEdge(v, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 1 || len(removed) != 1 {
		t.Fatalf("joining the new node: added %v removed %v", added, removed)
	}
	assertMatchesStatic(t, tr)
}
