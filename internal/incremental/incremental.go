// Package incremental maintains the set of maximal cliques of a graph under
// edge insertions and deletions — the paper's "incremental version of our
// approach that takes into account the evolution of the social network"
// (§8, future work; cf. the incremental update discussion of [38]).
//
// The Tracker stores the current maximal cliques in an inverted index and
// updates them locally:
//
//   - inserting an edge (u, v) creates exactly the maximal cliques
//     {u, v} ∪ K where K is a maximal clique of the subgraph induced by
//     N(u) ∩ N(v), and subsumes any previous clique through u or v whose
//     remaining members all neighbour the other endpoint;
//   - deleting an edge (u, v) destroys exactly the cliques containing both
//     endpoints; each such clique leaves two candidates C\{u} and C\{v}
//     that become maximal unless some vertex still extends them.
//
// Both operations touch only the neighbourhoods of u and v, so maintaining
// a social network under a stream of friendships is far cheaper than
// re-running the full decomposition — the property the paper's future-work
// section is after.
package incremental

import (
	"fmt"
	"sort"

	"mce/internal/graph"
	"mce/internal/mcealg"
)

// Tracker maintains a dynamic simple undirected graph together with its
// complete set of maximal cliques. The zero value is not usable; create one
// with New or NewEmpty.
type Tracker struct {
	n   int
	adj []map[int32]struct{}

	nextID  int64
	cliques map[int64][]int32    // clique ID → sorted members
	byNode  []map[int64]struct{} // node → clique IDs
}

// NewEmpty returns a tracker for an edgeless graph with n nodes. Every node
// starts as its own singleton maximal clique.
func NewEmpty(n int) *Tracker {
	if n < 0 {
		n = 0
	}
	t := &Tracker{
		n:       n,
		adj:     make([]map[int32]struct{}, n),
		cliques: make(map[int64][]int32),
		byNode:  make([]map[int64]struct{}, n),
	}
	for v := 0; v < n; v++ {
		t.adj[v] = make(map[int32]struct{})
		t.byNode[v] = make(map[int64]struct{})
		t.insertClique([]int32{int32(v)})
	}
	return t
}

// New bootstraps a tracker from an existing graph, enumerating its maximal
// cliques once with the stand-alone engine.
func New(g *graph.Graph) (*Tracker, error) {
	t := &Tracker{
		n:       g.N(),
		adj:     make([]map[int32]struct{}, g.N()),
		cliques: make(map[int64][]int32),
		byNode:  make([]map[int64]struct{}, g.N()),
	}
	for v := 0; v < g.N(); v++ {
		t.adj[v] = make(map[int32]struct{}, g.Degree(int32(v)))
		t.byNode[v] = make(map[int64]struct{})
		for _, u := range g.Neighbors(int32(v)) {
			t.adj[v][u] = struct{}{}
		}
	}
	err := mcealg.Enumerate(g, mcealg.Combo{Alg: mcealg.Eppstein, Struct: mcealg.Lists},
		func(c []int32) {
			cp := make([]int32, len(c))
			copy(cp, c)
			t.insertClique(cp)
		})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// N returns the number of nodes.
func (t *Tracker) N() int { return t.n }

// M returns the number of edges.
func (t *Tracker) M() int {
	m := 0
	for _, a := range t.adj {
		m += len(a)
	}
	return m / 2
}

// Len returns the current number of maximal cliques.
func (t *Tracker) Len() int { return len(t.cliques) }

// HasEdge reports whether u and v are currently adjacent.
func (t *Tracker) HasEdge(u, v int32) bool {
	if !t.valid(u) || !t.valid(v) || u == v {
		return false
	}
	_, ok := t.adj[u][v]
	return ok
}

func (t *Tracker) valid(v int32) bool { return v >= 0 && int(v) < t.n }

// Cliques returns a copy of the current maximal cliques in deterministic
// (lexicographic) order.
func (t *Tracker) Cliques() [][]int32 {
	out := make([][]int32, 0, len(t.cliques))
	for _, c := range t.cliques {
		cp := make([]int32, len(c))
		copy(cp, c)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return lexLess(out[i], out[j]) })
	return out
}

// CliquesOf returns the maximal cliques containing v, in deterministic
// order.
func (t *Tracker) CliquesOf(v int32) [][]int32 {
	if !t.valid(v) {
		return nil
	}
	out := make([][]int32, 0, len(t.byNode[v]))
	for id := range t.byNode[v] {
		c := t.cliques[id]
		cp := make([]int32, len(c))
		copy(cp, c)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return lexLess(out[i], out[j]) })
	return out
}

// AddEdge inserts the edge (u, v) and updates the clique set. It returns
// the cliques that became maximal and those that stopped being maximal,
// both in deterministic order. Inserting an existing edge or a self loop is
// a no-op.
func (t *Tracker) AddEdge(u, v int32) (added, removed [][]int32, err error) {
	if !t.valid(u) || !t.valid(v) {
		return nil, nil, fmt.Errorf("incremental: edge (%d, %d) out of range [0, %d)", u, v, t.n)
	}
	if u == v || t.HasEdge(u, v) {
		return nil, nil, nil
	}
	t.adj[u][v] = struct{}{}
	t.adj[v][u] = struct{}{}

	// Common neighbourhood of the new edge.
	common := t.commonNeighbors(u, v)

	// New maximal cliques: {u, v} ∪ K for each maximal clique K of the
	// subgraph induced by the common neighbourhood (K = ∅ when it is
	// empty: {u, v} itself).
	if len(common) == 0 {
		added = append(added, sorted2(u, v))
	} else {
		sub, orig := t.induced(common)
		err := mcealg.Enumerate(sub, comboFor(sub), func(k []int32) {
			c := make([]int32, 0, len(k)+2)
			c = append(c, u, v)
			for _, lv := range k {
				c = append(c, orig[lv])
			}
			sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
			added = append(added, c)
		})
		if err != nil {
			return nil, nil, err
		}
	}

	// Subsumed cliques: a clique through u (without v) dies iff all its
	// other members neighbour v — then clique ∪ {v} now exists and covers
	// it. Symmetrically for v.
	removed = append(removed, t.dropSubsumed(u, v)...)
	removed = append(removed, t.dropSubsumed(v, u)...)

	for _, c := range added {
		t.insertClique(c)
	}
	sortCliqueFamilies(added, removed)
	return added, removed, nil
}

// dropSubsumed removes and returns the cliques containing anchor (and not
// other) whose remaining members are all adjacent to other.
func (t *Tracker) dropSubsumed(anchor, other int32) [][]int32 {
	var gone [][]int32
	var ids []int64
	for id := range t.byNode[anchor] {
		c := t.cliques[id]
		if containsSorted(c, other) {
			continue
		}
		subsumed := true
		for _, w := range c {
			if w == anchor {
				continue
			}
			if !t.HasEdge(w, other) {
				subsumed = false
				break
			}
		}
		if subsumed {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		gone = append(gone, t.cliques[id])
		t.deleteClique(id)
	}
	return gone
}

// RemoveEdge deletes the edge (u, v) and updates the clique set, returning
// the newly maximal and no-longer-maximal cliques. Removing an absent edge
// is a no-op.
func (t *Tracker) RemoveEdge(u, v int32) (added, removed [][]int32, err error) {
	if !t.valid(u) || !t.valid(v) {
		return nil, nil, fmt.Errorf("incremental: edge (%d, %d) out of range [0, %d)", u, v, t.n)
	}
	if u == v || !t.HasEdge(u, v) {
		return nil, nil, nil
	}
	delete(t.adj[u], v)
	delete(t.adj[v], u)

	// Cliques containing both endpoints are no longer cliques.
	var dead []int64
	for id := range t.byNode[u] {
		if containsSorted(t.cliques[id], v) {
			dead = append(dead, id)
		}
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })

	seen := map[string]bool{}
	for _, id := range dead {
		c := t.cliques[id]
		removed = append(removed, c)
		for _, drop := range [2]int32{u, v} {
			cand := withoutSorted(c, drop)
			key := cliqueKey(cand)
			if seen[key] {
				continue
			}
			seen[key] = true
			if len(cand) > 0 && t.isMaximal(cand) {
				added = append(added, cand)
			}
		}
		t.deleteClique(id)
	}
	for _, c := range added {
		t.insertClique(c)
	}
	sortCliqueFamilies(added, removed)
	return added, removed, nil
}

// isMaximal reports whether the clique cand (sorted) has no extender: no
// vertex outside cand adjacent to every member.
func (t *Tracker) isMaximal(cand []int32) bool {
	// Scan the smallest member adjacency.
	best := cand[0]
	for _, v := range cand[1:] {
		if len(t.adj[v]) < len(t.adj[best]) {
			best = v
		}
	}
	for w := range t.adj[best] {
		if containsSorted(cand, w) {
			continue
		}
		ok := true
		for _, x := range cand {
			if x == w {
				ok = false
				break
			}
			if _, adj := t.adj[w][x]; !adj {
				ok = false
				break
			}
		}
		if ok {
			return false
		}
	}
	// A singleton is maximal iff isolated.
	if len(cand) == 1 {
		return len(t.adj[cand[0]]) == 0
	}
	return true
}

// commonNeighbors returns N(u) ∩ N(v) as a sorted slice.
func (t *Tracker) commonNeighbors(u, v int32) []int32 {
	small, big := t.adj[u], t.adj[v]
	if len(big) < len(small) {
		small, big = big, small
	}
	var out []int32
	for w := range small {
		if _, ok := big[w]; ok {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// induced materialises the dynamic subgraph on nodes as an immutable graph.
func (t *Tracker) induced(nodes []int32) (*graph.Graph, []int32) {
	b := graph.NewBuilder(len(nodes))
	idx := make(map[int32]int32, len(nodes))
	for i, v := range nodes {
		idx[v] = int32(i)
	}
	for i, v := range nodes {
		for w := range t.adj[v] {
			if j, ok := idx[w]; ok && int32(i) < j {
				b.AddEdge(int32(i), j)
			}
		}
	}
	return b.Build(), nodes
}

// comboFor picks a sensible combo for the small update subproblems.
func comboFor(g *graph.Graph) mcealg.Combo {
	if g.N() <= 256 {
		return mcealg.Combo{Alg: mcealg.Tomita, Struct: mcealg.BitSets}
	}
	return mcealg.Combo{Alg: mcealg.Eppstein, Struct: mcealg.Lists}
}

func (t *Tracker) insertClique(c []int32) {
	id := t.nextID
	t.nextID++
	t.cliques[id] = c
	for _, v := range c {
		t.byNode[v][id] = struct{}{}
	}
}

func (t *Tracker) deleteClique(id int64) {
	for _, v := range t.cliques[id] {
		delete(t.byNode[v], id)
	}
	delete(t.cliques, id)
}

func containsSorted(c []int32, v int32) bool {
	i := sort.Search(len(c), func(i int) bool { return c[i] >= v })
	return i < len(c) && c[i] == v
}

func withoutSorted(c []int32, v int32) []int32 {
	out := make([]int32, 0, len(c)-1)
	for _, x := range c {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

func sorted2(u, v int32) []int32 {
	if u > v {
		u, v = v, u
	}
	return []int32{u, v}
}

func lexLess(a, b []int32) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func sortCliqueFamilies(families ...[][]int32) {
	for _, f := range families {
		sort.Slice(f, func(i, j int) bool { return lexLess(f[i], f[j]) })
	}
}

func cliqueKey(c []int32) string {
	b := make([]byte, 0, 5*len(c))
	for _, v := range c {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ',')
	}
	return string(b)
}

// AddNode grows the graph by one node and returns its identifier. The new
// node starts isolated, i.e. as its own singleton maximal clique — evolving
// social networks gain users as well as friendships.
func (t *Tracker) AddNode() int32 {
	v := int32(t.n)
	t.n++
	t.adj = append(t.adj, make(map[int32]struct{}))
	t.byNode = append(t.byNode, make(map[int64]struct{}))
	t.insertClique([]int32{v})
	return v
}
