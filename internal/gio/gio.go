// Package gio reads and writes graphs in the two on-disk formats the paper
// uses: plain whitespace-separated edge lists (the SNAP convention) and the
// distributed triple format of §6.2, where each record is ⟨n1, e, n2⟩ with
// node and edge labels encoded as hashes to speed up loading.
//
// Node labels are arbitrary strings; a LabelMap assigns them dense int32
// identifiers in first-seen order so that the rest of the pipeline works on
// compact IDs.
package gio

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strconv"
	"strings"

	"mce/internal/graph"
)

// LabelMap maps external string labels to dense node IDs and back.
type LabelMap struct {
	ids    map[string]int32
	labels []string
}

// NewLabelMap returns an empty label map.
func NewLabelMap() *LabelMap {
	return &LabelMap{ids: make(map[string]int32)}
}

// ID returns the dense identifier for label, allocating one if unseen.
func (m *LabelMap) ID(label string) int32 {
	if id, ok := m.ids[label]; ok {
		return id
	}
	id := int32(len(m.labels))
	m.ids[label] = id
	m.labels = append(m.labels, label)
	return id
}

// Lookup returns the identifier for label without allocating.
func (m *LabelMap) Lookup(label string) (int32, bool) {
	id, ok := m.ids[label]
	return id, ok
}

// Label returns the external label of id.
func (m *LabelMap) Label(id int32) string { return m.labels[id] }

// Len returns the number of distinct labels seen.
func (m *LabelMap) Len() int { return len(m.labels) }

// HashLabel hashes an arbitrary label to a fixed-width token, mirroring the
// paper's trick of encoding node and edge labels with hashes to speed up the
// distributed loading phase (§6.2).
func HashLabel(label string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	return h.Sum64()
}

// ReadEdgeList parses a whitespace-separated edge list: one "u v" pair per
// line, '#' and '%' prefixed lines are comments. Labels may be arbitrary
// strings; the returned LabelMap records the dense relabelling. Self loops
// and duplicate edges are normalised away by the graph builder.
func ReadEdgeList(r io.Reader) (*graph.Graph, *LabelMap, error) {
	m := NewLabelMap()
	var edges []graph.Edge
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("gio: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		edges = append(edges, graph.Edge{U: m.ID(fields[0]), V: m.ID(fields[1])})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("gio: reading edge list: %w", err)
	}
	b := graph.NewBuilder(m.Len())
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build(), m, nil
}

// WriteEdgeList writes g as "u v" lines using dense IDs as labels.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return fmt.Errorf("gio: writing edge list: %w", err)
		}
	}
	return bw.Flush()
}

// ReadTriples parses the paper's distributed record format: one triple
// ⟨n1, e, n2⟩ per line, tab- or space-separated, where n1 and n2 are node
// labels and e is an edge label (ignored for the undirected clique problem).
// Hash-encoded labels (decimal uint64 produced by HashLabel) and raw string
// labels are both accepted; each distinct token becomes one node.
func ReadTriples(r io.Reader) (*graph.Graph, *LabelMap, error) {
	m := NewLabelMap()
	var edges []graph.Edge
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, nil, fmt.Errorf("gio: line %d: triple format wants 3 fields, got %d", lineNo, len(fields))
		}
		edges = append(edges, graph.Edge{U: m.ID(fields[0]), V: m.ID(fields[2])})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("gio: reading triples: %w", err)
	}
	b := graph.NewBuilder(m.Len())
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build(), m, nil
}

// WriteTriples writes g in the triple format with hash-encoded labels: each
// edge becomes "hash(u) e<i> hash(v)". labelOf supplies the external label of
// a node; pass nil to use the decimal dense ID.
func WriteTriples(w io.Writer, g *graph.Graph, labelOf func(int32) string) error {
	if labelOf == nil {
		labelOf = func(v int32) string { return strconv.Itoa(int(v)) }
	}
	bw := bufio.NewWriter(w)
	for i, e := range g.Edges() {
		_, err := fmt.Fprintf(bw, "%d e%d %d\n",
			HashLabel(labelOf(e.U)), i, HashLabel(labelOf(e.V)))
		if err != nil {
			return fmt.Errorf("gio: writing triples: %w", err)
		}
	}
	return bw.Flush()
}

// LoadFile reads a graph from path, choosing the parser by extension:
// ".triples" selects ReadTriples, anything else ReadEdgeList.
func LoadFile(path string) (*graph.Graph, *LabelMap, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("gio: %w", err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".triples") {
		return ReadTriples(f)
	}
	return ReadEdgeList(f)
}

// SaveFile writes g to path in the format chosen by extension, mirroring
// LoadFile.
func SaveFile(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("gio: %w", err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".triples") {
		return WriteTriples(f, g, nil)
	}
	return WriteEdgeList(f, g)
}
