package gio

import (
	"os"
	"strings"
	"testing"
)

// Fuzz targets double as robustness tests: under plain `go test` they run
// their seed corpus; `go test -fuzz=FuzzReadEdgeList ./internal/gio` explores
// further. The invariant under arbitrary input is "clean error or valid
// graph", never a panic.

func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\na b extra cols\n")
	f.Add("")
	f.Add("x\n")
	f.Add("0 0\n0 1\n0 1\n")
	f.Add(strings.Repeat("9 9 9\n", 100))
	f.Fuzz(func(t *testing.T, input string) {
		g, m, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if g.N() != m.Len() {
			t.Fatalf("graph has %d nodes but %d labels", g.N(), m.Len())
		}
		// The graph must be normalised: symmetric, no loops.
		for v := int32(0); v < int32(g.N()); v++ {
			for _, u := range g.Neighbors(v) {
				if u == v {
					t.Fatal("self loop survived")
				}
				if !g.HasEdge(u, v) {
					t.Fatal("asymmetric adjacency")
				}
			}
		}
	})
}

func FuzzReadTriples(f *testing.F) {
	f.Add("a e0 b\nb e1 c\n")
	f.Add("1 2\n")
	f.Add("x y z w\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, _, err := ReadTriples(strings.NewReader(input))
		if err != nil {
			return
		}
		if g.N() < 0 || g.M() < 0 {
			t.Fatal("negative dimensions")
		}
	})
}

func FuzzLoadBoundedAgreesWithLoad(f *testing.F) {
	f.Add("0 1\n1 2\n2 0\n")
	f.Add("a b\nb c\n")
	f.Add("bad\n")
	f.Fuzz(func(t *testing.T, input string) {
		// Both loaders must accept/reject the same inputs and agree on the
		// resulting graph shape. Write to a temp file because the bounded
		// loader reads twice.
		p := t.TempDir() + "/g.txt"
		if err := osWriteFile(p, input); err != nil {
			t.Skip()
		}
		a, _, errA := LoadFile(p)
		b, _, errB := LoadFileBounded(p)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("loaders disagree on acceptance: %v vs %v", errA, errB)
		}
		if errA != nil {
			return
		}
		if a.M() != b.M() {
			t.Fatalf("edge counts differ: %d vs %d", a.M(), b.M())
		}
	})
}

func osWriteFile(p, content string) error {
	return os.WriteFile(p, []byte(content), 0o644)
}
