package gio

import (
	"bufio"
	"fmt"
	"io"

	"mce/internal/graph"
)

// WriteDOT renders g in Graphviz DOT format for visual inspection of small
// networks and their communities. groups optionally assigns nodes to
// clusters (e.g. the communities found by clique percolation): nodes of
// groups[i] share fill colour i, nodes in several groups get the "overlap"
// style, and ungrouped nodes stay plain. labelOf supplies node labels; nil
// uses the decimal IDs.
func WriteDOT(w io.Writer, g *graph.Graph, groups [][]int32, labelOf func(int32) string) error {
	if labelOf == nil {
		labelOf = func(v int32) string { return fmt.Sprint(v) }
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph mce {")
	fmt.Fprintln(bw, "  node [shape=circle fontsize=10];")

	// palette cycles through Graphviz colour-scheme names.
	palette := []string{
		"lightblue", "lightgoldenrod", "lightpink", "lightseagreen",
		"lightsalmon", "lightskyblue", "plum", "palegreen",
	}
	membership := map[int32][]int{}
	for gi, members := range groups {
		for _, v := range members {
			membership[v] = append(membership[v], gi)
		}
	}
	for v := int32(0); v < int32(g.N()); v++ {
		attrs := fmt.Sprintf("label=%q", labelOf(v))
		switch gs := membership[v]; {
		case len(gs) > 1:
			attrs += ` style="filled,bold" fillcolor=white peripheries=2`
		case len(gs) == 1:
			attrs += fmt.Sprintf(" style=filled fillcolor=%s", palette[gs[0]%len(palette)])
		}
		fmt.Fprintf(bw, "  n%d [%s];\n", v, attrs)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "  n%d -- n%d;\n", e.U, e.V)
	}
	fmt.Fprintln(bw, "}")
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("gio: writing DOT: %w", err)
	}
	return nil
}
