package gio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"mce/internal/graph"
)

// LoadFileBounded reads an edge-list or triple file like LoadFile but in
// two passes with a graph.StreamBuilder, so the intermediate edge buffer —
// the biggest allocation of the one-pass loader — is never materialised.
// Use it when the input pushes against main memory, the setting the
// external-memory MCE line of work ([8], [10]) addresses.
func LoadFileBounded(path string) (*graph.Graph, *LabelMap, error) {
	triples := strings.HasSuffix(path, ".triples")

	// Pass 1: label discovery and incidence counting.
	m := NewLabelMap()
	var deg []int32
	var edges int64
	err := scanPairs(path, triples, func(a, b string) {
		u, v := m.ID(a), m.ID(b)
		for int(u) >= len(deg) || int(v) >= len(deg) {
			deg = append(deg, 0)
		}
		if u == v {
			return
		}
		deg[u]++
		deg[v]++
		edges++
	})
	if err != nil {
		return nil, nil, err
	}
	for len(deg) < m.Len() {
		deg = append(deg, 0)
	}

	// Pass 2: fill the final adjacency directly.
	sb := graph.NewStreamBuilderFromDegrees(deg, edges)
	err = scanPairs(path, triples, func(a, b string) {
		u, ok1 := m.Lookup(a)
		v, ok2 := m.Lookup(b)
		if ok1 && ok2 {
			sb.FillEdge(u, v)
		}
	})
	if err != nil {
		return nil, nil, err
	}
	g, err := sb.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("gio: input changed between passes: %w", err)
	}
	return g, m, nil
}

// scanPairs streams the node-label pairs of an edge-list or triple file.
func scanPairs(path string, triples bool, fn func(a, b string)) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("gio: %w", err)
	}
	defer f.Close()
	return scanPairsFrom(f, triples, fn)
}

func scanPairsFrom(r io.Reader, triples bool, fn func(a, b string)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case triples:
			if len(fields) != 3 {
				return fmt.Errorf("gio: line %d: triple format wants 3 fields, got %d", lineNo, len(fields))
			}
			fn(fields[0], fields[2])
		default:
			if len(fields) < 2 {
				return fmt.Errorf("gio: line %d: want at least 2 fields, got %q", lineNo, line)
			}
			fn(fields[0], fields[1])
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("gio: reading %w", err)
	}
	return nil
}
