package gio

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"mce/internal/graph"
)

// WritePartitioned splits g's edge set across parts files named
// part-<i>.triples inside dir, mirroring the paper's distributed input
// layout (§6.2: each machine holds files of ⟨n1, e, n2⟩ triples with
// hash-encoded labels). Edges are distributed round-robin so partitions are
// balanced; dir is created if missing.
func WritePartitioned(dir string, g *graph.Graph, parts int) error {
	if parts < 1 {
		return fmt.Errorf("gio: parts = %d, want ≥ 1", parts)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("gio: %w", err)
	}
	files := make([]*os.File, parts)
	for i := range files {
		f, err := os.Create(partPath(dir, i))
		if err != nil {
			return fmt.Errorf("gio: %w", err)
		}
		files[i] = f
	}
	closeAll := func() {
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
	}
	defer closeAll()

	for i, e := range g.Edges() {
		f := files[i%parts]
		// Node labels are the decimal IDs; encode them as hashes like
		// WriteTriples does, so partition files and whole files share one
		// format. The edge label records the global edge index.
		_, err := fmt.Fprintf(f, "%d e%d %d\n",
			HashLabel(decLabel(e.U)), i, HashLabel(decLabel(e.V)))
		if err != nil {
			return fmt.Errorf("gio: writing partition %d: %w", i%parts, err)
		}
	}
	for _, f := range files {
		if err := f.Close(); err != nil {
			return fmt.Errorf("gio: %w", err)
		}
	}
	files = nil
	return nil
}

// ReadPartitioned loads every part-*.triples file in dir and merges them
// into one graph. The label map covers the merged hash-encoded labels.
func ReadPartitioned(dir string) (*graph.Graph, *LabelMap, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "part-*.triples"))
	if err != nil {
		return nil, nil, fmt.Errorf("gio: %w", err)
	}
	if len(matches) == 0 {
		return nil, nil, fmt.Errorf("gio: no part-*.triples files in %s", dir)
	}
	sort.Strings(matches)

	m := NewLabelMap()
	var edges []graph.Edge
	for _, path := range matches {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, fmt.Errorf("gio: %w", err)
		}
		g, local, err := ReadTriples(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("gio: partition %s: %w", path, err)
		}
		for _, e := range g.Edges() {
			edges = append(edges, graph.Edge{
				U: m.ID(local.Label(e.U)),
				V: m.ID(local.Label(e.V)),
			})
		}
	}
	b := graph.NewBuilder(m.Len())
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build(), m, nil
}

func partPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("part-%04d.triples", i))
}

func decLabel(v int32) string {
	return fmt.Sprintf("%d", v)
}
