package gio

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"mce/internal/gen"
	"mce/internal/graph"
)

func TestWritePartitionedValidation(t *testing.T) {
	if err := WritePartitioned(t.TempDir(), graph.Empty(1), 0); err == nil {
		t.Fatal("parts=0 accepted")
	}
}

func TestPartitionedRoundTrip(t *testing.T) {
	g := gen.HolmeKim(300, 4, 0.6, 3)
	dir := t.TempDir()
	if err := WritePartitioned(dir, g, 5); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "part-*.triples"))
	if len(matches) != 5 {
		t.Fatalf("wrote %d partitions, want 5", len(matches))
	}
	g2, m, err := ReadPartitioned(dir)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip: n=%d m=%d, want n=%d m=%d", g2.N(), g2.M(), g.N(), g.M())
	}
	if m.Len() != g.N() {
		t.Fatalf("label map has %d labels, want %d", m.Len(), g.N())
	}
	// Structural check: every original edge exists under the hash-label
	// mapping.
	for _, e := range g.Edges() {
		u, ok1 := m.Lookup(hashToken(e.U))
		v, ok2 := m.Lookup(hashToken(e.V))
		if !ok1 || !ok2 || !g2.HasEdge(u, v) {
			t.Fatalf("edge %v lost in partitioned round trip", e)
		}
	}
}

func hashToken(v int32) string {
	return itoa(HashLabel(decLabel(v)))
}

func TestPartitionedBalance(t *testing.T) {
	g := gen.ErdosRenyi(100, 0.2, 5)
	dir := t.TempDir()
	parts := 4
	if err := WritePartitioned(dir, g, parts); err != nil {
		t.Fatal(err)
	}
	sizes := make([]int64, 0, parts)
	matches, _ := filepath.Glob(filepath.Join(dir, "part-*.triples"))
	for _, p := range matches {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, st.Size())
	}
	min, max := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if min == 0 || max > 2*min {
		t.Fatalf("partitions unbalanced: %v", sizes)
	}
}

func TestReadPartitionedMissingDir(t *testing.T) {
	if _, _, err := ReadPartitioned(filepath.Join(t.TempDir(), "empty")); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestPartitionedSinglePart(t *testing.T) {
	g := graph.Complete(6)
	dir := t.TempDir()
	if err := WritePartitioned(dir, g, 1); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadPartitioned(dir)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != 15 {
		t.Fatalf("M = %d, want 15", g2.M())
	}
}

// Property: partition count never changes the merged graph.
func TestQuickPartitionCountIrrelevant(t *testing.T) {
	f := func(seed int64, rawParts uint8) bool {
		parts := int(rawParts%7) + 1
		g := gen.ErdosRenyi(40, 0.15, seed)
		if g.M() == 0 {
			return true
		}
		dir, err := os.MkdirTemp("", "mcepart")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		if err := WritePartitioned(dir, g, parts); err != nil {
			return false
		}
		g2, _, err := ReadPartitioned(dir)
		if err != nil {
			return false
		}
		// Triple files carry edges only, so isolated nodes do not survive;
		// compare edge counts and edge-incident node counts.
		incident := 0
		for v := int32(0); v < int32(g.N()); v++ {
			if g.Degree(v) > 0 {
				incident++
			}
		}
		return g2.N() == incident && g2.M() == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
