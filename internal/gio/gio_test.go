package gio

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"mce/internal/graph"
)

func TestLabelMap(t *testing.T) {
	m := NewLabelMap()
	a := m.ID("alice")
	b := m.ID("bob")
	if a == b {
		t.Fatalf("distinct labels share an ID")
	}
	if m.ID("alice") != a {
		t.Fatalf("ID not stable")
	}
	if m.Label(a) != "alice" || m.Label(b) != "bob" {
		t.Fatalf("Label round trip broken")
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if id, ok := m.Lookup("bob"); !ok || id != b {
		t.Fatalf("Lookup(bob) = %d,%v", id, ok)
	}
	if _, ok := m.Lookup("carol"); ok {
		t.Fatalf("Lookup of unseen label succeeded")
	}
}

func TestHashLabelDeterministic(t *testing.T) {
	if HashLabel("x") != HashLabel("x") {
		t.Fatalf("HashLabel not deterministic")
	}
	if HashLabel("x") == HashLabel("y") {
		t.Fatalf("suspicious collision between x and y")
	}
}

func TestReadEdgeList(t *testing.T) {
	in := `# comment
% also comment
a b
b c

a c
a b
`
	g, m, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("n=%d m=%d, want 3,3", g.N(), g.M())
	}
	ia, _ := m.Lookup("a")
	ib, _ := m.Lookup("b")
	ic, _ := m.Lookup("c")
	if !g.HasEdge(ia, ib) || !g.HasEdge(ib, ic) || !g.HasEdge(ia, ic) {
		t.Fatalf("edges missing")
	}
}

func TestReadEdgeListExtraColumns(t *testing.T) {
	// SNAP files sometimes carry weights or timestamps; extra fields are
	// tolerated.
	g, _, err := ReadEdgeList(strings.NewReader("0 1 17 2020\n1 2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
}

func TestReadEdgeListMalformed(t *testing.T) {
	_, _, err := ReadEdgeList(strings.NewReader("0 1\nonlyone\n"))
	if err == nil {
		t.Fatalf("malformed line accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error lacks line number: %v", err)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := graph.Complete(5)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed graph: %v -> %v", g, g2)
	}
}

func TestReadTriples(t *testing.T) {
	in := "h1 e0 h2\nh2 e1 h3\nh1 e2 h3\n"
	g, _, err := ReadTriples(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("n=%d m=%d, want 3,3", g.N(), g.M())
	}
}

func TestReadTriplesMalformed(t *testing.T) {
	_, _, err := ReadTriples(strings.NewReader("a e0 b\nc d\n"))
	if err == nil {
		t.Fatalf("two-field triple accepted")
	}
}

func TestTriplesRoundTrip(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 0, V: 3}})
	var buf bytes.Buffer
	if err := WriteTriples(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("triples round trip changed graph: %v -> %v", g, g2)
	}
}

func TestWriteTriplesCustomLabels(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}})
	var buf bytes.Buffer
	err := WriteTriples(&buf, g, func(v int32) string {
		return string(rune('a' + v))
	})
	if err != nil {
		t.Fatal(err)
	}
	want := HashLabel("a")
	if !strings.Contains(buf.String(), strings.TrimSpace(strings.Split(buf.String(), " ")[0])) {
		t.Fatalf("unexpected output %q", buf.String())
	}
	first := strings.Split(buf.String(), " ")[0]
	if first != itoa(want) {
		t.Fatalf("first token = %s, want hash of \"a\" = %d", first, want)
	}
}

func itoa(u uint64) string {
	var b [20]byte
	i := len(b)
	for {
		i--
		b[i] = byte('0' + u%10)
		u /= 10
		if u == 0 {
			break
		}
	}
	return string(b[i:])
}

func TestLoadSaveFile(t *testing.T) {
	dir := t.TempDir()
	g := graph.Complete(4)

	for _, name := range []string{"g.txt", "g.triples"} {
		p := filepath.Join(dir, name)
		if err := SaveFile(p, g); err != nil {
			t.Fatalf("SaveFile(%s): %v", name, err)
		}
		g2, _, err := LoadFile(p)
		if err != nil {
			t.Fatalf("LoadFile(%s): %v", name, err)
		}
		if g2.N() != 4 || g2.M() != 6 {
			t.Fatalf("%s: n=%d m=%d, want 4,6", name, g2.N(), g2.M())
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, _, err := LoadFile(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatalf("missing file accepted")
	}
}

func TestSaveFileBadPath(t *testing.T) {
	if err := SaveFile(filepath.Join(t.TempDir(), "no", "such", "dir", "g.txt"), graph.Empty(1)); err == nil {
		t.Fatalf("unwritable path accepted")
	}
	_ = os.Remove("never-created")
}

// Property: writing any random graph as an edge list and reading it back
// yields an isomorphic graph under the identity on dense IDs (labels are the
// decimal IDs, so the relabelling is the identity permutation by first-seen
// order of edges — compare as edge sets instead).
func TestQuickEdgeListRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 2
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			return false
		}
		g2, m, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		if g2.M() != g.M() {
			return false
		}
		// Every original edge must exist under the label mapping.
		for _, e := range g.Edges() {
			u, ok1 := m.Lookup(itoa(uint64(e.U)))
			v, ok2 := m.Lookup(itoa(uint64(e.V)))
			if !ok1 || !ok2 || !g2.HasEdge(u, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadFileBoundedMatchesLoadFile(t *testing.T) {
	g := graph.Complete(8)
	dir := t.TempDir()
	for _, name := range []string{"g.txt", "g.triples"} {
		p := filepath.Join(dir, name)
		if err := SaveFile(p, g); err != nil {
			t.Fatal(err)
		}
		a, ma, err := LoadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		b, mb, err := LoadFileBounded(p)
		if err != nil {
			t.Fatal(err)
		}
		if a.N() != b.N() || a.M() != b.M() || ma.Len() != mb.Len() {
			t.Fatalf("%s: bounded loader diverged: n=%d/%d m=%d/%d", name, a.N(), b.N(), a.M(), b.M())
		}
	}
}

func TestLoadFileBoundedMissing(t *testing.T) {
	if _, _, err := LoadFileBounded(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadFileBoundedMalformed(t *testing.T) {
	p := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(p, []byte("0 1\nonlyone\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadFileBounded(p); err == nil {
		t.Fatal("malformed file accepted")
	}
}

func TestWriteDOT(t *testing.T) {
	g := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 3, V: 4}})
	var buf bytes.Buffer
	groups := [][]int32{{0, 1, 2}, {2, 3, 4}}
	err := WriteDOT(&buf, g, groups, func(v int32) string { return string(rune('a' + v)) })
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph mce {", `label="a"`, "n0 -- n1", "peripheries=2", "fillcolor=light"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output misses %q:\n%s", want, out)
		}
	}
	// nil labeler and nil groups are fine.
	buf.Reset()
	if err := WriteDOT(&buf, g, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `label="0"`) {
		t.Fatalf("default labels missing:\n%s", buf.String())
	}
}
