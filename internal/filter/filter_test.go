package filter

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mce/internal/gen"
	"mce/internal/graph"
	"mce/internal/mcealg"
)

func key(c []int32) string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

func TestIndexContainment(t *testing.T) {
	cf := [][]int32{{1, 2, 3}, {3, 4}, {5}}
	ix := NewIndex(cf)
	cases := []struct {
		c    []int32
		want bool
	}{
		{[]int32{1, 2}, true},
		{[]int32{2, 3}, true},
		{[]int32{1, 2, 3}, true},
		{[]int32{3, 4}, true},
		{[]int32{5}, true},
		{[]int32{1, 4}, false},
		{[]int32{1, 2, 3, 4}, false},
		{[]int32{6}, false},
		{[]int32{4, 5}, false},
	}
	for _, c := range cases {
		if got := ix.ContainedIn(c.c); got != c.want {
			t.Errorf("ContainedIn(%v) = %v, want %v", c.c, got, c.want)
		}
	}
}

func TestIndexEmptyClique(t *testing.T) {
	if NewIndex(nil).ContainedIn(nil) {
		t.Fatalf("empty clique contained in empty family")
	}
	if !NewIndex([][]int32{{1}}).ContainedIn(nil) {
		t.Fatalf("empty clique not contained in non-empty family")
	}
}

func TestFilterDropsContained(t *testing.T) {
	cf := [][]int32{{1, 2, 3}, {4, 5}}
	ch := [][]int32{{2, 3}, {6, 7}, {4, 5}, {1, 4}}
	got := Filter(ch, cf)
	want := map[string]bool{"6,7": true, "1,4": true}
	if len(got) != len(want) {
		t.Fatalf("Filter = %v", got)
	}
	for _, c := range got {
		if !want[key(c)] {
			t.Fatalf("unexpected survivor %v", c)
		}
	}
}

func TestFilterEmptyFamilies(t *testing.T) {
	if got := Filter(nil, [][]int32{{1}}); len(got) != 0 {
		t.Fatalf("Filter(nil, cf) = %v", got)
	}
	ch := [][]int32{{1, 2}}
	if got := Filter(ch, nil); len(got) != 1 {
		t.Fatalf("Filter(ch, nil) dropped cliques: %v", got)
	}
}

func TestByExtension(t *testing.T) {
	// Path 0-1-2 plus edge 1-3: cliques {0,1},{1,2},{1,3}. Let feasible =
	// {0} only. Hub-side graph on {1,2,3} has maximal cliques {1,2},{1,3}.
	// {1,2}: is there a feasible node adjacent to both 1 and 2? Node 0 is
	// adjacent to 1 only → no → keep. Same for {1,3}.
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 1, V: 3}})
	feasible := func(v int32) bool { return v == 0 }
	ch := [][]int32{{1, 2}, {1, 3}}
	got := ByExtension(g, ch, feasible)
	if len(got) != 2 {
		t.Fatalf("ByExtension dropped valid cliques: %v", got)
	}
	// Now make 0 adjacent to 1 and 2: {1,2} extends to {0,1,2} → dropped.
	g2 := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}, {U: 1, V: 3}})
	got = ByExtension(g2, ch, feasible)
	if len(got) != 1 || key(got[0]) != "1,3" {
		t.Fatalf("ByExtension = %v, want [{1,3}]", got)
	}
}

func TestDedup(t *testing.T) {
	cs := [][]int32{{1, 2}, {3}, {1, 2}, {3}, {1, 2, 3}}
	got := Dedup(cs)
	if len(got) != 3 {
		t.Fatalf("Dedup = %v", got)
	}
}

func TestSortCliques(t *testing.T) {
	cs := [][]int32{{2, 3}, {1, 5}, {1, 2, 3}, {1, 2}}
	SortCliques(cs)
	want := []string{"1,2", "1,2,3", "1,5", "2,3"}
	for i, c := range cs {
		if key(c) != want[i] {
			t.Fatalf("SortCliques order = %v", cs)
		}
	}
}

// Property: the paper-faithful containment filter and the extension-based
// filter agree when used in the Lemma 1 setting: cf = maximal cliques with a
// feasible node, ch = maximal cliques of the hub-induced subgraph.
func TestQuickFilterEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 8
		g := gen.BarabasiAlbert(n, 3, seed)
		m := g.MaxDegree()/2 + 1
		feasSet := map[int32]bool{}
		var hubs []int32
		for v := int32(0); v < int32(n); v++ {
			if g.Degree(v) < m {
				feasSet[v] = true
			} else {
				hubs = append(hubs, v)
			}
		}
		all := mcealg.ReferenceCollect(g)
		var cf [][]int32
		for _, c := range all {
			for _, v := range c {
				if feasSet[v] {
					cf = append(cf, c)
					break
				}
			}
		}
		sub, orig := graph.Induced(g, hubs)
		var ch [][]int32
		mcealg.ReferenceEnumerate(sub, func(c []int32) {
			global := make([]int32, len(c))
			for i, v := range c {
				global[i] = orig[v]
			}
			SortCliques([][]int32{global})
			ch = append(ch, global)
		})
		a := Filter(ch, cf)
		b := ByExtension(g, ch, func(v int32) bool { return feasSet[v] })
		if len(a) != len(b) {
			return false
		}
		am := map[string]bool{}
		for _, c := range a {
			am[key(c)] = true
		}
		for _, c := range b {
			if !am[key(c)] {
				return false
			}
		}
		// Lemma 1: cf ∪ a must be exactly the maximal cliques of g.
		union := map[string]bool{}
		for _, c := range cf {
			union[key(c)] = true
		}
		for _, c := range a {
			union[key(c)] = true
		}
		if len(union) != len(all) {
			return false
		}
		for _, c := range all {
			if !union[key(c)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Filter never keeps a clique contained in cf and never drops one
// that is not, per brute-force subset checking.
func TestQuickFilterAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() [][]int32 {
			var out [][]int32
			for i := 0; i < rng.Intn(10)+1; i++ {
				var c []int32
				for v := int32(0); v < 12; v++ {
					if rng.Intn(3) == 0 {
						c = append(c, v)
					}
				}
				if len(c) > 0 {
					out = append(out, c)
				}
			}
			return out
		}
		cf, ch := mk(), mk()
		got := map[string]bool{}
		for _, c := range Filter(ch, cf) {
			got[key(c)] = true
		}
		for _, c := range ch {
			contained := false
			for _, f := range cf {
				fs := map[int32]bool{}
				for _, v := range f {
					fs[v] = true
				}
				all := true
				for _, v := range c {
					if !fs[v] {
						all = false
						break
					}
				}
				if all {
					contained = true
					break
				}
			}
			if got[key(c)] == contained {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFilter(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var cf, ch [][]int32
	for i := 0; i < 2000; i++ {
		var c []int32
		base := int32(rng.Intn(5000))
		for j := int32(0); j < int32(rng.Intn(8)+2); j++ {
			c = append(c, base+j)
		}
		cf = append(cf, c)
	}
	for i := 0; i < 500; i++ {
		var c []int32
		base := int32(rng.Intn(5000))
		for j := int32(0); j < int32(rng.Intn(5)+2); j++ {
			c = append(c, base+2*j)
		}
		ch = append(ch, c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Filter(ch, cf)
	}
}
