// Package filter implements the final step of FIND-MAX-CLIQUES (Algorithm 1,
// line 7 and Lemma 1): given the cliques Ch found on the hub-induced
// subgraph and the cliques Cf found on the feasible blocks, discard every
// member of Ch contained in some member of Cf. What survives is exactly the
// set of maximal cliques of the whole graph made of hub nodes only.
//
// Two implementations are provided. Filter is the paper-faithful containment
// test against an inverted index over Cf. ByExtension exploits Lemma 1's
// case analysis: a clique c that is maximal in the hub-induced subgraph is
// non-maximal in G exactly when some feasible node is adjacent to every node
// of c — no index over Cf needed. Both are exposed because the first matches
// the paper's data flow (workers only ship cliques, not the graph), while
// the second is faster when the full graph is at hand; tests assert they
// agree.
package filter

import (
	"sort"

	"mce/internal/graph"
)

// Index is an inverted node→clique map supporting containment queries
// against a fixed clique family. Cliques must be sorted ascending.
type Index struct {
	byNode  map[int32][]int32 // node → indices into cliques
	cliques [][]int32
}

// NewIndex builds an index over cliques; the slices are retained, not
// copied, and must not change while the index is in use.
func NewIndex(cliques [][]int32) *Index {
	ix := &Index{byNode: make(map[int32][]int32), cliques: cliques}
	for i, c := range cliques {
		for _, v := range c {
			ix.byNode[v] = append(ix.byNode[v], int32(i))
		}
	}
	return ix
}

// ContainedIn reports whether c (sorted ascending) is a subset of some
// indexed clique. The candidate list is taken from c's member with the
// fewest clique memberships, so the check degrades gracefully on skewed
// clique families.
func (ix *Index) ContainedIn(c []int32) bool {
	if len(c) == 0 {
		return len(ix.cliques) > 0
	}
	rarest := ix.byNode[c[0]]
	for _, v := range c {
		ids, ok := ix.byNode[v]
		if !ok {
			return false
		}
		if len(ids) < len(rarest) {
			rarest = ids
		}
	}
	for _, id := range rarest {
		if isSubsetSorted(c, ix.cliques[id]) {
			return true
		}
	}
	return false
}

// isSubsetSorted reports a ⊆ b for ascending slices.
func isSubsetSorted(a, b []int32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] > b[j]:
			j++
		default:
			return false
		}
	}
	return i == len(a)
}

// Filter returns the members of ch not contained in any member of cf — the
// paper's filter(Ch, Cf). Input cliques must be sorted ascending; the
// returned slices alias ch's entries.
func Filter(ch, cf [][]int32) [][]int32 {
	ix := NewIndex(cf)
	out := make([][]int32, 0, len(ch))
	for _, c := range ch {
		if !ix.ContainedIn(c) {
			out = append(out, c)
		}
	}
	return out
}

// ByExtension returns the members of ch that are maximal in g, assuming each
// member is maximal within the subgraph induced by the non-feasible nodes:
// by Lemma 1's case analysis, such a clique fails to be maximal in g exactly
// when some node for which feasible reports true is adjacent to every member.
// The returned slices alias ch's entries.
func ByExtension(g *graph.Graph, ch [][]int32, feasible func(int32) bool) [][]int32 {
	out := make([][]int32, 0, len(ch))
	for _, c := range ch {
		if !extendableByFeasible(g, c, feasible) {
			out = append(out, c)
		}
	}
	return out
}

// Extensible reports whether some node accepted by feasible is adjacent to
// every member of c — the Lemma 1 predicate behind ByExtension, exported so
// callers that need per-clique bookkeeping (package core) can drive the
// loop themselves.
func Extensible(g *graph.Graph, c []int32, feasible func(int32) bool) bool {
	return extendableByFeasible(g, c, feasible)
}

func extendableByFeasible(g *graph.Graph, c []int32, feasible func(int32) bool) bool {
	if len(c) == 0 {
		return g.N() > 0
	}
	// Scan the neighbourhood of the lowest-degree member.
	pivot := c[0]
	for _, v := range c[1:] {
		if g.Degree(v) < g.Degree(pivot) {
			pivot = v
		}
	}
	for _, u := range g.Neighbors(pivot) {
		if !feasible(u) {
			continue
		}
		if adjacentToAll(g, u, c) {
			return true
		}
	}
	return false
}

func adjacentToAll(g *graph.Graph, u int32, c []int32) bool {
	for _, v := range c {
		if v == u || !g.HasEdge(u, v) {
			return false
		}
	}
	return true
}

// Dedup removes duplicate cliques (sorted ascending) from cs, preserving
// first occurrences. It is used by tests and by defensive callers; the
// two-level pipeline itself never produces duplicates.
func Dedup(cs [][]int32) [][]int32 {
	seen := make(map[string]bool, len(cs))
	out := cs[:0:0]
	var buf []byte
	for _, c := range cs {
		buf = buf[:0]
		for _, v := range c {
			buf = append(buf,
				byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ';')
		}
		k := string(buf)
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}

// SortCliques orders a clique family lexicographically, shortest first on
// ties, for deterministic output.
func SortCliques(cs [][]int32) {
	sort.Slice(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
