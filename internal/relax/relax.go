// Package relax implements the distance-based community relaxations the
// paper lists as future work alongside k-plexes (§8): k-cliques, k-clans
// and k-clubs.
//
// Definitions (Luce; Mokken):
//
//   - a k-clique is a node set in which every pair is within distance k in
//     the whole graph (paths may leave the set);
//   - a k-clan is a k-clique whose induced subgraph additionally has
//     diameter ≤ k (paths stay inside);
//   - a k-club is a node set whose induced subgraph has diameter ≤ k,
//     maximal under that property.
//
// Maximal k-cliques are exactly the maximal cliques of the k-th graph
// power, so the enumeration reuses the MCE engine on graph.Power — the same
// reduction CFinder-style tools use. k-clans are obtained by filtering
// k-cliques on induced diameter. k-clubs are not closed under the k-clique
// structure (a maximal k-club need not be a k-clique), so the package
// provides the IsKClub verifier and a heuristic enumerator seeded from
// k-clans, which is exact for k = 1 and reports sets guaranteed to be
// k-clubs (each maximal among the candidates considered).
package relax

import (
	"fmt"
	"sort"

	"mce/internal/graph"
	"mce/internal/mcealg"
)

// KCliques enumerates the maximal k-cliques of g: maximal sets of nodes
// that are pairwise within distance k in g. For k = 1 this is maximal
// clique enumeration. Results are sorted-ascending node sets in
// deterministic order.
func KCliques(g *graph.Graph, k int) ([][]int32, error) {
	if k < 1 {
		return nil, fmt.Errorf("relax: k = %d, want ≥ 1", k)
	}
	power := graph.Power(g, k)
	out, err := mcealg.Collect(power, mcealg.Combo{Alg: mcealg.Eppstein, Struct: mcealg.Lists})
	if err != nil {
		return nil, err
	}
	sortFamilies(out)
	return out, nil
}

// InducedDiameter returns the diameter of the subgraph of g induced by
// set, or -1 when that subgraph is disconnected (or the set is empty).
func InducedDiameter(g *graph.Graph, set []int32) int {
	if len(set) == 0 {
		return -1
	}
	members := make([]bool, g.N())
	for _, v := range set {
		members[v] = true
	}
	diameter := 0
	for _, src := range set {
		dist := graph.BFSWithin(g, src, members)
		for _, v := range set {
			d := dist[v]
			if d < 0 {
				return -1
			}
			if int(d) > diameter {
				diameter = int(d)
			}
		}
	}
	return diameter
}

// IsKClub reports whether the subgraph induced by set has diameter ≤ k
// (and is connected). Note that k-club membership is not hereditary.
func IsKClub(g *graph.Graph, set []int32, k int) bool {
	if len(set) == 0 || k < 1 {
		return false
	}
	d := InducedDiameter(g, set)
	return d >= 0 && d <= k
}

// KClans enumerates the k-clans of g: the maximal k-cliques whose induced
// subgraph has diameter ≤ k (Mokken's definition).
func KClans(g *graph.Graph, k int) ([][]int32, error) {
	kcliques, err := KCliques(g, k)
	if err != nil {
		return nil, err
	}
	var out [][]int32
	for _, c := range kcliques {
		if IsKClub(g, c, k) {
			out = append(out, c)
		}
	}
	return out, nil
}

// KClubs reports k-clubs of g found by growing each k-clan greedily: a
// k-clan is a k-club by definition; each is extended with any node that
// keeps the induced diameter within k until no single node can be added.
// Every returned set is a genuine k-club that no single node extends; for
// k = 1 the result is exactly the maximal cliques. (Exhaustive maximal
// k-club enumeration is NP-hard even to verify maximality against all
// subsets, so a seeded heuristic is the standard compromise.) Duplicates
// are removed; results are deterministic.
func KClubs(g *graph.Graph, k int) ([][]int32, error) {
	clans, err := KClans(g, k)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out [][]int32
	for _, seed := range clans {
		club := growClub(g, seed, k)
		key := cliqueKey(club)
		if !seen[key] {
			seen[key] = true
			out = append(out, club)
		}
	}
	sortFamilies(out)
	return out, nil
}

// growClub extends set with nodes that keep the induced diameter ≤ k, in
// ascending node order for determinism.
func growClub(g *graph.Graph, set []int32, k int) []int32 {
	club := append([]int32(nil), set...)
	in := make([]bool, g.N())
	for _, v := range club {
		in[v] = true
	}
	for {
		extended := false
		// Candidates: neighbours of the club only — any addition discon-
		// nected from the club would break the diameter bound anyway.
		cands := map[int32]bool{}
		for _, v := range club {
			for _, u := range g.Neighbors(v) {
				if !in[u] {
					cands[u] = true
				}
			}
		}
		ordered := make([]int32, 0, len(cands))
		for v := range cands {
			ordered = append(ordered, v)
		}
		sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
		for _, v := range ordered {
			trial := append(append([]int32(nil), club...), v)
			if IsKClub(g, trial, k) {
				club = trial
				in[v] = true
				extended = true
				break
			}
		}
		if !extended {
			break
		}
	}
	sort.Slice(club, func(i, j int) bool { return club[i] < club[j] })
	return club
}

func sortFamilies(fs [][]int32) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		for x := 0; x < len(a) && x < len(b); x++ {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return len(a) < len(b)
	})
}

func cliqueKey(c []int32) string {
	b := make([]byte, 0, 5*len(c))
	for _, v := range c {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ',')
	}
	return string(b)
}
