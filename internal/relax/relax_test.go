package relax

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"mce/internal/gen"
	"mce/internal/graph"
	"mce/internal/mcealg"
)

func key(c []int32) string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

// pathGraph returns the path 0-1-…-(n-1).
func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(int32(v), int32(v+1))
	}
	return b.Build()
}

func TestInvalidK(t *testing.T) {
	g := graph.Complete(3)
	if _, err := KCliques(g, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KClans(g, 0); err == nil {
		t.Fatal("k=0 accepted by KClans")
	}
	if _, err := KClubs(g, 0); err == nil {
		t.Fatal("k=0 accepted by KClubs")
	}
}

func TestK1IsPlainMCE(t *testing.T) {
	g := gen.ErdosRenyi(30, 0.2, 3)
	want := map[string]bool{}
	for _, c := range mcealg.ReferenceCollect(g) {
		want[key(c)] = true
	}
	for _, fn := range []func(*graph.Graph, int) ([][]int32, error){KCliques, KClans, KClubs} {
		got, err := fn(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("k=1: %d sets, want %d", len(got), len(want))
		}
		for _, c := range got {
			if !want[key(c)] {
				t.Fatalf("k=1: unexpected set %v", c)
			}
		}
	}
}

func TestKCliquesOnPath(t *testing.T) {
	// Path of 5: 2-cliques are maximal windows of diameter ≤ 2 in the
	// distance metric: {0,1,2}, {1,2,3}, {2,3,4}.
	g := pathGraph(5)
	got, err := KCliques(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"0,1,2": true, "1,2,3": true, "2,3,4": true}
	if len(got) != len(want) {
		t.Fatalf("KCliques = %v", got)
	}
	for _, c := range got {
		if !want[key(c)] {
			t.Fatalf("unexpected 2-clique %v", c)
		}
	}
}

func TestKCliqueNotKClan(t *testing.T) {
	// The classic 2-clique vs 2-clan example: a 5-cycle with a chord
	// pattern — take the "bowtie"-like graph where {0,1,2,3,4} is a
	// 2-clique via outside paths but the induced diameter exceeds 2.
	//
	//   0-1, 1-2, 2-3, 3-4, 0-4 is C5: every pair within distance 2, so
	//   the whole C5 is a 2-clique; its induced diameter is 2, so it is
	//   also a 2-clan. Instead use the hub construction: leaves of a star
	//   form a 2-clique through the hub, but induced on the leaves alone
	//   they are disconnected.
	b := graph.NewBuilder(5)
	for v := int32(1); v < 5; v++ {
		b.AddEdge(0, v)
	}
	g := b.Build()
	kcliques, err := KCliques(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The whole star is one 2-clique (every pair within distance 2).
	if len(kcliques) != 1 || len(kcliques[0]) != 5 {
		t.Fatalf("KCliques = %v", kcliques)
	}
	// And it IS a 2-clan here because the hub is inside the set. Check
	// consistency: every k-clan is a k-clique with bounded diameter.
	clans, err := KClans(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(clans) != 1 || key(clans[0]) != key(kcliques[0]) {
		t.Fatalf("KClans = %v", clans)
	}
}

func TestKClanFiltersUnboundedDiameter(t *testing.T) {
	// The textbook 2-clique-but-not-2-clan example (Wasserman & Faust,
	// 0-indexed): edges 0-1, 0-2, 1-2, 1-3, 2-4, 3-5, 4-5.
	// {0,1,2,3,4} is a maximal 2-clique — d(3,4) = 2 via the outside node
	// 5 — but its induced subgraph has d(3,4) = 3 (3-1-2-4), so it is not
	// a 2-clan. {1,2,3,4,5} is both.
	b := graph.NewBuilder(6)
	for _, e := range [][2]int32{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 4}, {3, 5}, {4, 5}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	kcliques, err := KCliques(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	ks := map[string]bool{}
	for _, c := range kcliques {
		ks[key(c)] = true
	}
	if !ks["0,1,2,3,4"] || !ks["1,2,3,4,5"] {
		t.Fatalf("2-cliques = %v", kcliques)
	}
	clans, err := KClans(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	cs := map[string]bool{}
	for _, c := range clans {
		cs[key(c)] = true
	}
	if cs["0,1,2,3,4"] {
		t.Fatalf("{0,1,2,3,4} has induced diameter 3 but was reported as 2-clan")
	}
	if !cs["1,2,3,4,5"] {
		t.Fatalf("2-clan {1,2,3,4,5} missing: %v", clans)
	}
}

func TestInducedDiameter(t *testing.T) {
	g := pathGraph(5)
	if d := InducedDiameter(g, []int32{0, 1, 2}); d != 2 {
		t.Fatalf("diameter = %d, want 2", d)
	}
	if d := InducedDiameter(g, []int32{0, 2}); d != -1 {
		t.Fatalf("disconnected set diameter = %d, want -1", d)
	}
	if d := InducedDiameter(g, nil); d != -1 {
		t.Fatalf("empty set diameter = %d, want -1", d)
	}
	if d := InducedDiameter(g, []int32{3}); d != 0 {
		t.Fatalf("singleton diameter = %d, want 0", d)
	}
}

func TestIsKClub(t *testing.T) {
	g := pathGraph(4)
	if !IsKClub(g, []int32{0, 1, 2}, 2) {
		t.Fatal("path of 3 is a 2-club")
	}
	if IsKClub(g, []int32{0, 1, 2, 3}, 2) {
		t.Fatal("path of 4 has diameter 3, not a 2-club")
	}
	if IsKClub(g, []int32{0, 2}, 2) {
		t.Fatal("disconnected set accepted as club")
	}
	if IsKClub(g, nil, 2) || IsKClub(g, []int32{0}, 0) {
		t.Fatal("degenerate inputs accepted")
	}
}

func TestKClubsAreClubsAndUnextendable(t *testing.T) {
	g := gen.HolmeKim(80, 3, 0.6, 5)
	clubs, err := KClubs(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(clubs) == 0 {
		t.Fatal("no 2-clubs found")
	}
	for _, club := range clubs {
		if !IsKClub(g, club, 2) {
			t.Fatalf("reported set %v is not a 2-club", club)
		}
		in := map[int32]bool{}
		for _, v := range club {
			in[v] = true
		}
		for v := int32(0); v < int32(g.N()); v++ {
			if in[v] {
				continue
			}
			if IsKClub(g, append(append([]int32{}, club...), v), 2) {
				t.Fatalf("club %v extensible by %d", club, v)
			}
		}
	}
}

func TestBFSHelpers(t *testing.T) {
	g := pathGraph(4)
	dist := graph.BFS(g, 0)
	for v, want := range []int32{0, 1, 2, 3} {
		if dist[v] != want {
			t.Fatalf("BFS dist[%d] = %d, want %d", v, dist[v], want)
		}
	}
	if d := graph.BFS(g, -1); d[0] != -1 {
		t.Fatal("invalid source should reach nothing")
	}
	members := []bool{true, false, true, true}
	within := graph.BFSWithin(g, 2, members)
	if within[3] != 1 || within[0] != -1 || within[1] != -1 {
		t.Fatalf("BFSWithin = %v", within)
	}
	if d := graph.BFSWithin(g, 1, members); d[1] != -1 {
		t.Fatal("excluded source should reach nothing")
	}
}

func TestGraphPower(t *testing.T) {
	g := pathGraph(4)
	p2 := graph.Power(g, 2)
	// Distance-2 pairs on the path: (0,2), (1,3) join the original edges.
	wantEdges := 3 + 2
	if p2.M() != wantEdges {
		t.Fatalf("P^2 edges = %d, want %d", p2.M(), wantEdges)
	}
	if !p2.HasEdge(0, 2) || p2.HasEdge(0, 3) {
		t.Fatalf("P^2 adjacency wrong")
	}
	p1 := graph.Power(g, 1)
	if p1.M() != g.M() {
		t.Fatalf("P^1 changed the graph")
	}
}

// Property: every pair in every reported k-clique is within distance k;
// every k-clan is a k-clique with induced diameter ≤ k.
func TestQuickDefinitionsHold(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(18, 0.18, seed)
		k := 2
		kcliques, err := KCliques(g, k)
		if err != nil {
			return false
		}
		for _, c := range kcliques {
			for i, u := range c {
				dist := graph.BFS(g, u)
				for _, v := range c[i+1:] {
					if dist[v] < 1 || dist[v] > int32(k) {
						return false
					}
				}
			}
		}
		clans, err := KClans(g, k)
		if err != nil {
			return false
		}
		kset := map[string]bool{}
		for _, c := range kcliques {
			kset[key(c)] = true
		}
		for _, c := range clans {
			if !kset[key(c)] || !IsKClub(g, c, k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
