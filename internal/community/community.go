// Package community turns the output of maximal clique enumeration into
// overlapping communities, the application the paper motivates (§1, §7) and
// the k-clique relaxation it names as future work (§8).
//
// The method is clique percolation (Palla et al., as implemented by
// CFinder and by the parallel k-clique detector of Gregori et al. [20]):
// two maximal cliques of size ≥ k belong to the same k-clique community
// when they can be connected by a chain of maximal cliques in which
// consecutive cliques share at least k−1 nodes. A node may belong to
// several communities — the overlapping behaviour the paper argues plain
// edge clustering cannot deliver (§7).
package community

import (
	"fmt"
	"sort"
)

// Community is one overlapping community: the union of the nodes of a
// percolation-connected clique family.
type Community struct {
	// Nodes lists the members, ascending.
	Nodes []int32
	// Cliques counts how many maximal cliques merged into the community.
	Cliques int
	// MaxCliqueSize is the size of the largest constituent clique.
	MaxCliqueSize int
}

// Detect runs k-clique percolation over a family of maximal cliques (as
// produced by the enumeration engine). Cliques smaller than k are ignored.
// Communities are returned largest-first, ties by first node.
func Detect(cliques [][]int32, k int) ([]Community, error) {
	if k < 2 {
		return nil, fmt.Errorf("community: k = %d, want ≥ 2", k)
	}
	// Keep only cliques large enough to host a k-clique.
	var kept [][]int32
	for _, c := range cliques {
		if len(c) >= k {
			kept = append(kept, c)
		}
	}
	uf := newUnionFind(len(kept))

	// Two maximal cliques percolate when they share ≥ k−1 nodes. Candidate
	// pairs must share at least one node, so an inverted node→clique index
	// bounds the pair scan.
	byNode := map[int32][]int32{}
	for i, c := range kept {
		for _, v := range c {
			byNode[v] = append(byNode[v], int32(i))
		}
	}
	for _, ids := range byNode {
		for x := 1; x < len(ids); x++ {
			a := ids[x]
			for _, b := range ids[:x] {
				if uf.find(int(a)) == uf.find(int(b)) {
					continue
				}
				if overlapAtLeast(kept[a], kept[b], k-1) {
					uf.union(int(a), int(b))
				}
			}
		}
	}

	groups := map[int][]int{}
	for i := range kept {
		r := uf.find(i)
		groups[r] = append(groups[r], i)
	}
	out := make([]Community, 0, len(groups))
	for _, ids := range groups {
		members := map[int32]bool{}
		maxSize := 0
		for _, i := range ids {
			if len(kept[i]) > maxSize {
				maxSize = len(kept[i])
			}
			for _, v := range kept[i] {
				members[v] = true
			}
		}
		nodes := make([]int32, 0, len(members))
		for v := range members {
			nodes = append(nodes, v)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		out = append(out, Community{Nodes: nodes, Cliques: len(ids), MaxCliqueSize: maxSize})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Nodes) != len(out[j].Nodes) {
			return len(out[i].Nodes) > len(out[j].Nodes)
		}
		return out[i].Nodes[0] < out[j].Nodes[0]
	})
	return out, nil
}

// Membership inverts a community list into node → community indices
// (ascending), exposing the overlap structure.
func Membership(communities []Community) map[int32][]int {
	m := map[int32][]int{}
	for i, c := range communities {
		for _, v := range c.Nodes {
			m[v] = append(m[v], i)
		}
	}
	return m
}

// overlapAtLeast reports |a ∩ b| ≥ want for ascending slices, stopping as
// soon as the bound is met or unreachable.
func overlapAtLeast(a, b []int32, want int) bool {
	if want <= 0 {
		return true
	}
	i, j, got := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			got++
			if got >= want {
				return true
			}
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
		if got+min(len(a)-i, len(b)-j) < want {
			return false
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// unionFind is a path-halving weighted union-find over [0, n).
type unionFind struct {
	parent []int
	rank   []int8
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int8, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}

// Scales runs Detect for every k in ks and returns the communities per k —
// the resolution sweep community studies report (large k: tight cores;
// small k: broad percolating clusters). The clique family is shared across
// scales, so the sweep costs one pass per k over the same index.
func Scales(cliques [][]int32, ks []int) (map[int][]Community, error) {
	out := make(map[int][]Community, len(ks))
	for _, k := range ks {
		cs, err := Detect(cliques, k)
		if err != nil {
			return nil, err
		}
		out[k] = cs
	}
	return out, nil
}

// SizeDistribution returns counts[s] = number of communities with exactly s
// nodes, a compact fingerprint of a community family.
func SizeDistribution(communities []Community) map[int]int {
	out := map[int]int{}
	for _, c := range communities {
		out[len(c.Nodes)]++
	}
	return out
}
