package community

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mce/internal/gen"
	"mce/internal/graph"
	"mce/internal/mcealg"
)

func key(c []int32) string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

func TestInvalidK(t *testing.T) {
	if _, err := Detect(nil, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
}

func TestEmptyInput(t *testing.T) {
	cs, err := Detect(nil, 3)
	if err != nil || len(cs) != 0 {
		t.Fatalf("Detect(nil) = %v, %v", cs, err)
	}
}

func TestTrianglesSharingEdgeMerge(t *testing.T) {
	// Cliques {0,1,2} and {1,2,3} share 2 nodes: one k=3 community.
	cs, err := Detect([][]int32{{0, 1, 2}, {1, 2, 3}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 || key(cs[0].Nodes) != "0,1,2,3" {
		t.Fatalf("communities = %+v", cs)
	}
	if cs[0].Cliques != 2 || cs[0].MaxCliqueSize != 3 {
		t.Fatalf("stats = %+v", cs[0])
	}
}

func TestTrianglesSharingVertexStaySeparate(t *testing.T) {
	// Sharing only one node (< k−1 = 2): two communities.
	cs, err := Detect([][]int32{{0, 1, 2}, {2, 3, 4}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("communities = %+v", cs)
	}
	// But at k=2 (overlap ≥ 1) they merge.
	cs, err = Detect([][]int32{{0, 1, 2}, {2, 3, 4}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 || key(cs[0].Nodes) != "0,1,2,3,4" {
		t.Fatalf("k=2 communities = %+v", cs)
	}
}

func TestSmallCliquesIgnored(t *testing.T) {
	// Edges (2-cliques) cannot seed a k=3 community.
	cs, err := Detect([][]int32{{0, 1}, {2, 3}, {4, 5, 6}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 || key(cs[0].Nodes) != "4,5,6" {
		t.Fatalf("communities = %+v", cs)
	}
}

func TestChainOfCliquesPercolates(t *testing.T) {
	// A percolation chain: each consecutive pair overlaps in 2 nodes, the
	// ends share nothing — still one community via the chain.
	cliques := [][]int32{{0, 1, 2}, {1, 2, 3}, {2, 3, 4}, {3, 4, 5}}
	cs, err := Detect(cliques, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 || key(cs[0].Nodes) != "0,1,2,3,4,5" {
		t.Fatalf("communities = %+v", cs)
	}
}

func TestCommunitiesSortedBySize(t *testing.T) {
	cs, err := Detect([][]int32{{0, 1, 2}, {10, 11, 12}, {11, 12, 13}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || len(cs[0].Nodes) < len(cs[1].Nodes) {
		t.Fatalf("not size-ordered: %+v", cs)
	}
}

func TestMembershipOverlap(t *testing.T) {
	cs, err := Detect([][]int32{{0, 1, 2}, {2, 3, 4}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := Membership(cs)
	if len(m[2]) != 2 {
		t.Fatalf("node 2 should be in both communities: %v", m[2])
	}
	if len(m[0]) != 1 || len(m[4]) != 1 {
		t.Fatalf("membership = %v", m)
	}
}

func TestEndToEndTwoPlantedCommunities(t *testing.T) {
	// Two K6s bridged by a single edge: clique percolation at k=4 must
	// recover exactly the two plants.
	b := graph.NewBuilder(12)
	for u := int32(0); u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			b.AddEdge(u, v)
			b.AddEdge(u+6, v+6)
		}
	}
	b.AddEdge(5, 6)
	g := b.Build()
	cliques := mcealg.ReferenceCollect(g)
	cs, err := Detect(cliques, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("communities = %+v", cs)
	}
	got := map[string]bool{key(cs[0].Nodes): true, key(cs[1].Nodes): true}
	if !got["0,1,2,3,4,5"] || !got["6,7,8,9,10,11"] {
		t.Fatalf("wrong communities: %+v", cs)
	}
}

// Property: Detect is a partition refinement — every input clique of size
// ≥ k lands in exactly one community, and communities' clique counts sum to
// the number of kept cliques.
func TestQuickCliqueAccounting(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.HolmeKim(int(seed%100)+30, 4, 0.6, seed)
		cliques := mcealg.ReferenceCollect(g)
		k := 3
		cs, err := Detect(cliques, k)
		if err != nil {
			return false
		}
		kept := 0
		for _, c := range cliques {
			if len(c) >= k {
				kept++
			}
		}
		sum := 0
		for _, com := range cs {
			sum += com.Cliques
			if com.MaxCliqueSize < k || len(com.Nodes) < k {
				return false
			}
		}
		return sum == kept
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: percolation transitivity — if cliques A,B overlap ≥ k−1 they
// are in the same community.
func TestQuickAdjacentCliquesSameCommunity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(25, 0.35, seed)
		cliques := mcealg.ReferenceCollect(g)
		k := 3
		cs, err := Detect(cliques, k)
		if err != nil {
			return false
		}
		// Community index per clique key.
		commOf := map[string]int{}
		for i, com := range cs {
			for _, c := range cliques {
				if len(c) < k {
					continue
				}
				inside := true
				for _, v := range c {
					if !contains(com.Nodes, v) {
						inside = false
						break
					}
				}
				if inside {
					if _, dup := commOf[key(c)]; !dup {
						commOf[key(c)] = i
					}
				}
			}
		}
		for trial := 0; trial < 20; trial++ {
			if len(cliques) < 2 {
				break
			}
			a := cliques[rng.Intn(len(cliques))]
			b := cliques[rng.Intn(len(cliques))]
			if len(a) < k || len(b) < k {
				continue
			}
			if overlapAtLeast(a, b, k-1) && commOf[key(a)] != commOf[key(b)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func contains(s []int32, v int32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestOverlapAtLeast(t *testing.T) {
	cases := []struct {
		a, b []int32
		want int
		ok   bool
	}{
		{[]int32{1, 2, 3}, []int32{2, 3, 4}, 2, true},
		{[]int32{1, 2, 3}, []int32{2, 3, 4}, 3, false},
		{[]int32{1, 2}, []int32{3, 4}, 1, false},
		{[]int32{}, []int32{1}, 0, true},
		{[]int32{1}, []int32{1}, 1, true},
	}
	for _, c := range cases {
		if got := overlapAtLeast(c.a, c.b, c.want); got != c.ok {
			t.Errorf("overlapAtLeast(%v, %v, %d) = %v, want %v", c.a, c.b, c.want, got, c.ok)
		}
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(6)
	uf.union(0, 1)
	uf.union(2, 3)
	uf.union(1, 2)
	if uf.find(0) != uf.find(3) {
		t.Fatal("union chain broken")
	}
	if uf.find(4) == uf.find(0) || uf.find(4) == uf.find(5) {
		t.Fatal("separate elements merged")
	}
}

func BenchmarkDetect(b *testing.B) {
	g := gen.HolmeKim(3000, 6, 0.7, 21)
	cliques, err := mcealg.Collect(g, mcealg.Combo{Alg: mcealg.Eppstein, Struct: mcealg.Lists})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Detect(cliques, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func TestScales(t *testing.T) {
	cliques := [][]int32{{0, 1, 2, 3}, {2, 3, 4}, {6, 7, 8}}
	scales, err := Scales(cliques, []int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	// k=2: {0..4} merge (overlap ≥ 1), {6,7,8} separate → 2 communities.
	if len(scales[2]) != 2 {
		t.Fatalf("k=2 scales = %+v", scales[2])
	}
	// k=3: {0,1,2,3} and {2,3,4} share 2 nodes → merge; still 2.
	if len(scales[3]) != 2 {
		t.Fatalf("k=3 scales = %+v", scales[3])
	}
	// k=4: only the 4-clique qualifies.
	if len(scales[4]) != 1 || len(scales[4][0].Nodes) != 4 {
		t.Fatalf("k=4 scales = %+v", scales[4])
	}
	if _, err := Scales(cliques, []int{1}); err == nil {
		t.Fatal("invalid k accepted in sweep")
	}
}

func TestSizeDistribution(t *testing.T) {
	cs := []Community{
		{Nodes: []int32{1, 2, 3}},
		{Nodes: []int32{4, 5, 6}},
		{Nodes: []int32{7, 8}},
	}
	d := SizeDistribution(cs)
	if d[3] != 2 || d[2] != 1 || len(d) != 2 {
		t.Fatalf("distribution = %v", d)
	}
}
