package experiments

import (
	"testing"
	"time"

	"mce/internal/gen"
	"mce/internal/graph"
	"mce/internal/mcealg"
)

// miniCorpus keeps unit tests fast; the full 50-graph corpus is exercised
// by the benchmarks and cmd/mcebench.
func miniCorpus(t *testing.T) []gen.CorpusGraph {
	t.Helper()
	full := gen.Corpus(1)
	var mini []gen.CorpusGraph
	for _, c := range full {
		if c.Graph.N() <= 300 {
			mini = append(mini, c)
		}
		if len(mini) == 15 {
			break
		}
	}
	if len(mini) < 10 {
		t.Fatalf("mini corpus too small: %d", len(mini))
	}
	return mini
}

func TestMeasureCorpusAndTable1(t *testing.T) {
	ms, err := MeasureCorpus(miniCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if len(m.Times) != 12 {
			t.Fatalf("%s: %d combo timings, want 12", m.Name, len(m.Times))
		}
		if m.Cliques <= 0 {
			t.Fatalf("%s: %d cliques", m.Name, m.Cliques)
		}
		if m.Times[m.Best] <= 0 {
			t.Fatalf("%s: best combo has no timing", m.Name)
		}
	}
	rows := Table1(ms)
	if len(rows) != 12 {
		t.Fatalf("Table1 rows = %d, want 12", len(rows))
	}
	total := 0
	for _, r := range rows {
		total += r.Wins
	}
	if total != len(ms) {
		t.Fatalf("wins sum to %d, want %d", total, len(ms))
	}
}

func TestTable2Ranges(t *testing.T) {
	ms, err := MeasureCorpus(miniCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	rows := Table2(ms)
	if len(rows) != 5 {
		t.Fatalf("Table2 rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Min > r.Max {
			t.Fatalf("%s: min %v > max %v", r.Metric, r.Min, r.Max)
		}
	}
	if rows[0].Metric != "nodes" || rows[0].Min < 1 {
		t.Fatalf("nodes range wrong: %+v", rows[0])
	}
	// The corpus is heterogeneous: ranges must actually spread.
	if rows[0].Max < 2*rows[0].Min {
		t.Fatalf("corpus sizes not heterogeneous: %+v", rows[0])
	}
}

func TestTable3(t *testing.T) {
	rows, graphs := Table3()
	if len(rows) != 5 || len(graphs) != 5 {
		t.Fatalf("Table3: %d rows, %d graphs", len(rows), len(graphs))
	}
	for _, r := range rows {
		g := graphs[r.Name]
		if g == nil {
			t.Fatalf("graph %s missing", r.Name)
		}
		if r.Nodes != g.N() || r.Edges != g.M() || r.MaxDegree != g.MaxDegree() {
			t.Fatalf("%s: row stats do not match graph", r.Name)
		}
		if r.PaperNodes <= r.Nodes {
			t.Fatalf("%s: surrogate larger than the original?", r.Name)
		}
	}
}

func TestFigures3And4(t *testing.T) {
	ms, err := MeasureCorpus(miniCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	eval := Figures3And4(ms)
	if eval.Tree == nil {
		t.Fatal("no tree trained")
	}
	if eval.TrainGraphs+eval.TestGraphs != len(ms) {
		t.Fatalf("split %d+%d != %d", eval.TrainGraphs, eval.TestGraphs, len(ms))
	}
	if eval.TestGraphs == 0 {
		t.Fatal("empty test split")
	}
	if eval.TreeTime <= 0 {
		t.Fatalf("TreeTime = %v", eval.TreeTime)
	}
	if len(eval.FixedTimes) != 12 {
		t.Fatalf("FixedTimes = %d rows", len(eval.FixedTimes))
	}
	for i := 1; i < len(eval.FixedTimes); i++ {
		if eval.FixedTimes[i-1].Total > eval.FixedTimes[i].Total {
			t.Fatalf("FixedTimes not ascending")
		}
	}
	if eval.TestAccuracy < 0 || eval.TestAccuracy > 1 {
		t.Fatalf("accuracy = %v", eval.TestAccuracy)
	}
	// The tree never does worse than the worst fixed combo (it can only
	// pick combos that exist).
	worst := eval.FixedTimes[len(eval.FixedTimes)-1].Total
	if eval.TreeTime > worst {
		t.Fatalf("tree %v slower than worst fixed combo %v", eval.TreeTime, worst)
	}
}

func TestFigure6(t *testing.T) {
	_, graphs := Table3()
	rows := Figure6(graphs)
	if len(rows) != 5 {
		t.Fatalf("Figure6 rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Counts) != 22 {
			t.Fatalf("%s: %d bins, want 22", r.Name, len(r.Counts))
		}
		sum := 0
		for _, c := range r.Counts {
			sum += c
		}
		if sum != graphs[r.Name].N() {
			t.Fatalf("%s: histogram sums to %d, want %d", r.Name, sum, graphs[r.Name].N())
		}
		if r.LowDegreeShare < 0.5 || r.LowDegreeShare > 1 {
			t.Fatalf("%s: low-degree share %v not power-law-like", r.Name, r.LowDegreeShare)
		}
	}
}

func TestRunRatioSweepCompleteAtEveryRatio(t *testing.T) {
	g := gen.HolmeKim(500, 5, 0.7, 31)
	want, err := mcealg.Count(g, mcealg.Combo{Alg: mcealg.Eppstein, Struct: mcealg.Lists})
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunRatioSweep(g, PaperRatios())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.FeasibleCliques+r.HubCliques != want {
			t.Fatalf("ratio %v: %d+%d cliques, want %d", r.Ratio, r.FeasibleCliques, r.HubCliques, want)
		}
		if r.Iterations < 1 {
			t.Fatalf("ratio %v: %d iterations", r.Ratio, r.Iterations)
		}
		if r.Top200HubShare < 0 || r.Top200HubShare > 1 {
			t.Fatalf("ratio %v: hub share %v", r.Ratio, r.Top200HubShare)
		}
		if r.M <= 0 || r.Blocks <= 0 {
			t.Fatalf("ratio %v: m=%d blocks=%d", r.Ratio, r.M, r.Blocks)
		}
		if r.MaxCliqueSize < 2 {
			t.Fatalf("ratio %v: max clique size %d", r.Ratio, r.MaxCliqueSize)
		}
	}
	// Smaller blocks make more hubs, so hub-only cliques must not shrink
	// from ratio 0.9 to 0.1 (paper Figures 9–11 trend).
	if results[4].HubCliques < results[0].HubCliques {
		t.Fatalf("hub cliques at 0.1 (%d) below 0.9 (%d)", results[4].HubCliques, results[0].HubCliques)
	}
}

func TestNeglectHubsCompleteWithoutHubs(t *testing.T) {
	g := gen.ErdosRenyi(80, 0.15, 9)
	m := g.MaxDegree() + 1
	found, err := NeglectHubs(g, m)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[string]bool{}
	mcealg.ReferenceEnumerate(g, func(c []int32) { truth[cliqueKey(c)] = true })
	if len(found) != len(truth) {
		t.Fatalf("no-hub baseline found %d cliques, want %d", len(found), len(truth))
	}
	for _, c := range found {
		if !truth[cliqueKey(c)] {
			t.Fatalf("no-hub baseline invented clique %v", c)
		}
	}
}

func TestNeglectHubsMissesHubClique(t *testing.T) {
	// K6 hub core, each core node with 20 pendant leaves: with small m the
	// baseline must miss the core clique {0..5}.
	b := graph.NewBuilder(6 + 6*20)
	for u := int32(0); u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			b.AddEdge(u, v)
		}
	}
	next := int32(6)
	for u := int32(0); u < 6; u++ {
		for i := 0; i < 20; i++ {
			b.AddEdge(u, next)
			next++
		}
	}
	g := b.Build()
	results, err := HubNeglectBaseline(g, []float64{0.2})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Missed == 0 {
		t.Fatalf("baseline missed nothing despite hub clique: %+v", r)
	}
	if r.MaxMissedSize < 6 {
		t.Fatalf("largest missed clique has size %d, want ≥ 6", r.MaxMissedSize)
	}
	if r.Truth != r.Found-r.Spurious+r.Missed {
		t.Fatalf("accounting identity violated: %+v", r)
	}
}

func TestHubNeglectBaselineOnSurrogate(t *testing.T) {
	if testing.Short() {
		t.Skip("surrogate baseline is slow")
	}
	g := gen.HolmeKim(1500, 6, 0.7, 77)
	results, err := HubNeglectBaseline(g, []float64{0.9, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// Shrinking m must not reduce what goes wrong.
	if results[1].Missed < results[0].Missed {
		t.Fatalf("missed at 0.1 (%d) below 0.9 (%d)", results[1].Missed, results[0].Missed)
	}
}

func TestHardChainRounds(t *testing.T) {
	points, err := HardChainRounds([]int{20, 40}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Iterations < p.N-8 {
			t.Fatalf("n=%d: %d iterations, expected Ω(n)", p.N, p.Iterations)
		}
	}
	if points[1].Iterations <= points[0].Iterations {
		t.Fatalf("iterations do not grow with n: %+v", points)
	}
}

func TestPaperRatios(t *testing.T) {
	rs := PaperRatios()
	if len(rs) != 5 || rs[0] != 0.9 || rs[4] != 0.1 {
		t.Fatalf("PaperRatios = %v", rs)
	}
}

func TestSummariseEmptyHubs(t *testing.T) {
	// A graph with no hubs at ratio 0.9 still summarises sanely.
	g := gen.ErdosRenyi(50, 0.1, 3)
	results, err := RunRatioSweep(g, []float64{0.9})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.HubCliques != 0 && r.AvgSizeHub <= 0 {
		t.Fatalf("inconsistent hub stats: %+v", r)
	}
	if r.FeasibleCliques > 0 && r.AvgSizeFeasible <= 0 {
		t.Fatalf("inconsistent feasible stats: %+v", r)
	}
	_ = time.Duration(0)
}

func TestPowerLawAlpha(t *testing.T) {
	// Barabási–Albert theory: exponent 3; the MLE on a finite sample lands
	// in a band around it.
	ba := gen.BarabasiAlbert(8000, 4, 9)
	alpha, tail := PowerLawAlpha(ba, 0)
	if tail < 100 {
		t.Fatalf("tail too small: %d", tail)
	}
	if alpha < 2 || alpha > 4.5 {
		t.Fatalf("BA alpha = %.2f, want within (2, 4.5)", alpha)
	}
	// Degenerate input.
	if a, n := PowerLawAlpha(graph.Empty(5), 0); a != 0 || n != 0 {
		t.Fatalf("empty graph alpha = %v, tail %d", a, n)
	}
	// Explicit dmin is honoured.
	_, tailLow := PowerLawAlpha(ba, 2)
	_, tailHigh := PowerLawAlpha(ba, 50)
	if tailHigh >= tailLow {
		t.Fatalf("raising dmin did not shrink the tail: %d vs %d", tailHigh, tailLow)
	}
}

func TestFigure6ReportsAlpha(t *testing.T) {
	_, graphs := Table3()
	for _, r := range Figure6(graphs) {
		if r.Alpha < 1.5 || r.Alpha > 6 {
			t.Fatalf("%s: implausible alpha %.2f", r.Name, r.Alpha)
		}
		if r.TailNodes <= 0 {
			t.Fatalf("%s: empty tail", r.Name)
		}
	}
}

func TestPowerLawAlphaRecoversExponent(t *testing.T) {
	// Generator and estimator cross-validate: a configuration-model graph
	// with exponent 2.5 should be estimated near 2.5.
	g := gen.PowerLawConfiguration(30000, 2.5, 3, 500, 13)
	alpha, tail := PowerLawAlpha(g, 3)
	if tail < 500 {
		t.Fatalf("tail too small: %d", tail)
	}
	if alpha < 2.1 || alpha > 2.9 {
		t.Fatalf("estimated alpha = %.2f for true 2.5", alpha)
	}
}
