package experiments

import (
	"fmt"
	"sort"
	"time"

	"mce/internal/bitset"
	"mce/internal/graph"
	"mce/internal/mcealg"
)

// NeglectHubsResult quantifies what a single-level, hub-neglecting
// decomposition (the EmMCE-style baseline of §7, [10]) gets wrong.
type NeglectHubsResult struct {
	Ratio float64
	M     int
	// Truth is the number of maximal cliques of the graph.
	Truth int
	// Found is the number of distinct cliques the baseline reports.
	Found int
	// Missed counts true maximal cliques the baseline never reports.
	Missed int
	// Spurious counts reported cliques that are not maximal cliques of the
	// graph (they looked maximal inside a truncated block).
	Spurious int
	// MaxMissedSize is the size of the largest missed clique — the paper's
	// point that the lost cliques are among the most significant.
	MaxMissedSize int
	Elapsed       time.Duration
}

// NeglectHubs simulates the failure mode the paper fixes: every node is
// processed with its neighbourhood truncated to the block capacity, so hubs
// lose neighbours. The procedure mirrors a one-level kernel/visited
// decomposition — each node is the kernel of its own (truncated) block,
// earlier kernels are excluded — which is complete when no node is a hub
// and loses (and invents) cliques when hubs exist.
func NeglectHubs(g *graph.Graph, m int) ([][]int32, error) {
	n := g.N()
	// Process in increasing degree order, as suggested in [10].
	order := make([]int32, n)
	for v := int32(0); v < int32(n); v++ {
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})

	visited := bitset.New(n)
	var out [][]int32
	seen := map[string]bool{}
	for _, v := range order {
		nbrs := g.Neighbors(v)
		if len(nbrs) > m-1 {
			// The hub's neighbourhood does not fit: the block silently
			// keeps an arbitrary portion of it, which is precisely the
			// baseline's flaw. "Arbitrary" is modelled by a hash order —
			// truncating the sorted adjacency list instead would
			// systematically keep the low-ID early nodes, which in
			// preferential-attachment graphs are exactly the clique
			// partners, hiding the failure mode.
			hashed := make([]int32, len(nbrs))
			copy(hashed, nbrs)
			sort.Slice(hashed, func(i, j int) bool {
				return truncHash(v, hashed[i]) < truncHash(v, hashed[j])
			})
			nbrs = hashed[:m-1]
		}
		nodes := make([]int32, 0, len(nbrs)+1)
		nodes = append(nodes, v)
		nodes = append(nodes, nbrs...)
		sub, orig := graph.Induced(g, nodes)

		// Local sets: R = {v}, P = unvisited neighbours, X = visited ones.
		P := bitset.New(sub.N())
		X := bitset.New(sub.N())
		for local, global := range orig {
			if local == 0 {
				continue // v itself
			}
			if visited.Has(global) {
				X.Add(int32(local))
			} else {
				P.Add(int32(local))
			}
		}
		err := mcealg.EnumerateSubproblem(sub, mcealg.Combo{Alg: mcealg.Tomita, Struct: mcealg.BitSets},
			[]int32{0}, P, X, func(local []int32) {
				clique := make([]int32, len(local))
				for i, lv := range local {
					clique[i] = orig[lv]
				}
				sort.Slice(clique, func(i, j int) bool { return clique[i] < clique[j] })
				k := cliqueKey(clique)
				if !seen[k] {
					seen[k] = true
					out = append(out, clique)
				}
			})
		if err != nil {
			return nil, fmt.Errorf("experiments: neglect-hubs block for node %d: %w", v, err)
		}
		visited.Add(v)
	}
	return out, nil
}

// truncHash mixes the kernel and neighbour IDs so the kept portion of a
// truncated neighbourhood is effectively arbitrary per block.
func truncHash(v, u int32) uint32 {
	x := uint32(v)*2654435761 ^ uint32(u)*40503
	x ^= x >> 16
	return x * 2246822519
}

// HubNeglectBaseline compares NeglectHubs against the exact clique set for
// each m/d ratio — experiment X1 of DESIGN.md, backing the paper's claim
// that without hub handling "significant cliques would be undetected".
func HubNeglectBaseline(g *graph.Graph, ratios []float64) ([]NeglectHubsResult, error) {
	truth := map[string]int{}
	var err error
	all, err := mcealg.Collect(g, mcealg.Combo{Alg: mcealg.Eppstein, Struct: mcealg.Lists})
	if err != nil {
		return nil, err
	}
	for _, c := range all {
		truth[cliqueKey(c)] = len(c)
	}
	maxDeg := g.MaxDegree()
	out := make([]NeglectHubsResult, 0, len(ratios))
	for _, r := range ratios {
		m := int(r*float64(maxDeg) + 0.999)
		if m < 2 {
			m = 2
		}
		t0 := time.Now()
		found, ferr := NeglectHubs(g, m)
		if ferr != nil {
			return nil, ferr
		}
		res := NeglectHubsResult{
			Ratio: r, M: m,
			Truth: len(truth), Found: len(found),
			Elapsed: time.Since(t0),
		}
		foundSet := make(map[string]bool, len(found))
		for _, c := range found {
			k := cliqueKey(c)
			foundSet[k] = true
			if _, ok := truth[k]; !ok {
				res.Spurious++
			}
		}
		for k, size := range truth {
			if !foundSet[k] {
				res.Missed++
				if size > res.MaxMissedSize {
					res.MaxMissedSize = size
				}
			}
		}
		out = append(out, res)
	}
	return out, err
}

func cliqueKey(c []int32) string {
	b := make([]byte, 0, 5*len(c))
	for _, v := range c {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ',')
	}
	return string(b)
}
