// Package experiments regenerates every table and figure of the paper's
// evaluation (§4 and §6) on the synthetic corpus and the dataset surrogates:
//
//	Table 1    — how often each algorithm/structure combo is fastest
//	Table 2    — parameter ranges of the measurement corpus
//	Table 3    — dataset statistics
//	Figure 3   — the trained algorithm-selection decision tree
//	Figure 4   — total test-set time: decision tree vs fixed combos
//	Figure 6   — truncated degree distributions
//	Figure 7   — decomposition time vs m/d (plus iteration counts)
//	Figure 8   — clique computation time vs m/d
//	Figures 9/10 — clique counts and average sizes, feasible vs hub-only
//	Figure 11  — hub-only share of the 200 largest cliques
//
// plus two experiments implied by the paper's claims: the hub-neglecting
// baseline (cliques missed/erroneously reported without the two-level
// scheme) and the Theorem 1 hard chain (Ω(n) first-level iterations).
//
// Functions return plain data; rendering is left to cmd/mcebench and the
// benchmarks.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mce/internal/core"
	"mce/internal/dtree"
	"mce/internal/gen"
	"mce/internal/graph"
	"mce/internal/kcore"
	"mce/internal/mcealg"
)

// PaperRatios are the m/d values of the paper's sweeps (§6.2).
func PaperRatios() []float64 { return []float64{0.9, 0.7, 0.5, 0.3, 0.1} }

// CorpusMeasurement is one corpus graph with its features and the measured
// enumeration time of every combo.
type CorpusMeasurement struct {
	Name     string
	Features kcore.Features
	Times    map[mcealg.Combo]time.Duration
	Cliques  int
	Best     mcealg.Combo
}

// MeasureCorpus times all 12 combos on every corpus graph — the measurement
// underlying Table 1, Table 2 and Figures 3–4. Results are deterministic in
// content (clique counts, features); timings naturally vary run to run.
func MeasureCorpus(corpus []gen.CorpusGraph) ([]CorpusMeasurement, error) {
	out := make([]CorpusMeasurement, 0, len(corpus))
	for _, cg := range corpus {
		m := CorpusMeasurement{
			Name:     cg.Name,
			Features: kcore.Measure(cg.Graph),
			Times:    make(map[mcealg.Combo]time.Duration, 12),
		}
		best := time.Duration(-1)
		for _, combo := range mcealg.AllCombos() {
			t0 := time.Now()
			n, err := mcealg.Count(cg.Graph, combo)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s with %v: %w", cg.Name, combo, err)
			}
			d := time.Since(t0)
			m.Times[combo] = d
			m.Cliques = n
			if best < 0 || d < best {
				best = d
				m.Best = combo
			}
		}
		out = append(out, m)
	}
	return out, nil
}

// Table1Row reports how many corpus graphs a combo won (was fastest on).
type Table1Row struct {
	Combo mcealg.Combo
	Wins  int
}

// Table1 aggregates the win counts of the combos (paper Table 1).
func Table1(ms []CorpusMeasurement) []Table1Row {
	wins := map[mcealg.Combo]int{}
	for _, m := range ms {
		wins[m.Best]++
	}
	rows := make([]Table1Row, 0, len(mcealg.AllCombos()))
	for _, c := range mcealg.AllCombos() {
		rows = append(rows, Table1Row{Combo: c, Wins: wins[c]})
	}
	return rows
}

// Table2Row is one metric's observed range over the corpus (paper Table 2).
type Table2Row struct {
	Metric   string
	Min, Max float64
}

// Table2 computes the corpus parameter ranges (paper Table 2).
func Table2(ms []CorpusMeasurement) []Table2Row {
	get := []struct {
		name string
		f    func(kcore.Features) float64
	}{
		{"nodes", func(f kcore.Features) float64 { return float64(f.Nodes) }},
		{"edges", func(f kcore.Features) float64 { return float64(f.Edges) }},
		{"density", func(f kcore.Features) float64 { return f.Density }},
		{"degeneracy", func(f kcore.Features) float64 { return float64(f.Degeneracy) }},
		{"d*", func(f kcore.Features) float64 { return float64(f.DStar) }},
	}
	rows := make([]Table2Row, 0, len(get))
	for _, g := range get {
		row := Table2Row{Metric: g.name}
		for i, m := range ms {
			v := g.f(m.Features)
			if i == 0 || v < row.Min {
				row.Min = v
			}
			if i == 0 || v > row.Max {
				row.Max = v
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Table3Row pairs a surrogate's statistics with what the paper's Table 3
// reports for the original dataset.
type Table3Row struct {
	Name                                   string
	Nodes, Edges, MaxDegree                int
	PaperNodes, PaperEdges, PaperMaxDegree int
}

// Table3 builds every dataset surrogate and reports its statistics next to
// the paper's (paper Table 3).
func Table3() ([]Table3Row, map[string]*graph.Graph) {
	rows := make([]Table3Row, 0, 5)
	graphs := make(map[string]*graph.Graph, 5)
	for _, spec := range gen.Datasets() {
		g := spec.Build()
		graphs[spec.Name] = g
		rows = append(rows, Table3Row{
			Name:  spec.Name,
			Nodes: g.N(), Edges: g.M(), MaxDegree: g.MaxDegree(),
			PaperNodes: spec.PaperNodes, PaperEdges: spec.PaperEdges,
			PaperMaxDegree: spec.PaperMaxDegree,
		})
	}
	return rows, graphs
}

// TreeEval is the outcome of the Figure 3 / Figure 4 experiment.
type TreeEval struct {
	// Tree is the decision tree trained on the 80% split (Figure 3).
	Tree *dtree.Tree
	// TrainGraphs and TestGraphs are the split sizes.
	TrainGraphs, TestGraphs int
	// TreeTime is the total time the tree-selected combos took on the test
	// set (reusing the corpus measurements, as the paper does).
	TreeTime time.Duration
	// FixedTimes is every combo's total time on the test set, ascending,
	// so FixedTimes[:5] are the paper's "five best performing
	// combinations" bars of Figure 4.
	FixedTimes []FixedTime
	// TestAccuracy is the fraction of test graphs where the tree picked
	// the measured-best combo exactly.
	TestAccuracy float64
}

// FixedTime is one fixed-combo bar of Figure 4.
type FixedTime struct {
	Combo mcealg.Combo
	Total time.Duration
}

// Figures3And4 trains the decision tree on an 80/20 split of the corpus
// measurements (§4) and evaluates it against every fixed combo on the test
// split. The split is deterministic: every fifth graph is a test graph.
func Figures3And4(ms []CorpusMeasurement) TreeEval {
	var train []dtree.Sample
	var test []CorpusMeasurement
	for i, m := range ms {
		if (i+1)%5 == 0 {
			test = append(test, m)
		} else {
			train = append(train, dtree.Sample{F: m.Features, Best: m.Best})
		}
	}
	tree := dtree.Train(train, dtree.Options{MaxDepth: 4, MinLeaf: 2})
	eval := TreeEval{Tree: tree, TrainGraphs: len(train), TestGraphs: len(test)}

	totals := map[mcealg.Combo]time.Duration{}
	hits := 0
	for _, m := range test {
		pick := dtree.SafePredict(tree, m.Features)
		eval.TreeTime += m.Times[pick]
		if pick == m.Best {
			hits++
		}
		for c, d := range m.Times {
			totals[c] += d
		}
	}
	if len(test) > 0 {
		eval.TestAccuracy = float64(hits) / float64(len(test))
	}
	for _, c := range mcealg.AllCombos() {
		eval.FixedTimes = append(eval.FixedTimes, FixedTime{Combo: c, Total: totals[c]})
	}
	sort.Slice(eval.FixedTimes, func(i, j int) bool {
		return eval.FixedTimes[i].Total < eval.FixedTimes[j].Total
	})
	return eval
}

// DegreeRow is one dataset's truncated degree distribution (Figure 6).
type DegreeRow struct {
	Name string
	// Counts[d] is the number of nodes with degree d, for d in [0, 20];
	// Counts[21] aggregates everything above (the figure truncates at 20).
	Counts []int
	// LowDegreeShare is the fraction of nodes with degree in [1, 20]; the
	// paper reports ~91% on average.
	LowDegreeShare float64
	// Alpha is the MLE power-law exponent of the degree tail; social
	// networks typically land in (2, 3.5] — the scale-free property §1
	// builds on.
	Alpha float64
	// TailNodes is the number of nodes the exponent was fitted on.
	TailNodes int
}

// Figure6 computes the truncated degree distributions of the surrogates.
func Figure6(graphs map[string]*graph.Graph) []DegreeRow {
	names := sortedNames(graphs)
	rows := make([]DegreeRow, 0, len(graphs))
	for _, name := range names {
		g := graphs[name]
		counts := g.DegreeHistogram(21, true)
		low := 0
		for d := 1; d <= 20; d++ {
			low += counts[d]
		}
		alpha, tail := PowerLawAlpha(g, 0)
		rows = append(rows, DegreeRow{
			Name:           name,
			Counts:         counts,
			LowDegreeShare: float64(low) / float64(g.N()),
			Alpha:          alpha,
			TailNodes:      tail,
		})
	}
	return rows
}

// PowerLawAlpha estimates the exponent of a power-law degree tail with the
// discrete maximum-likelihood estimator of Clauset, Shalizi and Newman:
// α ≈ 1 + n / Σ ln(d_i / (dmin − ½)) over the nodes with degree ≥ dmin.
// dmin ≤ 0 selects twice the mean degree, a robust default for the
// generators used here. The second result is the tail size the fit used;
// α is 0 when the tail is empty.
func PowerLawAlpha(g *graph.Graph, dmin int) (float64, int) {
	if dmin <= 0 {
		if g.N() > 0 {
			dmin = int(2*float64(2*g.M())/float64(g.N())) + 1
		}
		if dmin < 2 {
			dmin = 2
		}
	}
	sum := 0.0
	tail := 0
	for v := int32(0); v < int32(g.N()); v++ {
		d := g.Degree(v)
		if d >= dmin {
			sum += math.Log(float64(d) / (float64(dmin) - 0.5))
			tail++
		}
	}
	if tail == 0 || sum == 0 {
		return 0, tail
	}
	return 1 + float64(tail)/sum, tail
}

// RatioResult is one point of the m/d sweeps behind Figures 7–11.
type RatioResult struct {
	Ratio float64
	// M is the derived block size.
	M int
	// Iterations counts the first-level decomposition rounds (paper: 2 for
	// m/d ∈ {0.5, 0.9}, 3 for {0.1, 0.3}).
	Iterations int
	// Decomp, Analysis and Filter are the phase times (Figures 7 and 8).
	Decomp, Analysis, Filter time.Duration
	// Blocks is the total number of second-level blocks over all levels.
	Blocks int
	// FeasibleCliques and HubCliques split the output as in the white/gray
	// bars of Figures 9 and 10 (hub = found at recursion level ≥ 1).
	FeasibleCliques, HubCliques int
	// AvgSizeFeasible and AvgSizeHub are the mean clique sizes of the two
	// classes (Figures 9(b), 10(b)).
	AvgSizeFeasible, AvgSizeHub float64
	// MaxCliqueSize is the size of the largest maximal clique.
	MaxCliqueSize int
	// Top200HubShare is the fraction of the 200 largest cliques that are
	// hub-only (Figure 11).
	Top200HubShare float64
	// CoreFallback reports that the stalled-recursion guard fired.
	CoreFallback bool
}

// RunRatioSweep runs FindMaxCliques on g for every ratio and summarises the
// statistics that Figures 7–11 plot.
func RunRatioSweep(g *graph.Graph, ratios []float64) ([]RatioResult, error) {
	out := make([]RatioResult, 0, len(ratios))
	for _, r := range ratios {
		res, err := core.FindMaxCliques(g, core.Options{BlockRatio: r})
		if err != nil {
			return nil, fmt.Errorf("experiments: sweep ratio %v: %w", r, err)
		}
		out = append(out, summarise(r, res))
	}
	return out, nil
}

func summarise(ratio float64, res *core.Result) RatioResult {
	rr := RatioResult{
		Ratio:        ratio,
		M:            res.Stats.BlockSize,
		Iterations:   len(res.Stats.Levels),
		Filter:       res.Stats.FilterTime,
		CoreFallback: res.Stats.CoreFallback,
	}
	for _, lvl := range res.Stats.Levels {
		rr.Decomp += lvl.Decomp
		rr.Analysis += lvl.Analysis
		rr.Blocks += lvl.Blocks
	}
	var feasSize, hubSize int
	sizes := make([]sizeLevel, 0, len(res.Cliques))
	for i, c := range res.Cliques {
		hub := res.Level[i] >= 1
		if hub {
			rr.HubCliques++
			hubSize += len(c)
		} else {
			rr.FeasibleCliques++
			feasSize += len(c)
		}
		if len(c) > rr.MaxCliqueSize {
			rr.MaxCliqueSize = len(c)
		}
		sizes = append(sizes, sizeLevel{size: len(c), hub: hub})
	}
	if rr.FeasibleCliques > 0 {
		rr.AvgSizeFeasible = float64(feasSize) / float64(rr.FeasibleCliques)
	}
	if rr.HubCliques > 0 {
		rr.AvgSizeHub = float64(hubSize) / float64(rr.HubCliques)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i].size > sizes[j].size })
	top := sizes
	if len(top) > 200 {
		top = top[:200]
	}
	hubTop := 0
	for _, s := range top {
		if s.hub {
			hubTop++
		}
	}
	if len(top) > 0 {
		rr.Top200HubShare = float64(hubTop) / float64(len(top))
	}
	return rr
}

type sizeLevel struct {
	size int
	hub  bool
}

// OverheadPoint is one m/d point of the communication-overhead experiment:
// the same enumeration run locally and over a latency-laden cluster.
type OverheadPoint struct {
	Ratio  float64
	Blocks int
	// Local is the wall time with the in-process executor; Distributed
	// with the TCP workers (including the simulated per-message latency).
	Local, Distributed time.Duration
}

// CommunicationOverhead reruns the ratio sweep with an Executor (typically
// a cluster.Client with simulated link latency) and compares wall times
// against local execution. As m shrinks, the number of blocks grows, so
// per-block shipping costs dominate — the effect the paper reports for
// m/d ∈ {0.1, 0.3} (§6.3).
func CommunicationOverhead(g *graph.Graph, ratios []float64, exec core.Executor) ([]OverheadPoint, error) {
	out := make([]OverheadPoint, 0, len(ratios))
	for _, r := range ratios {
		t0 := time.Now()
		local, err := core.FindMaxCliques(g, core.Options{BlockRatio: r})
		if err != nil {
			return nil, fmt.Errorf("experiments: overhead local ratio %v: %w", r, err)
		}
		localTime := time.Since(t0)

		t0 = time.Now()
		dist, err := core.FindMaxCliques(g, core.Options{BlockRatio: r, Executor: exec})
		if err != nil {
			return nil, fmt.Errorf("experiments: overhead distributed ratio %v: %w", r, err)
		}
		distTime := time.Since(t0)
		if len(dist.Cliques) != len(local.Cliques) {
			return nil, fmt.Errorf("experiments: distributed run found %d cliques, local %d", len(dist.Cliques), len(local.Cliques))
		}
		blocks := 0
		for _, lvl := range local.Stats.Levels {
			blocks += lvl.Blocks
		}
		out = append(out, OverheadPoint{Ratio: r, Blocks: blocks, Local: localTime, Distributed: distTime})
	}
	return out, nil
}

// HardChainPoint is one size of the Theorem 1 experiment.
type HardChainPoint struct {
	N, M       int
	Iterations int
}

// HardChainRounds measures how many first-level iterations the Theorem 1
// construction forces for each n — the Ω(n) lower bound of Statement 2.
func HardChainRounds(ns []int, m int) ([]HardChainPoint, error) {
	out := make([]HardChainPoint, 0, len(ns))
	for _, n := range ns {
		g := gen.HardChain(n, m, 0)
		res, err := core.FindMaxCliques(g, core.Options{BlockSize: m + 1})
		if err != nil {
			return nil, fmt.Errorf("experiments: hard chain n=%d: %w", n, err)
		}
		out = append(out, HardChainPoint{N: n, M: m, Iterations: len(res.Stats.Levels)})
	}
	return out, nil
}

func sortedNames(graphs map[string]*graph.Graph) []string {
	names := make([]string, 0, len(graphs))
	for name := range graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
