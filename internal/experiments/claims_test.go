package experiments

import (
	"testing"

	"mce/internal/gen"
	"mce/internal/mcealg"
)

// TestPaperClaims encodes the paper's headline claims as assertions, so the
// reproduction's conclusions are themselves regression-tested rather than
// eyeballed from tables. Timing-sensitive claims use generous margins.
func TestPaperClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("claims suite runs the full corpus and surrogate sweeps")
	}

	// §4 / Table 1: "None of the available algorithms outperforms the
	// others in every possible instance of the problem."
	t.Run("NoComboWinsEverywhere", func(t *testing.T) {
		ms, err := MeasureCorpus(gen.Corpus(1))
		if err != nil {
			t.Fatal(err)
		}
		winners := map[mcealg.Combo]int{}
		for _, m := range ms {
			winners[m.Best]++
		}
		if len(winners) < 3 {
			t.Fatalf("only %d distinct winning combos across 50 graphs", len(winners))
		}
		for c, wins := range winners {
			if wins == len(ms) {
				t.Fatalf("%v won every instance — Table 1's premise failed", c)
			}
		}

		// §4 / Figure 4: "the use of the decision tree achieves better
		// performance than any other algorithm taken singularly". Timings
		// here come from one pass per combo on a shared machine, so the
		// assertion uses noise-tolerant margins: the tree must beat the
		// median fixed combo and stay within 2× of the best one (in the
		// quiet full-evaluation runs it actually beats the best; see
		// EXPERIMENTS.md Figure 4).
		eval := Figures3And4(ms)
		best := eval.FixedTimes[0].Total
		median := eval.FixedTimes[len(eval.FixedTimes)/2].Total
		if eval.TreeTime > median {
			t.Fatalf("decision tree (%v) slower than the median fixed combo (%v)", eval.TreeTime, median)
		}
		if float64(eval.TreeTime) > 2*float64(best) {
			t.Fatalf("decision tree (%v) more than 2x behind the best fixed combo (%v)", eval.TreeTime, best)
		}
	})

	// §6.3 / Figures 9–11: hub-only cliques appear as m shrinks, are at
	// least comparable in average size to feasible-side cliques, and take a
	// significant share of the largest cliques.
	t.Run("HubCliquesSignificant", func(t *testing.T) {
		spec, err := gen.Dataset("twitter2")
		if err != nil {
			t.Fatal(err)
		}
		g := spec.Build()
		results, err := RunRatioSweep(g, []float64{0.9, 0.1})
		if err != nil {
			t.Fatal(err)
		}
		wide, tight := results[0], results[1]
		if tight.HubCliques <= wide.HubCliques {
			t.Fatalf("hub cliques did not grow as m shrank: %d → %d", wide.HubCliques, tight.HubCliques)
		}
		if tight.HubCliques == 0 {
			t.Fatal("no hub-only cliques at m/d = 0.1")
		}
		if tight.AvgSizeHub < tight.AvgSizeFeasible {
			t.Fatalf("hub cliques smaller on average (%0.2f) than feasible ones (%0.2f)",
				tight.AvgSizeHub, tight.AvgSizeFeasible)
		}
		if tight.Top200HubShare < 0.2 {
			t.Fatalf("hub share of the 200 largest cliques = %.0f%%, paper band starts at 20%%",
				100*tight.Top200HubShare)
		}
		// Completeness never depends on m: both sweeps found the same total.
		if wide.FeasibleCliques+wide.HubCliques != tight.FeasibleCliques+tight.HubCliques {
			t.Fatalf("clique totals differ across ratios: %d vs %d",
				wide.FeasibleCliques+wide.HubCliques, tight.FeasibleCliques+tight.HubCliques)
		}
	})

	// §1 / abstract: "if hub nodes were neglected, significant cliques
	// would be undetected" — the EmMCE-style baseline must lose cliques at
	// a small m while the two-level engine does not (checked throughout the
	// completeness property tests).
	t.Run("NeglectingHubsLosesCliques", func(t *testing.T) {
		spec, err := gen.Dataset("twitter1")
		if err != nil {
			t.Fatal(err)
		}
		g := spec.Build()
		results, err := HubNeglectBaseline(g, []float64{0.1})
		if err != nil {
			t.Fatal(err)
		}
		r := results[0]
		if r.Missed == 0 {
			t.Fatal("baseline missed nothing at m/d = 0.1; the failure mode did not manifest")
		}
		if r.Missed+r.Spurious < 20 {
			t.Fatalf("baseline only %d missed + %d spurious — too mild to support the claim",
				r.Missed, r.Spurious)
		}
	})

	// §6.2 / Theorem 1: real-world-shaped networks need only a few
	// first-level iterations (2–3 in the paper), while the adversarial
	// chain needs Ω(n).
	t.Run("IterationCounts", func(t *testing.T) {
		spec, err := gen.Dataset("google+")
		if err != nil {
			t.Fatal(err)
		}
		results, err := RunRatioSweep(spec.Build(), []float64{0.9, 0.1})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if r.Iterations > 4 {
				t.Fatalf("m/d=%.1f needed %d iterations; paper reports 2–3", r.Ratio, r.Iterations)
			}
		}
		points, err := HardChainRounds([]int{60}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if points[0].Iterations < 50 {
			t.Fatalf("hard chain n=60 needed only %d iterations; want Ω(n)", points[0].Iterations)
		}
	})
}
