// Package maxclique finds one maximum clique of a graph with a
// branch-and-bound search in the style of Tomita–Kameda's MCQ/MCR ([33] in
// the paper) and Östergård [27]: candidates are greedily coloured and
// processed in descending colour order, pruning any branch whose colour
// bound cannot beat the incumbent.
//
// The maximum clique problem is related to but distinct from enumeration
// (paper §7); the engine uses this solver as an independent cross-check of
// the "maximum clique size" figures reported alongside Figures 9–10, and
// downstream users get a much faster answer than scanning all maximal
// cliques when only the largest matters.
package maxclique

import (
	"sort"

	"mce/internal/bitset"
	"mce/internal/graph"
	"mce/internal/kcore"
)

// Find returns one maximum clique of g (ascending node IDs). The empty
// graph yields nil.
func Find(g *graph.Graph) []int32 {
	n := g.N()
	if n == 0 {
		return nil
	}
	s := &solver{g: g, n: n}
	s.rows = make([]*bitset.Set, n)
	for v := int32(0); v < int32(n); v++ {
		row := bitset.New(n)
		for _, u := range g.Neighbors(v) {
			row.Add(u)
		}
		s.rows[v] = row
	}

	// Initial incumbent: a greedy clique along the degeneracy order, which
	// also gives the search a good vertex order.
	dec := kcore.Decompose(g)
	s.best = greedyClique(g, dec.Order)

	P := bitset.New(n)
	for v := int32(0); v < int32(n); v++ {
		P.Add(v)
	}
	s.expand(make([]int32, 0, dec.Degeneracy+1), P)

	out := append([]int32(nil), s.best...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Size returns the clique number ω(g).
func Size(g *graph.Graph) int { return len(Find(g)) }

type solver struct {
	g    *graph.Graph
	n    int
	rows []*bitset.Set
	best []int32
}

// expand grows R with candidates from P, pruning by greedy colouring.
func (s *solver) expand(R []int32, P *bitset.Set) {
	if P.Empty() {
		if len(R) > len(s.best) {
			s.best = append(s.best[:0], R...)
		}
		return
	}
	order, colors := s.colorSort(P)
	for i := len(order) - 1; i >= 0; i-- {
		if len(R)+colors[i] <= len(s.best) {
			// Colours ascend with i, so no earlier candidate can help
			// either: prune the whole subtree.
			return
		}
		v := order[i]
		newP := bitset.New(s.n)
		newP.AndInto(P, s.rows[v])
		s.expand(append(R, v), newP)
		P.Remove(v)
	}
}

// colorSort greedily colours the subgraph induced by P and returns its
// members ordered by ascending colour together with the colours (1-based).
// A clique inside P can use at most max colour vertices, which is the bound
// the search prunes on.
func (s *solver) colorSort(P *bitset.Set) (order []int32, colors []int) {
	uncolored := P.Clone()
	avail := bitset.New(s.n)
	color := 0
	for !uncolored.Empty() {
		color++
		avail.CopyFrom(uncolored)
		for v := avail.Next(0); v >= 0; v = avail.Next(v + 1) {
			order = append(order, v)
			colors = append(colors, color)
			uncolored.Remove(v)
			// Remove v and its neighbours from this colour class.
			avail.Remove(v)
			avail.AndNot(s.rows[v])
		}
	}
	return order, colors
}

// greedyClique extends a clique greedily along the given vertex order.
func greedyClique(g *graph.Graph, order []int32) []int32 {
	var clique []int32
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		ok := true
		for _, u := range clique {
			if !g.HasEdge(u, v) {
				ok = false
				break
			}
		}
		if ok {
			clique = append(clique, v)
		}
	}
	return clique
}
