package maxclique

import (
	"testing"
	"testing/quick"

	"mce/internal/gen"
	"mce/internal/graph"
	"mce/internal/mcealg"
)

func isClique(g *graph.Graph, s []int32) bool {
	for i, u := range s {
		for _, v := range s[i+1:] {
			if !g.HasEdge(u, v) {
				return false
			}
		}
	}
	return true
}

func TestEmptyAndTrivial(t *testing.T) {
	if Find(graph.Empty(0)) != nil {
		t.Fatal("empty graph should yield nil")
	}
	if got := Find(graph.Empty(3)); len(got) != 1 {
		t.Fatalf("edgeless graph max clique = %v, want a single node", got)
	}
	if got := Find(graph.Complete(7)); len(got) != 7 {
		t.Fatalf("K7 max clique size = %d", len(got))
	}
}

func TestKnownCliqueNumber(t *testing.T) {
	// Two planted cliques of sizes 6 and 9 on a sparse background.
	base := gen.ErdosRenyi(200, 0.02, 3)
	g := gen.PlantCliques(base, 1, 6, 6, 4)
	g = gen.PlantCliques(g, 1, 9, 9, 5)
	got := Find(g)
	if len(got) < 9 {
		t.Fatalf("max clique size = %d, want ≥ 9", len(got))
	}
	if !isClique(g, got) {
		t.Fatalf("returned set is not a clique: %v", got)
	}
}

func TestMoonMoser(t *testing.T) {
	// Complete 4-partite graph with parts of size 3: ω = 4.
	n := 12
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if u/3 != v/3 {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	if got := Size(b.Build()); got != 4 {
		t.Fatalf("Moon–Moser ω = %d, want 4", got)
	}
}

func TestSocialSurrogate(t *testing.T) {
	g := gen.HolmeKim(800, 6, 0.7, 9)
	got := Find(g)
	if !isClique(g, got) {
		t.Fatalf("not a clique: %v", got)
	}
	// Cross-check against the enumeration engine.
	max := 0
	err := mcealg.Enumerate(g, mcealg.Combo{Alg: mcealg.Eppstein, Struct: mcealg.Lists},
		func(c []int32) {
			if len(c) > max {
				max = len(c)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != max {
		t.Fatalf("branch-and-bound found %d, enumeration says %d", len(got), max)
	}
}

// Property: Find agrees with the maximum over all maximal cliques on random
// graphs, sparse and dense.
func TestQuickMatchesEnumeration(t *testing.T) {
	f := func(seed int64, dense bool) bool {
		p := 0.15
		if dense {
			p = 0.5
		}
		g := gen.ErdosRenyi(int(seed%40)+5, p, seed)
		got := Find(g)
		if !isClique(g, got) {
			return false
		}
		max := 0
		for _, c := range mcealg.ReferenceCollect(g) {
			if len(c) > max {
				max = len(c)
			}
		}
		return len(got) == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFind(b *testing.B) {
	g := gen.HolmeKim(2000, 6, 0.7, 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Find(g)
	}
}
