package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChanDiscipline machine-checks the channel-ownership rules the cluster
// runtime's wire and control planes depend on:
//
//   - never send on a channel after closing it in the same body — the send
//     panics, and since both sites are in one function the bug is certain,
//     not an interleaving;
//   - close on the sender side: a function that receives from a channel and
//     never sends to it must not close it — the real sender will panic on
//     its next send. Done-style channels (element type struct{}) are exempt:
//     closing one *is* the send;
//   - a bare `for { ... }` retry loop that waits on the clock (time.Sleep,
//     <-time.After, a timer select) must consult a cancellation signal that
//     is in scope — a ctx parameter or a done channel. This is the PR 7
//     quarantine-recheck livelock shape: the health gate's recheck variant
//     re-evaluated the penalty window forever because nothing in the loop
//     could ever observe shutdown. The rule fires only when a ctx/done is
//     actually available and unconsulted, so loops in contexts with nothing
//     to consult stay clean.
var ChanDiscipline = &Analyzer{
	Name: "chandiscipline",
	Doc: "channel ownership: no send after close, close on the sender side " +
		"only, and clock-driven retry loops must consult an in-scope " +
		"ctx/done cancellation signal",
	Run: runChanDiscipline,
}

func runChanDiscipline(pass *Pass) error {
	tinfo := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSendAfterClose(pass, tinfo, fd.Body)
			checkCloseByReceiver(pass, tinfo, fd)
			checkLivelockLoops(pass, tinfo, fd)
		}
	}
	return nil
}

// checkSendAfterClose walks each statement list tracking the channels a
// direct close(ch) statement has closed earlier in the same list (or an
// enclosing one): any later send to the same channel variable is a
// guaranteed panic. The per-list scoping keeps `if done { close(ch);
// return }` from poisoning the sibling statements that run only on the
// other branch, and nested function literals are skipped — they execute on
// their own schedule.
func checkSendAfterClose(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	var walkList func(stmts []ast.Stmt, closed map[*types.Var]token.Pos)
	walkStmt := func(s ast.Stmt, closed map[*types.Var]token.Pos) {
		// Record closes appearing as direct statements.
		if es, ok := s.(*ast.ExprStmt); ok {
			if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						if v := usedVar(info, call.Args[0]); v != nil {
							closed[v] = call.Pos()
						}
					}
				}
			}
		}
		// Flag sends to already-closed channels, recursing into nested
		// blocks with a copy of the closed set (branch bodies must not
		// poison their siblings, so walkList below copies too).
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.BlockStmt:
				if bs, ok := s.(*ast.BlockStmt); ok && n == bs {
					return true
				}
				inner := make(map[*types.Var]token.Pos, len(closed))
				for k, v := range closed {
					inner[k] = v
				}
				walkList(n.List, inner)
				return false
			case *ast.SendStmt:
				if v := usedVar(info, n.Chan); v != nil {
					if cpos, ok := closed[v]; ok && n.Pos() > cpos {
						pass.Reportf(n.Pos(),
							"send on %s after close(%s) at line %d: this send always panics",
							v.Name(), v.Name(), pass.Pkg.Fset.Position(cpos).Line)
					}
				}
			}
			return true
		})
	}
	walkList = func(stmts []ast.Stmt, closed map[*types.Var]token.Pos) {
		for _, s := range stmts {
			walkStmt(s, closed)
		}
	}
	walkList(body.List, make(map[*types.Var]token.Pos))
}

// checkCloseByReceiver flags close(ch) inside a function that receives from
// ch but never sends to it: in the sender/receiver split that shape means
// the receiver is closing a channel the sender still writes to, and the
// sender's next send panics. struct{}-element channels are exempt — a done
// channel is closed by its controller, which by design never sends.
func checkCloseByReceiver(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	sends := make(map[*types.Var]bool)
	receives := make(map[*types.Var]bool)
	type closeSite struct {
		v   *types.Var
		pos token.Pos
	}
	var closes []closeSite
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if v := usedVar(info, n.Chan); v != nil {
				sends[v] = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if v := usedVar(info, n.X); v != nil {
					receives[v] = true
				}
			}
		case *ast.RangeStmt:
			if v := usedVar(info, n.X); v != nil && isChanType(v.Type()) {
				receives[v] = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					if v := usedVar(info, n.Args[0]); v != nil && !isDoneChan(v.Type()) {
						closes = append(closes, closeSite{v, n.Pos()})
					}
				}
			}
		}
		return true
	})
	for _, c := range closes {
		if receives[c.v] && !sends[c.v] {
			pass.Reportf(c.pos,
				"close(%s) on the receiver side: this function receives from %s and never sends, so the real sender panics on its next send (close belongs to the sender)",
				c.v.Name(), c.v.Name())
		}
	}
}

// checkLivelockLoops finds bare `for { ... }` loops that wait on the clock
// without consulting an in-scope cancellation signal. The gating condition
// — a signal must actually be in scope — is what separates "this loop can
// never observe shutdown" (the PR 7 quarantine-recheck livelock) from
// "there is nothing to observe".
func checkLivelockLoops(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	signals := cancellationSignals(info, fd)
	if len(signals) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // its own schedule; captured signals differ
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil || loop.Body == nil {
			return true
		}
		if !loopWaitsOnClock(info, loop.Body) {
			return true
		}
		if loopConsultsSignal(info, loop.Body, signals) {
			return true
		}
		pass.Reportf(loop.Pos(),
			"unconditioned retry loop waits on the clock but never consults %s: on shutdown it spins forever re-evaluating the same state (add a ctx.Done/done-channel case)",
			signalNames(signals))
		return true
	})
}

// cancellationSignals collects the cancellation handles visible to the
// function body: context.Context and struct{}-channel parameters and
// receivers, plus any such variable the body references (captured or
// package-level).
func cancellationSignals(info *types.Info, fd *ast.FuncDecl) map[*types.Var]bool {
	signals := make(map[*types.Var]bool)
	add := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					if isContextType(v.Type()) || isDoneChan(v.Type()) {
						signals[v] = true
					}
				}
			}
		}
	}
	add(fd.Recv)
	if fd.Type.Params != nil {
		add(fd.Type.Params)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok {
			if isContextType(v.Type()) || isDoneChan(v.Type()) {
				signals[v] = true
			}
		}
		return true
	})
	return signals
}

// loopWaitsOnClock reports whether the loop body blocks on time:
// time.Sleep, a receive from time.After/Tick, or a select whose comm cases
// include a timer-channel receive.
func loopWaitsOnClock(info *types.Info, body *ast.BlockStmt) bool {
	waits := false
	ast.Inspect(body, func(n ast.Node) bool {
		if waits {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isPkgFunc(info, n, "time", "Sleep") {
				waits = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isTimerChan(info, n.X) {
				waits = true
			}
		}
		return true
	})
	return waits
}

// isTimerChan reports whether e evaluates to a time.Time channel — the
// shape of time.After(...), Ticker.C and Timer.C.
func isTimerChan(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	ch, ok := types.Unalias(tv.Type).Underlying().(*types.Chan)
	if !ok {
		return false
	}
	return isNamed(ch.Elem(), "time", "Time")
}

// loopConsultsSignal reports whether the loop body observes any of the
// in-scope cancellation signals: a ctx.Done()/ctx.Err() call, a receive
// (direct or in a select case) from a done channel, or passing the signal
// to another function (which is then responsible for honouring it).
func loopConsultsSignal(info *types.Info, body *ast.BlockStmt, signals map[*types.Var]bool) bool {
	consults := false
	ast.Inspect(body, func(n ast.Node) bool {
		if consults {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok && signals[v] {
			consults = true
		}
		return true
	})
	return consults
}

// signalNames renders the available signals for the diagnostic,
// deterministically.
func signalNames(signals map[*types.Var]bool) string {
	names := make([]string, 0, len(signals))
	for v := range signals {
		names = append(names, v.Name())
	}
	if len(names) == 0 {
		return "a cancellation signal"
	}
	// Smallest name keeps the message stable across map iteration order.
	min := names[0]
	for _, n := range names[1:] {
		if n < min {
			min = n
		}
	}
	if len(names) == 1 {
		return "in-scope " + min
	}
	return "any in-scope cancellation signal (e.g. " + min + ")"
}
