package fixture

import (
	"context"
	"time"
)

// Producer sends everything, then closes: the canonical sender-side close.
func Producer(vals []int) <-chan int {
	out := make(chan int, len(vals))
	for _, v := range vals {
		out <- v
	}
	close(out)
	return out
}

// CloseOnAbort closes only on the early-return branch; the send on the
// sibling path never follows the close at runtime.
func CloseOnAbort(ch chan int, abort bool) {
	if abort {
		close(ch)
		return
	}
	ch <- 1
}

// Controller closes a done channel it never sends on: done-style channels
// (element struct{}) are the close-is-the-send idiom, exempt by design.
func Controller(done chan struct{}) {
	<-done // wait for the previous generation to finish
	close(done)
}

// PollCtx waits on the clock but consults ctx every lap: the gate loop
// shape done right (this is what internal/cluster's dispatch runner does
// with its done channel).
func PollCtx(ctx context.Context, ready func() bool) bool {
	for {
		if ready() {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(time.Millisecond):
		}
	}
}

// PollNoSignal has nothing to consult — no ctx, no done channel in scope —
// so the livelock rule stays quiet: there is nothing to observe.
func PollNoSignal(ready func() bool) {
	for {
		if ready() {
			return
		}
		time.Sleep(time.Millisecond)
	}
}
