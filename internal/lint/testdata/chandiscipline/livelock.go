package fixture

import (
	"context"
	"time"
)

// quarantineGate models internal/cluster's health gate: it returns how long
// the caller must wait before dispatching to a quarantined worker, and
// whether the window should be re-evaluated after sleeping.
func quarantineGate() (time.Duration, bool) {
	return time.Millisecond, true
}

// RecheckLoop is the PR 7 quarantine-recheck livelock, preserved as a
// regression fixture: the penalty window is re-evaluated after every sleep,
// and because the gate keeps extending the window the loop never falls
// through — and nothing in it can observe ctx being cancelled, so shutdown
// hangs the dispatcher forever. The shipped fix made the penalty path
// return recheck=false; this analyzer makes the broken variant impossible
// to reintroduce.
func RecheckLoop(ctx context.Context, dispatch func()) {
	for { // want `unconditioned retry loop waits on the clock but never consults in-scope ctx`
		wait, recheck := quarantineGate()
		if wait <= 0 {
			break
		}
		time.Sleep(wait)
		if !recheck {
			break
		}
	}
	dispatch()
}

// RecheckLoopFixed is the same gate loop with the cancellation observed:
// the sleep is a select against ctx.Done, so shutdown interrupts the wait.
func RecheckLoopFixed(ctx context.Context, dispatch func()) {
	for {
		wait, recheck := quarantineGate()
		if wait <= 0 {
			break
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
		if !recheck {
			break
		}
	}
	dispatch()
}
