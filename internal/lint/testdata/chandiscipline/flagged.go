package fixture

// FlushAndNotify closes the results channel and then sends on it: the send
// is a guaranteed panic, in one straight-line body.
func FlushAndNotify(results chan int, vals []int) {
	for _, v := range vals {
		results <- v
	}
	close(results)
	results <- 0 // want `send on results after close`
}

// CloseInBranchThenSend closes inside a nested block whose statements keep
// running: the later send in the same block still panics.
func CloseInBranchThenSend(ch chan string, shutdown bool) {
	if shutdown {
		close(ch)
		ch <- "bye" // want `send on ch after close`
	}
}

// Consume is a receiver closing the channel it drains: the producer's next
// send panics. Close belongs on the sender side.
func Consume(feed chan int) int {
	total := 0
	for i := 0; i < 3; i++ {
		total += <-feed
	}
	close(feed) // want `close\(feed\) on the receiver side`
	return total
}
