package fixture

import (
	"context"
	"time"
)

// WarmCache polls a startup condition on the clock while a ctx is in scope
// but deliberately unconsulted: the loop is bounded by the attempts counter
// cap, so it always terminates — the justification carries that argument.
func WarmCache(ctx context.Context, ready func() bool) {
	attempts := 0
	//lint:ignore chandiscipline the attempts cap bounds this loop to ten laps, so it terminates without observing ctx
	for {
		if ready() || attempts > 10 {
			return
		}
		attempts++
		time.Sleep(time.Millisecond)
	}
}
