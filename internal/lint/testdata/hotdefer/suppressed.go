package hotdeferfix

import "sync"

// deliberate pins the lint:ignore path for hotdefer.
//
//mce:hotpath suppressed root
func deliberate(mus []*sync.Mutex) {
	for _, mu := range mus {
		mu.Lock()
		//lint:ignore hotdefer fixture: panic-safety outweighs the record cost here
		defer mu.Unlock()
	}
}
