package hotdeferfix

import "sync"

// Fixture for hotdefer: defer records that heap-allocate per iteration or
// per recursion node.

// lockLoop defers inside a hot loop: the records pile up until the
// function returns.
//
//mce:hotpath defer-loop root
func lockLoop(mu *sync.Mutex, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		mu.Lock()
		defer mu.Unlock() // want `defer inside a hot loop`
		total += i
	}
	return total
}

// recurse is hot and participates in a call-graph cycle: a defer here runs
// once per recursion node, which is a loop the parser cannot see.
//
//mce:hotpath recursion root
func recurse(mu *sync.Mutex, depth int) int {
	if depth == 0 {
		return 0
	}
	mu.Lock()
	defer mu.Unlock() // want `defer in recursive hot function`
	return 1 + recurse(mu, depth-1)
}

// rangeDefer pins the range-loop form.
//
//mce:hotpath range root
func rangeDefer(files []*sync.Mutex) {
	for _, mu := range files {
		mu.Lock()
		defer mu.Unlock() // want `defer inside a hot loop`
	}
}
