package hotdeferfix

import "sync"

// cleanDefer: a top-of-function defer in a non-recursive hot function is
// open-coded and free.
//
//mce:hotpath clean root
func cleanDefer(mu *sync.Mutex, xs []int) int {
	mu.Lock()
	defer mu.Unlock()
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// spawn: a defer at the top of a goroutine body launched from a loop runs
// once per goroutine on a fresh stack — the executor's worker-spawn shape.
//
//mce:hotpath goroutine root
func spawn(wg *sync.WaitGroup, n int) {
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// coldLoop is not hot: the same shape draws no finding off the hot path.
func coldLoop(mu *sync.Mutex, n int) {
	for i := 0; i < n; i++ {
		mu.Lock()
		defer mu.Unlock()
	}
}
