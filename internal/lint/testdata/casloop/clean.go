package fixture

import "sync/atomic"

// gauge re-loads the expected value every lap: the canonical CAS retry
// loop.
type gauge struct {
	n int64
}

func (g *gauge) Add(delta int64) int64 {
	for {
		old := atomic.LoadInt64(&g.n)
		if atomic.CompareAndSwapInt64(&g.n, old, old+delta) {
			return old + delta
		}
	}
}

// onceFlag CASes from a constant: the expected value cannot go stale, so
// looping on the same 0 is the correct latch idiom (resguard's breaker
// does exactly this).
type onceFlag struct {
	armed int32
}

func (f *onceFlag) TryArm() bool {
	return atomic.CompareAndSwapInt32(&f.armed, 0, 1)
}

// typedCounter uses the method form with a per-iteration re-load.
type typedCounter struct {
	v atomic.Int64
}

func (c *typedCounter) Bump() {
	for {
		old := c.v.Load()
		if c.v.CompareAndSwap(old, old+1) {
			return
		}
	}
}
