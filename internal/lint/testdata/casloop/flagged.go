package fixture

import "sync/atomic"

// latch drops the CAS result on the floor: on contention the swap fails
// silently and the caller proceeds as if it had won.
type latch struct {
	state int64
}

func (l *latch) Arm() {
	atomic.CompareAndSwapInt64(&l.state, 0, 1) // want `result of atomic\.CompareAndSwapInt64 is discarded`
}

func (l *latch) ArmBlank() {
	_ = atomic.CompareAndSwapInt64(&l.state, 0, 1) // want `result of atomic\.CompareAndSwapInt64 is discarded`
}

// stale loads the expected value once, outside the loop: the first lost
// race makes every retry present the same stale snapshot, and the loop
// spins forever.
type counter struct {
	n int64
}

func (c *counter) AddStale(delta int64) {
	old := atomic.LoadInt64(&c.n)
	for {
		if atomic.CompareAndSwapInt64(&c.n, old, old+delta) { // want `CAS retry loop never re-loads expected value old`
			return
		}
	}
}

// mixed is the absorbed atomicfield rule: highWater is CAS-updated above,
// so the plain read races every concurrent update.
type mixed struct {
	highWater int64
}

func (m *mixed) Raise(v int64) {
	for {
		cur := atomic.LoadInt64(&m.highWater)
		if v <= cur || atomic.CompareAndSwapInt64(&m.highWater, cur, v) {
			return
		}
	}
}

func (m *mixed) Peek() int64 {
	return m.highWater // want `plain read of field mixed\.highWater`
}
