package fixture

import "sync/atomic"

// seqCounter is written atomically while workers run; the one plain read
// below happens after the writers have joined.
type seqCounter struct {
	epoch int64
}

func (s *seqCounter) bump() {
	atomic.AddInt64(&s.epoch, 1)
}

func (s *seqCounter) finalEpoch() int64 {
	//lint:ignore casloop read runs after every worker goroutine has joined, so no concurrent atomic update remains
	return s.epoch
}

// bestEffortLatch arms a one-shot flag where losing the race is fine: the
// winner did the same work, so the result genuinely does not matter.
type bestEffortLatch struct {
	armed int32
}

func (l *bestEffortLatch) arm() {
	//lint:ignore casloop losing the arm race is fine: the winner set the same value, so the outcome is identical
	atomic.CompareAndSwapInt32(&l.armed, 0, 1)
}
