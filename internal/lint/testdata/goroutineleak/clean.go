package fixture

import "context"

// ProduceCtx stops when the context is cancelled.
func ProduceCtx(ctx context.Context, items []int) <-chan int {
	out := make(chan int)
	go func() {
		defer close(out)
		for _, it := range items {
			select {
			case out <- it:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// ProduceDone stops when the done channel closes.
func ProduceDone(done chan struct{}, items []int) <-chan int {
	out := make(chan int)
	go func() {
		defer close(out)
		for _, it := range items {
			select {
			case out <- it:
			case <-done:
				return
			}
		}
	}()
	return out
}

// Consume terminates when the producer closes the channel.
func Consume(in chan int, sink func(int)) {
	go func() {
		for v := range in {
			sink(v)
		}
	}()
}

// TryPush is non-blocking: the select has a default.
func TryPush(out chan int, v int) {
	go func() {
		select {
		case out <- v:
		default:
		}
	}()
}

// WaitThen blocks only on a done-style struct{} channel — the termination
// idiom itself.
func WaitThen(done chan struct{}, f func()) {
	go func() {
		<-done
		f()
	}()
}

// LocalOnly owns its channel: the goroutine's channel is declared inside.
func LocalOnly(n int) {
	go func() {
		ch := make(chan int, n)
		for i := 0; i < n; i++ {
			ch <- i
		}
		close(ch)
	}()
}
