package fixture

// Produce pumps results into a captured channel with no way to stop: if the
// consumer returns early, the goroutine blocks on the send forever.
func Produce(items []int) <-chan int {
	out := make(chan int)
	go func() { // want `goroutine blocks on captured channel out with no cancellation path`
		for _, it := range items {
			out <- it
		}
		close(out)
	}()
	return out
}

// Relay receives from one captured channel and sends on another, with no
// cancellation on either side.
func Relay(in chan int, out chan int) {
	go func() { // want `goroutine blocks on captured channel in, out with no cancellation path`
		for {
			v := <-in
			out <- v
		}
	}()
}
