package fixture

import "sync"

type Counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// Add uses the canonical pairing.
func (c *Counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
}

// Get releases the manual lock on every path, early return included.
func (c *Counter) Get(fast bool) int {
	c.mu.Lock()
	if fast {
		n := c.n
		c.mu.Unlock()
		return n
	}
	n := c.n * 2
	c.mu.Unlock()
	return n
}

// Peek balances a read lock through both select-free branches.
func (c *Counter) Peek(which bool) int {
	c.rw.RLock()
	var n int
	if which {
		n = c.n
	} else {
		n = -c.n
	}
	c.rw.RUnlock()
	return n
}

// Drain locks and unlocks inside each loop iteration.
func (c *Counter) Drain(rounds int) {
	for i := 0; i < rounds; i++ {
		c.mu.Lock()
		c.n--
		c.mu.Unlock()
	}
}

// Reset registers the deferred unlock later than the Lock, which still
// covers every subsequent exit.
func (c *Counter) Reset() int {
	c.mu.Lock()
	old := c.n
	defer c.mu.Unlock()
	c.n = 0
	return old
}
