package fixture

import "sync"

type Registry struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	items map[string]int
}

// Lookup leaks the lock on the early return.
func (r *Registry) Lookup(key string) (int, bool) {
	r.mu.Lock() // want `r\.mu\.Lock\(\) is not immediately deferred and is not released before this return`
	v, ok := r.items[key]
	if !ok {
		return 0, false
	}
	r.mu.Unlock()
	return v, true
}

// Bump never unlocks at all: the fall-through exit still holds the lock.
func (r *Registry) Bump(key string) {
	r.mu.Lock() // want `r\.mu\.Lock\(\) is not immediately deferred and is not released before function exit`
	r.items[key]++
}

// Snapshot leaks the read lock on one branch of the switch.
func (r *Registry) Snapshot(mode int) int {
	r.rw.RLock() // want `r\.rw\.RLock\(\) is not immediately deferred and is not released before this return`
	switch mode {
	case 0:
		r.rw.RUnlock()
		return 0
	default:
		return len(r.items)
	}
}
