package fixture

// Produce pumps results into a captured channel with no way to stop: if
// the consumer returns early, the goroutine blocks on the send forever.
func Produce(items []int) <-chan int {
	out := make(chan int)
	go func() { // want `goroutine blocks on captured channel out`
		for _, it := range items {
			out <- it
		}
		close(out)
	}()
	return out
}

// pump blocks on its channel argument with no lifecycle path of its own —
// it is the helper the interprocedural check must see through.
func pump(ch chan int) {
	for {
		ch <- 1
	}
}

// SpawnPump hands the blocking body to a named function: the old syntactic
// check saw a clean literal here; the call-graph summary says otherwise.
func SpawnPump() {
	ch := make(chan int)
	go pump(ch) // want `goroutine runs fixture\.pump, which blocks on channels with no reachable cancellation path`
	<-ch
}

// SpawnWrapped wraps the same helper in a literal: the block is one call
// deep inside the literal body.
func SpawnWrapped() {
	ch := make(chan int)
	go func() { // want `goroutine blocks on channels inside fixture\.pump`
		pump(ch)
	}()
	<-ch
}
