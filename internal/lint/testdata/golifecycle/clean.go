package fixture

import (
	"context"
	"sync"
)

// ServeCtx selects on ctx.Done alongside the pump: cancellable, clean.
func ServeCtx(ctx context.Context, out chan int) {
	go func() {
		for i := 0; ; i++ {
			select {
			case out <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
}

// drainUntil blocks on work but carries its own lifecycle path: the done
// channel receive. Spawning it (directly or wrapped) is clean because the
// summary says cancels=true.
func drainUntil(work chan int, done chan struct{}) {
	for {
		select {
		case <-work:
		case <-done:
			return
		}
	}
}

// SpawnDrain launches the cancellable helper by name.
func SpawnDrain(work chan int, done chan struct{}) {
	go drainUntil(work, done)
}

// SpawnDrainWrapped launches it through a literal.
func SpawnDrainWrapped(work chan int, done chan struct{}) {
	go func() {
		drainUntil(work, done)
	}()
}

// Joined goroutines balance a WaitGroup: their lifetime is bounded by the
// Wait below, so the channel pump is accounted for.
func Joined(items []int) []int {
	out := make(chan int, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, it := range items {
			out <- it
		}
	}()
	var res []int
	for range items {
		res = append(res, <-out)
	}
	wg.Wait()
	return res
}

// Compute never touches a channel: pure computation needs no lifecycle.
func Compute(n *int) {
	go func() {
		*n = 42
	}()
}
