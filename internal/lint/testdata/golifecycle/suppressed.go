package fixture

// watch blocks forever on its channel by design.
func watch(sig chan int) {
	for {
		<-sig
	}
}

// SpawnWatcher pins a process-lifetime goroutine: the justification is the
// point — it dies with the process, so no cancellation path is needed.
func SpawnWatcher(sig chan int) {
	//lint:ignore golifecycle the watcher lives for the whole process by design; it exits when the process does
	go watch(sig)
}
