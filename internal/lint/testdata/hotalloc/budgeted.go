package hotallocfix

// budgetedRoot allocates on the hot path, but the site is listed in this
// fixture tree's .mcevet/allocbudget.json (nearest-ancestor resolution
// finds it before the module root's real budget), so hotalloc stays quiet.
//
//mce:hotpath budgeted root
//go:noinline
func budgetedRoot(n int) []int32 {
	out := make([]int32, 0, n) // in budget: intentional per-call snapshot
	for i := 0; i < n; i++ {
		out = append(out, int32(i))
	}
	return out
}
