package hotallocfix

// Fixture for hotalloc: compiler-proven heap allocations inside the hot
// set that no budget entry covers. Helpers carry //go:noinline so each
// escape is reported once, at its own declaration, keeping the expected
// diagnostics position-stable.

// enumerate is the annotated root of this file's hot set; it allocates
// nothing itself.
//
//mce:hotpath fixture enumeration root
func enumerate(n int) int {
	buf := grow(n)
	scratch := setup(n)
	return len(buf) + len(scratch) + helperDepth(n)
}

// grow is hot via enumerate and allocates per call.
//
//go:noinline
func grow(n int) []int {
	buf := make([]int, n) // want `hot-path allocation not in budget: make\(\[\]int, n\) escapes to heap`
	for i := range buf {
		buf[i] = i
	}
	return buf
}

// setup is reachable from the root but runs per block, not per node: the
// coldpath annotation prunes it (and anything only it reaches) from the
// hot set, so its allocation is not flagged.
//
//mce:coldpath per-run setup, not per-node work
//go:noinline
func setup(n int) []byte {
	return make([]byte, n)
}

// helperDepth proves the closure is transitive: leaf is two hops from the
// root.
//
//go:noinline
func helperDepth(n int) int {
	p := leaf(n)
	return *p
}

//go:noinline
func leaf(n int) *int {
	v := n * 2 // want `hot-path allocation not in budget: moved to heap: v`
	return &v
}
