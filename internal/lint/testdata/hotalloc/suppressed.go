package hotallocfix

// suppressedRoot pins the lint:ignore path: an allocation can be waived
// in-line instead of budgeted when the justification belongs next to the
// code.
//
//mce:hotpath suppressed root
//go:noinline
func suppressedRoot(n int) *int {
	//lint:ignore hotalloc fixture: result must outlive the call by design
	v := n + 1
	return &v
}
