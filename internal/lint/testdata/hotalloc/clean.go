package hotallocfix

import "math/bits"

// andCount is hot but allocation-free: the kernel shape the gate protects.
//
//mce:hotpath clean root: word-parallel kernel
func andCount(a, b []uint64) int {
	c := 0
	for i := range a {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

// notHot allocates freely — it is unreachable from every root, so the gate
// does not apply.
func notHot(n int) []int {
	return make([]int, n)
}
