package fixture

import "sync"

// store and index always nest in the same order (store.mu outside
// index.mu), from every entry point and through helpers — no cycle.
type index struct {
	mu sync.RWMutex
}

type store struct {
	mu  sync.Mutex
	idx *index
}

func (s *store) put() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idx.mu.Lock()
	defer s.idx.mu.Unlock()
}

func (s *store) get() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idx.mu.RLock()
	defer s.idx.mu.RUnlock()
}

// rebuild goes through a helper; the indirect acquisition keeps the same
// global order.
func (s *store) rebuild() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idx.reindex()
}

func (i *index) reindex() {
	i.mu.Lock()
	defer i.mu.Unlock()
}

// soloLock never holds another lock: no edges at all.
func (i *index) soloLock() {
	i.mu.Lock()
	defer i.mu.Unlock()
}
