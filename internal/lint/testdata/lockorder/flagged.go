package fixture

import "sync"

// registry and client model the real shape: two mutexes owned by different
// structs, locked in opposite orders by different entry points.
type registry struct {
	mu sync.Mutex
}

type client struct {
	mu  sync.Mutex
	reg *registry
}

// dispatch locks client.mu then registry.mu — one order.
func (c *client) dispatch() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg.mu.Lock() // want `lock-order cycle`
	defer c.reg.mu.Unlock()
}

// report locks registry.mu then client.mu — the inverted order. Two
// goroutines running dispatch and report concurrently deadlock. The
// diagnostic lands on the lexicographically-smallest edge of the cycle.
func (r *registry) report(c *client) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c.mu.Lock() // the other half of the cycle; reported once, above
	defer c.mu.Unlock()
}

// indirect builds the same edge through a helper: the acquisition is one
// call deep, so only the interprocedural fact layer sees it.
type gauge struct {
	mu sync.Mutex
}

type meter struct {
	mu sync.Mutex
	g  *gauge
}

func (g *gauge) touch() {
	g.mu.Lock()
	defer g.mu.Unlock()
}

func (m *meter) sample() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.g.touch() // the indirect half of the cycle; reported once, below
}

func (g *gauge) flush(m *meter) {
	g.mu.Lock()
	defer g.mu.Unlock()
	m.mu.Lock() // want `lock-order cycle`
	defer m.mu.Unlock()
}
