package fixture

import "sync"

// journal and segment invert their lock order, but the inversion is
// acknowledged: the two entry points are documented as never concurrent
// (one runs only during startup replay). The directive must suppress the
// cycle wherever the representative diagnostic lands.
type journal struct {
	mu sync.Mutex
}

type segment struct {
	mu sync.Mutex
	j  *journal
}

func (s *segment) append() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockorder replay holds the inverse order but runs strictly before serving starts, so the orders never interleave
	s.j.mu.Lock()
	defer s.j.mu.Unlock()
}

func (j *journal) replay(s *segment) {
	j.mu.Lock()
	defer j.mu.Unlock()
	//lint:ignore lockorder replay holds the inverse order but runs strictly before serving starts, so the orders never interleave
	s.mu.Lock()
	defer s.mu.Unlock()
}
