package fixture

import (
	"sort"

	"mce/internal/graph"
)

// DegreeSum only reads the adjacency.
func DegreeSum(g *graph.Graph, v int32) int {
	total := 0
	for _, w := range g.Neighbors(v) {
		total += int(w)
	}
	return total
}

// SortedCopy copies first; mutating the copy is fine, including after the
// variable initially aliased the storage.
func SortedCopy(g *graph.Graph, v int32) []int32 {
	adj := g.Neighbors(v)
	adj = append([]int32(nil), adj...)
	sort.Slice(adj, func(i, j int) bool { return adj[i] > adj[j] })
	adj[0] = 0
	return adj
}

// OtherSlices are untouched by the analyzer.
func OtherSlices(xs []int32) {
	xs[0] = 1
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
