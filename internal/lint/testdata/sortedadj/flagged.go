package fixture

import (
	"sort"

	"mce/internal/graph"
)

// Relabel writes straight into the graph's adjacency storage.
func Relabel(g *graph.Graph, v int32) {
	adj := g.Neighbors(v)
	adj[0] = 7 // want `write into adjacency slice`
}

// Reorder re-sorts the shared storage, breaking the binary-search order for
// every other reader.
func Reorder(g *graph.Graph, v int32) {
	adj := g.Neighbors(v)
	sort.Slice(adj, func(i, j int) bool { return adj[i] > adj[j] }) // want `sort.Slice of adjacency slice`
}

// Extend appends through the alias; with spare capacity this writes into
// the next node's neighbour list.
func Extend(g *graph.Graph, v, w int32) []int32 {
	return append(g.Neighbors(v), w) // want `append of adjacency slice`
}

// Overwrite copies into the alias.
func Overwrite(g *graph.Graph, v int32, src []int32) {
	copy(g.Neighbors(v), src) // want `copy into of adjacency slice`
}

// Direct mutates without even naming a variable.
func Direct(g *graph.Graph, v int32) {
	g.Neighbors(v)[0]++ // want `write into adjacency slice`
}
