package fixture

import "time"

// Quiet carries a directive with no justification: the directive itself is
// reported and the finding it tried to hide is kept.
//
//lint:ignore ctxplumb
func Quiet() {
	time.Sleep(time.Millisecond)
}
