package fixture

import "time"

// Blocked violates ctxplumb, but the justified directive suppresses it.
//
//lint:ignore ctxplumb fixture: demonstrates suppression of a real finding
func Blocked() {
	time.Sleep(time.Millisecond)
}

// Loud is the control: same violation, no directive.
func Loud() { // want `no LoudContext variant`
	time.Sleep(time.Millisecond)
}
