package fixture

import "fmt"

// used has a genuine maporder finding under its directive, so the
// suppression is live and must not be reported as stale.
func used(set map[string]bool) {
	for k := range set {
		//lint:ignore maporder debug-only dump; order is irrelevant to the human reading it
		fmt.Println(k)
	}
}

// stale carries a directive left over from code that no longer ranges over
// a map: nothing is suppressed, so the directive itself is the finding.
func stale(names []string) {
	for _, k := range names {
		//lint:ignore maporder leftover from the map-backed implementation
		fmt.Println(k)
	}
}

// typo names an analyzer that does not exist.
func typo() {
	//lint:ignore maporedr transposed letters in the analyzer name
	fmt.Println("x")
}
