package fixture

import (
	"bytes"
	"encoding/gob"
	"strconv"
)

// goodTask round-trips losslessly: every field exported and encodable,
// nested struct included.
type goodTask struct {
	ID      int
	Edges   [][2]int32
	Classes map[string][]int32
	Meta    header
}

type header struct {
	Version int
	Sum     uint32
}

// sealed owns its encoding, so its unexported fields are gob's problem no
// longer.
type sealed struct {
	n int
}

func (s sealed) GobEncode() ([]byte, error) { return []byte(strconv.Itoa(s.n)), nil }
func (s *sealed) GobDecode(b []byte) error  { n, err := strconv.Atoi(string(b)); s.n = n; return err }

// tagged carries an interface field, but the package registers the concrete
// implementations.
type tagged struct {
	ID   int
	Body any
}

func init() {
	gob.Register(header{})
}

// SendAll exercises every clean shape.
func SendAll() error {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(&goodTask{ID: 1}); err != nil {
		return err
	}
	if err := enc.Encode(sealed{n: 2}); err != nil {
		return err
	}
	return enc.Encode(&tagged{ID: 3, Body: header{Version: 1}})
}
