package fixture

import (
	"bytes"
	"encoding/gob"
)

// badTask mixes every kind of field gob mishandles.
type badTask struct {
	ID       int
	seq      int // silently dropped: unexported
	Callback func() error
	Notify   chan int
	Payload  any
}

type opaque struct {
	a, b int
}

// Send ships a badTask over a gob stream.
func Send() error {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	t := badTask{ID: 1}
	return enc.Encode(&t) // want `unexported field \.seq is silently dropped` `field \.Callback is a function` `field \.Notify is a channel` `field \.Payload is an interface but the package never calls gob.Register`
}

// Receive decodes an opaque value whose every field gob drops.
func Receive(data []byte) (opaque, error) {
	var o opaque
	dec := gob.NewDecoder(bytes.NewReader(data))
	err := dec.Decode(&o) // want `wire type opaque has no exported fields` `unexported field \.a` `unexported field \.b`
	return o, err
}
