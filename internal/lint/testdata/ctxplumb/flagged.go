package fixture

import (
	"context"
	"net"
	"time"
)

// SleepyScan blocks but offers no Context variant at all.
func SleepyScan() { // want `no SleepyScanContext variant`
	time.Sleep(time.Millisecond)
}

// Probe has the sibling but duplicates the blocking logic instead of
// delegating to it.
func Probe(addr string) error { // want `does not delegate to ProbeContext`
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	return c.Close()
}

// ProbeContext is the variant Probe should delegate to.
func ProbeContext(ctx context.Context, addr string) error {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	return c.Close()
}

type Pool struct{ jobs chan int }

// Start spawns workers; the sibling exists but takes no context.
func (p *Pool) Start() { // want `StartContext does not take a context.Context`
	go func() {
		for range p.jobs {
		}
	}()
}

// StartContext is misnamed: no context parameter.
func (p *Pool) StartContext(n int) {
	_ = n
}
