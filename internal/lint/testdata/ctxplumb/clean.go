package fixture

import (
	"context"
	"time"
)

// Wait delegates to WaitContext exactly as the contract demands.
func Wait(d time.Duration) error {
	return WaitContext(context.Background(), d)
}

// WaitContext carries the context, so it is exempt however it blocks.
func WaitContext(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Run already takes a context (not even in first position): exempt.
func Run(name string, ctx context.Context) {
	_ = name
	go func() {
		<-ctx.Done()
	}()
}

// napQuietly is unexported; the contract covers the public API only.
func napQuietly() {
	time.Sleep(time.Millisecond)
}

// Describe never blocks, so it needs no variant.
func Describe() string {
	return "fixture"
}
