package fixture

import (
	"fmt"
	"slices"
	"sort"
)

// SortedKeys is the blessed shape: collect, sort, then use freely.
func SortedKeys(set map[string]int) []string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	fmt.Println(keys)
	return keys
}

// SortPkgKeys sanitizes through the classic sort package entry points.
func SortPkgKeys(set map[string]int) {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println(keys)
}

// sortInt32s is a repo-local wrapper; the summary pass records that it
// sorts its parameter, so calls to it sanitize like slices.Sort itself.
func sortInt32s(xs []int32) {
	slices.Sort(xs)
}

// ViaWrapper sanitizes through the wrapper.
func ViaWrapper(adj map[int32]bool) {
	nbrs := make([]int32, 0, len(adj))
	for v := range adj {
		nbrs = append(nbrs, v)
	}
	sortInt32s(nbrs)
	fmt.Println(nbrs)
}

// PrintMapDirect passes the map itself: fmt prints maps with sorted keys
// since Go 1.12, so this is deterministic and must not be flagged.
func PrintMapDirect(set map[string]int) {
	fmt.Println(set)
}

// FindOne is deterministic select-one filtering: the conditional decides
// which single entry prints, not the iteration order.
func FindOne(set map[string]int, target string) {
	for k, v := range set {
		if k == target {
			fmt.Println(v)
		}
	}
}
