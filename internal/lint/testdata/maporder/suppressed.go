package fixture

import "fmt"

// Debug dumps the working set for interactive debugging; the suppression
// documents why the nondeterministic order is acceptable here.
func Debug(set map[string]bool) {
	for k := range set {
		//lint:ignore maporder debug-only dump read by humans; sorting would cost an allocation per call for no diagnostic value
		fmt.Println(k)
	}
}
