package fixture

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
)

// ShuffleHub rebuilds the PR 3 bug shape: a neighbour slice collected from
// a map range, indexed with a seeded draw — same-seed runs pick different
// elements per process.
func ShuffleHub(adj map[int32]bool, seed int64) int32 {
	nbrs := make([]int32, 0, len(adj))
	for v := range adj {
		nbrs = append(nbrs, v)
	}
	rng := rand.New(rand.NewSource(seed))
	return nbrs[rng.Intn(len(nbrs))] // want `seeded rand draw indexes a map-iteration-ordered slice`
}

// Wire ships a map-ordered slice across the gob wire: the encoded bytes
// differ per process.
func Wire(set map[string]int) ([]byte, error) {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(keys) // want `map-iteration-ordered value crosses the gob wire`
	return buf.Bytes(), err
}

// Dump prints every entry in iteration order: the lines reorder per run.
func Dump(set map[string]int) {
	for k, v := range set {
		fmt.Printf("%s=%d\n", k, v) // want `map-iteration-ordered value written to ordered output`
	}
}

// collect returns the keys in iteration order; callers inherit the taint
// through the function's exported summary, not by re-reading the body.
func collect(set map[string]int) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}

// PrintViaHelper shows the cross-function half: the taint flows through
// collect's summary into the caller.
func PrintViaHelper(set map[string]int) {
	keys := collect(set)
	fmt.Println(keys) // want `map-iteration-ordered value written to ordered output`
}
