package hotslicefix

// preallocated is the fixed shape: capacity matches the bound, the loop
// never re-allocates.
//
//mce:hotpath prealloc root
func preallocated(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// unbounded has no syntactic bound; hotslice stays quiet rather than
// guessing.
//
//mce:hotpath unbounded root
func unbounded(next func() (int, bool)) []int {
	var out []int
	for {
		v, ok := next()
		if !ok {
			break
		}
		out = append(out, v)
	}
	return out
}

// nested: the slice already carries a capacity — even a deliberate
// underestimate — so the growth is a judgement call, not a finding.
//
//mce:hotpath nested root
func nested(rows [][]int) []int {
	out := make([]int, 0, len(rows))
	for _, row := range rows {
		for range row {
			out = append(out, len(row))
		}
	}
	return out
}

// coldCollect is not hot: growth off the hot path is fine.
func coldCollect(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
