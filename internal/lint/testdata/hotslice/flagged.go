package hotslicefix

// Fixture for hotslice: append-growth inside loops whose bound is
// syntactically evident.

// collectRange grows a slice across a range loop; the bound is len(xs).
//
//mce:hotpath range root
func collectRange(xs []int) []int {
	var out []int
	for _, x := range xs {
		if x > 0 {
			out = append(out, x) // want `append-growth in a bounded hot loop.*make\(\[\]int, 0, len\(xs\)\)`
		}
	}
	return out
}

// collectCount grows across a counted loop; the bound is n.
//
//mce:hotpath counted root
func collectCount(n int) []int32 {
	out := []int32{}
	for i := 0; i < n; i++ {
		out = append(out, int32(i)) // want `append-growth in a bounded hot loop.*make\(\[\]int32, 0, n\)`
	}
	return out
}

// collectMake pins the make-without-capacity declaration form.
//
//mce:hotpath make root
func collectMake(keys []string) []string {
	out := make([]string, 0)
	for _, k := range keys {
		out = append(out, k) // want `append-growth in a bounded hot loop.*make\(\[\]string, 0, len\(keys\)\)`
	}
	return out
}
