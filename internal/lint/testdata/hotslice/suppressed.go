package hotslicefix

// sparse pins the lint:ignore path: when matches are known to be rare,
// preallocating the full bound wastes memory and the waiver documents it.
//
//mce:hotpath suppressed root
func sparse(xs []int) []int {
	var out []int
	for _, x := range xs {
		if x%1024 == 0 {
			//lint:ignore hotslice fixture: hit rate ~0.1%, full prealloc would waste memory
			out = append(out, x)
		}
	}
	return out
}
