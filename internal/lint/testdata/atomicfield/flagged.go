package fixture

import "sync/atomic"

// counterSet mixes atomic and plain access to the same field — the race
// the analyzer exists to catch.
type counterSet struct {
	hits int64
	cold int64
}

func (c *counterSet) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counterSet) Report() int64 {
	return c.hits // want `plain read of field counterSet\.hits`
}

func (c *counterSet) Reset() {
	c.hits = 0 // want `plain write to field counterSet\.hits`
}

// cold is only ever accessed plainly; it must not be flagged just for
// sharing a struct with an atomic field.
func (c *counterSet) Cold() int64 {
	c.cold++
	return c.cold
}
