package fixture

import "sync/atomic"

// cleanCounter keeps the discipline: every access to m goes through
// sync/atomic, and n is a typed atomic whose methods are the only API.
type cleanCounter struct {
	n atomic.Int64
	m int64
}

func (c *cleanCounter) IncN() { c.n.Add(1) }

func (c *cleanCounter) IncM() { atomic.AddInt64(&c.m, 1) }

func (c *cleanCounter) LoadM() int64 { return atomic.LoadInt64(&c.m) }

// newCleanCounter initialises before publication: composite literals are
// exempt by design.
func newCleanCounter() *cleanCounter {
	return &cleanCounter{m: 0}
}

// addrOfM hands the address to a helper; the helper's own accesses are
// checked in their own right, so taking the address is not a plain access.
func (c *cleanCounter) addrOfM() *int64 {
	return &c.m
}
