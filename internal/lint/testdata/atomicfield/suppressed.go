package fixture

import "sync/atomic"

// seqCounter is written atomically while workers run; the one plain read
// below happens after the writers have joined.
type seqCounter struct {
	epoch int64
}

func (s *seqCounter) bump() {
	atomic.AddInt64(&s.epoch, 1)
}

func (s *seqCounter) finalEpoch() int64 {
	//lint:ignore atomicfield read runs after every writer goroutine has joined, so no concurrent atomic update remains
	return s.epoch
}
