package hotboxfix

import (
	"fmt"
	"sort"
)

// Fixture for hotbox: fmt/reflect calls, allocating interface boxing, and
// hot-loop closure captures inside the hot set.

// report is this file's annotated root.
//
//mce:hotpath boxing fixture root
func report(vals []int) string {
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] }) // want `hot-path interface boxing.*\[\]int`
	n := len(vals)
	return fmt.Sprintf("%d", n) // want `hot-path call to fmt.Sprintf` `hot-path interface boxing.*int`
}

// assignBox boxes through an assignment to an interface variable.
//
//mce:hotpath assignment root
func assignBox(n int) any {
	var v any
	v = n // want `hot-path interface boxing.*int.*assigned to`
	return v
}

// convBox boxes through an explicit conversion.
//
//mce:hotpath conversion root
func convBox(s string) any {
	return any(s) // want `hot-path interface boxing.*string.*converted to`
}

// captureLoop declares a variable inside a hot loop and lets an escaping
// closure capture it; the compiler moves it to the heap and hotbox, not
// hotalloc, owns the finding.
//
//mce:hotpath capture root
//go:noinline
func captureLoop(rows [][]int) int {
	total := 0
	for _, row := range rows {
		acc := 0 // want `hot-loop closure capture.*acc`
		walk(row, func(v int) {
			acc += v
		})
		total += acc
	}
	return total
}

// sink forces the walk callback (and everything it captures) to escape.
var sink func(int)

//go:noinline
func walk(xs []int, f func(int)) {
	sink = f
	for _, v := range xs {
		f(v)
	}
}
