package hotboxfix

import (
	"fmt"
	"math/bits"
	"slices"
)

// countBits is hot and box-free.
//
//mce:hotpath clean root
func countBits(words []uint64) int {
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	return n
}

// pointerShaped pins the exemptions: pointer-shaped values and constants
// convert to interfaces without allocating.
//
//mce:hotpath pointer-shaped root
func pointerShaped(m map[string]int, p *int) (any, any, any) {
	var a, b, c any
	a = m // maps are pointer-shaped: no box allocation
	b = p // pointers too
	c = 7 // constants are materialised statically
	return a, b, c
}

// genericSort pins the generics exemption: a slice passed to a type
// parameter instantiates, it does not box.
//
//mce:hotpath generic root
func genericSort(xs []int32) {
	slices.Sort(xs)
}

// describe is not hot; fmt is fine off the hot path.
func describe(n int) string {
	return fmt.Sprintf("%d", n)
}
