package hotboxfix

import "fmt"

// logHot pins the lint:ignore path: one directive covers both the fmt-call
// and the boxing finding on the same line.
//
//mce:hotpath suppressed root
func logHot(n int) string {
	//lint:ignore hotbox fixture: cold diagnostic branch kept hot for the test
	return fmt.Sprint(n)
}
