package fixture

import "mce/internal/telemetry"

// mustRecord documents a call-site contract the analyzer cannot see: its
// only caller constructs the engine unconditionally.
func mustRecord(met *telemetry.Engine) {
	//lint:ignore telemetryguard the single caller builds the engine with NewEngine two lines above the call; contract pinned by its test
	met.TasksServed.Inc()
}
