package fixture

import "mce/internal/telemetry"

// record bumps a counter without checking for the disabled (nil) engine.
func record(met *telemetry.Engine) {
	met.BlocksBuilt.Inc() // want `unguarded use of possibly-nil \*telemetry\.Engine met`
}

// pool carries the engine in a field; field chains need guards too.
type pool struct {
	met *telemetry.Engine
}

func (p *pool) flush(n int64) {
	p.met.KernelNodes.Add(n) // want `unguarded use of possibly-nil \*telemetry\.Engine p\.met`
}

// merge dereferences a possibly-nil BlockInstr.
func merge(ins *telemetry.BlockInstr, nodes int64) {
	ins.RecursionNodes += nodes // want `unguarded use of possibly-nil \*telemetry\.BlockInstr ins`
}

// refresh shows a guard being revoked: after the reassignment the old
// nil-check proves nothing about the new value.
func refresh(met, next *telemetry.Engine) {
	if met != nil {
		met.BlocksBuilt.Inc()
		met = next
		met.BlocksBuilt.Inc() // want `unguarded use of possibly-nil \*telemetry\.Engine met`
	}
}

// late uses the engine after the guarded block ended.
func late(met *telemetry.Engine) {
	if met != nil {
		met.QueueDepth.Set(0)
	}
	met.QueueDepth.Set(1) // want `unguarded use of possibly-nil \*telemetry\.Engine met`
}
