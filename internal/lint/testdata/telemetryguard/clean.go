package fixture

import "mce/internal/telemetry"

// guarded is the canonical instrumentation idiom.
func guarded(met *telemetry.Engine) {
	if met != nil {
		met.BlocksBuilt.Inc()
	}
}

// early guards with the early-return shape: the negative fact survives the
// return into the rest of the function.
func early(met *telemetry.Engine) int64 {
	if met == nil {
		return 0
	}
	return met.BlocksBuilt.Load()
}

type exec struct {
	Metrics *telemetry.Engine
}

// snapshotIf covers the if-init binding and the field-chain guard.
func (e *exec) snapshotIf() {
	if met := e.Metrics; met != nil {
		met.QueueDepth.Set(2)
	}
	if e.Metrics != nil {
		_ = e.Metrics.Snapshot()
	}
}

// conjoined guards through the right operand of &&.
func conjoined(met *telemetry.Engine, on bool) {
	if on && met != nil {
		met.BlocksAnalyzed.Inc()
	}
}

// closure shows guard inheritance: the literal is created after the nil
// check, so it keeps the fact — the repo's instrumented-goroutine idiom.
func closure(met *telemetry.Engine) func() {
	if met == nil {
		return func() {}
	}
	return func() { met.CliquesFound.Inc() }
}

// fresh values from constructors and address-of are non-nil by construction.
func fresh() *telemetry.Engine {
	eng := telemetry.NewEngine()
	eng.BlocksBuilt.Inc()
	ins := &telemetry.BlockInstr{}
	ins.RecursionNodes++
	eng.MergeBlockInstr(ins)
	return eng
}
