package lint

import (
	"sort"
	"strings"
)

// LockOrder reports cycles in the global mutex-acquisition graph — the
// classic two-lock deadlock, generalised: if one code path acquires B while
// holding A and another acquires A while holding B (directly or through any
// chain of calls, in any pair of packages), two goroutines interleaving
// those paths block each other forever. The cluster runtime is exactly the
// code shape that breeds this: the client's batch mutex, the health
// registry's mutex and the telemetry engine's cells are touched from
// dispatch goroutines, the hedging monitor and reconnect callbacks, so a
// locally-reasonable `registry.mu inside client.mu` in one file and the
// reverse in another is invisible to any per-function check.
//
// The analyzer runs on the lock-order fact layer (lockfacts.go): per
// function, the set of locks transitively acquired is computed over the
// suite call graph and exported as LockSetFact; every acquisition made
// while another lock is held contributes an ordered edge. A cycle in the
// edge graph is reported once, at the lexicographically-first edge that
// closes it, with the full cycle spelled out. Read locks participate as
// their own nodes: an RLock ordering against a write Lock can deadlock just
// as hard (RWMutex write acquisition blocks new readers).
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "mutex acquisition order must be acyclic across the whole module " +
		"(a cycle means two goroutines can deadlock)",
	Run: runLockOrder,
}

// lockCycle is one reported cycle: the representative edge (where the
// diagnostic lands) plus the printable path.
type lockCycle struct {
	pkg  *Package
	pair lockPair
	path string // "A → B → A" with positions
}

func runLockOrder(pass *Pass) error {
	info := lockFacts(pass)
	cycles := pass.Suite.Memo("lockorder.cycles", func() any {
		return findLockCycles(info)
	}).([]lockCycle)
	for _, c := range cycles {
		if c.pkg != pass.Pkg {
			continue // reported while analysing the owning package
		}
		via := ""
		if c.pair.via != "" {
			via = " (acquired inside " + c.pair.via + ")"
		}
		pass.Reportf(c.pair.pos,
			"lock-order cycle: %s is acquired while %s is held%s, but the reverse order also exists: %s — concurrent callers can deadlock; pick one global order",
			info.name(c.pair.acquired), info.name(c.pair.held), via, c.path)
	}
	return nil
}

// findLockCycles builds the acquisition graph from the fact layer's pairs
// and returns one representative diagnostic per elementary cycle family:
// for every strongly-connected component with at least one internal edge,
// the smallest edge (by held/acquired key, then position) is chosen and the
// shortest cycle through it is rendered.
func findLockCycles(info *lockInfo) []lockCycle {
	// Adjacency with one representative pair per edge (the first in the
	// already-sorted pair list — deterministic).
	type edge struct {
		to   string
		pair lockPair
	}
	adj := make(map[string][]edge)
	plain := make(map[string][]string)
	seen := make(map[[2]string]bool)
	for _, p := range info.pairs {
		k := [2]string{p.held, p.acquired}
		if seen[k] {
			continue
		}
		seen[k] = true
		adj[p.held] = append(adj[p.held], edge{p.acquired, p})
		plain[p.held] = append(plain[p.held], p.acquired)
	}
	for n, es := range adj {
		sort.Slice(es, func(i, j int) bool { return es[i].to < es[j].to })
		sort.Strings(plain[n])
	}

	// Tarjan SCC over the lock nodes.
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	next, ncomp := 0, 0
	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range adj[v] {
			w := e.to
			if _, visited := index[w]; !visited {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = ncomp
				if w == v {
					break
				}
			}
			ncomp++
		}
	}
	for _, n := range nodes {
		if _, visited := index[n]; !visited {
			strong(n)
		}
	}

	// A component deadlocks when it contains an edge between two of its own
	// nodes with distinct endpoints (self-loops were filtered at record
	// time). Report once per component, at its smallest internal edge.
	byComp := make(map[int][]edge)
	for _, n := range nodes {
		for _, e := range adj[n] {
			if ec, ok := comp[e.to]; ok && ec == comp[n] && e.to != n {
				byComp[comp[n]] = append(byComp[comp[n]], e)
			}
		}
	}
	var cycles []lockCycle
	for _, edges := range byComp {
		sort.Slice(edges, func(i, j int) bool {
			a, b := edges[i].pair, edges[j].pair
			if a.held != b.held {
				return a.held < b.held
			}
			if a.acquired != b.acquired {
				return a.acquired < b.acquired
			}
			return a.pos < b.pos
		})
		rep := edges[0].pair
		cycles = append(cycles, lockCycle{
			pkg:  rep.pkg,
			pair: rep,
			path: renderCycle(info, plain, rep),
		})
	}
	sort.Slice(cycles, func(i, j int) bool {
		a, b := cycles[i].pair, cycles[j].pair
		if a.held != b.held {
			return a.held < b.held
		}
		return a.acquired < b.acquired
	})
	return cycles
}

// renderCycle renders the shortest cycle through rep's edge as
// "A → B → … → A", with the closing position.
func renderCycle(info *lockInfo, adj map[string][]string, rep lockPair) string {
	// BFS from rep.acquired back to rep.held closes the loop.
	type hop struct {
		node string
		prev int
	}
	hops := []hop{{rep.acquired, -1}}
	visited := map[string]bool{rep.acquired: true}
	found := -1
	for i := 0; i < len(hops) && found < 0; i++ {
		for _, nxt := range adj[hops[i].node] {
			if nxt == rep.held {
				hops = append(hops, hop{nxt, i})
				found = len(hops) - 1
				break
			}
			if !visited[nxt] {
				visited[nxt] = true
				hops = append(hops, hop{nxt, i})
			}
		}
	}
	var names []string
	if found >= 0 {
		for i := found; i >= 0; i = hops[i].prev {
			names = append(names, info.name(hops[i].node))
		}
		// names is acquired…held reversed; prepend held to close the loop.
		for l, r := 0, len(names)-1; l < r; l, r = l+1, r-1 {
			names[l], names[r] = names[r], names[l]
		}
	} else {
		names = []string{info.name(rep.acquired), info.name(rep.held)}
	}
	names = append(names, names[0])
	return strings.Join(names, " → ")
}

// name returns the printable form of a lock key.
func (info *lockInfo) name(key string) string {
	if n, ok := info.names[key]; ok {
		return n
	}
	return key
}
