package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The allocation budget: hot-path allocations that are understood and
// accepted — per-subproblem snapshots in the work-stealing donation path,
// the one-time label store of a telemetry counter — live in a committed
// .mcevet/allocbudget.json, and hotalloc reconciles the compiler's escape
// decisions against it. A site in the budget passes; a *new* site fails
// until a human either removes it or re-runs `mcevet -update-allocbudget`
// and commits the diff, which makes every new hot-path allocation a
// reviewable event rather than a silent regression.
//
// Budget keys are "<pkgpath>::<func>::<compiler message>", e.g.
//
//	mce/internal/mcealg::(*parWorker).splitOrdered::make([]int32, len(order)) escapes to heap
//
// The message is the compiler's own text, so the key pins the exact
// expression; count is the number of identical sites allowed under the key
// (distinct lines with the same expression in the same function).

// DefaultBudgetPath is the budget file location relative to the module (or
// fixture) root.
const DefaultBudgetPath = ".mcevet/allocbudget.json"

// BudgetEntry is one accepted allocation site class.
type BudgetEntry struct {
	Site  string `json:"site"`
	Count int    `json:"count"`
	Note  string `json:"note,omitempty"`
}

// budgetFile is the on-disk shape of .mcevet/allocbudget.json.
type budgetFile struct {
	Comment string        `json:"comment,omitempty"`
	Sites   []BudgetEntry `json:"sites"`
}

const budgetComment = "Accepted hot-path allocations; regenerate with `go run ./cmd/mcevet -update-allocbudget`. Notes survive regeneration."

// allocBudget is one loaded budget file.
type allocBudget struct {
	path   string
	counts map[string]int
	notes  map[string]string
	raw    []byte // for line-of-entry lookup in diagnostics
}

// budgetKey builds the canonical key of one allocation site class.
func budgetKey(pkgPath, funcName, msg string) string {
	return pkgPath + "::" + funcName + "::" + msg
}

// findBudgetFile walks up from dir looking for .mcevet/allocbudget.json —
// the same nearest-ancestor rule go.mod resolution uses, so fixture trees
// under testdata can carry their own budget while the module root owns the
// real one. Returns "" when no budget exists.
func findBudgetFile(dir string) string {
	for {
		p := filepath.Join(dir, DefaultBudgetPath)
		if _, err := os.Stat(p); err == nil {
			return p
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// budgetFor loads the budget governing pkg (nearest ancestor of its
// directory), memoised per resolved path. A missing budget file is an empty
// budget, not an error: the gate then rejects every hot allocation, which
// is the right default for a tree that never accepted any.
func budgetFor(s *Suite, pkg *Package) (*allocBudget, error) {
	type result struct {
		b   *allocBudget
		err error
	}
	r := s.Memo("allocbudget:"+pkg.Dir, func() any {
		path := findBudgetFile(pkg.Dir)
		if path == "" {
			return result{b: &allocBudget{counts: map[string]int{}, notes: map[string]string{}}}
		}
		b, err := loadBudget(path)
		return result{b: b, err: err}
	}).(result)
	return r.b, r.err
}

func loadBudget(path string) (*allocBudget, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: reading allocation budget: %v", err)
	}
	var f budgetFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("lint: parsing %s: %v", path, err)
	}
	b := &allocBudget{
		path:   path,
		counts: make(map[string]int, len(f.Sites)),
		notes:  make(map[string]string, len(f.Sites)),
		raw:    raw,
	}
	for _, e := range f.Sites {
		n := e.Count
		if n < 1 {
			n = 1
		}
		b.counts[e.Site] += n
		if e.Note != "" {
			b.notes[e.Site] = e.Note
		}
	}
	return b, nil
}

// lineOf locates a site key inside the raw budget file so stale-entry
// diagnostics point at the entry itself, not at code.
func (b *allocBudget) lineOf(site string) int {
	enc, err := json.Marshal(site)
	if err != nil {
		return 1
	}
	i := bytes.Index(b.raw, enc)
	if i < 0 {
		return 1
	}
	return 1 + bytes.Count(b.raw[:i], []byte("\n"))
}

// entriesFor returns the budget keys scoped to pkgPath, sorted — the
// stale-entry check iterates these.
func (b *allocBudget) entriesFor(pkgPath string) []string {
	var keys []string
	prefix := pkgPath + "::"
	for k := range b.counts {
		if len(k) > len(prefix) && k[:len(prefix)] == prefix {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// CollectAllocBudget computes the current hot-path allocation sites of the
// loaded packages — the content `mcevet -update-allocbudget` writes. Notes
// from prev (the previously committed entries, may be nil) are carried over
// for keys that still exist.
func CollectAllocBudget(pkgs []*Package, prev []BudgetEntry) ([]BudgetEntry, error) {
	suite := newSuite(pkgs)
	h := hotData(suite)
	counts := make(map[string]int)
	for _, pkg := range suite.Pkgs {
		decls := h.declsIn(pkg)
		if len(decls) == 0 {
			continue
		}
		esc, err := escapeFor(suite, pkg)
		if err != nil {
			return nil, err
		}
		for _, hd := range decls {
			for _, site := range esc.byFunc[hd.key] {
				if captureClaimed(pkg, hd.decl, site) {
					continue // hotbox's finding, not a budgetable allocation
				}
				counts[budgetKey(pkg.PkgPath, budgetFuncName(hd.fn), site.msg)]++
			}
		}
	}
	notes := make(map[string]string, len(prev))
	for _, e := range prev {
		if e.Note != "" {
			notes[e.Site] = e.Note
		}
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	entries := make([]BudgetEntry, 0, len(keys))
	for _, k := range keys {
		entries = append(entries, BudgetEntry{Site: k, Count: counts[k], Note: notes[k]})
	}
	return entries, nil
}

// LoadAllocBudget reads the entries of an existing budget file; a missing
// file is an empty budget.
func LoadAllocBudget(path string) ([]BudgetEntry, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var f budgetFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("lint: parsing %s: %v", path, err)
	}
	return f.Sites, nil
}

// WriteAllocBudget writes entries as a budget file, creating the .mcevet
// directory as needed. The output is deterministic (sorted keys, stable
// indentation) so `git diff --exit-code` is a drift check.
func WriteAllocBudget(path string, entries []BudgetEntry) error {
	sorted := append([]BudgetEntry{}, entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Site < sorted[j].Site })
	out, err := json.MarshalIndent(budgetFile{Comment: budgetComment, Sites: sorted}, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
