package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The v2 engine tests: dependency ordering, cross-package call-graph edges,
// facts flowing imports→importers, and the raw dataflow pass. Cross-package
// cases run on a throwaway two-package module so the test exercises the
// exact load path production uses (go list + export data), where the
// defining package's objects and the importer's view of them are distinct
// pointers — the identity problem the string-keyed graph and fact store
// exist to solve.

// writeTempModule lays the files out under a fresh module root and returns
// the directory.
func writeTempModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	all := map[string]string{"go.mod": "module tmpmod\n\ngo 1.22\n"}
	for name, src := range files {
		all[name] = src
	}
	for name, src := range all {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("mkdir for %s: %v", name, err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatalf("writing %s: %v", name, err)
		}
	}
	return dir
}

func loadTempModule(t *testing.T, files map[string]string) []*Package {
	t.Helper()
	dir := writeTempModule(t, files)
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading temp module: %v", err)
	}
	return pkgs
}

func twoPackageFiles() map[string]string {
	return map[string]string{
		"lib/lib.go": `package lib

// Keys returns the map's keys in iteration order.
func Keys(set map[string]int) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}

// Twice calls Keys; summaries must propagate through it too.
func Twice(set map[string]int) []string {
	return Keys(set)
}
`,
		"app/app.go": `package app

import (
	"fmt"

	"tmpmod/lib"
)

// Show prints a map-ordered slice obtained from another package.
func Show(set map[string]int) {
	fmt.Println(lib.Keys(set))
}

// ShowTwice goes through the two-hop helper.
func ShowTwice(set map[string]int) {
	fmt.Println(lib.Twice(set))
}
`,
	}
}

// lookupFunc resolves a package-scope function from a loaded package.
func lookupFunc(t *testing.T, pkgs []*Package, pkgPath, name string) *types.Func {
	t.Helper()
	for _, p := range pkgs {
		if p.PkgPath != pkgPath {
			continue
		}
		if fn, ok := p.Types.Scope().Lookup(name).(*types.Func); ok {
			return fn
		}
		t.Fatalf("%s has no function %s", pkgPath, name)
	}
	t.Fatalf("package %s not loaded", pkgPath)
	return nil
}

func TestSuiteDependencyOrder(t *testing.T) {
	pkgs := loadTempModule(t, twoPackageFiles())
	suite := newSuite(pkgs)
	idx := make(map[string]int)
	for i, p := range suite.Pkgs {
		idx[p.PkgPath] = i
	}
	if idx["tmpmod/lib"] > idx["tmpmod/app"] {
		t.Errorf("dependency order wrong: lib (imported) at %d, app (importer) at %d",
			idx["tmpmod/lib"], idx["tmpmod/app"])
	}
}

func TestCallGraphCrossPackage(t *testing.T) {
	pkgs := loadTempModule(t, twoPackageFiles())
	suite := newSuite(pkgs)
	cg := suite.CallGraph()

	keys := lookupFunc(t, pkgs, "tmpmod/lib", "Keys")
	show := lookupFunc(t, pkgs, "tmpmod/app", "Show")

	// Caller edge crosses the package boundary even though app's view of
	// lib.Keys is a different *types.Func than lib's own.
	callers := cg.Callers(keys)
	names := make([]string, len(callers))
	for i, c := range callers {
		names[i] = c.FullName()
	}
	if len(callers) != 2 {
		t.Fatalf("Callers(lib.Keys) = %v, want [app.Show lib.Twice]", names)
	}

	callees := cg.Callees(show)
	found := false
	for _, c := range callees {
		if c.FullName() == "tmpmod/lib.Keys" {
			found = true
		}
	}
	if !found {
		t.Errorf("Callees(app.Show) is missing lib.Keys: %v", callees)
	}

	// Decl resolves back to the defining package.
	declPkg, decl := cg.Decl(keys)
	if declPkg == nil || declPkg.PkgPath != "tmpmod/lib" || decl == nil || decl.Name.Name != "Keys" {
		t.Errorf("Decl(lib.Keys) = %v, %v", declPkg, decl)
	}

	// Reachability from app.Show includes the two-hop chain's target.
	reach := cg.Reachable(lookupFunc(t, pkgs, "tmpmod/app", "ShowTwice"))
	reached := false
	for fn := range reach {
		if fn.FullName() == "tmpmod/lib.Keys" {
			reached = true
		}
	}
	if !reached {
		t.Errorf("Reachable(app.ShowTwice) does not include lib.Keys")
	}
}

func TestFactsFlowAcrossPackages(t *testing.T) {
	pkgs := loadTempModule(t, twoPackageFiles())
	diags, err := RunAnalyzers(pkgs, []*Analyzer{MapOrder})
	if err != nil {
		t.Fatalf("running maporder: %v", err)
	}
	// Both call shapes in app must be flagged: the taint travels through
	// lib.Keys's exported summary, and through lib.Twice's transitively.
	var appFindings int
	for _, d := range diags {
		if d.Analyzer != "maporder" {
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d)
		}
		if strings.Contains(d.Pos.Filename, filepath.Join("app", "app.go")) {
			appFindings++
		}
	}
	if appFindings != 2 {
		t.Errorf("maporder found %d finding(s) in app, want 2 (facts not crossing the package boundary?):\n%v",
			appFindings, diags)
	}
}

func TestFactStoreObjectIdentity(t *testing.T) {
	pkgs := loadTempModule(t, twoPackageFiles())
	suite := newSuite(pkgs)

	// The defining package's source-checked object...
	libKeys := lookupFunc(t, pkgs, "tmpmod/lib", "Keys")
	// ...and the importer's export-data view of the same declaration.
	var appView *types.Func
	for _, p := range pkgs {
		if p.PkgPath != "tmpmod/app" {
			continue
		}
		for _, imp := range p.Types.Imports() {
			if imp.Path() == "tmpmod/lib" {
				appView = imp.Scope().Lookup("Keys").(*types.Func)
			}
		}
	}
	if appView == nil {
		t.Fatal("could not resolve app's view of lib.Keys")
	}
	if libKeys == appView {
		t.Fatal("test premise broken: both views are the same object; the loader changed")
	}

	pass := &Pass{Suite: suite}
	pass.ExportObjectFact(libKeys, &mapOrderedFact{Ret: true})
	var got mapOrderedFact
	if !pass.ImportObjectFact(appView, &got) || !got.Ret {
		t.Errorf("fact exported on the source view was not importable through the export-data view")
	}
}

// lockPackageFiles seeds a two-package mutex inversion: pkg b acquires
// a.Mu while holding its own lock *through a.LockMu's summary* (the
// acquisition is invisible without cross-package facts), and separately
// acquires b's lock while holding a.Mu directly. Each half looks fine in
// isolation; only the whole-module graph has the cycle.
func lockPackageFiles() map[string]string {
	return map[string]string{
		"a/a.go": `package a

import "sync"

// Mu guards package a's registry.
var Mu sync.Mutex

// LockMu and UnlockMu are the exported acquisition helpers: callers in
// other packages never touch Mu directly.
func LockMu()   { Mu.Lock() }
func UnlockMu() { Mu.Unlock() }
`,
		"b/b.go": `package b

import (
	"sync"

	"tmpmod/a"
)

var mu sync.Mutex

// Inverted1 holds b's lock and then acquires a.Mu one call deep.
func Inverted1() {
	mu.Lock()
	defer mu.Unlock()
	a.LockMu()
	defer a.UnlockMu()
}

// Inverted2 holds a.Mu and then acquires b's lock: the reverse order.
func Inverted2() {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	mu.Lock()
	defer mu.Unlock()
}
`,
	}
}

// TestLockFactsCrossPackages proves the lock-set fact layer sees through
// export data: package b's view of a.LockMu is a different *types.Func
// than a's own, yet b's indirect acquisition of a.Mu while holding b.mu
// must surface as a pair attributed to the helper.
func TestLockFactsCrossPackages(t *testing.T) {
	pkgs := loadTempModule(t, lockPackageFiles())
	suite := newSuite(pkgs)
	var passB *Pass
	for _, p := range suite.Pkgs {
		if p.PkgPath == "tmpmod/b" {
			passB = &Pass{Analyzer: LockOrder, Pkg: p, Suite: suite}
		}
	}
	if passB == nil {
		t.Fatal("package b not loaded")
	}
	info := lockFacts(passB)

	// The exported summary for a.LockMu names a.Mu.
	lockMu := lookupFunc(t, pkgs, "tmpmod/a", "LockMu")
	var fact LockSetFact
	if !passB.ImportObjectFact(lockMu, &fact) {
		t.Fatal("no LockSetFact exported for a.LockMu")
	}
	foundMu := false
	for _, acq := range fact.Acquires {
		if acq == "tmpmod/a::Mu" {
			foundMu = true
		}
	}
	if !foundMu {
		t.Errorf("LockSetFact(a.LockMu).Acquires = %v, want [tmpmod/a::Mu]", fact.Acquires)
	}

	// The cross-package pair: b.mu held, a.Mu acquired, via the helper.
	foundPair := false
	for _, p := range info.pairs {
		if p.held == "tmpmod/b::mu" && p.acquired == "tmpmod/a::Mu" && p.via != "" {
			foundPair = true
		}
	}
	if !foundPair {
		t.Errorf("lock pairs missing the indirect b.mu→a.Mu edge:\n%v", info.pairs)
	}
}

// TestLockOrderCycleAcrossPackages is the tentpole acceptance test: the
// seeded two-mutex inversion split across two packages is reported as a
// cycle, exactly once.
func TestLockOrderCycleAcrossPackages(t *testing.T) {
	pkgs := loadTempModule(t, lockPackageFiles())
	diags, err := RunAnalyzers(pkgs, []*Analyzer{LockOrder})
	if err != nil {
		t.Fatalf("running lockorder: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostic(s), want exactly 1 (one report per cycle):\n%v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "lockorder" || !strings.Contains(d.Message, "lock-order cycle") {
		t.Errorf("diagnostic does not report the cycle: %s", d)
	}
	if !strings.Contains(d.Message, "Mu") || !strings.Contains(d.Message, "mu") {
		t.Errorf("diagnostic does not name both locks of the cycle: %s", d)
	}
}

// checkSnippet type-checks one inline source file and returns the package.
func checkSnippet(t *testing.T, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "snippet.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatalf("writing snippet: %v", err)
	}
	fset := token.NewFileSet()
	pkg, err := check("snippet", dir, fset, newImporter(moduleRoot(), fset), []string{path})
	if err != nil {
		t.Fatalf("checking snippet: %v", err)
	}
	return pkg
}

func TestDataflowTaintAndSanitize(t *testing.T) {
	pkg := checkSnippet(t, `package p

import "sort"

func f(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	clean := make([]string, 0, len(m))
	for k := range m {
		clean = append(clean, k)
	}
	sort.Strings(clean)
	other := []string{"a"}
	_ = other
	copied := keys
	return copied
}
`)
	var decl *ast.FuncDecl
	for _, d := range pkg.Files[0].Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			decl = fd
		}
	}
	const tag Taint = 1
	cfg := &FlowConfig{
		Info: pkg.Info,
		RangeSeed: func(rng *ast.RangeStmt, _ Taint) Taint {
			if isMapType(pkg.Info, rng.X) {
				return tag
			}
			return 0
		},
		Sanitize: func(call *ast.CallExpr) *types.Var {
			if isPkgFunc(pkg.Info, call, "sort", "Strings") && len(call.Args) > 0 {
				return usedVar(pkg.Info, call.Args[0])
			}
			return nil
		},
	}
	fl := analyzeFlow(cfg, decl.Body)

	taintOf := func(name string) Taint {
		for v, tn := range fl.Vars {
			if v.Name() == name {
				return tn
			}
		}
		return 0
	}
	if taintOf("keys")&tag == 0 {
		t.Error("keys should carry the map-order taint")
	}
	if taintOf("copied")&tag == 0 {
		t.Error("copied should inherit the taint through assignment")
	}
	if taintOf("clean") != 0 {
		t.Error("clean was sorted and must end the analysis untainted")
	}
	if taintOf("other") != 0 {
		t.Error("other never touched a map and must stay untainted")
	}
	if fl.Ret&tag == 0 {
		t.Error("the returned value is tainted, so Ret must be")
	}
	if _, ok := fl.Origin[nil]; ok {
		t.Error("Origin must not hold a nil key")
	}
}

func TestStaleIgnoreDirectives(t *testing.T) {
	moduleDir := moduleRoot()
	pkg, err := LoadFiles(moduleDir, filepath.Join(moduleDir, "internal", "lint", "testdata", "staleignore", "stale.go"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, Analyzers())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	var stale, unknown, other int
	for _, d := range diags {
		switch {
		case d.Analyzer == "staleignore" && strings.Contains(d.Message, "stale lint:ignore"):
			stale++
		case d.Analyzer == "staleignore" && strings.Contains(d.Message, "unknown analyzer"):
			unknown++
		default:
			other++
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if stale != 1 || unknown != 1 {
		t.Errorf("got %d stale + %d unknown-analyzer diagnostics, want 1 + 1:\n%v", stale, unknown, diags)
	}
}

// TestStaleIgnoreNotJudgedOnPartialRun pins the safety rule: when the named
// analyzer did not run, an unused directive must not be reported stale.
func TestStaleIgnoreNotJudgedOnPartialRun(t *testing.T) {
	moduleDir := moduleRoot()
	pkg, err := LoadFiles(moduleDir, filepath.Join(moduleDir, "internal", "lint", "testdata", "staleignore", "stale.go"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	// ctxplumb runs, maporder does not: the maporder directives are not
	// judgeable, so only the unknown-analyzer one (always judgeable) shows.
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{CtxPlumb, StaleIgnore})
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "stale lint:ignore") {
			t.Errorf("directive judged stale although maporder never ran: %s", d)
		}
	}
}
