package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CasLoop machine-checks the compare-and-swap discipline the lock-free
// paths of the telemetry engine and the cluster health registry rely on:
//
//   - a CompareAndSwap result must be consumed — a discarded result means
//     the caller proceeds as if the swap happened whether it did or not,
//     which on contention silently drops the update;
//   - a CAS retry loop must re-load its expected ("old") value each
//     iteration — a loop that keeps presenting the same stale snapshot
//     spins forever once another goroutine wins a single race (CAS from a
//     constant, e.g. the 0→1 latch idiom, is exempt: the expected value
//     cannot go stale);
//   - a struct field accessed through sync/atomic anywhere in the module
//     must be accessed that way everywhere — one plain `s.f++` in a
//     far-away package races every concurrent atomic update. This rule
//     subsumes and retires PR 3's atomicfield analyzer; its whole-suite
//     scan lives on here unchanged.
var CasLoop = &Analyzer{
	Name: "casloop",
	Doc: "compare-and-swap discipline: CAS results must be checked, CAS " +
		"retry loops must re-load the expected value, and atomically-" +
		"accessed fields must never see plain reads or writes",
	Run: runCasLoop,
}

func runCasLoop(pass *Pass) error {
	if err := runMixedAtomic(pass); err != nil {
		return err
	}
	tinfo := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		// Rule 1: discarded CAS results. A CAS as a bare statement (or
		// assigned only to blanks) throws away the one bit that says whether
		// the swap took effect.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					if name, _ := casCall(tinfo, call); name != "" {
						pass.Reportf(call.Pos(),
							"result of %s is discarded: on contention the swap silently fails and this code proceeds as if it succeeded (check the returned bool)",
							name)
					}
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				name, _ := casCall(tinfo, call)
				if name == "" {
					return true
				}
				allBlank := true
				for _, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); !ok || id.Name != "_" {
						allBlank = false
					}
				}
				if allBlank {
					pass.Reportf(call.Pos(),
						"result of %s is discarded: on contention the swap silently fails and this code proceeds as if it succeeded (check the returned bool)",
						name)
				}
			}
			return true
		})

		// Rule 2: stale-old retry loops. Inside each for loop, a CAS whose
		// expected value is a variable that is never reassigned within the
		// loop body presents the same snapshot every iteration: the first
		// lost race makes every subsequent attempt fail too.
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Body == nil {
				return true
			}
			checkStaleOldLoop(pass, tinfo, loop)
			return true
		})
	}
	return nil
}

// casCall recognises a compare-and-swap call: the sync/atomic package
// functions (CompareAndSwapInt64, ...) and the CompareAndSwap methods of
// the sync/atomic wrapper types (atomic.Int64, atomic.Pointer[T], ...).
// It returns a printable name and the expected-value ("old") argument.
func casCall(info *types.Info, call *ast.CallExpr) (string, ast.Expr) {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return "", nil
	}
	if !strings.HasPrefix(fn.Name(), "CompareAndSwap") {
		return "", nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", nil
	}
	if sig.Recv() != nil {
		// Method form: CompareAndSwap(old, new) on atomic.Int64 et al.
		if len(call.Args) != 2 {
			return "", nil
		}
		return "atomic." + namedType(sig.Recv().Type()).Obj().Name() + ".CompareAndSwap", call.Args[0]
	}
	// Function form: CompareAndSwapInt64(addr, old, new).
	if len(call.Args) != 3 {
		return "", nil
	}
	return "atomic." + fn.Name(), call.Args[1]
}

// checkStaleOldLoop reports CAS calls in loop whose expected value is a
// variable not refreshed inside the loop body. Nested function literals are
// skipped (they run on their own schedule), as are nested for loops (they
// get their own visit).
func checkStaleOldLoop(pass *Pass, info *types.Info, loop *ast.ForStmt) {
	// Variables (re)assigned or address-taken anywhere in the loop body —
	// any of those can refresh the snapshot between attempts.
	refreshed := make(map[*types.Var]bool)
	mark := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := info.Defs[id].(*types.Var); ok {
				refreshed[v] = true
			}
			if v, ok := info.Uses[id].(*types.Var); ok {
				refreshed[v] = true
			}
		}
	}
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		case *ast.RangeStmt:
			mark(n.Key)
			mark(n.Value)
		}
		return true
	})
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			// A nested loop is visited on its own; analysing it here would
			// misattribute its refreshes.
			return false
		case *ast.CallExpr:
			name, old := casCall(info, n)
			if name == "" || old == nil {
				return true
			}
			v := usedVar(info, old)
			if v == nil || refreshed[v] {
				return true // constant expected value, or refreshed in-loop
			}
			pass.Reportf(n.Pos(),
				"CAS retry loop never re-loads expected value %s: after one lost race every retry presents the same stale snapshot and the loop spins forever (re-load %s inside the loop)",
				v.Name(), v.Name())
		}
		return true
	})
}

// ---- absorbed atomicfield scan (PR 3) -------------------------------------
//
// Once any code accesses a struct field through sync/atomic
// (atomic.AddInt64(&s.f), ...), every access to that field anywhere in the
// module must be atomic too. A single plain read races every concurrent
// atomic update — the race detector only catches it when a test happens to
// exercise both sides concurrently, while this scan catches it on any
// `make lint`. The set of atomically-accessed fields is collected across
// every loaded package first (one shared scan), then each package is
// searched for plain accesses to any of them. Composite literals are exempt
// (pre-publication initialisation), as is the &s.f operand position of the
// sync/atomic call itself.

// atomicFieldInfo is the suite-wide scan result: for every field touched
// through sync/atomic, one representative call position (for the
// diagnostic), plus the set of positions that are legitimate atomic
// operands and therefore not plain accesses. Fields are keyed by canonical
// object key, not pointer: the declaring package sees the source-checked
// field object while every other package sees its export-data twin.
type atomicFieldInfo struct {
	fields   map[string]atomicSite // field key -> one atomic call site
	operands map[token.Pos]bool    // positions of s.f operands inside atomic calls
}

// atomicSite describes one representative sync/atomic access of a field.
type atomicSite struct {
	pos   token.Position
	owner string // declaring struct type name
	name  string // field name
}

func runMixedAtomic(pass *Pass) error {
	info := pass.Suite.Memo("casloop.atomicfields", func() any {
		return scanAtomicFields(pass.Suite)
	}).(*atomicFieldInfo)
	if len(info.fields) == 0 {
		return nil
	}

	type finding struct {
		pos   token.Pos
		field string
		write bool
	}
	var findings []finding
	for _, f := range pass.Pkg.Files {
		// Track which selector positions are writes (assignment LHS or
		// IncDec operands) so the diagnostic can say read vs write, and
		// which are address-taken: passing &s.f to a helper that itself
		// uses atomics is legitimate (the helper's accesses are checked in
		// their own right), so bare address-of is skipped, not flagged.
		writes := make(map[token.Pos]bool)
		addr := make(map[token.Pos]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					writes[ast.Unparen(lhs).Pos()] = true
				}
			case *ast.IncDecStmt:
				writes[ast.Unparen(n.X).Pos()] = true
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					addr[ast.Unparen(n.X).Pos()] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				return false // initialisation before publication
			case *ast.SelectorExpr:
				field := selectedField(pass.Pkg.Info, n)
				if field == nil {
					return true
				}
				key := objKey(field)
				if _, atomic := info.fields[key]; !atomic {
					return true
				}
				if info.operands[n.Pos()] {
					return true // the &s.f inside the atomic call itself
				}
				if addr[n.Pos()] {
					return true // address passed on; not a plain access
				}
				findings = append(findings, finding{n.Pos(), key, writes[n.Pos()]})
			}
			return true
		})
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, fd := range findings {
		verb := "plain read of"
		if fd.write {
			verb = "plain write to"
		}
		at := info.fields[fd.field]
		pass.Reportf(fd.pos,
			"%s field %s.%s, which is accessed with sync/atomic at %s:%d: mixed access races every atomic update (use the atomic API everywhere)",
			verb, at.owner, at.name, shortPath(at.pos.Filename), at.pos.Line)
	}
	return nil
}

// scanAtomicFields walks every package of the suite once, recording each
// struct field that appears as &s.f (or s.f) in an argument of a
// sync/atomic call.
func scanAtomicFields(suite *Suite) *atomicFieldInfo {
	out := &atomicFieldInfo{
		fields:   make(map[string]atomicSite),
		operands: make(map[token.Pos]bool),
	}
	for _, pkg := range suite.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					expr := ast.Unparen(arg)
					if u, ok := expr.(*ast.UnaryExpr); ok && u.Op == token.AND {
						expr = ast.Unparen(u.X)
					}
					sel, ok := expr.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					field := selectedField(pkg.Info, sel)
					if field == nil {
						continue
					}
					key := objKey(field)
					if _, seen := out.fields[key]; !seen {
						out.fields[key] = atomicSite{
							pos:   pkg.Fset.Position(call.Pos()),
							owner: ownerName(field),
							name:  field.Name(),
						}
					}
					out.operands[sel.Pos()] = true
				}
				return true
			})
		}
	}
	return out
}
