package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotslice: no append-growth in a bounded hot loop. When the iteration
// count is syntactically evident — `for _, v := range xs` or
// `for i := 0; i < n; i++` — a slice built by repeated append re-allocates
// and copies O(log n) times per loop for no reason; declaring it with
// `make(T, 0, bound)` makes the loop allocation-free after the first call.
// The fix is suggested mechanically (-fix) when the bound expression is in
// scope at the declaration.
var HotSlice = &Analyzer{
	Name: "hotslice",
	Doc: "append-growth in a bounded hot loop without preallocation; " +
		"declare the slice with make(..., 0, bound) so the loop does not " +
		"re-allocate",
	Run: runHotSlice,
}

func runHotSlice(pass *Pass) error {
	h := hotData(pass.Suite)
	for _, hd := range h.declsIn(pass.Pkg) {
		checkLoopAppends(pass, hd)
	}
	return nil
}

// sliceDecl describes where and how a local slice variable was declared,
// for building the preallocation fix.
type sliceDecl struct {
	spec *ast.ValueSpec // `var x []T` form (no values)
	rhs  ast.Expr       // `x := []T{}` or `x := make([]T, 0)` right-hand side
	typ  ast.Expr       // the []T type expression
	pos  token.Pos      // declaration position
}

func checkLoopAppends(pass *Pass, hd hotDecl) {
	info := pass.Pkg.Info
	decls := growableSliceDecls(pass, hd.decl)
	seen := make(map[*ast.CallExpr]bool)
	ast.Inspect(hd.decl.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		var bound ast.Expr
		wrapLen := false
		switch loop := n.(type) {
		case *ast.RangeStmt:
			tv, ok := info.Types[loop.X]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Array, *types.Map:
			default:
				if p, ok := tv.Type.Underlying().(*types.Pointer); !ok {
					return true
				} else if _, ok := p.Elem().Underlying().(*types.Array); !ok {
					return true
				}
			}
			if !sideEffectFree(loop.X) {
				return true
			}
			body, bound, wrapLen = loop.Body, loop.X, true
		case *ast.ForStmt:
			cond, ok := loop.Cond.(*ast.BinaryExpr)
			if !ok || cond.Op != token.LSS || !sideEffectFree(cond.Y) {
				return true
			}
			body, bound = loop.Body, cond.Y
		default:
			return true
		}
		for _, ga := range loopAppends(info, body) {
			call, target := ga.call, ga.target
			if seen[call] {
				continue
			}
			d, ok := decls[target]
			if !ok || d.pos >= n.(ast.Stmt).Pos() {
				continue // not a plain local, or declared inside the loop
			}
			seen[call] = true
			boundText := types.ExprString(bound)
			if wrapLen {
				boundText = "len(" + boundText + ")"
			}
			msg := "append-growth in a bounded hot loop (hot via %s): preallocate %s with make(%s, 0, %s)"
			if fix := prealloc(pass, d, bound, boundText); fix != nil {
				pass.ReportFix(call.Pos(), fix, msg, hd.root, target.Name(), types.ExprString(d.typ), boundText)
			} else {
				pass.Reportf(call.Pos(), msg, hd.root, target.Name(), types.ExprString(d.typ), boundText)
			}
		}
		return true
	})
}

// growthSite is one `x = append(x, ...)` statement found inside a loop.
type growthSite struct {
	call   *ast.CallExpr
	target *types.Var
}

// loopAppends collects the append-growth statements lexically inside one
// loop body, descending through branches but not into nested loops (their
// iteration count is the product, not the bound) or function literals.
func loopAppends(info *types.Info, body *ast.BlockStmt) []growthSite {
	var out []growthSite
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false
		case ast.Stmt:
			if call, target := appendGrowth(info, n); call != nil {
				out = append(out, growthSite{call: call, target: target})
			}
		}
		return true
	})
	return out
}

// appendGrowth matches the statement form `x = append(x, ...)` and returns
// the append call and x's variable.
func appendGrowth(info *types.Info, stmt ast.Stmt) (*ast.CallExpr, *types.Var) {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, nil
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, nil
	}
	target, ok := info.Uses[lhs].(*types.Var)
	if !ok {
		return nil, nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return nil, nil
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || info.Uses[id] != types.Universe.Lookup("append") {
		return nil, nil
	}
	if first, ok := call.Args[0].(*ast.Ident); !ok || info.Uses[first] != target {
		return nil, nil
	}
	return call, target
}

// growableSliceDecls finds the local slice variables of decl declared with
// no capacity: `var x []T`, `x := []T{}`, `x := make([]T, 0)`.
func growableSliceDecls(pass *Pass, decl *ast.FuncDecl) map[*types.Var]sliceDecl {
	info := pass.Pkg.Info
	out := make(map[*types.Var]sliceDecl)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, s := range gd.Specs {
				spec, ok := s.(*ast.ValueSpec)
				if !ok || len(spec.Values) != 0 || len(spec.Names) != 1 {
					continue
				}
				if _, ok := spec.Type.(*ast.ArrayType); !ok || spec.Type.(*ast.ArrayType).Len != nil {
					continue
				}
				if v, ok := info.Defs[spec.Names[0]].(*types.Var); ok {
					out[v] = sliceDecl{spec: spec, typ: spec.Type, pos: spec.Pos()}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := info.Defs[id].(*types.Var)
			if !ok {
				return true
			}
			switch rhs := n.Rhs[0].(type) {
			case *ast.CompositeLit:
				if t, ok := rhs.Type.(*ast.ArrayType); ok && t.Len == nil && len(rhs.Elts) == 0 {
					out[v] = sliceDecl{rhs: rhs, typ: rhs.Type, pos: n.Pos()}
				}
			case *ast.CallExpr:
				if id, ok := rhs.Fun.(*ast.Ident); ok && id.Name == "make" &&
					info.Uses[id] == types.Universe.Lookup("make") && len(rhs.Args) == 2 {
					if t, ok := rhs.Args[0].(*ast.ArrayType); ok && t.Len == nil && isZeroLit(rhs.Args[1]) {
						out[v] = sliceDecl{rhs: rhs, typ: rhs.Args[0], pos: n.Pos()}
					}
				}
			}
		}
		return true
	})
	return out
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "0"
}

// sideEffectFree accepts the bound expressions safe to duplicate into a
// make capacity: identifiers, selector chains, and len() of those.
func sideEffectFree(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return true
	case *ast.BasicLit:
		return true
	case *ast.SelectorExpr:
		return sideEffectFree(e.X)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "len" && len(e.Args) == 1 {
			return sideEffectFree(e.Args[0])
		}
	}
	return false
}

// prealloc builds the make(..., 0, bound) fix when the bound's identifiers
// are all in scope at the declaration (declared before it); otherwise the
// finding ships without a fix.
func prealloc(pass *Pass, d sliceDecl, bound ast.Expr, boundText string) *SuggestedFix {
	ok := true
	ast.Inspect(bound, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent || !ok {
			return true
		}
		obj := pass.Pkg.Info.Uses[id]
		if obj == nil {
			return true // len, package qualifiers
		}
		if _, isVar := obj.(*types.Var); isVar && obj.Pos() >= d.pos {
			ok = false
		}
		return true
	})
	if !ok {
		return nil
	}
	makeText := "make(" + types.ExprString(d.typ) + ", 0, " + boundText + ")"
	var e TextEdit
	switch {
	case d.spec != nil:
		e = pass.edit(d.spec.Pos(), d.spec.End(), d.spec.Names[0].Name+" = "+makeText)
	case d.rhs != nil:
		e = pass.edit(d.rhs.Pos(), d.rhs.End(), makeText)
	default:
		return nil
	}
	return &SuggestedFix{
		Message: "preallocate with " + makeText,
		Edits:   []TextEdit{e},
	}
}
