package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WireTypes guards the cluster wire protocol. Blocks and cliques cross the
// coordinator/worker boundary through encoding/gob (internal/cluster/wire.go)
// with a CRC-32 over the *semantic* payload — so a field gob silently drops
// is invisible to the checksum and to the tests that compare in-process
// results, and surfaces only as a wrong clique set on a real cluster. The
// analyzer inspects every type passed to a gob Encode/Decode/Register call
// in the package and reports:
//
//   - unexported struct fields (gob silently skips them),
//   - function- and channel-typed fields (gob refuses them at runtime,
//     turning the first real task into a transport error),
//   - interface-typed fields when the package never calls gob.Register
//     (decode fails on the first concrete value),
//   - structs with no exported fields at all (the value encodes as nothing).
//
// Types that implement GobEncoder or encoding.BinaryMarshaler own their
// encoding and are exempt.
var WireTypes = &Analyzer{
	Name: "wiretypes",
	Doc: "types crossing the gob wire protocol must round-trip losslessly: " +
		"no unexported, func, chan, or unregistered interface fields",
	Run: runWireTypes,
}

func runWireTypes(pass *Pass) error {
	info := pass.Pkg.Info

	// Does the package register any concrete implementations?
	hasRegister := false
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeOf(info, call); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "encoding/gob" && (fn.Name() == "Register" || fn.Name() == "RegisterName") {
				hasRegister = true
			}
			return true
		})
	}

	checked := make(map[*types.Named]bool)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(info, call)
			if fn == nil || len(call.Args) == 0 {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() == nil {
				return true
			}
			recv := sig.Recv().Type()
			isEnc := isNamed(recv, "encoding/gob", "Encoder") && fn.Name() == "Encode"
			isDec := isNamed(recv, "encoding/gob", "Decoder") && fn.Name() == "Decode"
			if !isEnc && !isDec {
				return true
			}
			tv, ok := info.Types[call.Args[0]]
			if !ok {
				return true
			}
			t := tv.Type
			// Unwrap the &v / *v the caller hands to gob.
			for {
				if p, okp := types.Unalias(t).(*types.Pointer); okp {
					t = p.Elem()
					continue
				}
				break
			}
			named := namedType(t)
			if named == nil || checked[named] {
				return true
			}
			checked[named] = true
			checkWireType(pass, call.Pos(), named, hasRegister)
			return true
		})
	}
	return nil
}

// checkWireType validates one type against gob's silent-loss rules,
// recursing through exported struct fields, slices, arrays, maps and
// pointers.
func checkWireType(pass *Pass, callPos token.Pos, named *types.Named, hasRegister bool) {
	seen := make(map[types.Type]bool)
	var walk func(t types.Type, path string)
	walk = func(t types.Type, path string) {
		t = types.Unalias(t)
		if seen[t] {
			return
		}
		seen[t] = true
		if n, ok := t.(*types.Named); ok {
			if selfEncoding(n) {
				return
			}
			walk(n.Underlying(), path)
			return
		}
		switch u := t.(type) {
		case *types.Pointer:
			walk(u.Elem(), path)
		case *types.Slice:
			walk(u.Elem(), path+"[]")
		case *types.Array:
			walk(u.Elem(), path+"[]")
		case *types.Map:
			walk(u.Key(), path+" map key")
			walk(u.Elem(), path+" map value")
		case *types.Chan:
			pass.Reportf(callPos,
				"wire type %s: %s is a channel; gob cannot encode it and the first task will fail in flight",
				named.Obj().Name(), describe(path, "field"))
		case *types.Signature:
			pass.Reportf(callPos,
				"wire type %s: %s is a function; gob cannot encode it and the first task will fail in flight",
				named.Obj().Name(), describe(path, "field"))
		case *types.Interface:
			if u.NumMethods() == 0 && path == "" {
				return // Encode(any) at the top level is gob's own API shape
			}
			if !hasRegister {
				pass.Reportf(callPos,
					"wire type %s: %s is an interface but the package never calls gob.Register; decoding the first concrete value will fail",
					named.Obj().Name(), describe(path, "field"))
			}
		case *types.Struct:
			exported := 0
			for i := 0; i < u.NumFields(); i++ {
				f := u.Field(i)
				if !f.Exported() {
					pass.Reportf(callPos,
						"wire type %s: unexported field %s is silently dropped by gob (invisible to the CRC and to same-process tests)",
						named.Obj().Name(), path+"."+f.Name())
					continue
				}
				exported++
				walk(f.Type(), path+"."+f.Name())
			}
			if exported == 0 && u.NumFields() > 0 {
				pass.Reportf(callPos,
					"wire type %s%s has no exported fields; gob encodes it as nothing",
					named.Obj().Name(), path)
			}
		}
	}
	walk(named, "")
}

func describe(path, kind string) string {
	if path == "" {
		if kind == "" {
			return "the value"
		}
		return "the " + kind
	}
	return "field " + path
}

// selfEncoding reports whether the type (or its pointer) implements
// GobEncoder/GobDecoder or encoding.BinaryMarshaler/BinaryUnmarshaler, in
// which case gob delegates and the field rules do not apply.
func selfEncoding(n *types.Named) bool {
	for _, name := range []string{"GobEncode", "GobDecode", "MarshalBinary", "UnmarshalBinary"} {
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(n), true, n.Obj().Pkg(), name)
		if _, ok := obj.(*types.Func); ok {
			return true
		}
	}
	return false
}
