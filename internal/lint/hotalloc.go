package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotalloc: no unbudgeted heap allocation in a hot function. The paper's
// cost model is per-recursion-node — §5's analysis charges every node of
// the Bron–Kerbosch tree a constant-ish amount of work — so an allocation
// that the compiler proves escapes inside the hot set multiplies with the
// node count and shows up directly in enumeration throughput. The gate is
// a reconciliation, not a ban: sites listed in .mcevet/allocbudget.json
// (per-subproblem snapshots, one-time label stores) pass, new sites fail,
// and entries with no remaining site are flagged as stale so the budget
// never rots into a waiver.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "heap allocation in a hot-path function that is not reconciled " +
		"against the committed allocation budget (.mcevet/allocbudget.json); " +
		"run `mcevet -update-allocbudget` to accept intentional sites",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	h := hotData(pass.Suite)
	decls := h.declsIn(pass.Pkg)
	budget, err := budgetFor(pass.Suite, pass.Pkg)
	if err != nil {
		return err
	}

	observed := make(map[string]int)
	if len(decls) > 0 {
		esc, err := escapeFor(pass.Suite, pass.Pkg)
		if err != nil {
			return err
		}
		for _, hd := range decls {
			fnName := budgetFuncName(hd.fn)
			for _, site := range esc.byFunc[hd.key] {
				if captureClaimed(pass.Pkg, hd.decl, site) {
					continue // reported by hotbox as a closure capture
				}
				key := budgetKey(pass.Pkg.PkgPath, fnName, site.msg)
				observed[key]++
				if observed[key] <= budget.counts[key] {
					continue
				}
				pass.Reportf(posFor(pass.Pkg, site.pos),
					"hot-path allocation not in budget: %s in %s (hot via %s); run mcevet -update-allocbudget to accept it",
					site.msg, funcDisplay(hd.fn), hd.root)
			}
		}
	}

	// Stale entries: budget lines scoped to this package with no matching
	// site left — the allocation was fixed (or the annotation removed) but
	// the waiver stayed behind. One case is undecidable on a partial load:
	// a function that still exists but is not hot *here* may be heated by
	// an unloaded importer (bitset.Slice is hot only via mcealg's roots),
	// so it is skipped unless the load was importer-closed; the full-tree
	// drift gate (`make allocbudget-check`, CI) owns that case.
	hotNames := make(map[string]bool, len(decls))
	for _, hd := range decls {
		hotNames[budgetFuncName(hd.fn)] = true
	}
	var declaredNames map[string]bool // built lazily: only partial loads consult it
	for _, key := range budget.entriesFor(pass.Pkg.PkgPath) {
		if observed[key] >= budget.counts[key] {
			continue
		}
		if fn := budgetFuncOf(key, pass.Pkg.PkgPath); !hotNames[fn] && !pass.Pkg.ImporterClosed {
			if declaredNames == nil {
				declaredNames = declaredFuncNames(pass.Pkg)
			}
			if declaredNames[fn] {
				continue
			}
		}
		detail := "fewer sites than budgeted"
		if observed[key] == 0 {
			detail = "no such allocation site remains"
		}
		pass.diags = append(pass.diags, Diagnostic{
			Analyzer: pass.Analyzer.Name,
			Pos:      token.Position{Filename: budget.path, Line: budget.lineOf(key)},
			Message: "stale allocation budget entry " + key + ": " + detail +
				"; run mcevet -update-allocbudget to drop it",
		})
	}
	return nil
}

// budgetFuncOf extracts the function segment of a budget key
// ("<pkgpath>::<func>::<msg>") scoped to pkgPath.
func budgetFuncOf(key, pkgPath string) string {
	rest := strings.TrimPrefix(key, pkgPath+"::")
	if i := strings.Index(rest, "::"); i >= 0 {
		return rest[:i]
	}
	return rest
}

// declaredFuncNames collects every function declared in pkg under its
// budget-key name ("New", "(*Set).AndCount").
func declaredFuncNames(pkg *Package) map[string]bool {
	names := make(map[string]bool)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				names[budgetFuncName(fn)] = true
			}
		}
	}
	return names
}

// posFor converts an absolute compiler position back to a token.Pos in the
// package's file set, best effort (falls back to the file start when the
// offset cannot be recovered).
func posFor(pkg *Package, p token.Position) token.Pos {
	var best token.Pos = token.NoPos
	pkg.Fset.Iterate(func(f *token.File) bool {
		if f.Name() != p.Filename {
			return true
		}
		if p.Line >= 1 && p.Line <= f.LineCount() {
			best = f.LineStart(p.Line)
			if p.Column > 1 {
				pos := best + token.Pos(p.Column-1)
				if int(pos) < f.Base()+f.Size() && pkg.Fset.Position(pos).Line == p.Line {
					best = pos
				}
			}
		} else {
			best = f.Pos(0)
		}
		return false
	})
	return best
}
