package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoroutineLeak flags goroutine literals that pump channels with no way to
// stop. A `go func` literal that sends to or receives from a channel
// captured from the enclosing scope blocks forever once its peer stops
// participating — the classic leak that accumulates across Enumerate calls
// in a long-lived server. The literal passes when it carries any of the
// accepted cancellation mechanisms:
//
//   - a select with a case receiving from a context's Done() channel,
//   - a select with a case receiving from a done-style channel (element
//     type struct{}) or with a default (non-blocking),
//   - ranging over a captured channel (terminates when the producer closes),
//   - a direct receive from a struct{}-element channel (a blocking wait for
//     a done signal is itself the termination path).
//
// Channel operations inside defer statements are exempt: they run at
// goroutine exit (semaphore releases, wg tokens), after the lifetime this
// analyzer reasons about.
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc: "a go func literal that sends/receives on captured channels must " +
		"select on a ctx or done channel, or range over a closable channel",
	Run: runGoroutineLeak,
}

func runGoroutineLeak(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			captured := capturedChannelOps(info, lit)
			if len(captured) == 0 {
				return true
			}
			if hasCancellationPath(info, lit) {
				return true
			}
			pass.Reportf(gs.Pos(),
				"goroutine blocks on captured channel %s with no cancellation path (no ctx.Done/done-channel select, no range over a closable channel)",
				strings.Join(captured, ", "))
			return true
		})
	}
	return nil
}

// capturedChannelOps lists (by name) the captured channels the literal
// blocks on outside defer statements.
func capturedChannelOps(info *types.Info, lit *ast.FuncLit) []string {
	isCaptured := func(e ast.Expr) (*types.Var, bool) {
		v := usedVar(info, e)
		if v == nil || !isChanType(v.Type()) {
			return nil, false
		}
		// Captured: declared outside the literal's extent. Parameters and
		// locals of the literal are its own lifetime to manage.
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return nil, false
		}
		return v, true
	}
	seen := make(map[*types.Var]bool)
	var names []string
	add := func(v *types.Var) {
		if !seen[v] {
			seen[v] = true
			names = append(names, v.Name())
		}
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.DeferStmt:
				return false // exit-time cleanup, out of scope
			case *ast.SendStmt:
				if v, ok := isCaptured(m.Chan); ok {
					add(v)
				}
			case *ast.UnaryExpr:
				if m.Op.String() == "<-" {
					if v, ok := isCaptured(m.X); ok {
						// A bare receive from a struct{} channel is a wait
						// for a done signal, not a pump — the accepted
						// termination idiom, never a finding.
						if !isDoneChan(v.Type()) {
							add(v)
						}
					}
				}
			}
			return true
		})
	}
	walk(lit.Body)
	return names
}

// isDoneChan reports whether t is a channel of struct{} (the done-channel
// convention).
func isDoneChan(t types.Type) bool {
	ch, ok := types.Unalias(t).Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// hasCancellationPath reports whether the literal body contains any accepted
// termination mechanism.
func hasCancellationPath(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && isChanType(tv.Type) {
				found = true // terminates when the channel is closed
				return false
			}
		case *ast.SelectStmt:
			for _, cl := range n.Body.List {
				comm, ok := cl.(*ast.CommClause)
				if !ok {
					continue
				}
				if comm.Comm == nil {
					found = true // default case: non-blocking
					return false
				}
				if recvChan := commRecvChan(comm.Comm); recvChan != nil {
					if isDoneCall(info, recvChan) {
						found = true
						return false
					}
					if tv, ok := info.Types[recvChan]; ok && isDoneChan(tv.Type) {
						found = true
						return false
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				if isDoneCall(info, n.X) {
					found = true
					return false
				}
				if tv, ok := info.Types[n.X]; ok && isDoneChan(tv.Type) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// commRecvChan extracts the channel expression of a receive comm clause.
func commRecvChan(s ast.Stmt) ast.Expr {
	var rhs ast.Expr
	switch s := s.(type) {
	case *ast.ExprStmt:
		rhs = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			rhs = s.Rhs[0]
		}
	}
	u, ok := ast.Unparen(rhs).(*ast.UnaryExpr)
	if !ok || u.Op.String() != "<-" {
		return nil
	}
	return u.X
}

// isDoneCall reports whether e is a call of a method named Done returning a
// receive-only channel — context.Context.Done and look-alikes.
func isDoneCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeOf(info, call)
	if fn == nil || fn.Name() != "Done" {
		return false
	}
	if tv, ok := info.Types[call]; ok {
		return isChanType(tv.Type)
	}
	return false
}
