package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// The escape-analysis ingester: hotalloc and hotbox need ground truth about
// which expressions the compiler actually heap-allocates, and the compiler
// already computes it — `go build -gcflags=-m=2` prints every escape
// decision. This file shells out per package, parses the diagnostics, and
// joins them to the enclosing function declarations so the analyzers can
// intersect them with the hot set.
//
// Two properties of the toolchain make this cheap and reliable:
//
//   - the diagnostics are replayed from the build cache, so after the first
//     compile a rerun costs one cache probe, not a rebuild (CI reuses the
//     ordinary go-build cache for the same reason);
//   - a file-list build ("go build a.go b.go") gets the same treatment, so
//     fixture packages under testdata and real module packages go through
//     one code path.
//
// Only the package's non-test files are built: the go tool refuses _test.go
// files in a file-list build, and the hot paths live in the regular
// compilation unit anyway.

// escapeSite is one heap-allocation decision of the compiler: an expression
// that escapes to the heap or a variable moved there.
type escapeSite struct {
	pos token.Position // absolute filename, compiler line/col
	msg string         // e.g. "make([]int32, n) escapes to heap"
}

// escapeData is the parsed escape analysis of one package, joined to its
// function declarations.
type escapeData struct {
	byFunc map[string][]escapeSite // objKey of enclosing FuncDecl -> sites
}

// escapeLineRE matches one compiler diagnostic line: file:line:col: message.
var escapeLineRE = regexp.MustCompile(`^(.+?\.go):(\d+):(\d+): (.*)$`)

// parseEscapeOutput extracts the heap decisions from -m=2 output. dir
// resolves the compiler's cwd-relative positions. -m=2 prints each escaping
// expression twice (once with a trailing colon introducing "flow:"
// explanation lines, once bare); the explanations are skipped and the
// duplicates collapse through the seen set.
func parseEscapeOutput(out []byte, dir string) []escapeSite {
	var sites []escapeSite
	seen := make(map[string]bool)
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeLineRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if t := strings.TrimLeft(msg, " "); t != msg {
			// Indented detail ("flow: ...", "from ...") under a header line.
			continue
		}
		if strings.HasSuffix(msg, ":") {
			// An -m=2 explanation header ("v escapes to heap:"); the -m=1
			// decision line follows separately — for a moved variable it is
			// "moved to heap: v", so stripping the colon instead of skipping
			// would invent a second site at the same position.
			continue
		}
		if !strings.HasSuffix(msg, " escapes to heap") && !strings.HasPrefix(msg, "moved to heap: ") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		key := file + ":" + m[2] + ":" + m[3] + ":" + msg
		if seen[key] {
			continue
		}
		seen[key] = true
		line, _ := atoi(m[2])
		col, _ := atoi(m[3])
		sites = append(sites, escapeSite{
			pos: token.Position{Filename: file, Line: line, Column: col},
			msg: msg,
		})
	}
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.msg < b.msg
	})
	return sites
}

// atoi is strconv.Atoi without the error type in the hot import set.
func atoi(s string) (int, bool) {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// runEscapeBuild compiles the package's non-test files with -gcflags=-m=2
// and returns the parsed heap decisions. Packages with no non-test files
// (external test packages) yield no data.
func runEscapeBuild(pkg *Package) ([]escapeSite, error) {
	var files []string
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Base(name))
	}
	if len(files) == 0 {
		return nil, nil
	}
	sort.Strings(files)
	args := []string{"build", "-gcflags=-m=2"}
	if pkg.Types.Name() == "main" {
		// A main-package file list would drop a binary in pkg.Dir.
		args = append(args, "-o", os.DevNull)
	}
	args = append(args, files...)
	cmd := exec.Command("go", args...)
	cmd.Dir = pkg.Dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: escape analysis of %s: go build -gcflags=-m=2: %v\n%s",
			pkg.PkgPath, err, strings.TrimSpace(out.String()))
	}
	return parseEscapeOutput(out.Bytes(), pkg.Dir), nil
}

// escapeFor returns pkg's escape data, running the compiler on first use
// and memoising per package for the whole suite.
func escapeFor(s *Suite, pkg *Package) (*escapeData, error) {
	type result struct {
		data *escapeData
		err  error
	}
	r := s.Memo("escape:"+pkg.PkgPath, func() any {
		sites, err := runEscapeBuild(pkg)
		if err != nil {
			return result{err: err}
		}
		return result{data: joinEscapes(pkg, sites)}
	}).(result)
	return r.data, r.err
}

// joinEscapes attributes each site to the FuncDecl whose body spans it
// (sites inside function literals land on the enclosing declaration, same
// attribution the call graph uses). Sites outside any declaration —
// package-level initialisers — are dropped: they run once, not per
// enumeration node.
func joinEscapes(pkg *Package, sites []escapeSite) *escapeData {
	type span struct {
		start, end int // line range, inclusive
		key        string
	}
	spans := make(map[string][]span) // filename -> decl spans
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			start := pkg.Fset.Position(fd.Pos())
			end := pkg.Fset.Position(fd.End())
			spans[start.Filename] = append(spans[start.Filename], span{
				start: start.Line,
				end:   end.Line,
				key:   objKey(fn),
			})
		}
	}
	data := &escapeData{byFunc: make(map[string][]escapeSite)}
	for _, site := range sites {
		for _, sp := range spans[site.pos.Filename] {
			if site.pos.Line >= sp.start && site.pos.Line <= sp.end {
				data.byFunc[sp.key] = append(data.byFunc[sp.key], site)
				break
			}
		}
	}
	return data
}
