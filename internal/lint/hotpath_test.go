package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The perf-layer engine tests: the -m=2 parser, the nearest-ancestor budget
// resolution, and the hot set crossing package boundaries through the
// string-keyed call graph — the same two-views identity problem the other
// fact passes solve, exercised here end to end against the real toolchain.

func TestParseEscapeOutput(t *testing.T) {
	out := strings.Join([]string{
		"# tmpmod/lib",
		"lib/lib.go:4:6: can inline Grow with cost 12",
		"lib/lib.go:9:6: leaking param: xs to result ~r0 level=0",
		"lib/lib.go:10:12: make([]int, n) escapes to heap:",
		"lib/lib.go:10:12:   flow: {heap} = &{storage for make([]int, n)}:",
		"lib/lib.go:10:12:     from make([]int, n) (spill) at lib/lib.go:10:12",
		"lib/lib.go:10:12: make([]int, n) escapes to heap",
		"lib/lib.go:12:2: v escapes to heap:",
		"lib/lib.go:12:2: moved to heap: v",
		"lib/lib.go:14:9: new(T) does not escape",
	}, "\n")
	sites := parseEscapeOutput([]byte(out), "/mod")
	if len(sites) != 2 {
		t.Fatalf("parsed %d sites, want 2: %+v", len(sites), sites)
	}
	if sites[0].msg != "make([]int, n) escapes to heap" || sites[0].pos.Line != 10 {
		t.Errorf("sites[0] = %+v, want the make escape at line 10", sites[0])
	}
	if sites[1].msg != "moved to heap: v" || sites[1].pos.Line != 12 {
		t.Errorf("sites[1] = %+v, want the moved-to-heap at line 12", sites[1])
	}
	for _, s := range sites {
		if s.pos.Filename != filepath.Join("/mod", "lib", "lib.go") {
			t.Errorf("site %+v: relative path not resolved against the build dir", s)
		}
	}
}

func TestFindBudgetFileWalksUp(t *testing.T) {
	root := t.TempDir()
	deep := filepath.Join(root, "internal", "mcealg")
	if err := os.MkdirAll(deep, 0o755); err != nil {
		t.Fatal(err)
	}
	if got := findBudgetFile(deep); got != "" {
		t.Fatalf("findBudgetFile with no budget = %q, want empty", got)
	}
	path := filepath.Join(root, DefaultBudgetPath)
	entries := []BudgetEntry{
		{Site: "mce/internal/mcealg::(*parWorker).split::make([]int32, n) escapes to heap", Count: 2, Note: "donation snapshot"},
	}
	if err := WriteAllocBudget(path, entries); err != nil {
		t.Fatal(err)
	}
	if got := findBudgetFile(deep); got != path {
		t.Fatalf("findBudgetFile = %q, want %q", got, path)
	}

	b, err := loadBudget(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.counts[entries[0].Site] != 2 {
		t.Errorf("count = %d, want 2", b.counts[entries[0].Site])
	}
	if line := b.lineOf(entries[0].Site); line <= 1 {
		t.Errorf("lineOf placed the entry at line %d, want a line inside the file", line)
	}
	scoped := b.entriesFor("mce/internal/mcealg")
	if len(scoped) != 1 {
		t.Errorf("entriesFor returned %v, want the one mcealg entry", scoped)
	}
	if len(b.entriesFor("mce/internal/mcealg2")) != 0 || len(b.entriesFor("mce/internal")) != 0 {
		t.Error("entriesFor must match the package path exactly, not by prefix")
	}

	// Round trip through the exported loader, preserving notes.
	loaded, err := LoadAllocBudget(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || loaded[0].Note != "donation snapshot" {
		t.Errorf("LoadAllocBudget = %+v, want the written entry with its note", loaded)
	}
	if missing, err := LoadAllocBudget(filepath.Join(root, "nope.json")); err != nil || missing != nil {
		t.Errorf("LoadAllocBudget on a missing file = %v, %v; want empty, nil", missing, err)
	}
}

// hotTempModule is a two-package module where the root annotation lives in
// the importer and the allocations live in the dependency.
func hotTempModule() map[string]string {
	return map[string]string{
		"hot/hot.go": `package hot

import "tmpmod/alloc"

// Drive is the enumeration root of this module.
//
//mce:hotpath test root
func Drive(n int) int {
	return len(alloc.Grow(n)) + alloc.Setup(n)
}
`,
		"alloc/alloc.go": `package alloc

// Grow is hot via hot.Drive and allocates.
//
//go:noinline
func Grow(n int) []int {
	return make([]int, n)
}

// Setup is reachable but pruned by the coldpath annotation.
//
//mce:coldpath per-run setup
//go:noinline
func Setup(n int) int {
	return len(make([]byte, n))
}
`,
	}
}

func TestHotPathFactsCrossPackages(t *testing.T) {
	pkgs := loadTempModule(t, hotTempModule())
	suite := newSuite(pkgs)
	h := hotData(suite)

	grow := lookupFunc(t, pkgs, "tmpmod/alloc", "Grow")
	setup := lookupFunc(t, pkgs, "tmpmod/alloc", "Setup")
	drive := lookupFunc(t, pkgs, "tmpmod/hot", "Drive")

	if _, ok := h.hot[objKey(drive)]; !ok {
		t.Error("the annotated root is not in the hot set")
	}
	if root, ok := h.hot[objKey(grow)]; !ok || root != "hot.Drive" {
		t.Errorf("alloc.Grow hot=%v root=%q, want hot via hot.Drive", ok, root)
	}
	if _, ok := h.hot[objKey(setup)]; ok {
		t.Error("coldpath-annotated alloc.Setup leaked into the hot set")
	}

	var fact HotPathFact
	if !suite.facts.imp(grow, &fact) || fact.Root != "hot.Drive" {
		t.Errorf("HotPathFact on alloc.Grow = %+v, want Root hot.Drive", fact)
	}
}

func TestHotAllocCrossPackageBudgetCycle(t *testing.T) {
	dir := writeTempModule(t, hotTempModule())
	load := func() []*Package {
		pkgs, err := Load(dir, "./...")
		if err != nil {
			t.Fatalf("loading temp module: %v", err)
		}
		return pkgs
	}

	// No budget file: the dependency's hot allocation is flagged, the
	// coldpath one is not.
	diags, err := RunAnalyzers(load(), []*Analyzer{HotAlloc})
	if err != nil {
		t.Fatalf("hotalloc: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d finding(s) without a budget, want 1:\n%v", len(diags), diags)
	}
	msg := diags[0].Message
	for _, frag := range []string{"make([]int, n) escapes to heap", "alloc.Grow", "hot via hot.Drive"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("finding %q is missing %q", msg, frag)
		}
	}

	// Accept the site the way the driver does: collect and commit.
	entries, err := CollectAllocBudget(load(), nil)
	if err != nil {
		t.Fatalf("CollectAllocBudget: %v", err)
	}
	if len(entries) != 1 || entries[0].Site != "tmpmod/alloc::Grow::make([]int, n) escapes to heap" {
		t.Fatalf("collected %+v, want the one Grow site", entries)
	}
	budgetPath := filepath.Join(dir, DefaultBudgetPath)
	if err := WriteAllocBudget(budgetPath, entries); err != nil {
		t.Fatal(err)
	}
	diags, err = RunAnalyzers(load(), []*Analyzer{HotAlloc})
	if err != nil {
		t.Fatalf("hotalloc with budget: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("budgeted run still has findings:\n%v", diags)
	}

	// A partial load — the alloc package alone, without package hot — must
	// not misread the budget entry as stale: nothing in the load heats
	// Grow, but the importer holding the hot root simply is not in the
	// unit, and staleness is only decidable under an importer-closed view.
	partial, err := Load(dir, "./alloc")
	if err != nil {
		t.Fatalf("partial load: %v", err)
	}
	diags, err = RunAnalyzers(partial, []*Analyzer{HotAlloc})
	if err != nil {
		t.Fatalf("hotalloc on partial load: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("partial load misreports staleness:\n%v", diags)
	}

	// Fix the allocation (drop the hot call): the budget entry goes stale
	// and the gate fails again until the file is regenerated.
	hotSrc := `package hot

import "tmpmod/alloc"

// Drive is the enumeration root of this module.
//
//mce:hotpath test root
func Drive(n int) int {
	return alloc.Setup(n)
}
`
	if err := os.WriteFile(filepath.Join(dir, "hot", "hot.go"), []byte(hotSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err = RunAnalyzers(load(), []*Analyzer{HotAlloc})
	if err != nil {
		t.Fatalf("hotalloc after fix: %v", err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "stale allocation budget entry") {
		t.Fatalf("got %v, want one stale-entry finding", diags)
	}
	if diags[0].Pos.Filename != budgetPath {
		t.Errorf("stale finding points at %s, want the budget file %s", diags[0].Pos.Filename, budgetPath)
	}
}
