package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked Go package, the unit handed to analyzers.
type Package struct {
	// PkgPath is the import path ("mce/internal/cluster").
	PkgPath string
	// Dir is the directory holding the sources.
	Dir string
	// Fset positions every file of the load; shared across packages of one
	// Load call so diagnostics from different packages sort together.
	Fset  *token.FileSet
	Files []*ast.File
	// Types and Info carry the go/types results; analyzers rely on both.
	Types *types.Package
	Info  *types.Info
}

// exportLookup resolves import paths to gc export data by shelling out to
// `go list -export`. The toolchain writes export data into the build cache,
// so the lookup works offline and needs no GOPATH layout — exactly what a
// vendorless module on an air-gapped builder needs. Results are cached per
// importer, and the underlying gc importer additionally caches decoded
// packages, so each dependency costs one subprocess per process.
type exportLookup struct {
	dir string

	mu    sync.Mutex
	files map[string]string
}

func (l *exportLookup) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.files[path]
	l.mu.Unlock()
	if !ok {
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
		cmd.Dir = l.dir
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("lint: export data for %s: %v (%s)", path, err, strings.TrimSpace(stderr.String()))
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("lint: no export data for %s (does it build?)", path)
		}
		l.mu.Lock()
		l.files[path] = file
		l.mu.Unlock()
	}
	return os.Open(file)
}

// newImporter returns a types.Importer that resolves every import — stdlib
// and module-internal alike — through the build cache's export data. dir must
// be inside the module so `go list` sees the right go.mod.
func newImporter(dir string, fset *token.FileSet) types.Importer {
	l := &exportLookup{dir: dir, files: make(map[string]string)}
	return importer.ForCompiler(fset, "gc", l.lookup)
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	Error      *struct{ Err string }
}

// Load lists the patterns with the go tool and type-checks every matched
// package (non-test files only, mirroring `go vet`'s default unit). dir is
// the directory the patterns are resolved in, typically the module root.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v (%s)", strings.Join(patterns, " "), err, strings.TrimSpace(stderr.String()))
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		listed = append(listed, p)
	}

	fset := token.NewFileSet()
	imp := newImporter(dir, fset)
	var pkgs []*Package
	for _, lp := range listed {
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := check(lp.ImportPath, lp.Dir, fset, imp, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// LoadFiles parses and type-checks an explicit file list as one package —
// the fixture path used by the analyzer tests, whose sources live under
// testdata where the go tool does not list them. moduleDir anchors import
// resolution (fixtures import both stdlib and mce packages).
func LoadFiles(moduleDir string, paths ...string) (*Package, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("lint: LoadFiles needs at least one file")
	}
	fset := token.NewFileSet()
	imp := newImporter(moduleDir, fset)
	pkg, err := check("fixture", filepath.Dir(paths[0]), fset, imp, paths)
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

// check parses files and runs the type checker, returning a ready Package.
func check(pkgPath, dir string, fset *token.FileSet, imp types.Importer, paths []string) (*Package, error) {
	var files []*ast.File
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
