package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked Go package, the unit handed to analyzers.
type Package struct {
	// PkgPath is the import path ("mce/internal/cluster").
	PkgPath string
	// Dir is the directory holding the sources.
	Dir string
	// Fset positions every file of the load; shared across packages of one
	// Load call so diagnostics from different packages sort together.
	Fset  *token.FileSet
	Files []*ast.File
	// Types and Info carry the go/types results; analyzers rely on both.
	Types *types.Package
	Info  *types.Info
	// ImporterClosed records that the load pattern covered the whole module
	// ("./..."), so every importer of this package is also in the load. A
	// cross-package property — "nothing heats this function" — is only
	// decidable under a closed view; hotalloc's stale-entry check consults
	// this to stay silent on partial loads, where an unloaded importer may
	// hold the hot root.
	ImporterClosed bool
}

// exportLookup resolves import paths to gc export data by shelling out to
// `go list -export`. The toolchain writes export data into the build cache,
// so the lookup works offline and needs no GOPATH layout — exactly what a
// vendorless module on an air-gapped builder needs. Results are cached per
// importer, and the underlying gc importer additionally caches decoded
// packages, so each dependency costs one subprocess per process.
type exportLookup struct {
	dir string

	mu    sync.Mutex
	files map[string]string
}

func (l *exportLookup) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.files[path]
	l.mu.Unlock()
	if !ok {
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
		cmd.Dir = l.dir
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("lint: export data for %s: %v (%s)", path, err, strings.TrimSpace(stderr.String()))
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("lint: no export data for %s (does it build?)", path)
		}
		l.mu.Lock()
		l.files[path] = file
		l.mu.Unlock()
	}
	return os.Open(file)
}

// newImporter returns a types.Importer that resolves every import — stdlib
// and module-internal alike — through the build cache's export data. dir must
// be inside the module so `go list` sees the right go.mod.
func newImporter(dir string, fset *token.FileSet) types.Importer {
	l := &exportLookup{dir: dir, files: make(map[string]string)}
	return importer.ForCompiler(fset, "gc", l.lookup)
}

// preloadImporter resolves a fixed set of import paths to already-checked
// packages and delegates everything else. It exists for external test
// packages (package foo_test): their import of the package under test must
// see the *test-augmented* view — exported helpers declared in in-package
// _test.go files are absent from the build cache's export data, which only
// knows the non-test compilation unit.
type preloadImporter struct {
	preloaded map[string]*types.Package
	next      types.Importer
}

func (p *preloadImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := p.preloaded[path]; ok {
		return pkg, nil
	}
	return p.next.Import(path)
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	Standard     bool
	Error        *struct{ Err string }
}

// Load lists the patterns with the go tool and type-checks every matched
// package (non-test files only, mirroring `go vet`'s default unit). dir is
// the directory the patterns are resolved in, typically the module root.
func Load(dir string, patterns ...string) ([]*Package, error) {
	return LoadTests(dir, false, patterns...)
}

// LoadTests is Load with control over the compilation unit: with tests set,
// in-package _test.go files are type-checked into their package (the go
// test unit) and external test packages (package foo_test) are loaded as
// their own packages with PkgPath "<importpath>_test". Most of the repo's
// concurrency machinery is exercised — and often *declared* — in test
// files, so an analysis run that skips them misses exactly the goroutine
// and locking shapes the concurrency analyzers exist for.
func LoadTests(dir string, tests bool, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	closed := true
	for _, p := range patterns {
		if p != "./..." {
			closed = false
		}
	}
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v (%s)", strings.Join(patterns, " "), err, strings.TrimSpace(stderr.String()))
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		listed = append(listed, p)
	}

	fset := token.NewFileSet()
	base := newImporter(dir, fset)
	// Without tests every package resolves its imports through export data —
	// the gc importer's package cache keeps identities consistent. With
	// tests, the test-augmented units are not in the build cache, so the
	// loader mirrors `go test`'s model instead: listed packages are checked
	// in dependency order and every checked result is preloaded, so an
	// in-module import always resolves to the source-checked (augmented)
	// view and export data is only consulted for packages outside the load
	// (stdlib), which can never reference back into the module. This keeps
	// one identity per dependency: mixing a source-checked view with an
	// export-data twin inside one type-check is a type error.
	imp := types.Importer(base)
	var preloaded map[string]*types.Package
	if tests {
		listed = listDependencyOrder(listed)
		preloaded = make(map[string]*types.Package)
		imp = &preloadImporter{preloaded: preloaded, next: base}
	}
	var pkgs []*Package
	for _, lp := range listed {
		if lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		srcs := lp.GoFiles
		if tests {
			srcs = append(append([]string(nil), lp.GoFiles...), lp.TestGoFiles...)
		}
		if len(srcs) > 0 {
			files := make([]string, len(srcs))
			for i, f := range srcs {
				files[i] = filepath.Join(lp.Dir, f)
			}
			pkg, err := check(lp.ImportPath, lp.Dir, fset, imp, files)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
			if preloaded != nil {
				preloaded[lp.ImportPath] = pkg.Types
			}
		}
	}
	// External test packages go in a second pass, once every base package
	// has been checked and preloaded: an xtest may import any other listed
	// package (test helpers like runlog/faultfs), and mixing a preloaded
	// view of its own package with an export-data view of a helper that
	// itself references that package would split the type identities.
	if tests {
		for _, lp := range listed {
			if lp.Standard || len(lp.XTestGoFiles) == 0 {
				continue
			}
			files := make([]string, len(lp.XTestGoFiles))
			for i, f := range lp.XTestGoFiles {
				files[i] = filepath.Join(lp.Dir, f)
			}
			pkg, err := check(lp.ImportPath+"_test", lp.Dir, fset, imp, files)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	for _, pkg := range pkgs {
		pkg.ImporterClosed = closed
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// listDependencyOrder sorts the listed packages so that imports come before
// importers, considering both regular and in-package-test imports (the test
// unit of a package is checked together with it). Only edges within the
// listed set matter — everything else resolves through export data. Cycles
// through test imports (A's tests import B, B's tests import A — legal,
// since the non-test units stay acyclic) are broken by the stable input
// order; the preload importer then falls back to export data for the
// not-yet-checked member, which is the regular unit the go tool would use
// there anyway.
func listDependencyOrder(listed []listedPackage) []listedPackage {
	index := make(map[string]int, len(listed))
	for i, lp := range listed {
		index[lp.ImportPath] = i
	}
	ordered := make([]listedPackage, 0, len(listed))
	state := make([]int, len(listed)) // 0 unvisited, 1 visiting, 2 done
	var visit func(i int)
	visit = func(i int) {
		if state[i] != 0 {
			return
		}
		state[i] = 1
		for _, deps := range [][]string{listed[i].Imports, listed[i].TestImports} {
			for _, dep := range deps {
				if j, ok := index[dep]; ok && state[j] == 0 {
					visit(j)
				}
			}
		}
		state[i] = 2
		ordered = append(ordered, listed[i])
	}
	for i := range listed {
		visit(i)
	}
	return ordered
}

// LoadFiles parses and type-checks an explicit file list as one package —
// the fixture path used by the analyzer tests, whose sources live under
// testdata where the go tool does not list them. moduleDir anchors import
// resolution (fixtures import both stdlib and mce packages).
func LoadFiles(moduleDir string, paths ...string) (*Package, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("lint: LoadFiles needs at least one file")
	}
	fset := token.NewFileSet()
	imp := newImporter(moduleDir, fset)
	pkg, err := check("fixture", filepath.Dir(paths[0]), fset, imp, paths)
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

// check parses files and runs the type checker, returning a ready Package.
func check(pkgPath, dir string, fset *token.FileSet, imp types.Importer, paths []string) (*Package, error) {
	var files []*ast.File
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
