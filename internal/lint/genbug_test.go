package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMapOrderCatchesReintroducedGenBug is the acceptance criterion from
// the issue: deliberately reintroducing the PR 3 map-order bug in
// internal/gen must make maporder fail the build. The bug was neighborsOf
// returning a map-range slice unsorted, which HolmeKim then indexed with a
// seeded rng draw — same-seed graphs differed across processes. The test
// strips the fix from a copy of the real source and expects the analyzer
// to re-find it; the unmodified source must stay clean.
func TestMapOrderCatchesReintroducedGenBug(t *testing.T) {
	root := moduleRoot()
	genDir := filepath.Join(root, "internal", "gen")
	srcs := []string{"gen.go", "datasets.go", "planted.go"}

	orig, err := os.ReadFile(filepath.Join(genDir, "gen.go"))
	if err != nil {
		t.Fatalf("reading gen.go: %v", err)
	}
	const fix = "slices.Sort(out)"
	if !strings.Contains(string(orig), fix) {
		t.Fatalf("gen.go no longer contains %q; update this test to strip the current fix", fix)
	}
	// Clip keeps the slices import alive and the taint intact — it is the
	// PR 3 pre-fix shape with a no-op where the sort used to be.
	broken := strings.Replace(string(orig), fix, "out = slices.Clip(out)", 1)

	dir := t.TempDir()
	paths := make([]string, len(srcs))
	for i, name := range srcs {
		src, err := os.ReadFile(filepath.Join(genDir, name))
		if err != nil {
			t.Fatalf("reading %s: %v", name, err)
		}
		if name == "gen.go" {
			src = []byte(broken)
		}
		paths[i] = filepath.Join(dir, name)
		if err := os.WriteFile(paths[i], src, 0o644); err != nil {
			t.Fatalf("writing %s: %v", name, err)
		}
	}

	pkg, err := LoadFiles(root, paths...)
	if err != nil {
		t.Fatalf("loading broken gen copy: %v", err)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{MapOrder})
	if err != nil {
		t.Fatalf("running maporder: %v", err)
	}
	found := false
	for _, d := range diags {
		if d.Analyzer == "maporder" && strings.Contains(d.Message, "seeded rand draw") {
			found = true
		}
	}
	if !found {
		t.Errorf("maporder missed the reintroduced PR 3 bug; diagnostics:\n%v", diags)
	}

	// Control: the real, fixed sources are clean.
	realPaths := make([]string, len(srcs))
	for i, name := range srcs {
		realPaths[i] = filepath.Join(genDir, name)
	}
	cleanPkg, err := LoadFiles(root, realPaths...)
	if err != nil {
		t.Fatalf("loading real gen: %v", err)
	}
	cleanDiags, err := RunAnalyzers([]*Package{cleanPkg}, []*Analyzer{MapOrder})
	if err != nil {
		t.Fatalf("running maporder on real gen: %v", err)
	}
	if len(cleanDiags) != 0 {
		t.Errorf("the fixed internal/gen should be clean, got:\n%v", cleanDiags)
	}
}
