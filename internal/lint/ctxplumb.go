package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxPlumb enforces the cancellation contract introduced in PR 1: every
// exported function that blocks — dials or listens on the network, sleeps,
// or spawns goroutines — must come as a ctx/non-ctx pair, with the non-ctx
// form a one-line delegation to the Context variant (as Enumerate delegates
// to EnumerateContext). Blocking work implemented only behind a non-ctx
// entry point is uncancellable, and an uncancellable distributed run is
// exactly the hung-cluster failure mode the PR 1 deadlines exist to rule
// out.
var CtxPlumb = &Analyzer{
	Name: "ctxplumb",
	Doc: "exported functions that dial, sleep or spawn goroutines must have a " +
		"Context variant and delegate to it",
	Run: runCtxPlumb,
}

func runCtxPlumb(pass *Pass) error {
	info := pass.Pkg.Info

	// Index every declared function by receiver-qualified name, so the
	// sibling lookup sees methods of the same type only.
	decls := make(map[string]*ast.FuncDecl)
	key := func(d *ast.FuncDecl) string {
		return recvTypeName(info, d) + "." + d.Name.Name
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				decls[key(fd)] = fd
			}
		}
	}

	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Context") {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			if hasCtxParam(sig) || isTestingEntry(fd.Name.Name, sig) {
				continue
			}
			what := blockingOp(info, fd.Body)
			if what == "" {
				continue
			}

			want := fd.Name.Name + "Context"
			sibling, ok := decls[recvTypeName(info, fd)+"."+want]
			if !ok {
				pass.Reportf(fd.Name.Pos(),
					"exported %s %s but has no %s variant taking a context.Context",
					fd.Name.Name, what, want)
				continue
			}
			sobj, _ := info.Defs[sibling.Name].(*types.Func)
			if sobj == nil || !hasCtxParam(sobj.Type().(*types.Signature)) {
				pass.Reportf(fd.Name.Pos(),
					"exported %s %s but %s does not take a context.Context",
					fd.Name.Name, what, want)
				continue
			}
			if !delegatesTo(info, fd, sobj) {
				pass.Reportf(fd.Name.Pos(),
					"exported %s %s but does not delegate to %s(context.Background(), ...)",
					fd.Name.Name, what, want)
			}
		}
	}
	return nil
}

// isTestingEntry reports whether the function is a go-test entry point —
// TestXxx(*testing.T), BenchmarkXxx(*testing.B), FuzzXxx(*testing.F) or
// TestMain(*testing.M). The testing framework owns their lifecycle (deadline,
// cleanup, panic recovery), so the exported-pair contract does not apply:
// nobody calls a Test function but the test binary.
func isTestingEntry(name string, sig *types.Signature) bool {
	prefixOK := strings.HasPrefix(name, "Test") ||
		strings.HasPrefix(name, "Benchmark") ||
		strings.HasPrefix(name, "Fuzz") ||
		strings.HasPrefix(name, "Example")
	if !prefixOK || sig.Recv() != nil || sig.Params().Len() != 1 {
		return false
	}
	ptr, ok := sig.Params().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "testing"
}

// blockingOp scans a function body for the operations that make an API
// blocking in the sense the contract cares about, and names the first one
// found ("" when clean). Nested function literals are included: a go
// statement or dial inside a closure still runs on the caller's behalf.
func blockingOp(info *types.Info, body *ast.BlockStmt) string {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			found = "spawns goroutines"
			return false
		case *ast.CallExpr:
			for _, c := range []struct{ pkg, fn, what string }{
				{"net", "Dial", "dials"},
				{"net", "DialTimeout", "dials"},
				{"net", "DialUDP", "dials"},
				{"net", "DialTCP", "dials"},
				{"net", "Listen", "listens"},
				{"net", "ListenTCP", "listens"},
				{"net", "ListenPacket", "listens"},
				{"time", "Sleep", "sleeps"},
			} {
				if isPkgFunc(info, n, c.pkg, c.fn) {
					found = c.what
					return false
				}
			}
		}
		return true
	})
	return found
}

// delegatesTo reports whether the function body is a single statement that
// calls target with context.Background() or context.TODO() as the context
// argument.
func delegatesTo(info *types.Info, fd *ast.FuncDecl, target *types.Func) bool {
	if len(fd.Body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch s := fd.Body.List[0].(type) {
	case *ast.ReturnStmt:
		if len(s.Results) != 1 {
			return false
		}
		call, _ = ast.Unparen(s.Results[0]).(*ast.CallExpr)
	case *ast.ExprStmt:
		call, _ = ast.Unparen(s.X).(*ast.CallExpr)
	}
	if call == nil || calleeOf(info, call) != target {
		return false
	}
	for _, arg := range call.Args {
		if c, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
			if isPkgFunc(info, c, "context", "Background") || isPkgFunc(info, c, "context", "TODO") {
				return true
			}
		}
	}
	return false
}
