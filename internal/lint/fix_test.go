package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The -fix machinery tests: fixes are applied to copies under a temp dir,
// and convergence is checked by re-running the analyzer over the fixed
// file — the same sequence the driver performs.

func fixRound(t *testing.T, path string, a *Analyzer) (diags []Diagnostic, changed []string) {
	t.Helper()
	pkg, err := LoadFiles(moduleRoot(), path)
	if err != nil {
		t.Fatalf("loading %s: %v", path, err)
	}
	diags, err = RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	changed, err = ApplyFixes(diags)
	if err != nil {
		t.Fatalf("applying fixes: %v", err)
	}
	return diags, changed
}

func TestApplyFixesInsertsSort(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fixme.go")
	src := `package fixme

import (
	"fmt"
)

func Dump(set map[string]int) {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	fmt.Println(keys)
}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatalf("writing fixture: %v", err)
	}

	diags, changed := fixRound(t, path, MapOrder)
	if len(diags) == 0 {
		t.Fatal("expected a maporder finding before the fix")
	}
	if len(changed) != 1 {
		t.Fatalf("ApplyFixes changed %v, want just the fixture", changed)
	}
	fixed, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixed file: %v", err)
	}
	if !strings.Contains(string(fixed), "slices.Sort(keys)") {
		t.Errorf("fix did not insert the sort:\n%s", fixed)
	}
	if !strings.Contains(string(fixed), `"slices"`) {
		t.Errorf("fix did not add the slices import:\n%s", fixed)
	}

	// Second round: the fixed file analyzes clean and nothing changes —
	// the fix converges.
	diags, changed = fixRound(t, path, MapOrder)
	if len(diags) != 0 || len(changed) != 0 {
		t.Errorf("fix did not converge: %d finding(s), changed %v", len(diags), changed)
	}
}

func TestApplyFixesWrapsNilGuard(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fixme.go")
	src := `package fixme

import "mce/internal/telemetry"

func bump(met *telemetry.Engine, ins *telemetry.BlockInstr) {
	met.BlocksBuilt.Inc()
	ins.RecursionNodes++
}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatalf("writing fixture: %v", err)
	}

	diags, changed := fixRound(t, path, TelemetryGuard)
	if len(diags) != 2 {
		t.Fatalf("got %d finding(s) before the fix, want 2:\n%v", len(diags), diags)
	}
	if len(changed) != 1 {
		t.Fatalf("ApplyFixes changed %v, want just the fixture", changed)
	}
	fixed, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixed file: %v", err)
	}
	if !strings.Contains(string(fixed), "if met != nil {") || !strings.Contains(string(fixed), "if ins != nil {") {
		t.Errorf("fix did not wrap the statements in nil guards:\n%s", fixed)
	}

	diags, changed = fixRound(t, path, TelemetryGuard)
	if len(diags) != 0 || len(changed) != 0 {
		t.Errorf("fix did not converge: %d finding(s), changed %v", len(diags), changed)
	}
}

func TestApplyFixesPreallocatesHotSlice(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fixme.go")
	src := `package fixme

// Collect gathers the positive values.
//
//mce:hotpath fix fixture root
func Collect(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatalf("writing fixture: %v", err)
	}

	diags, changed := fixRound(t, path, HotSlice)
	if len(diags) != 1 {
		t.Fatalf("got %d finding(s) before the fix, want 1:\n%v", len(diags), diags)
	}
	if len(changed) != 1 {
		t.Fatalf("ApplyFixes changed %v, want just the fixture", changed)
	}
	fixed, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixed file: %v", err)
	}
	if !strings.Contains(string(fixed), "var out = make([]int, 0, len(xs))") {
		t.Errorf("fix did not preallocate:\n%s", fixed)
	}

	diags, changed = fixRound(t, path, HotSlice)
	if len(diags) != 0 || len(changed) != 0 {
		t.Errorf("fix did not converge: %d finding(s), changed %v", len(diags), changed)
	}
}

func TestApplyFixesNoDiagnosticsNoWrites(t *testing.T) {
	changed, err := ApplyFixes(nil)
	if err != nil || len(changed) != 0 {
		t.Errorf("ApplyFixes(nil) = %v, %v; want no changes", changed, err)
	}
}
