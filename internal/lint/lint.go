// Package lint is a repo-specific static-analysis suite: a small, dependency
// free re-implementation of the golang.org/x/tools/go/analysis model (the
// builder has no network, so the real module cannot be vendored) plus five
// analyzers that machine-check invariants the engine's correctness argument
// leans on:
//
//   - ctxplumb: exported blocking APIs must come in ctx/non-ctx pairs with
//     the non-ctx form delegating (the PR 1 cancellation contract);
//   - lockbalance: every manual mu.Lock() must be released on every return
//     path (the cluster/core mutex discipline);
//   - sortedadj: adjacency slices returned by graph.Neighbors are read-only
//     outside internal/graph (the binary-search sortedness invariant behind
//     HasEdge, hence behind Lemma 1 and Theorem 1);
//   - goroutineleak: goroutine literals that pump captured channels must
//     carry a cancellation path (ctx.Done, a done channel, or channel close);
//   - wiretypes: structs crossing the gob wire protocol must survive the
//     round trip losslessly (no silently-dropped or unencodable fields).
//
// The suite runs via cmd/mcevet (standalone driver, `make lint`) and in the
// analyzers' own analysistest-style fixture tests.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check, mirroring analysis.Analyzer: Run inspects a
// single package through its Pass and reports findings.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and lint:ignore
	// directives; it is a lowercase single word.
	Name string
	// Doc is a one-paragraph description: the invariant protected and why
	// the repo cares.
	Doc string
	// Run performs the check. It reports findings through the Pass and
	// returns an error only for analysis failures, never for findings.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package, mirroring analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{CtxPlumb, LockBalance, SortedAdj, GoroutineLeak, WireTypes}
}

// ignoreDirective is a parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers []string // names, or ["*"]
	line      int      // the line the directive suppresses (its own or next)
	file      string
	justified bool
	pos       token.Pos
}

var ignoreRE = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s*(.*)$`)

// parseIgnores extracts every lint:ignore directive of a file. A directive
// suppresses matching diagnostics on its own line (trailing comment) or on
// the first following non-comment line (preceding comment). The analyzer
// list is comma-separated; "*" matches all. A directive must carry a
// justification — the why is the point — or it is itself reported.
func parseIgnores(pkg *Package, f *ast.File) []ignoreDirective {
	fset := pkg.Fset
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for i, c := range cg.List {
			m := ignoreRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			// The suppressed line: the last comment line of the group maps
			// to the next source line; earlier lines and trailing comments
			// map to their own line. Covering both the directive's line and
			// the next handles every placement without position bookkeeping.
			line := pos.Line
			if i == len(cg.List)-1 {
				line = fset.Position(cg.End()).Line
			}
			out = append(out, ignoreDirective{
				analyzers: strings.Split(m[1], ","),
				line:      line,
				file:      pos.Filename,
				justified: strings.TrimSpace(m[2]) != "",
				pos:       c.Pos(),
			})
		}
	}
	return out
}

func (d *ignoreDirective) matches(diag Diagnostic) bool {
	if diag.Pos.Filename != d.file || (diag.Pos.Line != d.line && diag.Pos.Line != d.line+1) {
		return false
	}
	for _, name := range d.analyzers {
		if name == "*" || name == diag.Analyzer {
			return true
		}
	}
	return false
}

// RunAnalyzers applies the analyzers to every package, filters findings
// through the lint:ignore directives, and returns the remainder sorted by
// position. Unjustified directives are reported as findings themselves, so
// an ignore can never silently rot into a blanket waiver.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var ignores []ignoreDirective
		for _, f := range pkg.Files {
			ignores = append(ignores, parseIgnores(pkg, f)...)
		}
		for _, d := range ignores {
			if !d.justified {
				diags = append(diags, Diagnostic{
					Analyzer: "lint",
					Pos:      pkg.Fset.Position(d.pos),
					Message:  "lint:ignore directive needs a justification after the analyzer name",
				})
			}
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		next:
			for _, diag := range pass.diags {
				for _, d := range ignores {
					if d.justified && d.matches(diag) {
						continue next
					}
				}
				diags = append(diags, diag)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
