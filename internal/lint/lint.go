// Package lint is a repo-specific static-analysis suite: a small, dependency
// free re-implementation of the golang.org/x/tools/go/analysis model (the
// builder has no network, so the real module cannot be vendored) plus
// fifteen analyzers that machine-check invariants the engine's correctness
// and performance arguments lean on.
//
// The PR 2 per-package analyzers:
//
//   - ctxplumb: exported blocking APIs must come in ctx/non-ctx pairs with
//     the non-ctx form delegating (the PR 1 cancellation contract);
//   - lockbalance: every manual mu.Lock() must be released on every return
//     path (the cluster/core mutex discipline);
//   - sortedadj: adjacency slices returned by graph.Neighbors are read-only
//     outside internal/graph (the binary-search sortedness invariant behind
//     HasEdge, hence behind Lemma 1 and Theorem 1);
//   - wiretypes: structs crossing the gob wire protocol must survive the
//     round trip losslessly (no silently-dropped or unencodable fields).
//
// The v2 engine adds a whole-suite layer — a static call graph
// (callgraph.go), a per-function forward dataflow pass (dataflow.go) and an
// exported-facts mechanism (facts.go) so analyzers reason across package
// boundaries — and analyzers built on it:
//
//   - maporder: map-iteration-ordered values must not flow into seeded
//     rand draws, gob encoding or ordered output without an intervening
//     sort (the PR 3 cross-process nondeterminism bug class, caught
//     statically);
//   - telemetryguard: every instrumentation site on a possibly-nil
//     *telemetry.Engine or *telemetry.BlockInstr must be nil-guarded (the
//     PR 3 zero-overhead-when-disabled contract);
//   - staleignore: a //lint:ignore directive that no longer suppresses any
//     finding is itself a finding.
//
// The PR 7 concurrency layer computes per-function held-lock summaries
// (lockfacts.go) over the call graph and adds four analyzers that model
// goroutine interleavings rather than single-threaded dataflow:
//
//   - lockorder: the global mutex-acquisition graph must be acyclic — a
//     cycle means two goroutines can deadlock (facts cross package
//     boundaries, so each half of the inversion can live in a different
//     package);
//   - golifecycle: the interprocedural upgrade of PR 2's goroutineleak —
//     every `go` statement whose goroutine (transitively) blocks on
//     channels must reach a cancellation path through the call graph;
//   - chandiscipline: channel ownership rules — no send after close in one
//     body, close on the sender side only, and no unconditioned
//     sleep-recheck loop that ignores an in-scope ctx/done channel (the
//     PR 7 quarantine-recheck livelock shape);
//   - casloop: compare-and-swap discipline — CAS results must be checked,
//     CAS retry loops must re-load the old value, and a field accessed
//     through sync/atomic anywhere must be accessed that way everywhere
//     (subsumes and retires PR 3's atomicfield).
//
// The PR 10 perf layer turns the zero-alloc invariant of the enumeration
// inner loop into a module-wide gate: a hot-path fact pass (hotpath.go)
// seeds from //mce:hotpath annotations on the enumeration roots and closes
// over the call graph, an escape-analysis ingester (escape.go) parses
// `go build -gcflags=-m=2` per package, and four analyzers join the two:
//
//   - hotalloc: compiler-proven heap allocations in hot functions must be
//     reconciled against the committed budget .mcevet/allocbudget.json —
//     known sites pass, new sites fail, stale entries fail;
//   - hotbox: no fmt/reflect calls, allocating interface boxing, or
//     hot-loop closure captures in hot functions;
//   - hotdefer: no defer inside hot loops or recursive hot functions (the
//     defer record heap-allocates per iteration there);
//   - hotslice: append-growth in bounded hot loops must preallocate
//     (mechanical make(..., 0, n) fix under -fix).
//
// The suite runs via cmd/mcevet (standalone driver, `make lint`; -sarif,
// -diff, -fix and -update-allocbudget for CI integration) and in the
// analyzers' own analysistest-style fixture tests.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check, mirroring analysis.Analyzer: Run inspects a
// single package through its Pass and reports findings.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and lint:ignore
	// directives; it is a lowercase single word.
	Name string
	// Doc is a one-paragraph description: the invariant protected and why
	// the repo cares.
	Doc string
	// Run performs the check. It reports findings through the Pass and
	// returns an error only for analysis failures, never for findings.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package, mirroring analysis.Pass.
// Suite exposes the whole-run state — every loaded package, the call graph
// and the fact store — so analyzers can reason across package boundaries.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Suite    *Suite

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position. Fix, when
// non-nil, is a mechanical remediation cmd/mcevet -fix can apply.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Fix      *SuggestedFix
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzers returns the full suite in reporting order: the PR 2
// per-package analyzers first, then the v2 dataflow analyzers, then the
// PR 7 concurrency analyzers, then the PR 10 hot-path perf analyzers, with
// the staleignore meta-pass last.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		CtxPlumb, LockBalance, SortedAdj, WireTypes,
		MapOrder, TelemetryGuard,
		LockOrder, GoLifecycle, ChanDiscipline, CasLoop,
		HotAlloc, HotBox, HotDefer, HotSlice,
		StaleIgnore,
	}
}

// ignoreDirective is a parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers []string // names, or ["*"]
	line      int      // the line the directive suppresses (its own or next)
	file      string
	justified bool
	pos       token.Pos
	pkg       *Package
	used      bool // suppressed at least one finding this run
}

// ignoreRE recognises the directive form only — `//lint:ignore` with no
// space, staticcheck-style — so prose that merely mentions lint:ignore
// mid-comment is never parsed as a directive.
var ignoreRE = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s*(.*)$`)

// parseIgnores extracts every lint:ignore directive of a file. A directive
// suppresses matching diagnostics on its own line (trailing comment) or on
// the first following non-comment line (preceding comment). The analyzer
// list is comma-separated; "*" matches all. A directive must carry a
// justification — the why is the point — or it is itself reported.
func parseIgnores(pkg *Package, f *ast.File) []ignoreDirective {
	fset := pkg.Fset
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for i, c := range cg.List {
			m := ignoreRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			// The suppressed line: the last comment line of the group maps
			// to the next source line; earlier lines and trailing comments
			// map to their own line. Covering both the directive's line and
			// the next handles every placement without position bookkeeping.
			line := pos.Line
			if i == len(cg.List)-1 {
				line = fset.Position(cg.End()).Line
			}
			out = append(out, ignoreDirective{
				analyzers: strings.Split(m[1], ","),
				line:      line,
				file:      pos.Filename,
				justified: strings.TrimSpace(m[2]) != "",
				pos:       c.Pos(),
				pkg:       pkg,
			})
		}
	}
	return out
}

func (d *ignoreDirective) matches(diag Diagnostic) bool {
	if diag.Pos.Filename != d.file || (diag.Pos.Line != d.line && diag.Pos.Line != d.line+1) {
		return false
	}
	for _, name := range d.analyzers {
		if name == "*" || name == diag.Analyzer {
			return true
		}
	}
	return false
}

// RunAnalyzers applies the analyzers to every package, filters findings
// through the lint:ignore directives, and returns the remainder sorted by
// position. Unjustified directives are reported as findings themselves, so
// an ignore can never silently rot into a blanket waiver; when staleignore
// is among the analyzers, justified directives that suppressed nothing are
// reported too (see staleignore.go).
//
// Packages are analysed in dependency order (imports before importers), so
// facts exported while analysing a package are visible to the analyses of
// every package that imports it.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	suite := newSuite(pkgs)
	var diags []Diagnostic
	var allIgnores []*ignoreDirective
	ignoresByPkg := make(map[*Package][]*ignoreDirective)
	for _, pkg := range suite.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range parseIgnores(pkg, f) {
				d := d
				ignoresByPkg[pkg] = append(ignoresByPkg[pkg], &d)
				allIgnores = append(allIgnores, &d)
			}
		}
		for _, d := range ignoresByPkg[pkg] {
			if !d.justified {
				diags = append(diags, Diagnostic{
					Analyzer: "lint",
					Pos:      pkg.Fset.Position(d.pos),
					Message:  "lint:ignore directive needs a justification after the analyzer name",
				})
			}
		}
	}
	for _, pkg := range suite.Pkgs {
		ignores := ignoresByPkg[pkg]
		for _, a := range analyzers {
			if a.Run == nil {
				continue // meta-analyzers (staleignore) run after the loop
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, Suite: suite}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		next:
			for _, diag := range pass.diags {
				for _, d := range ignores {
					if d.justified && d.matches(diag) {
						d.used = true
						continue next
					}
				}
				diags = append(diags, diag)
			}
		}
	}
	for _, a := range analyzers {
		if a == StaleIgnore {
			diags = append(diags, staleIgnoreDiags(suite, analyzers, allIgnores)...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
