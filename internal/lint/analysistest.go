package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
)

// This file is the suite's analysistest stand-in: fixtures under testdata
// carry `// want "regexp"` annotations on the lines an analyzer must flag,
// and ExpectDiagnostics verifies the analyzer's findings against them — both
// directions: every want must be matched and every finding must be wanted.
// lint:ignore directives are honoured exactly as in production, so fixtures
// can also pin the suppression behaviour.

// TB is the subset of *testing.T the harness needs, kept as an interface so
// this file stays outside the _test build and the cmd/mcevet driver can
// reuse RunFixture for self-checks.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantArgRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// expectation is one want annotation: a regexp the diagnostic message on
// that line must match.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// parseWants extracts the annotations of one fixture package from its
// comments.
func parseWants(pkg *Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := wantArgRE.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					return nil, fmt.Errorf("%s: malformed want comment %q (need a quoted or backquoted pattern)", pos, c.Text)
				}
				for _, a := range args {
					pat := a[1]
					if a[2] != "" {
						pat = a[2]
					} else {
						pat = strings.ReplaceAll(pat, `\"`, `"`)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants, nil
}

// RunFixture loads the given fixture files (paths relative to the package's
// testdata directory) as one package, runs the analyzer, and checks the
// diagnostics against the // want annotations.
func RunFixture(t TB, a *Analyzer, fixtures ...string) {
	t.Helper()
	moduleDir := moduleRoot()
	paths := make([]string, len(fixtures))
	for i, fx := range fixtures {
		paths[i] = filepath.Join(moduleDir, "internal", "lint", "testdata", fx)
	}
	pkg, err := LoadFiles(moduleDir, paths...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", fixtures, err)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants, err := parseWants(pkg)
	if err != nil {
		t.Fatalf("%v", err)
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern)
		}
	}
}

// moduleRoot locates the repository root from this source file's location,
// so tests work regardless of the package the harness is invoked from.
func moduleRoot() string {
	_, file, _, _ := runtime.Caller(0)
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}
