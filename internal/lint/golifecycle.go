package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// GoLifecycle is the interprocedural upgrade of PR 2's goroutineleak: every
// `go` statement must reach a cancellation path *through the call graph*,
// not merely contain one syntactically. A goroutine that blocks on a
// channel — in its own literal body, or three calls deep in another
// package — with no ctx.Done select, done-channel receive, closable-range
// or WaitGroup balance anywhere in its reachable body outlives every batch
// that spawned it; across Enumerate calls in a long-lived server those
// stack up until the scheduler drowns. The syntactic check caught only the
// literal-local shape and went blind the moment the pump moved into a
// helper, which is exactly where the cluster runtime's hedging and health
// machinery put theirs.
//
// Accepted lifecycle paths, anywhere in the spawned body or any function it
// (transitively) calls:
//
//   - a select with a case receiving from a context's Done() channel or
//     from a done-style channel (element type struct{}), or with a default;
//   - ranging over a channel (terminates when the producer closes);
//   - a direct receive from a struct{}-element channel (a blocking wait for
//     the done signal is itself the termination path);
//   - a sync.WaitGroup.Done call (the goroutine is joinable: its lifetime
//     is balanced against a Wait).
//
// A goroutine is examined at all only when it (transitively) performs a
// blocking channel operation outside defer statements — pure computation
// needs no lifecycle.
var GoLifecycle = &Analyzer{
	Name: "golifecycle",
	Doc: "every go statement whose goroutine blocks on channels must reach " +
		"a cancellation path (ctx.Done, done channel, closable range, or " +
		"WaitGroup balance) through the call graph",
	Run: runGoLifecycle,
}

// lifecycleFact is the exported per-function summary: whether the function
// (transitively) blocks on channels, and whether it (transitively) reaches
// an accepted cancellation path.
type lifecycleFact struct {
	Blocks  bool
	Cancels bool
}

// AFact marks lifecycleFact as a fact type.
func (*lifecycleFact) AFact() {}

// lifecycleInfo is the whole-suite fixpoint result keyed by function key.
type lifecycleInfo struct {
	blocks  map[string]bool
	cancels map[string]bool
}

func runGoLifecycle(pass *Pass) error {
	info := pass.Suite.Memo("golifecycle", func() any {
		return buildLifecycleInfo(pass)
	}).(*lifecycleInfo)

	tinfo := pass.Pkg.Info
	buffered := bufferedChanVars(pass.Pkg)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				blocks, why := literalBlocks(tinfo, lit, info, buffered)
				if !blocks {
					return true
				}
				if literalCancels(tinfo, lit, info) {
					return true
				}
				pass.Reportf(gs.Pos(),
					"goroutine blocks on %s with no reachable cancellation path (no ctx.Done/done-channel select, closable range, or WaitGroup balance anywhere it calls)",
					why)
				return true
			}
			callee := calleeOf(tinfo, gs.Call)
			if callee == nil {
				return true // dynamic target: nothing to resolve
			}
			key := objKey(callee)
			blocks, known := info.blocks[key]
			if !known {
				// Declared outside the load (stdlib, export data): import the
				// fact a previous run of an importing suite may have left;
				// otherwise stay silent rather than guess.
				var fact lifecycleFact
				if pass.ImportObjectFact(callee, &fact) {
					blocks, known = fact.Blocks, true
					info.cancels[key] = fact.Cancels
				}
			}
			if !known || !blocks || info.cancels[key] {
				return true
			}
			pass.Reportf(gs.Pos(),
				"goroutine runs %s, which blocks on channels with no reachable cancellation path (no ctx.Done/done-channel select, closable range, or WaitGroup balance in anything it calls)",
				callee.FullName())
			return true
		})
	}
	return nil
}

// buildLifecycleInfo computes the transitive blocks/cancels summaries for
// every declared function, to fixpoint over the call graph, and exports
// them as facts.
func buildLifecycleInfo(pass *Pass) *lifecycleInfo {
	cg := pass.Suite.CallGraph()
	info := &lifecycleInfo{
		blocks:  make(map[string]bool),
		cancels: make(map[string]bool),
	}
	fns := cg.Funcs()
	// Seed with each function's own syntax.
	for _, fn := range fns {
		pkg, decl := cg.Decl(fn)
		if decl == nil || decl.Body == nil {
			continue
		}
		key := objKey(fn)
		info.blocks[key] = bodyBlocksOnChans(pkg.Info, decl.Body)
		info.cancels[key] = bodyHasLifecyclePath(pkg.Info, decl.Body)
	}
	// Propagate callee → caller to fixpoint.
	work := append([]*types.Func(nil), fns...)
	queued := make(map[string]bool)
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		key := objKey(fn)
		queued[key] = false
		changed := false
		for _, callee := range cg.Callees(fn) {
			ck := objKey(callee)
			if info.blocks[ck] && !info.blocks[key] {
				info.blocks[key] = true
				changed = true
			}
			if info.cancels[ck] && !info.cancels[key] {
				info.cancels[key] = true
				changed = true
			}
		}
		if changed {
			for _, caller := range cg.Callers(fn) {
				ck := objKey(caller)
				if _, tracked := info.blocks[ck]; tracked && !queued[ck] {
					queued[ck] = true
					work = append(work, caller)
				}
			}
		}
	}
	for _, fn := range fns {
		key := objKey(fn)
		if info.blocks[key] || info.cancels[key] {
			pass.ExportObjectFact(fn, &lifecycleFact{
				Blocks:  info.blocks[key],
				Cancels: info.cancels[key],
			})
		}
	}
	return info
}

// literalBlocks reports whether the go-literal blocks on channels: captured
// channel pumps in its own body, or a call to a function that transitively
// blocks. The returned description feeds the diagnostic.
func literalBlocks(tinfo *types.Info, lit *ast.FuncLit, info *lifecycleInfo, buffered map[*types.Var]bool) (bool, string) {
	if captured := capturedChannelOps(tinfo, lit, buffered); len(captured) > 0 {
		return true, "captured channel " + strings.Join(captured, ", ")
	}
	blockingCallee := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if blockingCallee != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := calleeOf(tinfo, call); callee != nil && info.blocks[objKey(callee)] {
			blockingCallee = callee.FullName()
		}
		return true
	})
	if blockingCallee != "" {
		return true, "channels inside " + blockingCallee
	}
	return false, ""
}

// literalCancels reports whether the go-literal reaches a lifecycle path:
// syntactically in its body, or inside any function it calls.
func literalCancels(tinfo *types.Info, lit *ast.FuncLit, info *lifecycleInfo) bool {
	if bodyHasLifecyclePath(tinfo, lit.Body) {
		return true
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := calleeOf(tinfo, call); callee != nil && info.cancels[objKey(callee)] {
				found = true
			}
		}
		return true
	})
	return found
}

// bodyBlocksOnChans reports whether the body performs a blocking channel
// operation — send, receive, channel range, or a select without a default —
// outside defer statements. Receives from done-style channels do not count
// (they are the termination idiom, handled as a lifecycle path), and
// nested function literals are the spawn sites' own problem.
func bodyBlocksOnChans(info *types.Info, body *ast.BlockStmt) bool {
	blocks := false
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if blocks {
				return false
			}
			switch m := m.(type) {
			case *ast.DeferStmt:
				return false // exit-time cleanup
			case *ast.FuncLit:
				if n != m {
					return false // separate lifetime
				}
			case *ast.SendStmt:
				blocks = true
			case *ast.RangeStmt:
				if tv, ok := info.Types[m.X]; ok && tv.Type != nil && isChanType(tv.Type) {
					blocks = true
				}
			case *ast.SelectStmt:
				hasDefault := false
				for _, cl := range m.Body.List {
					if comm, ok := cl.(*ast.CommClause); ok && comm.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					blocks = true
				}
			case *ast.UnaryExpr:
				if m.Op.String() == "<-" {
					if tv, ok := info.Types[m.X]; ok && tv.Type != nil && isDoneChan(tv.Type) {
						return true // waiting for done is a termination path
					}
					if isDoneCall(info, m.X) {
						return true
					}
					blocks = true
				}
			}
			return !blocks
		})
	}
	walk(body)
	return blocks
}

// bodyHasLifecyclePath reports whether the body syntactically contains an
// accepted lifecycle construct: the PR 2 cancellation shapes plus
// sync.WaitGroup.Done (the join-balance idiom).
func bodyHasLifecyclePath(info *types.Info, body *ast.BlockStmt) bool {
	if hasCancellationPath(info, &ast.FuncLit{Body: body}) {
		return true
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if tv, ok := info.Types[sel.X]; ok && isNamed(tv.Type, "sync", "WaitGroup") {
			found = true
		}
		return true
	})
	return found
}

// bufferedChanVars records the channel variables initialised with
// make(chan T, n) for a constant n >= 1, per package. A single send to such
// a channel can never block, which is the test idiom
// `done := make(chan error, 1); go func() { done <- f() }()` — the
// goroutine completes unconditionally, so it needs no lifecycle path.
func bufferedChanVars(pkg *Package) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	record := func(name ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(name).(*ast.Ident)
		if !ok {
			return
		}
		v, ok := pkg.Info.Defs[id].(*types.Var)
		if !ok {
			return
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return
		}
		if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fid.Name != "make" {
			return
		}
		if !isChanType(pkg.Info.Types[call].Type) {
			return
		}
		if tv, ok := pkg.Info.Types[call.Args[1]]; ok && tv.Value != nil {
			if n, ok := constant.Int64Val(tv.Value); ok && n >= 1 {
				out[v] = true
			}
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						record(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						record(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
	}
	return out
}

// capturedChannelOps lists (by name) the captured channels the literal
// blocks on outside defer statements. Sends that provably cannot block are
// exempt: a single send (outside any loop) to a channel made with a
// constant buffer of at least one.
func capturedChannelOps(info *types.Info, lit *ast.FuncLit, buffered map[*types.Var]bool) []string {
	// Count the literal's sends per channel and whether any sits in a loop:
	// only a lone, loop-free send is covered by a one-slot buffer.
	sendCount := make(map[*types.Var]int)
	sendInLoop := make(map[*types.Var]bool)
	var countSends func(n ast.Node, inLoop bool)
	countSends = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				if m.Body != nil {
					countSends(m.Body, true)
				}
				return false
			case *ast.RangeStmt:
				if m.Body != nil {
					countSends(m.Body, true)
				}
				return false
			case *ast.SendStmt:
				if v := usedVar(info, m.Chan); v != nil {
					sendCount[v]++
					if inLoop {
						sendInLoop[v] = true
					}
				}
			}
			return true
		})
	}
	countSends(lit.Body, false)
	isCaptured := func(e ast.Expr) (*types.Var, bool) {
		v := usedVar(info, e)
		if v == nil || !isChanType(v.Type()) {
			return nil, false
		}
		// Captured: declared outside the literal's extent. Parameters and
		// locals of the literal are its own lifetime to manage.
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return nil, false
		}
		return v, true
	}
	seen := make(map[*types.Var]bool)
	var names []string
	add := func(v *types.Var) {
		if !seen[v] {
			seen[v] = true
			names = append(names, v.Name())
		}
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.DeferStmt:
				return false // exit-time cleanup, out of scope
			case *ast.SendStmt:
				if v, ok := isCaptured(m.Chan); ok {
					if buffered[v] && sendCount[v] == 1 && !sendInLoop[v] {
						return true // one send, one free slot: never blocks
					}
					add(v)
				}
			case *ast.UnaryExpr:
				if m.Op.String() == "<-" {
					if v, ok := isCaptured(m.X); ok {
						// A bare receive from a struct{} channel is a wait
						// for a done signal, not a pump — the accepted
						// termination idiom, never a finding.
						if !isDoneChan(v.Type()) {
							add(v)
						}
					}
				}
			}
			return true
		})
	}
	walk(lit.Body)
	return names
}

// isDoneChan reports whether t is a channel of struct{} (the done-channel
// convention).
func isDoneChan(t types.Type) bool {
	ch, ok := types.Unalias(t).Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// hasCancellationPath reports whether the literal body contains any accepted
// termination mechanism.
func hasCancellationPath(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && isChanType(tv.Type) {
				found = true // terminates when the channel is closed
				return false
			}
		case *ast.SelectStmt:
			for _, cl := range n.Body.List {
				comm, ok := cl.(*ast.CommClause)
				if !ok {
					continue
				}
				if comm.Comm == nil {
					found = true // default case: non-blocking
					return false
				}
				if recvChan := commRecvChan(comm.Comm); recvChan != nil {
					if isDoneCall(info, recvChan) {
						found = true
						return false
					}
					if tv, ok := info.Types[recvChan]; ok && isDoneChan(tv.Type) {
						found = true
						return false
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				if isDoneCall(info, n.X) {
					found = true
					return false
				}
				if tv, ok := info.Types[n.X]; ok && isDoneChan(tv.Type) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// commRecvChan extracts the channel expression of a receive comm clause.
func commRecvChan(s ast.Stmt) ast.Expr {
	var rhs ast.Expr
	switch s := s.(type) {
	case *ast.ExprStmt:
		rhs = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			rhs = s.Rhs[0]
		}
	}
	u, ok := ast.Unparen(rhs).(*ast.UnaryExpr)
	if !ok || u.Op.String() != "<-" {
		return nil
	}
	return u.X
}

// isDoneCall reports whether e is a call of a method named Done returning a
// receive-only channel — context.Context.Done and look-alikes.
func isDoneCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeOf(info, call)
	if fn == nil || fn.Name() != "Done" {
		return false
	}
	if tv, ok := info.Types[call]; ok {
		return isChanType(tv.Type)
	}
	return false
}
