package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the per-function forward dataflow pass of the v2 engine:
// value-source tags ("taints") are seeded at source expressions and
// propagated through assignments, composite expressions, direct calls (via
// caller-supplied summaries) and into return values. The analysis is
// flow-insensitive within a function — variable taints are a fixpoint over
// all assignments, and a sanitizer anywhere clears the variable everywhere —
// which biases it against false positives exactly like the PR 2 analyzers:
// an intervening sort.Ints is honoured no matter where it appears, at the
// cost of missing a use that textually precedes it.

// Taint is a bit set of value-source tags. The engine is tag-agnostic;
// analyzers define their own bits (see maporder.go).
type Taint uint32

// FlowConfig parameterises one dataflow analysis.
type FlowConfig struct {
	Info *types.Info

	// RangeSeed returns the taint to give the key and value variables of a
	// range statement, based on the ranged-over expression's type and taint
	// (e.g. map iteration ⇒ taintMapOrder). May be nil.
	RangeSeed func(rng *ast.RangeStmt, overTaint Taint) Taint

	// Call returns the taint of a call expression's results given the
	// resolved callee (nil for dynamic calls) and the taints of the
	// arguments. This is where cross-function and cross-package summaries
	// (facts) plug in. May be nil.
	Call func(call *ast.CallExpr, callee *types.Func, args []Taint) Taint

	// Sanitize returns the variable a call statement cleanses (e.g.
	// sort.Ints(x) ⇒ x) or nil. A sanitized variable ends the analysis with
	// no taint regardless of its sources. May be nil.
	Sanitize func(call *ast.CallExpr) *types.Var
}

// FuncFlow is the result of analysing one function body.
type FuncFlow struct {
	// Vars is the final taint of every variable that acquired one.
	Vars map[*types.Var]Taint
	// Ret is the union of the taints of every returned expression.
	Ret Taint
	// Origin maps a tainted variable to the statement that first seeded its
	// taint (a range statement for map-iteration sources, an assignment for
	// call-derived sources) — the anchor suggested fixes attach to.
	Origin map[*types.Var]ast.Node

	cfg       *FlowConfig
	sanitized map[*types.Var]bool
}

// analyzeFlow runs the forward pass over body to fixpoint and returns the
// resulting variable taints. body may be nil (declarations without bodies
// yield an empty flow).
func analyzeFlow(cfg *FlowConfig, body *ast.BlockStmt) *FuncFlow {
	fl := &FuncFlow{
		Vars:      make(map[*types.Var]Taint),
		Origin:    make(map[*types.Var]ast.Node),
		cfg:       cfg,
		sanitized: make(map[*types.Var]bool),
	}
	if body == nil {
		return fl
	}

	// Sanitizers first: a cleansed variable never carries taint out of the
	// analysis, so recording them up front lets the fixpoint skip them.
	if cfg.Sanitize != nil {
		ast.Inspect(body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if v := cfg.Sanitize(call); v != nil {
					fl.sanitized[v] = true
				}
			}
			return true
		})
	}

	// Fixpoint over the assignment/range/return structure. Bounded by the
	// number of taint bits times variables; the cap is a safety net.
	for iter := 0; iter < 32; iter++ {
		if !fl.pass(body) {
			break
		}
	}

	for v := range fl.sanitized {
		delete(fl.Vars, v)
		delete(fl.Origin, v)
	}
	return fl
}

// pass walks body once, reporting whether any taint changed.
func (fl *FuncFlow) pass(body *ast.BlockStmt) bool {
	changed := false
	taintVar := func(v *types.Var, t Taint, origin ast.Node) {
		if v == nil || t == 0 {
			return
		}
		if fl.Vars[v]&t != t {
			fl.Vars[v] |= t
			changed = true
			if _, ok := fl.Origin[v]; !ok && origin != nil {
				fl.Origin[v] = origin
			}
		}
	}
	assign := func(lhs ast.Expr, t Taint, origin ast.Node) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj, ok := fl.cfg.Info.Defs[id].(*types.Var)
		if !ok {
			obj, _ = fl.cfg.Info.Uses[id].(*types.Var)
		}
		taintVar(obj, t, origin)
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				// x, y := f(): every result gets the call's taint.
				t := fl.exprTaint(n.Rhs[0])
				for _, lhs := range n.Lhs {
					assign(lhs, t, n)
				}
				return true
			}
			for i := range n.Lhs {
				if i < len(n.Rhs) {
					assign(n.Lhs[i], fl.exprTaint(n.Rhs[i]), n)
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 1 && len(n.Names) > 1 {
				t := fl.exprTaint(n.Values[0])
				for _, name := range n.Names {
					assign(name, t, n)
				}
				return true
			}
			for i, name := range n.Names {
				if i < len(n.Values) {
					assign(name, fl.exprTaint(n.Values[i]), n)
				}
			}
		case *ast.RangeStmt:
			over := fl.exprTaint(n.X)
			var seed Taint
			if fl.cfg.RangeSeed != nil {
				seed = fl.cfg.RangeSeed(n, over)
			}
			// Ranging over a tainted slice hands the taint to the element
			// variable (the order of elements is the tainted property); the
			// index variable of a slice range is just a counter.
			elem := over
			if isMapType(fl.cfg.Info, n.X) {
				// Map keys and values both depend on iteration order.
				if n.Key != nil {
					assign(n.Key, seed, n)
				}
				if n.Value != nil {
					assign(n.Value, seed, n)
				}
			} else {
				if n.Value != nil {
					assign(n.Value, seed|elem, n)
				} else if n.Key != nil && isChanExpr(fl.cfg.Info, n.X) {
					assign(n.Key, seed|elem, n)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if t := fl.exprTaint(res); fl.Ret&t != t {
					fl.Ret |= t
					changed = true
				}
			}
		}
		return true
	})
	return changed
}

// exprTaint computes the taint of an expression from its operands, the
// seeded sources and the call summaries.
func (fl *FuncFlow) exprTaint(e ast.Expr) Taint {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := fl.cfg.Info.Uses[e].(*types.Var)
		if v == nil || fl.sanitized[v] {
			return 0
		}
		return fl.Vars[v]
	case *ast.IndexExpr:
		return fl.exprTaint(e.X)
	case *ast.SliceExpr:
		return fl.exprTaint(e.X)
	case *ast.StarExpr:
		return fl.exprTaint(e.X)
	case *ast.UnaryExpr:
		return fl.exprTaint(e.X)
	case *ast.CompositeLit:
		var t Taint
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t |= fl.exprTaint(kv.Value)
			} else {
				t |= fl.exprTaint(el)
			}
		}
		return t
	case *ast.CallExpr:
		return fl.callTaint(e)
	}
	return 0
}

// callTaint computes the taint of a call's results: builtins that forward
// their operands (append, copy-free conversions) propagate, everything else
// defers to the analyzer's Call summary.
func (fl *FuncFlow) callTaint(call *ast.CallExpr) Taint {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := fl.cfg.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				var t Taint
				for _, a := range call.Args {
					t |= fl.exprTaint(a)
				}
				return t
			case "min", "max":
				var t Taint
				for _, a := range call.Args {
					t |= fl.exprTaint(a)
				}
				return t
			}
			return 0
		}
	}
	// Conversions keep their operand's taint ([]byte(s), T(x)).
	if tv, ok := fl.cfg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return fl.exprTaint(call.Args[0])
	}
	if fl.cfg.Call == nil {
		return 0
	}
	args := make([]Taint, len(call.Args))
	for i, a := range call.Args {
		args[i] = fl.exprTaint(a)
	}
	return fl.cfg.Call(call, calleeOf(fl.cfg.Info, call), args)
}

// VarTaint returns the final taint of the variable behind expression e, or
// of the expression itself for non-identifiers.
func (fl *FuncFlow) VarTaint(e ast.Expr) Taint {
	return fl.exprTaint(e)
}

// isMapType reports whether expression e has map type.
func isMapType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isChanExpr reports whether expression e has channel type.
func isChanExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return isChanType(tv.Type)
}

// bodyOf returns the body of the function declaration or literal n, or nil.
func bodyOf(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.FuncDecl:
		return n.Body
	case *ast.FuncLit:
		return n.Body
	}
	return nil
}

// posInside reports whether pos falls within node's extent.
func posInside(pos token.Pos, node ast.Node) bool {
	return node != nil && node.Pos() <= pos && pos <= node.End()
}
