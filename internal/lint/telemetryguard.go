package lint

import (
	"bytes"
	"strings"

	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// telemetryPath is the import path of the observability layer whose handle
// types are nil-when-disabled.
const telemetryPath = "mce/internal/telemetry"

// TelemetryGuard enforces the instrumentation contract of the observability
// layer: a nil *telemetry.Engine (or *telemetry.BlockInstr) means telemetry
// is disabled, so every site that dereferences one — selecting a counter
// field, calling Snapshot, bumping a BlockInstr counter — must be dominated
// by a nil check (`if met != nil { ... }`, `if e.Metrics == nil { return }`,
// `if met := e.Metrics; met != nil { ... }`) or the value must provably come
// from a constructor (telemetry.NewEngine(), &telemetry.BlockInstr{}, new,
// address-of). An unguarded site is a latent panic that only fires in the
// telemetry-off configuration — exactly the configuration most tests run.
//
// The check is a small nil-ness dataflow over each function body rather than
// a syntactic pattern match: guards established by if-conditions (including
// `&&` chains and early-return `== nil` forms) flow into the dominated
// statements, assignments from constructors establish non-nil-ness,
// reassignment from anything else revokes it, and function literals inherit
// the guards in scope where they are created (the repo's goroutine idiom).
var TelemetryGuard = &Analyzer{
	Name: "telemetryguard",
	Doc: "every dereference of a possibly-nil *telemetry.Engine or " +
		"*telemetry.BlockInstr must be behind a nil check",
	Run: runTelemetryGuard,
}

func runTelemetryGuard(pass *Pass) error {
	if pass.Pkg.PkgPath == telemetryPath || !importsPath(pass.Pkg, telemetryPath) {
		return nil
	}
	w := &tgWalker{pass: pass, info: pass.Pkg.Info}
	base := w.packageLevelNonNil()
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w.stmts(fd.Body.List, cloneGuards(base))
		}
	}
	return nil
}

// importsPath reports whether pkg imports path (directly).
func importsPath(pkg *Package, path string) bool {
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() == path {
			return true
		}
	}
	return false
}

// tgWalker carries the per-package state of one telemetryguard run. Guard
// sets (map of chain keys known non-nil) are threaded through the walk
// explicitly; the walker itself holds only immutable context.
type tgWalker struct {
	pass *Pass
	info *types.Info
	// stmt is the innermost statement that owns the expression currently
	// being checked and that a fix may wrap; nil when wrapping is unsafe
	// (if/for init clauses, conditions).
	stmt ast.Stmt
}

// telemetryPtr reports whether t is *telemetry.Engine or
// *telemetry.BlockInstr, returning the bare type name.
func telemetryPtr(t types.Type) (string, bool) {
	ptr, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return "", false
	}
	// Unalias again below the pointer: mce.TelemetryEngine is an alias of
	// telemetry.Engine, and *TelemetryEngine must guard like *Engine.
	named, ok := types.Unalias(ptr.Elem()).(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != telemetryPath {
		return "", false
	}
	if n := obj.Name(); n == "Engine" || n == "BlockInstr" {
		return n, true
	}
	return "", false
}

// chainKey canonicalises the guardable expressions — an identifier or a
// chain of field selections rooted at one (`met`, `e.Metrics`,
// `w.opts.Metrics`) — so the same value is recognised at the guard and at
// the use. Root variables are keyed by declaration position, which makes
// shadowed names distinct keys for free.
func (w *tgWalker) chainKey(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := w.info.ObjectOf(e).(*types.Var); ok {
			return v.Name() + "@" + w.pass.Pkg.Fset.Position(v.Pos()).String(), true
		}
	case *ast.SelectorExpr:
		base, ok := w.chainKey(e.X)
		if !ok {
			return "", false
		}
		if f := selectedField(w.info, e); f != nil {
			return base + "." + f.Name(), true
		}
	}
	return "", false
}

// packageLevelNonNil seeds the guard set with package-level telemetry vars
// initialised from a constructor — those are non-nil in every function.
func (w *tgWalker) packageLevelNonNil() map[string]bool {
	g := make(map[string]bool)
	for _, f := range w.pass.Pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i, name := range vs.Names {
					if key, ok := w.chainKey(name); ok && w.nonNil(vs.Values[i], g) {
						g[key] = true
					}
				}
			}
		}
	}
	return g
}

// nonNil reports whether e is provably non-nil under the guards g: a
// constructor call from the telemetry package (NewEngine, NewHistogram...),
// builtin new, an address-of expression, or a chain already guarded.
func (w *tgWalker) nonNil(e ast.Expr, g map[string]bool) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.UnaryExpr:
		return e.Op == token.AND
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := w.info.ObjectOf(id).(*types.Builtin); ok {
				return b.Name() == "new"
			}
		}
		// A New*-named constructor counts wherever it is declared: the
		// telemetry package's own NewEngine, but also module-local wrappers
		// like mce.NewTelemetryEngine. By Go convention a New* function
		// returning a handle pointer yields a usable value, never nil.
		if fn := calleeOf(w.info, e); fn != nil && strings.HasPrefix(fn.Name(), "New") {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Results().Len() == 1 {
				if _, ok := telemetryPtr(sig.Results().At(0).Type()); ok {
					return true
				}
			}
		}
	case *ast.Ident, *ast.SelectorExpr:
		if key, ok := w.chainKey(e); ok {
			return g[key]
		}
	}
	return false
}

func cloneGuards(g map[string]bool) map[string]bool {
	out := make(map[string]bool, len(g))
	for k := range g {
		out[k] = true
	}
	return out
}

// stmts walks a statement list sequentially, mutating g as guards are
// established and revoked.
func (w *tgWalker) stmts(list []ast.Stmt, g map[string]bool) {
	for _, s := range list {
		w.stmtIn(s, g, true)
	}
}

// stmtIn processes one statement; fixable says whether s sits in a
// statement list (and may therefore be wrapped by a suggested fix) as
// opposed to an init/post clause.
func (w *tgWalker) stmtIn(s ast.Stmt, g map[string]bool, fixable bool) {
	prev := w.stmt
	if fixable {
		w.stmt = s
	} else {
		w.stmt = nil
	}
	defer func() { w.stmt = prev }()

	switch s := s.(type) {
	case *ast.ExprStmt:
		w.checkExpr(s.X, g)
	case *ast.IncDecStmt:
		w.checkExpr(s.X, g)
	case *ast.SendStmt:
		w.checkExpr(s.Chan, g)
		w.checkExpr(s.Value, g)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkExpr(r, g)
		}
	case *ast.AssignStmt:
		w.assign(s, g)
	case *ast.DeclStmt:
		w.declStmt(s, g)
	case *ast.IfStmt:
		w.ifStmt(s, g)
	case *ast.BlockStmt:
		w.stmts(s.List, cloneGuards(g))
		w.invalidateAssigned(s, g)
	case *ast.ForStmt:
		gf := cloneGuards(g)
		if s.Init != nil {
			w.stmtIn(s.Init, gf, false)
		}
		// Guards established before the loop survive only if the body does
		// not reassign them — the second iteration sees the body's effects.
		if s.Body != nil {
			w.invalidateAssigned(s.Body, gf)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, gf)
		}
		if s.Body != nil {
			w.stmts(s.Body.List, cloneGuards(gf))
		}
		if s.Post != nil {
			w.stmtIn(s.Post, gf, false)
		}
		w.invalidateAssigned(s, g)
	case *ast.RangeStmt:
		w.checkExpr(s.X, g)
		gf := cloneGuards(g)
		w.invalidateAssigned(s.Body, gf)
		w.stmts(s.Body.List, gf)
		w.invalidateAssigned(s, g)
	case *ast.SwitchStmt:
		gs := cloneGuards(g)
		if s.Init != nil {
			w.stmtIn(s.Init, gs, false)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, gs)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.checkExpr(e, gs)
				}
				w.stmts(cc.Body, cloneGuards(gs))
			}
		}
		w.invalidateAssigned(s, g)
	case *ast.TypeSwitchStmt:
		gs := cloneGuards(g)
		if s.Init != nil {
			w.stmtIn(s.Init, gs, false)
		}
		w.stmtIn(s.Assign, gs, false)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, cloneGuards(gs))
			}
		}
		w.invalidateAssigned(s, g)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				gs := cloneGuards(g)
				if cc.Comm != nil {
					w.stmtIn(cc.Comm, gs, false)
				}
				w.stmts(cc.Body, gs)
			}
		}
		w.invalidateAssigned(s, g)
	case *ast.GoStmt:
		w.checkExpr(s.Call, g)
	case *ast.DeferStmt:
		w.checkExpr(s.Call, g)
	case *ast.LabeledStmt:
		w.stmtIn(s.Stmt, g, fixable)
	}
}

// assign checks the RHS (and any dereferencing LHS) and then updates the
// guard set: a chainable LHS assigned a provably non-nil value becomes
// guarded; assigned anything else, it and every chain extending it are
// revoked.
func (w *tgWalker) assign(s *ast.AssignStmt, g map[string]bool) {
	for _, r := range s.Rhs {
		w.checkExpr(r, g)
	}
	for _, l := range s.Lhs {
		w.checkExpr(l, g)
	}
	if len(s.Lhs) == len(s.Rhs) && (s.Tok == token.ASSIGN || s.Tok == token.DEFINE) {
		for i := range s.Lhs {
			key, ok := w.chainKey(s.Lhs[i])
			if !ok {
				continue
			}
			if w.nonNil(s.Rhs[i], g) {
				g[key] = true
			} else {
				invalidateChain(g, key)
			}
		}
		return
	}
	for _, l := range s.Lhs {
		if key, ok := w.chainKey(l); ok {
			invalidateChain(g, key)
		}
	}
}

func (w *tgWalker) declStmt(s *ast.DeclStmt, g map[string]bool) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			w.checkExpr(v, g)
		}
		if len(vs.Names) != len(vs.Values) {
			continue
		}
		for i, name := range vs.Names {
			if key, ok := w.chainKey(name); ok && w.nonNil(vs.Values[i], g) {
				g[key] = true
			}
		}
	}
}

// ifStmt threads guards through the three-way split: condition facts flow
// into the then-branch (positive) and else-branch (negative), and when a
// `== nil` branch unconditionally leaves the function, the negative facts
// survive into the rest of the block — the early-return guard idiom.
func (w *tgWalker) ifStmt(s *ast.IfStmt, g map[string]bool) {
	gi := cloneGuards(g)
	if s.Init != nil {
		w.stmtIn(s.Init, gi, false)
	}
	pos, neg := w.cond(s.Cond, gi)
	gThen := cloneGuards(gi)
	for k := range pos {
		gThen[k] = true
	}
	w.stmts(s.Body.List, gThen)
	if s.Else != nil {
		gElse := cloneGuards(gi)
		for k := range neg {
			gElse[k] = true
		}
		w.stmtIn(s.Else, gElse, false)
	}
	w.invalidateAssigned(s, g)
	if terminates(s.Body) {
		for k := range neg {
			g[k] = true
		}
	}
}

// cond extracts the nil-ness facts of a condition: pos holds chains non-nil
// when the condition is true, neg holds chains non-nil when it is false. It
// also checks the condition's own subexpressions for unguarded derefs,
// respecting && / || short-circuit order.
func (w *tgWalker) cond(e ast.Expr, g map[string]bool) (pos, neg map[string]bool) {
	pos, neg = map[string]bool{}, map[string]bool{}
	switch b := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		switch b.Op {
		case token.LAND:
			lp, _ := w.cond(b.X, g)
			gr := cloneGuards(g)
			for k := range lp {
				gr[k] = true
			}
			rp, _ := w.cond(b.Y, gr)
			for k := range lp {
				pos[k] = true
			}
			for k := range rp {
				pos[k] = true
			}
			return pos, neg
		case token.LOR:
			_, ln := w.cond(b.X, g)
			gr := cloneGuards(g)
			for k := range ln {
				gr[k] = true
			}
			_, rn := w.cond(b.Y, gr)
			for k := range ln {
				neg[k] = true
			}
			for k := range rn {
				neg[k] = true
			}
			return pos, neg
		case token.NEQ, token.EQL:
			var other ast.Expr
			if w.isNil(b.X) {
				other = b.Y
			} else if w.isNil(b.Y) {
				other = b.X
			}
			w.checkExpr(e, g)
			if other != nil {
				if key, ok := w.chainKey(other); ok {
					if b.Op == token.NEQ {
						pos[key] = true
					} else {
						neg[key] = true
					}
				}
			}
			return pos, neg
		}
	case *ast.UnaryExpr:
		if b.Op == token.NOT {
			p, n := w.cond(b.X, g)
			return n, p
		}
	}
	w.checkExpr(e, g)
	return pos, neg
}

func (w *tgWalker) isNil(e ast.Expr) bool {
	tv, ok := w.info.Types[e]
	return ok && tv.IsNil()
}

// terminates reports whether a block unconditionally leaves the enclosing
// flow: its last statement is a return, a branch (break/continue/goto) or a
// panic call.
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// invalidateChain revokes key and every chain extending it (reassigning
// `e` kills the fact about `e.Metrics` too).
func invalidateChain(g map[string]bool, key string) {
	delete(g, key)
	for k := range g {
		if strings.HasPrefix(k, key+".") {
			delete(g, k)
		}
	}
}

// invalidateAssigned revokes every chain assigned (or inc/dec'd, or bound
// by a range clause) anywhere inside n — the conservative summary applied
// after compound statements and before loop bodies.
func (w *tgWalker) invalidateAssigned(n ast.Node, g map[string]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.AssignStmt:
			for _, l := range node.Lhs {
				if key, ok := w.chainKey(l); ok {
					invalidateChain(g, key)
				}
			}
		case *ast.IncDecStmt:
			if key, ok := w.chainKey(node.X); ok {
				invalidateChain(g, key)
			}
		case *ast.RangeStmt:
			for _, l := range []ast.Expr{node.Key, node.Value} {
				if l == nil {
					continue
				}
				if key, ok := w.chainKey(l); ok {
					invalidateChain(g, key)
				}
			}
		}
		return true
	})
}

// checkExpr flags every unguarded dereference of a telemetry pointer inside
// e. Function literals are walked with a copy of the current guards — a
// closure inherits the nil-checks in scope where it is written, which is
// exactly the instrumented-goroutine idiom the repo uses.
func (w *tgWalker) checkExpr(e ast.Expr, g map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			saved := w.stmt
			w.stmt = nil
			w.stmts(n.Body.List, cloneGuards(g))
			w.stmt = saved
			return false
		case *ast.SelectorExpr:
			w.derefCheck(n.X, g)
		case *ast.StarExpr:
			w.derefCheck(n.X, g)
		}
		return true
	})
}

// derefCheck reports x when it has a telemetry pointer type and is not
// provably non-nil at this point.
func (w *tgWalker) derefCheck(x ast.Expr, g map[string]bool) {
	tv, ok := w.info.Types[x]
	if !ok {
		return
	}
	tname, ok := telemetryPtr(tv.Type)
	if !ok {
		return
	}
	if w.nonNil(x, g) {
		return
	}
	key, chainable := w.chainKey(x)
	if !chainable {
		// A call result or other unnameable expression: nothing to guard by
		// name, and flagging those would punish helpers returning fresh
		// engines. Skip — the FP-biased choice.
		return
	}
	_ = key
	src := renderExpr(w.pass.Pkg.Fset, x)
	fix := w.guardFix(src)
	w.pass.ReportFix(x.Pos(), fix,
		"unguarded use of possibly-nil *telemetry.%s %s: nil means telemetry is disabled, so every instrumentation site needs `if %s != nil { ... }`",
		tname, src, src)
}

// guardFix wraps the innermost owning statement in `if src != nil { ... }`
// when that is mechanical and semantics-preserving: expression statements,
// inc/dec and compound assignments. Plain and defining assignments are left
// to a human (wrapping would change or shadow scope).
func (w *tgWalker) guardFix(src string) *SuggestedFix {
	s := w.stmt
	if s == nil {
		return nil
	}
	switch s := s.(type) {
	case *ast.ExprStmt, *ast.IncDecStmt:
	case *ast.AssignStmt:
		if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
			return nil
		}
	default:
		return nil
	}
	open := w.pass.edit(s.Pos(), s.Pos(), "if "+src+" != nil {\n")
	close := w.pass.edit(s.End(), s.End(), "\n}")
	return &SuggestedFix{
		Message: "wrap the statement in a nil guard",
		Edits:   []TextEdit{open, close},
	}
}

// renderExpr prints an expression back to source for diagnostics and fixes.
func renderExpr(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "<expr>"
	}
	return buf.String()
}
