package lint

import (
	"strings"
	"testing"
)

// TestAnalyzersOnFixtures drives every analyzer over its annotated fixtures:
// each case has at least one flagged and one clean file, and the // want
// annotations are checked in both directions (missing and unexpected
// findings both fail). Fixture sets in separate sublists are loaded as
// separate packages — wiretypes needs that, because gob.Register in the
// clean fixture would exempt the flagged one's interface field.
func TestAnalyzersOnFixtures(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		loads    [][]string
	}{
		{CtxPlumb, [][]string{{"ctxplumb/flagged.go", "ctxplumb/clean.go"}}},
		{LockBalance, [][]string{{"lockbalance/flagged.go", "lockbalance/clean.go"}}},
		{SortedAdj, [][]string{{"sortedadj/flagged.go", "sortedadj/clean.go"}}},
		{WireTypes, [][]string{{"wiretypes/flagged.go"}, {"wiretypes/clean.go"}}},
		{MapOrder, [][]string{{"maporder/flagged.go", "maporder/clean.go", "maporder/suppressed.go"}}},
		{TelemetryGuard, [][]string{{"telemetryguard/flagged.go", "telemetryguard/clean.go", "telemetryguard/suppressed.go"}}},
		{LockOrder, [][]string{{"lockorder/flagged.go", "lockorder/clean.go", "lockorder/suppressed.go"}}},
		{GoLifecycle, [][]string{{"golifecycle/flagged.go", "golifecycle/clean.go", "golifecycle/suppressed.go"}}},
		{ChanDiscipline, [][]string{{"chandiscipline/flagged.go", "chandiscipline/clean.go", "chandiscipline/suppressed.go", "chandiscipline/livelock.go"}}},
		{CasLoop, [][]string{{"casloop/flagged.go", "casloop/clean.go", "casloop/suppressed.go"}}},
		{HotAlloc, [][]string{{"hotalloc/flagged.go", "hotalloc/budgeted.go", "hotalloc/clean.go", "hotalloc/suppressed.go"}}},
		{HotBox, [][]string{{"hotbox/flagged.go", "hotbox/clean.go", "hotbox/suppressed.go"}}},
		{HotDefer, [][]string{{"hotdefer/flagged.go", "hotdefer/clean.go", "hotdefer/suppressed.go"}}},
		{HotSlice, [][]string{{"hotslice/flagged.go", "hotslice/clean.go", "hotslice/suppressed.go"}}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			t.Parallel()
			for _, files := range tc.loads {
				RunFixture(t, tc.analyzer, files...)
			}
		})
	}
}

// TestSuiteIsComplete pins the advertised analyzer set: the Makefile gate
// and the docs both promise these fifteen. goroutineleak (superseded by the
// interprocedural golifecycle) and atomicfield (absorbed into casloop) are
// deliberately absent.
func TestSuiteIsComplete(t *testing.T) {
	want := []string{
		"ctxplumb", "lockbalance", "sortedadj", "wiretypes",
		"maporder", "telemetryguard",
		"lockorder", "golifecycle", "chandiscipline", "casloop",
		"hotalloc", "hotbox", "hotdefer", "hotslice",
		"staleignore",
	}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q is missing Doc", a.Name)
		}
		// staleignore is the one meta-analyzer: it has no per-package Run
		// and is dispatched by RunAnalyzers after the suite completes.
		if a.Run == nil && a.Name != "staleignore" {
			t.Errorf("analyzer %q is missing Run", a.Name)
		}
	}
}

// TestSelfClean runs the full suite over the repo itself: the tree must stay
// green, because make check gates merges on exactly this invocation.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := LoadTests(moduleRoot(), true, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := RunAnalyzers(pkgs, Analyzers())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	if len(diags) > 0 {
		var b strings.Builder
		for _, d := range diags {
			b.WriteString("\n  " + d.String())
		}
		t.Errorf("the tree has %d unfixed finding(s); fix them or add a justified lint:ignore:%s", len(diags), b.String())
	}
}
