package lint

import (
	"fmt"
	"go/format"
	"go/token"
	"os"
	"sort"
)

// TextEdit is one byte-range replacement inside a file. Start and End are
// 0-based byte offsets (End exclusive); an insertion has Start == End.
type TextEdit struct {
	File  string `json:"file"`
	Start int    `json:"start"`
	End   int    `json:"end"`
	// NewText replaces the range. The result is gofmt-ed after applying, so
	// edits only need to be syntactically correct, not pretty.
	NewText string `json:"new_text"`
}

// SuggestedFix is a mechanical remediation attached to a Diagnostic: a set
// of edits that make the finding go away. Only fixes that are obviously
// behaviour-preserving (or behaviour-restoring, for determinism bugs) are
// suggested; judgement calls stay human.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// edit builds a TextEdit covering [start, end) in the pass's file set.
func (p *Pass) edit(start, end token.Pos, newText string) TextEdit {
	sp := p.Pkg.Fset.Position(start)
	ep := p.Pkg.Fset.Position(end)
	return TextEdit{File: sp.Filename, Start: sp.Offset, End: ep.Offset, NewText: newText}
}

// ReportFix records a finding carrying a suggested fix.
func (p *Pass) ReportFix(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// ApplyFixes applies every suggested fix of diags to the files on disk,
// gofmt-ing each touched file, and returns the file names changed (sorted).
// Overlapping edits are resolved first-reported-wins: a later edit that
// intersects an already-applied range is dropped, so -fix is safe to run on
// any diagnostic set and converges under repetition.
func ApplyFixes(diags []Diagnostic) ([]string, error) {
	byFile := make(map[string][]TextEdit)
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		for _, e := range d.Fix.Edits {
			byFile[e.File] = append(byFile[e.File], e)
		}
	}
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)

	var changed []string
	for _, file := range files {
		edits := byFile[file]
		// Apply bottom-up so earlier offsets stay valid; ties keep report
		// order via stable sort.
		sort.SliceStable(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
		src, err := os.ReadFile(file)
		if err != nil {
			return changed, fmt.Errorf("lint: applying fixes: %v", err)
		}
		out := src
		lastStart := len(src) + 1
		for _, e := range edits {
			if e.Start < 0 || e.End > len(src) || e.Start > e.End {
				return changed, fmt.Errorf("lint: fix edit out of range in %s (%d..%d of %d bytes)", file, e.Start, e.End, len(src))
			}
			if e.End > lastStart {
				continue // overlaps an already-applied edit; first wins
			}
			out = append(out[:e.Start], append([]byte(e.NewText), out[e.End:]...)...)
			lastStart = e.Start
		}
		formatted, err := format.Source(out)
		if err != nil {
			// A fix that breaks the parse must not hit the disk.
			return changed, fmt.Errorf("lint: fixed %s does not parse (fix bug): %v", file, err)
		}
		if string(formatted) == string(src) {
			continue
		}
		info, err := os.Stat(file)
		mode := os.FileMode(0o644)
		if err == nil {
			mode = info.Mode()
		}
		if err := os.WriteFile(file, formatted, mode); err != nil {
			return changed, fmt.Errorf("lint: writing fixed %s: %v", file, err)
		}
		changed = append(changed, file)
	}
	return changed, nil
}
