package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicField guards the telemetry-counter discipline repo-wide: once any
// code accesses a struct field through sync/atomic (atomic.AddInt64(&s.f),
// atomic.LoadInt64(&s.f), ...), every access to that field anywhere in the
// module must be atomic too. A single plain read races every concurrent
// atomic update — the race detector only catches it when a test happens to
// exercise both sides concurrently, while the analyzer catches it on any
// `make lint`. This matters here because the observability layer's
// correctness argument (PR 3) is exactly "counters are atomics, so
// instrumentation never perturbs nor races the enumeration"; one plain
// `s.f++` in a far-away package silently voids it.
//
// The check is whole-suite by construction: the set of atomically-accessed
// fields is collected across every loaded package first (one shared scan),
// then each package is searched for plain accesses to any of them —
// accessing package and declaring package need not coincide. Composite
// literals are exempt (pre-publication initialisation), as is the
// &s.f operand position of the sync/atomic call itself.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "a struct field accessed via sync/atomic anywhere must be accessed " +
		"atomically everywhere (no mixed plain reads/writes)",
	Run: runAtomicField,
}

// atomicFieldInfo is the suite-wide scan result: for every field touched
// through sync/atomic, one representative call position (for the
// diagnostic), plus the set of positions that are legitimate atomic
// operands and therefore not plain accesses. Fields are keyed by canonical
// object key, not pointer: the declaring package sees the source-checked
// field object while every other package sees its export-data twin.
type atomicFieldInfo struct {
	fields   map[string]atomicSite // field key -> one atomic call site
	operands map[token.Pos]bool    // positions of s.f operands inside atomic calls
}

// atomicSite describes one representative sync/atomic access of a field.
type atomicSite struct {
	pos   token.Position
	owner string // declaring struct type name
	name  string // field name
}

func runAtomicField(pass *Pass) error {
	info := pass.Suite.Memo("atomicfield", func() any {
		return scanAtomicFields(pass.Suite)
	}).(*atomicFieldInfo)
	if len(info.fields) == 0 {
		return nil
	}

	type finding struct {
		pos   token.Pos
		field string
		write bool
	}
	var findings []finding
	for _, f := range pass.Pkg.Files {
		// Track which selector positions are writes (assignment LHS or
		// IncDec operands) so the diagnostic can say read vs write, and
		// which are address-taken: passing &s.f to a helper that itself
		// uses atomics is legitimate (the helper's accesses are checked in
		// their own right), so bare address-of is skipped, not flagged.
		writes := make(map[token.Pos]bool)
		addr := make(map[token.Pos]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					writes[ast.Unparen(lhs).Pos()] = true
				}
			case *ast.IncDecStmt:
				writes[ast.Unparen(n.X).Pos()] = true
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					addr[ast.Unparen(n.X).Pos()] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				return false // initialisation before publication
			case *ast.SelectorExpr:
				field := selectedField(pass.Pkg.Info, n)
				if field == nil {
					return true
				}
				key := objKey(field)
				if _, atomic := info.fields[key]; !atomic {
					return true
				}
				if info.operands[n.Pos()] {
					return true // the &s.f inside the atomic call itself
				}
				if addr[n.Pos()] {
					return true // address passed on; not a plain access
				}
				findings = append(findings, finding{n.Pos(), key, writes[n.Pos()]})
			}
			return true
		})
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, fd := range findings {
		verb := "plain read of"
		if fd.write {
			verb = "plain write to"
		}
		at := info.fields[fd.field]
		pass.Reportf(fd.pos,
			"%s field %s.%s, which is accessed with sync/atomic at %s:%d: mixed access races every atomic update (use the atomic API everywhere)",
			verb, at.owner, at.name, shortPath(at.pos.Filename), at.pos.Line)
	}
	return nil
}

// scanAtomicFields walks every package of the suite once, recording each
// struct field that appears as &s.f (or s.f) in an argument of a
// sync/atomic call.
func scanAtomicFields(suite *Suite) *atomicFieldInfo {
	out := &atomicFieldInfo{
		fields:   make(map[string]atomicSite),
		operands: make(map[token.Pos]bool),
	}
	for _, pkg := range suite.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					expr := ast.Unparen(arg)
					if u, ok := expr.(*ast.UnaryExpr); ok && u.Op == token.AND {
						expr = ast.Unparen(u.X)
					}
					sel, ok := expr.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					field := selectedField(pkg.Info, sel)
					if field == nil {
						continue
					}
					key := objKey(field)
					if _, seen := out.fields[key]; !seen {
						out.fields[key] = atomicSite{
							pos:   pkg.Fset.Position(call.Pos()),
							owner: ownerName(field),
							name:  field.Name(),
						}
					}
					out.operands[sel.Pos()] = true
				}
				return true
			})
		}
	}
	return out
}

// selectedField resolves a selector expression to the struct field it
// selects, or nil for methods, package selectors and qualified identifiers.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// ownerName names the struct type declaring field, best effort.
func ownerName(field *types.Var) string {
	if field.Pkg() != nil {
		scope := field.Pkg().Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == field {
					return tn.Name()
				}
			}
		}
	}
	return "struct"
}

// shortPath trims the path to its last two elements for readable
// diagnostics.
func shortPath(p string) string {
	slash := 0
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' || p[i] == '\\' {
			slash++
			if slash == 2 {
				return p[i+1:]
			}
		}
	}
	return p
}
