package lint

import (
	"go/ast"
	"go/types"
)

// calleeOf resolves a call expression to the function or method object it
// invokes, or nil for calls through function values, builtins and
// conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether the call invokes the package-level function
// pkgPath.name (not a method).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// namedType unwraps pointers and aliases down to the named type, or nil.
func namedType(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t (possibly behind a pointer) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return isNamed(t, "context", "Context")
}

// hasCtxParam reports whether the signature takes a context.Context
// anywhere (idiomatically first, but position does not matter for the
// exemption).
func hasCtxParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// recvTypeName returns the receiver's named-type name of a method
// declaration ("" for plain functions).
func recvTypeName(info *types.Info, decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return ""
	}
	tv, ok := info.Types[decl.Recv.List[0].Type]
	if !ok {
		return ""
	}
	if n := namedType(tv.Type); n != nil {
		return n.Obj().Name()
	}
	return ""
}

// usedVar resolves an identifier expression to the variable it reads, or
// nil.
func usedVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// isChanType reports whether t is a channel type.
func isChanType(t types.Type) bool {
	_, ok := types.Unalias(t).Underlying().(*types.Chan)
	return ok
}

// selectedField resolves a selector expression to the struct field it
// selects, or nil for methods, package selectors and qualified identifiers.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// ownerName names the struct type declaring field, best effort.
func ownerName(field *types.Var) string {
	if field.Pkg() != nil {
		scope := field.Pkg().Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == field {
					return tn.Name()
				}
			}
		}
	}
	return "struct"
}

// shortPath trims the path to its last two elements for readable
// diagnostics.
func shortPath(p string) string {
	slash := 0
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' || p[i] == '\\' {
			slash++
			if slash == 2 {
				return p[i+1:]
			}
		}
	}
	return p
}
