package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the lock-order fact layer of the v3 concurrency engine: for
// every declared function it computes, interprocedurally over the suite's
// call graph, (a) the set of locks the function may acquire — directly or
// through any callee — and (b) the ordered acquisition pairs it generates:
// "lock b is acquired while lock a is held". The per-function acquire sets
// are exported as LockSetFact on the *types.Func (the same fact mechanism
// maporder's summaries use), so the layer's knowledge crosses package
// boundaries through export-data object views; the pairs feed the lockorder
// analyzer's global mutex-acquisition graph.
//
// Lock identity is a canonical string key, not a pointer: struct fields and
// package-level variables use objKey (so the defining package's view and
// every importer's export-data view of `Client.mu` unify on one node), and
// function-local mutexes are keyed under their owning function (a local
// lock cannot participate in a cross-function cycle under a different
// name, and scoping the key stops two unrelated locals called `mu` from
// fabricating one).
//
// The walk is deliberately an over-approximation in the direction that
// suits a deadlock linter: branches both taken, loops run once, held sets
// merged by union. A may-hold that never happens can at worst report a
// cycle that careful runtime ordering avoids — worth a justified ignore —
// while an under-approximation would silently miss real deadlocks.

// LockSetFact is the exported per-function summary: the canonical keys of
// every lock the function may acquire, directly or transitively. Sorted,
// so fact equality is content equality.
type LockSetFact struct {
	Acquires []string
}

// AFact marks LockSetFact as a fact type.
func (*LockSetFact) AFact() {}

// lockPair is one edge of the acquisition-order graph: while `held` was
// held, `acquired` was acquired at pos (in pkg). via distinguishes a direct
// Lock call from an acquisition inside a callee, for the diagnostic text.
type lockPair struct {
	held     string
	acquired string
	pos      token.Pos
	pkg      *Package
	via      string // callee FullName for indirect acquisitions, "" for direct
}

// lockInfo is the whole-suite result the lockorder analyzer consumes.
type lockInfo struct {
	// pairs is every acquisition-order edge observed anywhere in the suite,
	// in deterministic order.
	pairs []lockPair
	// acquires maps function key -> set of lock keys (transitive).
	acquires map[string]map[string]bool
	// names maps a lock key to a short printable name ("Client.mu").
	names map[string]string
}

// lockFacts computes (once per suite) the lock fact layer. pass is only
// used to export facts and reach the suite.
func lockFacts(pass *Pass) *lockInfo {
	return pass.Suite.Memo("lockfacts", func() any {
		return buildLockInfo(pass)
	}).(*lockInfo)
}

func buildLockInfo(pass *Pass) *lockInfo {
	suite := pass.Suite
	cg := suite.CallGraph()
	info := &lockInfo{
		acquires: make(map[string]map[string]bool),
		names:    make(map[string]string),
	}

	// Local summaries first: direct acquisitions and held-at-call records
	// per function (and per goroutine literal, which contributes pairs as an
	// anonymous scope but no summary — its body runs on nobody's stack).
	type callUnder struct {
		callee *types.Func
		held   []string
		pos    token.Pos
		pkg    *Package
	}
	direct := make(map[string]map[string]bool) // fn key -> directly acquired keys
	calls := make(map[string][]callUnder)      // fn key -> calls with held sets
	var anonCalls []callUnder                  // calls inside go/defer literals

	for _, fn := range cg.Funcs() {
		pkg, decl := cg.Decl(fn)
		if decl == nil || decl.Body == nil {
			continue
		}
		key := objKey(fn)
		direct[key] = make(map[string]bool)
		w := &lockWalker{
			pkg:     pkg,
			info:    info,
			fnKey:   key,
			acquire: func(lock string) { direct[key][lock] = true },
			call: func(callee *types.Func, held []string, pos token.Pos) {
				calls[key] = append(calls[key], callUnder{callee, held, pos, pkg})
			},
		}
		w.anonCall = func(callee *types.Func, held []string, pos token.Pos) {
			anonCalls = append(anonCalls, callUnder{callee, held, pos, pkg})
		}
		w.walkBody(decl.Body)
	}

	// Transitive acquire sets to fixpoint over the call graph: a function
	// acquires what it locks plus what its callees acquire. The worklist is
	// seeded with every function and re-queues callers on change.
	keys := make([]string, 0, len(direct))
	for k := range direct {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		set := make(map[string]bool, len(direct[k]))
		for l := range direct[k] {
			set[l] = true
		}
		info.acquires[k] = set
	}
	work := append([]string(nil), keys...)
	queued := make(map[string]bool, len(keys))
	for len(work) > 0 {
		k := work[0]
		work = work[1:]
		queued[k] = false
		changed := false
		for _, cu := range calls[k] {
			for l := range info.acquires[objKey(cu.callee)] {
				if !info.acquires[k][l] {
					info.acquires[k][l] = true
					changed = true
				}
			}
		}
		if !changed {
			continue
		}
		s := cg.decls[k]
		if s.obj == nil {
			continue
		}
		for _, caller := range cg.Callers(s.obj) {
			ck := objKey(caller)
			if _, tracked := info.acquires[ck]; tracked && !queued[ck] {
				queued[ck] = true
				work = append(work, ck)
			}
		}
	}

	// Indirect pairs: a call made with locks held pairs each held lock with
	// everything the callee (transitively) acquires.
	emit := func(cu callUnder) {
		ck := objKey(cu.callee)
		targets := make([]string, 0, len(info.acquires[ck]))
		for l := range info.acquires[ck] {
			targets = append(targets, l)
		}
		sort.Strings(targets)
		for _, held := range cu.held {
			for _, acq := range targets {
				if held == acq {
					continue // self-order (recursive acquire) is lockbalance's beat
				}
				info.pairs = append(info.pairs, lockPair{
					held: held, acquired: acq, pos: cu.pos, pkg: cu.pkg,
					via: cu.callee.FullName(),
				})
			}
		}
	}
	for _, k := range keys {
		for _, cu := range calls[k] {
			emit(cu)
		}
	}
	for _, cu := range anonCalls {
		emit(cu)
	}

	// Export the per-function summaries as facts so downstream packages —
	// and the engine tests — can import them through export-data views.
	for _, k := range keys {
		s := cg.decls[k]
		if s.obj == nil {
			continue
		}
		set := info.acquires[k]
		if len(set) == 0 {
			continue
		}
		sorted := make([]string, 0, len(set))
		for l := range set {
			sorted = append(sorted, l)
		}
		sort.Strings(sorted)
		pass.ExportObjectFact(s.obj, &LockSetFact{Acquires: sorted})
	}

	sort.Slice(info.pairs, func(i, j int) bool {
		a, b := info.pairs[i], info.pairs[j]
		if a.held != b.held {
			return a.held < b.held
		}
		if a.acquired != b.acquired {
			return a.acquired < b.acquired
		}
		return a.pos < b.pos
	})
	return info
}

// lockWalker walks one function body in source order, maintaining the held
// set. Function literals under go/defer are walked as fresh scopes (their
// body runs on another stack or at exit); immediately-invoked and assigned
// literals are walked inline with the current held set — a closure called
// while a lock is held acquires on the caller's stack.
type lockWalker struct {
	pkg      *Package
	info     *lockInfo
	fnKey    string
	held     []string
	acquire  func(lock string)
	call     func(callee *types.Func, held []string, pos token.Pos)
	anonCall func(callee *types.Func, held []string, pos token.Pos)
}

// lockKey canonicalises the receiver expression of a Lock/Unlock call.
// Fields and package-level vars key by object (cross-package identity);
// locals key under the owning function.
func (w *lockWalker) lockKey(recv ast.Expr, read bool) string {
	var key string
	switch e := ast.Unparen(recv).(type) {
	case *ast.SelectorExpr:
		if f := selectedField(w.pkg.Info, e); f != nil {
			key = objKey(f)
		} else if v, ok := w.pkg.Info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
			key = objKey(v) // pkg.Var qualified reference
		}
	case *ast.Ident:
		if v, ok := w.pkg.Info.Uses[e].(*types.Var); ok {
			if v.IsField() || (v.Pkg() != nil && v.Parent() == v.Pkg().Scope()) {
				key = objKey(v)
			}
		}
	}
	if key == "" {
		key = w.fnKey + "/" + types.ExprString(recv)
	}
	if read {
		key = "R:" + key
	}
	if _, ok := w.info.names[key]; !ok {
		name := types.ExprString(recv)
		if read {
			name += " (RLock)"
		}
		w.info.names[key] = name
	}
	return key
}

// lockCallOf classifies e as a Lock/Unlock-family call on a sync.Mutex or
// sync.RWMutex.
func (w *lockWalker) lockCallOf(e ast.Expr) (key string, acquire, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	var read bool
	switch sel.Sel.Name {
	case "Lock", "Unlock":
	case "RLock", "RUnlock":
		read = true
	default:
		return "", false, false
	}
	tv, has := w.pkg.Info.Types[sel.X]
	if !has {
		return "", false, false
	}
	if !isNamed(tv.Type, "sync", "Mutex") && !isNamed(tv.Type, "sync", "RWMutex") {
		return "", false, false
	}
	return w.lockKey(sel.X, read), sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock", true
}

func (w *lockWalker) push(key string, pos token.Pos) {
	// Record the order edge against every currently-held lock, then hold it.
	for _, h := range w.held {
		if h != key {
			w.info.pairs = append(w.info.pairs, lockPair{
				held: h, acquired: key, pos: pos, pkg: w.pkg,
			})
		}
	}
	w.acquireKey(key)
	w.held = append(w.held, key)
}

func (w *lockWalker) acquireKey(key string) {
	if w.acquire != nil {
		w.acquire(key)
	}
}

func (w *lockWalker) release(key string) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i] == key {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

// walkBody drives the source-order traversal of one scope.
func (w *lockWalker) walkBody(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	w.walkNode(body)
}

func (w *lockWalker) walkNode(n ast.Node) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.ExprStmt:
		if key, acquire, ok := w.lockCallOf(n.X); ok {
			if acquire {
				w.push(key, n.Pos())
			} else {
				w.release(key)
			}
			return
		}
		w.walkExpr(n.X)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps mu held to scope end (that is the point),
		// so the key stays in the held set; other deferred calls — including
		// literals — run after this scope's locks are notionally released,
		// so they are walked with no holds.
		if _, acquire, ok := w.lockCallOf(n.Call); ok && !acquire {
			return
		}
		w.walkDetached(n.Call)
	case *ast.GoStmt:
		// The spawned body runs on its own stack with nothing held.
		w.walkDetached(n.Call)
	case *ast.FuncLit:
		// A literal not under go/defer: its body may run here, on this
		// stack, with the current holds (worst case). Walk it inline.
		w.walkNode(n.Body)
	default:
		// Statements and expressions with sub-structure: walk children in
		// source order. Calls are intercepted by walkExpr.
		switch e := n.(type) {
		case ast.Expr:
			w.walkExpr(e)
			return
		}
		var children []ast.Node
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			if c != nil {
				children = append(children, c)
			}
			return false
		})
		for _, c := range children {
			w.walkNode(c)
		}
	}
}

// walkExpr walks an expression, recording call sites with the current held
// set and descending into immediately-walked literals.
func (w *lockWalker) walkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.walkNode(n.Body)
			return false
		case *ast.CallExpr:
			if key, acquire, ok := w.lockCallOf(n); ok {
				if acquire {
					w.push(key, n.Pos())
				} else {
					w.release(key)
				}
				return false
			}
			if callee := calleeOf(w.pkg.Info, n); callee != nil && len(w.held) > 0 {
				if w.call != nil {
					w.call(callee, append([]string(nil), w.held...), n.Pos())
				}
			}
		}
		return true
	})
}

// walkDetached analyzes a call that runs on another stack (go statement,
// non-unlock defer): literals are walked with an empty held set so their
// internal acquisition orders still register; named callees need no record
// here — their own bodies are walked as functions in their own right, and
// they start with no caller-held locks.
func (w *lockWalker) walkDetached(call *ast.CallExpr) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		d := &lockWalker{
			pkg:   w.pkg,
			info:  w.info,
			fnKey: w.fnKey,
			call:  w.anonOrCall(),
		}
		d.anonCall = d.call
		d.walkBody(lit.Body)
	}
	// Arguments are evaluated on this stack, with the current holds.
	for _, arg := range call.Args {
		w.walkExpr(arg)
	}
}

// anonOrCall routes held-at-call records of detached scopes to the
// anonymous sink (they have no function summary of their own).
func (w *lockWalker) anonOrCall() func(*types.Func, []string, token.Pos) {
	if w.anonCall != nil {
		return w.anonCall
	}
	return w.call
}
