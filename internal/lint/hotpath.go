package lint

import (
	"go/ast"
	"go/types"
	"path"
	"sort"
	"strings"
)

// The hot-path fact pass (PR 10): the perf layer's foundation. Enumeration
// roots — the sequential and parallel Bron–Kerbosch drivers, the bitset
// kernels, block analysis, the telemetry fast paths — carry a
// //mce:hotpath annotation on their declaration; this pass closes the
// annotated set over the suite's string-keyed cross-package call graph and
// exports a HotPathFact for every function the enumeration inner loop can
// reach. The hotalloc/hotbox/hotdefer/hotslice analyzers all consume the
// same set, so "hot" means exactly one thing module-wide.
//
// A //mce:coldpath annotation prunes the closure: functions that are
// reachable from a hot root but run per block or per run rather than per
// recursion node (runner construction, option validation) stop propagation
// so their error-formatting and setup allocations do not drown the signal.
//
// Like the call graph itself, the hot set under-approximates: calls through
// function values and interface methods have no edges, so callees reached
// only that way must carry their own annotation (the adjacency
// implementations in mcealg do exactly that).

// hotDirective marks a function as a hot-path root; anything after the
// directive on the same line is a free-form reason.
const hotDirective = "//mce:hotpath"

// coldDirective stops hot-path propagation through the annotated function.
const coldDirective = "//mce:coldpath"

// HotPathFact marks a declared function as reachable from an annotated
// hot-path root. Root names the nearest annotated root for diagnostics.
type HotPathFact struct {
	Root string
}

func (*HotPathFact) AFact() {}

// hotDecl is one hot function declared in a loaded package.
type hotDecl struct {
	decl *ast.FuncDecl
	fn   *types.Func
	key  string
	root string // display name of the annotated root that made it hot
}

// hotInfo is the suite-wide hot-function set, built once per run.
type hotInfo struct {
	hot        map[string]string // objKey -> root display name
	cold       map[string]bool
	declsByPkg map[*Package][]hotDecl
}

// hotData returns the suite's hot-path info, computing it on first use.
func hotData(s *Suite) *hotInfo {
	return s.Memo("hotpath", func() any { return buildHotInfo(s) }).(*hotInfo)
}

// hasDirective reports whether the doc comment carries the given
// //mce:... directive as its own comment line.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// funcDisplay renders fn for diagnostics with the import path shortened to
// its base: "(*mcealg.parWorker).bk", "bitset.(*Set).AndCount" style.
func funcDisplay(fn *types.Func) string {
	full := fn.FullName()
	if fn.Pkg() == nil {
		return full
	}
	p := fn.Pkg().Path()
	if !strings.Contains(full, p+".") {
		return full
	}
	if strings.HasPrefix(full, p+".") {
		// Package-level function: qualify with the short package name.
		return path.Base(p) + "." + strings.TrimPrefix(full, p+".")
	}
	// Method: the path is embedded in the receiver type.
	return strings.ReplaceAll(full, p+".", path.Base(p)+".")
}

// budgetFuncName renders fn the way .mcevet/allocbudget.json keys it: the
// package path is carried separately, so the name drops it entirely —
// "New", "(*Set).AndCount", "(*parWorker).bk".
func budgetFuncName(fn *types.Func) string {
	full := fn.FullName()
	if fn.Pkg() == nil {
		return full
	}
	return strings.ReplaceAll(full, fn.Pkg().Path()+".", "")
}

// buildHotInfo scans every loaded package for annotations and closes the
// root set over the call graph.
func buildHotInfo(s *Suite) *hotInfo {
	info := &hotInfo{
		hot:        make(map[string]string),
		cold:       make(map[string]bool),
		declsByPkg: make(map[*Package][]hotDecl),
	}
	type root struct{ key, display string }
	var roots []root
	for _, pkg := range s.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if hasDirective(fd.Doc, coldDirective) {
					info.cold[objKey(fn)] = true
					continue
				}
				if hasDirective(fd.Doc, hotDirective) {
					roots = append(roots, root{key: objKey(fn), display: funcDisplay(fn)})
				}
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].key < roots[j].key })

	g := s.CallGraph()
	for _, r := range roots {
		// BFS per root in sorted order; the first root reaching a function
		// names it in diagnostics, deterministically.
		stack := []string{r.key}
		for len(stack) > 0 {
			key := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, done := info.hot[key]; done || info.cold[key] {
				continue
			}
			info.hot[key] = r.display
			for next := range g.callees[key] {
				if _, done := info.hot[next]; !done && !info.cold[next] {
					stack = append(stack, next)
				}
			}
		}
	}

	for key, rootName := range info.hot {
		site, ok := g.decls[key]
		if !ok {
			continue
		}
		s.facts.export(site.obj, &HotPathFact{Root: rootName})
		info.declsByPkg[site.pkg] = append(info.declsByPkg[site.pkg], hotDecl{
			decl: site.decl,
			fn:   site.obj,
			key:  key,
			root: rootName,
		})
	}
	for _, decls := range info.declsByPkg {
		sort.Slice(decls, func(i, j int) bool { return decls[i].decl.Pos() < decls[j].decl.Pos() })
	}
	return info
}

// declsIn returns the hot functions declared in pkg, in source order.
func (h *hotInfo) declsIn(pkg *Package) []hotDecl {
	return h.declsByPkg[pkg]
}

// inCycle reports whether fn participates in a call-graph cycle — i.e. it
// is reachable from one of its own callees. A defer in such a function
// allocates one defer record per recursion node, which is why hotdefer
// treats recursion like a loop.
func (g *CallGraph) inCycle(fn *types.Func) bool {
	target := objKey(fn)
	seen := make(map[string]bool)
	var stack []string
	for next := range g.callees[target] {
		stack = append(stack, next)
	}
	for len(stack) > 0 {
		key := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if key == target {
			return true
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		for next := range g.callees[key] {
			if !seen[next] {
				stack = append(stack, next)
			}
		}
	}
	return false
}
