package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotbox: no avoidable per-call allocation machinery in hot functions.
// Three shapes, all of which the enumeration loop pays per recursion node:
//
//   - calls into fmt or reflect — both allocate and defeat inlining; the
//     hot path has no business formatting anything;
//   - implicit interface boxing of a non-pointer-shaped value (a slice
//     passed to sort.Slice as `any`, an int assigned to an interface
//     variable) — each conversion heap-allocates a box;
//   - a variable the compiler moved to the heap because a closure in a hot
//     loop captures it — the capture allocates once, but the variable's
//     every access becomes an indirection inside the loop.
//
// Constant arguments and pointer-shaped values (pointers, channels, maps,
// funcs) convert to interfaces without allocating and are not flagged.
var HotBox = &Analyzer{
	Name: "hotbox",
	Doc: "interface boxing, fmt/reflect use, or closure-capture escape " +
		"inside a hot-path function — per-node allocation machinery the " +
		"enumeration cost model cannot absorb",
	Run: runHotBox,
}

func runHotBox(pass *Pass) error {
	h := hotData(pass.Suite)
	decls := h.declsIn(pass.Pkg)
	if len(decls) == 0 {
		return nil
	}
	var esc *escapeData
	for _, hd := range decls {
		if declHasLoopClosure(hd.decl) {
			// Escape data is only needed for the capture check; load it
			// lazily so AST-only packages skip the compiler run.
			var err error
			if esc, err = escapeFor(pass.Suite, pass.Pkg); err != nil {
				return err
			}
			break
		}
	}
	for _, hd := range decls {
		checkBoxing(pass, hd)
		if esc != nil {
			checkCaptures(pass, hd, esc)
		}
	}
	return nil
}

// checkBoxing walks one hot declaration for fmt/reflect calls and implicit
// interface conversions that allocate.
func checkBoxing(pass *Pass, hd hotDecl) {
	info := pass.Pkg.Info
	ast.Inspect(hd.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeOf(info, n); fn != nil && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "fmt", "reflect":
					pass.Reportf(n.Pos(),
						"hot-path call to %s.%s (hot via %s): fmt/reflect allocate on every call; hoist it off the hot path or lint:ignore a cold branch",
						fn.Pkg().Name(), fn.Name(), hd.root)
				}
				checkCallBoxing(pass, hd, n, fn)
			} else if tv, ok := info.Types[n.Fun]; ok && tv.IsType() && len(n.Args) == 1 {
				// Explicit conversion T(x) with an interface target.
				reportIfBoxes(pass, hd, n.Args[0], tv.Type, "converted to")
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if lt := lhsType(info, lhs); lt != nil {
						reportIfBoxes(pass, hd, n.Rhs[i], lt, "assigned to")
					}
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				if tv, ok := info.Types[n.Type]; ok {
					for _, v := range n.Values {
						reportIfBoxes(pass, hd, v, tv.Type, "assigned to")
					}
				}
			}
		}
		return true
	})
}

// checkCallBoxing flags arguments boxed into interface parameters.
func checkCallBoxing(pass *Pass, hd hotDecl, call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // xs... passes the slice through, no boxing
			}
			if sl, ok := sig.Params().At(np - 1).Type().Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if pt != nil {
			reportIfBoxes(pass, hd, arg, pt, "passed as")
		}
	}
}

// reportIfBoxes reports when assigning/passing expr to target allocates an
// interface box: target is an interface, expr is a non-constant,
// non-pointer-shaped concrete value.
func reportIfBoxes(pass *Pass, hd hotDecl, expr ast.Expr, target types.Type, verb string) {
	if _, ok := target.(*types.TypeParam); ok {
		return // generic instantiation (slices.Sort and friends), not boxing
	}
	if !types.IsInterface(target) {
		return
	}
	tv, ok := pass.Pkg.Info.Types[expr]
	if !ok || tv.Type == nil || tv.IsNil() || tv.Value != nil {
		return // untyped nil and constants box without a runtime allocation
	}
	if types.IsInterface(tv.Type) || isPointerShaped(tv.Type) {
		return
	}
	pass.Reportf(expr.Pos(),
		"hot-path interface boxing (hot via %s): %s %s %s allocates per call",
		hd.root, tv.Type.String(), verb, target.String())
}

// isPointerShaped reports whether values of t fit an interface word
// directly (no box allocation on conversion).
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Basic:
		if b, ok := t.Underlying().(*types.Basic); ok {
			return b.Kind() == types.UnsafePointer
		}
		return true
	}
	return false
}

// lhsType resolves the static type of an assignment target, or nil for
// blank and index targets.
func lhsType(info *types.Info, lhs ast.Expr) types.Type {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return nil
		}
		if obj, ok := info.Defs[lhs]; ok && obj != nil {
			return nil // := defines a new var, its type is the RHS's, no conversion
		}
		if obj, ok := info.Uses[lhs].(*types.Var); ok {
			return obj.Type()
		}
	case *ast.SelectorExpr:
		if v := selectedField(info, lhs); v != nil {
			return v.Type()
		}
	}
	return nil
}

// declHasLoopClosure reports whether the declaration contains a function
// literal lexically inside a loop — the precondition for the capture check.
func declHasLoopClosure(decl *ast.FuncDecl) bool {
	found := false
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			switch m := m.(type) {
			case *ast.ForStmt:
				if m.Body != nil {
					walk(m.Body, true)
				}
				return false
			case *ast.RangeStmt:
				if m.Body != nil {
					walk(m.Body, true)
				}
				return false
			case *ast.FuncLit:
				if inLoop {
					found = true
					return false
				}
			}
			return true
		})
	}
	walk(decl.Body, false)
	return found
}

// checkCaptures flags "moved to heap" escapes whose variable is captured by
// a closure inside a loop of the hot function: hotalloc cedes these sites
// (captureClaimed) because the remedy is restructuring the closure, not
// budgeting the allocation.
func checkCaptures(pass *Pass, hd hotDecl, esc *escapeData) {
	for _, site := range esc.byFunc[hd.key] {
		if !captureClaimed(pass.Pkg, hd.decl, site) {
			continue
		}
		name := strings.TrimPrefix(site.msg, "moved to heap: ")
		pass.Reportf(posFor(pass.Pkg, site.pos),
			"hot-loop closure capture (hot via %s): %s is moved to the heap because a closure in a loop captures it; pass it as a parameter or hoist the closure",
			hd.root, name)
	}
}

// captureClaimed reports whether the escape site is a variable moved to the
// heap by a loop-closure capture inside decl — the class hotbox owns and
// hotalloc skips. The variable is identified by the site position (the
// compiler reports "moved to heap" at the declaring identifier).
func captureClaimed(pkg *Package, decl *ast.FuncDecl, site escapeSite) bool {
	name, ok := strings.CutPrefix(site.msg, "moved to heap: ")
	if !ok || decl.Body == nil {
		return false
	}
	var obj types.Object
	ast.Inspect(decl, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != name {
			return true
		}
		def := pkg.Info.Defs[id]
		if def == nil {
			return true
		}
		p := pkg.Fset.Position(id.Pos())
		if p.Filename == site.pos.Filename && p.Line == site.pos.Line {
			obj = def
		}
		return true
	})
	if obj == nil {
		return false
	}
	claimed := false
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if claimed {
				return false
			}
			switch m := m.(type) {
			case *ast.ForStmt:
				if m.Body != nil {
					walk(m.Body, true)
				}
				return false
			case *ast.RangeStmt:
				if m.Body != nil {
					walk(m.Body, true)
				}
				return false
			case *ast.FuncLit:
				if inLoop && funcLitUses(pkg.Info, m, obj) {
					claimed = true
				}
				return false
			}
			return true
		})
	}
	walk(decl.Body, false)
	return claimed
}

// funcLitUses reports whether the literal's body references obj.
func funcLitUses(info *types.Info, lit *ast.FuncLit, obj types.Object) bool {
	used := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
		}
		return true
	})
	return used
}
