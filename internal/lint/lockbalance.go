package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockBalance enforces the mutex discipline of the cluster and core hot
// paths: a mu.Lock() that is not immediately covered by defer mu.Unlock()
// opens a manual critical section, and every path out of the enclosing
// function — every return statement and the fall-through exit — must
// release the lock first. A single early return that skips the unlock
// deadlocks the next Lock() caller; in the coordinator that is every other
// worker goroutine, which is precisely the silent-stall failure mode the
// fault-tolerance work guards against.
var LockBalance = &Analyzer{
	Name: "lockbalance",
	Doc: "a manual mu.Lock() (no defer mu.Unlock()) must be released on " +
		"every return path",
	Run: runLockBalance,
}

func runLockBalance(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		// Every function body — declarations and literals — is checked as
		// its own scope with no locks held on entry; the statement walk
		// never descends into nested literals itself.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body != nil {
				lb := &lockChecker{pass: pass, info: info}
				exit, terminated := lb.block(body.List, lockState{})
				if !terminated {
					lb.reportHeld(exit, "function exit")
				}
			}
			return true
		})
	}
	return nil
}

// lockState maps a locked expression ("c.mu", "R:c.mu" for read locks) to
// the position of the Lock call that opened the critical section.
type lockState map[string]token.Pos

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

type lockChecker struct {
	pass     *Pass
	info     *types.Info
	reported map[token.Pos]bool
}

// lockOp classifies a statement as a Lock/Unlock call on a sync.Mutex or
// sync.RWMutex and returns the state key; ok is false otherwise.
func (lb *lockChecker) lockOp(stmt ast.Stmt) (key string, acquire bool, pos token.Pos, ok bool) {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return "", false, 0, false
	}
	return lb.lockCall(es.X)
}

func (lb *lockChecker) lockCall(e ast.Expr) (key string, acquire bool, pos token.Pos, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, 0, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, 0, false
	}
	name := sel.Sel.Name
	var read bool
	switch name {
	case "Lock", "Unlock":
	case "RLock", "RUnlock":
		read = true
	default:
		return "", false, 0, false
	}
	tv, has := lb.info.Types[sel.X]
	if !has {
		return "", false, 0, false
	}
	if !isNamed(tv.Type, "sync", "Mutex") && !isNamed(tv.Type, "sync", "RWMutex") {
		return "", false, 0, false
	}
	key = types.ExprString(sel.X)
	if read {
		key = "R:" + key
	}
	return key, name == "Lock" || name == "RLock", call.Pos(), true
}

// deferredUnlock reports the key released when stmt is `defer x.Unlock()`.
func (lb *lockChecker) deferredUnlock(stmt ast.Stmt) (string, bool) {
	ds, isDefer := stmt.(*ast.DeferStmt)
	if !isDefer {
		return "", false
	}
	key, acquire, _, ok := lb.lockCall(ds.Call)
	if !ok || acquire {
		return "", false
	}
	return key, true
}

func (lb *lockChecker) reportHeld(state lockState, where string) {
	if lb.reported == nil {
		lb.reported = make(map[token.Pos]bool)
	}
	for key, pos := range state {
		if lb.reported[pos] {
			continue
		}
		lb.reported[pos] = true
		name := key
		verb := "Lock"
		if len(key) > 2 && key[:2] == "R:" {
			name, verb = key[2:], "RLock"
		}
		lb.pass.Reportf(pos,
			"%s.%s() is not immediately deferred and is not released before %s",
			name, verb, where)
	}
}

// block walks one statement list. state is mutated to the fall-through exit
// state; terminated reports that every path through the list returns (so
// the fall-through state is unreachable).
func (lb *lockChecker) block(stmts []ast.Stmt, state lockState) (lockState, bool) {
	for i := 0; i < len(stmts); i++ {
		stmt := stmts[i]
		for {
			ls, isLabeled := stmt.(*ast.LabeledStmt)
			if !isLabeled {
				break
			}
			stmt = ls.Stmt
		}
		if key, acquire, pos, ok := lb.lockOp(stmt); ok {
			if acquire {
				// The canonical pairing: Lock immediately followed by the
				// matching defer Unlock covers every exit path at once.
				if i+1 < len(stmts) {
					if dkey, dok := lb.deferredUnlock(stmts[i+1]); dok && dkey == key {
						i++
						continue
					}
				}
				state[key] = pos
			} else {
				delete(state, key)
			}
			continue
		}
		if key, ok := lb.deferredUnlock(stmt); ok {
			// A later defer still guards every subsequent exit.
			delete(state, key)
			continue
		}

		switch s := stmt.(type) {
		case *ast.ReturnStmt:
			lb.reportHeld(state, "this return")
			return state, true
		case *ast.BranchStmt:
			// break/continue/goto leave the list; where they land is out of
			// scope for this intentionally simple walk, so stay silent
			// rather than guess.
			return state, true
		case *ast.BlockStmt:
			var term bool
			state, term = lb.block(s.List, state)
			if term {
				return state, true
			}
		case *ast.IfStmt:
			if s.Init != nil {
				state, _ = lb.block([]ast.Stmt{s.Init}, state)
			}
			thenExit, thenTerm := lb.block(s.Body.List, state.clone())
			elseExit, elseTerm := state.clone(), false
			if s.Else != nil {
				elseExit, elseTerm = lb.block([]ast.Stmt{s.Else}, state.clone())
			}
			if thenTerm && elseTerm {
				return state, true
			}
			state = merge(thenTerm, thenExit, elseTerm, elseExit)
		case *ast.ForStmt, *ast.RangeStmt:
			var bodyStmts []ast.Stmt
			switch l := s.(type) {
			case *ast.ForStmt:
				if l.Init != nil {
					state, _ = lb.block([]ast.Stmt{l.Init}, state)
				}
				bodyStmts = l.Body.List
			case *ast.RangeStmt:
				bodyStmts = l.Body.List
			}
			bodyExit, bodyTerm := lb.block(bodyStmts, state.clone())
			// After the loop the lock set is the union of "never entered"
			// and "body ran": a lock the body leaves held surfaces at the
			// next exit.
			state = merge(false, state, bodyTerm, bodyExit)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			var clauses []ast.Stmt
			hasDefault := false
			switch sw := s.(type) {
			case *ast.SwitchStmt:
				if sw.Init != nil {
					state, _ = lb.block([]ast.Stmt{sw.Init}, state)
				}
				clauses = sw.Body.List
			case *ast.TypeSwitchStmt:
				clauses = sw.Body.List
			case *ast.SelectStmt:
				clauses = sw.Body.List
				hasDefault = true // a select blocks until some case runs
			}
			exits := make([]lockState, 0, len(clauses))
			allTerm := len(clauses) > 0
			for _, cl := range clauses {
				var body []ast.Stmt
				switch c := cl.(type) {
				case *ast.CaseClause:
					if c.List == nil {
						hasDefault = true
					}
					body = c.Body
				case *ast.CommClause:
					body = c.Body
				}
				exit, term := lb.block(body, state.clone())
				if !term {
					exits = append(exits, exit)
					allTerm = false
				}
			}
			if allTerm && hasDefault {
				return state, true
			}
			if !hasDefault {
				// A missing case falls through with the incoming state.
				exits = append(exits, state)
			}
			merged := lockState{}
			for _, e := range exits {
				for k, v := range e {
					merged[k] = v
				}
			}
			state = merged
		case *ast.GoStmt, *ast.DeferStmt:
			// Literal bodies are separate scopes, checked by the outer
			// Inspect; holding a lock across `go` or a non-unlock defer is
			// fine for the spawning path.
		}
	}
	return state, false
}

// merge unions the lock sets of the paths that can actually fall through.
func merge(aTerm bool, a lockState, bTerm bool, b lockState) lockState {
	switch {
	case aTerm && bTerm:
		return lockState{}
	case aTerm:
		return b
	case bTerm:
		return a
	}
	out := a.clone()
	for k, v := range b {
		out[k] = v
	}
	return out
}
