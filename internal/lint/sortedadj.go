package lint

import (
	"go/ast"
	"go/types"
)

// SortedAdj protects the adjacency-sortedness invariant. Graph.Neighbors
// returns a slice aliasing the graph's backing storage, and every membership
// test in the engine — graph.HasEdge's binary search, the Lemma 1 filter,
// the block-growth adjacency counts — assumes that storage stays sorted and
// deduplicated exactly as the Builder normalised it. A single in-place write
// or re-sort outside internal/graph silently breaks HasEdge for unrelated
// queries, which surfaces as dropped or duplicated cliques, not as a crash.
// The analyzer therefore flags definite mutations (element assignment,
// sort.*, slices.Sort*, append, copy-into, clear) of any variable bound to a
// Neighbors result in every package except internal/graph itself, which owns
// the invariant and normalises inside its constructors.
var SortedAdj = &Analyzer{
	Name: "sortedadj",
	Doc: "slices returned by graph.Neighbors alias graph storage and must " +
		"not be mutated outside internal/graph",
	Run: runSortedAdj,
}

// graphPkgPath is the package that owns the adjacency storage.
const graphPkgPath = "mce/internal/graph"

func runSortedAdj(pass *Pass) error {
	if pass.Pkg.Types.Path() == graphPkgPath {
		return nil
	}
	info := pass.Pkg.Info

	// Pass 1: find variables bound to Neighbors results. A variable that is
	// also assigned from any other expression (typically an explicit copy)
	// is dropped again — flow-insensitive, biased against false positives.
	tainted := make(map[*types.Var]bool)
	reassigned := make(map[*types.Var]bool)
	note := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj, ok := info.Defs[id].(*types.Var)
		if !ok {
			obj, ok = info.Uses[id].(*types.Var)
		}
		if !ok || obj == nil {
			return
		}
		if isNeighborsCall(info, rhs) {
			tainted[obj] = true
		} else {
			reassigned[obj] = true
		}
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						note(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						note(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
	}
	isAdj := func(e ast.Expr) bool {
		if isNeighborsCall(info, e) {
			return true // direct g.Neighbors(v)[i] = x / sort(g.Neighbors(v))
		}
		v := usedVar(info, e)
		return v != nil && tainted[v] && !reassigned[v]
	}

	// Pass 2: flag definite mutations of adjacency-aliasing expressions.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isAdj(ix.X) {
						pass.Reportf(lhs.Pos(),
							"write into adjacency slice returned by graph.Neighbors (aliases graph storage; breaks the sorted invariant behind HasEdge)")
					}
				}
			case *ast.IncDecStmt:
				if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok && isAdj(ix.X) {
					pass.Reportf(n.Pos(),
						"write into adjacency slice returned by graph.Neighbors (aliases graph storage; breaks the sorted invariant behind HasEdge)")
				}
			case *ast.CallExpr:
				if arg, verb := mutatingCall(info, n, isAdj); arg != nil {
					pass.Reportf(arg.Pos(),
						"%s of adjacency slice returned by graph.Neighbors (aliases graph storage; breaks the sorted invariant behind HasEdge)", verb)
				}
			}
			return true
		})
	}
	return nil
}

// isNeighborsCall reports whether e is a call to (*graph.Graph).Neighbors.
func isNeighborsCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeOf(info, call)
	if fn == nil || fn.Name() != "Neighbors" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamed(sig.Recv().Type(), graphPkgPath, "Graph")
}

// mutatingCall reports the adjacency argument a call would write through,
// together with a verb for the diagnostic.
func mutatingCall(info *types.Info, call *ast.CallExpr, isAdj func(ast.Expr) bool) (ast.Expr, string) {
	if len(call.Args) == 0 {
		return nil, ""
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				// append may write into the shared backing array when
				// capacity allows; growing a neighbour list is never
				// legitimate outside the builder anyway.
				if isAdj(call.Args[0]) {
					return call.Args[0], "append"
				}
			case "copy", "clear":
				if isAdj(call.Args[0]) {
					return call.Args[0], id.Name + " into"
				}
			}
		}
	}
	for _, c := range []struct{ pkg, fn string }{
		{"sort", "Slice"}, {"sort", "SliceStable"}, {"sort", "Sort"}, {"sort", "Ints"},
		{"slices", "Sort"}, {"slices", "SortFunc"}, {"slices", "SortStableFunc"}, {"slices", "Reverse"},
	} {
		if isPkgFunc(info, call, c.pkg, c.fn) && isAdj(call.Args[0]) {
			return call.Args[0], c.pkg + "." + c.fn
		}
	}
	return nil, ""
}
