package lint

import (
	"sync"

	"go/types"
)

// Suite is the whole-run view the v2 engine gives every analyzer: all
// loaded packages (in dependency order), the shared fact store, the lazily
// built call graph, and a scratch memo for analyses that need one
// whole-suite pass before per-package reporting (casloop's atomic-field scan). A Suite is
// built once per RunAnalyzers call and shared by every Pass of that run.
type Suite struct {
	// Pkgs holds the loaded packages in dependency order: a package appears
	// after every package it imports that is also in the load. Analyzers
	// run in this order, so facts exported while analysing an imported
	// package are visible when its importers are analysed.
	Pkgs []*Package

	facts *factStore

	cgOnce sync.Once
	cg     *CallGraph

	memoMu sync.Mutex
	memo   map[string]any
}

// newSuite orders the packages and prepares the shared state.
func newSuite(pkgs []*Package) *Suite {
	return &Suite{
		Pkgs:  dependencyOrder(pkgs),
		facts: newFactStore(),
		memo:  make(map[string]any),
	}
}

// CallGraph returns the suite-wide static call graph, built on first use.
func (s *Suite) CallGraph() *CallGraph {
	s.cgOnce.Do(func() { s.cg = buildCallGraph(s.Pkgs) })
	return s.cg
}

// Memo returns the value cached under key, computing it with build on first
// request. Whole-suite analyses use it to scan all packages exactly once no
// matter how many per-package passes ask.
func (s *Suite) Memo(key string, build func() any) any {
	s.memoMu.Lock()
	defer s.memoMu.Unlock()
	if v, ok := s.memo[key]; ok {
		return v
	}
	v := build()
	s.memo[key] = v
	return v
}

// PackageOf returns the loaded package declaring obj, or nil when obj comes
// from export data only. Matching is by import path: the export-data view
// of a package an importer sees is a different *types.Package than the
// source-checked one, but the path is shared.
func (s *Suite) PackageOf(obj types.Object) *Package {
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	path := obj.Pkg().Path()
	for _, pkg := range s.Pkgs {
		if pkg.PkgPath == path {
			return pkg
		}
	}
	return nil
}

// dependencyOrder sorts packages so imports precede importers (ties broken
// by the input order, which Load keeps alphabetical — the result is
// deterministic for a given load). Imports are matched by path: the
// imported *types.Package is the export-data view, not the source-checked
// one in pkgs.
func dependencyOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	ordered := make([]*Package, 0, len(pkgs))
	state := make(map[*Package]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p] != 0 {
			return // done, or an import cycle (go forbids them anyway)
		}
		state[p] = 1
		for _, imp := range p.Types.Imports() {
			if dep, ok := byPath[imp.Path()]; ok {
				visit(dep)
			}
		}
		state[p] = 2
		ordered = append(ordered, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return ordered
}
