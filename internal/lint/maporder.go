package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder catches the PR 3 cross-process nondeterminism bug class
// statically. Go randomises map iteration order per process, so any value
// whose content or order derives from ranging over a map is different on
// every run — harmless until it flows into something that must be
// reproducible. The smoke gate caught exactly this at runtime: HolmeKim
// built a neighbour slice from a map range and indexed it with a seeded
// rng draw, so same-seed graphs differed across processes, silently
// threatening the Lemma 1 / Theorem 1 assumption that every participant
// derives the same decomposition. The analyzer tracks map-iteration-ordered
// values through the forward dataflow pass (assignments, appends, returns,
// direct calls — across package boundaries via exported function
// summaries) and reports when one reaches a determinism-sensitive sink
// without an intervening sort:
//
//   - a seeded rand draw indexing into the value (the PR 3 bug shape);
//   - gob/wire encoding (the bytes — and the v2 CRC — become
//     run-dependent);
//   - ordered output (fmt printing), which breaks golden files and
//     cross-run diffing.
//
// sort.* and slices.Sort* calls sanitize the value, including through
// repo-local wrapper helpers (a function that sorts its parameter is
// recognised by summary, propagated over the call graph).
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "map-iteration-ordered values must not reach seeded rand draws, " +
		"gob encoding or ordered output without an intervening sort",
	Run: runMapOrder,
}

const (
	taintMapOrder Taint = 1 << iota // content/order depends on map iteration order
	taintRand                       // value derives from a math/rand draw
)

// mapOrderedFact marks a function whose return value is
// map-iteration-ordered — the cross-package half of the analysis.
type mapOrderedFact struct{ Ret bool }

func (*mapOrderedFact) AFact() {}

// sortsParamFact marks which slice parameters a function sorts (bitmask by
// parameter index), so repo-local sort wrappers sanitize like sort.Ints.
type sortsParamFact struct{ Params uint32 }

func (*sortsParamFact) AFact() {}

func runMapOrder(pass *Pass) error {
	// Phase 1: function summaries for this package, driven by a call-graph
	// worklist so same-package (even mutually recursive) helpers resolve to
	// fixpoint: when a summary changes, only its callers are re-analysed.
	// Cross-package callees resolve through facts exported by earlier
	// packages — the Suite analyses imports first.
	fns := packageFuncs(pass.Pkg)
	byObj := make(map[*types.Func]pkgFunc, len(fns))
	for _, fn := range fns {
		byObj[fn.obj] = fn
	}
	cg := pass.Suite.CallGraph()
	work := append([]pkgFunc(nil), fns...)
	queued := make(map[*types.Func]bool, len(fns))
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		queued[fn.obj] = false
		if !summarizeMapOrder(pass, fn.obj, fn.decl) {
			continue
		}
		for _, caller := range cg.Callers(fn.obj) {
			if c, ok := byObj[caller]; ok && !queued[caller] {
				queued[caller] = true
				work = append(work, c)
			}
		}
	}

	// Phase 2: flag sinks in every function (including methods on local
	// types and nested literals, which analyzeFlow walks as part of the
	// enclosing body).
	for _, fn := range fns {
		flagMapOrderSinks(pass, fn.decl)
	}
	return nil
}

// pkgFunc pairs a declared function with its object.
type pkgFunc struct {
	obj  *types.Func
	decl *ast.FuncDecl
}

// packageFuncs lists the function declarations of the pass's package in
// source order.
func packageFuncs(pkg *Package) []pkgFunc {
	var out []pkgFunc
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			out = append(out, pkgFunc{obj: obj, decl: fd})
		}
	}
	return out
}

// mapOrderFlow runs the dataflow pass configured for map-order tracking
// over one function body.
func (p *Pass) mapOrderFlow(body *ast.BlockStmt) *FuncFlow {
	info := p.Pkg.Info
	cfg := &FlowConfig{
		Info: info,
		RangeSeed: func(rng *ast.RangeStmt, _ Taint) Taint {
			if isMapType(info, rng.X) {
				return taintMapOrder
			}
			return 0
		},
		Call: func(call *ast.CallExpr, callee *types.Func, args []Taint) Taint {
			return p.mapOrderCallTaint(call, callee, args)
		},
		Sanitize: func(call *ast.CallExpr) *types.Var {
			return p.mapOrderSanitized(call)
		},
	}
	return analyzeFlow(cfg, body)
}

// mapOrderCallTaint is the call summary: rand draws, known stdlib
// propagators, and fact-carrying repo functions.
func (p *Pass) mapOrderCallTaint(call *ast.CallExpr, callee *types.Func, args []Taint) Taint {
	if callee == nil {
		return 0
	}
	union := Taint(0)
	for _, a := range args {
		union |= a
	}
	pkgPath := ""
	if callee.Pkg() != nil {
		pkgPath = callee.Pkg().Path()
	}
	switch pkgPath {
	case "math/rand", "math/rand/v2":
		return taintRand
	case "fmt":
		if strings.HasPrefix(callee.Name(), "Sprint") {
			return union // Sprintf(tainted) keeps the order-dependence
		}
		return 0
	case "strings":
		if callee.Name() == "Join" {
			return union
		}
		return 0
	case "maps":
		// maps.Keys/Values iterate in map order (Go ≥1.23 iterators).
		if callee.Name() == "Keys" || callee.Name() == "Values" {
			return taintMapOrder
		}
		return 0
	case "slices":
		// slices.Sorted / SortedFunc consume an order-dependent sequence
		// and emit a deterministic one.
		if strings.HasPrefix(callee.Name(), "Sorted") {
			return union &^ taintMapOrder
		}
		if callee.Name() == "Collect" || callee.Name() == "Clone" || callee.Name() == "Concat" {
			return union
		}
		return 0
	}
	var fact mapOrderedFact
	if p.ImportObjectFact(callee, &fact) && fact.Ret {
		return taintMapOrder
	}
	return 0
}

// mapOrderSanitized resolves a call to the variable it sorts, if any:
// stdlib sort entry points, plus repo functions summarised (transitively,
// over the call graph) as sorting a parameter.
func (p *Pass) mapOrderSanitized(call *ast.CallExpr) *types.Var {
	info := p.Pkg.Info
	for _, c := range []struct{ pkg, fn string }{
		{"sort", "Ints"}, {"sort", "Strings"}, {"sort", "Float64s"},
		{"sort", "Slice"}, {"sort", "SliceStable"}, {"sort", "Sort"}, {"sort", "Stable"},
		{"slices", "Sort"}, {"slices", "SortFunc"}, {"slices", "SortStableFunc"},
	} {
		if isPkgFunc(info, call, c.pkg, c.fn) && len(call.Args) > 0 {
			return usedVar(info, call.Args[0])
		}
	}
	callee := calleeOf(info, call)
	if callee == nil {
		return nil
	}
	var fact sortsParamFact
	if p.ImportObjectFact(callee, &fact) && fact.Params != 0 {
		for i, arg := range call.Args {
			if i < 32 && fact.Params&(1<<uint(i)) != 0 {
				if v := usedVar(info, arg); v != nil {
					return v
				}
			}
		}
	}
	return nil
}

// summarizeMapOrder computes and exports fn's summaries, reporting whether
// either fact changed (drives the package-level fixpoint).
func summarizeMapOrder(pass *Pass, fn *types.Func, decl *ast.FuncDecl) bool {
	fl := pass.mapOrderFlow(decl.Body)
	changed := false

	var retFact mapOrderedFact
	pass.ImportObjectFact(fn, &retFact)
	if ret := fl.Ret&taintMapOrder != 0; ret != retFact.Ret {
		retFact.Ret = ret
		pass.ExportObjectFact(fn, &retFact)
		changed = true
	}

	// Which parameters does the body sort? Direct sanitizer calls are
	// enough here: transitive wrappers resolve through the fixpoint (the
	// inner wrapper's fact makes the outer call a sanitizer next round).
	var params uint32
	sig := fn.Type().(*types.Signature)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		v := pass.mapOrderSanitized(call)
		if v == nil {
			return true
		}
		for i := 0; i < sig.Params().Len() && i < 32; i++ {
			if sig.Params().At(i) == v {
				params |= 1 << uint(i)
			}
		}
		return true
	})
	var pFact sortsParamFact
	pass.ImportObjectFact(fn, &pFact)
	if params != pFact.Params {
		pFact.Params = params
		pass.ExportObjectFact(fn, &pFact)
		changed = true
	}
	return changed
}

// flagMapOrderSinks reports every determinism-sensitive use of a
// map-iteration-ordered value in decl.
func flagMapOrderSinks(pass *Pass, decl *ast.FuncDecl) {
	info := pass.Pkg.Info
	fl := pass.mapOrderFlow(decl.Body)
	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, base ast.Expr, format string, args ...any) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		if fix := pass.mapOrderFix(decl, fl, base); fix != nil {
			pass.ReportFix(pos, fix, format, args...)
		} else {
			pass.Reportf(pos, format, args...)
		}
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			if fl.VarTaint(n.X)&taintMapOrder != 0 && fl.VarTaint(n.Index)&taintRand != 0 {
				report(n.Pos(), n.X,
					"seeded rand draw indexes a map-iteration-ordered slice: same-seed runs pick different elements across processes (sort the slice first)")
			}
		case *ast.CallExpr:
			fn := calleeOf(info, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "encoding/gob" && fn.Name() == "Encode":
				for _, arg := range n.Args {
					if orderSensitiveUse(pass, fl, arg, n.Pos()) {
						report(arg.Pos(), arg,
							"map-iteration-ordered value crosses the gob wire: encoded bytes differ per process, so checksums and golden captures cannot match (sort before encoding)")
					}
				}
			case fn.Pkg().Path() == "fmt" && isOrderedOutputFunc(fn.Name()):
				for i, arg := range n.Args {
					if i == 0 && strings.HasPrefix(fn.Name(), "F") {
						continue // the io.Writer
					}
					if orderSensitiveUse(pass, fl, arg, n.Pos()) {
						report(arg.Pos(), arg,
							"map-iteration-ordered value written to ordered output: lines reorder per process (sort before printing)")
					}
				}
			}
		}
		return true
	})
}

// orderSensitiveUse decides whether passing arg to an output/encoding sink
// is actually order-dependent, biased against false positives:
//
//   - a tainted slice always is — its element order is the tainted
//     property and fmt/gob serialise it in order;
//   - a tainted scalar is only flagged when it is a map-range key/value
//     printed unconditionally inside its own loop (the "emit every entry in
//     iteration order" shape); a conditional use is usually select-one
//     filtering, which is deterministic, so it is skipped.
//
// Note fmt itself prints map *values* with sorted keys since Go 1.12, so a
// map passed directly is never flagged (it never acquires the taint).
func orderSensitiveUse(pass *Pass, fl *FuncFlow, arg ast.Expr, use token.Pos) bool {
	if fl.VarTaint(arg)&taintMapOrder == 0 {
		return false
	}
	if tv, ok := pass.Pkg.Info.Types[arg]; ok && tv.Type != nil {
		if _, isSlice := types.Unalias(tv.Type).Underlying().(*types.Slice); isSlice {
			return true
		}
	}
	v := usedVar(pass.Pkg.Info, arg)
	if v == nil {
		return false
	}
	rng, ok := fl.Origin[v].(*ast.RangeStmt)
	if !ok || !posInside(use, rng) {
		return false
	}
	conditional := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			if posInside(use, n) {
				conditional = true
			}
		}
		return !conditional
	})
	return !conditional
}

// isOrderedOutputFunc reports whether the fmt function writes output whose
// line/field order the caller observes.
func isOrderedOutputFunc(name string) bool {
	switch name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}

// mapOrderFix builds the mechanical remediation when the tainted base is a
// local variable seeded inside this function: insert a slices.Sort right
// after the statement (hoisted out of the seeding map-range loop) and add
// the slices import if missing. Returns nil when no safe insertion point
// exists — cross-package taints are fixed at their origin, not here.
func (pass *Pass) mapOrderFix(decl *ast.FuncDecl, fl *FuncFlow, base ast.Expr) *SuggestedFix {
	v := usedVar(pass.Pkg.Info, base)
	if v == nil {
		return nil
	}
	origin := fl.Origin[v]
	if origin == nil {
		return nil
	}
	if !isSortableSlice(v.Type()) {
		return nil
	}
	// Hoist the insertion point out of any enclosing map-range loop: the
	// slice is complete only once the loop that fills it finishes.
	insertAfter := ast.Node(origin)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if ok && isMapType(pass.Pkg.Info, rng.X) && posInside(insertAfter.Pos(), rng) {
			insertAfter = rng
			return false
		}
		return true
	})
	// Only insert after a statement that sits directly in a block —
	// anything else (if-init, for-post) has no safe "next statement" slot.
	if !stmtDirectlyInBlock(decl.Body, insertAfter) {
		return nil
	}
	fix := &SuggestedFix{
		Message: "insert slices.Sort(" + v.Name() + ") after the value is built",
		Edits: []TextEdit{
			pass.edit(insertAfter.End(), insertAfter.End(), "\nslices.Sort("+v.Name()+")"),
		},
	}
	if imp := pass.importEdit(decl, "slices"); imp != nil {
		fix.Edits = append(fix.Edits, *imp)
	}
	return fix
}

// isSortableSlice reports whether t is a slice of a cmp.Ordered element
// type, i.e. something slices.Sort accepts.
func isSortableSlice(t types.Type) bool {
	sl, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := types.Unalias(sl.Elem()).Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return basic.Info()&(types.IsInteger|types.IsFloat|types.IsString) != 0
}

// stmtDirectlyInBlock reports whether stmt appears as a direct element of
// some block (or case body) under root, so a statement can be inserted
// right after it.
func stmtDirectlyInBlock(root ast.Node, stmt ast.Node) bool {
	found := false
	check := func(list []ast.Stmt) {
		for _, s := range list {
			if s == stmt {
				found = true
			}
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			check(n.List)
		case *ast.CaseClause:
			check(n.Body)
		case *ast.CommClause:
			check(n.Body)
		}
		return !found
	})
	return found
}

// importEdit returns the edit adding an import of path to the file holding
// decl, or nil when it is already imported or the file has no import block
// to extend.
func (pass *Pass) importEdit(decl *ast.FuncDecl, path string) *TextEdit {
	var file *ast.File
	for _, f := range pass.Pkg.Files {
		if posInside(decl.Pos(), f) {
			file = f
			break
		}
	}
	if file == nil {
		return nil
	}
	for _, imp := range file.Imports {
		if imp.Path.Value == `"`+path+`"` {
			return nil
		}
	}
	for _, d := range file.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT || !gd.Lparen.IsValid() || len(gd.Specs) == 0 {
			continue
		}
		last := gd.Specs[len(gd.Specs)-1]
		e := pass.edit(last.End(), last.End(), "\n\""+path+"\"")
		return &e
	}
	return nil
}
