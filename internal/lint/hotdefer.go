package lint

import (
	"go/ast"
)

// hotdefer: no defer inside a hot loop. Since Go 1.13 a defer is nearly
// free when the compiler can open-code it — but open-coding is disabled for
// defers inside loops, which fall back to a heap-allocated defer record per
// iteration, and the records accumulate until the *function* returns, not
// the iteration. Both costs multiply with the recursion-node count in the
// enumeration inner loop. Recursion is a loop the parser cannot see, so a
// defer anywhere in a hot function that participates in a call-graph cycle
// (the Bron–Kerbosch recursion itself) is flagged too.
//
// Function-literal bodies reset the loop context: a defer at the top of a
// closure or goroutine body runs per call of that closure and stays
// open-coded, which is exactly the worker-spawn `defer wg.Done()` shape the
// executor uses.
var HotDefer = &Analyzer{
	Name: "hotdefer",
	Doc: "defer inside a hot loop or a recursive hot function — the defer " +
		"record is heap-allocated per iteration and released only at " +
		"function return",
	Run: runHotDefer,
}

func runHotDefer(pass *Pass) error {
	h := hotData(pass.Suite)
	decls := h.declsIn(pass.Pkg)
	if len(decls) == 0 {
		return nil
	}
	g := pass.Suite.CallGraph()
	for _, hd := range decls {
		recursive := g.inCycle(hd.fn)
		checkDefers(pass, hd, hd.decl.Body, false, recursive)
	}
	return nil
}

// checkDefers walks one function body tracking lexical loop nesting;
// function literals recurse with a fresh loop context (their defers run at
// closure return) and without the recursion flag (the cycle belongs to the
// declaration, not the literal).
func checkDefers(pass *Pass, hd hotDecl, body ast.Node, inLoop, recursive bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Init != nil {
				checkDefers(pass, hd, n.Init, inLoop, recursive)
			}
			if n.Body != nil {
				checkDefers(pass, hd, n.Body, true, recursive)
			}
			return false
		case *ast.RangeStmt:
			if n.Body != nil {
				checkDefers(pass, hd, n.Body, true, recursive)
			}
			return false
		case *ast.FuncLit:
			checkDefers(pass, hd, n.Body, false, false)
			return false
		case *ast.DeferStmt:
			switch {
			case inLoop:
				pass.Reportf(n.Pos(),
					"defer inside a hot loop (%s, hot via %s): one heap-allocated defer record per iteration, released only at function return; open-code the cleanup or move it out of the loop",
					funcDisplay(hd.fn), hd.root)
			case recursive:
				pass.Reportf(n.Pos(),
					"defer in recursive hot function %s (hot via %s): one defer record per recursion node; open-code the cleanup",
					funcDisplay(hd.fn), hd.root)
			}
		}
		return true
	})
}
