package lint

import (
	"reflect"
	"sync"

	"go/types"
)

// A Fact is a piece of knowledge an analyzer attaches to a types.Object so
// that analyses of *other* packages can use it — the cross-package half of
// the dataflow engine, mirroring golang.org/x/tools/go/analysis facts.
// Typical facts are function summaries ("returns a map-iteration-ordered
// slice", "sorts its first argument") computed while the defining package is
// analyzed and imported when a caller in a downstream package is.
//
// Facts only flow forward because RunAnalyzers processes packages in
// dependency order (imports before importers); exporting a fact about an
// object of a not-yet-analyzed package is legal but nobody will see it.
type Fact interface {
	// AFact marks the type as a fact; it has no behaviour.
	AFact()
}

// objKey canonicalises an object across the two views the loader produces
// of the same declaration: the source-checked object in its own package and
// the export-data object every importer sees. The gc importer hands each
// package a *distinct* object graph for its dependencies, so pointer
// identity does not survive the package boundary — a path-qualified name
// does.
func objKey(obj types.Object) string {
	if obj == nil {
		return ""
	}
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	switch obj := obj.(type) {
	case *types.Func:
		// FullName already qualifies methods with their receiver type.
		return pkg + "::" + obj.FullName()
	case *types.Var:
		if obj.IsField() {
			return pkg + "::" + ownerName(obj) + "." + obj.Name()
		}
	}
	return pkg + "::" + obj.Name()
}

// factStore holds the facts of one analysis run, keyed by canonical object
// key. One store is shared by every analyzer of a Suite: fact types, not
// store instances, namespace the knowledge (again mirroring x/tools).
type factStore struct {
	mu    sync.Mutex
	facts map[string][]Fact
}

func newFactStore() *factStore {
	return &factStore{facts: make(map[string][]Fact)}
}

// export records fact about obj, replacing an existing fact of the same
// dynamic type (summaries are recomputed to fixpoint, so last write wins).
func (s *factStore) export(obj types.Object, fact Fact) {
	key := objKey(obj)
	if key == "" || fact == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := reflect.TypeOf(fact)
	for i, f := range s.facts[key] {
		if reflect.TypeOf(f) == t {
			s.facts[key][i] = fact
			return
		}
	}
	s.facts[key] = append(s.facts[key], fact)
}

// imp copies the fact of ptr's dynamic type attached to obj into *ptr and
// reports whether one was found. ptr must be a non-nil pointer to a Fact
// implementation, exactly like analysis.Pass.ImportObjectFact.
func (s *factStore) imp(obj types.Object, ptr Fact) bool {
	key := objKey(obj)
	if key == "" || ptr == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	pv := reflect.ValueOf(ptr)
	if pv.Kind() != reflect.Pointer || pv.IsNil() {
		return false
	}
	for _, f := range s.facts[key] {
		fv := reflect.ValueOf(f)
		if fv.Type() == pv.Type() {
			pv.Elem().Set(fv.Elem())
			return true
		}
	}
	return false
}

// ExportObjectFact attaches fact to obj for downstream packages (and later
// analyzers of the same run) to import.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.Suite.facts.export(obj, fact)
}

// ImportObjectFact copies the fact of ptr's type attached to obj into *ptr,
// reporting whether obj carries one.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	return p.Suite.facts.imp(obj, ptr)
}
