package lint

// StaleIgnore closes the suppression loop: a //lint:ignore directive is a
// standing waiver, and a waiver that no longer waives anything is debt —
// either the flagged code was fixed (drop the directive) or the analyzer
// changed shape (re-audit the justification). Reporting stale directives
// keeps the set of active suppressions equal to the set of *current*
// judgement calls, which is what the PR 2 "justified-ignore" policy was
// meant to guarantee.
//
// The analyzer is a meta-pass: it has no Run of its own and is evaluated by
// RunAnalyzers after every other analyzer finished, over the directive
// usage that run recorded. A directive is judged stale only when every
// analyzer it names actually ran (and, for the wildcard form, only when the
// whole registered suite ran): running `mcevet -run maporder` must not
// condemn a ctxplumb suppression it never exercised.
var StaleIgnore = &Analyzer{
	Name: "staleignore",
	Doc: "lint:ignore directives that no longer suppress any finding are " +
		"stale and must be removed or re-justified",
	Run: nil, // meta-pass, evaluated by RunAnalyzers after all analyzers
}

// staleIgnoreDiags reports the justified directives that suppressed nothing
// even though everything they name was run, plus directives naming
// analyzers that do not exist (those can never suppress anything).
func staleIgnoreDiags(suite *Suite, ran []*Analyzer, ignores []*ignoreDirective) []Diagnostic {
	ranNames := make(map[string]bool, len(ran))
	for _, a := range ran {
		if a.Run != nil {
			ranNames[a.Name] = true
		}
	}
	fullSuite := true
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
		if a.Run != nil && !ranNames[a.Name] {
			fullSuite = false
		}
	}

	var diags []Diagnostic
	for _, d := range ignores {
		if !d.justified {
			continue // already reported as unjustified by RunAnalyzers
		}
		judgeable := true
		for _, name := range d.analyzers {
			if name == "*" {
				judgeable = judgeable && fullSuite
				continue
			}
			if !known[name] {
				diags = append(diags, Diagnostic{
					Analyzer: StaleIgnore.Name,
					Pos:      d.pkg.Fset.Position(d.pos),
					Message:  "lint:ignore names unknown analyzer " + quote(name) + " (try mcevet -list); it suppresses nothing",
				})
				judgeable = false
				continue
			}
			judgeable = judgeable && ranNames[name]
		}
		if judgeable && !d.used {
			diags = append(diags, Diagnostic{
				Analyzer: StaleIgnore.Name,
				Pos:      d.pkg.Fset.Position(d.pos),
				Message: "stale lint:ignore: no " + joinNames(d.analyzers) +
					" finding on this line any more; remove the directive or re-justify it",
			})
		}
	}
	return diags
}

func quote(s string) string { return "\"" + s + "\"" }

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += "/"
		}
		out += n
	}
	return out
}
