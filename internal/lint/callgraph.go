package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph is the static call graph over every package of one Suite: an
// edge u→v exists when the body of u (including its function literals)
// contains a direct call that resolves to v. Calls through function values,
// interface methods without a static callee, builtins and conversions have
// no edge — the graph under-approximates, which is the right bias for the
// analyses built on it (a missing edge can only suppress propagation, never
// invent a finding).
//
// Nodes are canonical object keys (see objKey), not *types.Func pointers:
// the loader type-checks each package against export data, so the callee
// object a caller package resolves is a different pointer than the defining
// package's own — the key form unifies the two views, which is what makes
// cross-package edges land on the right declaration.
type CallGraph struct {
	callees map[string]map[string]bool
	callers map[string]map[string]bool
	decls   map[string]declSite
}

// declSite locates one function declaration inside its loaded package.
type declSite struct {
	pkg  *Package
	decl *ast.FuncDecl
	obj  *types.Func
}

// buildCallGraph constructs the graph for the given packages. The walk
// attributes calls inside function literals to the enclosing declaration:
// for the engine's purposes a closure runs on its owner's behalf.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		callees: make(map[string]map[string]bool),
		callers: make(map[string]map[string]bool),
		decls:   make(map[string]declSite),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := objKey(caller)
				g.decls[key] = declSite{pkg: pkg, decl: fd, obj: caller}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := calleeOf(pkg.Info, call); callee != nil {
						g.addEdge(key, objKey(callee))
					}
					return true
				})
			}
		}
	}
	return g
}

func (g *CallGraph) addEdge(from, to string) {
	if g.callees[from] == nil {
		g.callees[from] = make(map[string]bool)
	}
	g.callees[from][to] = true
	if g.callers[to] == nil {
		g.callers[to] = make(map[string]bool)
	}
	g.callers[to][from] = true
}

// Callees returns the declared functions fn calls directly, in
// deterministic order. Callees without a declaration in the loaded
// packages (stdlib, export-data-only dependencies) are omitted.
func (g *CallGraph) Callees(fn *types.Func) []*types.Func {
	return g.resolve(g.callees[objKey(fn)])
}

// Callers returns the declared functions that call fn directly — from any
// loaded package, not just fn's own — in deterministic order.
func (g *CallGraph) Callers(fn *types.Func) []*types.Func {
	return g.resolve(g.callers[objKey(fn)])
}

// Decl returns the declaration of fn and its owning package, or nils when
// fn is not declared in the loaded packages.
func (g *CallGraph) Decl(fn *types.Func) (*Package, *ast.FuncDecl) {
	s := g.decls[objKey(fn)]
	return s.pkg, s.decl
}

// Funcs returns every function declared in the loaded packages, in
// deterministic order — the iteration domain for whole-suite summary
// passes.
func (g *CallGraph) Funcs() []*types.Func {
	keys := make(map[string]bool, len(g.decls))
	for key := range g.decls {
		keys[key] = true
	}
	return g.resolve(keys)
}

// Reachable returns the set of declared functions reachable from the roots
// through callee edges, including the roots themselves.
func (g *CallGraph) Reachable(roots ...*types.Func) map[*types.Func]bool {
	seen := make(map[string]bool)
	var stack []string
	for _, r := range roots {
		if r != nil {
			stack = append(stack, objKey(r))
		}
	}
	for len(stack) > 0 {
		key := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[key] {
			continue
		}
		seen[key] = true
		for next := range g.callees[key] {
			if !seen[next] {
				stack = append(stack, next)
			}
		}
	}
	out := make(map[*types.Func]bool)
	for key := range seen {
		if s, ok := g.decls[key]; ok {
			out[s.obj] = true
		}
	}
	return out
}

// resolve maps a key set to its declared functions, sorted by key so every
// consumer iterates deterministically — the suite must never itself exhibit
// the map-order sensitivity it lints for.
func (g *CallGraph) resolve(keys map[string]bool) []*types.Func {
	sorted := make([]string, 0, len(keys))
	for key := range keys {
		if _, ok := g.decls[key]; ok {
			sorted = append(sorted, key)
		}
	}
	sort.Strings(sorted)
	out := make([]*types.Func, len(sorted))
	for i, key := range sorted {
		out[i] = g.decls[key].obj
	}
	return out
}
