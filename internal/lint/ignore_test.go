package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestIgnoreSuppresses checks the happy path through the fixture harness:
// the justified directive hides Blocked, the undirected Loud still reports.
func TestIgnoreSuppresses(t *testing.T) {
	RunFixture(t, CtxPlumb, "ignore/ignored.go")
}

// TestIgnoreNeedsJustification checks both halves of the unjustified case:
// the directive is reported, and the finding it covered is NOT suppressed.
func TestIgnoreNeedsJustification(t *testing.T) {
	path := filepath.Join(moduleRoot(), "internal", "lint", "testdata", "ignore", "unjustified.go")
	pkg, err := LoadFiles(moduleRoot(), path)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{CtxPlumb})
	if err != nil {
		t.Fatalf("running ctxplumb: %v", err)
	}
	var sawDirective, sawFinding bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "lint" && strings.Contains(d.Message, "needs a justification"):
			sawDirective = true
		case d.Analyzer == "ctxplumb" && strings.Contains(d.Message, "QuietContext"):
			sawFinding = true
		}
	}
	if !sawDirective {
		t.Errorf("unjustified lint:ignore directive was not reported; got %v", diags)
	}
	if !sawFinding {
		t.Errorf("unjustified directive suppressed the finding anyway; got %v", diags)
	}
}

// TestWantHarnessDetectsMisses guards the harness itself: a fixture whose
// annotation can never match must fail, otherwise every analyzer test above
// is vacuous.
func TestWantHarnessDetectsMisses(t *testing.T) {
	rec := &recorder{}
	RunFixture(rec, SortedAdj, "ctxplumb/flagged.go") // wrong analyzer: wants go unmatched
	if len(rec.errors) == 0 {
		t.Fatal("harness accepted a fixture whose want annotations matched nothing")
	}
}

// recorder satisfies TB and swallows failures for harness self-tests.
type recorder struct {
	errors []string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, format)
}
func (r *recorder) Fatalf(format string, args ...any) {
	r.errors = append(r.errors, format)
	panic("recorder.Fatalf")
}
