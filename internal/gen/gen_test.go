package gen

import (
	"math"
	"testing"
	"testing/quick"

	"mce/internal/graph"
	"mce/internal/kcore"
)

func TestErdosRenyiExtremes(t *testing.T) {
	g := ErdosRenyi(20, 0, 1)
	if g.M() != 0 {
		t.Errorf("p=0: M = %d, want 0", g.M())
	}
	g = ErdosRenyi(20, 1, 1)
	if g.M() != 190 {
		t.Errorf("p=1: M = %d, want 190", g.M())
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(100, 0.1, 42)
	b := ErdosRenyi(100, 0.1, 42)
	if a.M() != b.M() {
		t.Fatalf("same seed produced different graphs: %d vs %d edges", a.M(), b.M())
	}
	c := ErdosRenyi(100, 0.1, 43)
	if a.M() == c.M() && edgesEqual(a, c) {
		t.Fatalf("different seeds produced identical graphs")
	}
}

func edgesEqual(a, b *graph.Graph) bool {
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		return false
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

func TestErdosRenyiEdgeCountNearExpectation(t *testing.T) {
	n, p := 200, 0.2
	g := ErdosRenyi(n, p, 7)
	want := p * float64(n*(n-1)) / 2
	if math.Abs(float64(g.M())-want) > 0.15*want {
		t.Fatalf("M = %d, expected about %.0f", g.M(), want)
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	n, k := 2000, 4
	g := BarabasiAlbert(n, k, 11)
	if g.N() != n {
		t.Fatalf("N = %d, want %d", g.N(), n)
	}
	// Each of the n-k-1 later nodes adds k edges; the seed clique adds
	// k(k+1)/2.
	wantM := k*(k+1)/2 + (n-k-1)*k
	if g.M() != wantM {
		t.Fatalf("M = %d, want %d", g.M(), wantM)
	}
	// Scale-free: the max degree should far exceed the mean degree.
	mean := 2 * float64(g.M()) / float64(n)
	if float64(g.MaxDegree()) < 4*mean {
		t.Fatalf("max degree %d not hub-like (mean %.1f)", g.MaxDegree(), mean)
	}
}

func TestBarabasiAlbertSmallN(t *testing.T) {
	g := BarabasiAlbert(2, 3, 1) // n clamped up to k+1
	if g.N() != 4 || g.M() != 6 {
		t.Fatalf("clamped BA: n=%d m=%d, want complete K4", g.N(), g.M())
	}
	g = BarabasiAlbert(10, 0, 1) // k clamped up to 1
	if g.N() != 10 {
		t.Fatalf("k clamp: N = %d", g.N())
	}
}

func TestWattsStrogatzLattice(t *testing.T) {
	// beta = 0: pure ring lattice with k=4 → every node degree 4.
	g := WattsStrogatz(20, 4, 0, 5)
	for v := int32(0); v < 20; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
}

func TestWattsStrogatzRewired(t *testing.T) {
	g := WattsStrogatz(500, 6, 0.5, 9)
	if g.N() != 500 {
		t.Fatalf("N = %d", g.N())
	}
	// Rewiring may drop duplicates but edge count stays close to n*k/2.
	if g.M() < 1200 || g.M() > 1500 {
		t.Fatalf("M = %d, expected near 1500", g.M())
	}
}

func TestWattsStrogatzTiny(t *testing.T) {
	g := WattsStrogatz(2, 4, 0.1, 1)
	if g.N() != 2 || g.M() != 1 {
		t.Fatalf("tiny WS: n=%d m=%d", g.N(), g.M())
	}
}

func TestHolmeKimClustering(t *testing.T) {
	// Triad formation should produce far more triangles than plain BA at
	// the same size.
	hk := HolmeKim(1500, 5, 0.8, 13)
	ba := BarabasiAlbert(1500, 5, 13)
	thk, tba := triangles(hk), triangles(ba)
	if thk <= tba {
		t.Fatalf("Holme–Kim triangles %d not above BA %d", thk, tba)
	}
}

func triangles(g *graph.Graph) int {
	count := 0
	for u := int32(0); u < int32(g.N()); u++ {
		adj := g.Neighbors(u)
		for i, v := range adj {
			if v < u {
				continue
			}
			for _, w := range adj[i+1:] {
				if w > v && g.HasEdge(v, w) {
					count++
				}
			}
		}
	}
	return count
}

func TestPlantCliques(t *testing.T) {
	base := ErdosRenyi(200, 0.02, 17)
	planted := PlantCliques(base, 3, 10, 10, 18)
	if planted.N() != base.N() {
		t.Fatalf("planting changed node count")
	}
	if planted.M() <= base.M() {
		t.Fatalf("planting added no edges")
	}
	// Every original edge survives.
	for _, e := range base.Edges() {
		if !planted.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v lost while planting", e)
		}
	}
	// A 10-clique raises the degeneracy to at least 9.
	if d := kcore.Degeneracy(planted); d < 9 {
		t.Fatalf("degeneracy = %d after planting 10-cliques, want >= 9", d)
	}
}

func TestPlantCliquesZeroCount(t *testing.T) {
	base := ErdosRenyi(50, 0.1, 3)
	same := PlantCliques(base, 0, 5, 5, 4)
	if same.M() != base.M() {
		t.Fatalf("count=0 changed the graph")
	}
}

func TestHardChainPeelsOneNodePerRound(t *testing.T) {
	m := 4
	n := 40
	g := HardChain(n, m, 0)
	// Theorem 1: degeneracy < m+1, and iteratively removing all nodes of
	// degree ≤ m removes exactly one node per round in the chain regime.
	if d := kcore.Degeneracy(g); d > m {
		t.Fatalf("degeneracy = %d, want <= %d", d, m)
	}
	rounds := 0
	cur := g
	for cur.N() > 0 {
		var keep []int32
		for v := int32(0); v < int32(cur.N()); v++ {
			if cur.Degree(v) > m {
				keep = append(keep, v)
			}
		}
		if len(keep) == cur.N() {
			t.Fatalf("peeling stuck with %d nodes", cur.N())
		}
		cur, _ = graph.Induced(cur, keep)
		rounds++
	}
	// The proof gives Ω(n) rounds; concretely the chain loses one node per
	// round until the core clique dissolves, so expect at least n - (m+3).
	if rounds < n-(m+3) {
		t.Fatalf("rounds = %d, want at least %d (Ω(n))", rounds, n-(m+3))
	}
}

func TestHardChainClamps(t *testing.T) {
	g := HardChain(2, 0, 0)
	if g.N() < 3 {
		t.Fatalf("HardChain did not clamp n: %d", g.N())
	}
}

func TestDatasets(t *testing.T) {
	specs := Datasets()
	if len(specs) != 5 {
		t.Fatalf("want 5 datasets, got %d", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		names[s.Name] = true
		if s.PaperNodes == 0 || s.PaperEdges == 0 || s.PaperMaxDegree == 0 {
			t.Errorf("%s: missing paper reference numbers", s.Name)
		}
	}
	for _, want := range []string{"twitter1", "twitter2", "twitter3", "facebook", "google+"} {
		if !names[want] {
			t.Errorf("dataset %s missing", want)
		}
	}
}

func TestDatasetLookup(t *testing.T) {
	s, err := Dataset("facebook")
	if err != nil || s.Name != "facebook" {
		t.Fatalf("Dataset(facebook) = %v, %v", s.Name, err)
	}
	if _, err := Dataset("orkut"); err == nil {
		t.Fatalf("unknown dataset accepted")
	}
}

func TestDatasetSurrogateIsScaleFree(t *testing.T) {
	if testing.Short() {
		t.Skip("surrogate build is slow")
	}
	s, _ := Dataset("twitter1")
	g := s.Build()
	if g.N() != s.N {
		t.Fatalf("N = %d, want %d", g.N(), s.N)
	}
	// Figure 6's shape: the vast majority of nodes have low degree, while
	// the max degree is far above the mean.
	mean := 2 * float64(g.M()) / float64(g.N())
	if float64(g.MaxDegree()) < 8*mean {
		t.Errorf("max degree %d vs mean %.1f: not scale-free enough", g.MaxDegree(), mean)
	}
	low := 0
	for v := int32(0); v < int32(g.N()); v++ {
		if g.Degree(v) <= 20 {
			low++
		}
	}
	if frac := float64(low) / float64(g.N()); frac < 0.6 {
		t.Errorf("only %.0f%% of nodes have degree <= 20; paper reports ~91%%", 100*frac)
	}
}

func TestCorpusSizeAndVariety(t *testing.T) {
	corpus := Corpus(1)
	if len(corpus) != 50 {
		t.Fatalf("corpus size = %d, want 50", len(corpus))
	}
	models := map[string]int{}
	for _, c := range corpus {
		models[c.Model]++
		if c.Graph.N() == 0 {
			t.Errorf("%s: empty graph", c.Name)
		}
	}
	for _, m := range []string{"er", "ba", "ws", "hk"} {
		if models[m] == 0 {
			t.Errorf("model %s missing from corpus", m)
		}
	}
}

// Property: all generators produce simple graphs (no self loops or duplicate
// edges survive the builder) with the requested node count for sane inputs.
func TestQuickGeneratorsSimple(t *testing.T) {
	f := func(seed int64, rawN, rawK uint8) bool {
		n := int(rawN%60) + 10
		k := int(rawK%5) + 1
		for _, g := range []*graph.Graph{
			ErdosRenyi(n, 0.2, seed),
			BarabasiAlbert(n, k, seed),
			WattsStrogatz(n, 2*k, 0.2, seed),
			HolmeKim(n, k, 0.5, seed),
		} {
			if g.N() != n {
				return false
			}
			for v := int32(0); v < int32(n); v++ {
				adj := g.Neighbors(v)
				for i, u := range adj {
					if u == v {
						return false // self loop
					}
					if i > 0 && adj[i-1] >= u {
						return false // duplicate or unsorted
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPlantedPartition(t *testing.T) {
	g, truth := PlantedPartition(PlantedPartitionSpec{
		Communities: 3, Size: 10, PIn: 0.9, POut: 0.02, Seed: 5,
	})
	if g.N() != 30 || len(truth) != 3 {
		t.Fatalf("n=%d groups=%d", g.N(), len(truth))
	}
	// Within-group edges should dominate massively.
	within, across := 0, 0
	for _, e := range g.Edges() {
		if int(e.U)/10 == int(e.V)/10 {
			within++
		} else {
			across++
		}
	}
	if within <= 5*across {
		t.Fatalf("within=%d across=%d: partition not planted strongly", within, across)
	}
	for gi, members := range truth {
		if len(members) != 10 || members[0] != int32(gi*10) {
			t.Fatalf("truth group %d = %v", gi, members)
		}
	}
}

func TestPlantedPartitionClamps(t *testing.T) {
	g, truth := PlantedPartition(PlantedPartitionSpec{Communities: 0, Size: 0, PIn: 1})
	if g.N() != 1 || len(truth) != 1 {
		t.Fatalf("clamped spec: n=%d groups=%d", g.N(), len(truth))
	}
}

func TestPowerLawConfiguration(t *testing.T) {
	g := PowerLawConfiguration(5000, 2.5, 2, 200, 7)
	if g.N() != 5000 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() == 0 {
		t.Fatal("no edges generated")
	}
	// Heavy tail: max degree far above the mean.
	mean := 2 * float64(g.M()) / float64(g.N())
	if float64(g.MaxDegree()) < 5*mean {
		t.Fatalf("max degree %d vs mean %.1f: tail too thin", g.MaxDegree(), mean)
	}
	// Same seed reproduces, different seed varies.
	h := PowerLawConfiguration(5000, 2.5, 2, 200, 7)
	if h.M() != g.M() {
		t.Fatalf("same seed, different graphs")
	}
}

func TestPowerLawConfigurationClamps(t *testing.T) {
	g := PowerLawConfiguration(0, 2.5, 0, -1, 1)
	if g.N() != 1 {
		t.Fatalf("clamped N = %d", g.N())
	}
	g = PowerLawConfiguration(10, 3, 5, 100, 2) // dmax clamped to n-1
	if g.MaxDegree() > 9 {
		t.Fatalf("degree exceeds n-1: %d", g.MaxDegree())
	}
}

func TestMoonMoser(t *testing.T) {
	g := MoonMoser(3)
	if g.N() != 9 {
		t.Fatalf("N = %d", g.N())
	}
	// Each node is adjacent to all but its two partners: degree 6.
	for v := int32(0); v < 9; v++ {
		if g.Degree(v) != 6 {
			t.Fatalf("degree(%d) = %d, want 6", v, g.Degree(v))
		}
	}
	if g2 := MoonMoser(0); g2.N() != 3 {
		t.Fatalf("clamped MoonMoser N = %d", g2.N())
	}
}

// Every seeded generator must produce bit-identical graphs for the same
// seed, even within one process: Go randomizes map iteration per range
// statement, so any generator that lets map order leak into an rng-indexed
// draw produces a different graph on every call. (Regression test: HolmeKim
// and BarabasiAlbert once did exactly that via their adjacency maps.)
func TestSeededGeneratorsAreDeterministic(t *testing.T) {
	cases := []struct {
		name string
		make func() *graph.Graph
	}{
		{"BarabasiAlbert", func() *graph.Graph { return BarabasiAlbert(500, 4, 42) }},
		{"HolmeKim", func() *graph.Graph { return HolmeKim(500, 5, 0.6, 42) }},
		{"WattsStrogatz", func() *graph.Graph { return WattsStrogatz(500, 6, 0.3, 42) }},
		{"PowerLawConfiguration", func() *graph.Graph { return PowerLawConfiguration(500, 2.5, 2, 50, 42) }},
		{"PlantCliques", func() *graph.Graph {
			return PlantCliques(ErdosRenyi(200, 0.05, 1), 5, 4, 8, 42)
		}},
	}
	for _, tc := range cases {
		a, b := tc.make(), tc.make()
		if !edgesEqual(a, b) {
			t.Errorf("%s: same seed produced different graphs (%d vs %d edges)", tc.name, a.M(), b.M())
		}
	}
}
