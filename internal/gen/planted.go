package gen

import (
	"math/rand"

	"mce/internal/graph"
)

// PlantedPartitionSpec parameterises the planted-partition (stochastic
// block) model used to validate community detection: nodes are split into
// equal-size groups; within-group pairs are connected with probability PIn,
// across-group pairs with POut « PIn.
type PlantedPartitionSpec struct {
	// Communities is the number of planted groups.
	Communities int
	// Size is the number of nodes per group.
	Size int
	// PIn and POut are the within/across edge probabilities.
	PIn, POut float64
	// Seed drives the randomness.
	Seed int64
}

// PlantedPartition builds the graph and returns the ground-truth
// communities (each a sorted slice of node IDs). Group g owns the ID range
// [g*Size, (g+1)*Size).
func PlantedPartition(spec PlantedPartitionSpec) (*graph.Graph, [][]int32) {
	if spec.Communities < 1 {
		spec.Communities = 1
	}
	if spec.Size < 1 {
		spec.Size = 1
	}
	n := spec.Communities * spec.Size
	rng := rand.New(rand.NewSource(spec.Seed))
	b := graph.NewBuilder(n)
	groupOf := func(v int) int { return v / spec.Size }
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := spec.POut
			if groupOf(u) == groupOf(v) {
				p = spec.PIn
			}
			if rng.Float64() < p {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	truth := make([][]int32, spec.Communities)
	for g := 0; g < spec.Communities; g++ {
		members := make([]int32, spec.Size)
		for i := range members {
			members[i] = int32(g*spec.Size + i)
		}
		truth[g] = members
	}
	return b.Build(), truth
}
