// Package gen produces the synthetic networks used throughout the
// reproduction: the Erdős–Rényi, Barabási–Albert and Watts–Strogatz models
// the paper trains its decision tree on (§4), a Holme–Kim model (preferential
// attachment with triad formation) whose high clustering yields the clique
// structure of real social networks, a planted-clique overlay, the
// adversarial H_n chain of Theorem 1, and deterministic scaled-down
// surrogates of the paper's five SNAP/KONECT datasets (§6.1).
//
// Every generator takes an explicit seed so experiments are reproducible.
package gen

import (
	"math"
	"math/rand"
	"slices"

	"mce/internal/graph"
)

// ErdosRenyi returns a G(n, p) random graph: every unordered pair becomes an
// edge independently with probability p.
func ErdosRenyi(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	if p > 0 {
		for u := int32(0); u < int32(n); u++ {
			for v := u + 1; v < int32(n); v++ {
				if rng.Float64() < p {
					b.AddEdge(u, v)
				}
			}
		}
	}
	return b.Build()
}

// BarabasiAlbert returns a preferential-attachment graph: starting from a
// small clique on k+1 nodes, every new node attaches to k existing nodes
// chosen proportionally to their degree. The result is scale-free with a
// power-law degree tail, the hub-producing regime the paper targets.
func BarabasiAlbert(n, k int, seed int64) *graph.Graph {
	if k < 1 {
		k = 1
	}
	if n < k+1 {
		n = k + 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// repeated holds every edge endpoint once per incidence, so uniform
	// sampling from it is degree-proportional sampling.
	repeated := make([]int32, 0, 2*n*k)
	for u := int32(0); u <= int32(k); u++ {
		for v := u + 1; v <= int32(k); v++ {
			b.AddEdge(u, v)
			repeated = append(repeated, u, v)
		}
	}
	targets := make(map[int32]bool, k)
	for v := int32(k + 1); v < int32(n); v++ {
		for id := range targets {
			delete(targets, id)
		}
		for len(targets) < k {
			targets[repeated[rng.Intn(len(repeated))]] = true
		}
		// Drain the target set in sorted order: repeated is sampled by
		// index later, so its contents must not depend on map order.
		for _, u := range neighborsOf(targets) {
			b.AddEdge(v, u)
			repeated = append(repeated, v, u)
		}
	}
	return b.Build()
}

// WattsStrogatz returns a small-world graph: a ring lattice where every node
// connects to its k nearest neighbours (k rounded down to even), with each
// edge rewired to a uniform random endpoint with probability beta.
func WattsStrogatz(n, k int, beta float64, seed int64) *graph.Graph {
	if n < 3 {
		return graph.Complete(n)
	}
	if k >= n {
		k = n - 1
	}
	half := k / 2
	if half < 1 {
		half = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for j := 1; j <= half; j++ {
			u := v
			w := (v + j) % n
			if rng.Float64() < beta {
				// Rewire to a random non-self endpoint; a duplicate edge
				// is dropped by the builder, matching the usual tolerance
				// of WS implementations.
				w = rng.Intn(n)
				if w == u {
					w = (u + 1) % n
				}
			}
			b.AddEdge(int32(u), int32(w))
		}
	}
	return b.Build()
}

// HolmeKim returns a scale-free graph with tunable clustering: like
// Barabási–Albert, but after each preferential attachment step a triad is
// closed with probability pt (the new node also connects to a random
// neighbour of the node it just attached to). High pt produces the dense,
// clique-rich communities typical of friendship networks, which makes the
// model a good substrate for surrogate social datasets.
func HolmeKim(n, k int, pt float64, seed int64) *graph.Graph {
	if k < 1 {
		k = 1
	}
	if n < k+1 {
		n = k + 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	repeated := make([]int32, 0, 2*n*k)
	adj := make([]map[int32]bool, n)
	for i := range adj {
		adj[i] = make(map[int32]bool)
	}
	addEdge := func(u, v int32) bool {
		if u == v || adj[u][v] {
			return false
		}
		adj[u][v] = true
		adj[v][u] = true
		b.AddEdge(u, v)
		repeated = append(repeated, u, v)
		return true
	}
	for u := int32(0); u <= int32(k); u++ {
		for v := u + 1; v <= int32(k); v++ {
			addEdge(u, v)
		}
	}
	for v := int32(k + 1); v < int32(n); v++ {
		var last int32 = -1
		added := 0
		for attempts := 0; added < k && attempts < 20*k; attempts++ {
			if last >= 0 && rng.Float64() < pt {
				// Triad formation: connect to a random neighbour of last.
				nbrs := neighborsOf(adj[last])
				if len(nbrs) > 0 {
					w := nbrs[rng.Intn(len(nbrs))]
					if addEdge(v, w) {
						last = w
						added++
						continue
					}
				}
			}
			// Preferential attachment step.
			w := repeated[rng.Intn(len(repeated))]
			if addEdge(v, w) {
				last = w
				added++
			}
		}
	}
	return b.Build()
}

func neighborsOf(m map[int32]bool) []int32 {
	out := make([]int32, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	// Map iteration order is randomized per process; sorting keeps the
	// seeded rng draw below — and therefore the whole generated graph —
	// identical across runs of the same binary.
	slices.Sort(out)
	return out
}

// PlantCliques overlays extra cliques on g: count cliques, each of a size
// drawn uniformly from [minSize, maxSize], over node sets sampled with a bias
// towards high-degree nodes (so that some planted cliques live entirely among
// hubs, the paper's effectiveness scenario). It returns a new graph; g is not
// modified.
func PlantCliques(g *graph.Graph, count, minSize, maxSize int, seed int64) *graph.Graph {
	if maxSize < minSize {
		maxSize = minSize
	}
	rng := rand.New(rand.NewSource(seed))
	n := g.N()
	b := graph.NewBuilder(n)
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V)
	}
	// Degree-biased sampling pool: nodes appear once per unit of degree+1.
	pool := make([]int32, 0, 2*g.M()+n)
	for v := int32(0); v < int32(n); v++ {
		for i := 0; i <= g.Degree(v); i++ {
			pool = append(pool, v)
		}
	}
	for c := 0; c < count; c++ {
		size := minSize
		if maxSize > minSize {
			size += rng.Intn(maxSize - minSize + 1)
		}
		members := map[int32]bool{}
		for attempts := 0; len(members) < size && attempts < 50*size; attempts++ {
			members[pool[rng.Intn(len(pool))]] = true
		}
		ms := make([]int32, 0, len(members))
		for v := range members {
			ms = append(ms, v)
		}
		for i := range ms {
			for j := i + 1; j < len(ms); j++ {
				b.AddEdge(ms[i], ms[j])
			}
		}
	}
	return b.Build()
}

// PowerLawConfiguration builds a graph with a power-law degree sequence by
// the Molloy–Reed configuration model: target degrees are drawn from
// P(d) ∝ d^(−alpha) on [dmin, dmax], half-edges are paired uniformly, and
// self loops / multi-edges are dropped. Unlike preferential attachment it
// controls the exponent directly, which makes it the natural generator for
// degree-distribution experiments (Figure 6).
func PowerLawConfiguration(n int, alpha float64, dmin, dmax int, seed int64) *graph.Graph {
	if n < 1 {
		n = 1
	}
	if dmin < 1 {
		dmin = 1
	}
	if dmax < dmin {
		dmax = dmin
	}
	if dmax > n-1 {
		dmax = n - 1
		if dmax < dmin {
			dmin = dmax
		}
	}
	rng := rand.New(rand.NewSource(seed))

	// Inverse-CDF sampling over the discrete power law.
	weights := make([]float64, dmax-dmin+1)
	total := 0.0
	for i := range weights {
		d := float64(dmin + i)
		weights[i] = math.Pow(d, -alpha)
		total += weights[i]
	}
	sample := func() int {
		r := rng.Float64() * total
		for i, w := range weights {
			r -= w
			if r <= 0 {
				return dmin + i
			}
		}
		return dmax
	}

	// Half-edge stubs; drop one stub if the sum is odd.
	var stubs []int32
	for v := 0; v < n; v++ {
		d := sample()
		for i := 0; i < d; i++ {
			stubs = append(stubs, int32(v))
		}
	}
	if len(stubs)%2 == 1 {
		stubs = stubs[:len(stubs)-1]
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })

	b := graph.NewBuilder(n)
	for i := 0; i+1 < len(stubs); i += 2 {
		b.AddEdge(stubs[i], stubs[i+1]) // loops/duplicates dropped by Build
	}
	return b.Build()
}

// HardChain builds the H_n construction from the proof of Theorem 1(2): the
// first m+1 nodes form a clique, and every later node v_j connects to the m
// previous nodes of lowest degree. Recursively removing nodes of degree ≤ m
// peels exactly one node per round, so the first-level decomposition needs
// Ω(n) recursion rounds even though the degeneracy stays below m+1.
func HardChain(n, m int, seed int64) *graph.Graph {
	if m < 1 {
		m = 1
	}
	if n < m+2 {
		n = m + 2
	}
	_ = seed // construction is deterministic; parameter kept for API symmetry
	b := graph.NewBuilder(n)
	deg := make([]int, n)
	addEdge := func(u, v int32) {
		b.AddEdge(u, v)
		deg[u]++
		deg[v]++
	}
	for u := int32(0); u <= int32(m); u++ {
		for v := u + 1; v <= int32(m); v++ {
			addEdge(u, v)
		}
	}
	for j := int32(m + 1); j < int32(n); j++ {
		// Pick the m previous nodes with the lowest degree (ties by most
		// recent, matching the proof's figure where v_j attaches to the
		// m nodes just before it once the chain regime starts).
		type cand struct {
			v int32
			d int
		}
		cands := make([]cand, j)
		for v := int32(0); v < j; v++ {
			cands[v] = cand{v, deg[v]}
		}
		// Selection sort of the m smallest, preferring larger v on ties.
		for i := 0; i < m; i++ {
			best := i
			for t := i + 1; t < len(cands); t++ {
				if cands[t].d < cands[best].d ||
					(cands[t].d == cands[best].d && cands[t].v > cands[best].v) {
					best = t
				}
			}
			cands[i], cands[best] = cands[best], cands[i]
			addEdge(j, cands[i].v)
		}
	}
	return b.Build()
}

// MoonMoser returns the complete k-partite graph with parts of size 3 — the
// Moon–Moser worst case with exactly 3^k maximal cliques, the bound the
// Tomita algorithm's O(3^(n/3)) analysis is tight on. Useful for stress
// tests and for demonstrating why output-sensitive enumeration matters.
func MoonMoser(k int) *graph.Graph {
	if k < 1 {
		k = 1
	}
	n := 3 * k
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if u/3 != v/3 {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	return b.Build()
}
