package gen

import (
	"fmt"
	"sort"

	"mce/internal/graph"
)

// DatasetSpec describes a deterministic surrogate of one of the paper's five
// evaluation networks (Table 3). The real datasets — three Twitter follower
// crawls, the Facebook wall graph, and Google+ circles, 2.9M–17M nodes — are
// not redistributable and far exceed a single-machine test budget, so each is
// replaced by a scaled-down scale-free graph with the same qualitative shape:
// power-law degree distribution (Figure 6), a small share of very-high-degree
// hubs, and dense communities that produce large maximal cliques, some of
// them entirely among hubs (the paper's effectiveness scenario, Figures 9–11).
type DatasetSpec struct {
	Name string
	// N is the surrogate node count.
	N int
	// K is the attachment parameter (≈ half the mean degree).
	K int
	// TriadP is the Holme–Kim triad-formation probability; higher values
	// mean more clustering and larger cliques.
	TriadP float64
	// PlantedCliques/PlantedMin/PlantedMax overlay dense communities.
	PlantedCliques, PlantedMin, PlantedMax int
	// Seed makes the surrogate reproducible.
	Seed int64
	// PaperNodes/PaperEdges/PaperMaxDegree record what Table 3 reports for
	// the original network, for documentation and scale comparisons.
	PaperNodes, PaperEdges, PaperMaxDegree int
}

// Build materialises the surrogate graph.
func (s DatasetSpec) Build() *graph.Graph {
	g := HolmeKim(s.N, s.K, s.TriadP, s.Seed)
	if s.PlantedCliques > 0 {
		g = PlantCliques(g, s.PlantedCliques, s.PlantedMin, s.PlantedMax, s.Seed+1)
	}
	return g
}

// Datasets returns the five surrogate specs in the paper's Table 3 order:
// twitter1, twitter2, twitter3, facebook, google+.
func Datasets() []DatasetSpec {
	return []DatasetSpec{
		{
			Name: "twitter1", N: 6000, K: 4, TriadP: 0.55,
			PlantedCliques: 40, PlantedMin: 8, PlantedMax: 18, Seed: 101,
			PaperNodes: 2919613, PaperEdges: 12887063, PaperMaxDegree: 39753,
		},
		{
			Name: "twitter2", N: 9000, K: 9, TriadP: 0.6,
			PlantedCliques: 60, PlantedMin: 10, PlantedMax: 22, Seed: 202,
			PaperNodes: 6072441, PaperEdges: 117185083, PaperMaxDegree: 338313,
		},
		{
			Name: "twitter3", N: 14000, K: 12, TriadP: 0.6,
			PlantedCliques: 80, PlantedMin: 10, PlantedMax: 24, Seed: 303,
			PaperNodes: 17069982, PaperEdges: 476553560, PaperMaxDegree: 2081112,
		},
		{
			Name: "facebook", N: 11000, K: 8, TriadP: 0.75,
			PlantedCliques: 50, PlantedMin: 8, PlantedMax: 15, Seed: 404,
			PaperNodes: 4601952, PaperEdges: 87610993, PaperMaxDegree: 2621960,
		},
		{
			Name: "google+", N: 9000, K: 6, TriadP: 0.7,
			PlantedCliques: 45, PlantedMin: 7, PlantedMax: 13, Seed: 505,
			PaperNodes: 6308731, PaperEdges: 81700035, PaperMaxDegree: 1098000,
		},
	}
}

// Dataset returns the spec with the given name.
func Dataset(name string) (DatasetSpec, error) {
	for _, s := range Datasets() {
		if s.Name == name {
			return s, nil
		}
	}
	names := make([]string, 0, 5)
	for _, s := range Datasets() {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return DatasetSpec{}, fmt.Errorf("gen: unknown dataset %q (have %v)", name, names)
}

// CorpusGraph identifies one member of the 50-graph decision-tree corpus.
type CorpusGraph struct {
	Name  string
	Model string // "er", "ba", "ws", or "hk"
	Graph *graph.Graph
}

// Corpus generates the heterogeneous graph collection of §4 used to train
// and test the algorithm-selection decision tree: a mix of Erdős–Rényi,
// Barabási–Albert and Watts–Strogatz graphs (the three models the paper
// cites) plus clique-rich Holme–Kim graphs standing in for the paper's
// real-world SNAP samples. Sizes and densities span a wide range so the
// corpus exhibits the heterogeneity of the paper's Table 2.
func Corpus(seed int64) []CorpusGraph {
	var out []CorpusGraph
	add := func(name, model string, g *graph.Graph) {
		out = append(out, CorpusGraph{Name: name, Model: model, Graph: g})
	}
	// 14 Erdős–Rényi graphs across a density sweep. The dense variant is
	// capped in size: G(n, 0.3) for large n has tens of millions of
	// maximal cliques, which would dominate the corpus measurement without
	// adding heterogeneity.
	erN := []int{50, 80, 120, 200, 300, 500, 800}
	for i, n := range erN {
		add(fmt.Sprintf("er-%d-sparse", n), "er", ErdosRenyi(n, 4/float64(n), seed+int64(i)))
		p := 0.3
		if n > 300 {
			p = 0.04
		}
		add(fmt.Sprintf("er-%d-dense", n), "er", ErdosRenyi(n, p, seed+100+int64(i)))
	}
	// 12 Barabási–Albert graphs.
	baN := []int{100, 200, 400, 700, 1000, 1500}
	for i, n := range baN {
		add(fmt.Sprintf("ba-%d-k3", n), "ba", BarabasiAlbert(n, 3, seed+200+int64(i)))
		add(fmt.Sprintf("ba-%d-k8", n), "ba", BarabasiAlbert(n, 8, seed+300+int64(i)))
	}
	// 12 Watts–Strogatz graphs.
	wsN := []int{100, 250, 500, 900, 1400, 2000}
	for i, n := range wsN {
		add(fmt.Sprintf("ws-%d-low", n), "ws", WattsStrogatz(n, 8, 0.05, seed+400+int64(i)))
		add(fmt.Sprintf("ws-%d-high", n), "ws", WattsStrogatz(n, 12, 0.3, seed+500+int64(i)))
	}
	// 12 Holme–Kim graphs (real-world stand-ins), some with planted cliques.
	hkN := []int{150, 300, 600, 1000, 1600, 2400}
	for i, n := range hkN {
		g := HolmeKim(n, 5, 0.7, seed+600+int64(i))
		add(fmt.Sprintf("hk-%d", n), "hk", g)
		gp := PlantCliques(HolmeKim(n, 7, 0.6, seed+700+int64(i)), n/100+2, 6, 14, seed+800+int64(i))
		add(fmt.Sprintf("hk-%d-planted", n), "hk", gp)
	}
	return out
}
