package mcealg

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"mce/internal/bitset"
	"mce/internal/gen"
	"mce/internal/graph"
)

// key canonicalises a clique for set comparison.
func key(c []int32) string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

func cliqueSet(cs [][]int32) map[string]bool {
	m := make(map[string]bool, len(cs))
	for _, c := range cs {
		m[key(c)] = true
	}
	return m
}

func assertSameCliques(t *testing.T, what string, got, want [][]int32) {
	t.Helper()
	gs, ws := cliqueSet(got), cliqueSet(want)
	if len(got) != len(gs) {
		t.Fatalf("%s: emitted %d cliques with duplicates (distinct %d)", what, len(got), len(gs))
	}
	for k := range ws {
		if !gs[k] {
			t.Fatalf("%s: clique {%s} missing", what, k)
		}
	}
	for k := range gs {
		if !ws[k] {
			t.Fatalf("%s: spurious clique {%s}", what, k)
		}
	}
}

func TestComboStrings(t *testing.T) {
	c := Combo{Alg: Tomita, Struct: BitSets}
	if c.String() != "[BitSets/Tomita]" {
		t.Fatalf("String = %q", c.String())
	}
	if Algorithm(99).String() == "" || Structure(99).String() == "" {
		t.Fatalf("unknown enums must render")
	}
}

func TestAllCombos(t *testing.T) {
	cs := AllCombos()
	if len(cs) != 12 {
		t.Fatalf("len = %d, want 12", len(cs))
	}
	seen := map[Combo]bool{}
	for _, c := range cs {
		if seen[c] {
			t.Fatalf("duplicate combo %v", c)
		}
		seen[c] = true
	}
}

func TestEmptyGraphAllCombos(t *testing.T) {
	g := graph.Empty(0)
	for _, c := range AllCombos() {
		got, err := Collect(g, c)
		if err != nil || len(got) != 0 {
			t.Fatalf("%v on empty graph: %v cliques, err %v", c, got, err)
		}
	}
}

func TestIsolatedNodes(t *testing.T) {
	// Each isolated node is itself a maximal clique.
	g := graph.Empty(4)
	for _, c := range AllCombos() {
		got, err := Collect(g, c)
		if err != nil {
			t.Fatal(err)
		}
		want := [][]int32{{0}, {1}, {2}, {3}}
		assertSameCliques(t, c.String(), got, want)
	}
}

func TestTriangleWithTail(t *testing.T) {
	// Triangle 0-1-2 plus tail 2-3: maximal cliques {0,1,2} and {2,3}.
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}})
	want := [][]int32{{0, 1, 2}, {2, 3}}
	for _, c := range AllCombos() {
		got, err := Collect(g, c)
		if err != nil {
			t.Fatal(err)
		}
		assertSameCliques(t, c.String(), got, want)
	}
}

func TestCompleteGraphSingleClique(t *testing.T) {
	g := graph.Complete(7)
	for _, c := range AllCombos() {
		got, err := Collect(g, c)
		if err != nil {
			t.Fatal(err)
		}
		assertSameCliques(t, c.String(), got, [][]int32{{0, 1, 2, 3, 4, 5, 6}})
	}
}

func TestPaperFigure1Graph(t *testing.T) {
	// The network of paper Figure 1: nodes A..Z mapped to 0..15.
	// A=0 J=1 H=2 D=3 E=4 F=5 G=6 S=7 X=8 L=9 Z=10 R=11 P=12 Y=13 W=14 U=15.
	// Edges transcribed from the figure's description in §2: the cliques
	// {A,J,H}, {H,F,D}, {D,S,E} exist; L-S, G-E, U-S, X-E, R-D, P-D, Z-D,
	// Y-E, W-S complete the picture.
	edges := []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}, // A-J-H triangle
		{U: 2, V: 5}, {U: 2, V: 3}, {U: 5, V: 3}, // H-F-D triangle
		{U: 3, V: 7}, {U: 3, V: 4}, {U: 7, V: 4}, // D-S-E triangle
		{U: 9, V: 7},  // L-S
		{U: 6, V: 4},  // G-E
		{U: 15, V: 7}, // U-S
		{U: 8, V: 4},  // X-E
		{U: 11, V: 3}, // R-D
		{U: 12, V: 3}, // P-D
		{U: 10, V: 3}, // Z-D
		{U: 13, V: 4}, // Y-E
		{U: 14, V: 7}, // W-S
	}
	g := graph.FromEdges(16, edges)
	want := ReferenceCollect(g)
	// Sanity: the three named cliques are present.
	ws := cliqueSet(want)
	for _, k := range []string{"0,1,2", "2,3,5", "3,4,7"} {
		if !ws[k] {
			t.Fatalf("reference misses paper clique {%s}", k)
		}
	}
	for _, c := range AllCombos() {
		got, err := Collect(g, c)
		if err != nil {
			t.Fatal(err)
		}
		assertSameCliques(t, c.String(), got, want)
	}
}

func TestMoonMoserCount(t *testing.T) {
	// The Moon–Moser graph K_{3,3,3...}: complete multipartite with k parts
	// of size 3 has exactly 3^k maximal cliques — the worst case Tomita's
	// bound is tight on. Use k=4 → 81 cliques.
	k := 4
	n := 3 * k
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if u/3 != v/3 {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	g := b.Build()
	for _, c := range AllCombos() {
		cnt, err := Count(g, c)
		if err != nil {
			t.Fatal(err)
		}
		if cnt != 81 {
			t.Fatalf("%v: count = %d, want 81", c, cnt)
		}
	}
}

func TestEmitBufferIsReused(t *testing.T) {
	// The doc promises the emit slice is reused; callers must copy. Verify
	// cliques stay correct when the caller copies, and that mutation of the
	// emitted slice does not corrupt enumeration.
	g := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 2, V: 4}})
	var got [][]int32
	err := Enumerate(g, Combo{Alg: Tomita, Struct: BitSets}, func(k []int32) {
		cp := make([]int32, len(k))
		copy(cp, k)
		got = append(got, cp)
		for i := range k {
			k[i] = -1 // hostile caller
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameCliques(t, "reuse", got, [][]int32{{0, 1}, {2, 3, 4}})
}

func TestSubproblemSemantics(t *testing.T) {
	// Square 0-1-2-3-0 with diagonal 0-2: cliques {0,1,2}, {0,2,3}.
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}, {U: 0, V: 2}})
	for _, c := range AllCombos() {
		// R={0}, P=N(0), X=∅: all maximal cliques containing node 0.
		P := bitset.FromSlice(4, []int32{1, 2, 3})
		X := bitset.New(4)
		var got [][]int32
		err := EnumerateSubproblem(g, c, []int32{0}, P, X, func(k []int32) {
			cp := make([]int32, len(k))
			copy(cp, k)
			got = append(got, cp)
		})
		if err != nil {
			t.Fatal(err)
		}
		assertSameCliques(t, c.String()+" R={0}", got, [][]int32{{0, 1, 2}, {0, 2, 3}})

		// R={0}, P=N(0)\{1}, X={1}: cliques containing 0, avoiding 1,
		// not extensible by 1 → only {0,2,3} ({0,2} extends by 1 and 3).
		P = bitset.FromSlice(4, []int32{2, 3})
		X = bitset.FromSlice(4, []int32{1})
		got = nil
		err = EnumerateSubproblem(g, c, []int32{0}, P, X, func(k []int32) {
			cp := make([]int32, len(k))
			copy(cp, k)
			got = append(got, cp)
		})
		if err != nil {
			t.Fatal(err)
		}
		assertSameCliques(t, c.String()+" X={1}", got, [][]int32{{0, 2, 3}})
	}
}

func TestSubproblemEmptyPNonEmptyX(t *testing.T) {
	// R maximal only if X empty: with X non-empty nothing is emitted.
	g := graph.Complete(3)
	for _, c := range AllCombos() {
		got := 0
		err := EnumerateSubproblem(g, c, []int32{0, 1}, bitset.New(3),
			bitset.FromSlice(3, []int32{2}), func([]int32) { got++ })
		if err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Fatalf("%v: emitted %d cliques, want 0", c, got)
		}
	}
}

func TestMatrixTooLarge(t *testing.T) {
	g := graph.Empty(MatrixMaxNodes + 1)
	err := Enumerate(g, Combo{Alg: BKPivot, Struct: Matrix}, func([]int32) {})
	if err == nil {
		t.Fatalf("oversized matrix accepted")
	}
}

func TestReferenceAgainstBruteForce(t *testing.T) {
	// Cross-check the oracle itself against subset brute force on tiny
	// random graphs.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(9) + 1
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(2) == 0 {
					b.AddEdge(int32(u), int32(v))
				}
			}
		}
		g := b.Build()
		want := bruteForceMaximalCliques(g)
		got := ReferenceCollect(g)
		assertSameCliques(t, fmt.Sprintf("trial %d", trial), got, want)
	}
}

// bruteForceMaximalCliques enumerates all subsets; only for n <= ~16.
func bruteForceMaximalCliques(g *graph.Graph) [][]int32 {
	n := g.N()
	isClique := func(mask uint32) bool {
		for u := 0; u < n; u++ {
			if mask&(1<<u) == 0 {
				continue
			}
			for v := u + 1; v < n; v++ {
				if mask&(1<<v) != 0 && !g.HasEdge(int32(u), int32(v)) {
					return false
				}
			}
		}
		return true
	}
	var cliques []uint32
	for mask := uint32(1); mask < 1<<n; mask++ {
		if isClique(mask) {
			cliques = append(cliques, mask)
		}
	}
	var out [][]int32
	for _, m := range cliques {
		maximal := true
		for _, m2 := range cliques {
			if m != m2 && m&m2 == m {
				maximal = false
				break
			}
		}
		if maximal {
			var c []int32
			for v := 0; v < n; v++ {
				if m&(1<<v) != 0 {
					c = append(c, int32(v))
				}
			}
			out = append(out, c)
		}
	}
	return out
}

// Property: all 12 combos agree with the reference oracle on random sparse
// and dense graphs.
func TestQuickAllCombosMatchReference(t *testing.T) {
	f := func(seed int64, dense bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(26) + 2
		p := 0.15
		if dense {
			p = 0.6
		}
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < p {
					b.AddEdge(int32(u), int32(v))
				}
			}
		}
		g := b.Build()
		want := cliqueSet(ReferenceCollect(g))
		for _, c := range AllCombos() {
			got, err := Collect(g, c)
			if err != nil {
				return false
			}
			gs := cliqueSet(got)
			if len(gs) != len(want) || len(got) != len(gs) {
				return false
			}
			for k := range want {
				if !gs[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every emitted set is a clique and is maximal (checked directly
// against the graph, independent of any enumerator).
func TestQuickEmittedAreMaximalCliques(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(rng.Intn(30)+3, 0.3, seed)
		for _, c := range AllCombos() {
			ok := true
			err := Enumerate(g, c, func(k []int32) {
				for i := range k {
					for j := i + 1; j < len(k); j++ {
						if !g.HasEdge(k[i], k[j]) {
							ok = false
						}
					}
				}
				// Maximality: no outside node adjacent to all members.
				for v := int32(0); v < int32(g.N()); v++ {
					inClique := false
					adjAll := true
					for _, u := range k {
						if u == v {
							inClique = true
							break
						}
						if !g.HasEdge(u, v) {
							adjAll = false
							break
						}
					}
					if !inClique && adjAll {
						ok = false
					}
				}
			})
			if err != nil || !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleFreeGraphAllCombosAgree(t *testing.T) {
	// A Holme–Kim social-style graph: the 12 combos must produce the same
	// clique count.
	g := gen.HolmeKim(300, 4, 0.7, 21)
	want := -1
	for _, c := range AllCombos() {
		got, err := Count(g, c)
		if err != nil {
			t.Fatal(err)
		}
		if want == -1 {
			want = got
		} else if got != want {
			t.Fatalf("%v: count = %d, others had %d", c, got, want)
		}
	}
	if want < g.N()/10 {
		t.Fatalf("suspiciously few cliques: %d", want)
	}
}

func TestEnumerateDeterministic(t *testing.T) {
	g := gen.ErdosRenyi(60, 0.2, 9)
	a, err := Collect(g, Combo{Alg: Eppstein, Struct: Lists})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(g, Combo{Alg: Eppstein, Struct: Lists})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if key(a[i]) != key(b[i]) {
			t.Fatalf("order differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func sortCliques(cs [][]int32) {
	sort.Slice(cs, func(i, j int) bool { return key(cs[i]) < key(cs[j]) })
}

func TestCollectMatchesEnumerate(t *testing.T) {
	g := gen.ErdosRenyi(40, 0.25, 2)
	collected, err := Collect(g, Combo{Alg: Tomita, Struct: Lists})
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := Count(g, Combo{Alg: Tomita, Struct: Lists})
	if err != nil {
		t.Fatal(err)
	}
	if cnt != len(collected) {
		t.Fatalf("Count = %d, Collect = %d", cnt, len(collected))
	}
	sortCliques(collected)
}

func benchGraph() *graph.Graph {
	return gen.HolmeKim(800, 6, 0.7, 33)
}

func BenchmarkCombos(b *testing.B) {
	g := benchGraph()
	for _, c := range AllCombos() {
		b.Run(c.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Count(g, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
