package mcealg

import (
	"testing"

	"mce/internal/graph"
)

// Structured graphs with known maximal clique counts, checked across every
// combo — a complement to the randomised oracle tests.
func TestStructuredGraphCliqueCounts(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"cycle-4", cycle(4), 4}, // each edge is maximal
		{"cycle-9", cycle(9), 9},
		{"path-6", pathG(6), 5}, // each edge
		{"star-7", star(7), 6},  // each spoke
		{"K33", bipartite(3, 3), 9},
		{"K25", bipartite(2, 5), 10},
		{"hypercube-3", hypercube(3), 12}, // Q3: 12 edges, triangle-free
		{"two-K4-bridge", twoCliquesBridged(4), 3},
		{"wheel-6", wheel(6), 6},     // hub+rim triangles
		{"petersen", petersen(), 15}, // triangle-free: 15 edges
	}
	for _, c := range cases {
		for _, combo := range AllCombos() {
			got, err := Count(c.g, combo)
			if err != nil {
				t.Fatalf("%s %v: %v", c.name, combo, err)
			}
			if got != c.want {
				t.Fatalf("%s %v: %d maximal cliques, want %d", c.name, combo, got, c.want)
			}
		}
	}
}

func cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(int32(v), int32((v+1)%n))
	}
	return b.Build()
}

func pathG(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(int32(v), int32(v+1))
	}
	return b.Build()
}

func star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, int32(v))
	}
	return b.Build()
}

func bipartite(a, c int) *graph.Graph {
	b := graph.NewBuilder(a + c)
	for u := 0; u < a; u++ {
		for v := 0; v < c; v++ {
			b.AddEdge(int32(u), int32(a+v))
		}
	}
	return b.Build()
}

func hypercube(dim int) *graph.Graph {
	n := 1 << dim
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < dim; bit++ {
			b.AddEdge(int32(v), int32(v^(1<<bit)))
		}
	}
	return b.Build()
}

func twoCliquesBridged(k int) *graph.Graph {
	b := graph.NewBuilder(2 * k)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			b.AddEdge(int32(u), int32(v))
			b.AddEdge(int32(k+u), int32(k+v))
		}
	}
	b.AddEdge(int32(k-1), int32(k))
	return b.Build()
}

// wheel returns a hub joined to an n-cycle rim (n ≥ 3): the maximal cliques
// are the n hub-rim triangles.
func wheel(n int) *graph.Graph {
	b := graph.NewBuilder(n + 1)
	for v := 0; v < n; v++ {
		b.AddEdge(int32(n), int32(v))
		b.AddEdge(int32(v), int32((v+1)%n))
	}
	return b.Build()
}

func petersen() *graph.Graph {
	b := graph.NewBuilder(10)
	for v := 0; v < 5; v++ {
		b.AddEdge(int32(v), int32((v+1)%5))     // outer C5
		b.AddEdge(int32(v), int32(v+5))         // spokes
		b.AddEdge(int32(v+5), int32((v+2)%5+5)) // inner pentagram
	}
	return b.Build()
}

// Wedge of many triangles at a single shared node: stresses the visited/X
// logic around one very high-degree pivot.
func TestTriangleFan(t *testing.T) {
	k := 30
	b := graph.NewBuilder(1 + 2*k)
	for i := 0; i < k; i++ {
		u := int32(1 + 2*i)
		v := u + 1
		b.AddEdge(0, u)
		b.AddEdge(0, v)
		b.AddEdge(u, v)
	}
	g := b.Build()
	for _, combo := range AllCombos() {
		got, err := Count(g, combo)
		if err != nil {
			t.Fatal(err)
		}
		if got != k {
			t.Fatalf("%v: fan of %d triangles produced %d cliques", combo, k, got)
		}
	}
}

// Blow-up of a triangle: replace each vertex by an independent set of s
// nodes; maximal cliques are all s^3 transversal triangles.
func TestTriangleBlowup(t *testing.T) {
	s := 4
	b := graph.NewBuilder(3 * s)
	for part := 0; part < 3; part++ {
		next := (part + 1) % 3
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				b.AddEdge(int32(part*s+i), int32(next*s+j))
			}
		}
	}
	g := b.Build()
	want := s * s * s
	for _, combo := range AllCombos() {
		got, err := Count(g, combo)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v: blow-up has %d cliques, want %d", combo, got, want)
		}
	}
}
