package mcealg

import (
	"fmt"

	"mce/internal/bitset"
	"mce/internal/graph"
)

// adjacency abstracts the three neighbourhood representations of the paper's
// framework. All candidate sets (P, X) are bit sets over the graph's node
// range; the representations differ in how neighbourhood intersections are
// computed, which is exactly where their performance profiles diverge:
//
//   - Matrix: O(|S|) membership probes per intersection, cheap on small
//     dense blocks, quadratic memory;
//   - Lists: O(deg(v)) probes, cheap on sparse blocks;
//   - BitSets: O(n/64) word operations regardless of degree, best on
//     mid-size dense blocks.
type adjacency interface {
	// intersectNeighbors stores N(v) ∩ s into dst.
	intersectNeighbors(dst *bitset.Set, v int32, s *bitset.Set)
	// subtractNeighbors stores s \ N(v) into dst.
	subtractNeighbors(dst *bitset.Set, v int32, s *bitset.Set)
	// intersectCount returns |N(v) ∩ s|.
	intersectCount(v int32, s *bitset.Set) int
	// degree returns deg(v) in the underlying graph.
	degree(v int32) int
}

// newAdjacency builds the representation selected by s.
func newAdjacency(g *graph.Graph, s Structure) (adjacency, error) {
	switch s {
	case Matrix:
		if g.N() > MatrixMaxNodes {
			return nil, fmt.Errorf("mcealg: %d nodes exceed the Matrix structure limit of %d", g.N(), MatrixMaxNodes)
		}
		return newMatrixAdj(g), nil
	case Lists:
		return listsAdj{g: g}, nil
	case BitSets, BitSetsParallel:
		// BitSetsParallel shares the BitSets rows: the structure is
		// read-only after construction, so the work-stealing workers can
		// intersect against it concurrently without synchronisation.
		return newBitsetAdj(g), nil
	}
	return nil, fmt.Errorf("mcealg: unknown structure %v", s)
}

// matrixAdj is a dense boolean adjacency matrix flattened row-major.
type matrixAdj struct {
	n   int
	m   []bool
	deg []int32
}

func newMatrixAdj(g *graph.Graph) *matrixAdj {
	n := g.N()
	a := &matrixAdj{n: n, m: make([]bool, n*n), deg: make([]int32, n)}
	for v := int32(0); v < int32(n); v++ {
		a.deg[v] = int32(g.Degree(v))
		row := a.m[int(v)*n : (int(v)+1)*n]
		for _, u := range g.Neighbors(v) {
			row[u] = true
		}
	}
	return a
}

func (a *matrixAdj) intersectNeighbors(dst *bitset.Set, v int32, s *bitset.Set) {
	dst.Clear()
	row := a.m[int(v)*a.n : (int(v)+1)*a.n]
	for u := s.Next(0); u >= 0; u = s.Next(u + 1) {
		if row[u] {
			dst.Add(u)
		}
	}
}

func (a *matrixAdj) subtractNeighbors(dst *bitset.Set, v int32, s *bitset.Set) {
	dst.CopyFrom(s)
	row := a.m[int(v)*a.n : (int(v)+1)*a.n]
	for u := s.Next(0); u >= 0; u = s.Next(u + 1) {
		if row[u] {
			dst.Remove(u)
		}
	}
}

func (a *matrixAdj) intersectCount(v int32, s *bitset.Set) int {
	row := a.m[int(v)*a.n : (int(v)+1)*a.n]
	c := 0
	for u := s.Next(0); u >= 0; u = s.Next(u + 1) {
		if row[u] {
			c++
		}
	}
	return c
}

func (a *matrixAdj) degree(v int32) int { return int(a.deg[v]) }

// listsAdj walks the graph's sorted adjacency slices directly (the paper's
// Lists structure, including the inverted-table flavour of [17] in spirit:
// neighbour lists are scanned, set membership is O(1) on the bit set).
type listsAdj struct {
	g *graph.Graph
}

func (a listsAdj) intersectNeighbors(dst *bitset.Set, v int32, s *bitset.Set) {
	dst.Clear()
	for _, u := range a.g.Neighbors(v) {
		if s.Has(u) {
			dst.Add(u)
		}
	}
}

func (a listsAdj) subtractNeighbors(dst *bitset.Set, v int32, s *bitset.Set) {
	dst.CopyFrom(s)
	for _, u := range a.g.Neighbors(v) {
		dst.Remove(u)
	}
}

func (a listsAdj) intersectCount(v int32, s *bitset.Set) int {
	c := 0
	for _, u := range a.g.Neighbors(v) {
		if s.Has(u) {
			c++
		}
	}
	return c
}

func (a listsAdj) degree(v int32) int { return a.g.Degree(v) }

// bitsetAdj stores one bit-set row per node; intersections are word-parallel.
type bitsetAdj struct {
	rows []*bitset.Set
	deg  []int32
}

func newBitsetAdj(g *graph.Graph) *bitsetAdj {
	n := g.N()
	a := &bitsetAdj{rows: make([]*bitset.Set, n), deg: make([]int32, n)}
	for v := int32(0); v < int32(n); v++ {
		row := bitset.New(n)
		for _, u := range g.Neighbors(v) {
			row.Add(u)
		}
		a.rows[v] = row
		a.deg[v] = int32(g.Degree(v))
	}
	return a
}

func (a *bitsetAdj) intersectNeighbors(dst *bitset.Set, v int32, s *bitset.Set) {
	dst.AndInto(a.rows[v], s)
}

func (a *bitsetAdj) subtractNeighbors(dst *bitset.Set, v int32, s *bitset.Set) {
	dst.AndNotInto(s, a.rows[v])
}

func (a *bitsetAdj) intersectCount(v int32, s *bitset.Set) int {
	return a.rows[v].AndCount(s)
}

func (a *bitsetAdj) degree(v int32) int { return int(a.deg[v]) }
