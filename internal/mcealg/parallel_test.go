package mcealg

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"mce/internal/bitset"
	"mce/internal/gen"
	"mce/internal/graph"
)

func fullSet(n int) *bitset.Set {
	s := bitset.New(n)
	for v := int32(0); v < int32(n); v++ {
		s.Add(v)
	}
	return s
}

func emptySet(n int) *bitset.Set { return bitset.New(n) }

// collectPar gathers EnumeratePar's output preserving emission order.
func collectPar(t *testing.T, g *graph.Graph, c Combo, par Par) [][]int32 {
	t.Helper()
	var out [][]int32
	err := EnumeratePar(g, c, par, func(k []int32) {
		cp := make([]int32, len(k))
		copy(cp, k)
		out = append(out, cp)
	})
	if err != nil {
		t.Fatalf("EnumeratePar(%v, workers=%d): %v", c, par.Workers, err)
	}
	return out
}

func assertSameOrder(t *testing.T, what string, got, want [][]int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d cliques, want %d", what, len(got), len(want))
	}
	for i := range want {
		if key(got[i]) != key(want[i]) {
			t.Fatalf("%s: clique %d is {%s}, want {%s} — parallel emission order diverged from sequential",
				what, i, key(got[i]), key(want[i]))
		}
	}
}

// TestParallelMatchesSequentialOrder is the determinism contract: for every
// algorithm, every worker count — including widths far beyond GOMAXPROCS,
// which force constant stealing — the BitSetsParallel enumerator must emit
// exactly the sequential BitSets clique sequence, element for element.
func TestParallelMatchesSequentialOrder(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"holme-kim", gen.HolmeKim(140, 5, 0.5, 1)},
		{"barabasi-albert", gen.BarabasiAlbert(140, 6, 2)},
		{"erdos-renyi-dense", gen.ErdosRenyi(70, 0.45, 3)},
	}
	for _, tc := range graphs {
		for _, alg := range []Algorithm{BKPivot, Tomita, Eppstein, XPivot} {
			want := collectPar(t, tc.g, Combo{Alg: alg, Struct: BitSets}, Par{})
			if len(want) == 0 {
				t.Fatalf("%s/%v: sequential run found no cliques — workload too trivial", tc.name, alg)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				name := fmt.Sprintf("%s/%v/w%d", tc.name, alg, workers)
				// MinCandidates 2 forces the pool even on small candidate
				// sets, maximising split/steal traffic for the race detector.
				got := collectPar(t, tc.g, Combo{Alg: alg, Struct: BitSetsParallel},
					Par{Workers: workers, MinCandidates: 2})
				assertSameOrder(t, name, got, want)
			}
		}
	}
}

// TestParallelCountersMatchSequential: the recursion-node and
// pivot-selection counters feed per-block telemetry; splitting must move
// work between goroutines without changing how much work is counted.
func TestParallelCountersMatchSequential(t *testing.T) {
	g := gen.HolmeKim(120, 5, 0.4, 7)
	for _, alg := range []Algorithm{BKPivot, Tomita, Eppstein, XPivot} {
		seq, err := NewRunner(g, Combo{Alg: alg, Struct: BitSets})
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewRunnerPar(g, Combo{Alg: alg, Struct: BitSetsParallel}, Par{Workers: 4, MinCandidates: 2})
		if err != nil {
			t.Fatal(err)
		}
		runAll := func(r *Runner) {
			P := fullSet(g.N())
			r.Subproblem(nil, P, emptySet(g.N()), func([]int32) {})
		}
		runAll(seq)
		runAll(par)
		sn, sp := seq.Counts()
		pn, pp := par.Counts()
		if sn != pn || sp != pp {
			t.Fatalf("%v: parallel counters (nodes=%d pivots=%d) != sequential (nodes=%d pivots=%d)", alg, pn, pp, sn, sp)
		}
	}
}

// TestParallelStructureUpgradePreservesOrder guards the selector's
// BitSets → BitSetsParallel upgrade: pivot arithmetic must not depend on the
// adjacency representation, or upgrading a block would shift its output.
func TestParallelStructureUpgradePreservesOrder(t *testing.T) {
	g := gen.BarabasiAlbert(110, 5, 11)
	for _, alg := range []Algorithm{BKPivot, Tomita, Eppstein, XPivot} {
		lists := collectPar(t, g, Combo{Alg: alg, Struct: Lists}, Par{})
		par := collectPar(t, g, Combo{Alg: alg, Struct: BitSetsParallel}, Par{Workers: 4, MinCandidates: 2})
		assertSameOrder(t, fmt.Sprintf("lists-vs-parallel/%v", alg), par, lists)
	}
}

// TestWorkDequeStealVsPop hammers one deque with a popping owner and many
// stealing thieves; under -race this is the memory-model check, and the
// accounting check is that every task is taken exactly once.
func TestWorkDequeStealVsPop(t *testing.T) {
	const tasks = 4096
	const thieves = 7
	var d workDeque
	seen := make([]atomic.Int32, tasks)
	var taken atomic.Int64

	take := func(t *parTask) {
		if t == nil {
			return
		}
		seen[int(t.R[0])].Add(1)
		taken.Add(1)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for taken.Load() < tasks {
				take(d.steal())
			}
		}()
	}
	wg.Add(1)
	go func() { // owner: interleaves pushes with pops
		defer wg.Done()
		<-start
		for i := 0; i < tasks; i++ {
			d.push(&parTask{R: []int32{int32(i)}})
			if i%3 == 0 {
				take(d.pop())
			}
		}
		for taken.Load() < tasks {
			take(d.pop())
		}
	}()
	close(start)
	wg.Wait()
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("task %d taken %d times", i, n)
		}
	}
}

// TestParallelPanicPropagates: a panic inside any pool worker must unwind
// out of Subproblem on the calling goroutine — the cluster worker's
// poison-task recover depends on it.
func TestParallelPanicPropagates(t *testing.T) {
	g := gen.ErdosRenyi(60, 0.4, 5)
	var fired atomic.Bool
	testHookTaskStart = func() {
		if fired.CompareAndSwap(false, true) {
			panic("injected task failure")
		}
	}
	defer func() { testHookTaskStart = nil }()

	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("pool worker panic did not propagate to the caller")
		}
		if fmt.Sprint(r) != "injected task failure" {
			t.Fatalf("propagated panic = %v, want the injected value", r)
		}
	}()
	_ = EnumeratePar(g, Combo{Alg: Tomita, Struct: BitSetsParallel},
		Par{Workers: 4, MinCandidates: 2}, func([]int32) {})
}

// TestParallelSplitGateSuppresssDonation: a gate that always refuses must
// still produce the full, ordered result — workers just stop donating and
// recurse in place (only the root fan-out remains).
func TestParallelSplitGateSuppressesDonation(t *testing.T) {
	g := gen.HolmeKim(100, 5, 0.4, 13)
	want := collectPar(t, g, Combo{Alg: Tomita, Struct: BitSets}, Par{})
	got := collectPar(t, g, Combo{Alg: Tomita, Struct: BitSetsParallel},
		Par{Workers: 4, MinCandidates: 2, SplitGate: func() bool { return false }})
	assertSameOrder(t, "gated", got, want)
}

// TestParallelSubproblemSemantics: the (R, P, X) contract must hold through
// the pool exactly as it does sequentially.
func TestParallelSubproblemSemantics(t *testing.T) {
	g := gen.ErdosRenyi(80, 0.35, 9)
	n := g.N()
	runSub := func(c Combo, par Par) [][]int32 {
		r, err := NewRunnerPar(g, c, par)
		if err != nil {
			t.Fatal(err)
		}
		// Anchor on node 0: P = N(0) ∩ {v > 0}, X = ∅.
		P := emptySet(n)
		for _, u := range g.Neighbors(0) {
			P.Add(u)
		}
		var out [][]int32
		r.Subproblem([]int32{0}, P, emptySet(n), func(k []int32) {
			cp := make([]int32, len(k))
			copy(cp, k)
			out = append(out, cp)
		})
		return out
	}
	want := runSub(Combo{Alg: Tomita, Struct: BitSets}, Par{})
	got := runSub(Combo{Alg: Tomita, Struct: BitSetsParallel}, Par{Workers: 4, MinCandidates: 2})
	assertSameOrder(t, "subproblem", got, want)
}
