// Package mcealg implements the maximal clique enumeration algorithms the
// paper assembles into its per-block framework (§4): BKPivot (Bron–Kerbosch
// with a max-degree pivot [6]), Tomita (pivot maximising |N(u) ∩ P| [34]),
// Eppstein (degeneracy-ordered outer loop [17]) and XPivot (the paper's own
// variant preferring pivots from the already-visited set), each runnable over
// three adjacency representations: adjacency Matrix, adjacency Lists and
// BitSets. The 4×3 grid matches Table 1 of the paper.
//
// All algorithms support the subproblem form MCE(R, P, X) needed by
// BLOCK-ANALYSIS (Algorithm 4): enumerate the maximal cliques that contain
// every node of R, may use nodes of P, and must exclude — and not be
// extensible by — nodes of X.
package mcealg

import (
	"fmt"
	"runtime"
	"slices"

	"mce/internal/bitset"
	"mce/internal/graph"
)

// Algorithm selects one of the four MCE search strategies.
type Algorithm uint8

// The four algorithms of the paper's framework.
const (
	BKPivot Algorithm = iota
	Tomita
	Eppstein
	XPivot
)

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case BKPivot:
		return "BKPivot"
	case Tomita:
		return "Tomita"
	case Eppstein:
		return "Eppstein"
	case XPivot:
		return "XPivot"
	}
	return fmt.Sprintf("Algorithm(%d)", uint8(a))
}

// Structure selects the adjacency representation.
type Structure uint8

// The three data structures of the paper's framework, plus BitSetsParallel —
// the same word-parallel rows driven by the intra-block work-stealing
// enumerator (parallel.go) instead of the single-goroutine recursion.
const (
	Matrix Structure = iota
	Lists
	BitSets
	BitSetsParallel
)

// String returns the paper's name for the structure.
func (s Structure) String() string {
	switch s {
	case Matrix:
		return "Matrix"
	case Lists:
		return "Lists"
	case BitSets:
		return "BitSets"
	case BitSetsParallel:
		return "BitSetsParallel"
	}
	return fmt.Sprintf("Structure(%d)", uint8(s))
}

// Combo is a data-structure/algorithm pair, the unit the decision tree
// selects among (paper Figure 3, Table 1).
type Combo struct {
	Alg    Algorithm
	Struct Structure
}

// NumCombos is the size of the framework's combination grid: the paper's 4×3
// Table 1 plus the four BitSetsParallel combos of the intra-block parallel
// mode. AllCombos still returns only the paper's twelve; the extra slots
// exist so Index and the per-combo telemetry cells cover the parallel mode.
const NumCombos = 16

// Index maps the combo onto 0..NumCombos-1 — structures outer, algorithms
// inner, matching the AllCombos order — for per-combo telemetry slots.
func (c Combo) Index() int { return int(c.Struct)*4 + int(c.Alg) }

// String renders the combo in the paper's "[Structure / Algorithm]" style.
func (c Combo) String() string {
	return fmt.Sprintf("[%s/%s]", c.Struct, c.Alg)
}

// comboNames caches every combo's String so Label never allocates — the
// telemetry hot paths record a label per block.
var comboNames = func() [NumCombos]string {
	var names [NumCombos]string
	for _, s := range []Structure{Matrix, Lists, BitSets, BitSetsParallel} {
		for _, a := range []Algorithm{BKPivot, Tomita, Eppstein, XPivot} {
			c := Combo{Alg: a, Struct: s}
			names[c.Index()] = c.String()
		}
	}
	return names
}()

// Label is String without the fmt allocation, for telemetry hot paths. It
// returns "" for a combo outside the 12 valid combinations.
func (c Combo) Label() string {
	if i := c.Index(); i >= 0 && i < NumCombos {
		return comboNames[i]
	}
	return ""
}

// AllCombos returns the paper's 12 data-structure/algorithm combinations in
// a stable order (structures outer, algorithms inner). BitSetsParallel is
// excluded: it is an execution mode of the BitSets structure, not a Table 1
// contestant, so corpus races and the decision tree stay on the paper grid.
func AllCombos() []Combo {
	var cs []Combo
	for _, s := range []Structure{Matrix, Lists, BitSets} {
		for _, a := range []Algorithm{BKPivot, Tomita, Eppstein, XPivot} {
			cs = append(cs, Combo{Alg: a, Struct: s})
		}
	}
	return cs
}

// MatrixMaxNodes bounds the graphs accepted by the Matrix structure: a dense
// boolean matrix over more nodes than this would exhaust memory for no
// benefit, since Matrix only wins on small dense blocks (Table 1).
const MatrixMaxNodes = 1 << 14

// Enumerate finds every maximal clique of g using the given combo and calls
// emit once per clique with the member IDs in ascending order. The slice
// passed to emit is reused between calls; copy it to retain. A
// BitSetsParallel combo runs the work-stealing enumerator with GOMAXPROCS
// workers; use EnumeratePar to pick the width explicitly.
func Enumerate(g *graph.Graph, c Combo, emit func(clique []int32)) error {
	return EnumeratePar(g, c, Par{}, emit)
}

// EnumeratePar is Enumerate with explicit intra-enumeration parallelism (see
// Par). The cliques emitted — and their order — are identical to Enumerate's
// for every worker count.
func EnumeratePar(g *graph.Graph, c Combo, par Par, emit func(clique []int32)) error {
	n := g.N()
	if n == 0 {
		return nil
	}
	r, err := NewRunnerPar(g, c, par)
	if err != nil {
		return err
	}
	P := bitset.New(n)
	for v := int32(0); v < int32(n); v++ {
		P.Add(v)
	}
	r.Subproblem(nil, P, bitset.New(n), emit)
	return nil
}

// EnumerateSubproblem runs MCE(R, P, X) on g: it emits every clique K with
// R ⊆ K ⊆ R ∪ P, K ∩ X = ∅, such that no node of P ∪ X is adjacent to all of
// K. R must be a clique whose nodes are all adjacent to every node of P and X
// (the caller typically intersects P and X with the common neighbourhood of
// R, as Algorithm 4 does). P and X are consumed; pass clones to keep them.
func EnumerateSubproblem(g *graph.Graph, c Combo, R []int32, P, X *bitset.Set, emit func(clique []int32)) error {
	r, err := NewRunner(g, c)
	if err != nil {
		return err
	}
	r.Subproblem(R, P, X, emit)
	return nil
}

// Runner holds the adjacency representation for one graph so that many
// subproblems (e.g. one per kernel node of a block, as in Algorithm 4) can
// be solved without rebuilding it.
type Runner struct {
	combo Combo
	e     *enumerator
	par   Par
}

// NewRunner prepares the combo's adjacency structure for g. A
// BitSetsParallel combo gets GOMAXPROCS intra-enumeration workers; use
// NewRunnerPar to pick the width explicitly.
func NewRunner(g *graph.Graph, c Combo) (*Runner, error) {
	return NewRunnerPar(g, c, Par{})
}

// NewRunnerPar is NewRunner with explicit intra-enumeration parallelism.
// par.Workers ≤ 1 always runs the sequential recursion, whatever the combo.
//
//mce:coldpath per-run adjacency construction
func NewRunnerPar(g *graph.Graph, c Combo, par Par) (*Runner, error) {
	switch c.Alg {
	case BKPivot, Tomita, Eppstein, XPivot:
	default:
		return nil, fmt.Errorf("mcealg: unknown algorithm %v", c.Alg)
	}
	adj, err := newAdjacency(g, c.Struct)
	if err != nil {
		return nil, err
	}
	if par.Workers == 0 && c.Struct == BitSetsParallel {
		par.Workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{combo: c, e: &enumerator{adj: adj, n: g.N()}, par: par}, nil
}

// Subproblem runs MCE(R, P, X) with the runner's combo; see
// EnumerateSubproblem for the semantics. P and X are consumed. When the
// runner was built with Par.Workers > 1 and the candidate set is large
// enough, the subproblem fans out over the work-stealing pool; the emitted
// cliques and their order are identical to the sequential path either way.
func (r *Runner) Subproblem(R []int32, P, X *bitset.Set, emit func(clique []int32)) {
	if r.par.Workers > 1 && P.Count() >= r.par.minCandidates() {
		r.parallelSubproblem(R, P, X, emit)
		return
	}
	r.e.emit = emit
	base := make([]int32, len(R), len(R)+16)
	copy(base, R)
	if r.combo.Alg == Eppstein {
		r.e.eppstein(base, P, X)
	} else {
		r.e.bk(r.combo.Alg, base, P, X)
	}
	r.e.emit = nil
}

// Counts reports how many MCE recursion-tree nodes were expanded and how
// many pivot selections were made across every subproblem run on this
// runner so far — the per-block work measures the telemetry layer
// aggregates (the load-imbalance signal of the shared-memory parallel MCE
// literature).
func (r *Runner) Counts() (recursionNodes, pivotSelections int64) {
	return r.e.nodes, r.e.pivots
}

// Collect runs Enumerate and gathers the cliques into a slice of ascending
// node-ID slices.
func Collect(g *graph.Graph, c Combo) ([][]int32, error) {
	var out [][]int32
	err := Enumerate(g, c, func(k []int32) {
		cp := make([]int32, len(k))
		copy(cp, k)
		out = append(out, cp)
	})
	return out, err
}

// Count runs Enumerate and returns only the number of maximal cliques.
func Count(g *graph.Graph, c Combo) (int, error) {
	n := 0
	err := Enumerate(g, c, func([]int32) { n++ })
	return n, err
}

// enumerator carries the per-run state: the adjacency structure, a free list
// of scratch bit sets (recursion allocates two per level), and the emit sink.
// nodes and pivots count recursion-tree expansions and pivot selections;
// they are plain fields updated single-threaded, so the recursion pays one
// register increment and telemetry merges them per block after the fact.
type enumerator struct {
	adj    adjacency
	n      int
	emit   func([]int32)
	free   []*bitset.Set
	buf    []int32 // reusable emit buffer
	nodes  int64
	pivots int64
}

func (e *enumerator) get() *bitset.Set {
	if len(e.free) == 0 {
		return bitset.New(e.n)
	}
	s := e.free[len(e.free)-1]
	e.free = e.free[:len(e.free)-1]
	return s
}

func (e *enumerator) put(s *bitset.Set) {
	e.free = append(e.free, s)
}

// report emits a sorted copy of R. R itself is the shared recursion stack
// and must not be reordered: ancestors still rely on their prefix.
func (e *enumerator) report(R []int32) {
	e.buf = append(e.buf[:0], R...)
	slices.Sort(e.buf) // not sort.Slice: that boxes the slice per emitted clique
	e.emit(e.buf)
}

// bk is the pivoted Bron–Kerbosch recursion shared by BKPivot, Tomita and
// XPivot; the three differ only in pivot choice.
//
//mce:hotpath sequential MCE recursion
func (e *enumerator) bk(alg Algorithm, R []int32, P, X *bitset.Set) {
	e.nodes++
	if P.Empty() {
		if X.Empty() {
			e.report(R)
		}
		return
	}
	u := e.pivot(alg, P, X)
	cand := e.get()
	e.adj.subtractNeighbors(cand, u, P) // cand = P \ N(u)
	for v := cand.Next(0); v >= 0; v = cand.Next(v + 1) {
		newP := e.get()
		newX := e.get()
		e.adj.intersectNeighbors(newP, v, P)
		e.adj.intersectNeighbors(newX, v, X)
		e.bk(alg, append(R, v), newP, newX)
		e.put(newP)
		e.put(newX)
		P.Remove(v)
		X.Add(v)
	}
	e.put(cand)
}

// pivot chooses the branching pivot according to the algorithm:
//
//   - Tomita: the node of P ∪ X maximising |N(u) ∩ P| [34];
//   - BKPivot: the node of P with the highest degree [6];
//   - XPivot: like Tomita but restricted to the visited set X when X is
//     non-empty (the paper's variant), falling back to P otherwise.
func (e *enumerator) pivot(alg Algorithm, P, X *bitset.Set) int32 {
	e.pivots++
	switch alg {
	case BKPivot:
		best, bestDeg := int32(-1), -1
		for v := P.Next(0); v >= 0; v = P.Next(v + 1) {
			if d := e.adj.degree(v); d > bestDeg {
				best, bestDeg = v, d
			}
		}
		return best
	case XPivot:
		best, bestCnt := int32(-1), -1
		for v := X.Next(0); v >= 0; v = X.Next(v + 1) {
			if c := e.adj.intersectCount(v, P); c > bestCnt {
				best, bestCnt = v, c
			}
		}
		if best >= 0 {
			return best
		}
		fallthrough
	case Tomita:
		best, bestCnt := int32(-1), -1
		for v := P.Next(0); v >= 0; v = P.Next(v + 1) {
			if c := e.adj.intersectCount(v, P); c > bestCnt {
				best, bestCnt = v, c
			}
		}
		if alg == Tomita {
			for v := X.Next(0); v >= 0; v = X.Next(v + 1) {
				if c := e.adj.intersectCount(v, P); c > bestCnt {
					best, bestCnt = v, c
				}
			}
		}
		return best
	}
	return P.Next(0)
}

// eppstein runs the Eppstein–Strash outer loop: process the nodes of P in a
// degeneracy order of the subgraph induced by P, so each top-level call sees
// a candidate set no larger than the degeneracy; recursion uses the Tomita
// pivot, as in [17].
//
//mce:hotpath degeneracy-ordered MCE outer loop
func (e *enumerator) eppstein(R []int32, P, X *bitset.Set) {
	e.nodes++
	if P.Empty() {
		if X.Empty() {
			e.report(R)
		}
		return
	}
	order := e.degeneracyOrder(P)
	for _, v := range order {
		newP := e.get()
		newX := e.get()
		e.adj.intersectNeighbors(newP, v, P)
		e.adj.intersectNeighbors(newX, v, X)
		e.bk(Tomita, append(R, v), newP, newX)
		e.put(newP)
		e.put(newX)
		P.Remove(v)
		X.Add(v)
	}
}

// degeneracyOrder peels minimum-degree nodes of the subgraph induced by the
// members of P, using degrees restricted to P.
func (e *enumerator) degeneracyOrder(P *bitset.Set) []int32 {
	members := P.Slice()
	deg := make(map[int32]int, len(members))
	for _, v := range members {
		deg[v] = e.adj.intersectCount(v, P)
	}
	// Bucket peeling over the restricted degrees.
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	buckets := make([][]int32, maxDeg+1)
	for _, v := range members {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	alive := P.Clone()
	order := make([]int32, 0, len(members))
	scratch := e.get()
	defer e.put(scratch)
	for cur := 0; len(order) < len(members); {
		if cur > maxDeg {
			break
		}
		if len(buckets[cur]) == 0 {
			cur++
			continue
		}
		v := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if !alive.Has(v) || deg[v] != cur {
			continue // stale bucket entry
		}
		order = append(order, v)
		alive.Remove(v)
		e.adj.intersectNeighbors(scratch, v, alive)
		for u := scratch.Next(0); u >= 0; u = scratch.Next(u + 1) {
			deg[u]--
			buckets[deg[u]] = append(buckets[deg[u]], u)
			if deg[u] < cur {
				cur = deg[u]
			}
		}
	}
	return order
}
