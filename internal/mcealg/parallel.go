// Intra-block parallel Bron–Kerbosch: a work-stealing pool over (R, P, X)
// subproblems, in the shape of the shared-memory parallel MCE literature
// (Das et al., arXiv 1807.09417): per-vertex fan-out at the subproblem root
// seeded from the pivot-ordered candidate set, plus subtree-splitting work
// donation when a worker runs dry mid-run.
//
// Determinism. The Bron–Kerbosch recursion tree is a pure function of
// (adjacency, R, P, X): the pivot choice scans P (and X) in ascending bit
// order and every candidate iteration is over a bit set, so the tree — and
// therefore the set of leaves — is identical no matter how execution is
// divided among workers. Splitting a node materialises exactly the child
// subproblems the sequential loop would have recursed into, with the same
// P/X mutation order, so parallelism only moves task boundaries, never the
// tree. Each emitted clique is keyed by the child-index path from the
// subproblem root to its leaf; sorting the keys lexicographically is
// sorting leaves into depth-first order, which is precisely the sequential
// emission order. The parallel mode therefore emits bit-identical cliques
// in bit-identical order to the sequential enumerator, which keeps
// checkpoint segment digests and the Lemma 1 filter's input unchanged.
package mcealg

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"mce/internal/bitset"
)

// Par configures intra-enumeration parallelism for a Runner.
type Par struct {
	// Workers is the goroutine count of the work-stealing pool. 0 means
	// "auto": GOMAXPROCS for a BitSetsParallel combo, sequential otherwise.
	// 1 forces the sequential recursion regardless of combo.
	Workers int
	// MinCandidates is the smallest |P| worth fanning out; subproblems
	// below it run sequentially on the calling goroutine, skipping the
	// pool-spawn cost. 0 means the default of 16.
	MinCandidates int
	// SplitGate, when non-nil, is consulted before a mid-run subtree
	// donation: returning false suppresses the split (the worker keeps
	// recursing sequentially, allocating nothing new). The executors wire
	// the resguard memory budget here, so deque growth counts against the
	// run's heap budget. Root fan-out is not gated — it is the baseline
	// decomposition, bounded by |P| snapshots.
	SplitGate func() bool
}

// defaultMinCandidates balances pool-spawn cost (~a few µs) against the
// smallest subproblems worth sharing; kernels with tiny neighbourhoods stay
// on the calling goroutine.
const defaultMinCandidates = 16

func (p Par) minCandidates() int {
	if p.MinCandidates > 0 {
		return p.MinCandidates
	}
	return defaultMinCandidates
}

// maxSplitDepth stops donation below this recursion depth: tasks that deep
// are too small to be worth their snapshot cost, and the path keys stay
// short.
const maxSplitDepth = 64

// parTask is one stealable MCE subproblem. path is the child-index route
// from the subproblem root to this task's node — the determinism key. The
// task owns R, P and X outright.
type parTask struct {
	path []uint32
	alg  Algorithm
	R    []int32
	P, X *bitset.Set
}

// cliqueRun is a maximal contiguous stretch of cliques one worker emitted
// in depth-first order. Between two splits a worker's emission IS the
// sequential DFS order, so only run boundaries — task starts and subtree
// donations — need a sort key: the leaf path of the run's first clique.
// Runs are disjoint DFS intervals, so ordering them by first-leaf key and
// concatenating reproduces the global sequential order at a cost of one key
// per run instead of one per clique.
type cliqueRun struct {
	key     []uint32
	cliques [][]int32
}

// workDeque is one worker's double-ended task queue: the owner pushes and
// pops at the tail (depth-first, cache-warm), thieves steal from the head
// (the largest subtrees, minimising steal traffic). A plain mutex per deque
// is deliberate: steals are rare, the critical sections are a few pointer
// moves, and the -race matrix must hold at every GOMAXPROCS.
type workDeque struct {
	mu  sync.Mutex
	buf []*parTask
}

func (d *workDeque) push(t *parTask) {
	d.mu.Lock()
	d.buf = append(d.buf, t)
	d.mu.Unlock()
}

// pop removes the newest task (owner side).
func (d *workDeque) pop() *parTask {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.buf) == 0 {
		return nil
	}
	t := d.buf[len(d.buf)-1]
	d.buf[len(d.buf)-1] = nil
	d.buf = d.buf[:len(d.buf)-1]
	return t
}

// steal removes the oldest task (thief side).
func (d *workDeque) steal() *parTask {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.buf) == 0 {
		return nil
	}
	t := d.buf[0]
	copy(d.buf, d.buf[1:])
	d.buf[len(d.buf)-1] = nil
	d.buf = d.buf[:len(d.buf)-1]
	return t
}

// parPool coordinates one subproblem's workers. Lifetime is a single
// Runner.Subproblem call: spawn, drain, merge, done.
type parPool struct {
	alg  Algorithm
	adj  adjacency
	n    int
	gate func() bool

	deques  []workDeque
	workers []*parWorker

	// pending counts tasks created but not finished; the run is over when
	// it reaches zero (children are counted before their parent finishes,
	// so it can never dip to zero early).
	pending atomic.Int64
	// hungry counts workers that found every deque empty and are about to
	// wait — the donation signal the split heuristic reads.
	hungry atomic.Int64

	mu       sync.Mutex
	cond     *sync.Cond
	closed   bool // no more work will appear: drained or poisoned
	panicVal any  // first worker panic, re-raised on the caller
	wg       sync.WaitGroup
}

// parWorker is one goroutine of the pool, with its own enumerator (scratch
// free-list and counters; the adjacency is shared read-only), its own output
// buffer and its own DFS path stack — nothing here is touched by another
// goroutine while the pool runs.
type parWorker struct {
	id   int
	pool *parPool
	e    *enumerator
	path []uint32
	runs []cliqueRun
	// newRun marks the next emitted clique as a run boundary: set at task
	// start and after every donation, the two places the worker's emission
	// stops being DFS-contiguous.
	newRun bool
}

// testHookTaskStart, when non-nil, runs at the start of every task — a test
// seam for panic-propagation coverage. Always nil in production.
var testHookTaskStart func()

// parallelSubproblem fans MCE(R, P, X) out over a fresh pool and emits the
// merged cliques in sequential order. P and X are consumed, matching the
// sequential contract.
func (r *Runner) parallelSubproblem(R []int32, P, X *bitset.Set, emit func([]int32)) {
	p := &parPool{
		alg:  r.combo.Alg,
		adj:  r.e.adj,
		n:    r.e.n,
		gate: r.par.SplitGate,
	}
	p.cond = sync.NewCond(&p.mu)
	p.deques = make([]workDeque, r.par.Workers)
	p.workers = make([]*parWorker, r.par.Workers)
	for i := range p.workers {
		p.workers[i] = &parWorker{id: i, pool: p, e: &enumerator{adj: p.adj, n: p.n}}
	}

	base := make([]int32, len(R))
	copy(base, R)
	root := &parTask{alg: r.combo.Alg, R: base, P: P, X: X}
	p.pending.Store(1)
	p.deques[0].push(root)

	for _, w := range p.workers {
		p.wg.Add(1)
		go p.runWorker(w)
	}
	p.wg.Wait()
	if p.panicVal != nil {
		panic(p.panicVal)
	}

	// Merge: runs are disjoint DFS intervals, so sorting them by first-leaf
	// path and concatenating reproduces the sequential emission order — one
	// key comparison per run, not per clique. Counters fold into the
	// runner's enumerator here, single-threaded — no atomics anywhere in
	// the recursion.
	total := 0
	for _, w := range p.workers {
		total += len(w.runs)
		r.e.nodes += w.e.nodes
		r.e.pivots += w.e.pivots
	}
	all := make([]cliqueRun, 0, total)
	for _, w := range p.workers {
		all = append(all, w.runs...)
	}
	slices.SortFunc(all, func(a, b cliqueRun) int { return slices.Compare(a.key, b.key) })
	for i := range all {
		for _, c := range all[i].cliques {
			emit(c)
		}
	}
}

// runWorker is the pool goroutine body: pop own work, steal otherwise, wait
// when the whole pool is dry. A panicking task poisons the pool — every
// worker unwinds and the caller re-panics, preserving the cluster worker's
// per-task panic isolation.
func (p *parPool) runWorker(w *parWorker) {
	defer p.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			p.poison(r)
		}
	}()
	for {
		t := p.find(w.id)
		if t == nil {
			return
		}
		w.runTask(t)
		p.finishTask()
	}
}

// find returns the next task for worker id, blocking until one appears or
// the pool closes. The double sweep around the condition wait closes the
// missed-wakeup window: donors broadcast while holding p.mu, so a push that
// raced the first (unlocked) sweep is caught by the second (locked) one.
func (p *parPool) find(id int) *parTask {
	for {
		if t := p.sweep(id); t != nil {
			return t
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil
		}
		p.hungry.Add(1)
		if t := p.sweep(id); t != nil {
			p.hungry.Add(-1)
			p.mu.Unlock()
			return t
		}
		p.cond.Wait()
		p.hungry.Add(-1)
		p.mu.Unlock()
	}
}

// sweep tries the worker's own deque (newest first), then every peer
// (oldest first).
func (p *parPool) sweep(id int) *parTask {
	if t := p.deques[id].pop(); t != nil {
		return t
	}
	for k := 1; k < len(p.deques); k++ {
		if t := p.deques[(id+k)%len(p.deques)].steal(); t != nil {
			return t
		}
	}
	return nil
}

// finishTask retires one task; the last one out closes the pool.
func (p *parPool) finishTask() {
	if p.pending.Add(-1) == 0 {
		p.mu.Lock()
		p.closed = true
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// poison records a worker panic and releases everyone; leftover deque
// entries are abandoned — the caller re-raises, nothing is emitted.
func (p *parPool) poison(v any) {
	p.mu.Lock()
	if p.panicVal == nil {
		p.panicVal = v
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// runTask executes one subproblem. Eppstein appears only on the root task
// (its children are Tomita-pivoted, as in the sequential recursion).
//
//mce:hotpath work-stealing task body
func (w *parWorker) runTask(t *parTask) {
	if testHookTaskStart != nil {
		testHookTaskStart()
	}
	w.path = append(w.path[:0], t.path...)
	w.newRun = true
	if t.alg == Eppstein {
		w.eppsteinRoot(t)
		return
	}
	w.bk(t.alg, t.R, t.P, t.X)
}

// bk mirrors enumerator.bk exactly, with two additions: the DFS path stack
// (the determinism key) and the split check that can turn a node's children
// into stealable tasks instead of recursing.
func (w *parWorker) bk(alg Algorithm, R []int32, P, X *bitset.Set) {
	e := w.e
	e.nodes++
	if P.Empty() {
		if X.Empty() {
			w.report(R)
		}
		return
	}
	u := e.pivot(alg, P, X)
	cand := e.get()
	e.adj.subtractNeighbors(cand, u, P) // cand = P \ N(u)
	if w.shouldSplit(cand) {
		w.split(alg, R, P, X, cand)
		e.put(cand)
		return
	}
	idx := uint32(0)
	for v := cand.Next(0); v >= 0; v = cand.Next(v + 1) {
		newP := e.get()
		newX := e.get()
		e.adj.intersectNeighbors(newP, v, P)
		e.adj.intersectNeighbors(newX, v, X)
		w.path = append(w.path, idx)
		w.bk(alg, append(R, v), newP, newX)
		w.path = w.path[:len(w.path)-1]
		e.put(newP)
		e.put(newX)
		P.Remove(v)
		X.Add(v)
		idx++
	}
	e.put(cand)
}

// eppsteinRoot is the degeneracy-ordered top level of the Eppstein runs,
// fanning out per vertex when it can (children recurse with the Tomita
// pivot, as in the sequential path).
func (w *parWorker) eppsteinRoot(t *parTask) {
	e := w.e
	e.nodes++
	if t.P.Empty() {
		if t.X.Empty() {
			w.report(t.R)
		}
		return
	}
	order := e.degeneracyOrder(t.P)
	if len(order) >= 2 {
		w.splitOrdered(Tomita, t.R, t.P, t.X, order)
		return
	}
	idx := uint32(0)
	for _, v := range order {
		newP := e.get()
		newX := e.get()
		e.adj.intersectNeighbors(newP, v, t.P)
		e.adj.intersectNeighbors(newX, v, t.X)
		w.path = append(w.path, idx)
		w.bk(Tomita, append(t.R, v), newP, newX)
		w.path = w.path[:len(w.path)-1]
		e.put(newP)
		e.put(newX)
		t.P.Remove(v)
		t.X.Add(v)
		idx++
	}
}

// shouldSplit decides whether this node's children become tasks. The root
// always fans out (the per-vertex top-level decomposition); deeper nodes
// donate only when some worker is hungry, the subtree is shallow enough to
// be worth sharing, and the memory gate allows more buffered work.
func (w *parWorker) shouldSplit(cand *bitset.Set) bool {
	p := w.pool
	if len(w.path) == 0 {
		return cand.Count() >= 2
	}
	if p.hungry.Load() == 0 || len(w.path) >= maxSplitDepth {
		return false
	}
	if p.gate != nil && !p.gate() {
		return false
	}
	return cand.Count() >= 2
}

// split snapshots every child of the current node as an independent task —
// same iteration, same P/X mutations as the sequential loop, so the
// recursion tree is unchanged — and pushes them in reverse onto the
// worker's own deque (pop order = depth-first order; thieves take from the
// other end, grabbing the widest subtrees).
func (w *parWorker) split(alg Algorithm, R []int32, P, X *bitset.Set, cand *bitset.Set) {
	w.splitOrdered(alg, R, P, X, cand.Slice())
}

func (w *parWorker) splitOrdered(alg Algorithm, R []int32, P, X *bitset.Set, order []int32) {
	p := w.pool
	kids := make([]*parTask, 0, len(order))
	for i, v := range order {
		newP := bitset.New(p.n)
		newX := bitset.New(p.n)
		w.e.adj.intersectNeighbors(newP, v, P)
		w.e.adj.intersectNeighbors(newX, v, X)
		Rc := make([]int32, len(R)+1)
		copy(Rc, R)
		Rc[len(R)] = v
		pc := make([]uint32, len(w.path)+1)
		copy(pc, w.path)
		pc[len(w.path)] = uint32(i)
		kids = append(kids, &parTask{path: pc, alg: alg, R: Rc, P: newP, X: newX})
		P.Remove(v)
		X.Add(v)
	}
	p.pending.Add(int64(len(kids)))
	d := &p.deques[w.id]
	for i := len(kids) - 1; i >= 0; i-- {
		d.push(kids[i])
	}
	// The donated subtrees sit between this worker's past and future
	// emissions in DFS order, so the current run ends here.
	w.newRun = true
	if p.hungry.Load() > 0 {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// report records a sorted copy of R in the worker's current run, opening a
// new run keyed by this leaf's path when the last one was closed by a task
// switch or a donation.
func (w *parWorker) report(R []int32) {
	c := make([]int32, len(R))
	copy(c, R)
	slices.Sort(c) // not sort.Slice: that boxes the slice per emitted clique
	if w.newRun {
		key := make([]uint32, len(w.path))
		copy(key, w.path)
		w.runs = append(w.runs, cliqueRun{key: key})
		w.newRun = false
	}
	run := &w.runs[len(w.runs)-1]
	run.cliques = append(run.cliques, c)
}

// sanity: the grid constant and the structure enum must agree, or Index
// would alias telemetry cells.
var _ = func() struct{} {
	if int(BitSetsParallel)*4+int(XPivot) != NumCombos-1 {
		panic(fmt.Sprintf("mcealg: NumCombos %d does not cover the structure grid", NumCombos))
	}
	return struct{}{}
}()
