package mcealg

import (
	"sort"

	"mce/internal/graph"
)

// ReferenceEnumerate is a deliberately simple, pivot-free Bron–Kerbosch used
// as an independent oracle in tests and completeness experiments. It shares
// no code with the production recursion: sets are plain sorted slices and
// intersections are computed by merge, so a bug in the bitset machinery or
// in pivoting cannot hide in both implementations.
func ReferenceEnumerate(g *graph.Graph, emit func(clique []int32)) {
	n := g.N()
	if n == 0 {
		return
	}
	P := make([]int32, n)
	for v := int32(0); v < int32(n); v++ {
		P[v] = v
	}
	refBK(g, nil, P, nil, emit)
}

// ReferenceCollect gathers ReferenceEnumerate's output.
func ReferenceCollect(g *graph.Graph) [][]int32 {
	var out [][]int32
	ReferenceEnumerate(g, func(k []int32) {
		cp := make([]int32, len(k))
		copy(cp, k)
		out = append(out, cp)
	})
	return out
}

func refBK(g *graph.Graph, R, P, X []int32, emit func([]int32)) {
	if len(P) == 0 {
		if len(X) == 0 {
			k := make([]int32, len(R))
			copy(k, R)
			sort.Slice(k, func(i, j int) bool { return k[i] < k[j] })
			emit(k)
		}
		return
	}
	// Iterate over a snapshot of P; P and X evolve as vertices move.
	cand := make([]int32, len(P))
	copy(cand, P)
	for _, v := range cand {
		nv := g.Neighbors(v)
		refBK(g, append(R, v), intersectSorted(P, nv), intersectSorted(X, nv), emit)
		P = removeSorted(P, v)
		X = insertSorted(X, v)
	}
}

// intersectSorted returns a ∩ b for ascending slices.
func intersectSorted(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func removeSorted(a []int32, v int32) []int32 {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	if i == len(a) || a[i] != v {
		return a
	}
	out := make([]int32, 0, len(a)-1)
	out = append(out, a[:i]...)
	return append(out, a[i+1:]...)
}

func insertSorted(a []int32, v int32) []int32 {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	out := make([]int32, 0, len(a)+1)
	out = append(out, a[:i]...)
	out = append(out, v)
	return append(out, a[i:]...)
}
