package diskgraph

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"mce/internal/gen"
	"mce/internal/graph"
)

func roundTrip(t *testing.T, g *graph.Graph) *Graph {
	t.Helper()
	p := filepath.Join(t.TempDir(), "g.mceg")
	if err := Write(p, g); err != nil {
		t.Fatal(err)
	}
	dg, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dg.Close() })
	return dg
}

func TestFormatRoundTrip(t *testing.T) {
	g := gen.ErdosRenyi(200, 0.1, 3)
	dg := roundTrip(t, g)
	if dg.N() != g.N() || dg.M() != g.M() {
		t.Fatalf("n=%d m=%d, want n=%d m=%d", dg.N(), dg.M(), g.N(), g.M())
	}
	var buf []int32
	var err error
	for v := int32(0); v < int32(g.N()); v++ {
		buf, err = dg.ReadNeighbors(v, buf)
		if err != nil {
			t.Fatal(err)
		}
		want := g.Neighbors(v)
		if len(buf) != len(want) {
			t.Fatalf("deg(%d) = %d, want %d", v, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("neighbors(%d)[%d] = %d, want %d", v, i, buf[i], want[i])
			}
		}
	}
}

func TestEmptyAndIsolated(t *testing.T) {
	dg := roundTrip(t, graph.Empty(5))
	if dg.N() != 5 || dg.M() != 0 {
		t.Fatalf("empty graph: n=%d m=%d", dg.N(), dg.M())
	}
	nbrs, err := dg.ReadNeighbors(3, nil)
	if err != nil || len(nbrs) != 0 {
		t.Fatalf("isolated node neighbours = %v, %v", nbrs, err)
	}
	degs := dg.Degrees()
	for v, d := range degs {
		if d != 0 {
			t.Fatalf("degree(%d) = %d", v, d)
		}
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("not a graph at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	short := filepath.Join(dir, "short")
	if err := os.WriteFile(short, []byte("MC"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(short); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestLoadInducedMatchesGraph(t *testing.T) {
	g := gen.HolmeKim(150, 4, 0.6, 9)
	dg := roundTrip(t, g)
	nodes := []int32{3, 17, 42, 99, 3} // duplicate collapses
	sub, orig, err := dg.LoadInduced(nodes)
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 4 || len(orig) != 4 {
		t.Fatalf("induced n=%d orig=%v", sub.N(), orig)
	}
	for a := int32(0); a < int32(sub.N()); a++ {
		for b := a + 1; b < int32(sub.N()); b++ {
			if sub.HasEdge(a, b) != g.HasEdge(orig[a], orig[b]) {
				t.Fatalf("induced edge %d-%d mismatch", orig[a], orig[b])
			}
		}
	}
}

func TestLoadClosedNeighborhood(t *testing.T) {
	g := gen.HolmeKim(150, 4, 0.6, 11)
	dg := roundTrip(t, g)
	kernels := []int32{5, 6}
	sub, orig, kernelLocal, err := dg.LoadClosedNeighborhood(kernels)
	if err != nil {
		t.Fatal(err)
	}
	if len(kernelLocal) != 2 {
		t.Fatalf("kernelLocal = %v", kernelLocal)
	}
	// Every kernel neighbour is present, and the induced edges are exact.
	have := map[int32]bool{}
	for _, v := range orig {
		have[v] = true
	}
	for _, k := range kernels {
		if !have[k] {
			t.Fatalf("kernel %d missing from block", k)
		}
		for _, u := range g.Neighbors(k) {
			if !have[u] {
				t.Fatalf("kernel %d neighbour %d missing", k, u)
			}
		}
	}
	for a := int32(0); a < int32(sub.N()); a++ {
		for b := a + 1; b < int32(sub.N()); b++ {
			if sub.HasEdge(a, b) != g.HasEdge(orig[a], orig[b]) {
				t.Fatalf("block edge %d-%d mismatch", orig[a], orig[b])
			}
		}
	}
}

// Property: the disk format preserves random graphs exactly.
func TestQuickFormatFidelity(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(int(seed%50)+5, 0.25, seed)
		dir, err := os.MkdirTemp("", "mcedg")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		p := filepath.Join(dir, "g.mceg")
		if err := Write(p, g); err != nil {
			return false
		}
		dg, err := Open(p)
		if err != nil {
			return false
		}
		defer dg.Close()
		if dg.N() != g.N() || dg.M() != g.M() {
			return false
		}
		var buf []int32
		for v := int32(0); v < int32(g.N()); v++ {
			buf, err = dg.ReadNeighbors(v, buf)
			if err != nil {
				return false
			}
			want := g.Neighbors(v)
			if len(buf) != len(want) {
				return false
			}
			for i := range want {
				if buf[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
