// Package diskgraph stores a graph's adjacency on disk and serves
// neighbourhood reads on demand, keeping only the degree/offset arrays in
// memory (O(N), not O(N+M)). It is the substrate for out-of-core maximal
// clique enumeration (package extmce): the paper's premise is that "the
// size of the input network often exceeds the available memory" (§7), and
// the external-memory line of work it builds on (ExtMCE [8], EmMCE [10])
// processes exactly such graphs block by block.
//
// On-disk layout (little endian):
//
//	magic "MCEG"            4 bytes
//	n                       int64
//	offsets[n+1]            int64 each (byte offsets into the list section)
//	neighbour lists         int32 each, node 0 first, each list ascending
package diskgraph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"sync/atomic"

	"mce/internal/graph"
)

var magic = [4]byte{'M', 'C', 'E', 'G'}

// Write serialises g to path in the disk-graph format.
func Write(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("diskgraph: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)

	if _, err := w.Write(magic[:]); err != nil {
		return fmt.Errorf("diskgraph: %w", err)
	}
	n := int64(g.N())
	if err := binary.Write(w, binary.LittleEndian, n); err != nil {
		return fmt.Errorf("diskgraph: %w", err)
	}
	// Offsets are byte positions relative to the start of the list
	// section.
	pos := int64(0)
	for v := int64(0); v <= n; v++ {
		if err := binary.Write(w, binary.LittleEndian, pos); err != nil {
			return fmt.Errorf("diskgraph: %w", err)
		}
		if v < n {
			pos += 4 * int64(g.Degree(int32(v)))
		}
	}
	for v := int32(0); v < int32(n); v++ {
		for _, u := range g.Neighbors(v) {
			if err := binary.Write(w, binary.LittleEndian, u); err != nil {
				return fmt.Errorf("diskgraph: %w", err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("diskgraph: %w", err)
	}
	return f.Close()
}

// Graph is a read-only disk-resident graph. It is safe for concurrent
// readers. Close it when done.
type Graph struct {
	f        *os.File
	n        int
	offsets  []int64 // byte offsets into the list section, len n+1
	listBase int64   // file offset where the list section starts
	// reads counts ReadNeighbors calls, for I/O accounting in tests and
	// experiments.
	reads int64
}

// Open maps a disk graph for reading; the offset table is loaded eagerly
// (O(N) memory), neighbour lists stay on disk.
func Open(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("diskgraph: %w", err)
	}
	r := bufio.NewReader(f)
	var got [4]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskgraph: header: %w", err)
	}
	if got != magic {
		f.Close()
		return nil, errors.New("diskgraph: not a disk graph (bad magic)")
	}
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskgraph: header: %w", err)
	}
	if n < 0 || n > 1<<31 {
		f.Close()
		return nil, fmt.Errorf("diskgraph: implausible node count %d", n)
	}
	offsets := make([]int64, n+1)
	if err := binary.Read(r, binary.LittleEndian, offsets); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskgraph: offsets: %w", err)
	}
	return &Graph{
		f:        f,
		n:        int(n),
		offsets:  offsets,
		listBase: int64(4 + 8 + 8*(n+1)),
	}, nil
}

// Close releases the underlying file.
func (g *Graph) Close() error { return g.f.Close() }

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int {
	return int(g.offsets[g.n] / 8) // bytes / 4 per endpoint / 2 per edge
}

// Degree returns deg(v) without touching the disk.
func (g *Graph) Degree(v int32) int {
	return int((g.offsets[v+1] - g.offsets[v]) / 4)
}

// Degrees returns the whole degree sequence without disk reads.
func (g *Graph) Degrees() []int {
	out := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		out[v] = g.Degree(int32(v))
	}
	return out
}

// ReadNeighbors fetches v's adjacency list from disk into buf (reused when
// large enough) and returns it, ascending.
func (g *Graph) ReadNeighbors(v int32, buf []int32) ([]int32, error) {
	deg := g.Degree(v)
	if cap(buf) < deg {
		buf = make([]int32, deg)
	}
	buf = buf[:deg]
	if deg == 0 {
		return buf, nil
	}
	raw := make([]byte, 4*deg)
	if _, err := g.f.ReadAt(raw, g.listBase+g.offsets[v]); err != nil {
		return nil, fmt.Errorf("diskgraph: reading node %d: %w", v, err)
	}
	for i := range buf {
		buf[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	atomic.AddInt64(&g.reads, 1)
	return buf, nil
}

// Reads reports how many neighbourhood fetches have hit the disk.
func (g *Graph) Reads() int64 { return atomic.LoadInt64(&g.reads) }

// LoadClosedNeighborhood materialises the subgraph induced by the kernels
// and all their neighbours as an in-memory graph (plus the local→global
// mapping and the local IDs of the kernels), reading only the adjacency
// lists of the involved nodes. This is the unit of I/O of the out-of-core
// pipeline: one block's worth of network.
func (g *Graph) LoadClosedNeighborhood(kernels []int32) (*graph.Graph, []int32, []int32, error) {
	inSet := map[int32]int32{}
	var orig []int32
	add := func(v int32) {
		if _, ok := inSet[v]; !ok {
			inSet[v] = int32(len(orig))
			orig = append(orig, v)
		}
	}
	var buf []int32
	var err error
	adj := make(map[int32][]int32, len(kernels))
	for _, k := range kernels {
		add(k)
		buf, err = g.ReadNeighbors(k, buf)
		if err != nil {
			return nil, nil, nil, err
		}
		cp := make([]int32, len(buf))
		copy(cp, buf)
		adj[k] = cp
		for _, u := range cp {
			add(u)
		}
	}
	// Edges among the selected nodes: kernel adjacencies are known; the
	// border–border edges require reading the border nodes' lists too
	// (they are needed for induced completeness, exactly as the in-memory
	// BLOCKS does).
	b := graph.NewBuilder(len(orig))
	for _, v := range orig {
		list, ok := adj[v]
		if !ok {
			buf, err = g.ReadNeighbors(v, buf)
			if err != nil {
				return nil, nil, nil, err
			}
			list = buf
		}
		lv := inSet[v]
		for _, u := range list {
			if lu, ok := inSet[u]; ok && lv < lu {
				b.AddEdge(lv, lu)
			}
		}
	}
	kernelLocal := make([]int32, len(kernels))
	for i, k := range kernels {
		kernelLocal[i] = inSet[k]
	}
	return b.Build(), orig, kernelLocal, nil
}

// LoadInduced materialises the subgraph induced by nodes (used for the hub
// recursion, whose node set is small).
func (g *Graph) LoadInduced(nodes []int32) (*graph.Graph, []int32, error) {
	idx := make(map[int32]int32, len(nodes))
	orig := make([]int32, 0, len(nodes))
	for _, v := range nodes {
		if _, dup := idx[v]; dup {
			continue
		}
		idx[v] = int32(len(orig))
		orig = append(orig, v)
	}
	b := graph.NewBuilder(len(orig))
	var buf []int32
	var err error
	for _, v := range orig {
		buf, err = g.ReadNeighbors(v, buf)
		if err != nil {
			return nil, nil, err
		}
		lv := idx[v]
		for _, u := range buf {
			if lu, ok := idx[u]; ok && lv < lu {
				b.AddEdge(lv, lu)
			}
		}
	}
	return b.Build(), orig, nil
}
