// Package cliqstore_test holds the tests that drive the enumeration engine
// into the store: core now imports cliqstore (checkpoint segments), so these
// live outside the package to keep the test import graph acyclic.
package cliqstore_test

import (
	"bytes"
	"testing"

	"mce/internal/cliqstore"
	"mce/internal/core"
	"mce/internal/gen"
)

func TestStreamEngineToStore(t *testing.T) {
	// End to end: stream an enumeration to disk format and read it back.
	g := gen.HolmeKim(400, 5, 0.7, 3)
	var buf bytes.Buffer
	w, err := cliqstore.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := core.Stream(g, core.Options{}, func(c []int32, _ int) {
		if err := w.Write(c); err != nil {
			t.Fatal(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	r, err := cliqstore.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	read := 0
	if err := r.ForEach(func(c []int32) error {
		read++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if read != stats.TotalCliques {
		t.Fatalf("store holds %d cliques, engine emitted %d", read, stats.TotalCliques)
	}
	// The encoding should beat a naive int32 dump.
	naive := 0
	res, err := core.FindMaxCliques(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cliques {
		naive += 4*len(c) + 4
	}
	if buf.Len() >= naive {
		t.Fatalf("store %d bytes not smaller than naive %d", buf.Len(), naive)
	}
}
