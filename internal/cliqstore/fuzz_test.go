package cliqstore

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the store reader: the invariant is a
// clean error or valid cliques — never a panic or unbounded allocation.
func FuzzReader(f *testing.F) {
	// Seed with a valid store and some corruptions.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write([]int32{1, 2, 3})
	w.Write([]int32{100000})
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("MCE1"))
	f.Add([]byte("MCE1\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 10000; i++ {
			c, err := r.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return
			}
			for j := 1; j < len(c); j++ {
				if c[j] <= c[j-1] {
					t.Fatal("reader produced non-ascending clique")
				}
			}
		}
	})
}
