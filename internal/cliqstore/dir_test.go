package cliqstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// writeSegmentFile seals the given cliques into one segment file.
func writeSegmentFile(t *testing.T, path string, cliques [][]int32) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cliques {
		if err := w.Write(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWalkDirVisitsSortedOrder(t *testing.T) {
	dir := t.TempDir()
	// Written out of order on purpose; the walk must be filename-sorted.
	writeSegmentFile(t, filepath.Join(dir, "L001-B000002.cliq"), [][]int32{{7, 8}})
	writeSegmentFile(t, filepath.Join(dir, "L000-B000001.cliq"), [][]int32{{3, 4, 5}})
	writeSegmentFile(t, filepath.Join(dir, "L000-B000000.cliq"), [][]int32{{0, 1}, {2, 6}})
	// Distractors: temp file from an in-flight atomic write, unrelated file.
	os.WriteFile(filepath.Join(dir, "L009-B000009.cliq.tmp"), []byte("junk"), 0o644)
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("junk"), 0o644)

	var got [][]int32
	n, err := WalkDir(dir, func(c []int32) error {
		cp := make([]int32, len(c))
		copy(cp, c)
		got = append(got, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int32{{0, 1}, {2, 6}, {3, 4, 5}, {7, 8}}
	if n != int64(len(want)) || len(got) != len(want) {
		t.Fatalf("walked %d cliques (%d reported), want %d", len(got), n, len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("clique %d = %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("clique %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestWalkDirRejectsTruncatedSegment(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "L000-B000000.cliq")
	writeSegmentFile(t, path, [][]int32{{0, 1, 2}, {3, 4}})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = WalkDir(dir, func([]int32) error { return nil })
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("walk over truncated segment: err = %v, want ErrTruncated", err)
	}
}

// TestWriteDirRoundTrip pins the serving-segment writer: the family comes
// back exactly through WalkDir, and rewriting a directory replaces the
// family and removes stale segments so the next compile sees only the new
// cliques.
func TestWriteDirRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "idx.segments")
	family := [][]int32{{0, 1, 2}, {2, 3}, {1, 4}}
	if err := WriteDir(dir, family); err != nil {
		t.Fatal(err)
	}
	// A stale segment from an older layout must not survive a rewrite.
	writeSegmentFile(t, filepath.Join(dir, "stale.cliq"), [][]int32{{7, 8}})
	next := [][]int32{{0, 1}, {5, 6}}
	if err := WriteDir(dir, next); err != nil {
		t.Fatal(err)
	}
	var got [][]int32
	n, err := WalkDir(dir, func(c []int32) error {
		cp := make([]int32, len(c))
		copy(cp, c)
		got = append(got, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(next)) {
		t.Fatalf("WalkDir visited %d cliques, want %d", n, len(next))
	}
	for i := range next {
		if len(got[i]) != len(next[i]) {
			t.Fatalf("clique %d = %v, want %v", i, got[i], next[i])
		}
		for j := range next[i] {
			if got[i][j] != next[i][j] {
				t.Fatalf("clique %d = %v, want %v", i, got[i], next[i])
			}
		}
	}
	files, err := SegmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || filepath.Base(files[0]) != FamilySegment {
		t.Fatalf("segment files after rewrite = %v, want only %s", files, FamilySegment)
	}
}

func TestWalkDirMissingDirectory(t *testing.T) {
	_, err := WalkDir(filepath.Join(t.TempDir(), "nope"), func([]int32) error { return nil })
	if err == nil || !IsNotExist(err) {
		t.Fatalf("missing dir: err = %v, want IsNotExist", err)
	}
}

func TestWalkDirEmptyDirectory(t *testing.T) {
	n, err := WalkDir(t.TempDir(), func([]int32) error { return nil })
	if err != nil || n != 0 {
		t.Fatalf("empty dir: n=%d err=%v, want 0, nil", n, err)
	}
}
