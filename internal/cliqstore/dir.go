package cliqstore

// Segment-directory iteration: a checkpointed run (internal/runlog) leaves
// one sealed segment per completed block under <checkpoint>/segments/. The
// functions here give downstream consumers — the cliqdb index compiler
// above all — a deterministic, verified view of that directory: segments
// are visited in sorted filename order and every one must verify against
// its trailer, so a torn or bit-flipped segment surfaces as an error
// instead of silently shrinking the clique set.

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SegmentExt is the filename extension of sealed clique segments as written
// by internal/runlog.
const SegmentExt = ".cliq"

// FamilySegment is the filename of the canonical whole-family segment
// WriteDir produces.
const FamilySegment = "family" + SegmentExt

// WriteDir writes cliques as a canonical serving segment directory at dir
// (created if missing): one sealed segment holding the entire family,
// landed temp + fsync + rename so a crash never leaves a torn segment
// under the live name, with any stale segments from a previous family
// removed after the rename. This is the directory to back index
// self-healing with (mced -segments): unlike a run checkpoint's segment
// directory — which holds per-level resume state in level-local vertex
// IDs, before the Lemma 1 filter — it holds the final clique family in
// the graph's own IDs.
func WriteDir(dir string, cliques [][]int32) error {
	fail := func(err error) error { return fmt.Errorf("cliqstore: write segment dir: %w", err) }
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fail(err)
	}
	f, err := os.CreateTemp(dir, FamilySegment+".tmp*")
	if err != nil {
		return fail(err)
	}
	tmp := f.Name()
	abort := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fail(err)
	}
	w, err := NewWriter(f)
	if err != nil {
		return abort(err)
	}
	for _, c := range cliques {
		if err := w.Write(c); err != nil {
			return abort(err)
		}
	}
	if err := w.Finish(); err != nil {
		return abort(err)
	}
	if err := f.Sync(); err != nil {
		return abort(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fail(err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, FamilySegment)); err != nil {
		os.Remove(tmp)
		return fail(err)
	}
	// The family segment is now live; stale siblings would feed extra
	// cliques into the next compile.
	files, err := SegmentFiles(dir)
	if err != nil {
		return err
	}
	for _, p := range files {
		if filepath.Base(p) != FamilySegment {
			if err := os.Remove(p); err != nil {
				return fail(err)
			}
		}
	}
	return nil
}

// SegmentFiles lists the clique segments of dir in sorted filename order —
// the canonical iteration order for everything built from a segment
// directory. Temp files (in-flight atomic writes) and non-segment files are
// ignored. A missing directory is an error; an existing directory with no
// segments returns an empty list.
func SegmentFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cliqstore: segment dir: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), SegmentExt) {
			continue
		}
		out = append(out, filepath.Join(dir, e.Name()))
	}
	sort.Strings(out)
	return out, nil
}

// WalkDir streams every clique of every segment in dir, in sorted filename
// order, calling fn per clique (the slice is reused; copy to retain). Every
// segment is verified against its trailer as it drains: a truncated or
// corrupt segment fails the walk with ErrTruncated / ErrCorrupt (wrapped,
// naming the file) rather than yielding a partial clique set. Returns the
// number of cliques visited.
func WalkDir(dir string, fn func(clique []int32) error) (int64, error) {
	files, err := SegmentFiles(dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, path := range files {
		n, err := walkSegment(path, fn)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// walkSegment drains one segment file through fn.
func walkSegment(path string, fn func(clique []int32) error) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("cliqstore: segment: %w", err)
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return 0, fmt.Errorf("cliqstore: segment %s: %w", filepath.Base(path), err)
	}
	if err := r.ForEach(fn); err != nil {
		return r.Count(), fmt.Errorf("cliqstore: segment %s: %w", filepath.Base(path), err)
	}
	return r.Count(), nil
}

// IsNotExist reports whether err means the segment directory itself is
// missing, as opposed to a directory whose contents failed to read or
// verify.
func IsNotExist(err error) bool {
	return errors.Is(err, fs.ErrNotExist)
}
