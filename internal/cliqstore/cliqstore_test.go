package cliqstore

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, cliques [][]int32) [][]int32 {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cliques {
		if err := w.Write(c); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != int64(len(cliques)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(cliques))
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]int32
	if err := r.ForEach(func(c []int32) error {
		cp := make([]int32, len(c))
		copy(cp, c)
		out = append(out, cp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRoundTripBasic(t *testing.T) {
	in := [][]int32{{0, 1, 2}, {5}, {3, 1000000, 2000000000}, {}}
	out := roundTrip(t, in)
	if len(out) != len(in) {
		t.Fatalf("got %d cliques, want %d", len(out), len(in))
	}
	for i := range in {
		if len(out[i]) != len(in[i]) {
			t.Fatalf("clique %d: %v vs %v", i, out[i], in[i])
		}
		for j := range in[i] {
			if out[i][j] != in[i][j] {
				t.Fatalf("clique %d: %v vs %v", i, out[i], in[i])
			}
		}
	}
}

func TestWriterRejectsUnsorted(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write([]int32{3, 1}); err == nil {
		t.Fatal("descending clique accepted")
	}
	if err := w.Write([]int32{1, 1}); err == nil {
		t.Fatal("duplicate member accepted — writer should stay failed")
	}
	if err := w.Flush(); err == nil {
		t.Fatal("failed writer flushed cleanly")
	}
	w2, _ := NewWriter(&buf)
	if err := w2.Write([]int32{-1}); err == nil {
		t.Fatal("negative member accepted")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
	// Truncated clique body.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write([]int32{1, 2, 3})
	w.Flush()
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated clique accepted")
	}
}

func TestEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Finish()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("empty store Next = %v, want EOF", err)
	}
}

// Property: arbitrary ascending cliques survive the round trip bit-exact.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw [][]uint16) bool {
		var in [][]int32
		for _, rc := range raw {
			seen := map[int32]bool{}
			var c []int32
			for _, v := range rc {
				if !seen[int32(v)] {
					seen[int32(v)] = true
					c = append(c, int32(v))
				}
			}
			// Ascending order required.
			for i := 1; i < len(c); i++ {
				for j := i; j > 0 && c[j] < c[j-1]; j-- {
					c[j], c[j-1] = c[j-1], c[j]
				}
			}
			in = append(in, c)
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, c := range in {
			if err := w.Write(c); err != nil {
				return false
			}
		}
		if err := w.Finish(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		i := 0
		err = r.ForEach(func(c []int32) error {
			if len(c) != len(in[i]) {
				return errors.New("length mismatch")
			}
			for j := range c {
				if c[j] != in[i][j] {
					return errors.New("member mismatch")
				}
			}
			i++
			return nil
		})
		return err == nil && i == len(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
