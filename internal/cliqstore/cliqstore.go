// Package cliqstore persists clique families compactly: each clique is
// delta-encoded (ascending members, gaps as uvarints) behind a small
// header. On social networks the members of a clique are often close in ID
// space, so the encoding lands well under half of a naive int32 dump — the
// difference between a result that fits on disk and one that does not when
// enumerating the billions of cliques the paper's Figure 9 y-axis reaches.
//
// The format is streamable in both directions, pairing with the engine's
// EnumerateStream: cliques go to disk as they are found and come back one
// at a time.
package cliqstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// magic guards against feeding arbitrary files to the reader.
var magic = [4]byte{'M', 'C', 'E', '1'}

// Writer streams cliques into an io.Writer. Create with NewWriter; call
// Flush when done.
type Writer struct {
	w     *bufio.Writer
	buf   []byte
	count int64
	err   error
}

// NewWriter writes the header and returns a ready Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("cliqstore: %w", err)
	}
	return &Writer{w: bw, buf: make([]byte, binary.MaxVarintLen64)}, nil
}

// Write appends one clique; members must be ascending and non-negative.
func (w *Writer) Write(clique []int32) error {
	if w.err != nil {
		return w.err
	}
	if err := w.writeUvarint(uint64(len(clique))); err != nil {
		return err
	}
	prev := int32(0)
	for i, v := range clique {
		if v < 0 || (i > 0 && v <= prev) {
			w.err = fmt.Errorf("cliqstore: clique not strictly ascending at member %d", i)
			return w.err
		}
		delta := uint64(v - prev)
		if i == 0 {
			delta = uint64(v)
		}
		if err := w.writeUvarint(delta); err != nil {
			return err
		}
		prev = v
	}
	w.count++
	return nil
}

func (w *Writer) writeUvarint(x uint64) error {
	n := binary.PutUvarint(w.buf, x)
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		w.err = fmt.Errorf("cliqstore: %w", err)
		return w.err
	}
	return nil
}

// Count reports how many cliques have been written.
func (w *Writer) Count() int64 { return w.count }

// Flush drains the buffer; call it before closing the underlying file.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("cliqstore: %w", err)
	}
	return nil
}

// Reader streams cliques back from a store.
type Reader struct {
	r   *bufio.Reader
	buf []int32
}

// NewReader validates the header and returns a ready Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var got [4]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("cliqstore: reading header: %w", err)
	}
	if got != magic {
		return nil, errors.New("cliqstore: not a clique store (bad magic)")
	}
	return &Reader{r: br}, nil
}

// Next returns the next clique, or io.EOF when the store is exhausted. The
// returned slice is reused by subsequent calls; copy to retain.
func (r *Reader) Next() ([]int32, error) {
	size, err := binary.ReadUvarint(r.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("cliqstore: %w", err)
	}
	if size > 1<<31 {
		return nil, fmt.Errorf("cliqstore: implausible clique size %d", size)
	}
	r.buf = r.buf[:0]
	prev := int64(0)
	for i := uint64(0); i < size; i++ {
		delta, err := binary.ReadUvarint(r.r)
		if err != nil {
			return nil, fmt.Errorf("cliqstore: truncated clique: %w", err)
		}
		v := prev + int64(delta)
		if i == 0 {
			v = int64(delta)
		} else if delta == 0 {
			// Writers emit strictly ascending members, so a zero delta can
			// only come from corruption.
			return nil, fmt.Errorf("cliqstore: corrupt clique: duplicate member %d", prev)
		}
		if v > 1<<31-1 {
			return nil, fmt.Errorf("cliqstore: member %d overflows int32", v)
		}
		r.buf = append(r.buf, int32(v))
		prev = v
	}
	return r.buf, nil
}

// ForEach drains the store, calling fn per clique (slice reused).
func (r *Reader) ForEach(fn func(clique []int32) error) error {
	for {
		c, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(c); err != nil {
			return err
		}
	}
}
