// Package cliqstore persists clique families compactly: each clique is
// delta-encoded (ascending members, gaps as uvarints) behind a small
// header. On social networks the members of a clique are often close in ID
// space, so the encoding lands well under half of a naive int32 dump — the
// difference between a result that fits on disk and one that does not when
// enumerating the billions of cliques the paper's Figure 9 y-axis reaches.
//
// The format is streamable in both directions, pairing with the engine's
// EnumerateStream: cliques go to disk as they are found and come back one
// at a time.
//
// Version 2 ("MCE2") seals every store with a trailer carrying the clique
// count and a CRC-32 content digest, so a segment whose tail was lost to a
// crash — even one truncated exactly on a clique boundary, which version 1
// could not tell from a complete store — is reported as ErrTruncated
// instead of silently dropping trailing cliques. Version 1 stores remain
// readable; they simply end at EOF with no tail verification.
package cliqstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
)

// magic guards against feeding arbitrary files to the reader. magicV1 is
// the legacy trailer-less format, kept readable.
var (
	magic   = [4]byte{'M', 'C', 'E', '2'}
	magicV1 = [4]byte{'M', 'C', 'E', '1'}
)

// trailerSentinel marks the trailer in the clique stream. Clique sizes are
// capped at 2^31, so the sentinel can never be read as a valid size.
const trailerSentinel = uint64(1) << 32

var (
	// ErrTruncated reports a version-2 store that ended before its trailer:
	// the tail of the segment (possibly whole cliques) is missing.
	ErrTruncated = errors.New("cliqstore: truncated store (no trailer; the segment tail is missing)")
	// ErrCorrupt reports a store whose trailer does not match its content
	// (count or CRC-32 mismatch).
	ErrCorrupt = errors.New("cliqstore: corrupt store")
)

// digestClique folds one clique into a running content digest. The digest
// covers decoded content (length + members), so it is independent of the
// delta encoding and can be recomputed from an in-memory clique family.
func digestClique(h hash.Hash32, clique []int32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(len(clique)))
	h.Write(buf[:])
	for _, v := range clique {
		binary.LittleEndian.PutUint32(buf[:], uint32(v))
		h.Write(buf[:])
	}
}

// Digest returns the content digest of a clique family, as stored in the
// version-2 trailer and in checkpoint journals (internal/runlog).
func Digest(cliques [][]int32) uint32 {
	h := crc32.NewIEEE()
	for _, c := range cliques {
		digestClique(h, c)
	}
	return h.Sum32()
}

// Writer streams cliques into an io.Writer. Create with NewWriter; call
// Finish when done to seal the store with its trailer (Flush alone leaves
// the store unsealed, which readers report as truncated).
type Writer struct {
	w        *bufio.Writer
	buf      []byte
	count    int64
	crc      hash.Hash32
	finished bool
	err      error
}

// NewWriter writes the header and returns a ready Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("cliqstore: %w", err)
	}
	return &Writer{w: bw, buf: make([]byte, binary.MaxVarintLen64), crc: crc32.NewIEEE()}, nil
}

// Write appends one clique; members must be ascending and non-negative.
func (w *Writer) Write(clique []int32) error {
	if w.err != nil {
		return w.err
	}
	if w.finished {
		w.err = errors.New("cliqstore: write after Finish")
		return w.err
	}
	if err := w.writeUvarint(uint64(len(clique))); err != nil {
		return err
	}
	prev := int32(0)
	for i, v := range clique {
		if v < 0 || (i > 0 && v <= prev) {
			w.err = fmt.Errorf("cliqstore: clique not strictly ascending at member %d", i)
			return w.err
		}
		delta := uint64(v - prev)
		if i == 0 {
			delta = uint64(v)
		}
		if err := w.writeUvarint(delta); err != nil {
			return err
		}
		prev = v
	}
	digestClique(w.crc, clique)
	w.count++
	return nil
}

func (w *Writer) writeUvarint(x uint64) error {
	n := binary.PutUvarint(w.buf, x)
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		w.err = fmt.Errorf("cliqstore: %w", err)
		return w.err
	}
	return nil
}

// Count reports how many cliques have been written.
func (w *Writer) Count() int64 { return w.count }

// Digest reports the running content digest of the cliques written so far;
// after Finish it equals the digest sealed into the trailer.
func (w *Writer) Digest() uint32 { return w.crc.Sum32() }

// Finish seals the store: it writes the trailer (clique count + content
// CRC-32) and drains the buffer. No cliques can be written afterwards;
// Finish is idempotent.
func (w *Writer) Finish() error {
	if w.err != nil {
		return w.err
	}
	if w.finished {
		return nil
	}
	w.finished = true
	if err := w.writeUvarint(trailerSentinel); err != nil {
		return err
	}
	if err := w.writeUvarint(uint64(w.count)); err != nil {
		return err
	}
	if err := w.writeUvarint(uint64(w.crc.Sum32())); err != nil {
		return err
	}
	return w.Flush()
}

// Flush drains the buffer; call it before closing the underlying file. A
// flushed-but-unfinished store is readable up to its last complete clique,
// but readers report it as truncated — call Finish to seal it.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("cliqstore: %w", err)
	}
	return nil
}

// Reader streams cliques back from a store.
type Reader struct {
	r          *bufio.Reader
	buf        []int32
	crc        hash.Hash32
	count      int64
	legacy     bool // version-1 store: no trailer to verify
	sawTrailer bool
}

// NewReader validates the header and returns a ready Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var got [4]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("cliqstore: reading header: %w", err)
	}
	if got != magic && got != magicV1 {
		return nil, errors.New("cliqstore: not a clique store (bad magic)")
	}
	return &Reader{r: br, crc: crc32.NewIEEE(), legacy: got == magicV1}, nil
}

// Count reports how many cliques have been read so far.
func (r *Reader) Count() int64 { return r.count }

// Digest reports the running content digest of the cliques read so far.
// After a successful drain of a version-2 store it equals the trailer
// digest.
func (r *Reader) Digest() uint32 { return r.crc.Sum32() }

// Next returns the next clique, or io.EOF when the store is exhausted. The
// returned slice is reused by subsequent calls; copy to retain.
//
// For version-2 stores, a clean end of input before the trailer returns
// ErrTruncated (wrapped) instead of io.EOF, and a trailer that disagrees
// with the content returns ErrCorrupt (wrapped); io.EOF therefore
// guarantees the store was read back complete and intact.
func (r *Reader) Next() ([]int32, error) {
	if r.sawTrailer {
		return nil, io.EOF
	}
	size, err := binary.ReadUvarint(r.r)
	if err != nil {
		if errors.Is(err, io.EOF) && r.legacy {
			return nil, io.EOF
		}
		if !r.legacy && (errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)) {
			return nil, fmt.Errorf("%w (read %d cliques)", ErrTruncated, r.count)
		}
		return nil, fmt.Errorf("cliqstore: %w", err)
	}
	if size == trailerSentinel && !r.legacy {
		return nil, r.readTrailer()
	}
	if size > 1<<31 {
		return nil, fmt.Errorf("cliqstore: implausible clique size %d", size)
	}
	r.buf = r.buf[:0]
	prev := int64(0)
	for i := uint64(0); i < size; i++ {
		delta, err := binary.ReadUvarint(r.r)
		if err != nil {
			if !r.legacy && (errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)) {
				return nil, fmt.Errorf("%w (mid-clique, after %d cliques)", ErrTruncated, r.count)
			}
			return nil, fmt.Errorf("cliqstore: truncated clique: %w", err)
		}
		v := prev + int64(delta)
		if i == 0 {
			v = int64(delta)
		} else if delta == 0 {
			// Writers emit strictly ascending members, so a zero delta can
			// only come from corruption.
			return nil, fmt.Errorf("cliqstore: corrupt clique: duplicate member %d", prev)
		}
		if v > 1<<31-1 {
			return nil, fmt.Errorf("cliqstore: member %d overflows int32", v)
		}
		r.buf = append(r.buf, int32(v))
		prev = v
	}
	digestClique(r.crc, r.buf)
	r.count++
	return r.buf, nil
}

// readTrailer validates the trailer against the content read so far and
// returns io.EOF on success.
func (r *Reader) readTrailer() error {
	count, err := binary.ReadUvarint(r.r)
	if err != nil {
		return fmt.Errorf("%w (torn trailer: %v)", ErrTruncated, err)
	}
	sum, err := binary.ReadUvarint(r.r)
	if err != nil {
		return fmt.Errorf("%w (torn trailer: %v)", ErrTruncated, err)
	}
	if count != uint64(r.count) {
		return fmt.Errorf("%w: trailer promises %d cliques, store holds %d", ErrCorrupt, count, r.count)
	}
	if sum > 1<<32-1 || uint32(sum) != r.crc.Sum32() {
		return fmt.Errorf("%w: content digest mismatch (trailer %#x, content %#x)", ErrCorrupt, sum, r.crc.Sum32())
	}
	r.sawTrailer = true
	return io.EOF
}

// ForEach drains the store, calling fn per clique (slice reused). For
// version-2 stores it fails with ErrTruncated / ErrCorrupt (wrapped) when
// the store does not verify against its trailer.
func (r *Reader) ForEach(fn func(clique []int32) error) error {
	for {
		c, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(c); err != nil {
			return err
		}
	}
}
