package cliqstore

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// sealed returns the bytes of a finished store holding the given cliques,
// plus the byte length of the store up to (and including) the last clique —
// i.e. the trailer starts at that offset.
func sealed(t *testing.T, cliques [][]int32) (data []byte, bodyLen int) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cliques {
		if err := w.Write(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	bodyLen = buf.Len()
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), bodyLen
}

func drain(r *Reader) (n int, err error) {
	for {
		_, err = r.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = nil
			}
			return n, err
		}
		n++
	}
}

// TestTruncatedAtCliqueBoundary is the regression test for the silent-drop
// bug: a segment cut exactly between two cliques used to read back as a
// shorter, apparently complete store. The trailer makes it ErrTruncated.
func TestTruncatedAtCliqueBoundary(t *testing.T) {
	cliques := [][]int32{{0, 1, 2}, {4, 9}, {7, 8, 11, 12}}
	data, _ := sealed(t, cliques)

	// Find the boundary after the second clique by re-encoding a prefix.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(cliques[0])
	w.Write(cliques[1])
	w.Flush()
	cut := buf.Len()

	r, err := NewReader(bytes.NewReader(data[:cut]))
	if err != nil {
		t.Fatal(err)
	}
	n, err := drain(r)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("boundary-truncated store: got %d cliques, err %v; want ErrTruncated", n, err)
	}
}

// TestTruncatedTrailer covers a crash mid-trailer: the cliques are intact
// but the seal is torn.
func TestTruncatedTrailer(t *testing.T) {
	data, bodyLen := sealed(t, [][]int32{{1, 2}, {3, 5, 6}})
	for cut := bodyLen; cut < len(data); cut++ {
		r, err := NewReader(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := drain(r); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d of %d: err %v, want ErrTruncated", cut, len(data), err)
		}
	}
}

// TestCorruptTrailerDigest flips a content byte so the trailer digest no
// longer matches.
func TestCorruptTrailerDigest(t *testing.T) {
	data, bodyLen := sealed(t, [][]int32{{1, 2, 3}, {10, 20}})
	data[bodyLen-1] ^= 0x01 // corrupt the last clique's encoding
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drain(r); err == nil {
		t.Fatal("corrupted store drained cleanly")
	}
}

// TestCorruptTrailerCount rebuilds a store with one clique dropped but the
// original trailer appended, so the count disagrees.
func TestCorruptTrailerCount(t *testing.T) {
	cliques := [][]int32{{0, 1}, {2, 3}}
	data, bodyLen := sealed(t, cliques)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(cliques[0])
	w.Flush()
	short := append([]byte(nil), buf.Bytes()...)
	short = append(short, data[bodyLen:]...) // original trailer
	r, err := NewReader(bytes.NewReader(short))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drain(r); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("count-mismatched store: err %v, want ErrCorrupt", err)
	}
}

// TestLegacyV1StillReadable pins backward compatibility: a version-1 store
// (no trailer) reads to io.EOF without complaint.
func TestLegacyV1StillReadable(t *testing.T) {
	data, bodyLen := sealed(t, [][]int32{{1, 4}, {2, 6, 9}})
	legacy := append([]byte(nil), data[:bodyLen]...)
	copy(legacy[:4], magicV1[:])
	r, err := NewReader(bytes.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	n, err := drain(r)
	if err != nil || n != 2 {
		t.Fatalf("legacy store: %d cliques, err %v; want 2, nil", n, err)
	}
}

// TestReaderDigestMatchesWriter pins the digest symmetry the checkpoint
// layer depends on: reader and writer digests agree, as does Digest().
func TestReaderDigestMatchesWriter(t *testing.T) {
	cliques := [][]int32{{0, 1, 2}, {4, 9}, {5}}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, c := range cliques {
		if err := w.Write(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if w.Digest() != Digest(cliques) {
		t.Fatalf("writer digest %#x != Digest() %#x", w.Digest(), Digest(cliques))
	}
	r, _ := NewReader(&buf)
	if _, err := drain(r); err != nil {
		t.Fatal(err)
	}
	if r.Digest() != w.Digest() {
		t.Fatalf("reader digest %#x != writer digest %#x", r.Digest(), w.Digest())
	}
	if r.Count() != int64(len(cliques)) {
		t.Fatalf("reader count %d, want %d", r.Count(), len(cliques))
	}
}
