// Package extmce enumerates the maximal cliques of a disk-resident graph
// without ever loading it whole: the out-of-core regime of ExtMCE [8] and
// EmMCE [10] that motivates the paper, driven by the paper's own two-level
// hub-aware scheme so that completeness survives arbitrary memory budgets.
//
// The pipeline mirrors FIND-MAX-CLIQUES with disk-aware phases:
//
//  1. CUT needs only the degree sequence, which the disk format serves
//     without touching the adjacency lists;
//  2. feasible nodes are chunked so each chunk's closed neighbourhood is
//     guaranteed (by the degree-sum bound Σ(deg+1) ≤ m) to fit a block;
//     one block at a time is materialised from disk and analysed in
//     memory;
//  3. the hub-induced subgraph — small on scale-free networks — is loaded
//     and recursed on with the in-memory engine;
//  4. surviving hub cliques are filtered by the Lemma 1 extension test,
//     evaluated with targeted disk reads.
//
// Peak memory is one block plus the hub subgraph, never the input graph.
package extmce

import (
	"fmt"
	"sort"

	"mce/internal/bitset"
	"mce/internal/core"
	"mce/internal/decomp"
	"mce/internal/diskgraph"
	"mce/internal/mcealg"
)

// Options configures the out-of-core enumeration.
type Options struct {
	// BlockSize is m; 0 derives it from BlockRatio.
	BlockSize int
	// BlockRatio sets m = ceil(ratio × max degree); 0 means 0.5.
	BlockRatio float64
	// Combo pins the per-block MCE combination; the zero value selects
	// Tomita over BitSets, a robust default for dense blocks.
	Combo mcealg.Combo
	// Inner configures the in-memory engine used for the hub recursion.
	Inner core.Options
	// Prefetch loads up to this many blocks ahead of the analysis,
	// overlapping disk I/O with CPU work. 0 disables prefetching (at most
	// one block resident); emission order is identical either way. Memory
	// grows to Prefetch+1 blocks.
	Prefetch int
	// ResumeFrom skips the first ResumeFrom chunks, supporting
	// checkpoint/restart of long runs: chunking is deterministic for a
	// given graph and m, so a run killed after Stats.Chunks-processed
	// blocks can be resumed with ResumeFrom set to that count and its
	// output concatenated with the previous partial output. The hub phase
	// runs only when SkipHubs is false.
	ResumeFrom int
	// SkipHubs suppresses the hub recursion and its cliques; pair it with
	// ResumeFrom to split a run into feasible-side shards plus one final
	// hub pass.
	SkipHubs bool
}

// Stats summarises an out-of-core run.
type Stats struct {
	// BlockSize is the m used; MaxDegree the graph's maximum degree.
	BlockSize, MaxDegree int
	// Feasible and Hubs count the top-level CUT partition.
	Feasible, Hubs int
	// Blocks is the number of disk-loaded blocks (after ResumeFrom);
	// ChunksTotal is the full deterministic chunk count for this graph
	// and m, the unit ResumeFrom counts in.
	Blocks, ChunksTotal int
	// TotalCliques and HubCliques mirror the in-memory engine's stats.
	TotalCliques, HubCliques int
	// DiskReads counts adjacency-list fetches.
	DiskReads int64
}

// Enumerate emits every maximal clique of the disk graph (ascending IDs,
// slice reused) with the hub recursion level it was found at.
func Enumerate(dg *diskgraph.Graph, opts Options, emit func(clique []int32, level int)) (*Stats, error) {
	n := dg.N()
	if n == 0 {
		return nil, fmt.Errorf("extmce: graph has no nodes")
	}
	degrees := dg.Degrees()
	maxDeg := 0
	for _, d := range degrees {
		if d > maxDeg {
			maxDeg = d
		}
	}
	m := opts.BlockSize
	if m <= 0 {
		ratio := opts.BlockRatio
		if ratio <= 0 {
			ratio = 0.5
		}
		m = int(ratio*float64(maxDeg) + 0.999)
	}
	if m < 2 {
		m = 2
	}
	combo := opts.Combo
	if combo == (mcealg.Combo{}) {
		combo = mcealg.Combo{Alg: mcealg.Tomita, Struct: mcealg.BitSets}
	}
	inner := opts.Inner
	if inner.BlockSize == 0 && inner.BlockRatio == 0 {
		// Recurse with the same m, as Algorithm 1 does.
		inner.BlockSize = m
	}

	// First-level decomposition from degrees alone.
	var feasible, hubs []int32
	for v := int32(0); v < int32(n); v++ {
		if degrees[v] < m {
			feasible = append(feasible, v)
		} else {
			hubs = append(hubs, v)
		}
	}
	stats := &Stats{
		BlockSize: m, MaxDegree: maxDeg,
		Feasible: len(feasible), Hubs: len(hubs),
	}

	// Degenerate case: everything is a hub. Load the whole graph — the
	// caller asked for an m below the minimum degree, so there is no
	// memory-respecting decomposition; completeness still wins.
	if len(feasible) == 0 {
		all := make([]int32, n)
		for v := range all {
			all[v] = int32(v)
		}
		sub, _, err := dg.LoadInduced(all)
		if err != nil {
			return nil, err
		}
		res, err := core.FindMaxCliques(sub, inner)
		if err != nil {
			return nil, err
		}
		for _, c := range res.Cliques {
			emit(c, 0)
		}
		stats.TotalCliques = len(res.Cliques)
		stats.DiskReads = dg.Reads()
		return stats, nil
	}

	// Chunk the feasible nodes in increasing degree order so that the
	// degree-sum bound keeps each block within m nodes.
	order := append([]int32(nil), feasible...)
	sort.Slice(order, func(i, j int) bool {
		if degrees[order[i]] != degrees[order[j]] {
			return degrees[order[i]] < degrees[order[j]]
		}
		return order[i] < order[j]
	})
	feasSet := bitset.FromSlice(n, feasible)

	// Partition the feasible order into chunks up front; chunking depends
	// only on degrees, so the visited classification below can be computed
	// from chunk indices without materialising anything.
	var chunks [][]int32
	var chunk []int32
	budget := 0
	for _, v := range order {
		need := degrees[v] + 1
		if budget+need > m && len(chunk) > 0 {
			chunks = append(chunks, chunk)
			chunk = nil
			budget = 0
		}
		chunk = append(chunk, v)
		budget += need
	}
	if len(chunk) > 0 {
		chunks = append(chunks, chunk)
	}
	// kernelChunk[v] is the index of the chunk that owns feasible node v;
	// a node is "visited" in every later chunk's block.
	kernelChunk := make([]int32, n)
	for i := range kernelChunk {
		kernelChunk[i] = -1
	}
	for ci, ch := range chunks {
		for _, v := range ch {
			kernelChunk[v] = int32(ci)
		}
	}

	stats.ChunksTotal = len(chunks)
	resume := opts.ResumeFrom
	if resume < 0 {
		resume = 0
	}
	if resume > len(chunks) {
		resume = len(chunks)
	}
	if err := analyzeChunks(dg, chunks[resume:], resume, kernelChunk, feasSet, combo, opts.Prefetch, stats, emit); err != nil {
		return nil, err
	}

	if opts.SkipHubs {
		stats.DiskReads = dg.Reads()
		return stats, nil
	}
	if len(hubs) == 0 {
		stats.DiskReads = dg.Reads()
		return stats, nil
	}

	// Hub recursion: load the (small) hub-induced subgraph and run the
	// in-memory engine on it, then keep the survivors of the Lemma 1
	// extension test, evaluated with targeted disk reads.
	sub, orig, err := dg.LoadInduced(hubs)
	if err != nil {
		return nil, err
	}
	res, err := core.FindMaxCliques(sub, inner)
	if err != nil {
		return nil, err
	}
	translated := make([]int32, 0, 64)
	for i, c := range res.Cliques {
		translated = translated[:0]
		for _, v := range c {
			translated = append(translated, orig[v])
		}
		ext, err := extensibleOnDisk(dg, translated, degrees, m)
		if err != nil {
			return nil, err
		}
		if !ext {
			emit(translated, 1+res.Level[i])
			stats.TotalCliques++
			stats.HubCliques++
		}
	}
	stats.DiskReads = dg.Reads()
	return stats, nil
}

// loadedBlock is one materialised chunk, ready for analysis.
type loadedBlock struct {
	idx int
	blk decomp.Block
	err error
}

// analyzeChunks materialises and analyses the chunks in order. With
// Prefetch > 0 a loader goroutine stays ahead of the analysis, overlapping
// disk I/O with CPU work; blocks are still analysed (and cliques emitted)
// strictly in chunk order, so output is identical to the serial path.
// For resumed runs the slice's global indices start at base; kernelChunk
// holds global chunk indices per node.
func analyzeChunks(dg *diskgraph.Graph, chunks [][]int32, base int, kernelChunk []int32, feasSet *bitset.Set, combo mcealg.Combo, prefetch int, stats *Stats, emit func([]int32, int)) error {
	load := func(ci int) loadedBlock {
		chunkIdx := int32(base + ci)
		kernels := chunks[ci]
		sub, orig, kernelLocal, err := dg.LoadClosedNeighborhood(kernels)
		if err != nil {
			return loadedBlock{idx: ci, err: err}
		}
		blk := decomp.Block{Graph: sub, Orig: orig, Kernel: kernelLocal}
		for local, gnode := range orig {
			owner := kernelChunk[gnode]
			switch {
			case owner == chunkIdx:
				// current kernel, already classified
			case owner >= 0 && owner < chunkIdx && feasSet.Has(gnode):
				blk.Visited = append(blk.Visited, int32(local))
			default:
				blk.Border = append(blk.Border, int32(local))
			}
		}
		return loadedBlock{idx: ci, blk: blk}
	}

	analyze := func(lb loadedBlock) error {
		if lb.err != nil {
			return lb.err
		}
		found := 0
		err := decomp.AnalyzeBlock(&lb.blk, combo, func(c []int32) {
			emit(c, 0)
			found++
		})
		if err != nil {
			return err
		}
		stats.Blocks++
		stats.TotalCliques += found
		return nil
	}

	if prefetch <= 0 {
		for ci := range chunks {
			if err := analyze(load(ci)); err != nil {
				return err
			}
		}
		return nil
	}

	loaded := make(chan loadedBlock, prefetch)
	done := make(chan struct{})
	defer close(done)
	go func() {
		defer close(loaded)
		for ci := range chunks {
			select {
			case loaded <- load(ci):
			case <-done:
				// The consumer bailed (analysis error): stop loading so the
				// goroutine exits instead of blocking on a full channel.
				return
			}
		}
	}()
	for lb := range loaded {
		if err := analyze(lb); err != nil {
			return err
		}
	}
	return nil
}

// extensibleOnDisk reports whether some feasible node (degree < m) is
// adjacent to every member of the clique, reading only the pivot member's
// list plus one list per feasible candidate.
func extensibleOnDisk(dg *diskgraph.Graph, clique []int32, degrees []int, m int) (bool, error) {
	pivot := clique[0]
	for _, v := range clique[1:] {
		if degrees[v] < degrees[pivot] {
			pivot = v
		}
	}
	nbrs, err := dg.ReadNeighbors(pivot, nil)
	if err != nil {
		return false, err
	}
	var wBuf []int32
	for _, w := range nbrs {
		if degrees[w] >= m {
			continue // only feasible extenders matter (Lemma 1 case c)
		}
		wBuf, err = dg.ReadNeighbors(w, wBuf)
		if err != nil {
			return false, err
		}
		if adjacentToAllSorted(wBuf, clique, w) {
			return true, nil
		}
	}
	return false, nil
}

// adjacentToAllSorted reports whether the sorted adjacency list covers
// every clique member other than w itself.
func adjacentToAllSorted(adj, clique []int32, w int32) bool {
	for _, v := range clique {
		if v == w {
			return false
		}
		i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
		if i == len(adj) || adj[i] != v {
			return false
		}
	}
	return true
}
