package extmce

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"mce/internal/core"
	"mce/internal/diskgraph"
	"mce/internal/gen"
	"mce/internal/graph"
	"mce/internal/mcealg"
)

func key(c []int32) string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

// onDisk round-trips g through the disk format and opens it.
func onDisk(t *testing.T, g *graph.Graph) *diskgraph.Graph {
	t.Helper()
	p := filepath.Join(t.TempDir(), "g.mceg")
	if err := diskgraph.Write(p, g); err != nil {
		t.Fatal(err)
	}
	dg, err := diskgraph.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dg.Close() })
	return dg
}

func collect(t *testing.T, dg *diskgraph.Graph, opts Options) ([][]int32, []int, *Stats) {
	t.Helper()
	var cliques [][]int32
	var levels []int
	stats, err := Enumerate(dg, opts, func(c []int32, level int) {
		cp := make([]int32, len(c))
		copy(cp, c)
		cliques = append(cliques, cp)
		levels = append(levels, level)
	})
	if err != nil {
		t.Fatal(err)
	}
	return cliques, levels, stats
}

func TestDiskGraphRoundTrip(t *testing.T) {
	g := gen.HolmeKim(300, 4, 0.6, 7)
	dg := onDisk(t, g)
	if dg.N() != g.N() || dg.M() != g.M() {
		t.Fatalf("disk graph n=%d m=%d, want n=%d m=%d", dg.N(), dg.M(), g.N(), g.M())
	}
	var buf []int32
	var err error
	for v := int32(0); v < int32(g.N()); v++ {
		if dg.Degree(v) != g.Degree(v) {
			t.Fatalf("degree(%d) = %d, want %d", v, dg.Degree(v), g.Degree(v))
		}
		buf, err = dg.ReadNeighbors(v, buf)
		if err != nil {
			t.Fatal(err)
		}
		want := g.Neighbors(v)
		if len(buf) != len(want) {
			t.Fatalf("neighbors(%d) length %d, want %d", v, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("neighbors(%d) differ at %d", v, i)
			}
		}
	}
	if dg.Reads() == 0 {
		t.Fatal("read counter not incremented")
	}
}

func TestDiskGraphOpenErrors(t *testing.T) {
	if _, err := diskgraph.Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file accepted")
	}
	p := filepath.Join(t.TempDir(), "bad")
	if err := writeFile(p, "not a graph"); err != nil {
		t.Fatal(err)
	}
	if _, err := diskgraph.Open(p); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestOutOfCoreMatchesInMemory(t *testing.T) {
	g := gen.HolmeKim(800, 5, 0.7, 21)
	dg := onDisk(t, g)
	for _, ratio := range []float64{0.9, 0.4, 0.1} {
		want := map[string]bool{}
		res, err := core.FindMaxCliques(g, core.Options{BlockRatio: ratio})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.Cliques {
			want[key(c)] = true
		}
		cliques, levels, stats := collect(t, dg, Options{BlockRatio: ratio})
		if len(cliques) != len(want) {
			t.Fatalf("ratio %v: out-of-core found %d cliques, want %d", ratio, len(cliques), len(want))
		}
		seen := map[string]bool{}
		for i, c := range cliques {
			k := key(c)
			if seen[k] {
				t.Fatalf("ratio %v: duplicate clique {%s}", ratio, k)
			}
			seen[k] = true
			if !want[k] {
				t.Fatalf("ratio %v: spurious clique {%s}", ratio, k)
			}
			// Level ≥ 1 exactly for all-hub cliques.
			allHubs := true
			for _, v := range c {
				if g.Degree(v) < stats.BlockSize {
					allHubs = false
					break
				}
			}
			if (levels[i] >= 1) != allHubs {
				t.Fatalf("ratio %v: level %d for clique {%s} (allHubs=%v)", ratio, levels[i], k, allHubs)
			}
		}
		if stats.TotalCliques != len(cliques) {
			t.Fatalf("stats count %d, emitted %d", stats.TotalCliques, len(cliques))
		}
		if stats.Blocks == 0 || stats.DiskReads == 0 {
			t.Fatalf("implausible stats: %+v", stats)
		}
	}
}

func TestOutOfCoreHubCliques(t *testing.T) {
	// K5 hub core with pendant leaves: the hub clique must survive with
	// level ≥ 1 and the extension filter must drop subsumed hub cliques.
	b := graph.NewBuilder(5 + 5*20)
	for u := int32(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			b.AddEdge(u, v)
		}
	}
	next := int32(5)
	for u := int32(0); u < 5; u++ {
		for i := 0; i < 20; i++ {
			b.AddEdge(u, next)
			next++
		}
	}
	g := b.Build()
	dg := onDisk(t, g)
	cliques, levels, stats := collect(t, dg, Options{BlockSize: 10})
	found := false
	for i, c := range cliques {
		if key(c) == "0,1,2,3,4" {
			found = true
			if levels[i] < 1 {
				t.Fatalf("hub clique at level %d", levels[i])
			}
		}
	}
	if !found || stats.HubCliques < 1 {
		t.Fatalf("hub clique missing (stats %+v)", stats)
	}
}

func TestOutOfCoreAllHubsFallback(t *testing.T) {
	g := graph.Complete(8)
	dg := onDisk(t, g)
	cliques, _, stats := collect(t, dg, Options{BlockSize: 3})
	if len(cliques) != 1 || key(cliques[0]) != "0,1,2,3,4,5,6,7" {
		t.Fatalf("fallback cliques = %v", cliques)
	}
	if stats.Feasible != 0 || stats.Hubs != 8 {
		t.Fatalf("fallback stats = %+v", stats)
	}
}

func TestOutOfCoreEmptyGraph(t *testing.T) {
	dg := onDisk(t, graph.Empty(0))
	if _, err := Enumerate(dg, Options{}, func([]int32, int) {}); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestOutOfCoreIsolatedNodes(t *testing.T) {
	dg := onDisk(t, graph.Empty(4))
	cliques, _, _ := collect(t, dg, Options{BlockSize: 4})
	if len(cliques) != 4 {
		t.Fatalf("isolated nodes: %v", cliques)
	}
}

// Property: out-of-core equals the reference for random graphs across m.
func TestQuickOutOfCoreComplete(t *testing.T) {
	f := func(seed int64, rawRatio uint8) bool {
		g := gen.BarabasiAlbert(int(seed%60)+10, 3, seed)
		p := filepath.Join(t.TempDir(), fmt.Sprintf("q%d.mceg", seed))
		if err := diskgraph.Write(p, g); err != nil {
			return false
		}
		dg, err := diskgraph.Open(p)
		if err != nil {
			return false
		}
		defer dg.Close()
		ratio := 0.1 + float64(rawRatio%9)*0.1
		want := map[string]bool{}
		for _, c := range mcealg.ReferenceCollect(g) {
			want[key(c)] = true
		}
		got := map[string]bool{}
		n := 0
		_, err = Enumerate(dg, Options{BlockRatio: ratio}, func(c []int32, _ int) {
			cp := make([]int32, len(c))
			copy(cp, c)
			got[key(cp)] = true
			n++
		})
		if err != nil || n != len(want) || len(got) != n {
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func writeFile(p, content string) error {
	return os.WriteFile(p, []byte(content), 0o644)
}

func TestPrefetchEquivalent(t *testing.T) {
	g := gen.HolmeKim(600, 5, 0.7, 27)
	dg := onDisk(t, g)
	serial, serialLevels, _ := collect(t, dg, Options{BlockRatio: 0.3})
	pre, preLevels, _ := collect(t, dg, Options{BlockRatio: 0.3, Prefetch: 4})
	if len(serial) != len(pre) {
		t.Fatalf("prefetch changed clique count: %d vs %d", len(pre), len(serial))
	}
	for i := range serial {
		if key(serial[i]) != key(pre[i]) || serialLevels[i] != preLevels[i] {
			t.Fatalf("prefetch permuted output at %d", i)
		}
	}
}

func TestResumeShardsConcatenate(t *testing.T) {
	g := gen.HolmeKim(500, 5, 0.7, 47)
	dg := onDisk(t, g)

	full, fullLevels, fullStats := collect(t, dg, Options{BlockRatio: 0.3})
	mid := fullStats.ChunksTotal / 2
	if mid == 0 {
		t.Skip("too few chunks to shard")
	}

	// Resuming past the last chunk processes nothing on the feasible side.
	endStats, err := Enumerate(dg,
		Options{BlockRatio: 0.3, SkipHubs: true, ResumeFrom: fullStats.ChunksTotal},
		func([]int32, int) { t.Fatal("chunk emitted after the end") })
	if err != nil {
		t.Fatal(err)
	}
	if endStats.Blocks != 0 {
		t.Fatalf("resume at end processed %d blocks", endStats.Blocks)
	}

	// The feasible side with all chunks, then the suffix shard [mid, total):
	// the shard must equal the tail of the feasible-only run, and a final
	// hub-only pass (ResumeFrom=total, SkipHubs=false) must supply exactly
	// the remaining cliques of the full run.
	feas, _, feasStats := collect(t, dg, Options{BlockRatio: 0.3, SkipHubs: true})
	suffix, _, sufStats := collect(t, dg, Options{BlockRatio: 0.3, SkipHubs: true, ResumeFrom: mid})
	if feasStats.Blocks != fullStats.ChunksTotal || sufStats.Blocks != fullStats.ChunksTotal-mid {
		t.Fatalf("block accounting: feasible %d, suffix %d, chunks %d, mid %d",
			feasStats.Blocks, sufStats.Blocks, fullStats.ChunksTotal, mid)
	}
	tail := feas[len(feas)-len(suffix):]
	for i := range suffix {
		if key(suffix[i]) != key(tail[i]) {
			t.Fatalf("suffix shard diverges at %d", i)
		}
	}

	hubOnly, hubLevels, _ := collect(t, dg, Options{BlockRatio: 0.3, ResumeFrom: fullStats.ChunksTotal})
	if len(feas)+len(hubOnly) != len(full) {
		t.Fatalf("shards cover %d+%d cliques, full run %d", len(feas), len(hubOnly), len(full))
	}
	for i, c := range hubOnly {
		j := len(feas) + i
		if key(c) != key(full[j]) || hubLevels[i] != fullLevels[j] {
			t.Fatalf("hub shard diverges at %d", i)
		}
	}
}
