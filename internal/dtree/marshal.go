package dtree

import (
	"encoding/json"
	"fmt"

	"mce/internal/mcealg"
)

// wireNode is the JSON form of a tree node. Exactly one of Split or Leaf is
// set.
type wireNode struct {
	Split *wireSplit `json:"split,omitempty"`
	Leaf  *wireLeaf  `json:"leaf,omitempty"`
}

type wireSplit struct {
	Feature   string    `json:"feature"`
	Threshold float64   `json:"threshold"`
	True      *wireNode `json:"true"`
	False     *wireNode `json:"false"`
}

type wireLeaf struct {
	Algorithm string `json:"algorithm"`
	Structure string `json:"structure"`
	Samples   int    `json:"samples,omitempty"`
}

// MarshalJSON encodes the tree so a trained selector can be stored next to
// a deployment and reloaded without retraining.
func (t *Tree) MarshalJSON() ([]byte, error) {
	return json.Marshal(toWire(t.root))
}

// UnmarshalJSON decodes a tree produced by MarshalJSON.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var w wireNode
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("dtree: %w", err)
	}
	root, err := fromWire(&w)
	if err != nil {
		return err
	}
	t.root = root
	return nil
}

func toWire(n *node) *wireNode {
	if n.leaf {
		return &wireNode{Leaf: &wireLeaf{
			Algorithm: n.combo.Alg.String(),
			Structure: n.combo.Struct.String(),
			Samples:   n.samples,
		}}
	}
	return &wireNode{Split: &wireSplit{
		Feature:   n.feat.String(),
		Threshold: n.threshold,
		True:      toWire(n.left),
		False:     toWire(n.right),
	}}
}

func fromWire(w *wireNode) (*node, error) {
	switch {
	case w == nil:
		return nil, fmt.Errorf("dtree: missing node")
	case w.Leaf != nil && w.Split != nil:
		return nil, fmt.Errorf("dtree: node is both leaf and split")
	case w.Leaf != nil:
		combo, err := parseCombo(w.Leaf.Algorithm, w.Leaf.Structure)
		if err != nil {
			return nil, err
		}
		return &node{leaf: true, combo: combo, samples: w.Leaf.Samples}, nil
	case w.Split != nil:
		feat, err := parseFeature(w.Split.Feature)
		if err != nil {
			return nil, err
		}
		left, err := fromWire(w.Split.True)
		if err != nil {
			return nil, err
		}
		right, err := fromWire(w.Split.False)
		if err != nil {
			return nil, err
		}
		return &node{feat: feat, threshold: w.Split.Threshold, left: left, right: right}, nil
	default:
		return nil, fmt.Errorf("dtree: node is neither leaf nor split")
	}
}

func parseFeature(name string) (Feature, error) {
	for f := Feature(0); f < numFeatures; f++ {
		if f.String() == name {
			return f, nil
		}
	}
	return 0, fmt.Errorf("dtree: unknown feature %q", name)
}

func parseCombo(alg, st string) (mcealg.Combo, error) {
	var c mcealg.Combo
	switch alg {
	case "BKPivot":
		c.Alg = mcealg.BKPivot
	case "Tomita":
		c.Alg = mcealg.Tomita
	case "Eppstein":
		c.Alg = mcealg.Eppstein
	case "XPivot":
		c.Alg = mcealg.XPivot
	default:
		return c, fmt.Errorf("dtree: unknown algorithm %q", alg)
	}
	switch st {
	case "Matrix":
		c.Struct = mcealg.Matrix
	case "Lists":
		c.Struct = mcealg.Lists
	case "BitSets":
		c.Struct = mcealg.BitSets
	default:
		return c, fmt.Errorf("dtree: unknown structure %q", st)
	}
	return c, nil
}
