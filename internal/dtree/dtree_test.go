package dtree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mce/internal/kcore"
	"mce/internal/mcealg"
)

func feat(nodes, edges int, density float64, degeneracy, dstar int) kcore.Features {
	return kcore.Features{
		Nodes: nodes, Edges: edges, Density: density,
		Degeneracy: degeneracy, DStar: dstar,
	}
}

var (
	comboA = mcealg.Combo{Alg: mcealg.Tomita, Struct: mcealg.BitSets}
	comboB = mcealg.Combo{Alg: mcealg.Eppstein, Struct: mcealg.Lists}
	comboC = mcealg.Combo{Alg: mcealg.BKPivot, Struct: mcealg.Matrix}
)

func TestFeatureStrings(t *testing.T) {
	names := []string{"#nodes", "#edges", "density", "degeneracy", "d*"}
	for f := Feature(0); f < numFeatures; f++ {
		if f.String() != names[f] {
			t.Errorf("Feature(%d).String = %q, want %q", f, f.String(), names[f])
		}
	}
	if Feature(99).String() == "" {
		t.Errorf("unknown feature must render")
	}
}

func TestTrainPureSet(t *testing.T) {
	samples := []Sample{
		{feat(10, 20, 0.4, 3, 4), comboA},
		{feat(50, 100, 0.1, 8, 9), comboA},
	}
	tree := Train(samples, Options{})
	if tree.Depth() != 1 || tree.Leaves() != 1 {
		t.Fatalf("pure set should give a single leaf, got depth %d", tree.Depth())
	}
	if got := tree.Predict(feat(999, 999, 0.9, 99, 99)); got != comboA {
		t.Fatalf("Predict = %v, want %v", got, comboA)
	}
}

func TestTrainSeparableByDegeneracy(t *testing.T) {
	var samples []Sample
	for i := 0; i < 10; i++ {
		samples = append(samples, Sample{feat(100+i, 500, 0.2, 10+i, 12), comboB})
		samples = append(samples, Sample{feat(100+i, 500, 0.2, 60+i, 70), comboA})
	}
	tree := Train(samples, Options{})
	if got := tree.Predict(feat(105, 500, 0.2, 12, 12)); got != comboB {
		t.Fatalf("low degeneracy → %v, want %v", got, comboB)
	}
	if got := tree.Predict(feat(105, 500, 0.2, 65, 70)); got != comboA {
		t.Fatalf("high degeneracy → %v, want %v", got, comboA)
	}
	if tree.Depth() != 2 {
		t.Fatalf("one split suffices, got depth %d:\n%s", tree.Depth(), tree)
	}
}

func TestTrainTwoLevelStructure(t *testing.T) {
	// Labels determined by (degeneracy > 30, nodes > 1000) — needs two
	// levels.
	var samples []Sample
	for i := 0; i < 12; i++ {
		samples = append(samples, Sample{feat(100+i, 300, 0.3, 40+i, 45), comboA})  // high deg, small
		samples = append(samples, Sample{feat(5000+i, 300, 0.3, 40+i, 45), comboC}) // high deg, big
		samples = append(samples, Sample{feat(100+i, 300, 0.3, 5+i%3, 8), comboB})  // low deg
		samples = append(samples, Sample{feat(5000+i, 300, 0.3, 5+i%3, 8), comboB}) // low deg
	}
	tree := Train(samples, Options{})
	cases := []struct {
		f    kcore.Features
		want mcealg.Combo
	}{
		{feat(200, 300, 0.3, 45, 45), comboA},
		{feat(6000, 300, 0.3, 45, 45), comboC},
		{feat(200, 300, 0.3, 6, 8), comboB},
		{feat(6000, 300, 0.3, 6, 8), comboB},
	}
	for _, c := range cases {
		if got := tree.Predict(c.f); got != c.want {
			t.Fatalf("Predict(%+v) = %v, want %v\n%s", c.f, got, c.want, tree)
		}
	}
}

func TestTrainRespectsMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var samples []Sample
	combos := []mcealg.Combo{comboA, comboB, comboC}
	for i := 0; i < 200; i++ {
		samples = append(samples, Sample{
			feat(rng.Intn(5000), rng.Intn(50000), rng.Float64(), rng.Intn(100), rng.Intn(200)),
			combos[rng.Intn(3)],
		})
	}
	tree := Train(samples, Options{MaxDepth: 3})
	if tree.Depth() > 4 { // depth counts leaves; 3 splits + leaf level
		t.Fatalf("depth %d exceeds MaxDepth+1", tree.Depth())
	}
}

func TestTrainEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Train(nil) did not panic")
		}
	}()
	Train(nil, Options{})
}

func TestTrainConstantFeatures(t *testing.T) {
	// All features identical but labels differ: no valid split exists; the
	// tree must fall back to a majority leaf rather than loop.
	samples := []Sample{
		{feat(10, 10, 0.5, 5, 5), comboA},
		{feat(10, 10, 0.5, 5, 5), comboA},
		{feat(10, 10, 0.5, 5, 5), comboB},
	}
	tree := Train(samples, Options{})
	if tree.Leaves() != 1 {
		t.Fatalf("expected single majority leaf, got %d leaves", tree.Leaves())
	}
	if got := tree.Predict(feat(10, 10, 0.5, 5, 5)); got != comboA {
		t.Fatalf("majority = %v, want %v", got, comboA)
	}
}

func TestPublishedTreeShape(t *testing.T) {
	tree := Published()
	if tree.Leaves() != 4 {
		t.Fatalf("published tree has %d leaves, want 4", tree.Leaves())
	}
	cases := []struct {
		f    kcore.Features
		want mcealg.Combo
	}{
		// degeneracy ≤ 25 → Lists/XPivot.
		{feat(100, 500, 0.1, 10, 15), mcealg.Combo{Alg: mcealg.XPivot, Struct: mcealg.Lists}},
		// degeneracy > 25, nodes ≥ 8558 → Matrix/XPivot.
		{feat(10000, 50000, 0.1, 30, 40), mcealg.Combo{Alg: mcealg.XPivot, Struct: mcealg.Matrix}},
		// degeneracy > 52, nodes < 8558 → BitSets/Tomita.
		{feat(1000, 50000, 0.3, 60, 80), mcealg.Combo{Alg: mcealg.Tomita, Struct: mcealg.BitSets}},
		// 25 < degeneracy ≤ 52, nodes < 8558 → Matrix/BKPivot.
		{feat(1000, 20000, 0.2, 40, 50), mcealg.Combo{Alg: mcealg.BKPivot, Struct: mcealg.Matrix}},
	}
	for _, c := range cases {
		if got := tree.Predict(c.f); got != c.want {
			t.Fatalf("Published().Predict(%+v) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestStringRendersAllLeaves(t *testing.T) {
	s := Published().String()
	for _, want := range []string{"degeneracy > 25", "[Lists/XPivot]", "[BitSets/Tomita]", "[Matrix/BKPivot]", "[Matrix/XPivot]"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering misses %q:\n%s", want, s)
		}
	}
}

func TestSafePredictDegradesMatrix(t *testing.T) {
	tree := Published()
	f := feat(mcealg.MatrixMaxNodes+1, 1e6, 0.001, 30, 40)
	got := SafePredict(tree, f)
	if got.Struct == mcealg.Matrix {
		t.Fatalf("SafePredict kept Matrix for %d nodes", f.Nodes)
	}
	if got.Alg != mcealg.XPivot {
		t.Fatalf("SafePredict changed the algorithm: %v", got)
	}
	// Small block: no degradation.
	small := feat(100, 500, 0.2, 30, 40)
	if got := SafePredict(tree, small); got.Struct != mcealg.Matrix {
		t.Fatalf("SafePredict degraded unnecessarily: %v", got)
	}
}

// Property: training on linearly separable labels yields perfect training
// accuracy.
func TestQuickSeparableAccuracy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		thr := float64(rng.Intn(80) + 10)
		var samples []Sample
		for i := 0; i < 60; i++ {
			d := rng.Intn(200)
			c := comboA
			if float64(d) <= thr {
				c = comboB
			}
			samples = append(samples, Sample{feat(rng.Intn(1000)+10, rng.Intn(9000), rng.Float64(), d, d+rng.Intn(10)), c})
		}
		tree := Train(samples, Options{MinLeaf: 1})
		for _, s := range samples {
			if tree.Predict(s.F) != s.Best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Predict is total — it returns one of the training labels for
// arbitrary feature vectors.
func TestQuickPredictTotal(t *testing.T) {
	samples := []Sample{
		{feat(10, 20, 0.1, 2, 3), comboA},
		{feat(1000, 20000, 0.6, 50, 60), comboB},
		{feat(100, 200, 0.3, 10, 12), comboC},
		{feat(5000, 90000, 0.01, 25, 30), comboA},
	}
	tree := Train(samples, Options{MinLeaf: 1})
	valid := map[mcealg.Combo]bool{comboA: true, comboB: true, comboC: true}
	f := func(nodes, edges uint16, density float64, degeneracy, dstar uint8) bool {
		got := tree.Predict(feat(int(nodes), int(edges), density, int(degeneracy), int(dstar)))
		return valid[got]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFeatureImportance(t *testing.T) {
	// Published tree splits on degeneracy twice and #nodes once.
	imp := Published().FeatureImportance()
	if len(imp) != 2 {
		t.Fatalf("importance features = %v", imp)
	}
	if imp[FeatDegeneracy] <= imp[FeatNodes] {
		t.Fatalf("degeneracy should dominate: %v", imp)
	}
	sum := 0.0
	for _, w := range imp {
		sum += w
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("importance does not normalise: %v", sum)
	}
	// A trained single-leaf tree has no splits at all.
	leaf := Train([]Sample{
		{feat(1, 1, 0.1, 1, 1), comboA},
		{feat(2, 2, 0.2, 2, 2), comboA},
	}, Options{})
	if got := leaf.FeatureImportance(); len(got) != 0 {
		t.Fatalf("pure tree importance = %v", got)
	}
	// Trained trees weight by sample counts.
	var samples []Sample
	for i := 0; i < 20; i++ {
		c := comboA
		if i%2 == 0 {
			c = comboB
		}
		samples = append(samples, Sample{feat(100+i, 500, 0.2, 10+50*(i%2), 15), c})
	}
	tr := Train(samples, Options{})
	imp = tr.FeatureImportance()
	if len(imp) == 0 {
		t.Fatalf("trained tree has no importance")
	}
}
