// Package dtree implements the algorithm-selection decision tree of paper
// §4: given the five easy-to-compute block parameters (number of nodes,
// number of edges, density, degeneracy and d*), predict the
// data-structure/algorithm combination that will enumerate the block's
// maximal cliques fastest.
//
// Train fits a CART-style recursive-partitioning tree (the stand-in for the
// rpart routines [32] the paper used) on measured (features → best combo)
// samples; Published returns a reconstruction of the tree in the paper's
// Figure 3.
package dtree

import (
	"fmt"
	"sort"
	"strings"

	"mce/internal/kcore"
	"mce/internal/mcealg"
)

// Feature identifies one of the five block parameters.
type Feature uint8

// The decision-tree features, in the order of paper §4's list.
const (
	FeatNodes Feature = iota
	FeatEdges
	FeatDensity
	FeatDegeneracy
	FeatDStar
	numFeatures
)

// String names the feature as in the paper.
func (f Feature) String() string {
	switch f {
	case FeatNodes:
		return "#nodes"
	case FeatEdges:
		return "#edges"
	case FeatDensity:
		return "density"
	case FeatDegeneracy:
		return "degeneracy"
	case FeatDStar:
		return "d*"
	}
	return fmt.Sprintf("Feature(%d)", uint8(f))
}

// vector projects the Features struct into an indexable form.
func vector(f kcore.Features) [numFeatures]float64 {
	return [numFeatures]float64{
		float64(f.Nodes),
		float64(f.Edges),
		f.Density,
		float64(f.Degeneracy),
		float64(f.DStar),
	}
}

// Sample is one training observation: a block's parameters and the combo
// measured fastest on it.
type Sample struct {
	F    kcore.Features
	Best mcealg.Combo
}

// Tree is a binary decision tree over block features. The zero value is not
// usable; build one with Train or Published.
type Tree struct {
	root *node
}

// node is either a split (Left/Right non-nil) or a leaf (Leaf set).
type node struct {
	feat      Feature
	threshold float64 // go left when value > threshold
	left      *node
	right     *node
	leaf      bool
	combo     mcealg.Combo
	samples   int
}

// Options tunes training.
type Options struct {
	// MaxDepth bounds the tree height; 0 means the default of 5.
	MaxDepth int
	// MinLeaf is the minimum number of samples per leaf; 0 means 2.
	MinLeaf int
}

// Train fits a tree on samples by greedy Gini-impurity minimisation with
// binary numeric splits, the classic CART procedure. It panics on an empty
// sample set, which would leave nothing to predict.
func Train(samples []Sample, opts Options) *Tree {
	if len(samples) == 0 {
		panic("dtree: Train on empty sample set")
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 5
	}
	if opts.MinLeaf <= 0 {
		opts.MinLeaf = 2
	}
	return &Tree{root: build(samples, opts, 0)}
}

func build(samples []Sample, opts Options, depth int) *node {
	maj, pure := majority(samples)
	if pure || depth >= opts.MaxDepth || len(samples) < 2*opts.MinLeaf {
		return &node{leaf: true, combo: maj, samples: len(samples)}
	}
	feat, thr, ok := bestSplit(samples, opts.MinLeaf)
	if !ok {
		return &node{leaf: true, combo: maj, samples: len(samples)}
	}
	var left, right []Sample
	for _, s := range samples {
		if vector(s.F)[feat] > thr {
			left = append(left, s)
		} else {
			right = append(right, s)
		}
	}
	return &node{
		feat:      feat,
		threshold: thr,
		left:      build(left, opts, depth+1),
		right:     build(right, opts, depth+1),
		samples:   len(samples),
	}
}

// majority returns the most frequent combo and whether the set is pure.
// Ties break towards the lexicographically smallest combo string so that
// training is deterministic.
func majority(samples []Sample) (mcealg.Combo, bool) {
	counts := map[mcealg.Combo]int{}
	for _, s := range samples {
		counts[s.Best]++
	}
	type kv struct {
		c mcealg.Combo
		n int
	}
	var kvs []kv
	for c, n := range counts {
		kvs = append(kvs, kv{c, n})
	}
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].n != kvs[j].n {
			return kvs[i].n > kvs[j].n
		}
		return kvs[i].c.String() < kvs[j].c.String()
	})
	return kvs[0].c, len(counts) == 1
}

// gini computes the Gini impurity of a label multiset given class counts.
func gini(counts map[mcealg.Combo]int, total int) float64 {
	if total == 0 {
		return 0
	}
	sum := 0.0
	for _, n := range counts {
		p := float64(n) / float64(total)
		sum += p * p
	}
	return 1 - sum
}

// bestSplit scans every feature and every midpoint between consecutive
// distinct values, returning the split with minimum weighted child impurity.
func bestSplit(samples []Sample, minLeaf int) (Feature, float64, bool) {
	bestFeat, bestThr, bestScore, found := Feature(0), 0.0, 1e18, false
	n := len(samples)
	for f := Feature(0); f < numFeatures; f++ {
		vals := make([]float64, n)
		for i, s := range samples {
			vals[i] = vector(s.F)[f]
		}
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool { return vals[order[i]] < vals[order[j]] })

		// Sweep thresholds; right = values ≤ thr, left = values > thr.
		rightCounts := map[mcealg.Combo]int{}
		leftCounts := map[mcealg.Combo]int{}
		for _, s := range samples {
			leftCounts[s.Best]++
		}
		moved := 0
		for idx := 0; idx < n-1; idx++ {
			i := order[idx]
			rightCounts[samples[i].Best]++
			leftCounts[samples[i].Best]--
			moved++
			if vals[order[idx]] == vals[order[idx+1]] {
				continue // not a valid cut point
			}
			if moved < minLeaf || n-moved < minLeaf {
				continue
			}
			thr := (vals[order[idx]] + vals[order[idx+1]]) / 2
			score := float64(moved)*gini(rightCounts, moved) +
				float64(n-moved)*gini(leftCounts, n-moved)
			if score < bestScore-1e-12 {
				bestScore, bestFeat, bestThr, found = score, f, thr, true
			}
		}
	}
	if !found {
		return 0, 0, false
	}
	// Reject splits that do not improve over the parent impurity at all.
	parentCounts := map[mcealg.Combo]int{}
	for _, s := range samples {
		parentCounts[s.Best]++
	}
	if bestScore >= float64(n)*gini(parentCounts, n)-1e-12 {
		return 0, 0, false
	}
	return bestFeat, bestThr, true
}

// Predict returns the combo the tree selects for a block with features f —
// the paper's bestfit(B).
func (t *Tree) Predict(f kcore.Features) mcealg.Combo {
	v := vector(f)
	n := t.root
	for !n.leaf {
		if v[n.feat] > n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.combo
}

// Depth returns the height of the tree (a single leaf has depth 1).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(n *node) int {
	if n.leaf {
		return 1
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int { return leaves(t.root) }

func leaves(n *node) int {
	if n.leaf {
		return 1
	}
	return leaves(n.left) + leaves(n.right)
}

// String renders the tree in the indented style of the paper's Figure 3.
func (t *Tree) String() string {
	var b strings.Builder
	render(&b, t.root, 0)
	return b.String()
}

func render(b *strings.Builder, n *node, indent int) {
	pad := strings.Repeat("  ", indent)
	if n.leaf {
		fmt.Fprintf(b, "%s%v\n", pad, n.combo)
		return
	}
	fmt.Fprintf(b, "%s%s > %g?\n", pad, n.feat, n.threshold)
	fmt.Fprintf(b, "%strue:\n", pad)
	render(b, n.left, indent+1)
	fmt.Fprintf(b, "%sfalse:\n", pad)
	render(b, n.right, indent+1)
}

// FeatureImportance scores each feature by the sample-weighted number of
// splits it drives (the rpart-style surrogate of impurity decrease when the
// training impurities are no longer available), normalised to sum to 1.
// It answers "what does the selector actually look at?" for trees like
// Figure 3's.
func (t *Tree) FeatureImportance() map[Feature]float64 {
	raw := map[Feature]float64{}
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			return
		}
		weight := float64(n.samples)
		if weight == 0 {
			weight = 1 // hand-built trees (Published) carry no sample counts
		}
		raw[n.feat] += weight
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	total := 0.0
	for _, w := range raw {
		total += w
	}
	if total == 0 {
		return raw
	}
	for f := range raw {
		raw[f] /= total
	}
	return raw
}

// Published returns a reconstruction of the paper's Figure 3 tree:
//
//	degeneracy > 25?
//	  true:  #nodes < 8558?
//	           true:  degeneracy > 52? → [BitSets/Tomita] else [Matrix/BKPivot]
//	           false: [Matrix/XPivot]
//	  false: [Lists/XPivot]
//
// The figure in the proceedings PDF is partially garbled; this layout uses
// all four leaves shown and keeps each leaf consistent with Table 1 (Matrix
// combos win on small blocks, Lists/XPivot on sparse ones, BitSets/Tomita on
// the densest ones).
//
//mce:coldpath tree construction, once per run (the selector caches it)
func Published() *Tree {
	leaf := func(a mcealg.Algorithm, s mcealg.Structure) *node {
		return &node{leaf: true, combo: mcealg.Combo{Alg: a, Struct: s}}
	}
	return &Tree{root: &node{
		feat: FeatDegeneracy, threshold: 25,
		left: &node{
			// #nodes < 8558 ⇔ NOT (#nodes > 8557).
			feat: FeatNodes, threshold: 8557,
			left: leaf(mcealg.XPivot, mcealg.Matrix),
			right: &node{
				feat:      FeatDegeneracy,
				threshold: 52,
				left:      leaf(mcealg.Tomita, mcealg.BitSets),
				right:     leaf(mcealg.BKPivot, mcealg.Matrix),
			},
		},
		right: leaf(mcealg.XPivot, mcealg.Lists),
	}}
}

// SafePredict wraps Predict with the Matrix size guard: if the tree selects
// a Matrix combo for a block too large for a dense matrix, it degrades to
// the same algorithm over BitSets.
func SafePredict(t *Tree, f kcore.Features) mcealg.Combo {
	c := t.Predict(f)
	if c.Struct == mcealg.Matrix && f.Nodes > mcealg.MatrixMaxNodes {
		c.Struct = mcealg.BitSets
	}
	return c
}
