package dtree

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"

	"mce/internal/kcore"
	"mce/internal/mcealg"
)

func TestMarshalRoundTripPublished(t *testing.T) {
	orig := Published()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Leaves() != orig.Leaves() || back.Depth() != orig.Depth() {
		t.Fatalf("shape changed: %d/%d leaves, %d/%d depth",
			back.Leaves(), orig.Leaves(), back.Depth(), orig.Depth())
	}
	if back.String() != orig.String() {
		t.Fatalf("rendering changed:\n%s\nvs\n%s", back.String(), orig.String())
	}
}

func TestMarshalRoundTripTrained(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	combos := []mcealg.Combo{
		{Alg: mcealg.Tomita, Struct: mcealg.BitSets},
		{Alg: mcealg.Eppstein, Struct: mcealg.Lists},
		{Alg: mcealg.XPivot, Struct: mcealg.Matrix},
	}
	var samples []Sample
	for i := 0; i < 80; i++ {
		samples = append(samples, Sample{
			F: kcore.Features{
				Nodes: rng.Intn(2000), Edges: rng.Intn(20000),
				Density: rng.Float64(), Degeneracy: rng.Intn(80), DStar: rng.Intn(120),
			},
			Best: combos[rng.Intn(len(combos))],
		})
	}
	orig := Train(samples, Options{})
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	// Same predictions on random inputs.
	f := func(nodes, edges uint16, density float64, deg, dstar uint8) bool {
		feat := kcore.Features{
			Nodes: int(nodes), Edges: int(edges), Density: density,
			Degeneracy: int(deg), DStar: int(dstar),
		}
		return orig.Predict(feat) == back.Predict(feat)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := []string{
		`{"leaf":{"algorithm":"NoSuch","structure":"Lists"}}`,
		`{"leaf":{"algorithm":"Tomita","structure":"NoSuch"}}`,
		`{"split":{"feature":"unknown","threshold":1,"true":{"leaf":{"algorithm":"Tomita","structure":"Lists"}},"false":{"leaf":{"algorithm":"Tomita","structure":"Lists"}}}}`,
		`{"split":{"feature":"#nodes","threshold":1,"true":null,"false":null}}`,
		`{}`,
		`{"leaf":{"algorithm":"Tomita","structure":"Lists"},"split":{"feature":"#nodes","threshold":1}}`,
		`not json`,
	}
	for i, c := range cases {
		var tr Tree
		if err := json.Unmarshal([]byte(c), &tr); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestParseFeatureAll(t *testing.T) {
	for f := Feature(0); f < numFeatures; f++ {
		got, err := parseFeature(f.String())
		if err != nil || got != f {
			t.Errorf("parseFeature(%q) = %v, %v", f.String(), got, err)
		}
	}
}
