// Package telemetry is the engine's observability layer: lock-free atomic
// counters, gauges and bounded histograms that the hot paths update, and a
// point-in-time Snapshot that serialises to JSON for progress callbacks
// (mce.WithProgress), the HTTP debug endpoint (-debug-addr on mceworker and
// mcefind) and the final Stats.Telemetry record of a run.
//
// The layer is stdlib-only and allocation-free on the update path: every
// metric is a fixed-size struct of atomics, so instrumented code adds a
// nil-check plus an atomic add to the paper-faithful fast path and nothing
// at all when telemetry is disabled (a nil *Engine).
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
//
//mce:hotpath instrumentation fast path
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 for the value to stay monotonic).
//
//mce:hotpath instrumentation fast path
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that can move both ways
// (e.g. queue depth, tasks in flight).
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by n (negative to decrease).
//
//mce:hotpath instrumentation fast path
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a bounded histogram over int64 values with fixed bucket
// boundaries: bucket i counts observations v with bounds[i-1] ≤ v < bounds[i]
// (bucket 0 is v < bounds[0]); one overflow bucket counts v ≥ bounds[last].
// Observe is lock-free and allocation-free; concurrent observers are safe.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1, last is overflow
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
}

// NewHistogram builds a histogram with the given strictly increasing bucket
// boundaries. It panics on an empty or unsorted boundary list — bucket
// layouts are compile-time decisions, not runtime inputs.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket boundary")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not strictly increasing at %d: %d after %d",
				i, bounds[i], bounds[i-1]))
		}
	}
	h := &Histogram{
		bounds:  append([]int64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// NewDurationHistogram builds the standard latency histogram used for block
// analysis and task round trips: doubling buckets from 1µs to ~9 minutes
// (values are nanoseconds), which covers everything from a trivial block to
// a pathological straggler in 30 buckets.
func NewDurationHistogram() *Histogram {
	bounds := make([]int64, 30)
	b := int64(time.Microsecond)
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return NewHistogram(bounds)
}

// Observe records one value.
//
//mce:hotpath instrumentation fast path
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v < h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveSince records the elapsed time since t0 in nanoseconds.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(int64(time.Since(t0))) }

// Snapshot returns a consistent-enough copy of the histogram for reporting.
// Buckets are read individually, so a snapshot taken during concurrent
// observes may be off by the observations in flight — fine for telemetry,
// never for accounting.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:  append([]int64(nil), h.bounds...),
		Buckets: make([]int64, len(h.buckets)),
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	return s
}

// HistogramSnapshot is the JSON view of a Histogram. Buckets has one more
// entry than Bounds (the overflow bucket).
type HistogramSnapshot struct {
	Bounds  []int64 `json:"bounds"`
	Buckets []int64 `json:"buckets"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Min     int64   `json:"min"`
	Max     int64   `json:"max"`
}

// Mean returns the average observed value, 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// CountBelow returns how many observed values were < bound. The answer is
// exact when bound is one of the bucket boundaries (or no observation falls
// in the partially covered bucket); exact reports which.
func (s HistogramSnapshot) CountBelow(bound int64) (n int64, exact bool) {
	var total int64
	for i, b := range s.Bounds {
		if b > bound {
			return total, s.Buckets[i] == 0
		}
		total += s.Buckets[i]
		if b == bound {
			return total, true
		}
	}
	return total, s.Buckets[len(s.Buckets)-1] == 0
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation inside the bucket that holds the target rank, clamped to the
// observed min/max. It returns 0 when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count-1)
	var seen int64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if float64(seen+n) <= rank {
			seen += n
			continue
		}
		lo, hi := float64(s.Min), float64(s.Max)
		if i > 0 && float64(s.Bounds[i-1]) > lo {
			lo = float64(s.Bounds[i-1])
		}
		if i < len(s.Bounds) && float64(s.Bounds[i]) < hi {
			hi = float64(s.Bounds[i])
		}
		if hi < lo {
			hi = lo
		}
		frac := (rank - float64(seen)) / float64(n)
		return lo + frac*(hi-lo)
	}
	return float64(s.Max)
}
