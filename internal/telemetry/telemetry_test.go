package telemetry

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Add(5)
	g.Add(-2)
	if got := g.Load(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	g.Set(-7)
	if got := g.Load(); got != -7 {
		t.Fatalf("gauge = %d, want -7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 30})
	for _, v := range []int64{5, 9, 10, 15, 29, 30, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 2, 1, 2} // [<10, 10..19, 20..29, ≥30]
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
	if s.Count != 7 || s.Sum != 5+9+10+15+29+30+100 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	if s.Min != 5 || s.Max != 100 {
		t.Fatalf("min=%d max=%d, want 5/100", s.Min, s.Max)
	}
	if m := s.Mean(); math.Abs(m-float64(s.Sum)/7) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	s := NewHistogram([]int64{1}).Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("empty snapshot not zeroed: %+v", s)
	}
}

func TestHistogramCountBelow(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 30})
	for _, v := range []int64{1, 9, 10, 19, 25} {
		h.Observe(v)
	}
	s := h.Snapshot()
	cases := []struct {
		bound int64
		n     int64
		exact bool
	}{
		{10, 2, true},  // boundary: exact
		{20, 4, true},  // boundary: exact
		{30, 5, true},  // boundary: exact
		{15, 2, false}, // inside occupied bucket: inexact lower bound
		{40, 5, true},  // past the last bound, overflow empty: exact
	}
	for _, c := range cases {
		n, exact := s.CountBelow(c.bound)
		if n != c.n || exact != c.exact {
			t.Fatalf("CountBelow(%d) = (%d, %v), want (%d, %v)", c.bound, n, exact, c.n, c.exact)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 30, 40})
	for v := int64(0); v < 40; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if q := s.Quantile(0); q != 0 {
		t.Fatalf("q0 = %v, want 0", q)
	}
	if q := s.Quantile(1); q < 30 || q > 40 {
		t.Fatalf("q1 = %v, want within the last bucket", q)
	}
	if q := s.Quantile(0.5); q < 10 || q > 30 {
		t.Fatalf("median = %v, want near 20", q)
	}
}

func TestNewHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]int64{nil, {}, {5, 5}, {5, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bounds %v accepted", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestDurationHistogramCoversTypicalLatencies(t *testing.T) {
	h := NewDurationHistogram()
	h.Observe(int64(500 * time.Nanosecond))
	h.Observe(int64(3 * time.Millisecond))
	h.Observe(int64(2 * time.Minute))
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	// 2 minutes must land in a regular bucket, not overflow.
	if s.Buckets[len(s.Buckets)-1] != 0 {
		t.Fatalf("2m fell into overflow: %v", s.Buckets)
	}
}

func TestEngineSnapshotAndJSON(t *testing.T) {
	e := NewEngine()
	e.BlocksBuilt.Add(4)
	e.KernelNodes.Add(10)
	e.QueueDepth.Set(2)
	e.ComboPicked(5, "[Lists/Tomita]")
	e.ComboPicked(5, "[Lists/Tomita]")
	e.ComboAnalyzed(5, "[Lists/Tomita]", 3*time.Millisecond)
	e.RoundTripNs.Observe(int64(time.Millisecond))
	ins := &BlockInstr{RecursionNodes: 7, PivotSelections: 3}
	e.MergeBlockInstr(ins)
	if ins.RecursionNodes != 0 || ins.PivotSelections != 0 {
		t.Fatalf("instr not reset: %+v", ins)
	}
	e.MergeBlockInstr(nil) // nil-safe

	s := e.Snapshot()
	if s.BlocksBuilt != 4 || s.KernelNodes != 10 || s.QueueDepth != 2 {
		t.Fatalf("snapshot core fields wrong: %+v", s)
	}
	if s.RecursionNodes != 7 || s.PivotSelections != 3 {
		t.Fatalf("instr not merged: %+v", s)
	}
	if s.BlocksAnalyzed != 1 || s.BlockNs.Count != 1 {
		t.Fatalf("ComboAnalyzed not reflected: %+v", s)
	}
	if len(s.Combos) != 1 || s.Combos[0].Combo != "[Lists/Tomita]" ||
		s.Combos[0].Picks != 2 || s.Combos[0].Blocks != 1 || s.Combos[0].TotalNs != int64(3*time.Millisecond) {
		t.Fatalf("combo stats wrong: %+v", s.Combos)
	}

	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.BlocksBuilt != 4 || len(back.Combos) != 1 {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}
}

func TestComboOutOfRangeIgnored(t *testing.T) {
	e := NewEngine()
	e.ComboPicked(-1, "x")
	e.ComboPicked(NumCombos, "x")
	e.ComboAnalyzed(99, "x", time.Millisecond)
	s := e.Snapshot()
	if len(s.Combos) != 0 {
		t.Fatalf("out-of-range combo recorded: %+v", s.Combos)
	}
	// The global counters still advance: the block genuinely was analysed.
	if s.BlocksAnalyzed != 1 {
		t.Fatalf("BlocksAnalyzed = %d", s.BlocksAnalyzed)
	}
}

// TestConcurrentUpdates hammers every metric kind from parallel goroutines —
// the shape of concurrent block workers — and checks the totals. Run under
// -race this also proves the update paths are data-race-free.
func TestConcurrentUpdates(t *testing.T) {
	e := NewEngine()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ins := &BlockInstr{}
			for i := 0; i < perWorker; i++ {
				e.BlocksBuilt.Inc()
				e.QueueDepth.Add(1)
				e.ComboPicked(w%NumCombos, "combo")
				e.ComboAnalyzed(w%NumCombos, "combo", time.Duration(i)*time.Microsecond)
				e.RoundTripNs.Observe(int64(i))
				ins.RecursionNodes += 2
				ins.PivotSelections++
				e.MergeBlockInstr(ins)
				e.QueueDepth.Add(-1)
				if i%500 == 0 {
					_ = e.Snapshot() // snapshots race the updates by design
				}
			}
		}(w)
	}
	wg.Wait()
	s := e.Snapshot()
	total := int64(workers * perWorker)
	if s.BlocksBuilt != total || s.BlocksAnalyzed != total {
		t.Fatalf("counts lost updates: built=%d analysed=%d want %d", s.BlocksBuilt, s.BlocksAnalyzed, total)
	}
	if s.QueueDepth != 0 {
		t.Fatalf("queue depth = %d, want 0", s.QueueDepth)
	}
	if s.RecursionNodes != 2*total || s.PivotSelections != total {
		t.Fatalf("instr merge lost updates: %d/%d", s.RecursionNodes, s.PivotSelections)
	}
	if s.RoundTripNs.Count != total || s.BlockNs.Count != total {
		t.Fatalf("histogram lost updates: %d/%d", s.RoundTripNs.Count, s.BlockNs.Count)
	}
	var picks int64
	for _, c := range s.Combos {
		picks += c.Picks
	}
	if picks != total {
		t.Fatalf("combo picks = %d, want %d", picks, total)
	}
	if s.RoundTripNs.Min != 0 || s.RoundTripNs.Max != perWorker-1 {
		t.Fatalf("histogram min/max = %d/%d", s.RoundTripNs.Min, s.RoundTripNs.Max)
	}
}

// TestHotPathZeroAllocs is the dynamic half of the hotalloc gate for the
// instrumentation fast paths: the //mce:hotpath-annotated Counter.Inc/Add,
// Gauge.Add, Histogram.Observe and the per-block MergeBlockInstr — both the
// telemetry-disabled nil path and the enabled two-atomic-add merge — have no
// entry in .mcevet/allocbudget.json (the engine's only budgeted sites are
// the one-time ComboPicked/ComboAnalyzed label stores), so a run must
// observe zero allocations too.
func TestHotPathZeroAllocs(t *testing.T) {
	e := NewEngine()
	h := NewDurationHistogram()
	var c Counter
	var g Gauge
	ins := &BlockInstr{}
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Add(-1)
		h.Observe(17)
		ins.RecursionNodes = 5
		ins.PivotSelections = 2
		e.MergeBlockInstr(ins)
		e.MergeBlockInstr(nil) // the telemetry-disabled path
	})
	if allocs != 0 {
		t.Fatalf("telemetry fast paths allocate %v/run, want 0", allocs)
	}
}
