package telemetry

import (
	"strconv"
	"sync/atomic"
	"time"
)

// NumCombos is the number of algorithm/data-structure combinations the
// engine tracks per-combo statistics for — the 4×3 grid of the paper's
// Table 1 plus the four BitSetsParallel combos of the intra-block parallel
// mode. Indices come from mcealg.Combo.Index (structures outer, algorithms
// inner); telemetry itself stays independent of that package and learns the
// display label of each slot lazily from the caller.
const NumCombos = 16

// comboCell is one slot of the per-combo pick/timing distribution.
type comboCell struct {
	label  atomic.Pointer[string]
	picks  Counter // decision-tree selections of this combo
	blocks Counter // blocks analysed with this combo
	ns     Counter // total analysis time, nanoseconds
}

// Engine is the live metrics registry for one enumeration run or one worker
// process. All fields are safe for concurrent update; a nil *Engine means
// telemetry is disabled and every instrumentation site must be guarded by a
// nil-check, keeping the paper-faithful fast path allocation-free.
//
// One Engine type serves every role (coordinator, local pool, remote
// worker); fields irrelevant to a role simply stay zero and are easy to
// read as such in the snapshot.
type Engine struct {
	// Decomposition (internal/core).
	BlocksBuilt        Counter // second-level blocks constructed
	KernelNodes        Counter // total kernel entries across blocks
	BorderNodes        Counter // total border entries across blocks
	VisitedNodes       Counter // total visited entries across blocks
	LevelsCompleted    Counter // first-level recursion levels finished
	CliquesFound       Counter // cliques emitted by block analysis (pre-filter)
	HubCliquesFiltered Counter // hub-side cliques dropped by the Lemma 1 filter
	FilterNs           Counter // total Lemma 1 filter time, nanoseconds
	QueueDepth         Gauge   // blocks queued for analysis right now

	// Block analysis (internal/core executors, internal/cluster worker).
	BlocksAnalyzed Counter // blocks fully analysed

	// Algorithm internals (internal/mcealg, merged per block).
	RecursionNodes  Counter // MCE recursion tree nodes expanded
	PivotSelections Counter // pivot choices made

	// Cluster coordinator (internal/cluster.Client).
	TasksInFlight  Gauge   // tasks currently on the wire or being analysed
	TaskRetries    Counter // transport failures that requeued a block
	Reconnects     Counter // dead worker connections revived
	PoisonTasks    Counter // blocks that exhausted their retry budget
	CorruptResults Counter // checksum mismatches detected (either direction)
	BytesSent      Counter // estimated payload bytes shipped
	BytesReceived  Counter // estimated payload bytes received

	// Straggler resilience (internal/cluster hedged dispatch + health).
	HedgedDispatches   Counter // speculative duplicate dispatches issued
	HedgeWins          Counter // blocks whose speculative copy finished first
	HedgeWasted        Counter // duplicate results discarded by first-wins dedup
	WorkersQuarantined Counter // health-scoring quarantine entries
	WorkerProbes       Counter // probe dispatches to quarantined workers

	// Resource guardrails (internal/resguard, internal/runlog).
	BackpressurePauses Counter // dispatches paused by the memory guard
	BackpressureNs     Counter // total time spent paused, nanoseconds
	CheckpointDegraded Gauge   // 1 once checkpointing was disabled mid-run

	// Cluster worker (internal/cluster.Worker).
	TasksServed Counter // tasks answered by this worker
	TaskErrors  Counter // tasks answered with an in-band application error
	TaskPanics  Counter // block analyses that panicked (isolated in-band)

	// Crash-safe checkpointing (internal/runlog).
	CheckpointRecords       Counter // journal records appended this session
	CheckpointBytes         Counter // journal bytes appended this session
	CheckpointReplayNs      Counter // time spent replaying the journal on open
	CheckpointBlocksSkipped Counter // journaled-done blocks served from segments instead of re-analysed

	// Query serving (cmd/mced, internal/cliqdb).
	QueriesAdmitted    Counter // requests past admission control
	QueriesShed        Counter // requests rejected with 429 by admission control
	QueriesTimedOut    Counter // admitted requests that hit their deadline (504)
	CacheHits          Counter // result-cache hits
	CacheMisses        Counter // result-cache misses (query executed)
	SingleflightShared Counter // callers that piggybacked on an in-flight query
	DegradedServes     Counter // queries answered from a stale index during rebuild
	IndexRebuilds      Counter // index self-heals / explicit rebuilds completed

	// BlockNs is the per-block analysis wall-time distribution; RoundTripNs
	// is the coordinator-side task round-trip distribution (send → analyse →
	// receive, including simulated link costs); QueryNs is the admitted-query
	// latency distribution on the serving path.
	BlockNs     *Histogram
	RoundTripNs *Histogram
	QueryNs     *Histogram

	combos    [NumCombos]comboCell
	endpoints [NumEndpoints]endpointCell
}

// NewEngine returns a ready-to-use engine.
func NewEngine() *Engine {
	return &Engine{
		BlockNs:     NewDurationHistogram(),
		RoundTripNs: NewDurationHistogram(),
		QueryNs:     NewDurationHistogram(),
	}
}

// ComboPicked records one decision-tree (or fixed-combo) selection. label is
// the display name ("[Lists/Tomita]"); it is stored on first use so the
// snapshot can name the slot without this package importing mcealg.
//
//mce:hotpath per-block combo accounting
func (e *Engine) ComboPicked(i int, label string) {
	if i < 0 || i >= NumCombos {
		return
	}
	c := &e.combos[i]
	if c.label.Load() == nil {
		l := label
		c.label.Store(&l)
	}
	c.picks.Inc()
}

// ComboAnalyzed records one completed block analysis with the given combo:
// the per-combo block count and total time, the global BlocksAnalyzed
// counter and the BlockNs histogram.
//
//mce:hotpath per-block combo accounting
func (e *Engine) ComboAnalyzed(i int, label string, d time.Duration) {
	e.BlocksAnalyzed.Inc()
	e.BlockNs.Observe(int64(d))
	if i < 0 || i >= NumCombos {
		return
	}
	c := &e.combos[i]
	if c.label.Load() == nil {
		l := label
		c.label.Store(&l)
	}
	c.blocks.Inc()
	c.ns.Add(int64(d))
}

// BlockInstr accumulates the single-threaded per-block algorithm counters
// (plain fields, no atomics) so the MCE recursion itself never touches
// shared state; the executor merges it into the engine once per block.
type BlockInstr struct {
	RecursionNodes  int64
	PivotSelections int64
}

// MergeBlockInstr folds one block's counters into the shared engine (two
// atomic adds) and resets ins for reuse.
//
//mce:hotpath per-block counter merge
func (e *Engine) MergeBlockInstr(ins *BlockInstr) {
	if ins == nil {
		return
	}
	e.RecursionNodes.Add(ins.RecursionNodes)
	e.PivotSelections.Add(ins.PivotSelections)
	*ins = BlockInstr{}
}

// ComboStat is one row of the per-combo distribution in a Snapshot.
type ComboStat struct {
	Combo   string `json:"combo"`
	Picks   int64  `json:"picks"`
	Blocks  int64  `json:"blocks"`
	TotalNs int64  `json:"total_ns"`
}

// Snapshot is a point-in-time JSON view of an Engine. Field semantics match
// the Engine field of the same name; Combos lists only slots that were ever
// picked or analysed.
type Snapshot struct {
	BlocksBuilt        int64 `json:"blocks_built"`
	KernelNodes        int64 `json:"kernel_nodes"`
	BorderNodes        int64 `json:"border_nodes"`
	VisitedNodes       int64 `json:"visited_nodes"`
	LevelsCompleted    int64 `json:"levels_completed"`
	CliquesFound       int64 `json:"cliques_found"`
	HubCliquesFiltered int64 `json:"hub_cliques_filtered"`
	FilterNs           int64 `json:"filter_ns"`
	QueueDepth         int64 `json:"queue_depth"`

	BlocksAnalyzed int64 `json:"blocks_analyzed"`

	RecursionNodes  int64 `json:"recursion_nodes"`
	PivotSelections int64 `json:"pivot_selections"`

	TasksInFlight  int64 `json:"tasks_in_flight"`
	TaskRetries    int64 `json:"task_retries"`
	Reconnects     int64 `json:"reconnects"`
	PoisonTasks    int64 `json:"poison_tasks"`
	CorruptResults int64 `json:"corrupt_results"`
	BytesSent      int64 `json:"bytes_sent"`
	BytesReceived  int64 `json:"bytes_received"`

	HedgedDispatches   int64 `json:"hedged_dispatches"`
	HedgeWins          int64 `json:"hedge_wins"`
	HedgeWasted        int64 `json:"hedge_wasted"`
	WorkersQuarantined int64 `json:"workers_quarantined"`
	WorkerProbes       int64 `json:"worker_probes"`

	BackpressurePauses int64 `json:"backpressure_pauses"`
	BackpressureNs     int64 `json:"backpressure_ns"`
	CheckpointDegraded int64 `json:"checkpoint_degraded"`

	TasksServed int64 `json:"tasks_served"`
	TaskErrors  int64 `json:"task_errors"`
	TaskPanics  int64 `json:"task_panics"`

	CheckpointRecords       int64 `json:"checkpoint_records"`
	CheckpointBytes         int64 `json:"checkpoint_bytes"`
	CheckpointReplayNs      int64 `json:"checkpoint_replay_ns"`
	CheckpointBlocksSkipped int64 `json:"checkpoint_blocks_skipped"`

	QueriesAdmitted    int64 `json:"queries_admitted"`
	QueriesShed        int64 `json:"queries_shed"`
	QueriesTimedOut    int64 `json:"queries_timed_out"`
	CacheHits          int64 `json:"cache_hits"`
	CacheMisses        int64 `json:"cache_misses"`
	SingleflightShared int64 `json:"singleflight_shared"`
	DegradedServes     int64 `json:"degraded_serves"`
	IndexRebuilds      int64 `json:"index_rebuilds"`

	BlockNs     HistogramSnapshot `json:"block_ns"`
	RoundTripNs HistogramSnapshot `json:"round_trip_ns"`
	QueryNs     HistogramSnapshot `json:"query_ns"`

	Combos    []ComboStat    `json:"combos,omitempty"`
	Endpoints []EndpointStat `json:"endpoints,omitempty"`
}

// Snapshot captures the engine's current state. It is safe to call while
// the run is in flight; counters are read individually, so totals may be
// off by the updates racing the read — fine for progress reporting.
func (e *Engine) Snapshot() Snapshot {
	s := Snapshot{
		BlocksBuilt:        e.BlocksBuilt.Load(),
		KernelNodes:        e.KernelNodes.Load(),
		BorderNodes:        e.BorderNodes.Load(),
		VisitedNodes:       e.VisitedNodes.Load(),
		LevelsCompleted:    e.LevelsCompleted.Load(),
		CliquesFound:       e.CliquesFound.Load(),
		HubCliquesFiltered: e.HubCliquesFiltered.Load(),
		FilterNs:           e.FilterNs.Load(),
		QueueDepth:         e.QueueDepth.Load(),
		BlocksAnalyzed:     e.BlocksAnalyzed.Load(),
		RecursionNodes:     e.RecursionNodes.Load(),
		PivotSelections:    e.PivotSelections.Load(),
		TasksInFlight:      e.TasksInFlight.Load(),
		TaskRetries:        e.TaskRetries.Load(),
		Reconnects:         e.Reconnects.Load(),
		PoisonTasks:        e.PoisonTasks.Load(),
		CorruptResults:     e.CorruptResults.Load(),
		BytesSent:          e.BytesSent.Load(),
		BytesReceived:      e.BytesReceived.Load(),
		HedgedDispatches:   e.HedgedDispatches.Load(),
		HedgeWins:          e.HedgeWins.Load(),
		HedgeWasted:        e.HedgeWasted.Load(),
		WorkersQuarantined: e.WorkersQuarantined.Load(),
		WorkerProbes:       e.WorkerProbes.Load(),
		BackpressurePauses: e.BackpressurePauses.Load(),
		BackpressureNs:     e.BackpressureNs.Load(),
		CheckpointDegraded: e.CheckpointDegraded.Load(),
		TasksServed:        e.TasksServed.Load(),
		TaskErrors:         e.TaskErrors.Load(),
		TaskPanics:         e.TaskPanics.Load(),

		CheckpointRecords:       e.CheckpointRecords.Load(),
		CheckpointBytes:         e.CheckpointBytes.Load(),
		CheckpointReplayNs:      e.CheckpointReplayNs.Load(),
		CheckpointBlocksSkipped: e.CheckpointBlocksSkipped.Load(),
		QueriesAdmitted:         e.QueriesAdmitted.Load(),
		QueriesShed:             e.QueriesShed.Load(),
		QueriesTimedOut:         e.QueriesTimedOut.Load(),
		CacheHits:               e.CacheHits.Load(),
		CacheMisses:             e.CacheMisses.Load(),
		SingleflightShared:      e.SingleflightShared.Load(),
		DegradedServes:          e.DegradedServes.Load(),
		IndexRebuilds:           e.IndexRebuilds.Load(),

		BlockNs:     e.BlockNs.Snapshot(),
		RoundTripNs: e.RoundTripNs.Snapshot(),
		QueryNs:     e.QueryNs.Snapshot(),
	}
	for i := range e.combos {
		c := &e.combos[i]
		picks, blocks := c.picks.Load(), c.blocks.Load()
		if picks == 0 && blocks == 0 {
			continue
		}
		name := "combo-" + strconv.Itoa(i)
		if l := c.label.Load(); l != nil {
			name = *l
		}
		s.Combos = append(s.Combos, ComboStat{Combo: name, Picks: picks, Blocks: blocks, TotalNs: c.ns.Load()})
	}
	for i := range e.endpoints {
		c := &e.endpoints[i]
		requests := c.requests.Load()
		if requests == 0 {
			continue
		}
		name := "endpoint-" + strconv.Itoa(i)
		if l := c.label.Load(); l != nil {
			name = *l
		}
		s.Endpoints = append(s.Endpoints, EndpointStat{
			Endpoint: name,
			Requests: requests,
			Errors:   c.errors.Load(),
			TotalNs:  c.ns.Load(),
		})
	}
	return s
}
