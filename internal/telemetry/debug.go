package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"time"
)

// ServeDebug starts an HTTP debug server on addr (":0" picks an ephemeral
// port) and returns the bound address plus a stop function. It serves:
//
//	/debug/vars    — an expvar-style JSON document: the live telemetry
//	                 Snapshot from snap, plus process runtime stats
//	/debug/pprof/  — the standard net/http/pprof profile index (heap,
//	                 goroutine, profile, trace, ...)
//
// The endpoint is opt-in (mceworker/mcefind -debug-addr) and unauthenticated;
// bind it to localhost or a trusted network, as with any pprof server.
//
//lint:ignore ctxplumb the bind is instantaneous and the call returns at once; lifecycle is owned by the returned stop function, the net/http.Server close-to-stop idiom
func ServeDebug(addr string, snap func() Snapshot) (boundAddr string, stop func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: debug listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		payload := map[string]any{
			"cmdline":   os.Args,
			"telemetry": snap(),
			"runtime": map[string]any{
				"goroutines":     runtime.NumGoroutine(),
				"gomaxprocs":     runtime.GOMAXPROCS(0),
				"heap_alloc":     ms.HeapAlloc,
				"heap_objects":   ms.HeapObjects,
				"total_alloc":    ms.TotalAlloc,
				"num_gc":         ms.NumGC,
				"pause_total_ns": ms.PauseTotalNs,
			},
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(payload)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	// The server goroutine's lifetime is owned by the returned stop
	// function: srv.Close tears down the listener and Serve returns.
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
