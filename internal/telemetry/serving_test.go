package telemetry

import (
	"testing"
	"time"
)

func TestEndpointObserved(t *testing.T) {
	e := NewEngine()
	e.EndpointObserved(0, "cliques-of", 2*time.Millisecond, 200)
	e.EndpointObserved(0, "cliques-of", 3*time.Millisecond, 200)
	e.EndpointObserved(1, "top-k", time.Millisecond, 500)
	e.EndpointObserved(-1, "bogus", time.Millisecond, 200)           // ignored slot
	e.EndpointObserved(NumEndpoints, "bogus", time.Millisecond, 200) // ignored slot

	s := e.Snapshot()
	if len(s.Endpoints) != 2 {
		t.Fatalf("snapshot has %d endpoints, want 2", len(s.Endpoints))
	}
	a, b := s.Endpoints[0], s.Endpoints[1]
	if a.Endpoint != "cliques-of" || a.Requests != 2 || a.Errors != 0 || a.TotalNs != int64(5*time.Millisecond) {
		t.Fatalf("cliques-of stat = %+v", a)
	}
	if b.Endpoint != "top-k" || b.Requests != 1 || b.Errors != 1 {
		t.Fatalf("top-k stat = %+v", b)
	}
	// Out-of-range slots still land in the global latency histogram.
	if s.QueryNs.Count != 5 {
		t.Fatalf("QueryNs.Count = %d, want 5", s.QueryNs.Count)
	}
	if len(s.Combos) != 0 {
		t.Fatalf("unexpected combo rows: %+v", s.Combos)
	}
}

func TestEndpointUnusedSlotsOmitted(t *testing.T) {
	e := NewEngine()
	if got := e.Snapshot().Endpoints; len(got) != 0 {
		t.Fatalf("fresh engine has endpoint rows: %+v", got)
	}
}
