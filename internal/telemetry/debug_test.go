package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

func TestServeDebugVarsAndPprof(t *testing.T) {
	e := NewEngine()
	e.BlocksBuilt.Add(3)
	e.TasksServed.Add(9)

	addr, stop, err := ServeDebug("127.0.0.1:0", e.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) (int, []byte) {
		t.Helper()
		cli := &http.Client{Timeout: 5 * time.Second}
		resp, err := cli.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, body
	}

	code, body := get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var doc struct {
		Telemetry Snapshot       `json:"telemetry"`
		Runtime   map[string]any `json:"runtime"`
		Cmdline   []string       `json:"cmdline"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("vars is not JSON: %v\n%s", err, body)
	}
	if doc.Telemetry.BlocksBuilt != 3 || doc.Telemetry.TasksServed != 9 {
		t.Fatalf("vars snapshot wrong: %+v", doc.Telemetry)
	}
	if doc.Runtime["goroutines"] == nil || len(doc.Cmdline) == 0 {
		t.Fatalf("vars misses runtime/cmdline sections: %s", body)
	}

	// Live updates show up on the next poll.
	e.BlocksBuilt.Inc()
	_, body = get("/debug/vars")
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Telemetry.BlocksBuilt != 4 {
		t.Fatalf("vars is stale: %+v", doc.Telemetry)
	}

	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if code, _ := get("/debug/pprof/goroutine?debug=1"); code != http.StatusOK {
		t.Fatalf("goroutine profile status %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof cmdline status %d", code)
	}

	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	// After stop the listener is gone.
	cli := &http.Client{Timeout: time.Second}
	if _, err := cli.Get("http://" + addr + "/debug/vars"); err == nil {
		t.Fatal("server still answering after stop")
	}
}

func TestServeDebugBadAddr(t *testing.T) {
	if _, _, err := ServeDebug("256.256.256.256:99999", NewEngine().Snapshot); err == nil {
		t.Fatal("bad address accepted")
	}
}
