package telemetry

// Per-endpoint serving statistics for the query daemon (cmd/mced). The
// design mirrors the per-combo cells: a fixed array of atomic slots indexed
// by a small integer the caller owns, with the display label learned lazily
// on first use, so the update path is two atomic adds and the package never
// imports the server.

import (
	"sync/atomic"
	"time"
)

// NumEndpoints is the number of per-endpoint statistic slots the engine
// tracks. The daemon assigns one index per HTTP endpoint; slots it never
// touches stay zero and are omitted from the snapshot.
const NumEndpoints = 8

// endpointCell is one slot of the per-endpoint request/latency distribution.
type endpointCell struct {
	label    atomic.Pointer[string]
	requests Counter // requests that reached the handler (admitted)
	errors   Counter // responses with a 5xx status
	ns       Counter // total handler time, nanoseconds
}

// EndpointObserved records one completed request on endpoint slot i: the
// per-endpoint request count, error count (status ≥ 500) and total time,
// plus the global QueryNs latency histogram. label is the display name
// ("cliques-of"); it is stored on first use.
//
//mce:hotpath per-request serving accounting
func (e *Engine) EndpointObserved(i int, label string, d time.Duration, status int) {
	e.QueryNs.Observe(int64(d))
	if i < 0 || i >= NumEndpoints {
		return
	}
	c := &e.endpoints[i]
	if c.label.Load() == nil {
		l := label
		c.label.Store(&l)
	}
	c.requests.Inc()
	if status >= 500 {
		c.errors.Inc()
	}
	c.ns.Add(int64(d))
}

// EndpointStat is one row of the per-endpoint distribution in a Snapshot.
type EndpointStat struct {
	Endpoint string `json:"endpoint"`
	Requests int64  `json:"requests"`
	Errors   int64  `json:"errors"`
	TotalNs  int64  `json:"total_ns"`
}
