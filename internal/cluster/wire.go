// Package cluster is the distributed substrate of the reproduction: the
// paper ran block analysis on a 10-node OpenMPI cluster (§6.1); here a
// coordinator (Client) ships blocks to worker processes over TCP using
// encoding/gob, collects their cliques, requeues work from failed workers,
// and can simulate link latency and bandwidth so that the communication
// overhead trends of Figures 7–8 are exercised on a single machine.
//
// The protocol is a plain request/response stream per connection: the
// coordinator sends blockTask messages and the worker answers one
// blockResult per task, in order. Workers are stateless, so any task can be
// re-sent to any worker — that is what makes the failure handling trivial
// and matches the paper's "blocks are processed independently" design.
package cluster

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"

	"mce/internal/decomp"
	"mce/internal/graph"
	"mce/internal/mcealg"
)

// protocolVersion guards against mismatched coordinator/worker builds.
// Version 2 added the CRC-32 payload checksums (Sum fields) and the
// Corrupt verdict, so link-level byte corruption is detected and retried
// instead of silently producing a wrong clique set. Version 3 added the
// stable block identity (Level, Plan) to both directions, checksummed and
// echoed, so a checkpointing coordinator can journal exactly which block a
// result belongs to — the identity a resumed run uses to skip it.
const protocolVersion = 3

// hello is the first message on every connection, sent by the coordinator.
type hello struct {
	Version int
	// Compress asks the worker to switch the remainder of the stream to
	// DEFLATE in both directions after the handshake. Block tasks are
	// mostly small integers, so compression trades CPU for the 3–5×
	// bandwidth reduction that matters on the slow links the latency
	// simulation models.
	Compress bool
}

// helloAck is the worker's reply to hello.
type helloAck struct {
	Version  int
	Compress bool
}

// blockTask carries one second-level block and the combo to run on it.
type blockTask struct {
	// ID echoes back in the matching blockResult.
	ID int
	// Level and Plan are the block's stable identity in the coordinator's
	// run plan (hub-recursion level and index within that level's
	// deterministic block plan). They are echoed in the result so a
	// checkpointing coordinator can journal completions under an identity
	// that survives restarts; both zero for non-checkpointed runs.
	Level, Plan int
	// Nodes is the block-local node count; Edges lists block-local
	// undirected edges.
	Nodes int32
	Edges [][2]int32
	// Kernel, Border and Visited are block-local node classes.
	Kernel, Border, Visited []int32
	// Orig maps block-local IDs to the coordinator's global IDs; cliques
	// come back in global IDs.
	Orig []int32
	// Alg and Struct encode the mcealg.Combo chosen by the coordinator's
	// decision tree.
	Alg, Struct uint8
	// Sum is a CRC-32 (IEEE) over every other field. gob has no integrity
	// check of its own, so a flipped byte that still decodes would
	// otherwise corrupt the result silently; the worker answers a
	// mismatch with Corrupt instead of analysing garbage.
	Sum uint32
}

// blockResult is the worker's answer to one blockTask.
type blockResult struct {
	ID int
	// Level and Plan echo the task's stable block identity.
	Level, Plan int
	// Cliques holds the block's maximal cliques in global node IDs.
	Cliques [][]int32
	// Err is a non-empty string when BLOCK-ANALYSIS failed; such failures
	// are deterministic (e.g. an oversized Matrix request), so the
	// coordinator does not retry them.
	Err string
	// Corrupt reports that the task arrived with a checksum mismatch.
	// Unlike Err it is a transport-level verdict: the coordinator treats
	// it like a failed connection and requeues the block.
	Corrupt bool
	// Sum is a CRC-32 (IEEE) over every other field, mirroring
	// blockTask.Sum for the return path.
	Sum uint32
}

// taskFromBlock flattens a decomp.Block for the wire. level and plan carry
// the block's stable checkpoint identity (both zero when the run is not
// checkpointed).
func taskFromBlock(id int, level, plan int, b *decomp.Block, combo mcealg.Combo) blockTask {
	edges := b.Graph.Edges()
	wire := make([][2]int32, len(edges))
	for i, e := range edges {
		wire[i] = [2]int32{e.U, e.V}
	}
	t := blockTask{
		ID:      id,
		Level:   level,
		Plan:    plan,
		Nodes:   int32(b.Graph.N()),
		Edges:   wire,
		Kernel:  b.Kernel,
		Border:  b.Border,
		Visited: b.Visited,
		Orig:    b.Orig,
		Alg:     uint8(combo.Alg),
		Struct:  uint8(combo.Struct),
	}
	t.Sum = t.payloadSum()
	return t
}

// sumInt32 feeds one little-endian int32 into a running CRC.
func sumInt32(h hash.Hash32, v int32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(v))
	h.Write(buf[:])
}

// payloadSum computes the checksum over every field except Sum itself.
func (t *blockTask) payloadSum() uint32 {
	h := crc32.NewIEEE()
	sumInt32(h, int32(t.ID))
	sumInt32(h, int32(t.Level))
	sumInt32(h, int32(t.Plan))
	sumInt32(h, t.Nodes)
	sumInt32(h, int32(len(t.Edges)))
	for _, e := range t.Edges {
		sumInt32(h, e[0])
		sumInt32(h, e[1])
	}
	for _, class := range [][]int32{t.Kernel, t.Border, t.Visited, t.Orig} {
		sumInt32(h, int32(len(class)))
		for _, v := range class {
			sumInt32(h, v)
		}
	}
	sumInt32(h, int32(t.Alg))
	sumInt32(h, int32(t.Struct))
	return h.Sum32()
}

// payloadSum computes the checksum over every field except Sum itself.
func (r *blockResult) payloadSum() uint32 {
	h := crc32.NewIEEE()
	sumInt32(h, int32(r.ID))
	sumInt32(h, int32(r.Level))
	sumInt32(h, int32(r.Plan))
	sumInt32(h, int32(len(r.Cliques)))
	for _, c := range r.Cliques {
		sumInt32(h, int32(len(c)))
		for _, v := range c {
			sumInt32(h, v)
		}
	}
	h.Write([]byte(r.Err))
	if r.Corrupt {
		h.Write([]byte{1})
	}
	return h.Sum32()
}

// blockFromTask reconstructs the block and combo on the worker side.
func blockFromTask(t *blockTask) (*decomp.Block, mcealg.Combo, error) {
	if t.Nodes < 0 || len(t.Orig) != int(t.Nodes) {
		return nil, mcealg.Combo{}, fmt.Errorf("cluster: malformed task %d: %d nodes, %d orig entries", t.ID, t.Nodes, len(t.Orig))
	}
	gb := graph.NewBuilder(int(t.Nodes))
	for _, e := range t.Edges {
		gb.AddEdge(e[0], e[1])
	}
	b := &decomp.Block{
		Graph:   gb.Build(),
		Orig:    t.Orig,
		Kernel:  t.Kernel,
		Border:  t.Border,
		Visited: t.Visited,
	}
	combo := mcealg.Combo{Alg: mcealg.Algorithm(t.Alg), Struct: mcealg.Structure(t.Struct)}
	return b, combo, nil
}

// wireSize estimates the task's on-wire footprint in bytes for the
// bandwidth simulation: 8 bytes per edge plus 4 per node-class entry.
func (t *blockTask) wireSize() int64 {
	return int64(8*len(t.Edges) + 4*(len(t.Kernel)+len(t.Border)+len(t.Visited)+len(t.Orig)) + 32)
}

// wireSize estimates the result's on-wire footprint in bytes.
func (r *blockResult) wireSize() int64 {
	total := int64(16)
	for _, c := range r.Cliques {
		total += int64(4*len(c) + 8)
	}
	return total
}
