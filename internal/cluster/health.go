package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mce/internal/telemetry"
)

// Health scoring tunables. The EWMA weight favours recent behaviour (a
// recovered worker sheds its bad history in a few round trips); the
// quarantine thresholds are deliberately lazy — transport failures already
// retire connections, so quarantine exists to stop the retire→redial→fail
// flap of a sick-but-reachable worker, not to react to one bad task.
const (
	healthAlpha = 0.3 // EWMA weight of the newest observation

	// A worker is quarantined when it is failing consecutively or its
	// error EWMA says most recent tasks failed — unless it is the last
	// non-quarantined worker, which always keeps serving (liveness).
	quarantineConsecFails = 3
	quarantineErrScore    = 0.7

	// Quarantine cooldown: first entry waits the base, every failed probe
	// doubles it up to the cap.
	quarantineBaseCooldown = 250 * time.Millisecond
	quarantineMaxCooldown  = 5 * time.Second

	// Dispatch weighting: a healthy-but-flaky worker (error EWMA above the
	// threshold) pays a pre-dispatch penalty proportional to its error
	// score, so cleaner workers drain the queue first.
	penaltyErrThreshold = 0.2
	penaltyUnit         = 250 * time.Millisecond
	penaltyMax          = time.Second

	// probeHold is how long sibling connections of an address stand back
	// while one connection's probe is in flight.
	probeHold = 25 * time.Millisecond
)

// workerState is the quarantine state machine: healthy ⇄ quarantined →
// probing → (healthy | quarantined with doubled cooldown).
type workerState int32

const (
	stateHealthy workerState = iota
	stateQuarantined
	stateProbing
)

func (s workerState) String() string {
	switch s {
	case stateQuarantined:
		return "quarantined"
	case stateProbing:
		return "probing"
	default:
		return "healthy"
	}
}

// workerHealth is one address's score card. All fields are guarded by the
// owning registry's mutex — health updates are one tiny critical section
// per round trip, far off the hot path.
type workerHealth struct {
	addr        string
	latEWMA     float64 // round-trip EWMA, nanoseconds; 0 until first success
	errEWMA     float64 // failure-rate EWMA in [0,1]
	corrupt     int64   // corrupt verdicts (either direction) on this address
	consecFails int
	state       workerState
	until       time.Time     // quarantine release time
	cooldown    time.Duration // current quarantine cooldown
	quarantines int64
	probes      int64
}

// healthRegistry scores every worker address a client talks to. It is
// shared by all connections (and reconnections) to an address, so a
// flapping worker keeps its record across retire/redial cycles.
type healthRegistry struct {
	met *telemetry.Engine

	mu     sync.Mutex
	byAddr map[string]*workerHealth
}

func newHealthRegistry(met *telemetry.Engine) *healthRegistry {
	return &healthRegistry{met: met, byAddr: make(map[string]*workerHealth)}
}

// touch pre-registers an address so health reports list every dialled
// worker, including ones that never completed a task.
func (r *healthRegistry) touch(addr string) {
	r.mu.Lock()
	r.get(addr)
	r.mu.Unlock()
}

// get returns the (created on demand) score card for addr. Callers hold
// r.mu.
func (r *healthRegistry) get(addr string) *workerHealth {
	h, ok := r.byAddr[addr]
	if !ok {
		h = &workerHealth{addr: addr}
		r.byAddr[addr] = h
	}
	return h
}

// healthyOthers counts non-quarantined addresses other than addr. Callers
// hold r.mu. (Map iteration order is irrelevant: the result is a count.)
func (r *healthRegistry) healthyOthers(addr string) int {
	n := 0
	for a, h := range r.byAddr {
		if a != addr && h.state != stateQuarantined {
			n++
		}
	}
	return n
}

// success records one completed round trip and re-admits a probing worker.
func (r *healthRegistry) success(addr string, rtt time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.get(addr)
	h.consecFails = 0
	if h.latEWMA == 0 {
		h.latEWMA = float64(rtt)
	} else {
		h.latEWMA = healthAlpha*float64(rtt) + (1-healthAlpha)*h.latEWMA
	}
	h.errEWMA *= 1 - healthAlpha
	if h.state != stateHealthy {
		// A successful probe (or a success racing the quarantine decision)
		// re-admits the worker and forgives the cooldown escalation.
		h.state = stateHealthy
		h.cooldown = 0
	}
}

// failure records one failed round trip (corrupt marks an in-sync corrupt
// verdict rather than a transport death) and drives the quarantine state
// machine.
func (r *healthRegistry) failure(addr string, corrupt bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.get(addr)
	h.consecFails++
	h.errEWMA = healthAlpha + (1-healthAlpha)*h.errEWMA
	if corrupt {
		h.corrupt++
	}
	switch h.state {
	case stateProbing:
		// Failed probe: back to quarantine with a doubled cooldown.
		if r.healthyOthers(addr) > 0 {
			r.quarantineLocked(h)
		} else {
			h.state = stateHealthy // last worker standing keeps serving
		}
	case stateHealthy:
		if (h.consecFails >= quarantineConsecFails || h.errEWMA >= quarantineErrScore) &&
			r.healthyOthers(addr) > 0 {
			r.quarantineLocked(h)
		}
	}
}

// quarantineLocked moves h into quarantine, escalating its cooldown.
// Callers hold r.mu.
func (r *healthRegistry) quarantineLocked(h *workerHealth) {
	if h.cooldown == 0 {
		h.cooldown = quarantineBaseCooldown
	} else {
		h.cooldown *= 2
		if h.cooldown > quarantineMaxCooldown {
			h.cooldown = quarantineMaxCooldown
		}
	}
	h.state = stateQuarantined
	h.until = time.Now().Add(h.cooldown)
	h.quarantines++
	if r.met != nil {
		r.met.WorkersQuarantined.Inc()
	}
}

// gate is the dispatch-side admission check for one connection to addr. It
// returns how long the caller should wait before pulling work (0 = go
// now), whether this dispatch is a re-admission probe, and whether the
// caller must consult the gate again after waiting. Quarantine and
// probe-hold waits recheck (the state can change while waiting); the
// flaky-worker penalty does not — it is a one-shot delay before
// dispatching, and only dispatching can earn the successes that decay the
// error score, so a recheck there would spin forever. The caller reports a
// probe's outcome through success/failure like any other task.
func (r *healthRegistry) gate(addr string, now time.Time) (wait time.Duration, probe, recheck bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.get(addr)
	switch h.state {
	case stateQuarantined:
		if now.Before(h.until) {
			return h.until.Sub(now), false, true
		}
		h.state = stateProbing
		h.probes++
		if r.met != nil {
			r.met.WorkerProbes.Inc()
		}
		return 0, true, false
	case stateProbing:
		// A sibling connection's probe is in flight; stand back briefly.
		return probeHold, false, true
	default:
		if h.errEWMA > penaltyErrThreshold {
			p := time.Duration(h.errEWMA * float64(penaltyUnit) / penaltyErrThreshold)
			if p > penaltyMax {
				p = penaltyMax
			}
			return p, false, false
		}
		return 0, false, false
	}
}

// WorkerHealthInfo is one address's row in a HealthReport.
type WorkerHealthInfo struct {
	Addr string
	// State is "healthy", "quarantined" or "probing".
	State string
	// Score is 1−errEWMA: 1.0 for a clean worker, toward 0 as recent tasks
	// fail.
	Score float64
	// LatencyEWMA is the smoothed round-trip time of recent tasks.
	LatencyEWMA time.Duration
	// CorruptResults counts corrupt verdicts attributed to this address.
	CorruptResults int64
	// ConsecutiveFailures is the current failure streak.
	ConsecutiveFailures int
	// Quarantines counts how many times the address entered quarantine.
	Quarantines int64
	// Probes counts re-admission probes dispatched to the address.
	Probes int64
}

// HealthReport is a DialReport-style summary of per-worker health: which
// workers the run leaned on, which it had to bench, and why. Rows are
// ordered by address.
type HealthReport struct {
	Workers []WorkerHealthInfo
}

// Degraded reports whether any worker is currently benched (quarantined or
// still proving itself) or has ever been quarantined.
func (r HealthReport) Degraded() bool {
	for _, w := range r.Workers {
		if w.State != stateHealthy.String() || w.Quarantines > 0 {
			return true
		}
	}
	return false
}

// String renders the one-line-per-worker summary mcefind prints.
func (r HealthReport) String() string {
	if len(r.Workers) == 0 {
		return "no workers"
	}
	var b strings.Builder
	for i, w := range r.Workers {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s: %s score=%.2f rtt~%s corrupt=%d quarantines=%d probes=%d",
			w.Addr, w.State, w.Score, w.LatencyEWMA.Round(time.Millisecond),
			w.CorruptResults, w.Quarantines, w.Probes)
	}
	return b.String()
}

// report snapshots the registry, ordered by address.
func (r *healthRegistry) report() HealthReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	addrs := make([]string, 0, len(r.byAddr))
	for a := range r.byAddr {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	rep := HealthReport{Workers: make([]WorkerHealthInfo, 0, len(addrs))}
	for _, a := range addrs {
		h := r.byAddr[a]
		rep.Workers = append(rep.Workers, WorkerHealthInfo{
			Addr:                a,
			State:               h.state.String(),
			Score:               1 - h.errEWMA,
			LatencyEWMA:         time.Duration(h.latEWMA),
			CorruptResults:      h.corrupt,
			ConsecutiveFailures: h.consecFails,
			Quarantines:         h.quarantines,
			Probes:              h.probes,
		})
	}
	return rep
}
