package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"net"
	"sort"
	"testing"
	"time"

	"mce/internal/cluster/faultconn"
	"mce/internal/gen"
	"mce/internal/telemetry"
)

// sortedDigest hashes the sorted clique-membership keys of a batch result —
// the canonical "sorted output digest" two runs are compared by. Block
// order, worker assignment and hedging races must never change it.
func sortedDigest(t *testing.T, out [][][]int32) string {
	t.Helper()
	set := cliqueSet(t, out)
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// startSlowWorker launches one worker whose every post-handshake read and
// write stalls for delay — a deterministic straggler, not a dead peer: it
// answers correctly, just far too late.
func startSlowWorker(t *testing.T, delay time.Duration) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w := &Worker{DrainTimeout: 100 * time.Millisecond}
	go func() {
		_ = w.Serve(faultconn.Listener(ln, faultconn.Options{
			ReadDelay:  delay,
			WriteDelay: delay,
			SkipOps:    6, // let the handshake through
		}))
	}()
	t.Cleanup(func() { _ = w.Close() })
	return ln.Addr().String()
}

// TestChaosStragglerHedging is the acceptance test for hedged dispatch: a
// cluster with one worker delayed ~100× the healthy round trip must finish
// close to healthy wall time — the straggler's blocks are speculatively
// re-dispatched and the first result wins — with the output digest equal to
// the uninterrupted run's.
func TestChaosStragglerHedging(t *testing.T) {
	// Client-side link simulation makes the healthy round trip a known
	// ~2×baseLatency, so "100× slower" is meaningful on a loopback where
	// real transport time is microseconds.
	const baseLatency = 10 * time.Millisecond
	const stragglerDelay = time.Second // ≥100× the healthy round trip, per op

	g := gen.HolmeKim(300, 5, 0.7, 11)
	blocks, combos := makeBlocks(g, g.MaxDegree()+1)
	opts := func(met *telemetry.Engine) ClientOptions {
		return ClientOptions{
			DialTimeout: 2 * time.Second,
			Latency:     baseLatency,
			Hedge:       true,
			Metrics:     met,
		}
	}

	// Uninterrupted baseline: three healthy workers.
	healthyAddrs, stop, err := StartLocal(3)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	baseline, err := Dial(healthyAddrs, opts(telemetry.NewEngine()))
	if err != nil {
		t.Fatal(err)
	}
	defer baseline.Close()
	t0 := time.Now()
	wantOut, err := baseline.AnalyzeBlocks(blocks, combos)
	if err != nil {
		t.Fatalf("baseline run failed: %v", err)
	}
	healthyWall := time.Since(t0)

	// Straggler run: two healthy workers plus one delayed 100×.
	okAddrs, stop2, err := StartLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop2()
	slowAddr := startSlowWorker(t, stragglerDelay)
	met := telemetry.NewEngine()
	hedged, err := Dial(append(okAddrs, slowAddr), opts(met))
	if err != nil {
		t.Fatal(err)
	}
	defer hedged.Close()
	t0 = time.Now()
	gotOut, err := hedged.AnalyzeBlocks(blocks, combos)
	if err != nil {
		t.Fatalf("hedged straggler run failed: %v", err)
	}
	hedgedWall := time.Since(t0)

	if got, want := sortedDigest(t, gotOut), sortedDigest(t, wantOut); got != want {
		t.Fatalf("hedged run digest %s differs from uninterrupted digest %s", got, want)
	}

	// The wall-time bound from the acceptance criteria: within 3× healthy.
	// The floor absorbs scheduler noise on very fast baselines without
	// weakening the check — an unhedged run cannot finish before the
	// straggler's multi-second round trip returns.
	bound := 3 * healthyWall
	if floor := 2 * time.Second; bound < floor {
		bound = floor
	}
	if hedgedWall > bound {
		t.Fatalf("straggler run took %v, want ≤ %v (healthy %v): hedging did not mask the slow worker",
			hedgedWall, bound, healthyWall)
	}

	if met.HedgedDispatches.Load() == 0 {
		t.Fatal("no hedged dispatches issued against a 100× straggler")
	}
	if met.HedgeWins.Load() == 0 {
		t.Fatal("no hedge wins recorded: the straggler's blocks were not rescued")
	}
}

// TestChaosStragglerHedgeDedup pins first-wins dedup under hedging: even
// when the straggler's late duplicate eventually lands, every clique is
// reported exactly once (cliqueSet fails on duplicates) and the losing copy
// is counted as wasted rather than merged.
func TestChaosStragglerHedgeDedup(t *testing.T) {
	okAddrs, stop, err := StartLocal(1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	// A mild straggler: slow enough to lose every race once hedging kicks
	// in, fast enough that its duplicate results land before the test ends.
	slowAddr := startSlowWorker(t, 60*time.Millisecond)

	met := telemetry.NewEngine()
	client, err := Dial(append(okAddrs, slowAddr), ClientOptions{
		DialTimeout:   2 * time.Second,
		Hedge:         true,
		HedgeMinDelay: 10 * time.Millisecond,
		Metrics:       met,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	g := gen.HolmeKim(200, 4, 0.6, 31)
	blocks, combos := makeBlocks(g, g.MaxDegree()+1)
	out, err := client.AnalyzeBlocks(blocks, combos)
	if err != nil {
		t.Fatalf("hedged run failed: %v", err)
	}
	// cliqueSet fails the test on any duplicated clique across blocks.
	set := cliqueSet(t, out)
	if len(set) == 0 {
		t.Fatal("empty result")
	}
	if met.HedgedDispatches.Load() == 0 {
		t.Fatal("hedging never fired against the slow worker")
	}
	// Give the straggler's in-flight duplicates a moment to land, then
	// confirm they were discarded, not merged: wasted + wins ≤ dispatches.
	time.Sleep(150 * time.Millisecond)
	wins, wasted, issued := met.HedgeWins.Load(), met.HedgeWasted.Load(), met.HedgedDispatches.Load()
	if wins+wasted > issued+int64(len(blocks)) {
		t.Fatalf("dedup accounting off: wins=%d wasted=%d issued=%d", wins, wasted, issued)
	}
}
