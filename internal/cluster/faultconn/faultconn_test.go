package faultconn

import (
	"bytes"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"
)

// pipePair returns a wrapped client->server byte pipe over localhost TCP:
// writes on the returned conn arrive at srv.
func pipePair(t *testing.T, opts Options) (wrapped net.Conn, srv net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(done)
			return
		}
		done <- c
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	srv, ok := <-done
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { raw.Close(); srv.Close() })
	return Conn(raw, opts, opts.Seed), srv
}

func TestPassThroughWithoutFaults(t *testing.T) {
	c, srv := pipePair(t, Options{Seed: 1})
	msg := []byte("hello cluster")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := srv.Read(buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("payload changed: %q", buf)
	}
}

func TestCorruptFlipsExactlyOneByte(t *testing.T) {
	c, srv := pipePair(t, Options{Seed: 7, CorruptProb: 1})
	msg := bytes.Repeat([]byte{0x55}, 64)
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	n, err := srv.Read(buf)
	if err != nil || n != len(msg) {
		t.Fatalf("read %d, %v", n, err)
	}
	flipped := 0
	for i := range msg {
		if buf[i] != msg[i] {
			flipped++
		}
	}
	if flipped != 1 {
		t.Fatalf("%d bytes flipped, want 1", flipped)
	}
	// The caller's buffer must not be mutated by a corrupt write.
	for _, b := range msg {
		if b != 0x55 {
			t.Fatal("corrupt write mutated the caller's buffer")
		}
	}
}

func TestCloseTruncatesWrite(t *testing.T) {
	c, srv := pipePair(t, Options{Seed: 3, CloseProb: 1})
	msg := bytes.Repeat([]byte{0xAA}, 100)
	if _, err := c.Write(msg); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("err = %v, want net.ErrClosed", err)
	}
	// The peer sees the truncated prefix then EOF.
	buf := make([]byte, 200)
	total := 0
	for {
		n, err := srv.Read(buf[total:])
		total += n
		if err != nil {
			break
		}
	}
	if total != len(msg)/2 {
		t.Fatalf("peer received %d bytes, want %d", total, len(msg)/2)
	}
}

func TestHangHonoursDeadline(t *testing.T) {
	c, _ := pipePair(t, Options{Seed: 5, HangProb: 1})
	if err := c.SetWriteDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	_, err := c.Write([]byte("x"))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want timeout", err)
	}
	if d := time.Since(t0); d > 2*time.Second {
		t.Fatalf("hang outlived deadline: %v", d)
	}
}

func TestHangUnblocksOnClose(t *testing.T) {
	c, _ := pipePair(t, Options{Seed: 5, HangProb: 1})
	errc := make(chan error, 1)
	go func() {
		_, err := c.Write([]byte("x"))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("err = %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hang did not unblock on close")
	}
}

func TestSkipOpsExemptsHandshake(t *testing.T) {
	c, srv := pipePair(t, Options{Seed: 9, CloseProb: 1, SkipOps: 2})
	for i := 0; i < 2; i++ {
		if _, err := c.Write([]byte("ok")); err != nil {
			t.Fatalf("op %d faulted despite SkipOps: %v", i, err)
		}
		buf := make([]byte, 2)
		if _, err := srv.Read(buf); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Write([]byte("boom")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("op 3 err = %v, want net.ErrClosed", err)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	// Two connections with the same seed draw the same fault sequence.
	run := func() []bool {
		c := &conn{opts: Options{Seed: 42, CloseProb: 0.5}, closed: make(chan struct{})}
		c.rng = rand.New(rand.NewSource(42))
		var kinds []bool
		for i := 0; i < 32; i++ {
			k, _, _ := c.decide(8)
			kinds = append(kinds, k == faultClose)
		}
		return kinds
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d", i)
		}
	}
}

func TestWriteDelaySlowsEveryOp(t *testing.T) {
	const d = 30 * time.Millisecond
	c, srv := pipePair(t, Options{Seed: 13, WriteDelay: d})
	buf := make([]byte, 2)
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		if _, err := c.Write([]byte("ok")); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Read(buf); err != nil {
			t.Fatal(err)
		}
		if e := time.Since(t0); e < d {
			t.Fatalf("write %d took %v, want ≥ %v", i, e, d)
		}
	}
}

func TestReadDelaySlowsEveryOp(t *testing.T) {
	const d = 30 * time.Millisecond
	c, srv := pipePair(t, Options{Seed: 13, ReadDelay: d})
	if _, err := srv.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	t0 := time.Now()
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(t0); e < d {
		t.Fatalf("read took %v, want ≥ %v", e, d)
	}
}

func TestPerOpDelayRespectsSkipOps(t *testing.T) {
	// The warmup ops must be full speed even in slow-writer mode.
	c, srv := pipePair(t, Options{Seed: 13, WriteDelay: 500 * time.Millisecond, SkipOps: 2})
	buf := make([]byte, 2)
	for i := 0; i < 2; i++ {
		t0 := time.Now()
		if _, err := c.Write([]byte("ok")); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Read(buf); err != nil {
			t.Fatal(err)
		}
		if e := time.Since(t0); e > 250*time.Millisecond {
			t.Fatalf("warmup op %d took %v, want fast", i, e)
		}
	}
}

func TestPerOpDelayUnblocksOnClose(t *testing.T) {
	c, _ := pipePair(t, Options{Seed: 13, WriteDelay: time.Hour})
	errc := make(chan error, 1)
	go func() {
		_, err := c.Write([]byte("x"))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case <-errc:
		// Any result is fine; the delay must simply not block for an hour.
	case <-time.After(2 * time.Second):
		t.Fatal("per-op delay did not unblock on close")
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := Listener(raw, Options{Seed: 11, CorruptProb: 1})
	defer ln.Close()
	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return
		}
		defer c.Close()
		c.Write(bytes.Repeat([]byte{0x11}, 32))
	}()
	c, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 32)
	n, err := c.Read(buf) // corrupt fires on the wrapped read
	if err != nil || n == 0 {
		t.Fatalf("read %d, %v", n, err)
	}
	diff := 0
	for i := 0; i < n; i++ {
		if buf[i] != 0x11 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want 1 (accepted conn not wrapped?)", diff)
	}
}
