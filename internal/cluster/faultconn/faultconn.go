// Package faultconn wraps net.Listener / net.Conn with seeded,
// deterministic fault injection for chaos-testing the cluster runtime. It
// reproduces the failure modes of the paper's shared 10-node cluster (§6.1)
// — slow links, stalled workers, connections dropped mid-message, and
// flipped bytes — without any real network misbehaviour.
//
// Faults are drawn from a per-connection PRNG seeded with
// Options.Seed + connection index, so a given seed always produces the same
// fault schedule on the i-th accepted connection regardless of goroutine
// interleaving elsewhere. Each Read/Write call draws one decision:
//
//   - delay:   the call sleeps Options.Delay, then proceeds normally;
//   - hang:    the call blocks until the connection is closed or its
//     deadline expires (a stalled worker);
//   - close:   a write ships only half its bytes and then closes the
//     connection (a mid-message crash); a read closes immediately;
//   - corrupt: one byte of the payload is flipped (a dirty link).
//
// Besides the probabilistic faults, Options.ReadDelay / Options.WriteDelay
// inject a fixed latency on *every* read or write after the SkipOps warmup
// — a deterministic slow-peer (slow-reader / slow-writer) mode for
// straggler tests, where the victim must be reliably slow rather than
// randomly unlucky. Per-op delays compose with the probabilistic faults:
// the delay is applied first, then the fault decision is drawn as usual.
//
// Deadlines set on the wrapped connection are honoured even while a hang or
// an injected delay is in progress, which is exactly what the coordinator's
// TaskTimeout relies on.
package faultconn

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Options configures an injector. All probabilities are per Read/Write call
// and are evaluated in the order Hang, Close, Corrupt, Delay; at most one
// fault fires per call.
type Options struct {
	// Seed makes the fault schedule reproducible. Connection i draws from
	// a PRNG seeded with Seed+int64(i).
	Seed int64
	// HangProb is the probability that a call blocks until the connection
	// is closed or its deadline expires.
	HangProb float64
	// CloseProb is the probability that a call closes the connection
	// mid-message.
	CloseProb float64
	// CorruptProb is the probability that one byte of the call's payload
	// is flipped.
	CorruptProb float64
	// DelayProb is the probability that a call is delayed by Delay.
	DelayProb float64
	// Delay is the extra latency applied when a delay fault fires.
	Delay time.Duration
	// ReadDelay is a deterministic latency applied to every Read after the
	// SkipOps warmup — a slow-reader peer. Zero disables it.
	ReadDelay time.Duration
	// WriteDelay is a deterministic latency applied to every Write after
	// the SkipOps warmup — a slow-writer peer. Zero disables it.
	WriteDelay time.Duration
	// SkipOps exempts the first n Read/Write calls of every connection
	// from fault injection, letting the handshake complete before chaos
	// starts.
	SkipOps int
}

// Listener wraps ln so every accepted connection injects faults according
// to opts.
func Listener(ln net.Listener, opts Options) net.Listener {
	return &listener{Listener: ln, opts: opts}
}

type listener struct {
	net.Listener
	opts Options
	mu   sync.Mutex
	next int64
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.next
	l.next++
	l.mu.Unlock()
	return Conn(c, l.opts, l.opts.Seed+i), nil
}

// Conn wraps c with fault injection drawing from a PRNG seeded with seed.
func Conn(c net.Conn, opts Options, seed int64) net.Conn {
	return &conn{
		Conn:   c,
		opts:   opts,
		rng:    rand.New(rand.NewSource(seed)),
		closed: make(chan struct{}),
	}
}

type conn struct {
	net.Conn
	opts Options

	mu   sync.Mutex // guards rng, ops, deadlines
	rng  *rand.Rand
	ops  int
	rdDL time.Time
	wrDL time.Time

	closeOnce sync.Once
	closed    chan struct{}
}

// fault kinds.
const (
	faultNone = iota
	faultHang
	faultClose
	faultCorrupt
	faultDelay
)

// decide draws one fault decision and, for corrupt faults, the byte offset
// to flip within a payload of length n. warm reports whether the SkipOps
// warmup is over, i.e. whether deterministic per-op delays apply.
func (c *conn) decide(n int) (kind, offset int, warm bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ops++
	if c.ops <= c.opts.SkipOps {
		return faultNone, 0, false
	}
	p := c.rng.Float64()
	switch {
	case p < c.opts.HangProb:
		return faultHang, 0, true
	case p < c.opts.HangProb+c.opts.CloseProb:
		return faultClose, 0, true
	case p < c.opts.HangProb+c.opts.CloseProb+c.opts.CorruptProb:
		if n > 0 {
			offset = c.rng.Intn(n)
		}
		return faultCorrupt, offset, true
	case p < c.opts.HangProb+c.opts.CloseProb+c.opts.CorruptProb+c.opts.DelayProb:
		return faultDelay, 0, true
	}
	return faultNone, 0, true
}

func (c *conn) Read(p []byte) (int, error) {
	kind, off, warm := c.decide(len(p))
	if warm {
		// Slow-reader mode: every read pays the deterministic latency. The
		// sleep wakes on close, and an expired deadline still fails the
		// underlying read immediately afterwards.
		c.sleep(c.opts.ReadDelay)
	}
	switch kind {
	case faultHang:
		if err := c.hang(c.deadline(false)); err != nil {
			return 0, err
		}
	case faultClose:
		c.Close()
		return 0, net.ErrClosed
	case faultDelay:
		c.sleep(c.opts.Delay)
	}
	n, err := c.Conn.Read(p)
	if kind == faultCorrupt && n > 0 {
		p[off%n] ^= 0x40
	}
	return n, err
}

func (c *conn) Write(p []byte) (int, error) {
	kind, off, warm := c.decide(len(p))
	if warm {
		// Slow-writer mode: see the Read-side comment.
		c.sleep(c.opts.WriteDelay)
	}
	switch kind {
	case faultHang:
		if err := c.hang(c.deadline(true)); err != nil {
			return 0, err
		}
	case faultClose:
		// Ship a truncated message, then die: the peer sees a partial gob
		// frame followed by EOF.
		n, _ := c.Conn.Write(p[:len(p)/2])
		c.Close()
		return n, net.ErrClosed
	case faultCorrupt:
		if len(p) > 0 {
			cp := make([]byte, len(p))
			copy(cp, p)
			cp[off] ^= 0x40
			return c.Conn.Write(cp)
		}
	case faultDelay:
		c.sleep(c.opts.Delay)
	}
	return c.Conn.Write(p)
}

// hang blocks until the connection is closed or dl (the operation's
// deadline) passes. A zero deadline blocks until close.
func (c *conn) hang(dl time.Time) error {
	var timeout <-chan time.Time
	if !dl.IsZero() {
		d := time.Until(dl)
		if d <= 0 {
			return timeoutError{}
		}
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-c.closed:
		return net.ErrClosed
	case <-timeout:
		return timeoutError{}
	}
}

// sleep pauses for d but wakes early if the connection is closed.
func (c *conn) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-c.closed:
	case <-t.C:
	}
}

func (c *conn) deadline(write bool) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if write {
		return c.wrDL
	}
	return c.rdDL
}

func (c *conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

func (c *conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdDL, c.wrDL = t, t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdDL = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.wrDL = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

// timeoutError mimics the net package's deadline errors so callers that
// check net.Error.Timeout() treat an expired hang like any other timeout.
type timeoutError struct{}

func (timeoutError) Error() string   { return "faultconn: injected hang timed out" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }
