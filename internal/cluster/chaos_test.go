package cluster

import (
	"context"
	"encoding/gob"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"mce/internal/cluster/faultconn"
	"mce/internal/core"
	"mce/internal/gen"
	"mce/internal/mcealg"
)

// startFaultyWorkers launches n workers whose listeners inject faults per
// fopts (each worker's schedule offset by a large per-worker seed stride so
// the workers draw independent schedules). Workers drain fast on cleanup so
// injected hangs cannot stall test teardown.
func startFaultyWorkers(t *testing.T, n int, fopts faultconn.Options) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		o := fopts
		o.Seed = fopts.Seed + int64(i)*1_000_000
		w := &Worker{DrainTimeout: 100 * time.Millisecond}
		go func() { _ = w.Serve(faultconn.Listener(ln, o)) }()
		t.Cleanup(func() { _ = w.Close() })
	}
	return addrs
}

// countCliques flattens a per-block result into a clique set keyed by
// membership, failing on duplicates.
func cliqueSet(t *testing.T, out [][][]int32) map[string]bool {
	t.Helper()
	set := map[string]bool{}
	for _, cs := range out {
		for _, c := range cs {
			k := key(c)
			if set[k] {
				t.Fatalf("duplicate clique {%s}", k)
			}
			set[k] = true
		}
	}
	return set
}

// TestChaosCompleteness is the acceptance test for the fault-injection
// harness: a cluster whose links randomly delay, corrupt, hang and drop
// connections must still produce exactly the clique set of the in-process
// LocalExecutor, through deadline-driven retirement, checksum detection,
// retries and auto-reconnection.
func TestChaosCompleteness(t *testing.T) {
	addrs := startFaultyWorkers(t, 3, faultconn.Options{
		Seed:        42,
		HangProb:    0.005,
		CloseProb:   0.02,
		CorruptProb: 0.02,
		DelayProb:   0.05,
		Delay:       500 * time.Microsecond,
		SkipOps:     6, // let the handshake through
	})
	client, err := Dial(addrs, ClientOptions{
		DialTimeout:      2 * time.Second,
		TaskTimeout:      500 * time.Millisecond,
		TaskRetries:      -1, // unlimited: faults are transient, so retries always win
		AutoReconnect:    true,
		ReconnectBackoff: 10 * time.Millisecond,
		AllDeadGrace:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	g := gen.HolmeKim(300, 5, 0.7, 11)
	blocks, combos := makeBlocks(g, g.MaxDegree()+1)
	remote, err := client.AnalyzeBlocks(blocks, combos)
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	local, err := (&core.LocalExecutor{}).AnalyzeBlocks(blocks, combos)
	if err != nil {
		t.Fatal(err)
	}
	got, want := cliqueSet(t, remote), cliqueSet(t, local)
	if len(got) != len(want) {
		t.Fatalf("chaos run found %d cliques, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("clique {%s} lost under fault injection", k)
		}
	}
}

// TestChaosHungWorker pins the TaskTimeout envelope: a worker that accepts
// the handshake and then hangs on every operation must be retired by the
// deadline, and the batch must complete on the healthy worker — in bounded
// time, where without deadlines it would block forever.
func TestChaosHungWorker(t *testing.T) {
	// SkipOps covers the handshake (up to two reads for hello, two writes
	// for the ack — gob may split one message across ops); whichever op of
	// the first round trip lands after the exemption hangs, so no round
	// trip can ever complete.
	hungAddrs := startFaultyWorkers(t, 1, faultconn.Options{
		Seed:     1,
		HangProb: 1.0,
		SkipOps:  4,
	})
	okAddrs, stop, err := StartLocal(1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	const timeout = 300 * time.Millisecond
	client, err := Dial(append(hungAddrs, okAddrs...), ClientOptions{TaskTimeout: timeout})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	g := gen.ErdosRenyi(100, 0.1, 13)
	blocks, combos := makeBlocks(g, g.MaxDegree()+1)
	t0 := time.Now()
	out, err := client.AnalyzeBlocks(blocks, combos)
	elapsed := time.Since(t0)
	if err != nil {
		t.Fatalf("batch with hung worker failed: %v", err)
	}
	// The hung worker costs at most one TaskTimeout (its only in-flight
	// task); everything else proceeds on the healthy worker concurrently.
	// The generous multiplier absorbs scheduler noise under -race.
	if elapsed > 10*timeout {
		t.Fatalf("batch took %v, want within the %v deadline envelope", elapsed, timeout)
	}
	if total, want := len(cliqueSet(t, out)), len(mcealg.ReferenceCollect(g)); total != want {
		t.Fatalf("got %d cliques, want %d", total, want)
	}
	var hungDead bool
	for _, s := range client.Stats() {
		if s.Addr == hungAddrs[0] && s.Dead {
			hungDead = true
		}
	}
	if !hungDead {
		t.Fatal("hung worker was not retired")
	}
}

// TestChaosWorkerRestart kills the only worker, restarts one on the same
// port, and expects an in-flight batch to recover through AutoReconnect
// within the AllDeadGrace window.
func TestChaosWorkerRestart(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	w1 := &Worker{DrainTimeout: 50 * time.Millisecond}
	go func() { _ = w1.Serve(ln) }()

	client, err := Dial([]string{addr}, ClientOptions{
		AutoReconnect:    true,
		ReconnectBackoff: 10 * time.Millisecond,
		AllDeadGrace:     5 * time.Second,
		DialTimeout:      time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Kill the worker, then restart on the same port (Go listeners set
	// SO_REUSEADDR, so the rebind succeeds immediately).
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	w2 := &Worker{}
	go func() { _ = w2.Serve(ln2) }()
	t.Cleanup(func() { _ = w2.Close() })

	g := gen.ErdosRenyi(80, 0.12, 17)
	blocks, combos := makeBlocks(g, g.MaxDegree()+1)
	out, err := client.AnalyzeBlocks(blocks, combos)
	if err != nil {
		t.Fatalf("batch across worker restart failed: %v", err)
	}
	if total, want := len(cliqueSet(t, out)), len(mcealg.ReferenceCollect(g)); total != want {
		t.Fatalf("got %d cliques across restart, want %d", total, want)
	}
}

// fakeWorker runs handle on every accepted connection — a scriptable stand-in
// for protocol-level misbehaviour no real Worker produces.
func fakeWorker(t *testing.T, handle func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go handle(conn)
		}
	}()
	return ln.Addr().String()
}

func TestDialVersionMismatch(t *testing.T) {
	addr := fakeWorker(t, func(conn net.Conn) {
		defer conn.Close()
		dec, enc := gob.NewDecoder(conn), gob.NewEncoder(conn)
		var h hello
		if dec.Decode(&h) != nil {
			return
		}
		_ = enc.Encode(helloAck{Version: 99})
	})
	_, err := Dial([]string{addr}, ClientOptions{DialTimeout: time.Second})
	if err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("err = %v, want version mismatch", err)
	}
}

func TestDialCompressionRefused(t *testing.T) {
	addr := fakeWorker(t, func(conn net.Conn) {
		defer conn.Close()
		dec, enc := gob.NewDecoder(conn), gob.NewEncoder(conn)
		var h hello
		if dec.Decode(&h) != nil {
			return
		}
		_ = enc.Encode(helloAck{Version: protocolVersion, Compress: false})
	})
	_, err := Dial([]string{addr}, ClientOptions{DialTimeout: time.Second, Compress: true})
	if err == nil || !strings.Contains(err.Error(), "refused compression") {
		t.Fatalf("err = %v, want compression refusal", err)
	}
}

func TestDialTruncatedHello(t *testing.T) {
	addr := fakeWorker(t, func(conn net.Conn) {
		conn.Close() // accept, then hang up before any handshake bytes
	})
	_, err := Dial([]string{addr}, ClientOptions{DialTimeout: time.Second})
	if err == nil || !strings.Contains(err.Error(), "handshake") {
		t.Fatalf("err = %v, want handshake failure", err)
	}
}

// TestDialHandshakeHang: a worker that accepts but never answers must not
// stall Dial past the dial budget — the handshake shares DialTimeout.
func TestDialHandshakeHang(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	addr := fakeWorker(t, func(conn net.Conn) {
		<-block
		conn.Close()
	})
	t0 := time.Now()
	_, err := Dial([]string{addr}, ClientOptions{DialTimeout: 200 * time.Millisecond})
	if err == nil {
		t.Fatal("Dial to mute worker succeeded")
	}
	if elapsed := time.Since(t0); elapsed > 3*time.Second {
		t.Fatalf("Dial hung %v waiting for a mute worker", elapsed)
	}
}

// TestPoisonTask: a block whose round trip dies on every worker must fail
// the batch deterministically once the retry budget is spent, with the
// per-attempt causes attached.
func TestPoisonTask(t *testing.T) {
	// Workers that handshake correctly and then hang up on the first task.
	handle := func(conn net.Conn) {
		defer conn.Close()
		dec, enc := gob.NewDecoder(conn), gob.NewEncoder(conn)
		var h hello
		if dec.Decode(&h) != nil {
			return
		}
		if enc.Encode(helloAck{Version: protocolVersion}) != nil {
			return
		}
		var task blockTask
		_ = dec.Decode(&task) // swallow the task, answer nothing
	}
	addrs := []string{fakeWorker(t, handle), fakeWorker(t, handle), fakeWorker(t, handle)}
	client, err := Dial(addrs, ClientOptions{DialTimeout: time.Second, TaskRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	g := gen.ErdosRenyi(30, 0.3, 19)
	blocks, combos := makeBlocks(g, g.MaxDegree()+1)
	blocks, combos = blocks[:1], combos[:1]
	_, err = client.AnalyzeBlocks(blocks, combos)
	var poison *PoisonTaskError
	if !errors.As(err, &poison) {
		t.Fatalf("err = %v, want *PoisonTaskError", err)
	}
	if poison.Block != 0 || poison.Attempts != 2 || len(poison.Causes) != 2 {
		t.Fatalf("poison = %+v, want block 0 with 2 recorded attempts", poison)
	}
}

// TestPoisonTaskSkipped: with SkipPoisonTasks a poison verdict no longer
// fails the batch — the block's slot stays nil, the verdict is recorded for
// the caller, and the batch completes.
func TestPoisonTaskSkipped(t *testing.T) {
	handle := func(conn net.Conn) {
		defer conn.Close()
		dec, enc := gob.NewDecoder(conn), gob.NewEncoder(conn)
		var h hello
		if dec.Decode(&h) != nil {
			return
		}
		if enc.Encode(helloAck{Version: protocolVersion}) != nil {
			return
		}
		var task blockTask
		_ = dec.Decode(&task) // swallow the task, answer nothing
	}
	// Each swallowed task costs one connection for good, so the worker pool
	// must cover blocks × retries deaths with one spare to stay alive.
	addrs := []string{fakeWorker(t, handle), fakeWorker(t, handle), fakeWorker(t, handle)}
	client, err := Dial(addrs, ClientOptions{
		DialTimeout:     time.Second,
		TaskRetries:     1,
		SkipPoisonTasks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	g := gen.ErdosRenyi(30, 0.3, 19)
	blocks, combos := makeBlocks(g, g.MaxDegree()+1)
	blocks, combos = blocks[:2], combos[:2]
	out, err := client.AnalyzeBlocks(blocks, combos)
	if err != nil {
		t.Fatalf("skip-poison batch failed: %v", err)
	}
	for i, cliques := range out {
		if cliques != nil {
			t.Fatalf("skipped block %d has a non-nil result", i)
		}
	}
	verdicts := client.PoisonVerdicts()
	if len(verdicts) != 2 {
		t.Fatalf("recorded %d poison verdicts, want 2", len(verdicts))
	}
	for _, v := range verdicts {
		if v.Attempts != 1 || len(v.Causes) != 1 {
			t.Fatalf("verdict = %+v, want 1 recorded attempt", v)
		}
	}
}

// TestPoisonTaskUnlimitedRetries: with a negative budget the batch keeps
// retrying until capacity runs out, and fails with the all-dead error
// instead of a poison verdict.
func TestPoisonTaskUnlimitedRetries(t *testing.T) {
	handle := func(conn net.Conn) {
		defer conn.Close()
		dec, enc := gob.NewDecoder(conn), gob.NewEncoder(conn)
		var h hello
		if dec.Decode(&h) != nil {
			return
		}
		if enc.Encode(helloAck{Version: protocolVersion}) != nil {
			return
		}
		var task blockTask
		_ = dec.Decode(&task)
	}
	addrs := []string{fakeWorker(t, handle), fakeWorker(t, handle)}
	client, err := Dial(addrs, ClientOptions{DialTimeout: time.Second, TaskRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	g := gen.ErdosRenyi(30, 0.3, 19)
	blocks, combos := makeBlocks(g, g.MaxDegree()+1)
	_, err = client.AnalyzeBlocks(blocks[:1], combos[:1])
	var poison *PoisonTaskError
	if err == nil || errors.As(err, &poison) {
		t.Fatalf("err = %v, want all-dead failure without poison verdict", err)
	}
}

// TestWorkerPanicIsolation: a malformed task that panics inside
// BLOCK-ANALYSIS must come back as an in-band error, and the same
// connection must keep serving afterwards.
func TestWorkerPanicIsolation(t *testing.T) {
	cl, sv := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- ServeConn(sv) }()

	enc, dec := gob.NewEncoder(cl), gob.NewDecoder(cl)
	if err := enc.Encode(hello{Version: protocolVersion}); err != nil {
		t.Fatal(err)
	}
	var ack helloAck
	if err := dec.Decode(&ack); err != nil {
		t.Fatal(err)
	}

	// Kernel node 200 is far outside the 3-node block; blockFromTask cannot
	// see that, so AnalyzeBlock panics on the out-of-range bitset word. The
	// checksum is valid — the task is malformed, not corrupted.
	bad := blockTask{
		ID: 1, Nodes: 3,
		Edges:  [][2]int32{{0, 1}},
		Kernel: []int32{200},
		Orig:   []int32{10, 11, 12},
		Alg:    uint8(mcealg.Tomita), Struct: uint8(mcealg.BitSets),
	}
	bad.Sum = bad.payloadSum()
	if err := enc.Encode(&bad); err != nil {
		t.Fatal(err)
	}
	var res blockResult
	if err := dec.Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.ID != 1 || !strings.Contains(res.Err, "panic") {
		t.Fatalf("result = %+v, want in-band panic report", res)
	}

	// The worker survived: a valid task on the same connection still works.
	good := blockTask{
		ID: 2, Nodes: 3,
		Edges:  [][2]int32{{0, 1}, {1, 2}, {0, 2}},
		Kernel: []int32{0, 1, 2},
		Orig:   []int32{10, 11, 12},
		Alg:    uint8(mcealg.Tomita), Struct: uint8(mcealg.BitSets),
	}
	good.Sum = good.payloadSum()
	if err := enc.Encode(&good); err != nil {
		t.Fatal(err)
	}
	// Decode into a fresh value: gob omits zero fields, so reusing res
	// would leave the previous Err in place and fake a failure.
	var res2 blockResult
	if err := dec.Decode(&res2); err != nil {
		t.Fatal(err)
	}
	if res2.ID != 2 || res2.Err != "" || len(res2.Cliques) != 1 {
		t.Fatalf("post-panic result = %+v", res2)
	}
	cl.Close()
	if err := <-done; err != nil {
		t.Fatalf("ServeConn returned %v", err)
	}
}

// TestWorkerChecksumRejectsTamperedTask: a task whose payload does not match
// its checksum is answered with the Corrupt verdict, not executed.
func TestWorkerChecksumRejectsTamperedTask(t *testing.T) {
	cl, sv := net.Pipe()
	go func() { _ = ServeConn(sv) }()
	defer cl.Close()

	enc, dec := gob.NewEncoder(cl), gob.NewDecoder(cl)
	if err := enc.Encode(hello{Version: protocolVersion}); err != nil {
		t.Fatal(err)
	}
	var ack helloAck
	if err := dec.Decode(&ack); err != nil {
		t.Fatal(err)
	}
	task := blockTask{
		ID: 3, Nodes: 3,
		Edges:  [][2]int32{{0, 1}},
		Kernel: []int32{0},
		Orig:   []int32{10, 11, 12},
		Alg:    uint8(mcealg.Tomita), Struct: uint8(mcealg.BitSets),
	}
	task.Sum = task.payloadSum() ^ 0xdeadbeef
	if err := enc.Encode(&task); err != nil {
		t.Fatal(err)
	}
	var res blockResult
	if err := dec.Decode(&res); err != nil {
		t.Fatal(err)
	}
	if !res.Corrupt || res.Err != "" || len(res.Cliques) != 0 {
		t.Fatalf("result = %+v, want Corrupt verdict", res)
	}
}

// TestWorkerDrainWaitsForInflight: Close must block while a task is in
// flight and return promptly once it finishes.
func TestWorkerDrainWaitsForInflight(t *testing.T) {
	w := &Worker{DrainTimeout: 5 * time.Second}
	if !w.beginTask() {
		t.Fatal("beginTask refused on a fresh worker")
	}
	closed := make(chan struct{})
	go func() {
		w.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned with a task in flight")
	case <-time.After(100 * time.Millisecond):
	}
	w.endTask()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return after the last task ended")
	}
	if w.beginTask() {
		t.Fatal("beginTask accepted work on a closed worker")
	}
}

// TestWorkerDrainTimeout: a stuck task cannot block Close past DrainTimeout.
func TestWorkerDrainTimeout(t *testing.T) {
	w := &Worker{DrainTimeout: 100 * time.Millisecond}
	if !w.beginTask() {
		t.Fatal("beginTask refused")
	}
	t0 := time.Now()
	w.Close() // the task never ends; Close must give up at the timeout
	if elapsed := time.Since(t0); elapsed > 3*time.Second {
		t.Fatalf("Close took %v despite a %v drain timeout", elapsed, w.DrainTimeout)
	}
	w.endTask() // late finish after a timed-out drain must not panic
}

func TestStartLocalStopIdempotent(t *testing.T) {
	_, stop, err := StartLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	stop() // second stop must be a no-op, not a double-close panic
}

func TestWorkerCloseIdempotent(t *testing.T) {
	w := &Worker{}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerMaxConns: with MaxConns=1 a second connection is accepted but
// not served until the first hangs up.
func TestWorkerMaxConns(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w := &Worker{MaxConns: 1}
	go func() { _ = w.Serve(ln) }()
	t.Cleanup(func() { _ = w.Close() })

	dial := func() net.Conn {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	handshake := func(c net.Conn, deadline time.Duration) error {
		enc, dec := gob.NewEncoder(c), gob.NewDecoder(c)
		if err := enc.Encode(hello{Version: protocolVersion}); err != nil {
			return err
		}
		c.SetReadDeadline(time.Now().Add(deadline))
		defer c.SetReadDeadline(time.Time{})
		var ack helloAck
		return dec.Decode(&ack)
	}

	first := dial()
	if err := handshake(first, 2*time.Second); err != nil {
		t.Fatalf("first connection refused: %v", err)
	}
	second := dial()
	defer second.Close()
	if err := handshake(second, 300*time.Millisecond); err == nil {
		t.Fatal("second connection served beyond MaxConns=1")
	}
	// Releasing the slot lets the queued connection through; its hello is
	// already buffered, so only the ack read remains.
	first.Close()
	second.SetReadDeadline(time.Now().Add(5 * time.Second))
	var ack helloAck
	if err := gob.NewDecoder(second).Decode(&ack); err != nil {
		t.Fatalf("queued connection never served after slot freed: %v", err)
	}
	if ack.Version != protocolVersion {
		t.Fatalf("ack = %+v", ack)
	}
}

func TestDialReportDegraded(t *testing.T) {
	addrs, stop, err := StartLocal(1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	deadAddr := ln.Addr().String()
	ln.Close()

	client, err := Dial([]string{addrs[0], deadAddr}, ClientOptions{DialTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	r := client.DialReport()
	if len(r.Addrs) != 2 || r.Connected != 1 || len(r.Failures) != 1 || !r.Degraded() {
		t.Fatalf("report = %+v, want degraded 1/2", r)
	}
	if r.Failures[0].Addr != deadAddr || r.Failures[0].Err == nil {
		t.Fatalf("failure = %+v, want %s", r.Failures[0], deadAddr)
	}

	healthy, err := Dial(addrs, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	if r := healthy.DialReport(); r.Degraded() || r.Connected != 1 {
		t.Fatalf("healthy report = %+v", r)
	}
}

func TestTaskDeadlineResolution(t *testing.T) {
	task := blockTask{Nodes: 100, Edges: make([][2]int32, 400)}

	c := &Client{opts: ClientOptions{TaskTimeout: -1}}
	if d := c.taskDeadline(&task); d != 0 {
		t.Fatalf("negative TaskTimeout gave deadline %v, want disabled", d)
	}
	c = &Client{opts: ClientOptions{TaskTimeout: 7 * time.Second}}
	if d := c.taskDeadline(&task); d != 7*time.Second {
		t.Fatalf("explicit TaskTimeout gave %v", d)
	}
	c = &Client{}
	base := c.taskDeadline(&task)
	if base < 30*time.Second {
		t.Fatalf("derived deadline %v below the 30s floor", base)
	}
	c = &Client{opts: ClientOptions{Latency: time.Second}}
	if d := c.taskDeadline(&task); d < base+2*time.Second {
		t.Fatalf("derived deadline %v ignores simulated latency (base %v)", d, base)
	}
	big := blockTask{Nodes: 1_000_000}
	if c.taskDeadline(&big) <= c.taskDeadline(&task) {
		t.Fatal("derived deadline does not scale with block size")
	}
}

func TestAnalyzeBlocksContextPreCancelled(t *testing.T) {
	addrs, stop, err := StartLocal(1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	client, err := Dial(addrs, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := gen.ErdosRenyi(40, 0.2, 23)
	blocks, combos := makeBlocks(g, g.MaxDegree()+1)
	if _, err := client.AnalyzeBlocksContext(ctx, blocks, combos); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestAnalyzeBlocksContextCancelMidRun(t *testing.T) {
	addrs, stop, err := StartLocal(1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	// Latency stretches the batch so the cancel lands mid-flight.
	client, err := Dial(addrs, ClientOptions{Latency: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	g := gen.HolmeKim(300, 5, 0.7, 29)
	blocks, combos := makeBlocks(g, g.MaxDegree()+1)
	if len(blocks) < 4 {
		t.Skip("not enough blocks to cancel mid-run")
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	_, err = client.AnalyzeBlocksContext(ctx, blocks, combos)
	elapsed := time.Since(t0)
	wg.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to unwind", elapsed)
	}
}
