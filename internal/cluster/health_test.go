package cluster

import (
	"strings"
	"testing"
	"time"

	"mce/internal/telemetry"
)

// failUntilQuarantined drives consecutive failures into addr until the
// registry benches it, bounded so a broken state machine fails the test
// instead of hanging it.
func failUntilQuarantined(t *testing.T, r *healthRegistry, addr string) {
	t.Helper()
	for i := 0; i < quarantineConsecFails+1; i++ {
		r.failure(addr, false)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byAddr[addr].state != stateQuarantined {
		t.Fatalf("%s not quarantined after %d consecutive failures", addr, quarantineConsecFails+1)
	}
}

func TestHealthLastWorkerNeverQuarantined(t *testing.T) {
	r := newHealthRegistry(nil)
	r.touch("a:1")
	for i := 0; i < 20; i++ {
		r.failure("a:1", false)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if got := r.byAddr["a:1"].state; got != stateHealthy {
		t.Fatalf("sole worker benched: state=%v; quarantine must preserve liveness", got)
	}
}

func TestHealthQuarantineAndProbeReadmission(t *testing.T) {
	met := telemetry.NewEngine()
	r := newHealthRegistry(met)
	r.touch("a:1")
	r.touch("b:2")
	failUntilQuarantined(t, r, "a:1")
	if met.WorkersQuarantined.Load() == 0 {
		t.Fatal("WorkersQuarantined not counted")
	}

	// Inside the cooldown the gate holds the dispatch back.
	now := time.Now()
	if wait, probe, recheck := r.gate("a:1", now); wait <= 0 || probe || !recheck {
		t.Fatalf("gate during cooldown = (%v, %v, %v), want positive rechecked wait, no probe", wait, probe, recheck)
	}
	// Past the cooldown the next dispatch is the re-admission probe, and
	// sibling dispatches stand back while it flies.
	after := now.Add(quarantineMaxCooldown + time.Second)
	if wait, probe, _ := r.gate("a:1", after); wait != 0 || !probe {
		t.Fatalf("gate after cooldown = (%v, %v), want (0, probe)", wait, probe)
	}
	if met.WorkerProbes.Load() != 1 {
		t.Fatal("WorkerProbes not counted")
	}
	if wait, probe, recheck := r.gate("a:1", after); wait != probeHold || probe || !recheck {
		t.Fatalf("sibling gate during probe = (%v, %v, %v), want (%v, false, true)", wait, probe, recheck, probeHold)
	}

	// A successful probe re-admits the worker and forgives the cooldown.
	r.success("a:1", 5*time.Millisecond)
	r.mu.Lock()
	h := r.byAddr["a:1"]
	if h.state != stateHealthy || h.cooldown != 0 {
		r.mu.Unlock()
		t.Fatalf("after probe success: state=%v cooldown=%v, want healthy, 0", h.state, h.cooldown)
	}
	r.mu.Unlock()
}

func TestHealthFailedProbeDoublesCooldown(t *testing.T) {
	r := newHealthRegistry(nil)
	r.touch("a:1")
	r.touch("b:2")
	failUntilQuarantined(t, r, "a:1")
	r.mu.Lock()
	first := r.byAddr["a:1"].cooldown
	r.mu.Unlock()
	if first != quarantineBaseCooldown {
		t.Fatalf("first cooldown = %v, want %v", first, quarantineBaseCooldown)
	}
	// Release, probe, fail the probe: back to quarantine, cooldown doubled.
	if _, probe, _ := r.gate("a:1", time.Now().Add(quarantineMaxCooldown+time.Second)); !probe {
		t.Fatal("expected a probe after the cooldown")
	}
	r.failure("a:1", false)
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.byAddr["a:1"]
	if h.state != stateQuarantined {
		t.Fatalf("failed probe left state=%v, want quarantined", h.state)
	}
	if h.cooldown != 2*first {
		t.Fatalf("cooldown after failed probe = %v, want %v", h.cooldown, 2*first)
	}
	if h.quarantines != 2 {
		t.Fatalf("quarantines = %d, want 2", h.quarantines)
	}
}

func TestHealthSuccessDecaysErrorScore(t *testing.T) {
	r := newHealthRegistry(nil)
	r.failure("a:1", false)
	r.mu.Lock()
	bad := r.byAddr["a:1"].errEWMA
	r.mu.Unlock()
	for i := 0; i < 20; i++ {
		r.success("a:1", time.Millisecond)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	got := r.byAddr["a:1"].errEWMA
	if got >= bad || got > 0.01 {
		t.Fatalf("errEWMA after recovery = %v (was %v), want near zero", got, bad)
	}
}

func TestHealthReportOrderingAndDegraded(t *testing.T) {
	r := newHealthRegistry(nil)
	r.touch("b:2")
	r.touch("a:1")
	r.success("b:2", 2*time.Millisecond)
	rep := r.report()
	if len(rep.Workers) != 2 || rep.Workers[0].Addr != "a:1" || rep.Workers[1].Addr != "b:2" {
		t.Fatalf("report not ordered by address: %+v", rep.Workers)
	}
	if rep.Degraded() {
		t.Fatal("healthy registry reported degraded")
	}
	failUntilQuarantined(t, r, "a:1")
	rep = r.report()
	if !rep.Degraded() {
		t.Fatal("quarantine not reflected in Degraded()")
	}
	s := rep.String()
	if !strings.Contains(s, "a:1: quarantined") || !strings.Contains(s, "b:2: healthy") {
		t.Fatalf("summary missing states:\n%s", s)
	}
	if rep.Workers[0].CorruptResults != 0 {
		t.Fatalf("phantom corrupt verdicts: %+v", rep.Workers[0])
	}
}

func TestHealthCorruptVerdictsCounted(t *testing.T) {
	r := newHealthRegistry(nil)
	r.failure("a:1", true)
	r.failure("a:1", false)
	rep := r.report()
	if rep.Workers[0].CorruptResults != 1 {
		t.Fatalf("CorruptResults = %d, want 1", rep.Workers[0].CorruptResults)
	}
	if rep.Workers[0].ConsecutiveFailures != 2 {
		t.Fatalf("ConsecutiveFailures = %d, want 2", rep.Workers[0].ConsecutiveFailures)
	}
}

func TestHealthGatePenalisesFlakyWorker(t *testing.T) {
	r := newHealthRegistry(nil)
	r.touch("a:1")
	r.touch("b:2")
	// One failure then one success: still serving, but errEWMA is above the
	// penalty threshold, so the gate delays the next dispatch.
	r.failure("a:1", false)
	r.success("a:1", time.Millisecond)
	wait, probe, recheck := r.gate("a:1", time.Now())
	if probe {
		t.Fatal("penalty gate must not be a probe")
	}
	if wait <= 0 || wait > penaltyMax {
		t.Fatalf("penalty wait = %v, want in (0, %v]", wait, penaltyMax)
	}
	// The penalty is a one-shot delay: dispatch follows the wait without
	// consulting the gate again, otherwise a worker whose score can only
	// decay by serving would never serve.
	if recheck {
		t.Fatal("penalty wait must not recheck the gate")
	}
	// A clean worker pays nothing.
	if w, _, _ := r.gate("b:2", time.Now()); w != 0 {
		t.Fatalf("clean worker penalised: %v", w)
	}
}
