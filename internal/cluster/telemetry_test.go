package cluster

import (
	"encoding/gob"
	"net"
	"testing"

	"mce/internal/gen"
	"mce/internal/telemetry"
)

// startMeteredWorker runs one Worker with its own telemetry engine.
func startMeteredWorker(t *testing.T) (addr string, eng *telemetry.Engine, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	eng = telemetry.NewEngine()
	w := &Worker{Metrics: eng}
	go func() { _ = w.Serve(ln) }()
	return ln.Addr().String(), eng, func() { _ = w.Close() }
}

func TestClientAndWorkerTelemetry(t *testing.T) {
	addr, workerEng, stop := startMeteredWorker(t)
	defer stop()

	clientEng := telemetry.NewEngine()
	c, err := Dial([]string{addr}, ClientOptions{Metrics: clientEng})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	g := gen.ErdosRenyi(60, 0.25, 2)
	blocks, combos := makeBlocks(g, g.MaxDegree()+1)
	if len(blocks) < 2 {
		t.Fatalf("want ≥ 2 blocks, got %d", len(blocks))
	}
	out, err := c.AnalyzeBlocks(blocks, combos)
	if err != nil {
		t.Fatal(err)
	}
	var cliques int64
	for _, cs := range out {
		cliques += int64(len(cs))
	}

	cs := clientEng.Snapshot()
	if cs.RoundTripNs.Count != int64(len(blocks)) {
		t.Fatalf("round trips = %d, want %d", cs.RoundTripNs.Count, len(blocks))
	}
	if cs.QueueDepth != 0 || cs.TasksInFlight != 0 {
		t.Fatalf("client gauges not drained: queue=%d inflight=%d", cs.QueueDepth, cs.TasksInFlight)
	}
	if cs.BytesSent == 0 || cs.BytesReceived == 0 {
		t.Fatalf("client wire accounting empty: sent=%d recv=%d", cs.BytesSent, cs.BytesReceived)
	}
	if cs.TaskRetries != 0 || cs.PoisonTasks != 0 || cs.CorruptResults != 0 {
		t.Fatalf("spurious failures recorded: %+v", cs)
	}

	//lint:ignore telemetryguard startMeteredWorker always builds the engine with telemetry.NewEngine, so the helper never returns nil
	ws := workerEng.Snapshot()
	if ws.TasksServed != int64(len(blocks)) {
		t.Fatalf("worker served %d tasks, want %d", ws.TasksServed, len(blocks))
	}
	if ws.TaskErrors != 0 || ws.TaskPanics != 0 {
		t.Fatalf("worker recorded failures: %+v", ws)
	}
	if ws.CliquesFound != cliques {
		t.Fatalf("worker found %d cliques, client received %d", ws.CliquesFound, cliques)
	}
	if ws.RecursionNodes == 0 || ws.BlocksAnalyzed != int64(len(blocks)) {
		t.Fatalf("worker algorithm counters: nodes=%d blocks=%d", ws.RecursionNodes, ws.BlocksAnalyzed)
	}
	// Conservation: what the client sent is what the worker received, and
	// vice versa (wireSize is deterministic on both sides).
	if cs.BytesSent != ws.BytesReceived || cs.BytesReceived != ws.BytesSent {
		t.Fatalf("wire accounting disagrees: client %d/%d, worker %d/%d",
			cs.BytesSent, cs.BytesReceived, ws.BytesSent, ws.BytesReceived)
	}
}

func TestClientTelemetryRetryAndReconnect(t *testing.T) {
	// A worker that dies after the handshake forces a transport failure;
	// the block must be retried on the surviving worker and the counters
	// must show one retry and no poison verdict.
	okAddr, _, stopOK := startMeteredWorker(t)
	defer stopOK()

	// Answer the handshake, swallow the first task and hang up.
	flakyAddr := fakeWorker(t, func(conn net.Conn) {
		defer conn.Close()
		dec, enc := gob.NewDecoder(conn), gob.NewEncoder(conn)
		var h hello
		if dec.Decode(&h) != nil {
			return
		}
		if enc.Encode(helloAck{Version: protocolVersion}) != nil {
			return
		}
		var task blockTask
		_ = dec.Decode(&task)
	})

	eng := telemetry.NewEngine()
	c, err := Dial([]string{flakyAddr, okAddr}, ClientOptions{Metrics: eng})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	g := gen.ErdosRenyi(40, 0.3, 4)
	blocks, combos := makeBlocks(g, g.MaxDegree()+1)
	if _, err := c.AnalyzeBlocks(blocks, combos); err != nil {
		t.Fatal(err)
	}
	s := eng.Snapshot()
	if s.TaskRetries == 0 {
		t.Fatal("no retry recorded after a worker death")
	}
	if s.PoisonTasks != 0 {
		t.Fatalf("poison verdict on a retryable failure: %+v", s)
	}
	if s.QueueDepth != 0 {
		t.Fatalf("queue depth leaked: %d", s.QueueDepth)
	}

	// A manual Reconnect revives the retired connection (the fake worker
	// still accepts and handshakes) and must count it.
	before := eng.Snapshot().Reconnects
	if _, err := c.Reconnect(); err != nil {
		t.Fatalf("reconnect: %v", err)
	}
	if got := eng.Snapshot().Reconnects; got != before+1 {
		t.Fatalf("Reconnects = %d, want %d", got, before+1)
	}
}
