package cluster

import (
	"compress/flate"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"mce/internal/decomp"
	"mce/internal/telemetry"
)

// Worker processes block-analysis tasks for coordinators. The zero value is
// ready to serve; MaxConns and DrainTimeout, if used, must be set before
// Serve.
type Worker struct {
	// MaxConns caps how many coordinator connections are served
	// concurrently. When the cap is reached further connections wait in
	// the listener's accept queue, so one worker process cannot be driven
	// into memory exhaustion by an over-eager coordinator. 0 means
	// unlimited.
	MaxConns int
	// DrainTimeout bounds how long Close waits for in-flight tasks to
	// finish and ship their results before force-closing the remaining
	// connections. 0 means 5s.
	DrainTimeout time.Duration
	// Metrics, when non-nil, receives worker-side telemetry: tasks served,
	// errors, panics, bytes on the wire, per-combo block timings and the
	// MCE recursion counters. Nil disables all instrumentation. Must be set
	// before Serve.
	Metrics *telemetry.Engine

	mu       sync.Mutex
	ln       net.Listener
	closed   bool
	closedCh chan struct{}
	conns    map[net.Conn]struct{}
	inflight int
	drained  chan struct{}
}

// initLocked lazily creates the zero value's channels and maps. Callers
// hold w.mu.
func (w *Worker) initLocked() {
	if w.closedCh == nil {
		w.closedCh = make(chan struct{})
	}
	if w.conns == nil {
		w.conns = make(map[net.Conn]struct{})
	}
}

// Serve accepts coordinator connections on ln until Close is called or the
// listener fails. Each connection is served on its own goroutine, so one
// worker process can serve several coordinators (the paper's time-shared
// cluster).
//
//lint:ignore ctxplumb Serve follows the net/http.Server.Serve idiom: its lifetime is owned by Close, which also tears down the listener — a ctx variant would duplicate that teardown path
func (w *Worker) Serve(ln net.Listener) error {
	w.mu.Lock()
	w.initLocked()
	if w.closed {
		w.mu.Unlock()
		ln.Close()
		return errors.New("cluster: worker already closed")
	}
	w.ln = ln
	closedCh := w.closedCh
	w.mu.Unlock()

	var sem chan struct{}
	if w.MaxConns > 0 {
		sem = make(chan struct{}, w.MaxConns)
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if w.isClosed() {
				return nil
			}
			return fmt.Errorf("cluster: accept: %w", err)
		}
		if sem != nil {
			select {
			case sem <- struct{}{}:
			case <-closedCh:
				conn.Close()
				return nil
			}
		}
		if !w.track(conn) {
			conn.Close()
			if sem != nil {
				<-sem
			}
			return nil
		}
		go func() {
			defer func() {
				w.untrack(conn)
				conn.Close()
				if sem != nil {
					<-sem
				}
			}()
			_ = w.serveConn(conn)
		}()
	}
}

// Close stops the accept loop, waits up to DrainTimeout for in-flight
// tasks to finish and ship their results, then closes every remaining
// connection (whose coordinators requeue their blocks elsewhere). It is
// idempotent: a second Close returns immediately.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.initLocked()
	w.closed = true
	close(w.closedCh)
	var err error
	if w.ln != nil {
		err = w.ln.Close()
	}
	var drained chan struct{}
	if w.inflight > 0 {
		drained = make(chan struct{})
		w.drained = drained
	}
	w.mu.Unlock()

	if drained != nil {
		dt := w.DrainTimeout
		if dt <= 0 {
			dt = 5 * time.Second
		}
		t := time.NewTimer(dt)
		select {
		case <-drained:
		case <-t.C: // a task is stuck (hung link, runaway block): give up
		}
		t.Stop()
	}
	w.mu.Lock()
	for conn := range w.conns {
		conn.Close()
	}
	w.mu.Unlock()
	return err
}

func (w *Worker) isClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

func (w *Worker) track(conn net.Conn) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	w.conns[conn] = struct{}{}
	return true
}

func (w *Worker) untrack(conn net.Conn) {
	w.mu.Lock()
	delete(w.conns, conn)
	w.mu.Unlock()
}

// beginTask registers one in-flight task; it refuses when the worker is
// draining so serving loops stop picking up new work.
func (w *Worker) beginTask() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	w.inflight++
	return true
}

func (w *Worker) endTask() {
	w.mu.Lock()
	w.inflight--
	if w.closed && w.inflight == 0 && w.drained != nil {
		close(w.drained)
		w.drained = nil
	}
	w.mu.Unlock()
}

// ServeConn answers one coordinator connection: a handshake followed by a
// stream of blockTask messages, each answered with a blockResult. It
// returns nil when the coordinator hangs up.
func ServeConn(conn net.Conn) error {
	w := &Worker{}
	w.mu.Lock()
	w.initLocked()
	w.mu.Unlock()
	return w.serveConn(conn)
}

func (w *Worker) serveConn(conn net.Conn) error {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)

	var h hello
	if err := dec.Decode(&h); err != nil {
		return fmt.Errorf("cluster: handshake: %w", err)
	}
	if err := enc.Encode(helloAck{Version: protocolVersion, Compress: h.Compress}); err != nil {
		return fmt.Errorf("cluster: handshake ack: %w", err)
	}
	if h.Version != protocolVersion {
		return fmt.Errorf("cluster: coordinator speaks version %d, worker %d", h.Version, protocolVersion)
	}
	var flush func() error
	if h.Compress {
		// The handshake stays plain; everything after it is DEFLATE both
		// ways.
		fr := flate.NewReader(conn)
		fw, err := flate.NewWriter(conn, flate.BestSpeed)
		if err != nil {
			return fmt.Errorf("cluster: compression: %w", err)
		}
		defer fw.Close()
		dec = gob.NewDecoder(fr)
		enc = gob.NewEncoder(fw)
		flush = fw.Flush
	}

	met := w.Metrics
	for {
		var t blockTask
		if err := dec.Decode(&t); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("cluster: decode task: %w", err)
		}
		// Draining: drop the task without an answer — closing the
		// connection makes the coordinator requeue it elsewhere.
		if !w.beginTask() {
			return nil
		}
		if met != nil {
			met.BytesReceived.Add(t.wireSize())
			met.TasksInFlight.Add(1)
		}
		res := runTask(&t, met)
		if met != nil {
			met.TasksInFlight.Add(-1)
		}
		res.Sum = res.payloadSum()
		err := enc.Encode(&res)
		if err == nil && flush != nil {
			err = flush()
		}
		if err == nil && met != nil {
			met.BytesSent.Add(res.wireSize())
		}
		w.endTask()
		if err != nil {
			return fmt.Errorf("cluster: encode result: %w", err)
		}
	}
}

// runTask executes BLOCK-ANALYSIS for one task, capturing errors in-band.
// A panicking block (malformed task, algorithm bug) is converted into an
// in-band error instead of killing the worker process, so one poison task
// cannot take down a node that other coordinators share. met may be nil.
func runTask(t *blockTask, met *telemetry.Engine) (res blockResult) {
	res = blockResult{ID: t.ID, Level: t.Level, Plan: t.Plan}
	if met != nil {
		met.TasksServed.Inc()
	}
	defer func() {
		if r := recover(); r != nil {
			res = blockResult{ID: t.ID, Level: t.Level, Plan: t.Plan, Err: fmt.Sprintf("panic in BLOCK-ANALYSIS: %v", r)}
			if met != nil {
				met.TaskPanics.Inc()
			}
		}
		if met != nil && (res.Err != "" || res.Corrupt) {
			met.TaskErrors.Inc()
		}
	}()
	if t.Sum != t.payloadSum() {
		res.Corrupt = true
		if met != nil {
			met.CorruptResults.Inc()
		}
		return res
	}
	b, combo, err := blockFromTask(t)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	var ins *telemetry.BlockInstr
	var t0 time.Time
	if met != nil {
		ins = &telemetry.BlockInstr{}
		t0 = time.Now()
	}
	// Intra-block parallelism rides the combo, not the wire protocol: a
	// coordinator that selected BitSetsParallel gets a work-stealing pool
	// here sized to the worker's GOMAXPROCS (mcealg's auto default), and the
	// pool's depth-first merge keeps the result bytes — and therefore the
	// task checksum and checkpoint digests — identical to a sequential run.
	// A pool-worker panic propagates to this goroutine and lands in the
	// recover above, preserving the worker's poison-task isolation.
	err = decomp.AnalyzeBlockInstr(b, combo, func(c []int32) {
		cp := make([]int32, len(c))
		copy(cp, c)
		res.Cliques = append(res.Cliques, cp)
	}, ins)
	if met != nil {
		met.ComboAnalyzed(combo.Index(), combo.Label(), time.Since(t0))
		met.MergeBlockInstr(ins)
		met.CliquesFound.Add(int64(len(res.Cliques)))
	}
	if err != nil {
		res.Err = err.Error()
		res.Cliques = nil
	}
	return res
}

// StartLocal launches n workers on ephemeral localhost ports and returns
// their addresses plus a stop function. It is the one-command stand-in for
// the paper's 10-machine deployment, used by tests, examples and benches.
// stop is idempotent: calling it twice is safe.
//
//lint:ignore ctxplumb lifecycle is owned by the returned stop function; ephemeral localhost listens cannot block, so a ctx adds nothing but an extra test-helper shape
func StartLocal(n int) (addrs []string, stop func(), err error) {
	var workers []*Worker
	var once sync.Once
	stop = func() {
		once.Do(func() {
			for _, w := range workers {
				_ = w.Close()
			}
		})
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, fmt.Errorf("cluster: start local worker %d: %w", i, err)
		}
		w := &Worker{}
		workers = append(workers, w)
		addrs = append(addrs, ln.Addr().String())
		go func() { _ = w.Serve(ln) }()
	}
	return addrs, stop, nil
}
