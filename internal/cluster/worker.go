package cluster

import (
	"compress/flate"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"mce/internal/decomp"
)

// Worker processes block-analysis tasks for coordinators. The zero value is
// ready to serve.
type Worker struct {
	mu     sync.Mutex
	ln     net.Listener
	closed bool
}

// Serve accepts coordinator connections on ln until Close is called or the
// listener fails. Each connection is served on its own goroutine, so one
// worker process can serve several coordinators (the paper's time-shared
// cluster).
func (w *Worker) Serve(ln net.Listener) error {
	w.mu.Lock()
	w.ln = ln
	closed := w.closed
	w.mu.Unlock()
	if closed {
		ln.Close()
		return errors.New("cluster: worker already closed")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed
			w.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("cluster: accept: %w", err)
		}
		go func() {
			defer conn.Close()
			_ = ServeConn(conn)
		}()
	}
}

// Close stops the accept loop.
func (w *Worker) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	if w.ln != nil {
		return w.ln.Close()
	}
	return nil
}

// ServeConn answers one coordinator connection: a handshake followed by a
// stream of blockTask messages, each answered with a blockResult. It
// returns nil when the coordinator hangs up.
func ServeConn(conn net.Conn) error {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)

	var h hello
	if err := dec.Decode(&h); err != nil {
		return fmt.Errorf("cluster: handshake: %w", err)
	}
	if err := enc.Encode(helloAck{Version: protocolVersion, Compress: h.Compress}); err != nil {
		return fmt.Errorf("cluster: handshake ack: %w", err)
	}
	if h.Version != protocolVersion {
		return fmt.Errorf("cluster: coordinator speaks version %d, worker %d", h.Version, protocolVersion)
	}
	var flush func() error
	if h.Compress {
		// The handshake stays plain; everything after it is DEFLATE both
		// ways.
		fr := flate.NewReader(conn)
		fw, err := flate.NewWriter(conn, flate.BestSpeed)
		if err != nil {
			return fmt.Errorf("cluster: compression: %w", err)
		}
		defer fw.Close()
		dec = gob.NewDecoder(fr)
		enc = gob.NewEncoder(fw)
		flush = fw.Flush
	}

	for {
		var t blockTask
		if err := dec.Decode(&t); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("cluster: decode task: %w", err)
		}
		res := runTask(&t)
		if err := enc.Encode(&res); err != nil {
			return fmt.Errorf("cluster: encode result: %w", err)
		}
		if flush != nil {
			if err := flush(); err != nil {
				return fmt.Errorf("cluster: flush result: %w", err)
			}
		}
	}
}

// runTask executes BLOCK-ANALYSIS for one task, capturing errors in-band.
func runTask(t *blockTask) blockResult {
	res := blockResult{ID: t.ID}
	b, combo, err := blockFromTask(t)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	err = decomp.AnalyzeBlock(b, combo, func(c []int32) {
		cp := make([]int32, len(c))
		copy(cp, c)
		res.Cliques = append(res.Cliques, cp)
	})
	if err != nil {
		res.Err = err.Error()
		res.Cliques = nil
	}
	return res
}

// StartLocal launches n workers on ephemeral localhost ports and returns
// their addresses plus a stop function. It is the one-command stand-in for
// the paper's 10-machine deployment, used by tests, examples and benches.
func StartLocal(n int) (addrs []string, stop func(), err error) {
	var workers []*Worker
	var listeners []net.Listener
	stop = func() {
		for _, w := range workers {
			w.Close()
		}
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, fmt.Errorf("cluster: start local worker %d: %w", i, err)
		}
		w := &Worker{}
		workers = append(workers, w)
		listeners = append(listeners, ln)
		addrs = append(addrs, ln.Addr().String())
		go func() { _ = w.Serve(ln) }()
	}
	_ = listeners
	return addrs, stop, nil
}
