package cluster

import (
	"compress/flate"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mce/internal/decomp"
	"mce/internal/mcealg"
	"mce/internal/resguard"
	"mce/internal/runlog"
	"mce/internal/telemetry"
)

// ClientOptions tunes the coordinator side of the cluster.
type ClientOptions struct {
	// DialTimeout bounds each worker connection attempt; 0 means 5s.
	DialTimeout time.Duration
	// TaskTimeout bounds one task round trip: send, remote analysis,
	// receive. A worker that does not answer inside the envelope is
	// retired (its connection closed, its block requeued), so a hung
	// worker can never stall AnalyzeBlocks forever. 0 derives a generous
	// envelope from the block size (30s plus 1ms per node and edge plus
	// the simulated link costs); negative disables deadlines entirely.
	TaskTimeout time.Duration
	// TaskRetries is the per-block transport-failure budget: a block
	// whose round trip has failed on this many connections is declared a
	// poison task and the batch fails deterministically with a
	// *PoisonTaskError, instead of cascading worker by worker through the
	// whole cluster. 0 means 3; negative means unlimited.
	TaskRetries int
	// SkipPoisonTasks turns a poison verdict from a batch-fatal error into
	// a recorded skip: the block's cliques are omitted from the result, the
	// verdict is retained (PoisonVerdicts), and the batch carries on. The
	// output is then explicitly incomplete — callers must surface the
	// verdicts, not swallow them; mcefind exits non-zero with a skip
	// summary.
	SkipPoisonTasks bool
	// AutoReconnect re-dials dead workers on a background goroutine with
	// exponential backoff and jitter, so capacity lost to a worker
	// restart comes back on its own — including to a batch already in
	// flight. Without it, Reconnect must be called manually.
	AutoReconnect bool
	// ReconnectBackoff is the initial pause between reconnection sweeps
	// (0 means 50ms); it doubles after every failed sweep up to
	// ReconnectMaxBackoff (0 means 2s), with up to 50% random jitter so a
	// cluster of coordinators does not thunder against a restarting
	// worker.
	ReconnectBackoff    time.Duration
	ReconnectMaxBackoff time.Duration
	// AllDeadGrace is how long an in-flight batch waits for AutoReconnect
	// to restore capacity after every worker has died before giving up;
	// 0 means 5s. Ignored when AutoReconnect is off — then the batch
	// fails as soon as the last worker dies.
	AllDeadGrace time.Duration
	// Latency is an artificial per-message delay injected before every
	// task send, simulating cluster interconnect round trips. It lets the
	// single-machine reproduction exhibit the communication overhead the
	// paper observes when many small blocks are shipped (§6.3).
	Latency time.Duration
	// BandwidthBytesPerSec throttles message payloads; 0 disables
	// throttling.
	BandwidthBytesPerSec int64
	// ConnectionsPerWorker opens this many parallel streams to each
	// worker address, letting one multi-core worker process several blocks
	// concurrently (the worker serves every connection on its own
	// goroutine). 0 means 1.
	ConnectionsPerWorker int
	// Compress negotiates DEFLATE on every stream after the handshake,
	// trading CPU for bandwidth on slow interconnects.
	Compress bool
	// Hedge enables speculative re-dispatch of straggling blocks: when a
	// block's in-flight time exceeds HedgeMultiplier × the HedgeQuantile
	// of the round trips observed so far in its level, a duplicate is
	// queued for another worker and the first result wins. Lemma 1
	// determinism makes the duplicate's answer identical, and first-wins
	// dedup keyed by the block keeps the output exactly-once.
	Hedge bool
	// HedgeQuantile is the round-trip quantile a straggler is measured
	// against; 0 means 0.9.
	HedgeQuantile float64
	// HedgeMultiplier scales the quantile into the hedge threshold; 0
	// means 2.
	HedgeMultiplier float64
	// HedgeMinDelay floors the hedge threshold so microsecond-level
	// batches do not hedge on noise; 0 means 25ms.
	HedgeMinDelay time.Duration
	// HedgeMinObservations is how many round trips the level must have
	// seen before hedging starts; 0 means 3.
	HedgeMinObservations int
	// HedgeMax caps the speculative copies per block; 0 means 1.
	HedgeMax int
	// MemoryBudget is a coordinator heap budget in bytes. While the heap
	// is above it, dispatch pauses (backpressure) instead of buffering
	// more results toward an OOM kill; one block always stays in flight so
	// the run degrades to serial execution, never deadlocks. 0 disables
	// the guard.
	MemoryBudget int64
	// Metrics, when non-nil, receives coordinator-side telemetry: tasks in
	// flight, retries, reconnects, poison/corrupt verdicts, hedging and
	// health-scoring counters, bytes on the wire and the round-trip
	// latency histogram. Nil disables all of it.
	Metrics *telemetry.Engine
}

// retryBudget resolves the TaskRetries default; < 0 means unlimited.
func (o *ClientOptions) retryBudget() int {
	if o.TaskRetries == 0 {
		return 3
	}
	return o.TaskRetries
}

// Hedge option resolvers.
func (o *ClientOptions) hedgeQuantile() float64 {
	if o.HedgeQuantile <= 0 || o.HedgeQuantile > 1 {
		return 0.9
	}
	return o.HedgeQuantile
}

func (o *ClientOptions) hedgeMultiplier() float64 {
	if o.HedgeMultiplier <= 0 {
		return 2
	}
	return o.HedgeMultiplier
}

func (o *ClientOptions) hedgeMinDelay() time.Duration {
	if o.HedgeMinDelay <= 0 {
		return 25 * time.Millisecond
	}
	return o.HedgeMinDelay
}

func (o *ClientOptions) hedgeMinObs() int {
	if o.HedgeMinObservations <= 0 {
		return 3
	}
	return o.HedgeMinObservations
}

func (o *ClientOptions) hedgeMax() int {
	if o.HedgeMax <= 0 {
		return 1
	}
	return o.HedgeMax
}

// Client is a coordinator attached to a fixed set of workers. It implements
// the core.Executor and core.ContextExecutor interfaces, so it can be
// plugged directly into FindMaxCliques.
type Client struct {
	opts   ClientOptions
	health *healthRegistry
	guard  *resguard.Guard
	mu     sync.Mutex
	conns  []*workerConn
	closed bool
	report DialReport

	// kick wakes the reconnect loop when a connection dies; done stops it.
	kick chan struct{}
	done chan struct{}

	// recruits are channels of in-flight batches waiting for revived
	// connections.
	recruitMu sync.Mutex
	recruits  map[chan *workerConn]struct{}

	// verdicts accumulates poison-task skips under SkipPoisonTasks.
	verdictMu sync.Mutex
	verdicts  []PoisonTaskError
}

// PoisonVerdicts returns the poison tasks skipped so far under
// SkipPoisonTasks, oldest first. Empty means the results are complete.
func (c *Client) PoisonVerdicts() []PoisonTaskError {
	c.verdictMu.Lock()
	defer c.verdictMu.Unlock()
	return append([]PoisonTaskError(nil), c.verdicts...)
}

func (c *Client) recordPoison(v PoisonTaskError) {
	c.verdictMu.Lock()
	c.verdicts = append(c.verdicts, v)
	c.verdictMu.Unlock()
}

// workerConn serialises access to one worker connection. conn is nil for a
// placeholder recording an address that was unreachable at Dial time (kept
// only under AutoReconnect, so the background loop can adopt the worker
// when it comes up).
type workerConn struct {
	addr   string
	conn   net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	flush  func() error // non-nil when the stream is compressed
	dead   bool
	leased bool // owned by a batch runner (possibly a straggler of a returned batch)
	tasks  int
	busy   time.Duration
}

// WorkerStats describes one worker's share of the computation — the load
// skew the distributed MCE literature worries about ([38] in the paper).
type WorkerStats struct {
	Addr string
	// Tasks is the number of blocks this worker completed.
	Tasks int
	// Busy is the total round-trip time spent on this worker, including
	// the simulated link costs.
	Busy time.Duration
	// Dead reports that the connection has been retired after a failure.
	Dead bool
}

// Stats returns a snapshot of per-worker load, ordered as dialled.
func (c *Client) Stats() []WorkerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerStats, 0, len(c.conns))
	for _, wc := range c.conns {
		out = append(out, WorkerStats{Addr: wc.addr, Tasks: wc.tasks, Busy: wc.busy, Dead: wc.dead})
	}
	return out
}

// DialFailure records one worker address that could not be dialled.
type DialFailure struct {
	Addr string
	Err  error
}

// DialReport describes how a Dial went: which addresses were attempted,
// how many connections came up, and which addresses failed. A degraded
// start (some but not all workers reachable) is not an error — the run
// proceeds on the survivors — but callers should surface it rather than
// discover the missing capacity from a slow run.
type DialReport struct {
	// Addrs lists every address Dial attempted.
	Addrs []string
	// Connected is the number of connections established (streams, not
	// addresses: ConnectionsPerWorker multiplies it).
	Connected int
	// Failures lists the addresses that were unreachable.
	Failures []DialFailure
}

// Degraded reports whether some workers were unreachable at Dial time.
func (r DialReport) Degraded() bool { return len(r.Failures) > 0 }

// DialReport returns the degraded-start record of the initial Dial.
func (c *Client) DialReport() DialReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.report
}

// Dial connects to every worker address. It fails unless at least one
// worker is reachable; unreachable workers are reported in the error when
// everything is down, and in DialReport when the start is merely degraded.
// With AutoReconnect, unreachable addresses are remembered and adopted by
// the background reconnect loop as soon as their workers come up.
func Dial(addrs []string, opts ClientOptions) (*Client, error) {
	return DialContext(context.Background(), addrs, opts)
}

// DialContext is Dial with cancellation: cancelling ctx abandons the
// remaining connection attempts (each individual attempt is still bounded
// by DialTimeout, and a ctx deadline earlier than the dial budget tightens
// the handshake deadline too). The context governs dialling only, not the
// returned client's lifetime — background reconnects use their own budget.
func DialContext(ctx context.Context, addrs []string, opts ClientOptions) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("cluster: no worker addresses")
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.ReconnectBackoff <= 0 {
		opts.ReconnectBackoff = 50 * time.Millisecond
	}
	if opts.ReconnectMaxBackoff <= 0 {
		opts.ReconnectMaxBackoff = 2 * time.Second
	}
	if opts.AllDeadGrace <= 0 {
		opts.AllDeadGrace = 5 * time.Second
	}
	conns := opts.ConnectionsPerWorker
	if conns < 1 {
		conns = 1
	}
	c := &Client{
		opts:     opts,
		health:   newHealthRegistry(opts.Metrics),
		guard:    resguard.New(opts.MemoryBudget, opts.Metrics),
		kick:     make(chan struct{}, 1),
		done:     make(chan struct{}),
		recruits: make(map[chan *workerConn]struct{}),
	}
	c.report.Addrs = append([]string(nil), addrs...)
	for _, addr := range addrs {
		c.health.touch(addr)
	}
	var dialErrs []error
	for _, addr := range addrs {
		for i := 0; i < conns; i++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("cluster: dial cancelled: %w", err)
			}
			wc, err := dialWorkerContext(ctx, addr, opts.DialTimeout, opts.Compress)
			if err != nil {
				dialErrs = append(dialErrs, err)
				c.report.Failures = append(c.report.Failures, DialFailure{Addr: addr, Err: err})
				if opts.AutoReconnect {
					// Placeholders let the reconnect loop adopt the
					// address later.
					for ; i < conns; i++ {
						c.conns = append(c.conns, &workerConn{addr: addr, dead: true})
					}
				}
				break // the address is down; skip its remaining streams
			}
			c.conns = append(c.conns, wc)
			c.report.Connected++
		}
	}
	if c.report.Connected == 0 {
		return nil, fmt.Errorf("cluster: no workers reachable: %v", errors.Join(dialErrs...))
	}
	if opts.AutoReconnect {
		go c.reconnectLoop()
		if len(c.report.Failures) > 0 {
			c.kickReconnect()
		}
	}
	return c, nil
}

func dialWorker(addr string, timeout time.Duration, compress bool) (*workerConn, error) {
	return dialWorkerContext(context.Background(), addr, timeout, compress)
}

func dialWorkerContext(ctx context.Context, addr string, timeout time.Duration, compress bool) (*workerConn, error) {
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	// The handshake shares the dial budget (tightened by an earlier ctx
	// deadline), so a worker that accepts but never answers cannot stall
	// Dial forever.
	deadline := time.Now().Add(timeout)
	if cd, ok := ctx.Deadline(); ok && cd.Before(deadline) {
		deadline = cd
	}
	conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})
	wc := &workerConn{addr: addr, conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	if err := wc.enc.Encode(hello{Version: protocolVersion, Compress: compress}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: handshake with %s: %w", addr, err)
	}
	var ack helloAck
	if err := wc.dec.Decode(&ack); err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: handshake ack from %s: %w", addr, err)
	}
	if ack.Version != protocolVersion {
		conn.Close()
		return nil, fmt.Errorf("cluster: worker %s speaks version %d, want %d", addr, ack.Version, protocolVersion)
	}
	if compress {
		if !ack.Compress {
			conn.Close()
			return nil, fmt.Errorf("cluster: worker %s refused compression", addr)
		}
		fr := flate.NewReader(conn)
		fw, err := flate.NewWriter(conn, flate.BestSpeed)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("cluster: compression: %w", err)
		}
		wc.enc = gob.NewEncoder(fw)
		wc.dec = gob.NewDecoder(fr)
		wc.flush = fw.Flush
	}
	return wc, nil
}

// HealthReport returns the per-worker health scoring summary: EWMA
// latency and error rates, corrupt verdicts, and the quarantine record of
// every address this client has talked to.
func (c *Client) HealthReport() HealthReport { return c.health.report() }

// lease claims a connection for a batch runner; false when the connection
// is dead or already owned.
func (c *Client) lease(wc *workerConn) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if wc.dead || wc.leased {
		return false
	}
	wc.leased = true
	return true
}

// unlease returns a runner's connection to the pool and offers it to any
// in-flight batch — the path by which a straggler's connection rejoins
// work after its batch has already returned.
func (c *Client) unlease(wc *workerConn) {
	c.mu.Lock()
	wc.leased = false
	usable := !wc.dead && !c.closed
	c.mu.Unlock()
	if usable {
		c.offer(wc)
	}
}

// leasedConns counts live connections currently owned by some batch
// runner — capacity that can return through the recruiter.
func (c *Client) leasedConns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, wc := range c.conns {
		if !wc.dead && wc.leased {
			n++
		}
	}
	return n
}

// markDead retires a connection after a transport failure and nudges the
// background reconnect loop.
func (c *Client) markDead(wc *workerConn) {
	c.mu.Lock()
	if !wc.dead {
		wc.dead = true
		if wc.conn != nil {
			wc.conn.Close()
		}
	}
	c.mu.Unlock()
	c.kickReconnect()
}

func (c *Client) kickReconnect() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// reconnectLoop re-dials dead connections whenever one dies, backing off
// exponentially (with jitter) while a worker stays down. It exits when the
// client is closed.
func (c *Client) reconnectLoop() {
	// The jitter source is seeded deterministically: reproducible runs
	// matter more here than cross-client decorrelation, which the
	// per-address dial timing provides anyway.
	rng := rand.New(rand.NewSource(1))
	backoff := c.opts.ReconnectBackoff
	for {
		select {
		case <-c.done:
			return
		case <-c.kick:
		}
		for c.deadConns() > 0 {
			if c.redialDead() > 0 {
				backoff = c.opts.ReconnectBackoff
				continue
			}
			jitter := time.Duration(rng.Int63n(int64(backoff)/2 + 1))
			t := time.NewTimer(backoff + jitter)
			select {
			case <-c.done:
				t.Stop()
				return
			case <-t.C:
			}
			backoff *= 2
			if backoff > c.opts.ReconnectMaxBackoff {
				backoff = c.opts.ReconnectMaxBackoff
			}
		}
		backoff = c.opts.ReconnectBackoff
	}
}

func (c *Client) deadConns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0
	}
	n := 0
	for _, wc := range c.conns {
		if wc.dead {
			n++
		}
	}
	return n
}

// redialDead attempts one reconnection sweep over every dead connection
// and reports how many came back. Revived connections are offered to
// in-flight batches so capacity returns mid-run.
func (c *Client) redialDead() int {
	c.mu.Lock()
	var dead []int
	for i, wc := range c.conns {
		if wc.dead {
			dead = append(dead, i)
		}
	}
	c.mu.Unlock()
	revived := 0
	for _, i := range dead {
		c.mu.Lock()
		wc := c.conns[i]
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return revived
		}
		if !wc.dead {
			continue
		}
		fresh, err := dialWorker(wc.addr, c.opts.DialTimeout, c.opts.Compress)
		if err != nil {
			continue
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			fresh.conn.Close()
			return revived
		}
		// Preserve the accumulated load accounting for the address.
		fresh.tasks = wc.tasks
		fresh.busy = wc.busy
		c.conns[i] = fresh
		c.mu.Unlock()
		revived++
		if met := c.opts.Metrics; met != nil {
			met.Reconnects.Inc()
		}
		c.offer(fresh)
	}
	return revived
}

// offer hands a revived connection to at most one in-flight batch.
func (c *Client) offer(wc *workerConn) {
	c.recruitMu.Lock()
	defer c.recruitMu.Unlock()
	for ch := range c.recruits {
		select {
		case ch <- wc:
			return
		default:
		}
	}
}

// Reconnect re-dials every dead connection once, restoring capacity after
// worker restarts. It returns how many connections are alive afterwards;
// per-address failures are reported in the error while surviving
// connections keep working. With AutoReconnect this happens on its own.
func (c *Client) Reconnect() (int, error) {
	c.mu.Lock()
	var deadIdx []int
	for i, wc := range c.conns {
		if wc.dead {
			deadIdx = append(deadIdx, i)
		}
	}
	c.mu.Unlock()
	var errs []error
	for _, i := range deadIdx {
		c.mu.Lock()
		wc := c.conns[i]
		c.mu.Unlock()
		if !wc.dead {
			continue
		}
		fresh, err := dialWorker(wc.addr, c.opts.DialTimeout, c.opts.Compress)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		c.mu.Lock()
		fresh.tasks = wc.tasks
		fresh.busy = wc.busy
		c.conns[i] = fresh
		c.mu.Unlock()
		if met := c.opts.Metrics; met != nil {
			met.Reconnects.Inc()
		}
		c.offer(fresh)
	}
	c.mu.Lock()
	alive := 0
	for _, wc := range c.conns {
		if !wc.dead {
			alive++
		}
	}
	c.mu.Unlock()
	return alive, errors.Join(errs...)
}

// Workers reports how many worker connections are still alive.
func (c *Client) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	alive := 0
	for _, wc := range c.conns {
		if !wc.dead {
			alive++
		}
	}
	return alive
}

// Close hangs up every worker connection and stops the reconnect loop. It
// is idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	var first error
	for _, wc := range c.conns {
		if wc.conn != nil {
			if err := wc.conn.Close(); err != nil && first == nil {
				first = err
			}
		}
		wc.dead = true
	}
	c.mu.Unlock()
	close(c.done)
	return first
}

// PoisonTaskError reports a block that exhausted its transport retry
// budget: its round trip failed on Attempts distinct connections, which
// almost always means the task itself crashes or stalls whichever worker
// it lands on. The batch fails deterministically with the per-attempt
// diagnostics instead of cascading through the rest of the cluster.
type PoisonTaskError struct {
	// Block is the failing block's index within the batch.
	Block int
	// Attempts is how many connections the block failed on.
	Attempts int
	// Causes records "addr: error" for every failed attempt, oldest
	// first.
	Causes []string
}

func (e *PoisonTaskError) Error() string {
	return fmt.Sprintf("cluster: poison task: block %d failed on %d workers: %s",
		e.Block, e.Attempts, strings.Join(e.Causes, "; "))
}

// applicationError marks worker-reported BLOCK-ANALYSIS failures.
type applicationError struct{ msg string }

func (e *applicationError) Error() string { return e.msg }

// cleanCancelError wraps a context error raised before any bytes hit the
// wire, so the runner knows the connection is still in sync and must not
// be retired.
type cleanCancelError struct{ err error }

func (e *cleanCancelError) Error() string { return e.err.Error() }
func (e *cleanCancelError) Unwrap() error { return e.err }

// corruptResultError marks a round trip whose reply arrived in sync but
// failed verification (a Corrupt verdict or a checksum mismatch). The
// stream is intact — the connection stays usable — but the answer cannot be
// trusted, so the block is retried and the worker's health score charged.
type corruptResultError struct{ msg string }

func (e *corruptResultError) Error() string { return e.msg }

// AnalyzeBlocks ships every block to some worker and gathers the cliques,
// indexed like blocks. It implements core.Executor; see
// AnalyzeBlocksContext for the failure semantics.
func (c *Client) AnalyzeBlocks(blocks []decomp.Block, combos []mcealg.Combo) ([][][]int32, error) {
	return c.AnalyzeBlocksContext(context.Background(), blocks, combos)
}

// AnalyzeBlocksContext is AnalyzeBlocks with cancellation. A worker that
// fails or times out mid-flight has its task requeued to the surviving
// workers, bounded by the per-task retry budget (TaskRetries); capacity
// revived by AutoReconnect joins the batch while it runs. The call fails
// when a task is rejected by the application (deterministic failure), when
// a task exhausts its retry budget (*PoisonTaskError), when every worker
// has died (after AllDeadGrace under AutoReconnect), or when ctx is
// cancelled — cancellation retires connections with a round trip in
// flight, because the wire protocol has no way to abandon a pending
// response. It implements core.ContextExecutor.
func (c *Client) AnalyzeBlocksContext(ctx context.Context, blocks []decomp.Block, combos []mcealg.Combo) ([][][]int32, error) {
	return c.analyzeBlocks(ctx, blocks, combos, nil, nil)
}

// AnalyzeBlocksCheckpoint is AnalyzeBlocksContext with per-block
// durability: every block carries its stable checkpoint identity on the
// wire (journaled by the coordinator, echoed by the worker), and obs is
// told the moment each block is dispatched and the moment its cliques are
// safely back — not at batch end — so a coordinator killed mid-batch
// resumes with every completed block already durable. ids must index like
// blocks. It implements core.CheckpointExecutor.
func (c *Client) AnalyzeBlocksCheckpoint(ctx context.Context, blocks []decomp.Block, combos []mcealg.Combo, ids []runlog.BlockID, obs runlog.BatchObserver) ([][][]int32, error) {
	if len(ids) != len(blocks) {
		return nil, fmt.Errorf("cluster: %d blocks but %d block IDs", len(blocks), len(ids))
	}
	return c.analyzeBlocks(ctx, blocks, combos, ids, obs)
}

// attempt is one dispatch-queue entry: a block index plus whether this
// copy is speculative (hedged).
type attempt struct {
	block int
	hedge bool
}

// flight tracks one block's in-flight attempts for the hedge monitor.
type flight struct {
	mu       sync.Mutex
	started  time.Time // dispatch time of the oldest current attempt
	inFlight int
	hedges   int // lifetime speculative copies, capped at hedgeMax
}

// hedgeTick is how often the hedge monitor re-examines in-flight blocks.
const hedgeTick = 5 * time.Millisecond

// hedgeThreshold turns the level's observed round trips into the elapsed
// time past which a block counts as straggling. Zero means "not enough
// data yet, do not hedge".
func (c *Client) hedgeThreshold(rtt *telemetry.Histogram) time.Duration {
	snap := rtt.Snapshot()
	if snap.Count < int64(c.opts.hedgeMinObs()) {
		return 0
	}
	th := time.Duration(snap.Quantile(c.opts.hedgeQuantile()) * c.opts.hedgeMultiplier())
	if th < c.opts.hedgeMinDelay() {
		th = c.opts.hedgeMinDelay()
	}
	return th
}

// analyzeBlocks is the shared batch engine behind both executor shapes.
// ids/obs are nil for plain batches.
//
// Connections are leased to the batch for its duration: the batch returns
// the moment every block has an answer (first-wins under hedging), while a
// straggling round trip keeps its connection leased until it resolves and
// only then rejoins the pool. Duplicate results — the whole point of
// hedged dispatch — are discarded by a compare-and-swap per block, which
// is sound because Lemma 1 determinism makes every copy's answer
// identical.
func (c *Client) analyzeBlocks(ctx context.Context, blocks []decomp.Block, combos []mcealg.Combo, ids []runlog.BlockID, obs runlog.BatchObserver) ([][][]int32, error) {
	if len(blocks) != len(combos) {
		return nil, fmt.Errorf("cluster: %d blocks but %d combos", len(blocks), len(combos))
	}
	out := make([][][]int32, len(blocks))
	if len(blocks) == 0 {
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	var alive []*workerConn
	leasedOut := 0
	for _, wc := range c.conns {
		if wc.dead {
			continue
		}
		if wc.leased {
			leasedOut++ // a straggler of an earlier batch still owns it
			continue
		}
		wc.leased = true
		alive = append(alive, wc)
	}
	c.mu.Unlock()
	if len(alive) == 0 && leasedOut == 0 && !c.opts.AutoReconnect {
		return nil, errors.New("cluster: all workers are dead")
	}

	hedgeMax := 0
	if c.opts.Hedge {
		hedgeMax = c.opts.hedgeMax()
	}
	// A block occupies at most one primary/requeue slot plus its lifetime
	// hedge allowance, so the queue can never block a sender.
	tasks := make(chan attempt, len(blocks)*(1+hedgeMax))
	for i := range blocks {
		tasks <- attempt{block: i}
	}
	met := c.opts.Metrics
	if met != nil {
		met.QueueDepth.Add(int64(len(blocks)))
	}
	var (
		completed  int64
		aliveCount = int64(len(alive))
		done       = make(chan struct{})
		closeOnce  sync.Once
		errMu      sync.Mutex
		fatal      error
		lastDeath  error
		attempts   = make([]int, len(blocks))
		causes     = make([][]string, len(blocks))
		budget     = c.opts.retryBudget()
		drained    = make(chan struct{}, 1)
		fresh      = make(chan *workerConn, 16)
		claimed    = make([]atomic.Bool, len(blocks)) // first-wins dedup
		flights    = make([]flight, len(blocks))
		rtt        = telemetry.NewDurationHistogram() // this batch's round trips
	)
	fail := func(err error) {
		errMu.Lock()
		if fatal == nil {
			fatal = err
		}
		errMu.Unlock()
		closeOnce.Do(func() { close(done) })
	}
	finish := func() {
		if atomic.AddInt64(&completed, 1) == int64(len(blocks)) {
			closeOnce.Do(func() { close(done) })
		}
	}
	// requeue puts a failed block back on the queue unless its answer
	// already arrived from a hedged twin.
	requeue := func(i int, retry bool) {
		if claimed[i].Load() {
			return
		}
		if met != nil {
			if retry {
				met.TaskRetries.Inc()
			}
			met.QueueDepth.Add(1)
		}
		tasks <- attempt{block: i}
	}
	// chargeAttempt spends one of block i's retries on err and either
	// requeues the block or declares it poison. A poison verdict claims the
	// block first, so a hedged twin still in flight cannot also resolve it.
	chargeAttempt := func(wc *workerConn, i int, err error) {
		errMu.Lock()
		attempts[i]++
		causes[i] = append(causes[i], fmt.Sprintf("%s: %v", wc.addr, err))
		poisoned := budget >= 0 && attempts[i] >= budget
		n, cs := attempts[i], causes[i]
		lastDeath = err
		errMu.Unlock()
		if !poisoned {
			requeue(i, true)
			return
		}
		if !claimed[i].CompareAndSwap(false, true) {
			return // a twin already delivered the block
		}
		if met != nil {
			met.PoisonTasks.Inc()
		}
		if c.opts.SkipPoisonTasks {
			// Recorded skip: the block's slot stays nil and the batch
			// carries on; callers surface the verdicts.
			c.recordPoison(PoisonTaskError{Block: i, Attempts: n, Causes: cs})
			finish()
		} else {
			fail(&PoisonTaskError{Block: i, Attempts: n, Causes: cs})
		}
	}

	c.recruitMu.Lock()
	c.recruits[fresh] = struct{}{}
	c.recruitMu.Unlock()
	defer func() {
		c.recruitMu.Lock()
		delete(c.recruits, fresh)
		c.recruitMu.Unlock()
	}()

	// process runs one attempt on one connection and reports whether the
	// connection is still usable for further work.
	process := func(wc *workerConn, a attempt) bool {
		i := a.block
		fl := &flights[i]
		fl.mu.Lock()
		fl.inFlight++
		if fl.inFlight == 1 {
			fl.started = time.Now()
		}
		fl.mu.Unlock()
		if met != nil {
			met.TasksInFlight.Add(1)
		}
		var id runlog.BlockID
		if ids != nil {
			id = ids[i]
		}
		if obs != nil {
			obs.BlockDispatched(id)
		}
		t0 := time.Now()
		cliques, err := c.roundTrip(ctx, wc, i, id, &blocks[i], combos[i])
		if met != nil {
			met.TasksInFlight.Add(-1)
		}
		fl.mu.Lock()
		fl.inFlight--
		fl.mu.Unlock()
		if err == nil {
			rttd := time.Since(t0)
			c.mu.Lock()
			wc.tasks++
			wc.busy += rttd
			c.mu.Unlock()
			c.health.success(wc.addr, rttd)
			rtt.Observe(int64(rttd))
			if met != nil {
				met.RoundTripNs.ObserveSince(t0)
			}
			if !claimed[i].CompareAndSwap(false, true) {
				// First-wins dedup: a twin already delivered this block.
				// Lemma 1 determinism means the discarded answer was
				// identical, so dropping it is exactly-once, not lossy.
				if met != nil {
					met.HedgeWasted.Inc()
				}
				return true
			}
			if a.hedge && met != nil {
				met.HedgeWins.Inc()
			}
			if obs != nil {
				// Durability before acknowledgement: the block only counts
				// as completed once its cliques are on disk.
				if oerr := obs.BlockDone(id, cliques); oerr != nil {
					fail(fmt.Errorf("cluster: checkpointing block result: %w", oerr))
					return true
				}
			}
			out[i] = cliques
			finish()
			return true
		}
		var appErr *applicationError
		if errors.As(err, &appErr) {
			if !claimed[i].Load() {
				fail(err) // deterministic; retrying is pointless
			}
			return true
		}
		var clean *cleanCancelError
		if errors.As(err, &clean) {
			// Cancelled before any bytes moved: the stream is still in
			// sync, keep the connection.
			fail(clean.err)
			requeue(i, false)
			return false
		}
		var corrupt *corruptResultError
		if errors.As(err, &corrupt) {
			// The reply arrived in sync but failed verification: the
			// connection stays, the worker's health score is charged, and
			// the block spends one retry.
			c.health.failure(wc.addr, true)
			chargeAttempt(wc, i, err)
			return true
		}
		// Transport failure: retire this worker and requeue the block
		// unless it has exhausted its retry budget.
		c.markDead(wc)
		c.health.failure(wc.addr, false)
		chargeAttempt(wc, i, err)
		if atomic.AddInt64(&aliveCount, -1) == 0 {
			select {
			case drained <- struct{}{}:
			default:
			}
		}
		return false
	}

	runner := func(wc *workerConn) {
		defer c.unlease(wc)
		for {
			// Health gate: a quarantined address waits out its cooldown
			// (the first dispatch after release is its re-admission probe),
			// and a flaky-but-serving one pays a one-shot penalty so
			// cleaner workers drain the queue first.
			for {
				wait, _, recheck := c.health.gate(wc.addr, time.Now())
				if wait <= 0 {
					break
				}
				t := time.NewTimer(wait)
				select {
				case <-done:
					t.Stop()
					return
				case <-t.C:
				}
				if !recheck {
					break
				}
			}
			select {
			case <-done:
				return
			case a := <-tasks:
				if met != nil {
					met.QueueDepth.Add(-1)
				}
				if claimed[a.block].Load() {
					continue // stale entry: the block already has its answer
				}
				// Memory guard: over budget, dispatch pauses here instead
				// of buffering more results toward an OOM kill. One runner
				// is always admitted, so the batch degrades to serial
				// execution, never deadlocks.
				c.guard.Enter(done)
				ok := process(wc, a)
				c.guard.Exit()
				if !ok {
					return
				}
			}
		}
	}

	allDead := func() error {
		errMu.Lock()
		defer errMu.Unlock()
		if lastDeath != nil {
			return fmt.Errorf("cluster: all workers failed, last error: %w", lastDeath)
		}
		return errors.New("cluster: all workers are dead")
	}

	// adopt folds a revived or returned connection into the running batch.
	adopt := func(wc *workerConn) bool {
		if !c.lease(wc) {
			return false
		}
		atomic.AddInt64(&aliveCount, 1)
		go runner(wc)
		return true
	}

	// The recruiter folds revived connections into the running batch and
	// arbitrates the all-dead endgame.
	go func() {
		for {
			select {
			case <-done:
				return
			case wc := <-fresh:
				adopt(wc)
			case <-drained:
				if atomic.LoadInt64(&aliveCount) > 0 {
					continue // stale: capacity already returned
				}
				if !c.opts.AutoReconnect && c.leasedConns() == 0 {
					fail(allDead())
					return
				}
				// Capacity can still return: AutoReconnect may revive a
				// worker, or a straggler of an earlier batch may hand its
				// connection back. Wait out the grace window.
				grace := time.NewTimer(c.opts.AllDeadGrace)
				select {
				case <-done:
					grace.Stop()
					return
				case wc := <-fresh:
					grace.Stop()
					if !adopt(wc) && atomic.LoadInt64(&aliveCount) == 0 {
						select {
						case drained <- struct{}{}:
						default:
						}
					}
				case <-grace.C:
					if atomic.LoadInt64(&aliveCount) == 0 {
						fail(allDead())
						return
					}
				}
			}
		}
	}()
	if len(alive) == 0 {
		drained <- struct{}{} // wait out the grace period for revived capacity
	}

	// The hedge monitor watches for stragglers: once the level has enough
	// round trips to know what "normal" looks like, any block in flight
	// past the threshold gets a speculative twin queued for another worker
	// — but only while the queue is empty, because hedging an overloaded
	// cluster just doubles the overload.
	if hedgeMax > 0 {
		go func() {
			ticker := time.NewTicker(hedgeTick)
			defer ticker.Stop()
			for {
				select {
				case <-done:
					return
				case <-ticker.C:
				}
				if len(tasks) > 0 {
					continue
				}
				th := c.hedgeThreshold(rtt)
				if th <= 0 {
					continue
				}
				now := time.Now()
				for i := range flights {
					if claimed[i].Load() {
						continue
					}
					fl := &flights[i]
					fl.mu.Lock()
					straggling := fl.inFlight > 0 && fl.hedges < hedgeMax &&
						now.Sub(fl.started) > th
					if straggling {
						fl.hedges++
					}
					fl.mu.Unlock()
					if !straggling {
						continue
					}
					if met != nil {
						met.HedgedDispatches.Inc()
						met.QueueDepth.Add(1)
					}
					tasks <- attempt{block: i, hedge: true}
				}
			}
		}()
	}

	// The watcher turns a context cancellation into expired deadlines on
	// every live connection, unblocking runners stuck in I/O.
	stopWatch := make(chan struct{})
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		select {
		case <-stopWatch:
		case <-ctx.Done():
			fail(ctx.Err())
			c.mu.Lock()
			for _, wc := range c.conns {
				if !wc.dead && wc.conn != nil {
					wc.conn.SetDeadline(time.Now())
				}
			}
			c.mu.Unlock()
		}
	}()

	for _, wc := range alive {
		go runner(wc)
	}
	// The batch returns the moment every block has an answer — not when
	// every runner has: a straggling round trip keeps its connection leased
	// and rejoins the pool (through unlease → offer) whenever it resolves.
	<-done
	close(stopWatch)
	watchWG.Wait()
	if met != nil {
		// Entries stranded in the queue — by a fatal error, or hedge twins
		// obsoleted by their primary — are no longer pending work; return
		// the gauge to its pre-batch level.
		for {
			select {
			case <-tasks:
				met.QueueDepth.Add(-1)
				continue
			default:
			}
			break
		}
	}

	// Clear any cancellation deadlines left on surviving connections.
	// Leased connections are skipped: each belongs to a runner (possibly a
	// straggler of this very batch) that manages its own deadline and must
	// not have an in-flight envelope wiped from under it.
	c.mu.Lock()
	for _, wc := range c.conns {
		if !wc.dead && !wc.leased && wc.conn != nil {
			wc.conn.SetDeadline(time.Time{})
		}
	}
	c.mu.Unlock()

	errMu.Lock()
	defer errMu.Unlock()
	if fatal != nil {
		return nil, fatal
	}
	return out, nil
}

// taskDeadline resolves the round-trip envelope for one task.
func (c *Client) taskDeadline(t *blockTask) time.Duration {
	if c.opts.TaskTimeout < 0 {
		return 0
	}
	if c.opts.TaskTimeout > 0 {
		return c.opts.TaskTimeout
	}
	// Derived default: a generous per-block compute allowance that scales
	// with the block, so the envelope only catches genuinely hung
	// workers, never slow ones.
	d := 30*time.Second + time.Duration(int64(t.Nodes)+int64(len(t.Edges)))*time.Millisecond
	d += 2 * c.opts.Latency
	if c.opts.BandwidthBytesPerSec > 0 {
		d += time.Duration(float64(2*t.wireSize()) / float64(c.opts.BandwidthBytesPerSec) * float64(time.Second))
	}
	return d
}

// roundTrip sends one task and waits for its result, applying the simulated
// link costs and the task deadline. bid is the block's stable checkpoint
// identity (zero for non-checkpointed runs); the worker must echo it.
func (c *Client) roundTrip(ctx context.Context, wc *workerConn, id int, bid runlog.BlockID, b *decomp.Block, combo mcealg.Combo) ([][]int32, error) {
	t := taskFromBlock(id, bid.Level, bid.Plan, b, combo)
	if err := c.simulateLink(ctx, t.wireSize()); err != nil {
		return nil, &cleanCancelError{err: err}
	}
	if d := c.taskDeadline(&t); d > 0 {
		wc.conn.SetDeadline(time.Now().Add(d))
		defer wc.conn.SetDeadline(time.Time{})
	}
	met := c.opts.Metrics
	if err := wc.enc.Encode(&t); err != nil {
		return nil, fmt.Errorf("cluster: send to %s: %w", wc.addr, err)
	}
	if met != nil {
		met.BytesSent.Add(t.wireSize())
	}
	if wc.flush != nil {
		if err := wc.flush(); err != nil {
			return nil, fmt.Errorf("cluster: flush to %s: %w", wc.addr, err)
		}
	}
	var res blockResult
	if err := wc.dec.Decode(&res); err != nil {
		return nil, fmt.Errorf("cluster: receive from %s: %w", wc.addr, err)
	}
	if met != nil {
		met.BytesReceived.Add(res.wireSize())
	}
	if res.ID != id || res.Level != bid.Level || res.Plan != bid.Plan {
		return nil, fmt.Errorf("cluster: worker %s answered task %d (block L%d/B%d), want %d (L%d/B%d)",
			wc.addr, res.ID, res.Level, res.Plan, id, bid.Level, bid.Plan)
	}
	if res.Corrupt {
		if met != nil {
			met.CorruptResults.Inc()
		}
		return nil, &corruptResultError{msg: fmt.Sprintf("cluster: task %d corrupted in flight to %s", id, wc.addr)}
	}
	if res.Sum != res.payloadSum() {
		if met != nil {
			met.CorruptResults.Inc()
		}
		return nil, &corruptResultError{msg: fmt.Sprintf("cluster: result %d from %s corrupted in flight (checksum mismatch)", id, wc.addr)}
	}
	if res.Err != "" {
		return nil, &applicationError{msg: fmt.Sprintf("cluster: worker %s: %s", wc.addr, res.Err)}
	}
	if err := c.simulateLink(ctx, res.wireSize()); err != nil {
		return nil, &cleanCancelError{err: err}
	}
	return res.Cliques, nil
}

// simulateLink sleeps for the configured latency plus the transfer time of
// size bytes at the configured bandwidth, waking early on cancellation.
func (c *Client) simulateLink(ctx context.Context, size int64) error {
	d := c.opts.Latency
	if c.opts.BandwidthBytesPerSec > 0 {
		d += time.Duration(float64(size) / float64(c.opts.BandwidthBytesPerSec) * float64(time.Second))
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
