package cluster

import (
	"compress/flate"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mce/internal/decomp"
	"mce/internal/mcealg"
)

// ClientOptions tunes the coordinator side of the cluster.
type ClientOptions struct {
	// DialTimeout bounds each worker connection attempt; 0 means 5s.
	DialTimeout time.Duration
	// Latency is an artificial per-message delay injected before every
	// task send, simulating cluster interconnect round trips. It lets the
	// single-machine reproduction exhibit the communication overhead the
	// paper observes when many small blocks are shipped (§6.3).
	Latency time.Duration
	// BandwidthBytesPerSec throttles message payloads; 0 disables
	// throttling.
	BandwidthBytesPerSec int64
	// ConnectionsPerWorker opens this many parallel streams to each
	// worker address, letting one multi-core worker process several blocks
	// concurrently (the worker serves every connection on its own
	// goroutine). 0 means 1.
	ConnectionsPerWorker int
	// Compress negotiates DEFLATE on every stream after the handshake,
	// trading CPU for bandwidth on slow interconnects.
	Compress bool
}

// Client is a coordinator attached to a fixed set of workers. It implements
// the core.Executor interface, so it can be plugged directly into
// FindMaxCliques.
type Client struct {
	opts  ClientOptions
	mu    sync.Mutex
	conns []*workerConn
}

// workerConn serialises access to one worker connection.
type workerConn struct {
	addr  string
	conn  net.Conn
	enc   *gob.Encoder
	dec   *gob.Decoder
	flush func() error // non-nil when the stream is compressed
	dead  bool
	tasks int
	busy  time.Duration
}

// WorkerStats describes one worker's share of the computation — the load
// skew the distributed MCE literature worries about ([38] in the paper).
type WorkerStats struct {
	Addr string
	// Tasks is the number of blocks this worker completed.
	Tasks int
	// Busy is the total round-trip time spent on this worker, including
	// the simulated link costs.
	Busy time.Duration
	// Dead reports that the connection has been retired after a failure.
	Dead bool
}

// Stats returns a snapshot of per-worker load, ordered as dialled.
func (c *Client) Stats() []WorkerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerStats, 0, len(c.conns))
	for _, wc := range c.conns {
		out = append(out, WorkerStats{Addr: wc.addr, Tasks: wc.tasks, Busy: wc.busy, Dead: wc.dead})
	}
	return out
}

// Dial connects to every worker address. It fails unless at least one
// worker is reachable; unreachable workers are reported in the error.
func Dial(addrs []string, opts ClientOptions) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("cluster: no worker addresses")
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	conns := opts.ConnectionsPerWorker
	if conns < 1 {
		conns = 1
	}
	c := &Client{opts: opts}
	var dialErrs []error
	for _, addr := range addrs {
		for i := 0; i < conns; i++ {
			wc, err := dialWorker(addr, opts.DialTimeout, opts.Compress)
			if err != nil {
				dialErrs = append(dialErrs, err)
				break // the address is down; skip its remaining streams
			}
			c.conns = append(c.conns, wc)
		}
	}
	if len(c.conns) == 0 {
		return nil, fmt.Errorf("cluster: no workers reachable: %v", errors.Join(dialErrs...))
	}
	return c, nil
}

func dialWorker(addr string, timeout time.Duration, compress bool) (*workerConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	wc := &workerConn{addr: addr, conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	if err := wc.enc.Encode(hello{Version: protocolVersion, Compress: compress}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: handshake with %s: %w", addr, err)
	}
	var ack helloAck
	if err := wc.dec.Decode(&ack); err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: handshake ack from %s: %w", addr, err)
	}
	if ack.Version != protocolVersion {
		conn.Close()
		return nil, fmt.Errorf("cluster: worker %s speaks version %d, want %d", addr, ack.Version, protocolVersion)
	}
	if compress {
		if !ack.Compress {
			conn.Close()
			return nil, fmt.Errorf("cluster: worker %s refused compression", addr)
		}
		fr := flate.NewReader(conn)
		fw, err := flate.NewWriter(conn, flate.BestSpeed)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("cluster: compression: %w", err)
		}
		wc.enc = gob.NewEncoder(fw)
		wc.dec = gob.NewDecoder(fr)
		wc.flush = fw.Flush
	}
	return wc, nil
}

// Reconnect re-dials every dead connection, restoring capacity after
// worker restarts. It returns how many connections are alive afterwards;
// per-address failures are reported in the error while surviving
// connections keep working.
func (c *Client) Reconnect() (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var errs []error
	for i, wc := range c.conns {
		if !wc.dead {
			continue
		}
		fresh, err := dialWorker(wc.addr, c.opts.DialTimeout, c.opts.Compress)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		// Preserve the accumulated load accounting for the address.
		fresh.tasks = wc.tasks
		fresh.busy = wc.busy
		c.conns[i] = fresh
	}
	alive := 0
	for _, wc := range c.conns {
		if !wc.dead {
			alive++
		}
	}
	return alive, errors.Join(errs...)
}

// Workers reports how many worker connections are still alive.
func (c *Client) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	alive := 0
	for _, wc := range c.conns {
		if !wc.dead {
			alive++
		}
	}
	return alive
}

// Close hangs up every worker connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, wc := range c.conns {
		if err := wc.conn.Close(); err != nil && first == nil {
			first = err
		}
		wc.dead = true
	}
	return first
}

// AnalyzeBlocks ships every block to some worker and gathers the cliques,
// indexed like blocks. A worker that fails mid-flight has its task requeued
// to the surviving workers; the call fails only when a task is rejected by
// the application (deterministic failure) or when every worker has died.
// It implements core.Executor.
func (c *Client) AnalyzeBlocks(blocks []decomp.Block, combos []mcealg.Combo) ([][][]int32, error) {
	if len(blocks) != len(combos) {
		return nil, fmt.Errorf("cluster: %d blocks but %d combos", len(blocks), len(combos))
	}
	out := make([][][]int32, len(blocks))
	if len(blocks) == 0 {
		return out, nil
	}
	c.mu.Lock()
	var alive []*workerConn
	for _, wc := range c.conns {
		if !wc.dead {
			alive = append(alive, wc)
		}
	}
	c.mu.Unlock()
	if len(alive) == 0 {
		return nil, errors.New("cluster: all workers are dead")
	}

	// Task queue with room for one in-flight requeue per worker.
	tasks := make(chan int, len(blocks)+len(alive))
	for i := range blocks {
		tasks <- i
	}
	var (
		completed  int64
		aliveCount = int64(len(alive))
		done       = make(chan struct{})
		closeOnce  sync.Once
		errMu      sync.Mutex
		fatal      error
	)
	fail := func(err error) {
		errMu.Lock()
		if fatal == nil {
			fatal = err
		}
		errMu.Unlock()
		closeOnce.Do(func() { close(done) })
	}

	var wg sync.WaitGroup
	for _, wc := range alive {
		wg.Add(1)
		go func(wc *workerConn) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				case i := <-tasks:
					t0 := time.Now()
					cliques, err := c.roundTrip(wc, i, &blocks[i], combos[i])
					if err == nil {
						c.mu.Lock()
						wc.tasks++
						wc.busy += time.Since(t0)
						c.mu.Unlock()
					}
					if err != nil {
						var appErr *applicationError
						if errors.As(err, &appErr) {
							fail(err) // deterministic; retrying is pointless
							return
						}
						// Transport failure: requeue and retire this worker.
						c.mu.Lock()
						wc.dead = true
						c.mu.Unlock()
						tasks <- i
						if atomic.AddInt64(&aliveCount, -1) == 0 {
							fail(fmt.Errorf("cluster: all workers failed, last error from %s: %w", wc.addr, err))
						}
						return
					}
					out[i] = cliques
					if atomic.AddInt64(&completed, 1) == int64(len(blocks)) {
						closeOnce.Do(func() { close(done) })
					}
				}
			}
		}(wc)
	}
	wg.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	if fatal != nil {
		return nil, fatal
	}
	return out, nil
}

// applicationError marks worker-reported BLOCK-ANALYSIS failures.
type applicationError struct{ msg string }

func (e *applicationError) Error() string { return e.msg }

// roundTrip sends one task and waits for its result, applying the simulated
// link costs.
func (c *Client) roundTrip(wc *workerConn, id int, b *decomp.Block, combo mcealg.Combo) ([][]int32, error) {
	t := taskFromBlock(id, b, combo)
	c.simulateLink(t.wireSize())
	if err := wc.enc.Encode(&t); err != nil {
		return nil, fmt.Errorf("cluster: send to %s: %w", wc.addr, err)
	}
	if wc.flush != nil {
		if err := wc.flush(); err != nil {
			return nil, fmt.Errorf("cluster: flush to %s: %w", wc.addr, err)
		}
	}
	var res blockResult
	if err := wc.dec.Decode(&res); err != nil {
		return nil, fmt.Errorf("cluster: receive from %s: %w", wc.addr, err)
	}
	if res.ID != id {
		return nil, fmt.Errorf("cluster: worker %s answered task %d, want %d", wc.addr, res.ID, id)
	}
	if res.Err != "" {
		return nil, &applicationError{msg: fmt.Sprintf("cluster: worker %s: %s", wc.addr, res.Err)}
	}
	c.simulateLink(res.wireSize())
	return res.Cliques, nil
}

// simulateLink sleeps for the configured latency plus the transfer time of
// size bytes at the configured bandwidth.
func (c *Client) simulateLink(size int64) {
	d := c.opts.Latency
	if c.opts.BandwidthBytesPerSec > 0 {
		d += time.Duration(float64(size) / float64(c.opts.BandwidthBytesPerSec) * float64(time.Second))
	}
	if d > 0 {
		time.Sleep(d)
	}
}
