package cluster

import (
	"encoding/gob"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"mce/internal/core"
	"mce/internal/decomp"
	"mce/internal/gen"
	"mce/internal/graph"
	"mce/internal/mcealg"
)

func key(c []int32) string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

// makeBlocks decomposes g and returns blocks with tree-free fixed combos.
func makeBlocks(g *graph.Graph, m int) ([]decomp.Block, []mcealg.Combo) {
	feasible, _ := decomp.Cut(g, m)
	blocks := decomp.Blocks(g, feasible, m, decomp.Options{})
	combos := make([]mcealg.Combo, len(blocks))
	for i := range combos {
		combos[i] = mcealg.Combo{Alg: mcealg.Tomita, Struct: mcealg.BitSets}
	}
	return blocks, combos
}

func TestTaskRoundTripConversion(t *testing.T) {
	g := gen.ErdosRenyi(40, 0.3, 1)
	blocks, combos := makeBlocks(g, g.MaxDegree()+1)
	if len(blocks) == 0 {
		t.Fatal("no blocks")
	}
	b := &blocks[0]
	task := taskFromBlock(7, 2, 5, b, combos[0])
	b2, combo2, err := blockFromTask(&task)
	if err != nil {
		t.Fatal(err)
	}
	if combo2 != combos[0] {
		t.Fatalf("combo changed: %v", combo2)
	}
	if b2.Graph.N() != b.Graph.N() || b2.Graph.M() != b.Graph.M() {
		t.Fatalf("graph changed: %v vs %v", b2.Graph, b.Graph)
	}
	if len(b2.Kernel) != len(b.Kernel) || len(b2.Orig) != len(b.Orig) {
		t.Fatalf("classes changed")
	}
}

func TestBlockFromTaskMalformed(t *testing.T) {
	task := blockTask{ID: 1, Nodes: 5, Orig: []int32{0, 1}}
	if _, _, err := blockFromTask(&task); err == nil {
		t.Fatal("malformed task accepted")
	}
}

func TestWireSizesPositive(t *testing.T) {
	task := blockTask{Edges: [][2]int32{{0, 1}}, Orig: []int32{0, 1}}
	if task.wireSize() <= 0 {
		t.Fatal("task wireSize not positive")
	}
	res := blockResult{Cliques: [][]int32{{0, 1}}}
	if res.wireSize() <= 0 {
		t.Fatal("result wireSize not positive")
	}
}

func TestClusterAnalyzeMatchesLocal(t *testing.T) {
	addrs, stop, err := StartLocal(3)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	client, err := Dial(addrs, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if client.Workers() != 3 {
		t.Fatalf("Workers = %d, want 3", client.Workers())
	}

	g := gen.HolmeKim(400, 5, 0.7, 7)
	blocks, combos := makeBlocks(g, g.MaxDegree()+1)

	remote, err := client.AnalyzeBlocks(blocks, combos)
	if err != nil {
		t.Fatal(err)
	}
	local, err := (&core.LocalExecutor{}).AnalyzeBlocks(blocks, combos)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != len(local) {
		t.Fatalf("result count mismatch")
	}
	for i := range remote {
		rm := map[string]bool{}
		for _, c := range remote[i] {
			rm[key(c)] = true
		}
		if len(rm) != len(local[i]) {
			t.Fatalf("block %d: %d remote vs %d local cliques", i, len(rm), len(local[i]))
		}
		for _, c := range local[i] {
			if !rm[key(c)] {
				t.Fatalf("block %d: clique {%s} missing remotely", i, key(c))
			}
		}
	}
}

func TestClusterAsExecutorInFindMaxCliques(t *testing.T) {
	addrs, stop, err := StartLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	client, err := Dial(addrs, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	g := gen.BarabasiAlbert(300, 4, 9)
	res, err := core.FindMaxCliques(g, core.Options{BlockRatio: 0.5, Executor: client})
	if err != nil {
		t.Fatal(err)
	}
	want := mcealg.ReferenceCollect(g)
	if len(res.Cliques) != len(want) {
		t.Fatalf("distributed run found %d cliques, want %d", len(res.Cliques), len(want))
	}
	wm := map[string]bool{}
	for _, c := range want {
		wm[key(c)] = true
	}
	for _, c := range res.Cliques {
		if !wm[key(c)] {
			t.Fatalf("spurious clique {%s}", key(c))
		}
	}
}

func TestWorkerFailureRequeues(t *testing.T) {
	addrs, stop, err := StartLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	client, err := Dial(addrs, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Kill one worker's connection mid-stream by closing it on the client
	// side before work starts; its first round trip fails and the task is
	// requeued on the survivor.
	client.mu.Lock()
	client.conns[0].conn.Close()
	client.mu.Unlock()

	g := gen.ErdosRenyi(120, 0.1, 2)
	blocks, combos := makeBlocks(g, g.MaxDegree()+1)
	out, err := client.AnalyzeBlocks(blocks, combos)
	if err != nil {
		t.Fatalf("requeue failed: %v", err)
	}
	total := 0
	for _, cs := range out {
		total += len(cs)
	}
	if want := len(mcealg.ReferenceCollect(g)); total != want {
		t.Fatalf("got %d cliques after failover, want %d", total, want)
	}
	if client.Workers() != 1 {
		t.Fatalf("Workers = %d after failure, want 1", client.Workers())
	}
}

func TestAllWorkersDead(t *testing.T) {
	addrs, stop, err := StartLocal(1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	client, err := Dial(addrs, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	client.mu.Lock()
	client.conns[0].conn.Close()
	client.mu.Unlock()

	g := gen.ErdosRenyi(30, 0.2, 3)
	blocks, combos := makeBlocks(g, g.MaxDegree()+1)
	if _, err := client.AnalyzeBlocks(blocks, combos); err == nil {
		t.Fatal("expected failure with all workers dead")
	}
	// Subsequent calls fail fast.
	if _, err := client.AnalyzeBlocks(blocks, combos); err == nil {
		t.Fatal("expected fast failure on dead client")
	}
}

func TestApplicationErrorNotRetried(t *testing.T) {
	addrs, stop, err := StartLocal(1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	client, err := Dial(addrs, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// An oversized Matrix combo makes the worker report an application
	// error, which must fail the batch rather than loop forever.
	big := graph.Empty(mcealg.MatrixMaxNodes + 1)
	kernel := make([]int32, 1)
	orig := make([]int32, big.N())
	for i := range orig {
		orig[i] = int32(i)
	}
	blocks := []decomp.Block{{Graph: big, Orig: orig, Kernel: kernel}}
	combos := []mcealg.Combo{{Alg: mcealg.Tomita, Struct: mcealg.Matrix}}
	_, err = client.AnalyzeBlocks(blocks, combos)
	if err == nil || !strings.Contains(err.Error(), "Matrix") {
		t.Fatalf("err = %v, want worker Matrix failure", err)
	}
	// The worker survives an application error and can serve more work.
	g := gen.ErdosRenyi(40, 0.2, 4)
	okBlocks, okCombos := makeBlocks(g, g.MaxDegree()+1)
	if _, err := client.AnalyzeBlocks(okBlocks, okCombos); err != nil {
		t.Fatalf("worker unusable after application error: %v", err)
	}
}

func TestDialNoAddresses(t *testing.T) {
	if _, err := Dial(nil, ClientOptions{}); err == nil {
		t.Fatal("Dial(nil) accepted")
	}
}

func TestDialUnreachable(t *testing.T) {
	// A listener that is immediately closed: connection refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Dial([]string{addr}, ClientOptions{DialTimeout: 300 * time.Millisecond}); err == nil {
		t.Fatal("Dial to closed port succeeded")
	}
}

func TestDialPartialWorkers(t *testing.T) {
	addrs, stop, err := StartLocal(1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	deadAddr := ln.Addr().String()
	ln.Close()
	client, err := Dial([]string{addrs[0], deadAddr}, ClientOptions{DialTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatalf("partial dial failed: %v", err)
	}
	defer client.Close()
	if client.Workers() != 1 {
		t.Fatalf("Workers = %d, want 1", client.Workers())
	}
}

func TestSimulatedLatencySlowsBatch(t *testing.T) {
	addrs, stop, err := StartLocal(1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	g := gen.ErdosRenyi(80, 0.1, 5)
	blocks, combos := makeBlocks(g, g.MaxDegree()+1)
	if len(blocks) < 3 {
		t.Skip("not enough blocks for a timing comparison")
	}

	fast, err := Dial(addrs, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	t0 := time.Now()
	if _, err := fast.AnalyzeBlocks(blocks, combos); err != nil {
		t.Fatal(err)
	}
	fastDur := time.Since(t0)

	slow, err := Dial(addrs, ClientOptions{Latency: 3 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	t0 = time.Now()
	if _, err := slow.AnalyzeBlocks(blocks, combos); err != nil {
		t.Fatal(err)
	}
	slowDur := time.Since(t0)

	if slowDur < fastDur+time.Duration(len(blocks))*2*time.Millisecond {
		t.Fatalf("latency simulation had no effect: fast=%v slow=%v blocks=%d", fastDur, slowDur, len(blocks))
	}
}

func TestComboMismatchRejected(t *testing.T) {
	addrs, stop, err := StartLocal(1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	client, err := Dial(addrs, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.AnalyzeBlocks(make([]decomp.Block, 2), make([]mcealg.Combo, 1)); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestEmptyBatch(t *testing.T) {
	addrs, stop, err := StartLocal(1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	client, err := Dial(addrs, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	out, err := client.AnalyzeBlocks(nil, nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
}

func TestWorkerStatsTrackLoad(t *testing.T) {
	addrs, stop, err := StartLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	client, err := Dial(addrs, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	g := gen.HolmeKim(300, 4, 0.6, 6)
	blocks, combos := makeBlocks(g, g.MaxDegree()+1)
	if _, err := client.AnalyzeBlocks(blocks, combos); err != nil {
		t.Fatal(err)
	}
	stats := client.Stats()
	if len(stats) != 2 {
		t.Fatalf("Stats = %d workers, want 2", len(stats))
	}
	total := 0
	for _, s := range stats {
		total += s.Tasks
		if s.Tasks > 0 && s.Busy <= 0 {
			t.Fatalf("worker %s has tasks but no busy time", s.Addr)
		}
		if s.Dead {
			t.Fatalf("worker %s reported dead", s.Addr)
		}
	}
	if total != len(blocks) {
		t.Fatalf("workers completed %d tasks, want %d", total, len(blocks))
	}
}

func TestConnectionsPerWorker(t *testing.T) {
	addrs, stop, err := StartLocal(1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	client, err := Dial(addrs, ClientOptions{ConnectionsPerWorker: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if client.Workers() != 3 {
		t.Fatalf("Workers = %d, want 3 streams", client.Workers())
	}
	g := gen.HolmeKim(200, 4, 0.6, 8)
	blocks, combos := makeBlocks(g, g.MaxDegree()+1)
	out, err := client.AnalyzeBlocks(blocks, combos)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, cs := range out {
		total += len(cs)
	}
	if want := len(mcealg.ReferenceCollect(g)); total != want {
		t.Fatalf("multi-stream run found %d cliques, want %d", total, want)
	}
}

func TestCompressedTransport(t *testing.T) {
	addrs, stop, err := StartLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	client, err := Dial(addrs, ClientOptions{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	g := gen.HolmeKim(300, 5, 0.7, 15)
	blocks, combos := makeBlocks(g, g.MaxDegree()+1)
	out, err := client.AnalyzeBlocks(blocks, combos)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, cs := range out {
		total += len(cs)
	}
	if want := len(mcealg.ReferenceCollect(g)); total != want {
		t.Fatalf("compressed run found %d cliques, want %d", total, want)
	}
	// Several batches over the same compressed streams must keep working.
	if _, err := client.AnalyzeBlocks(blocks, combos); err != nil {
		t.Fatalf("second compressed batch failed: %v", err)
	}
}

func TestCompressedInFindMaxCliques(t *testing.T) {
	addrs, stop, err := StartLocal(1)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	client, err := Dial(addrs, ClientOptions{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	g := gen.BarabasiAlbert(200, 4, 19)
	res, err := core.FindMaxCliques(g, core.Options{BlockRatio: 0.4, Executor: client})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(mcealg.ReferenceCollect(g)); res.Stats.TotalCliques != want {
		t.Fatalf("compressed distributed run found %d cliques, want %d", res.Stats.TotalCliques, want)
	}
}

func TestReconnectRestoresCapacity(t *testing.T) {
	addrs, stop, err := StartLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	client, err := Dial(addrs, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Kill one connection and let a batch retire it.
	client.mu.Lock()
	client.conns[0].conn.Close()
	client.mu.Unlock()
	g := gen.ErdosRenyi(60, 0.15, 5)
	blocks, combos := makeBlocks(g, g.MaxDegree()+1)
	if _, err := client.AnalyzeBlocks(blocks, combos); err != nil {
		t.Fatal(err)
	}
	if client.Workers() != 1 {
		t.Fatalf("Workers = %d before reconnect", client.Workers())
	}

	alive, err := client.Reconnect()
	if err != nil || alive != 2 {
		t.Fatalf("Reconnect = %d, %v; want 2 alive", alive, err)
	}
	if _, err := client.AnalyzeBlocks(blocks, combos); err != nil {
		t.Fatalf("batch after reconnect failed: %v", err)
	}
	stats := client.Stats()
	total := 0
	for _, s := range stats {
		total += s.Tasks
	}
	if total < 2*len(blocks) {
		t.Fatalf("load accounting lost across reconnect: %d", total)
	}
}

func TestServeConnOverPipe(t *testing.T) {
	// ServeConn works over any net.Conn; drive it through an in-memory
	// pipe with a raw gob conversation.
	cl, sv := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- ServeConn(sv) }()

	enc := gob.NewEncoder(cl)
	dec := gob.NewDecoder(cl)
	if err := enc.Encode(hello{Version: protocolVersion}); err != nil {
		t.Fatal(err)
	}
	var ack helloAck
	if err := dec.Decode(&ack); err != nil || ack.Version != protocolVersion {
		t.Fatalf("ack = %+v, %v", ack, err)
	}
	task := blockTask{
		ID: 5, Nodes: 3,
		Edges:  [][2]int32{{0, 1}, {1, 2}, {0, 2}},
		Kernel: []int32{0, 1, 2},
		Orig:   []int32{10, 11, 12},
		Alg:    uint8(mcealg.Tomita), Struct: uint8(mcealg.BitSets),
	}
	task.Sum = task.payloadSum()
	if err := enc.Encode(&task); err != nil {
		t.Fatal(err)
	}
	var res blockResult
	if err := dec.Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.ID != 5 || len(res.Cliques) != 1 || res.Err != "" {
		t.Fatalf("result = %+v", res)
	}
	if key(res.Cliques[0]) != "10,11,12" {
		t.Fatalf("clique = %v (global IDs expected)", res.Cliques[0])
	}
	cl.Close()
	if err := <-done; err != nil {
		t.Fatalf("ServeConn returned %v on hangup", err)
	}
}
