// Package decomp implements the paper's two-level network decomposition:
// CUT (Algorithm 2) separates feasible from hub nodes, BLOCKS (Algorithm 3)
// greedily partitions the feasible nodes into dense, bounded-size blocks with
// kernel/border/visited structure, and BLOCK-ANALYSIS (Algorithm 4)
// enumerates the maximal cliques owned by one block.
//
// A node is feasible for block size m when its closed neighbourhood
// {n} ∪ N(n) has at most m nodes — i.e. deg(n) < m — so a block can hold the
// node together with its whole neighbourhood; otherwise it is a hub
// (paper §2). Every feasible node becomes the kernel of exactly one block;
// hub nodes only ever appear as border or visited nodes and are handled by
// the recursion one level up (package core).
package decomp

import (
	"math/rand"
	"slices"
	"sort"

	"mce/internal/bitset"
	"mce/internal/graph"
	"mce/internal/mcealg"
	"mce/internal/telemetry"
)

// Cut performs the first-level decomposition: it splits the nodes of g into
// feasible nodes (degree < m) and hub nodes (degree ≥ m), both ascending.
func Cut(g *graph.Graph, m int) (feasible, hubs []int32) {
	for v := int32(0); v < int32(g.N()); v++ {
		if IsFeasible(g, v, m) {
			feasible = append(feasible, v)
		} else {
			hubs = append(hubs, v)
		}
	}
	return feasible, hubs
}

// IsFeasible reports whether v's closed neighbourhood fits in a block of
// size m (the paper's isfeasible on a single node).
func IsFeasible(g *graph.Graph, v int32, m int) bool {
	return g.Degree(v) < m
}

// Block is one unit of the second-level decomposition. Node identifiers are
// local to the block's induced subgraph; Orig maps them back to g.
type Block struct {
	// Graph is the subgraph induced by Kernel ∪ Border ∪ Visited,
	// with local IDs 0..Graph.N()-1.
	Graph *graph.Graph
	// Orig maps local IDs to the original graph's IDs.
	Orig []int32
	// Kernel lists the local IDs of the block's kernel nodes: feasible
	// nodes owned by this block (each feasible node is kernel in exactly
	// one block).
	Kernel []int32
	// Border lists the local IDs of neighbours of kernels that are not
	// kernels of any earlier block (they may be hubs or later kernels).
	Border []int32
	// Visited lists the local IDs of neighbours that were kernels of an
	// earlier block; cliques containing them are already enumerated there.
	Visited []int32
}

// Order selects how Blocks picks the seed of each new block.
type Order uint8

const (
	// OrderDegreeAsc seeds blocks from the lowest-degree unassigned node,
	// so dense regions coalesce around their periphery (the default; the
	// increasing-degree heuristic of [10], §7).
	OrderDegreeAsc Order = iota
	// OrderID seeds blocks in plain node-ID order.
	OrderID
	// OrderRandom seeds blocks in a seeded pseudo-random order — the
	// hash-partitioning strawman the paper calls "the worst possible
	// partitioning for scale-free networks" (§7, [15]); kept as an
	// ablation baseline.
	OrderRandom
)

// Options tunes the greedy block construction.
type Options struct {
	// MinAdjacency stops block growth when the best remaining border
	// candidate has fewer than this many edges into the current kernels
	// (paper §3.2: candidates below a threshold start a new block so blocks
	// stay internally dense). Values < 1 mean 1.
	MinAdjacency int
	// Order selects the block seeding order; see the Order constants.
	Order Order
	// Seed drives OrderRandom.
	Seed int64
}

// Blocks performs the second-level decomposition (Algorithm 3): it
// partitions the feasible nodes into kernel sets of blocks of at most m
// nodes, growing each block greedily along dense adjacency. The input graph
// is not modified; feasible must contain only nodes with degree < m.
func Blocks(g *graph.Graph, feasible []int32, m int, opts Options) []Block {
	minAdj := opts.MinAdjacency
	if minAdj < 1 {
		minAdj = 1
	}
	n := g.N()

	order := seedOrder(g, feasible, opts)

	isFeasible := bitset.FromSlice(n, feasible)
	assigned := bitset.New(n) // feasible nodes already kernels anywhere
	var blocks []Block

	cover := bitset.New(n)       // K ∪ N(K) of the block under construction
	inKernel := bitset.New(n)    // K of the block under construction
	adjCount := make([]int32, n) // edges from candidate to current kernels

	for _, start := range order {
		if assigned.Has(start) {
			continue
		}
		cover.Clear()
		inKernel.Clear()
		var kernels []int32
		var touched []int32 // nodes whose adjCount must be reset afterwards

		coverSize := 0
		addKernel := func(v int32) {
			inKernel.Add(v)
			assigned.Add(v)
			kernels = append(kernels, v)
			if !cover.Has(v) {
				cover.Add(v)
				coverSize++
			}
			for _, u := range g.Neighbors(v) {
				if !cover.Has(u) {
					cover.Add(u)
					coverSize++
				}
				if adjCount[u] == 0 {
					touched = append(touched, u)
				}
				adjCount[u]++
			}
		}

		// growthOf returns |{v} ∪ N(v) \ cover|, the cover increase of
		// adopting v as a kernel (the incremental isfeasible test).
		growthOf := func(v int32) int {
			grow := 0
			if !cover.Has(v) {
				grow++
			}
			for _, u := range g.Neighbors(v) {
				if !cover.Has(u) {
					grow++
				}
			}
			return grow
		}

		// Seed the block. A feasible start always fits: |{v} ∪ N(v)| ≤ m.
		addKernel(start)

		// Grow greedily: among unassigned feasible border nodes, take the
		// one with the most edges into the kernel set, while the block
		// stays within m nodes and the candidate is dense enough.
		for {
			best, bestAdj := int32(-1), int32(0)
			for _, v := range touched {
				if adjCount[v] >= bestAdj && isFeasible.Has(v) &&
					!assigned.Has(v) && !inKernel.Has(v) {
					if adjCount[v] > bestAdj || (best >= 0 && v < best) || best < 0 {
						best, bestAdj = v, adjCount[v]
					}
				}
			}
			if best < 0 || int(bestAdj) < minAdj {
				break
			}
			if coverSize+growthOf(best) > m {
				break
			}
			addKernel(best)
		}

		blocks = append(blocks, assemble(g, kernels, cover, inKernel, assigned, isFeasible))

		for _, v := range touched {
			adjCount[v] = 0
		}
	}
	return blocks
}

// seedOrder arranges the feasible nodes according to opts.Order.
func seedOrder(g *graph.Graph, feasible []int32, opts Options) []int32 {
	order := make([]int32, len(feasible))
	copy(order, feasible)
	switch opts.Order {
	case OrderID:
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	case OrderRandom:
		rng := rand.New(rand.NewSource(opts.Seed))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	default: // OrderDegreeAsc
		sort.Slice(order, func(i, j int) bool {
			di, dj := g.Degree(order[i]), g.Degree(order[j])
			if di != dj {
				return di < dj
			}
			return order[i] < order[j]
		})
	}
	return order
}

// assemble builds the Block record for the chosen kernels. assigned must
// already include the new kernels; a neighbour is Visited when it was a
// kernel of an earlier block, i.e. assigned but not in the current kernel
// set.
func assemble(g *graph.Graph, kernels []int32, cover, inKernel, assigned, isFeasible *bitset.Set) Block {
	nodes := cover.Slice() // ascending: kernels, borders and visited mixed
	sub, orig := graph.Induced(g, nodes)
	blk := Block{Graph: sub, Orig: orig}
	for local, global := range orig {
		switch {
		case inKernel.Has(global):
			blk.Kernel = append(blk.Kernel, int32(local))
		case assigned.Has(global) && isFeasible.Has(global):
			blk.Visited = append(blk.Visited, int32(local))
		default:
			blk.Border = append(blk.Border, int32(local))
		}
	}
	return blk
}

// ComboSelector picks the MCE combo used for a block, typically the decision
// tree's bestfit (package dtree) or a fixed combo for baselines.
type ComboSelector func(b *Block) mcealg.Combo

// FixedCombo returns a selector that always picks c.
func FixedCombo(c mcealg.Combo) ComboSelector {
	return func(*Block) mcealg.Combo { return c }
}

// AnalyzeBlock implements BLOCK-ANALYSIS (Algorithm 4): it emits every
// maximal clique of g that contains at least one kernel node of b and no
// visited node, with node identifiers translated back to g's IDs. Cliques
// are emitted exactly once per block; across blocks, the visited mechanism
// guarantees global uniqueness. The slice passed to emit is reused.
func AnalyzeBlock(b *Block, combo mcealg.Combo, emit func(clique []int32)) error {
	return AnalyzeBlockInstr(b, combo, emit, nil)
}

// AnalyzeBlockInstr is AnalyzeBlock with optional instrumentation: when ins
// is non-nil, the block's MCE recursion-node and pivot-selection counts are
// added to it after the analysis. A nil ins takes the identical code path
// with zero extra allocations — the instrumented executors pass nil when
// telemetry is disabled, keeping the hot loop paper-faithful.
func AnalyzeBlockInstr(b *Block, combo mcealg.Combo, emit func(clique []int32), ins *telemetry.BlockInstr) error {
	return AnalyzeBlockPar(b, combo, emit, ins, mcealg.Par{})
}

// AnalyzeBlockPar is AnalyzeBlockInstr with explicit intra-block
// parallelism: a BitSetsParallel combo (or par.Workers > 1) runs each
// kernel subproblem on mcealg's work-stealing pool. Emission order, and
// therefore the downstream checkpoint digests and Lemma-1 filter input, is
// identical to the sequential path — the pool merges per-worker cliques
// back into depth-first order before emitting (see mcealg/parallel.go).
//
//mce:hotpath per-block Algorithm 4 kernel loop
func AnalyzeBlockPar(b *Block, combo mcealg.Combo, emit func(clique []int32), ins *telemetry.BlockInstr, par mcealg.Par) error {
	n := b.Graph.N()
	// P starts as K ∪ H; V̄ starts as the visited set (line 2–3).
	P := bitset.New(n)
	for _, v := range b.Kernel {
		P.Add(v)
	}
	for _, v := range b.Border {
		P.Add(v)
	}
	vbar := bitset.New(n)
	for _, v := range b.Visited {
		vbar.Add(v)
	}

	runner, err := mcealg.NewRunnerPar(b.Graph, combo, par)
	if err != nil {
		return err
	}
	Pk := bitset.New(n)
	Xk := bitset.New(n)
	nk := bitset.New(n)
	global := make([]int32, 0, 32)
	translate := func(local []int32) {
		global = global[:0]
		for _, v := range local {
			global = append(global, b.Orig[v])
		}
		slices.Sort(global) // not sort.Slice: that boxes the slice per emitted clique
		emit(global)
	}
	for _, k := range b.Kernel {
		// N_k ← N(k); run MCE(k, P ∩ N_k, V̄ ∩ N_k) (lines 5–6).
		nk.Clear()
		for _, u := range b.Graph.Neighbors(k) {
			nk.Add(u)
		}
		Pk.AndInto(P, nk)
		Xk.AndInto(vbar, nk)
		runner.Subproblem([]int32{k}, Pk, Xk, translate)
		// k is done: all cliques through it are found (lines 7–8).
		P.Remove(k)
		vbar.Add(k)
	}
	if ins != nil {
		nodes, pivots := runner.Counts()
		ins.RecursionNodes += nodes
		ins.PivotSelections += pivots
	}
	return nil
}
