package decomp

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mce/internal/bitset"
	"mce/internal/gen"
	"mce/internal/graph"
	"mce/internal/mcealg"
)

func key(c []int32) string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

func TestCutClassification(t *testing.T) {
	// Star: centre degree 5, leaves degree 1.
	b := graph.NewBuilder(6)
	for v := int32(1); v < 6; v++ {
		b.AddEdge(0, v)
	}
	g := b.Build()
	feasible, hubs := Cut(g, 3)
	if len(hubs) != 1 || hubs[0] != 0 {
		t.Fatalf("hubs = %v, want [0]", hubs)
	}
	if len(feasible) != 5 {
		t.Fatalf("feasible = %v", feasible)
	}
	// m larger than every degree: no hubs.
	feasible, hubs = Cut(g, 6)
	if len(hubs) != 0 || len(feasible) != 6 {
		t.Fatalf("m=6: feasible=%d hubs=%d", len(feasible), len(hubs))
	}
	// Boundary: degree == m means hub (closed neighbourhood m+1 > m).
	_, hubs = Cut(g, 5)
	if len(hubs) != 1 {
		t.Fatalf("m=5: hubs = %v, want the degree-5 centre", hubs)
	}
}

func TestCutEmptyGraph(t *testing.T) {
	f, h := Cut(graph.Empty(0), 4)
	if len(f) != 0 || len(h) != 0 {
		t.Fatalf("empty graph: f=%v h=%v", f, h)
	}
}

func TestIsFeasible(t *testing.T) {
	g := graph.Complete(4) // every degree 3
	if IsFeasible(g, 0, 3) {
		t.Fatalf("degree 3 with m=3 should be hub")
	}
	if !IsFeasible(g, 0, 4) {
		t.Fatalf("degree 3 with m=4 should be feasible")
	}
}

// checkBlockInvariants verifies the structural promises of Algorithm 3.
func checkBlockInvariants(t *testing.T, g *graph.Graph, feasible []int32, m int, blocks []Block) {
	t.Helper()
	feasSet := bitset.FromSlice(g.N(), feasible)
	kernelOwner := make(map[int32]int)
	for bi, b := range blocks {
		if b.Graph.N() != len(b.Orig) {
			t.Fatalf("block %d: size mismatch", bi)
		}
		if b.Graph.N() > m {
			t.Fatalf("block %d: %d nodes exceed m=%d", bi, b.Graph.N(), m)
		}
		if len(b.Kernel) == 0 {
			t.Fatalf("block %d has no kernels", bi)
		}
		classified := 0
		for _, sets := range [][]int32{b.Kernel, b.Border, b.Visited} {
			classified += len(sets)
		}
		if classified != b.Graph.N() {
			t.Fatalf("block %d: %d classified of %d nodes", bi, classified, b.Graph.N())
		}
		for _, k := range b.Kernel {
			gk := b.Orig[k]
			if !feasSet.Has(gk) {
				t.Fatalf("block %d: kernel %d is not feasible", bi, gk)
			}
			if owner, dup := kernelOwner[gk]; dup {
				t.Fatalf("node %d kernel in blocks %d and %d", gk, owner, bi)
			}
			kernelOwner[gk] = bi
			// The kernel's full neighbourhood is inside the block.
			inBlock := map[int32]bool{}
			for _, o := range b.Orig {
				inBlock[o] = true
			}
			for _, u := range g.Neighbors(gk) {
				if !inBlock[u] {
					t.Fatalf("block %d: kernel %d misses neighbour %d", bi, gk, u)
				}
			}
		}
		// Induced subgraph edges match the original graph.
		for u := int32(0); u < int32(b.Graph.N()); u++ {
			for _, v := range b.Graph.Neighbors(u) {
				if !g.HasEdge(b.Orig[u], b.Orig[v]) {
					t.Fatalf("block %d: phantom edge %d-%d", bi, b.Orig[u], b.Orig[v])
				}
			}
		}
	}
	// Kernel sets partition the feasible nodes.
	if len(kernelOwner) != len(feasible) {
		t.Fatalf("kernels cover %d of %d feasible nodes", len(kernelOwner), len(feasible))
	}
}

func TestBlocksPartitionFeasible(t *testing.T) {
	g := gen.HolmeKim(400, 5, 0.6, 3)
	m := g.MaxDegree() / 2
	if m < 8 {
		m = 8
	}
	feasible, _ := Cut(g, m)
	blocks := Blocks(g, feasible, m, Options{})
	checkBlockInvariants(t, g, feasible, m, blocks)
}

func TestBlocksIsolatedNodes(t *testing.T) {
	g := graph.Empty(5)
	feasible, hubs := Cut(g, 3)
	if len(hubs) != 0 {
		t.Fatalf("isolated nodes classified as hubs")
	}
	blocks := Blocks(g, feasible, 3, Options{})
	if len(blocks) != 5 {
		t.Fatalf("got %d blocks, want 5 singletons", len(blocks))
	}
	for _, b := range blocks {
		if b.Graph.N() != 1 || len(b.Kernel) != 1 {
			t.Fatalf("singleton block malformed: %+v", b)
		}
	}
}

func TestBlocksDenseNeighborsShareBlock(t *testing.T) {
	// Two K4s joined by one edge; m=8 fits a whole K4 plus its one
	// external neighbour, so each K4's kernels land in the same block.
	b := graph.NewBuilder(8)
	for u := int32(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.AddEdge(u, v)
			b.AddEdge(u+4, v+4)
		}
	}
	b.AddEdge(3, 4)
	g := b.Build()
	feasible, _ := Cut(g, 8)
	blocks := Blocks(g, feasible, 8, Options{})
	checkBlockInvariants(t, g, feasible, 8, blocks)
	// Each clique {0..3} and {4..7} must appear inside some single block.
	for _, want := range [][]int32{{0, 1, 2, 3}, {4, 5, 6, 7}} {
		found := false
		for _, blk := range blocks {
			have := map[int32]bool{}
			for _, o := range blk.Orig {
				have[o] = true
			}
			all := true
			for _, v := range want {
				if !have[v] {
					all = false
					break
				}
			}
			if all {
				found = true
			}
		}
		if !found {
			t.Fatalf("clique %v split across blocks", want)
		}
	}
}

func collectBlockCliques(t *testing.T, blocks []Block, combo mcealg.Combo) [][]int32 {
	t.Helper()
	var out [][]int32
	for i := range blocks {
		err := AnalyzeBlock(&blocks[i], combo, func(c []int32) {
			cp := make([]int32, len(c))
			copy(cp, c)
			out = append(out, cp)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestAnalyzeBlocksFindAllFeasibleCliquesOnce(t *testing.T) {
	// With m above the max degree there are no hubs, so block analysis
	// alone must produce every maximal clique of the graph exactly once.
	g := gen.HolmeKim(250, 4, 0.7, 11)
	m := g.MaxDegree() + 1
	feasible, hubs := Cut(g, m)
	if len(hubs) != 0 {
		t.Fatalf("unexpected hubs with m > maxdeg")
	}
	blocks := Blocks(g, feasible, m, Options{})
	checkBlockInvariants(t, g, feasible, m, blocks)

	got := collectBlockCliques(t, blocks, mcealg.Combo{Alg: mcealg.Tomita, Struct: mcealg.BitSets})
	want := mcealg.ReferenceCollect(g)

	gs := map[string]int{}
	for _, c := range got {
		gs[key(c)]++
	}
	for k, cnt := range gs {
		if cnt > 1 {
			t.Fatalf("clique {%s} emitted %d times", k, cnt)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d cliques, want %d", len(got), len(want))
	}
	for _, c := range want {
		if gs[key(c)] != 1 {
			t.Fatalf("clique {%s} missing", key(c))
		}
	}
}

func TestAnalyzeBlockRespectsVisited(t *testing.T) {
	// Triangle 0-1-2. Build a block where 2 is visited: only cliques
	// avoiding 2 and not extensible by 2 qualify — none, since {0,1}
	// extends by 2. So nothing is emitted.
	g := graph.Complete(3)
	sub, orig := graph.Induced(g, []int32{0, 1, 2})
	b := Block{Graph: sub, Orig: orig, Kernel: []int32{0, 1}, Visited: []int32{2}}
	var got [][]int32
	err := AnalyzeBlock(&b, mcealg.Combo{Alg: mcealg.Tomita, Struct: mcealg.Lists}, func(c []int32) {
		cp := make([]int32, len(c))
		copy(cp, c)
		got = append(got, cp)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("emitted %v despite visited node", got)
	}
}

func TestAnalyzeBlockKernelOnly(t *testing.T) {
	// Same triangle with all three nodes kernels: exactly one clique.
	g := graph.Complete(3)
	sub, orig := graph.Induced(g, []int32{0, 1, 2})
	b := Block{Graph: sub, Orig: orig, Kernel: []int32{0, 1, 2}}
	var got [][]int32
	err := AnalyzeBlock(&b, mcealg.Combo{Alg: mcealg.BKPivot, Struct: mcealg.Matrix}, func(c []int32) {
		cp := make([]int32, len(c))
		copy(cp, c)
		got = append(got, cp)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || key(got[0]) != "0,1,2" {
		t.Fatalf("got %v, want [{0,1,2}]", got)
	}
}

func TestMinAdjacencyOption(t *testing.T) {
	// A long path with MinAdjacency 2 yields smaller blocks than with 1,
	// because path nodes never have 2 edges into the kernel set.
	b := graph.NewBuilder(30)
	for v := int32(0); v < 29; v++ {
		b.AddEdge(v, v+1)
	}
	g := b.Build()
	feasible, _ := Cut(g, 10)
	loose := Blocks(g, feasible, 10, Options{MinAdjacency: 1})
	strict := Blocks(g, feasible, 10, Options{MinAdjacency: 2})
	if len(strict) <= len(loose) {
		t.Fatalf("MinAdjacency=2 gave %d blocks, expected more than %d", len(strict), len(loose))
	}
	checkBlockInvariants(t, g, feasible, 10, strict)
}

// Property: on random graphs with no hubs, decomposition + block analysis
// equals the reference enumeration exactly (count and content), for several
// combos.
func TestQuickDecompositionComplete(t *testing.T) {
	combos := []mcealg.Combo{
		{Alg: mcealg.Tomita, Struct: mcealg.BitSets},
		{Alg: mcealg.Eppstein, Struct: mcealg.Lists},
		{Alg: mcealg.XPivot, Struct: mcealg.Matrix},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 5
		g := gen.ErdosRenyi(n, 0.15+rng.Float64()*0.2, seed)
		m := g.MaxDegree() + 1 + rng.Intn(5)
		feasible, hubs := Cut(g, m)
		if len(hubs) != 0 {
			return false
		}
		blocks := Blocks(g, feasible, m, Options{})
		want := map[string]bool{}
		for _, c := range mcealg.ReferenceCollect(g) {
			want[key(c)] = true
		}
		for _, combo := range combos {
			got := map[string]int{}
			for i := range blocks {
				err := AnalyzeBlock(&blocks[i], combo, func(c []int32) {
					got[key(c)]++
				})
				if err != nil {
					return false
				}
			}
			if len(got) != len(want) {
				return false
			}
			for k, cnt := range got {
				if cnt != 1 || !want[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: with hubs present, block analysis finds exactly the reference
// cliques that contain at least one feasible node.
func TestQuickBlocksFindFeasibleSideCliques(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 10
		g := gen.BarabasiAlbert(n, 3, seed)
		m := g.MaxDegree()/2 + 2 // guarantees some hubs on BA graphs usually
		feasible, _ := Cut(g, m)
		feasSet := map[int32]bool{}
		for _, v := range feasible {
			feasSet[v] = true
		}
		want := map[string]bool{}
		for _, c := range mcealg.ReferenceCollect(g) {
			hasFeasible := false
			for _, v := range c {
				if feasSet[v] {
					hasFeasible = true
					break
				}
			}
			if hasFeasible {
				want[key(c)] = true
			}
		}
		blocks := Blocks(g, feasible, m, Options{})
		got := map[string]int{}
		for i := range blocks {
			err := AnalyzeBlock(&blocks[i], mcealg.Combo{Alg: mcealg.Tomita, Struct: mcealg.BitSets},
				func(c []int32) { got[key(c)]++ })
			if err != nil {
				return false
			}
		}
		if len(got) != len(want) {
			return false
		}
		for k, cnt := range got {
			if cnt != 1 || !want[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSeedOrders(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 5)
	m := g.MaxDegree() + 1
	feasible, _ := Cut(g, m)
	for _, opts := range []Options{
		{Order: OrderDegreeAsc},
		{Order: OrderID},
		{Order: OrderRandom, Seed: 7},
	} {
		blocks := Blocks(g, feasible, m, opts)
		checkBlockInvariants(t, g, feasible, m, blocks)
	}
}

func TestOrderRandomDeterministicPerSeed(t *testing.T) {
	g := gen.HolmeKim(150, 4, 0.6, 9)
	m := g.MaxDegree()/2 + 2
	feasible, _ := Cut(g, m)
	a := Blocks(g, feasible, m, Options{Order: OrderRandom, Seed: 3})
	b := Blocks(g, feasible, m, Options{Order: OrderRandom, Seed: 3})
	if len(a) != len(b) {
		t.Fatalf("same seed, different block counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Graph.N() != b[i].Graph.N() || len(a[i].Kernel) != len(b[i].Kernel) {
			t.Fatalf("same seed, block %d differs", i)
		}
	}
	c := Blocks(g, feasible, m, Options{Order: OrderRandom, Seed: 4})
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].Graph.N() != c[i].Graph.N() {
				same = false
				break
			}
		}
	}
	if same {
		t.Log("different seeds produced identical decompositions (possible but unlikely)")
	}
}

func TestDenseOrderingYieldsDenserBlocks(t *testing.T) {
	// On a clustered graph, degree-ascending greedy growth should produce
	// blocks at least as dense on average as random seeding — §7's point
	// against hash partitioning.
	g := gen.HolmeKim(800, 5, 0.75, 13)
	m := g.MaxDegree() / 2
	feasible, _ := Cut(g, m)
	avgDensity := func(blocks []Block) float64 {
		total, n := 0.0, 0
		for _, b := range blocks {
			if b.Graph.N() >= 2 {
				total += b.Graph.Density()
				n++
			}
		}
		return total / float64(n)
	}
	greedy := avgDensity(Blocks(g, feasible, m, Options{Order: OrderDegreeAsc}))
	random := avgDensity(Blocks(g, feasible, m, Options{Order: OrderRandom, Seed: 1}))
	if greedy < random*0.8 {
		t.Fatalf("greedy blocks much sparser than random: %.4f vs %.4f", greedy, random)
	}
}
