package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	g := Empty(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("Empty(5): n=%d m=%d", g.N(), g.M())
	}
	for v := int32(0); v < 5; v++ {
		if g.Degree(v) != 0 {
			t.Errorf("Degree(%d) = %d, want 0", v, g.Degree(v))
		}
	}
	if g.MaxDegree() != 0 {
		t.Errorf("MaxDegree = %d, want 0", g.MaxDegree())
	}
	if g.Density() != 0 {
		t.Errorf("Density = %f, want 0", g.Density())
	}
}

func TestZeroNodeGraph(t *testing.T) {
	g := Empty(0)
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("Empty(0): n=%d m=%d", g.N(), g.M())
	}
	if g.MaxDegree() != 0 || g.Density() != 0 {
		t.Fatalf("zero-node graph stats wrong")
	}
	if len(g.Edges()) != 0 {
		t.Fatalf("zero-node graph has edges")
	}
}

func TestCompleteGraph(t *testing.T) {
	g := Complete(6)
	if g.N() != 6 || g.M() != 15 {
		t.Fatalf("Complete(6): n=%d m=%d, want 6, 15", g.N(), g.M())
	}
	if g.Density() != 1 {
		t.Errorf("Density = %f, want 1", g.Density())
	}
	for u := int32(0); u < 6; u++ {
		for v := int32(0); v < 6; v++ {
			if want := u != v; g.HasEdge(u, v) != want {
				t.Errorf("HasEdge(%d,%d) = %v, want %v", u, v, !want, want)
			}
		}
	}
}

func TestBuilderNormalisation(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop ignored
	b.AddEdge(-1, 3)
	b.AddEdge(3, 99) // out of range ignored
	b.AddEdge(3, 2)
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 3) {
		t.Fatalf("expected edges missing")
	}
	if g.HasEdge(2, 2) {
		t.Fatalf("self loop survived")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := FromEdges(5, []Edge{{3, 1}, {3, 0}, {3, 4}, {3, 2}})
	adj := g.Neighbors(3)
	if !sort.SliceIsSorted(adj, func(i, j int) bool { return adj[i] < adj[j] }) {
		t.Fatalf("Neighbors not sorted: %v", adj)
	}
	if len(adj) != 4 {
		t.Fatalf("Degree(3) = %d, want 4", len(adj))
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	in := []Edge{{0, 1}, {1, 2}, {0, 2}, {3, 4}}
	g := FromEdges(5, in)
	out := g.Edges()
	if len(out) != len(in) {
		t.Fatalf("Edges count = %d, want %d", len(out), len(in))
	}
	g2 := FromEdges(5, out)
	for _, e := range in {
		if !g2.HasEdge(e.U, e.V) {
			t.Errorf("edge %v lost in round trip", e)
		}
	}
}

func TestDegreeHistogramTruncate(t *testing.T) {
	// Star on 5 nodes: centre degree 4, leaves degree 1.
	g := FromEdges(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	h := g.DegreeHistogram(2, true)
	if h[0] != 0 || h[1] != 4 || h[2] != 1 {
		t.Fatalf("truncated histogram = %v", h)
	}
	h = g.DegreeHistogram(2, false)
	if len(h) != 5 || h[4] != 1 || h[2] != 0 {
		t.Fatalf("extended histogram = %v", h)
	}
}

func TestInduced(t *testing.T) {
	// Path 0-1-2-3 plus chord 0-2.
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 2}})
	sub, orig := Induced(g, []int32{2, 0, 3})
	if sub.N() != 3 {
		t.Fatalf("induced N = %d, want 3", sub.N())
	}
	// orig maps new IDs back: new0=2, new1=0, new2=3.
	if orig[0] != 2 || orig[1] != 0 || orig[2] != 3 {
		t.Fatalf("origIDs = %v", orig)
	}
	// Edges among {2,0,3}: 0-2 and 2-3 → new (0,1) and (0,2).
	if sub.M() != 2 || !sub.HasEdge(0, 1) || !sub.HasEdge(0, 2) || sub.HasEdge(1, 2) {
		t.Fatalf("induced edges wrong: %v", sub.Edges())
	}
}

func TestInducedDuplicatesIgnored(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	sub, orig := Induced(g, []int32{1, 1, 2})
	if sub.N() != 2 || len(orig) != 2 {
		t.Fatalf("duplicate nodes not collapsed: n=%d orig=%v", sub.N(), orig)
	}
	if !sub.HasEdge(0, 1) {
		t.Fatalf("edge 1-2 missing from induced subgraph")
	}
}

func TestInducedEmptySelection(t *testing.T) {
	g := Complete(4)
	sub, orig := Induced(g, nil)
	if sub.N() != 0 || len(orig) != 0 {
		t.Fatalf("induced on empty selection: n=%d", sub.N())
	}
}

func TestGrow(t *testing.T) {
	b := NewBuilder(2)
	b.Grow(5)
	b.AddEdge(3, 4)
	g := b.Build()
	if g.N() != 5 || !g.HasEdge(3, 4) {
		t.Fatalf("Grow failed: n=%d", g.N())
	}
	b.Grow(3) // shrinking is a no-op
	if b.N() != 5 {
		t.Fatalf("Grow shrank the builder")
	}
}

func TestString(t *testing.T) {
	if got := Complete(3).String(); got != "graph{n=3 m=3}" {
		t.Errorf("String = %q", got)
	}
}

// Property: for random edge sets, HasEdge matches a reference adjacency map,
// degrees sum to 2M, and adjacency is symmetric and sorted.
func TestQuickBuildConsistency(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%40) + 2
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(n)
		ref := map[[2]int32]bool{}
		for i := 0; i < 3*n; i++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			b.AddEdge(u, v)
			if u != v {
				if u > v {
					u, v = v, u
				}
				ref[[2]int32{u, v}] = true
			}
		}
		g := b.Build()
		if g.M() != len(ref) {
			return false
		}
		degSum := 0
		for v := int32(0); v < int32(n); v++ {
			adj := g.Neighbors(v)
			degSum += len(adj)
			for i := 1; i < len(adj); i++ {
				if adj[i-1] >= adj[i] {
					return false // unsorted or duplicate
				}
			}
			for _, w := range adj {
				if !g.HasEdge(w, v) { // symmetry
					return false
				}
			}
		}
		if degSum != 2*g.M() {
			return false
		}
		for u := int32(0); u < int32(n); u++ {
			for v := int32(0); v < int32(n); v++ {
				key := [2]int32{u, v}
				if u > v {
					key = [2]int32{v, u}
				}
				if g.HasEdge(u, v) != ref[key] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Induced preserves exactly the edges with both endpoints selected.
func TestQuickInduced(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 5
		b := NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		var sel []int32
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				sel = append(sel, int32(v))
			}
		}
		sub, orig := Induced(g, sel)
		if sub.N() != len(sel) {
			return false
		}
		for nu := int32(0); nu < int32(sub.N()); nu++ {
			for nv := nu + 1; nv < int32(sub.N()); nv++ {
				if sub.HasEdge(nu, nv) != g.HasEdge(orig[nu], orig[nv]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const n = 5000
	edges := make([]Edge, 0, 10*n)
	for i := 0; i < 10*n; i++ {
		edges = append(edges, Edge{int32(rng.Intn(n)), int32(rng.Intn(n))})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FromEdges(n, edges)
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := Complete(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.HasEdge(int32(i%500), int32((i*7)%500))
	}
}
