package graph

import (
	"fmt"
	"sort"
)

// StreamBuilder constructs a Graph from two passes over an edge stream
// without buffering the edge list: the first pass counts incidences, the
// second writes endpoints straight into the final backing array. Peak
// memory is the finished adjacency plus O(N) counters — roughly half of
// what Builder needs — which matters when the input pushes against main
// memory, the regime the external-memory MCE line of work ([8], [10] in
// the paper) targets.
//
// Usage:
//
//	sb := graph.NewStreamBuilder(n)
//	for each edge { sb.CountEdge(u, v) }   // pass 1
//	sb.FinishCount()
//	for each edge { sb.FillEdge(u, v) }    // pass 2 (same stream, re-read)
//	g, err := sb.Build()
//
// Self loops and out-of-range endpoints are ignored in both passes;
// duplicate edges are removed at Build time. The two passes must present
// the same multiset of edges, or Build reports the mismatch.
type StreamBuilder struct {
	n       int
	phase   int // 0 counting, 1 filling, 2 built
	deg     []int32
	offsets []int32
	cursor  []int32
	flat    []int32
	counted int64
	filled  int64
}

// NewStreamBuilder returns a builder for a graph with n nodes.
func NewStreamBuilder(n int) *StreamBuilder {
	if n < 0 {
		n = 0
	}
	return &StreamBuilder{n: n, deg: make([]int32, n)}
}

// NewStreamBuilderFromDegrees skips the counting pass when the incidence
// counts are already known (e.g. collected while building a label map):
// deg[v] must be the number of edge endpoints at v including duplicates,
// and edges the total edge records the fill pass will present. The builder
// is returned ready for FillEdge; deg is retained.
func NewStreamBuilderFromDegrees(deg []int32, edges int64) *StreamBuilder {
	b := &StreamBuilder{n: len(deg), deg: deg, counted: edges}
	b.FinishCount()
	return b
}

func (b *StreamBuilder) accepts(u, v int32) bool {
	return u != v && u >= 0 && v >= 0 && int(u) < b.n && int(v) < b.n
}

// CountEdge records the incidence counts of one edge (pass 1).
func (b *StreamBuilder) CountEdge(u, v int32) {
	if b.phase != 0 || !b.accepts(u, v) {
		return
	}
	b.deg[u]++
	b.deg[v]++
	b.counted++
}

// FinishCount switches to the fill phase, allocating the backing array.
func (b *StreamBuilder) FinishCount() {
	if b.phase != 0 {
		return
	}
	b.offsets = make([]int32, b.n+1)
	for v := 0; v < b.n; v++ {
		b.offsets[v+1] = b.offsets[v] + b.deg[v]
	}
	b.cursor = make([]int32, b.n)
	copy(b.cursor, b.offsets[:b.n])
	b.flat = make([]int32, 2*b.counted)
	b.phase = 1
}

// FillEdge writes one edge's endpoints into the adjacency (pass 2).
func (b *StreamBuilder) FillEdge(u, v int32) {
	if b.phase != 1 || !b.accepts(u, v) {
		return
	}
	if b.filled >= b.counted {
		b.filled++ // overflow detected at Build
		return
	}
	b.flat[b.cursor[u]] = v
	b.cursor[u]++
	b.flat[b.cursor[v]] = u
	b.cursor[v]++
	b.filled++
}

// Build sorts and deduplicates the adjacency in place and returns the
// graph. It fails when the two passes disagreed on the edge stream.
func (b *StreamBuilder) Build() (*Graph, error) {
	if b.phase == 0 {
		b.FinishCount()
	}
	if b.phase == 2 {
		return nil, fmt.Errorf("graph: StreamBuilder already built")
	}
	if b.filled != b.counted {
		return nil, fmt.Errorf("graph: fill pass saw %d edges, count pass %d", b.filled, b.counted)
	}
	b.phase = 2

	// Sort and dedup each adjacency slice in place, then compact the
	// backing array so the final graph is normalised like Builder's.
	newOffsets := make([]int32, b.n+1)
	write := int32(0)
	for v := 0; v < b.n; v++ {
		adj := b.flat[b.offsets[v]:b.offsets[v+1]]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
		newOffsets[v] = write
		var prev int32 = -1
		for _, u := range adj {
			if u != prev {
				b.flat[write] = u
				write++
				prev = u
			}
		}
	}
	newOffsets[b.n] = write
	g := &Graph{offsets: newOffsets, flat: b.flat[:write]}
	b.deg, b.offsets, b.cursor, b.flat = nil, nil, nil, nil
	return g, nil
}
