// Package graph provides the in-memory network representation shared by all
// stages of the two-level maximal clique enumeration pipeline.
//
// A Graph is simple (no self loops, no parallel edges) and undirected, stored
// as per-node sorted adjacency slices over a single backing array, which is
// the compact, cache-friendly layout that the decomposition routines and the
// Lists adjacency structure read directly. Nodes are dense int32 identifiers
// in [0, N()); external labels are mapped to dense IDs by package gio.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph. Build one with a Builder or
// FromEdges; a built Graph is safe for concurrent readers.
type Graph struct {
	offsets []int32 // len N()+1; adjacency of v is flat[offsets[v]:offsets[v+1]]
	flat    []int32 // concatenated sorted neighbour lists
}

// Edge is an undirected edge between two node identifiers.
type Edge struct {
	U, V int32
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.flat) / 2 }

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted neighbour list of v. The returned slice
// aliases the graph's storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.flat[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether u and v are adjacent. It runs in O(log deg(u)).
func (g *Graph) HasEdge(u, v int32) bool {
	if u == v {
		return false
	}
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// MaxDegree returns the largest node degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := int32(0); v < int32(g.N()); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// Density returns 2M / (N(N-1)), the fraction of possible edges present.
// Graphs with fewer than two nodes have density 0.
func (g *Graph) Density() float64 {
	n := float64(g.N())
	if n < 2 {
		return 0
	}
	return 2 * float64(g.M()) / (n * (n - 1))
}

// Edges returns all undirected edges with U < V, sorted lexicographically.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.M())
	for u := int32(0); u < int32(g.N()); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				es = append(es, Edge{u, v})
			}
		}
	}
	return es
}

// DegreeHistogram returns counts[d] = number of nodes of degree d for
// d in [0, maxDeg]; degrees above maxDeg are accumulated into the last bin
// when truncate is true, and extend the slice otherwise.
func (g *Graph) DegreeHistogram(maxDeg int, truncate bool) []int {
	counts := make([]int, maxDeg+1)
	for v := int32(0); v < int32(g.N()); v++ {
		d := g.Degree(v)
		switch {
		case d <= maxDeg:
			counts[d]++
		case truncate:
			counts[maxDeg]++
		default:
			for len(counts) <= d {
				counts = append(counts, 0)
			}
			counts[d]++
		}
	}
	return counts
}

// String summarises the graph for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.N(), g.M())
}

// Builder accumulates edges and produces a normalised Graph: undirected,
// deduplicated, self loops dropped, adjacency sorted. The zero value is not
// usable; create one with NewBuilder.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a Builder for a graph with n nodes (IDs 0..n-1).
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	return &Builder{n: n}
}

// AddEdge records an undirected edge between u and v. Self loops and
// out-of-range endpoints are ignored; duplicates are removed at Build time.
func (b *Builder) AddEdge(u, v int32) {
	if u == v || u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, Edge{u, v})
}

// Grow raises the node count to at least n.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// N returns the current node count of the builder.
func (b *Builder) N() int { return b.n }

// Build constructs the normalised Graph. The builder may be reused afterwards;
// further AddEdge calls do not affect the returned graph.
func (b *Builder) Build() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].U != b.edges[j].U {
			return b.edges[i].U < b.edges[j].U
		}
		return b.edges[i].V < b.edges[j].V
	})
	// Deduplicate in place.
	uniq := b.edges[:0]
	var prev Edge
	for i, e := range b.edges {
		if i == 0 || e != prev {
			uniq = append(uniq, e)
			prev = e
		}
	}
	b.edges = uniq

	deg := make([]int32, b.n)
	for _, e := range b.edges {
		deg[e.U]++
		deg[e.V]++
	}
	offsets := make([]int32, b.n+1)
	for v := 0; v < b.n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	flat := make([]int32, 2*len(b.edges))
	cursor := make([]int32, b.n)
	copy(cursor, offsets[:b.n])
	for _, e := range b.edges {
		flat[cursor[e.U]] = e.V
		cursor[e.U]++
		flat[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	g := &Graph{offsets: offsets, flat: flat}
	// Each list was filled in two passes (smaller endpoints first from the
	// sorted edge order, then larger); sort per node to guarantee order.
	for v := int32(0); v < int32(b.n); v++ {
		adj := g.flat[offsets[v]:offsets[v+1]]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
	}
	return g
}

// FromEdges builds a graph with n nodes from an edge list, normalising as
// Builder does.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// Empty returns a graph with n nodes and no edges.
func Empty(n int) *Graph {
	return NewBuilder(n).Build()
}

// Complete returns the complete graph on n nodes.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := int32(0); u < int32(n); u++ {
		for v := u + 1; v < int32(n); v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Induced returns the subgraph of g induced by nodes, relabelled to dense
// IDs 0..len(nodes)-1 in the order given, together with origIDs such that
// origIDs[newID] is the node's identifier in g. Duplicate entries in nodes
// are ignored after the first occurrence.
func Induced(g *Graph, nodes []int32) (sub *Graph, origIDs []int32) {
	newID := make(map[int32]int32, len(nodes))
	origIDs = make([]int32, 0, len(nodes))
	for _, v := range nodes {
		if _, dup := newID[v]; dup {
			continue
		}
		newID[v] = int32(len(origIDs))
		origIDs = append(origIDs, v)
	}
	b := NewBuilder(len(origIDs))
	for nu, u := range origIDs {
		for _, w := range g.Neighbors(u) {
			if nw, ok := newID[w]; ok && int32(nu) < nw {
				b.AddEdge(int32(nu), nw)
			}
		}
	}
	return b.Build(), origIDs
}
