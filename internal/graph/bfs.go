package graph

// BFS returns the hop distance from src to every node, with -1 for
// unreachable nodes. It is the primitive behind the distance-based
// community relaxations (k-cliques, k-clubs, k-clans).
func BFS(g *Graph, src int32) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || int(src) >= g.N() {
		return dist
	}
	dist[src] = 0
	queue := []int32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// BFSWithin returns the hop distances from src restricted to the induced
// subgraph on members (only nodes with members[v] true are traversed).
// Distances of excluded or unreachable nodes are -1.
func BFSWithin(g *Graph, src int32, members []bool) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || int(src) >= g.N() || !members[src] {
		return dist
	}
	dist[src] = 0
	queue := []int32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if members[u] && dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Power returns the k-th graph power: u and v are adjacent in the result
// exactly when their distance in g is between 1 and k. Maximal cliques of
// Power(g, k) are exactly the maximal k-cliques of g in Luce's distance
// relaxation.
func Power(g *Graph, k int) *Graph {
	if k <= 1 {
		// The first power is the graph itself (copied for ownership).
		return FromEdges(g.N(), g.Edges())
	}
	b := NewBuilder(g.N())
	for src := int32(0); src < int32(g.N()); src++ {
		dist := boundedBFS(g, src, int32(k))
		for v, d := range dist {
			if d > 0 && int32(v) > src {
				b.AddEdge(src, int32(v))
			}
		}
	}
	return b.Build()
}

// boundedBFS is BFS truncated at depth maxDepth; unvisited nodes get -1.
func boundedBFS(g *Graph, src, maxDepth int32) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if dist[v] == maxDepth {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}
