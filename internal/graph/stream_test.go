package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStreamBuilderMatchesBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 80
	var edges []Edge
	for i := 0; i < 4*n; i++ {
		edges = append(edges, Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))})
	}
	want := FromEdges(n, edges)

	sb := NewStreamBuilder(n)
	for _, e := range edges {
		sb.CountEdge(e.U, e.V)
	}
	sb.FinishCount()
	for _, e := range edges {
		sb.FillEdge(e.U, e.V)
	}
	got, err := sb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("stream build n=%d m=%d, want n=%d m=%d", got.N(), got.M(), want.N(), want.M())
	}
	for v := int32(0); v < int32(n); v++ {
		ga, wa := got.Neighbors(v), want.Neighbors(v)
		if len(ga) != len(wa) {
			t.Fatalf("degree(%d) = %d, want %d", v, len(ga), len(wa))
		}
		for i := range ga {
			if ga[i] != wa[i] {
				t.Fatalf("adjacency of %d differs", v)
			}
		}
	}
}

func TestStreamBuilderPassMismatch(t *testing.T) {
	sb := NewStreamBuilder(4)
	sb.CountEdge(0, 1)
	sb.CountEdge(1, 2)
	sb.FinishCount()
	sb.FillEdge(0, 1) // second edge never filled
	if _, err := sb.Build(); err == nil {
		t.Fatal("mismatched passes accepted")
	}
	// Overfill is also caught.
	sb2 := NewStreamBuilder(4)
	sb2.CountEdge(0, 1)
	sb2.FinishCount()
	sb2.FillEdge(0, 1)
	sb2.FillEdge(1, 2)
	if _, err := sb2.Build(); err == nil {
		t.Fatal("overfilled pass accepted")
	}
}

func TestStreamBuilderDoubleBuild(t *testing.T) {
	sb := NewStreamBuilder(2)
	sb.CountEdge(0, 1)
	sb.FinishCount()
	sb.FillEdge(0, 1)
	if _, err := sb.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Build(); err == nil {
		t.Fatal("second Build accepted")
	}
}

func TestStreamBuilderIgnoresJunk(t *testing.T) {
	sb := NewStreamBuilder(3)
	sb.CountEdge(0, 0)  // self loop
	sb.CountEdge(-1, 2) // out of range
	sb.CountEdge(0, 99)
	sb.CountEdge(0, 1)
	sb.FinishCount()
	sb.FillEdge(0, 0)
	sb.FillEdge(-1, 2)
	sb.FillEdge(0, 99)
	sb.FillEdge(0, 1)
	g, err := sb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 || !g.HasEdge(0, 1) {
		t.Fatalf("junk edges leaked: %v", g)
	}
}

func TestStreamBuilderFromDegrees(t *testing.T) {
	deg := []int32{1, 2, 1}
	sb := NewStreamBuilderFromDegrees(deg, 2)
	sb.FillEdge(0, 1)
	sb.FillEdge(1, 2)
	g, err := sb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 || g.Degree(1) != 2 {
		t.Fatalf("from-degrees build wrong: %v", g)
	}
}

// Property: StreamBuilder and Builder agree on random duplicate-laden edge
// streams.
func TestQuickStreamBuilderEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 2
		var edges []Edge
		for i := 0; i < 5*n; i++ {
			edges = append(edges, Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))})
		}
		want := FromEdges(n, edges)
		sb := NewStreamBuilder(n)
		for _, e := range edges {
			sb.CountEdge(e.U, e.V)
		}
		sb.FinishCount()
		for _, e := range edges {
			sb.FillEdge(e.U, e.V)
		}
		got, err := sb.Build()
		if err != nil || got.M() != want.M() {
			return false
		}
		for v := int32(0); v < int32(n); v++ {
			ga, wa := got.Neighbors(v), want.Neighbors(v)
			if len(ga) != len(wa) {
				return false
			}
			for i := range ga {
				if ga[i] != wa[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
