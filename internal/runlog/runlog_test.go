package runlog

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mce/internal/telemetry"
)

var testID = Identity{Graph: 0xfeedbeef, Options: 0xcafe}

func openTest(t *testing.T, dir string, id Identity) *Checkpoint {
	t.Helper()
	c, err := Open(dir, id, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFreshCheckpoint pins the empty-journal path: a brand-new directory
// (and an Open of a directory whose journal holds only this session's
// run-begin record) is not a resume.
func TestFreshCheckpoint(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir, testID)
	if c.Resumed() {
		t.Fatal("fresh checkpoint reported as resumed")
	}
	if _, ok := c.DoneCliques(BlockID{0, 0}); ok {
		t.Fatal("fresh checkpoint claims a done block")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyJournalFile pins that a zero-byte journal file (created, never
// written — e.g. a crash before the header was flushed) opens as a fresh
// run rather than erroring.
func TestEmptyJournalFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(JournalPath(dir), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	c := openTest(t, dir, testID)
	defer c.Close()
	if c.Resumed() {
		t.Fatal("empty journal file reported as resumed")
	}
}

// TestResumeRoundTrip drives a two-level run to the middle, reopens the
// directory, and checks the journal hands back exactly the completed work.
func TestResumeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir, testID)
	cl0 := [][]int32{{1, 2, 3}, {4, 7}}
	cl1 := [][]int32{{0, 9}}
	if err := c.BeginLevel(0, 3); err != nil {
		t.Fatal(err)
	}
	c.BlockDispatched(BlockID{0, 0})
	c.BlockDispatched(BlockID{0, 1})
	c.BlockDispatched(BlockID{0, 2})
	if err := c.BlockDone(BlockID{0, 0}, cl0); err != nil {
		t.Fatal(err)
	}
	if err := c.BlockDone(BlockID{0, 1}, cl1); err != nil {
		t.Fatal(err)
	}
	// Block {0,2} stays dispatched-but-not-done: the "crash".
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	met := telemetry.NewEngine()
	r, err := Open(dir, testID, Options{NoSync: true, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Resumed() {
		t.Fatal("reopened checkpoint not reported as resumed")
	}
	if err := r.BeginLevel(0, 3); err != nil {
		t.Fatal(err)
	}
	got, ok := r.DoneCliques(BlockID{0, 0})
	if !ok || !reflect.DeepEqual(got, cl0) {
		t.Fatalf("block {0,0}: ok=%v got %v want %v", ok, got, cl0)
	}
	if got, ok := r.DoneCliques(BlockID{0, 1}); !ok || !reflect.DeepEqual(got, cl1) {
		t.Fatalf("block {0,1}: ok=%v got %v", ok, got)
	}
	if _, ok := r.DoneCliques(BlockID{0, 2}); ok {
		t.Fatal("in-flight block {0,2} resumed as done")
	}
	if n := r.SkippedBlocks(); n != 2 {
		t.Fatalf("SkippedBlocks = %d, want 2", n)
	}
	if n := r.ReenqueuedBlocks(); n != 1 {
		t.Fatalf("ReenqueuedBlocks = %d, want 1", n)
	}
	if n := met.Snapshot().CheckpointBlocksSkipped; n != 2 {
		t.Fatalf("telemetry skipped counter = %d, want 2", n)
	}
}

// TestResumeAfterResume pins that a journal already carrying a resume
// record resumes again cleanly — each session appends its own identity
// record and the done-set keeps accumulating.
func TestResumeAfterResume(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir, testID)
	c.BeginLevel(0, 2)
	if err := c.BlockDone(BlockID{0, 0}, [][]int32{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	c.Close()

	c2 := openTest(t, dir, testID)
	if !c2.Resumed() {
		t.Fatal("first resume not detected")
	}
	if err := c2.BlockDone(BlockID{0, 1}, [][]int32{{3, 4}}); err != nil {
		t.Fatal(err)
	}
	c2.Close()

	c3 := openTest(t, dir, testID)
	defer c3.Close()
	if !c3.Resumed() {
		t.Fatal("second resume not detected")
	}
	for plan := 0; plan < 2; plan++ {
		if _, ok := c3.DoneCliques(BlockID{0, plan}); !ok {
			t.Fatalf("block {0,%d} lost across double resume", plan)
		}
	}
}

// TestIdentityMismatch pins the refusal path: resuming with a different
// graph or different plan-affecting options must fail with
// ErrIdentityMismatch and a message naming the problem.
func TestIdentityMismatch(t *testing.T) {
	dir := t.TempDir()
	openTest(t, dir, testID).Close()

	for _, bad := range []Identity{
		{Graph: testID.Graph + 1, Options: testID.Options},
		{Graph: testID.Graph, Options: testID.Options + 1},
	} {
		if _, err := Open(dir, bad, Options{NoSync: true}); !errors.Is(err, ErrIdentityMismatch) {
			t.Fatalf("Open with identity %+v: err %v, want ErrIdentityMismatch", bad, err)
		}
	}
}

// TestBlockPlanMismatch pins the second identity guard: a resumed level
// whose deterministic plan size changed is refused even though the digests
// matched.
func TestBlockPlanMismatch(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir, testID)
	c.BeginLevel(0, 4)
	c.Close()

	r := openTest(t, dir, testID)
	defer r.Close()
	if err := r.BeginLevel(0, 5); !errors.Is(err, ErrIdentityMismatch) {
		t.Fatalf("BeginLevel with changed plan: err %v, want ErrIdentityMismatch", err)
	}
}

// TestTornTailTruncated pins WAL recovery: chopping bytes off the journal
// tail loses at most the torn record — replay stops at the last intact
// record and the next session appends from there.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir, testID)
	c.BeginLevel(0, 2)
	c.BlockDone(BlockID{0, 0}, [][]int32{{1, 2, 3}})
	c.BlockDone(BlockID{0, 1}, [][]int32{{5, 6}})
	c.Close()

	path := JournalPath(dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-way into the final (done {0,1}) record.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	r := openTest(t, dir, testID)
	defer r.Close()
	if !r.Resumed() {
		t.Fatal("torn journal not resumed")
	}
	if _, ok := r.DoneCliques(BlockID{0, 0}); !ok {
		t.Fatal("intact record lost to torn-tail truncation")
	}
	if _, ok := r.DoneCliques(BlockID{0, 1}); ok {
		t.Fatal("torn done-record replayed as intact")
	}
	// The torn frame must be gone from disk: the re-opened journal's
	// records all decode.
	recs, _, err := replayJournal(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if recs[len(recs)-1].kind != recResume {
		t.Fatalf("last record kind %d, want recResume appended after truncation", recs[len(recs)-1].kind)
	}
}

// TestSegmentCorruptionSelfHeals pins the self-healing contract: a done
// block whose segment no longer verifies is handed back as not-done so the
// caller re-executes it, rather than failing the resume.
func TestSegmentCorruptionSelfHeals(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir, testID)
	c.BeginLevel(0, 1)
	if err := c.BlockDone(BlockID{0, 0}, [][]int32{{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Truncate the segment: journal says done, bytes disagree.
	seg := filepath.Join(dir, segmentsDir, "L000-B000000.cliq")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}

	r := openTest(t, dir, testID)
	defer r.Close()
	if _, ok := r.DoneCliques(BlockID{0, 0}); ok {
		t.Fatal("corrupt segment served as a done block")
	}
	// Re-execution overwrites the bad segment and the block is done again.
	want := [][]int32{{1, 2, 3}}
	if err := r.BlockDone(BlockID{0, 0}, want); err != nil {
		t.Fatal(err)
	}
	got, ok := r.DoneCliques(BlockID{0, 0})
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("re-executed block: ok=%v got %v", ok, got)
	}
}

// TestRunEndRecorded pins Completed across sessions.
func TestRunEndRecorded(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir, testID)
	if c.Completed() {
		t.Fatal("fresh run reported completed")
	}
	c.FinishRun()
	c.Close()
	r := openTest(t, dir, testID)
	defer r.Close()
	if !r.Completed() {
		t.Fatal("run-end record lost on resume")
	}
}

// TestJournalRecordRoundTrip pins the frame encoding for every record kind.
func TestJournalRecordRoundTrip(t *testing.T) {
	recs := []rec{
		{kind: recRunBegin, graph: 1, opts: 2},
		{kind: recResume, graph: 1, opts: 2},
		{kind: recLevel, level: 3, blocks: 17},
		{kind: recDispatch, level: 3, plan: 9},
		{kind: recDone, level: 3, plan: 9, count: 12345, digest: 0xdeadbeef},
		{kind: recLevelEnd, level: 3},
		{kind: recRunEnd},
	}
	for _, r := range recs {
		got, err := decodeRec(r.encode(nil))
		if err != nil {
			t.Fatalf("record %+v: %v", r, err)
		}
		if got != r {
			t.Fatalf("round trip: got %+v want %+v", got, r)
		}
	}
}

// TestDoneBeforeDispatchIdempotent pins observer ordering tolerance: a
// dispatch record arriving for an already-done block (batch retried after
// resume) is a no-op, and duplicate done records are absorbed.
func TestDoneBeforeDispatchIdempotent(t *testing.T) {
	dir := t.TempDir()
	c := openTest(t, dir, testID)
	defer c.Close()
	c.BeginLevel(0, 1)
	if err := c.BlockDone(BlockID{0, 0}, [][]int32{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	c.BlockDispatched(BlockID{0, 0}) // late dispatch: ignored
	if err := c.BlockDone(BlockID{0, 0}, [][]int32{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if n := c.ReenqueuedBlocks(); n != 0 {
		t.Fatalf("late dispatch counted as re-enqueue: %d", n)
	}
}

// FuzzJournalReplay hammers the replay path with arbitrary bytes: replay
// must never panic, never error on a torn tail, and the valid offset must
// never exceed the file size.
func FuzzJournalReplay(f *testing.F) {
	dir := f.TempDir()
	c, err := Open(dir, testID, Options{NoSync: true})
	if err != nil {
		f.Fatal(err)
	}
	c.BeginLevel(0, 2)
	c.BlockDone(BlockID{0, 0}, [][]int32{{1, 2, 3}})
	c.Close()
	seedData, err := os.ReadFile(JournalPath(dir))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seedData)
	f.Add(seedData[:len(seedData)-1])
	f.Add(journalMagic[:])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "journal.mcej")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, off, err := replayJournal(OSFS{}, path)
		if err != nil {
			return // bad magic: a refusal, not a crash
		}
		if off > int64(len(data)) && len(data) >= len(journalMagic) {
			t.Fatalf("valid offset %d beyond file size %d", off, len(data))
		}
		// Every replayed record must re-encode and re-decode.
		for _, r := range recs {
			if _, err := decodeRec(r.encode(nil)); err != nil {
				t.Fatalf("replayed record %+v does not round-trip: %v", r, err)
			}
		}
	})
}
